// Reproduces Figure 1 of the paper: accuracy as a function of the weight of
// the contribution model in the partial-match score, with the weight of the
// resource-consumption model held fixed (Q1, 5-hour window).
//
// The paper reports a non-linear dependency: accuracy rises as contribution
// evidence starts to dominate the cost term, then saturates (and can dip
// once cost information is effectively ignored).

#include <cstdio>

#include "bench_common.h"
#include "harness/sweep.h"
#include "harness/table_printer.h"

namespace cep {
namespace {

using bench::BuildClusterWorkload;
using bench::CheckResult;
using bench::PaperEngineOptions;
using bench::RepsFromEnv;
using bench::SblsOptions;

int Main() {
  // SBLS with the exact model backend is fully deterministic on a fixed
  // stream, so one repetition per sweep point suffices (CEPSHED_REPS can
  // still force more).
  const int reps = RepsFromEnv(1);
  auto workload = BuildClusterWorkload();
  const CannedQuery query = CheckResult(
      MakeClusterQ1(workload->registry, 5 * kHour), "compile Q1");
  std::printf(
      "=== Figure 1: accuracy vs weight of contribution model ===\n"
      "Q1, 5-hour window, cost weight fixed at 1.0, %zu events, reps: %d\n\n",
      workload->events.size(), reps);

  const RunOutcome golden = CheckResult(
      RunOnce(workload->events, query.nfa, EngineOptions{}, nullptr),
      "golden run");
  const EngineOptions lossy = PaperEngineOptions(80.0);

  const std::vector<double> weights = {0.0, 0.125, 0.25, 0.5, 1.0,
                                       2.0, 4.0,   8.0,  16.0};
  std::vector<double> accuracies;
  TablePrinter table({"contribution weight", "accuracy", "min accuracy"});
  for (const double weight : weights) {
    ShedderFactory factory = [&](int rep) -> ShedderPtr {
      StateShedderOptions options =
          SblsOptions(query, 0xf16 + static_cast<uint64_t>(rep));
      options.scoring.weight_contribution = weight;
      options.scoring.weight_cost = 1.0;
      return std::make_unique<StateShedder>(options, &workload->registry);
    };
    const StrategySummary summary = CheckResult(
        EvaluateStrategy(workload->events, query.nfa, lossy, factory, reps,
                         golden.matches, "SBLS"),
        "sweep point");
    accuracies.push_back(summary.avg_accuracy);
    table.AddRow({FormatDouble(weight, 3), FormatPercent(summary.avg_accuracy),
                  FormatPercent(summary.min_accuracy)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("%s\n", AsciiPlot(weights, accuracies, 60, 14,
                                "contribution weight", "accuracy")
                          .c_str());
  std::printf(
      "Expected shape (paper): non-linear dependency of accuracy on the\n"
      "contribution weight — a tuning opportunity for SBLS.\n");
  return 0;
}

}  // namespace
}  // namespace cep

int main() { return cep::Main(); }
