// Standing quality bench-suite: every canned workload crossed with every
// shedding strategy, scored on throughput, true recall vs a golden run, the
// shadow oracle's *online* recall estimate (and its error vs truth), the
// calibration monitor's Brier/drift, and the p99 event busy time. Writes
// schema-versioned BENCH_suite.json into the working directory; the
// committed copy at the repo root is the trajectory baseline tools/check.sh
// compares against (schema via validate_obs bench-suite, throughput via the
// single_thread_eps gate).
//
// The interesting column is shadow_abs_error: how far the live estimator —
// which sees only sampled event-time spans and never the golden output —
// lands from the true recall computed offline. The ISSUE acceptance bound
// is 5 points on the cluster workload.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/string_util.h"
#include "engine/shadow.h"
#include "harness/table_printer.h"
#include "obs/metrics.h"
#include "workload/bikeshare.h"
#include "workload/stock.h"

namespace cep {
namespace {

using bench::BuildClusterWorkload;
using bench::CheckOk;
using bench::CheckResult;
using bench::MakeRegistryShedder;
using bench::PaperEngineOptions;
using bench::PmHashSpecString;

constexpr int kSchemaVersion = 2;

struct SuiteWorkload {
  std::string name;
  SchemaRegistry registry;
  std::vector<EventPtr> events;
  CannedQuery query;
  double theta_micros = 0;  ///< overload threshold for the lossy strategies
  /// Kleene workloads (bike avail+, stock rising-run) run under
  /// skip-till-next-match: skip-till-any-match forks a run per Kleene
  /// extension, which is subset-exponential in the in-window event count —
  /// fine for the paper's overload experiments, unusable for a golden run.
  /// The choice applies to golden, lossy, and ghost engines alike, so the
  /// recall comparison stays apples-to-apples.
  SelectionStrategy selection = SelectionStrategy::kSkipTillAnyMatch;
};

struct Row {
  std::string workload;
  std::string strategy;
  size_t events = 0;
  size_t matches = 0;
  double throughput_eps = 0;
  double recall = 0;                 ///< true recall vs the golden run
  double shadow_recall_estimate = 0; ///< the oracle's lifetime estimate
  double shadow_abs_error = 0;       ///< |estimate - true recall|
  uint64_t shadow_spans = 0;         ///< spans the estimate is built from
  double brier = 0;
  double drift = 0;
  double p99_event_busy_us = 0;
  uint64_t events_dropped = 0;  ///< input-side drops
  uint64_t runs_shed = 0;       ///< state-side victims
};

/// Strategies whose decisions act on the *input* stream. Under
/// skip-till-next-match an input drop legitimately alters which events the
/// greedy runs consume, so their output can contain fingerprints the golden
/// run lacks (they are exempt from the false-positive gate below).
bool IsInputSide(const std::string& strategy) {
  return strategy == "ibls" || strategy == "espice" ||
         strategy == "hspice" || strategy == "hybrid";
}

/// Registry spec for one shoot-out contender. Seeds are fixed (not
/// per-rep): the suite is a standing baseline, so the committed numbers
/// must be reproducible. sbls keeps the paper configuration (recommended
/// hash attributes, w+=4, w-=1); the SPICE strategies run at the same 20%
/// drop aggressiveness as ibls so the recall columns compare utility
/// models, not budgets.
std::string ShedderSpec(const std::string& strategy,
                        const SuiteWorkload& workload) {
  if (strategy == "sbls") {
    return StrFormat("sbls(seed=23317,slices=16,wplus=4,wminus=1,hash=%s,"
                     "bucket=%g)",
                     PmHashSpecString(workload.query.pm_hash).c_str(),
                     workload.query.pm_hash.numeric_bucket_width);
  }
  if (strategy == "ibls") return "ibls(drop=0.2,seed=7029)";
  if (strategy == "rbls") return "rbls(seed=43806)";
  if (strategy == "espice") return "espice(drop=0.2,seed=7029)";
  if (strategy == "hspice") return "hspice(drop=0.2,seed=7029)";
  if (strategy == "pspice") return "pspice(slices=16)";
  if (strategy == "hybrid") {
    return "hybrid(input=espice,state=pspice,drop=0.2,seed=7029,slices=16)";
  }
  return strategy;  // "none", "ttl"
}

ShedderPtr MakeShedder(const std::string& strategy,
                       const SuiteWorkload& workload) {
  return MakeRegistryShedder(ShedderSpec(strategy, workload),
                             &workload.registry);
}

/// One engine pass with the full quality-observability stack enabled:
/// shadow oracle on every other span, calibration, and θ SLO tracking.
Row RunConfig(const SuiteWorkload& workload, const std::string& strategy,
              const std::vector<Match>& golden_matches) {
  EngineOptions options = strategy == "none"
                              ? EngineOptions{}
                              : PaperEngineOptions(workload.theta_micros);
  options.selection = workload.selection;
  options.quality.shadow.sample_every = 2;
  // These short traces only tile a handful of spans (cluster: 4 at the
  // default 2x-window span width); the default seed happens to hash every
  // low span id to "skip". Seed 3 samples about half of span ids 0..11.
  options.quality.shadow.seed = 3;
  options.quality.calibration.enabled = true;
  options.quality.slo.enabled = true;

  Engine engine(workload.query.nfa, options, MakeShedder(strategy, workload));
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& event : workload.events) {
    CheckOk(engine.ProcessEvent(event), "process event");
  }
  CheckOk(engine.Flush(), "flush");
  engine.FinishShadowSpan();
  const auto t1 = std::chrono::steady_clock::now();

  Row row;
  row.workload = workload.name;
  row.strategy = strategy;
  row.events = workload.events.size();
  const std::vector<Match> matches = engine.TakeMatches();
  row.matches = matches.size();
  const double wall = std::chrono::duration<double>(t1 - t0).count();
  row.throughput_eps =
      wall > 0 ? static_cast<double>(row.events) / wall : 0.0;
  const AccuracyReport report = CompareMatches(golden_matches, matches);
  // State-based shedding can only *remove* matches; input shedding under
  // skip-till-next-match legitimately alters which events greedy runs
  // consume, so its output may contain fingerprints the golden run lacks.
  if (!IsInputSide(strategy) && report.false_positives() > 0) {
    std::fprintf(stderr, "FATAL: %s/%s emitted %zu false positives\n",
                 workload.name.c_str(), strategy.c_str(),
                 report.false_positives());
    std::exit(1);
  }
  row.recall = report.recall();
  const ShadowOracle* shadow = engine.shadow();
  row.shadow_recall_estimate = shadow->LifetimeRecall().center;
  row.shadow_abs_error = row.recall > row.shadow_recall_estimate
                             ? row.recall - row.shadow_recall_estimate
                             : row.shadow_recall_estimate - row.recall;
  row.shadow_spans = shadow->spans_completed();
  row.brier = engine.calibration()->BrierScore();
  row.drift = engine.calibration()->Drift();
  row.p99_event_busy_us = engine.event_busy_histogram().Quantile(0.99);
  row.events_dropped = engine.metrics().events_dropped;
  row.runs_shed = engine.metrics().runs_shed;
  return row;
}

std::vector<SuiteWorkload> BuildWorkloads() {
  std::vector<SuiteWorkload> workloads(3);

  SuiteWorkload& cluster = workloads[0];
  std::fprintf(stderr, "building cluster workload...\n");
  cluster.name = "cluster";
  auto trace = BuildClusterWorkload();
  cluster.registry = std::move(trace->registry);
  cluster.events = std::move(trace->events);
  cluster.query = CheckResult(MakeClusterQ1(cluster.registry, 3 * kHour),
                              "cluster Q1");
  cluster.theta_micros = 80.0;

  SuiteWorkload& bike = workloads[1];
  std::fprintf(stderr, "building bike workload...\n");
  bike.name = "bike";
  CheckOk(BikeShareGenerator::RegisterSchemas(&bike.registry), "bike schemas");
  BikeShareOptions bike_options;
  bike_options.duration =
      static_cast<Duration>(2.0 * BenchScaleFromEnv() * kHour);
  BikeShareGenerator bike_generator(bike_options);
  bike.events = CheckResult(bike_generator.Generate(bike.registry),
                            "generate bike stream");
  bike.query = CheckResult(
      MakeBikeQuery(bike.registry, 10 * kMinute, bike_options.lambda, 1),
      "bike query");
  bike.theta_micros = 40.0;
  bike.selection = SelectionStrategy::kSkipTillNextMatch;

  SuiteWorkload& stock = workloads[2];
  std::fprintf(stderr, "building stock workload...\n");
  stock.name = "stock";
  CheckOk(StockGenerator::RegisterSchemas(&stock.registry), "stock schemas");
  StockOptions stock_options;
  stock_options.duration =
      static_cast<Duration>(3.0 * BenchScaleFromEnv() * kMinute);
  StockGenerator stock_generator(stock_options);
  stock.events = CheckResult(stock_generator.Generate(stock.registry),
                             "generate stock stream");
  stock.query = CheckResult(MakeStockRisingQuery(stock.registry, kMinute, 3),
                            "stock query");
  stock.theta_micros = 60.0;
  stock.selection = SelectionStrategy::kSkipTillNextMatch;

  return workloads;
}

std::string RowJson(const Row& row) {
  std::string out = "    {";
  out += StrFormat("\"workload\": \"%s\", ", row.workload.c_str());
  out += StrFormat("\"strategy\": \"%s\", ", row.strategy.c_str());
  out += StrFormat("\"events\": %zu, ", row.events);
  out += StrFormat("\"matches\": %zu, ", row.matches);
  out += StrFormat("\"throughput_eps\": %.1f, ", row.throughput_eps);
  out += StrFormat("\"recall\": %.6f, ", row.recall);
  out += StrFormat("\"shadow_recall_estimate\": %.6f, ",
                   row.shadow_recall_estimate);
  out += StrFormat("\"shadow_abs_error\": %.6f, ", row.shadow_abs_error);
  out += StrFormat("\"shadow_spans\": %llu, ",
                   static_cast<unsigned long long>(row.shadow_spans));
  out += StrFormat("\"brier\": %.6f, ", row.brier);
  out += StrFormat("\"drift\": %.6f, ", row.drift);
  out += StrFormat("\"p99_event_busy_us\": %.2f, ", row.p99_event_busy_us);
  out += StrFormat("\"events_dropped\": %llu, ",
                   static_cast<unsigned long long>(row.events_dropped));
  out += StrFormat("\"runs_shed\": %llu}",
                   static_cast<unsigned long long>(row.runs_shed));
  return out;
}

int Main() {
  std::setvbuf(stdout, nullptr, _IONBF, 0);  // progress visible under pipes
  const char* const strategies[] = {"none",   "ibls",   "rbls",
                                    "sbls",   "espice", "hspice",
                                    "pspice", "hybrid"};
  std::vector<SuiteWorkload> workloads = BuildWorkloads();
  std::vector<Row> rows;
  double single_thread_eps = 0;
  double cluster_sbls_abs_error = 0;

  for (const SuiteWorkload& workload : workloads) {
    // The "none" pass doubles as the golden run for true recall.
    std::fprintf(stderr, "golden run: %s (%zu events)...\n",
                 workload.name.c_str(), workload.events.size());
    EngineOptions golden_options;
    golden_options.selection = workload.selection;
    const RunOutcome golden =
        CheckResult(RunOnce(workload.events, workload.query.nfa,
                            golden_options, nullptr),
                    "golden run");
    std::printf("%s: %zu events, %zu golden matches\n",
                workload.name.c_str(), workload.events.size(),
                golden.matches.size());
    for (const char* strategy : strategies) {
      std::printf("  running %s/%s...\n", workload.name.c_str(), strategy);
      Row row = RunConfig(workload, strategy, golden.matches);
      if (workload.name == "cluster" && row.strategy == "none") {
        single_thread_eps = row.throughput_eps;
      }
      if (workload.name == "cluster" && row.strategy == "sbls") {
        cluster_sbls_abs_error = row.shadow_abs_error;
      }
      rows.push_back(std::move(row));
    }
  }

  TablePrinter table({"workload", "strategy", "recall", "shadow est.",
                      "abs err", "brier", "e/sec", "p99 us", "dropped",
                      "shed"});
  for (const Row& row : rows) {
    table.AddRow({row.workload, row.strategy, FormatPercent(row.recall),
                  FormatPercent(row.shadow_recall_estimate),
                  FormatDouble(row.shadow_abs_error, 4),
                  FormatDouble(row.brier, 4),
                  FormatWithThousands(row.throughput_eps),
                  FormatDouble(row.p99_event_busy_us, 1),
                  std::to_string(row.events_dropped),
                  std::to_string(row.runs_shed)});
  }
  std::printf("\n%s\n", table.ToString().c_str());

  FILE* json = std::fopen("BENCH_suite.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "FATAL: cannot write BENCH_suite.json\n");
    return 1;
  }
  std::fprintf(json, "{\n");
  std::fprintf(json, "  \"benchmark\": \"bench_suite\",\n");
  std::fprintf(json, "  \"schema_version\": %d,\n", kSchemaVersion);
  std::fprintf(json, "  \"shadow_sample_every\": 2,\n");
  std::fprintf(json, "  \"single_thread_eps\": %.1f,\n", single_thread_eps);
  std::fprintf(json, "  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(json, "%s%s\n", RowJson(rows[i]).c_str(),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("wrote BENCH_suite.json\n");

  // ISSUE acceptance: the online estimator must land within 5 points of the
  // offline truth on the cluster workload under SBLS.
  if (cluster_sbls_abs_error > 0.05) {
    std::fprintf(stderr,
                 "FATAL: cluster/sbls shadow estimate is %.4f off the true "
                 "recall (bound: 0.05)\n",
                 cluster_sbls_abs_error);
    return 1;
  }
  std::printf("shadow estimate ok: cluster/sbls abs error %.4f (bound 0.05)\n",
              cluster_sbls_abs_error);
  return 0;
}

}  // namespace
}  // namespace cep

int main() { return cep::Main(); }
