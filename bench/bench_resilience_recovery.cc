// bench_resilience_recovery — recall and latency through an injected
// burst-and-corruption storm, for SBLS vs RBLS vs no shedder, all running
// under the resilience layer (degradation ladder + error budget).
//
// The stream is split into four phases: PRE (clean), STORM (duplicates
// inflate the rate, corruption poisons payloads, drops and delays tear
// holes), RECOVERY (clean again, but matches may still depend on storm-era
// events), and POST (matches fully independent of the storm). Recall is
// measured per phase against an exhaustive engine on the *clean* stream —
// the oracle never sees the faults.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/string_util.h"
#include "engine/degradation.h"
#include "event/fault_injection.h"
#include "harness/table_printer.h"

namespace cep {
namespace bench {
namespace {

struct PhaseWindow {
  const char* name;
  Timestamp from;
  Timestamp to;
};

struct StrategyRun {
  std::string name;
  std::vector<Match> matches;
  EngineMetrics metrics;
  FaultInjectionStats faults;
  // Mean µ(t) per phase, sampled once per delivered event.
  std::vector<double> mean_latency;
  std::vector<double> peak_latency;
};

StrategyRun RunUnderStorm(const char* name, const ClusterWorkload& workload,
                          const NfaPtr& nfa, const EngineOptions& options,
                          ShedderPtr shedder,
                          const FaultInjectionOptions& fault_options,
                          const std::vector<PhaseWindow>& phases) {
  StrategyRun run;
  run.name = name;
  Engine engine(nfa, options, std::move(shedder));
  FaultInjectingStream stream(
      std::make_unique<VectorEventStream>(workload.events), fault_options);
  std::vector<double> sums(phases.size(), 0.0);
  std::vector<uint64_t> counts(phases.size(), 0);
  run.peak_latency.assign(phases.size(), 0.0);
  while (EventPtr event = stream.Next()) {
    CheckOk(engine.OfferEvent(event), "offer event");
    const double mu = engine.CurrentLatencyMicros();
    for (size_t p = 0; p < phases.size(); ++p) {
      if (event->timestamp() >= phases[p].from &&
          event->timestamp() < phases[p].to) {
        sums[p] += mu;
        ++counts[p];
        if (mu > run.peak_latency[p]) run.peak_latency[p] = mu;
        break;
      }
    }
  }
  CheckOk(engine.Flush(), "flush");
  run.matches = engine.TakeMatches();
  run.metrics = engine.metrics();
  run.faults = stream.stats();
  for (size_t p = 0; p < phases.size(); ++p) {
    run.mean_latency.push_back(counts[p] > 0 ? sums[p] / counts[p] : 0.0);
  }
  if (engine.degradation() != nullptr) {
    std::printf("  %-6s ladder: %s\n", name,
                engine.degradation()->ToString().c_str());
  }
  return run;
}

int Main() {
  std::printf("=== Resilience recovery: recall/latency through a fault storm "
              "===\n\n");
  const auto workload = BuildClusterWorkload();
  const Duration window = 3 * kHour;
  const auto query =
      CheckResult(MakeClusterQ1(workload->registry, window), "compile Q1");

  const Timestamp t0 = workload->events.front()->timestamp();
  const Timestamp t_end = workload->events.back()->timestamp() + 1;
  const Timestamp span = t_end - t0;
  const Timestamp storm_from = t0 + span / 3;
  const Timestamp storm_to = t0 + 2 * span / 3;
  const std::vector<PhaseWindow> phases = {
      {"pre", t0, storm_from},
      {"storm", storm_from, storm_to},
      {"recovery", storm_to, storm_to + window},
      {"post", storm_to + window, t_end},
  };

  // Storm: ~1.4x event rate from redelivery, 10% poisoned payloads, 5%
  // loss, 2% reordered beyond the engine's tolerance.
  FaultInjectionOptions storm;
  storm.duplicate_probability = 0.4;
  storm.corrupt_probability = 0.10;
  storm.drop_probability = 0.05;
  storm.delay_probability = 0.02;
  storm.active_from = storm_from;
  storm.active_until = storm_to;
  storm.seed = 0x570a;

  // Oracle: exhaustive engine, clean stream.
  EngineOptions golden_options;
  golden_options.latency_mode = LatencyMode::kVirtualCost;
  const RunOutcome golden = CheckResult(
      RunOnce(workload->events, query.nfa, golden_options, nullptr),
      "golden run");
  std::printf("golden: %llu matches on the clean stream\n\n",
              static_cast<unsigned long long>(golden.matches.size()));

  EngineOptions options = PaperEngineOptions(/*threshold_micros=*/80.0);
  options.degradation.enabled = true;
  options.degradation.cooldown_events = 256;
  options.error_budget.enabled = true;
  options.error_budget.max_consecutive_errors = 256;

  std::vector<StrategyRun> runs;
  runs.push_back(RunUnderStorm("none", *workload, query.nfa, options,
                               nullptr, storm, phases));
  runs.push_back(RunUnderStorm(
      "SBLS", *workload, query.nfa, options,
      std::make_unique<StateShedder>(SblsOptions(query, 0x5b15),
                                     &workload->registry),
      storm, phases));
  runs.push_back(RunUnderStorm("RBLS", *workload, query.nfa, options,
                               std::make_unique<RandomShedder>(0xab1e),
                               storm, phases));

  std::printf("\n");
  TablePrinter table({"strategy", "phase", "recall", "mean µ(t) us",
                      "peak µ(t) us", "quarantined", "ladder up/down"});
  for (const auto& run : runs) {
    for (size_t p = 0; p < phases.size(); ++p) {
      const AccuracyReport report = CompareMatchesInRange(
          golden.matches, run.matches, phases[p].from, phases[p].to);
      table.AddRow({run.name, phases[p].name, FormatPercent(report.recall()),
                    FormatDouble(run.mean_latency[p], 1),
                    FormatDouble(run.peak_latency[p], 1),
                    p == 0 ? std::to_string(run.metrics.quarantined_events)
                           : "",
                    p == 0 ? StrFormat("%llu/%llu",
                                       static_cast<unsigned long long>(
                                           run.metrics.degradation_ups),
                                       static_cast<unsigned long long>(
                                           run.metrics.degradation_downs))
                           : ""});
    }
  }
  table.Print(std::cout);

  std::printf("\nfault schedule (identical for every strategy): %s\n",
              runs.front().faults.ToString().c_str());
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace cep

int main() { return cep::bench::Main(); }
