// Latency timeline — the paper's operational claim (§III): when µ(t) exceeds
// θ, shedding partial matches "makes the evaluation of the next event of the
// stream less costly ... so that the latency drops below the threshold
// again". This experiment samples µ(t) and |R(t)| along the stream for
// exhaustive processing vs SBLS and reports how much of the stream each
// spends above the threshold.

#include <cstdio>

#include "bench_common.h"
#include "harness/sweep.h"
#include "harness/table_printer.h"

namespace cep {
namespace {

using bench::BuildClusterWorkload;
using bench::CheckOk;
using bench::CheckResult;
using bench::PaperEngineOptions;
using bench::SblsOptions;

struct Timeline {
  std::vector<double> hours;
  std::vector<double> latency;
  std::vector<double> runs;
  double above_threshold_share = 0;
  double max_latency = 0;
};

Timeline Sample(const std::vector<EventPtr>& events, const NfaPtr& nfa,
                const EngineOptions& options, ShedderPtr shedder,
                double theta) {
  Engine engine(nfa, options, std::move(shedder));
  Timeline timeline;
  const size_t stride = std::max<size_t>(1, events.size() / 240);
  size_t above = 0, samples = 0;
  for (size_t i = 0; i < events.size(); ++i) {
    CheckOk(engine.ProcessEvent(events[i]), "process");
    if (i % stride == 0) {
      const double lat = engine.CurrentLatencyMicros();
      timeline.hours.push_back(
          static_cast<double>(events[i]->timestamp()) / kHour);
      timeline.latency.push_back(lat);
      timeline.runs.push_back(static_cast<double>(engine.num_runs()));
      timeline.max_latency = std::max(timeline.max_latency, lat);
      if (lat > theta) ++above;
      ++samples;
    }
  }
  timeline.above_threshold_share =
      samples == 0 ? 0 : static_cast<double>(above) / samples;
  return timeline;
}

int Main() {
  constexpr double kTheta = 80.0;
  auto workload = BuildClusterWorkload();
  const CannedQuery query =
      CheckResult(MakeClusterQ1(workload->registry, 5 * kHour), "compile Q1");
  std::printf(
      "=== Latency timeline: µ(t) with and without shedding "
      "(Q1, 5h window, theta %.0f us) ===\n%zu events\n\n",
      kTheta, workload->events.size());

  // Exhaustive processing still *measures* virtual latency, just never sheds.
  EngineOptions exhaustive = PaperEngineOptions(kTheta);
  exhaustive.latency_threshold_micros = 0;  // disable shedding triggers
  const Timeline golden = Sample(workload->events, query.nfa, exhaustive,
                                 nullptr, kTheta);

  const EngineOptions lossy = PaperEngineOptions(kTheta);
  const Timeline shed =
      Sample(workload->events, query.nfa, lossy,
             std::make_unique<StateShedder>(
                 SblsOptions(query, 0x71e), &workload->registry),
             kTheta);

  std::printf("µ(t) exhaustive (stream-time hours on x):\n%s\n",
              AsciiPlot(golden.hours, golden.latency, 64, 12, "hour",
                        "latency us")
                  .c_str());
  std::printf("µ(t) with SBLS:\n%s\n",
              AsciiPlot(shed.hours, shed.latency, 64, 12, "hour",
                        "latency us")
                  .c_str());
  std::printf("|R(t)| with SBLS:\n%s\n",
              AsciiPlot(shed.hours, shed.runs, 64, 10, "hour", "runs")
                  .c_str());

  TablePrinter table({"mode", "share of samples with u(t) > theta",
                      "max u(t) us"});
  table.AddRow({"exhaustive", FormatPercent(golden.above_threshold_share),
                FormatDouble(golden.max_latency, 1)});
  table.AddRow({"SBLS", FormatPercent(shed.above_threshold_share),
                FormatDouble(shed.max_latency, 1)});
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Expected: exhaustive latency climbs with |R(t)| during bursts and\n"
      "stays high; with SBLS each overload episode sheds 20%% of the state\n"
      "and µ(t) returns below θ — the share above threshold collapses.\n");
  return 0;
}

}  // namespace
}  // namespace cep

int main() { return cep::Main(); }
