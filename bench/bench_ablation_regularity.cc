// Ablation E — the regularity assumption. The paper's models "assume that
// the input event stream shows a reasonable level of regularity in terms of
// correlation among attributes' value distributions" (§IV). This experiment
// sweeps the trace generator's regularity knob from 0 (outcomes independent
// of attributes) to 1 (fully attribute-determined) and shows that the SBLS
// advantage over RBLS is exactly that regularity.

#include <cstdio>

#include "bench_common.h"
#include "harness/table_printer.h"

namespace cep {
namespace {

using bench::BuildClusterWorkload;
using bench::CheckResult;
using bench::MakeRblsFactory;
using bench::MakeSblsFactory;
using bench::PaperEngineOptions;
using bench::RepsFromEnv;

int Main() {
  const int reps = RepsFromEnv();
  std::printf(
      "=== Ablation E: SBLS advantage vs stream regularity "
      "(Q1, 5h window, theta 80 us) ===\nreps %d\n\n",
      reps);
  TablePrinter table({"regularity", "golden matches", "SBLS accuracy",
                      "RBLS accuracy", "SBLS - RBLS"});
  for (const double regularity : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    auto workload = BuildClusterWorkload(/*extra_scale=*/1.0, /*seed=*/42,
                                         regularity);
    const CannedQuery query = CheckResult(
        MakeClusterQ1(workload->registry, 5 * kHour), "compile Q1");
    const RunOutcome golden = CheckResult(
        RunOnce(workload->events, query.nfa, EngineOptions{}, nullptr),
        "golden");
    const EngineOptions lossy = PaperEngineOptions(80.0);
    const StrategySummary sbls = CheckResult(
        EvaluateStrategy(workload->events, query.nfa, lossy,
                         MakeSblsFactory(query, &workload->registry), reps,
                         golden.matches, "SBLS"),
        "SBLS");
    const StrategySummary rbls = CheckResult(
        EvaluateStrategy(workload->events, query.nfa, lossy,
                         MakeRblsFactory(), reps, golden.matches, "RBLS"),
        "RBLS");
    table.AddRow({FormatDouble(regularity, 2),
                  std::to_string(golden.matches.size()),
                  FormatPercent(sbls.avg_accuracy),
                  FormatPercent(rbls.avg_accuracy),
                  FormatDouble((sbls.avg_accuracy - rbls.avg_accuracy) * 100,
                               2) + " pp"});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Expected: the SBLS-RBLS gap widens with regularity (more attribute\n"
      "signal for the models). The gap does not collapse at regularity 0:\n"
      "even without attribute correlations the model cells still condition\n"
      "on NFA state and relative time, so SBLS learns that partial matches\n"
      "further along the pattern (and younger ones) are worth keeping —\n"
      "state-awareness alone already beats random shedding.\n");
  return 0;
}

}  // namespace
}  // namespace cep

int main() { return cep::Main(); }
