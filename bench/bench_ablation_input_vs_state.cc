// Ablation D — the paper's core argument (§I/§II): input-based load shedding
// is ill-suited for CEP because an event's importance depends on the current
// partial-match state. Compares, under identical overload settings:
//
//   IBLS-random   drop arriving events uniformly while overloaded
//   IBLS-utility  drop events by per-type utility weights (He et al. style)
//   RBLS          drop random partial matches
//   TTL           drop the partial matches closest to expiry
//   SBLS          drop by learned contribution/cost models (the paper)

#include <cstdio>

#include "bench_common.h"
#include "harness/table_printer.h"
#include "shedding/random_shedder.h"

namespace cep {
namespace {

using bench::BuildClusterWorkload;
using bench::CheckResult;
using bench::MakeRblsFactory;
using bench::MakeSblsFactory;
using bench::PaperEngineOptions;
using bench::RepsFromEnv;

int Main() {
  const int reps = RepsFromEnv();
  auto workload = BuildClusterWorkload();
  const CannedQuery query =
      CheckResult(MakeClusterQ1(workload->registry, 5 * kHour), "compile Q1");
  std::printf(
      "=== Ablation D: input-based vs state-based shedding "
      "(Q1, 5h window, theta 80 us) ===\n%zu events, reps %d\n\n",
      workload->events.size(), reps);
  const RunOutcome golden = CheckResult(
      RunOnce(workload->events, query.nfa, EngineOptions{}, nullptr),
      "golden");
  const EngineOptions lossy = PaperEngineOptions(80.0);

  TablePrinter table({"strategy", "kind", "accuracy", "throughput e/s",
                      "events dropped", "runs shed"});
  const auto add = [&](const StrategySummary& summary, const char* kind) {
    table.AddRow({summary.strategy, kind, FormatPercent(summary.avg_accuracy),
                  FormatWithThousands(summary.avg_throughput_eps),
                  FormatDouble(summary.avg_events_dropped, 0),
                  FormatDouble(summary.avg_runs_shed, 0)});
  };

  ShedderFactory ibls_random = [](int rep) -> ShedderPtr {
    InputShedderOptions options;
    options.drop_probability = 0.2;  // mirrors the 20% state-shed fraction
    options.only_when_overloaded = true;
    options.seed = 0x1b + static_cast<uint64_t>(rep);
    return std::make_unique<InputShedder>(options);
  };
  add(CheckResult(EvaluateStrategy(workload->events, query.nfa, lossy,
                                   ibls_random, reps, golden.matches,
                                   "IBLS-random"),
                  "ibls"),
      "input");

  ShedderFactory ibls_utility = [](int rep) -> ShedderPtr {
    InputShedderOptions options;
    options.drop_probability = 0.3;
    options.only_when_overloaded = true;
    // Pre-defined utilities: evict events complete matches (precious),
    // submit events only open new state (cheap to lose).
    options.type_utility = {{"submit", 0.0}, {"schedule", 0.5},
                            {"evict", 1.0}};
    options.seed = 0x2b + static_cast<uint64_t>(rep);
    return std::make_unique<InputShedder>(options);
  };
  add(CheckResult(EvaluateStrategy(workload->events, query.nfa, lossy,
                                   ibls_utility, reps, golden.matches,
                                   "IBLS-utility"),
                  "ibls-utility"),
      "input");

  add(CheckResult(EvaluateStrategy(workload->events, query.nfa, lossy,
                                   MakeRblsFactory(), reps, golden.matches,
                                   "RBLS"),
                  "rbls"),
      "state");

  ShedderFactory ttl = [](int) -> ShedderPtr {
    return std::make_unique<TtlShedder>();
  };
  add(CheckResult(EvaluateStrategy(workload->events, query.nfa, lossy, ttl,
                                   reps, golden.matches, "TTL"),
                  "ttl"),
      "state");

  add(CheckResult(EvaluateStrategy(workload->events, query.nfa, lossy,
                                   MakeSblsFactory(query, &workload->registry),
                                   reps, golden.matches, "SBLS"),
                  "sbls"),
      "state");

  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Expected: SBLS leads by a wide margin. Note that *state-oblivious*\n"
      "state shedding (RBLS, TTL) is not automatically better than input\n"
      "shedding — randomly destroying accumulated partial matches can cost\n"
      "more than dropping raw events. What wins is awareness of the\n"
      "processing state, which is the paper's actual argument: the\n"
      "importance of work is determined by the partial matches it touches,\n"
      "and only SBLS measures that.\n");
  return 0;
}

}  // namespace
}  // namespace cep

int main() { return cep::Main(); }
