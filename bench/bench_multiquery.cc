// bench_multiquery — multi-query optimizer throughput sweep
// (docs/OPTIMIZER.md).
//
// Registers 10 / 100 / 1000 overlapping bike-share queries in a MultiEngine
// and streams the same workload through an unoptimized fan-out and an
// Optimize()d one. Each query pins `a.loc` to a constant, so the optimizer
// gets real work on every axis: identical queries merge into one engine,
// the constant guards intern into the shared-predicate table (evaluated
// once per event for all queries, and consulted by the per-engine skip fast
// path), and `avail` events — consumed by no edge of any query — are
// dropped by the ingestion prefilter.
//
// Two overlap settings per query count:
//   high — queries drawn from 10 distinct templates, so merging collapses
//          the fan-out to at most 10 physical engines;
//   low  — every query is distinct (unique zone/window pair), so merging is
//          inert and the speedup comes from CSE + skip + prefilter alone.
//
// Per-query matches must be byte-identical between the two runs (the same
// invariant stress_engine --multiquery enforces); any divergence is fatal,
// as is an optimized speedup below 3x at >=100 high-overlap queries — the
// acceptance floor for the committed BENCH_multiquery.json.
//
// Writes BENCH_multiquery.json into the working directory
// (validate_obs bench-multiquery checks the schema).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "engine/multi.h"
#include "nfa/compiler.h"
#include "query/analyzer.h"
#include "query/parser.h"
#include "workload/bikeshare.h"

namespace cep {
namespace bench {
namespace {

constexpr size_t kQueryCounts[] = {10, 100, 1000};
constexpr int kHighOverlapTemplates = 10;

NfaPtr CompileQuery(const std::string& text, const SchemaRegistry& registry) {
  auto parsed = CheckResult(ParseQuery(text), "parse query");
  auto analyzed = CheckResult(Analyze(std::move(parsed), registry),
                              "analyze query");
  return CheckResult(CompileToNfa(std::move(analyzed)), "compile query");
}

/// Query `i` of an N-query panel. High overlap cycles 10 templates (exact
/// duplicates merge); low overlap gives every query a unique (zone, window)
/// pair so nothing merges but the constant `a.loc` guards still intern.
std::string QueryText(size_t i, bool high_overlap, int num_zones) {
  const int zone = static_cast<int>(
      i % static_cast<size_t>(high_overlap ? kHighOverlapTemplates
                                           : num_zones));
  const int window_min =
      high_overlap ? 5
                   : 3 + static_cast<int>(i / static_cast<size_t>(num_zones));
  return StrFormat(
      "PATTERN SEQ(req a, unlock c) WHERE a.loc = %d, c.uid = a.uid "
      "WITHIN %d min RETURN m(loc = a.loc, user = a.uid)",
      zone, window_min);
}

struct RunOutcome {
  double events_per_sec = 0.0;
  std::vector<std::vector<uint64_t>> per_query;  // match fingerprints
  size_t engines = 0;
  size_t shared_preds = 0;
  uint64_t engine_skips = 0;
  uint64_t events_prefiltered = 0;
};

RunOutcome RunOnce(const std::vector<std::string>& queries,
                   const SchemaRegistry& registry,
                   const std::vector<EventPtr>& events, bool optimize) {
  MultiEngine multi;
  EngineOptions options;
  // Deterministic virtual-cost clock: keeps wall-clock reads off the hot
  // path and the two runs' shed/latency state trivially identical (neither
  // run sheds — no threshold — but the state is still serialized).
  options.latency_mode = LatencyMode::kVirtualCost;
  for (const std::string& text : queries) {
    multi.AddQuery(CompileQuery(text, registry), options);
  }
  if (optimize) CheckOk(multi.Optimize(), "MultiEngine::Optimize");

  const auto start = std::chrono::steady_clock::now();
  for (const EventPtr& event : events) {
    CheckOk(multi.ProcessEvent(event), "ProcessEvent");
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  RunOutcome out;
  out.events_per_sec =
      static_cast<double>(events.size()) / std::max(seconds, 1e-9);
  out.per_query.resize(multi.num_queries());
  for (size_t i = 0; i < multi.num_queries(); ++i) {
    for (const Match& m : multi.engine(i).matches()) {
      out.per_query[i].push_back(m.fingerprint);
    }
  }
  out.engines = multi.num_engines();
  if (const opt::MultiQueryIr* ir = multi.ir()) {
    out.shared_preds = ir->preds.size();
  }
  for (size_t k = 0; k < multi.num_engines(); ++k) {
    out.engine_skips += multi.physical_engine(k).shared_skips();
  }
  out.events_prefiltered = multi.events_prefiltered();
  return out;
}

struct Row {
  size_t queries = 0;
  size_t events = 0;
  std::string overlap;
  double unopt_eps = 0.0;
  double opt_eps = 0.0;
  double speedup = 0.0;
  size_t engines = 0;
  size_t shared_preds = 0;
  uint64_t engine_skips = 0;
  uint64_t events_prefiltered = 0;
  bool matches_identical = false;
};

int Main() {
  SchemaRegistry registry;
  CheckOk(BikeShareGenerator::RegisterSchemas(&registry),
          "register bike schemas");
  BikeShareOptions workload;
  workload.duration = 2 * kHour;
  workload.requests_per_minute = 6.0 * BenchScaleFromEnv();
  workload.seed = 7;
  BikeShareGenerator generator(workload);
  const std::vector<EventPtr> events =
      CheckResult(generator.Generate(registry), "generate bike workload");
  std::printf("bench_multiquery: %zu events\n", events.size());

  std::vector<Row> rows;
  for (const size_t count : kQueryCounts) {
    for (const bool high_overlap : {true, false}) {
      std::vector<std::string> queries;
      queries.reserve(count);
      for (size_t i = 0; i < count; ++i) {
        queries.push_back(QueryText(i, high_overlap, workload.num_zones));
      }
      const RunOutcome unopt = RunOnce(queries, registry, events, false);
      const RunOutcome opt = RunOnce(queries, registry, events, true);

      Row row;
      row.queries = count;
      row.events = events.size();
      row.overlap = high_overlap ? "high" : "low";
      row.unopt_eps = unopt.events_per_sec;
      row.opt_eps = opt.events_per_sec;
      row.speedup = opt.events_per_sec / unopt.events_per_sec;
      row.engines = opt.engines;
      row.shared_preds = opt.shared_preds;
      row.engine_skips = opt.engine_skips;
      row.events_prefiltered = opt.events_prefiltered;
      row.matches_identical = opt.per_query == unopt.per_query;
      rows.push_back(row);

      std::printf(
          "  queries=%4zu overlap=%-4s engines=%4zu shared-preds=%3zu "
          "unopt=%10.0f ev/s opt=%10.0f ev/s speedup=%5.2fx "
          "skips=%llu prefiltered=%llu matches_identical=%s\n",
          count, row.overlap.c_str(), row.engines, row.shared_preds,
          row.unopt_eps, row.opt_eps, row.speedup,
          static_cast<unsigned long long>(row.engine_skips),
          static_cast<unsigned long long>(row.events_prefiltered),
          row.matches_identical ? "true" : "false");

      if (!row.matches_identical) {
        std::fprintf(stderr,
                     "FATAL: optimized per-query matches diverge from the "
                     "unoptimized fan-out (queries=%zu overlap=%s)\n",
                     count, row.overlap.c_str());
        return 1;
      }
      if (high_overlap && count >= 100 && row.speedup < 3.0) {
        std::fprintf(stderr,
                     "FATAL: %.2fx speedup at %zu high-overlap queries is "
                     "below the 3x acceptance floor\n",
                     row.speedup, count);
        return 1;
      }
    }
  }

  FILE* json = std::fopen("BENCH_multiquery.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "FATAL: cannot write BENCH_multiquery.json\n");
    return 1;
  }
  std::fprintf(json,
               "{\n"
               "  \"benchmark\": \"multiquery_optimizer\",\n"
               "  \"schema_version\": 1,\n"
               "  \"workload\": \"bike\",\n"
               "  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        json,
        "    {\"queries\": %zu, \"events\": %zu, \"overlap\": \"%s\", "
        "\"unopt_eps\": %.1f, \"opt_eps\": %.1f, \"speedup\": %.4f, "
        "\"engines\": %zu, \"shared_preds\": %zu, \"engine_skips\": %llu, "
        "\"events_prefiltered\": %llu, \"matches_identical\": %s}%s\n",
        r.queries, r.events, r.overlap.c_str(), r.unopt_eps, r.opt_eps,
        r.speedup, r.engines, r.shared_preds,
        static_cast<unsigned long long>(r.engine_skips),
        static_cast<unsigned long long>(r.events_prefiltered),
        r.matches_identical ? "true" : "false", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("bench_multiquery: wrote BENCH_multiquery.json\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace cep

int main() { return cep::bench::Main(); }
