// Reproduces Table I of the paper: the partial matches maintained for the
// bike-sharing query SEQ(req a, avail+ b[], unlock c) after processing two
// req and two avail events — and the exponential growth of |R(t)| that
// motivates state-based load shedding.

#include <cstdio>

#include "engine/engine.h"
#include "harness/table_printer.h"
#include "nfa/compiler.h"
#include "query/analyzer.h"
#include "query/parser.h"
#include "workload/bikeshare.h"

namespace cep {
namespace {

EventPtr Make(const SchemaRegistry& registry, const char* type, Timestamp ts,
              std::vector<Value> values, uint64_t seq) {
  const EventTypeId id = registry.FindType(type);
  return std::make_shared<Event>(id, registry.schema(id), ts,
                                 std::move(values), seq);
}

void PrintRunTable(const Engine& engine, const ParsedQuery& query) {
  TablePrinter table({"partial match", "state", "a.ts", "a.loc", "a.uid",
                      "b[].loc (bikes)"});
  for (const auto& run : engine.runs()) {
    const auto& a = run->binding(0);
    const auto& b = run->binding(1);
    std::string bikes;
    for (const auto& e : b) {
      if (!bikes.empty()) bikes += " ";
      bikes += e->attribute("loc").ToString() + "/" +
               e->attribute("bid").ToString();
    }
    table.AddRow({run->ToString(query),
                  "S" + std::to_string(run->state()),
                  a.empty() ? "-" : std::to_string(a[0]->timestamp() / kMinute),
                  a.empty() ? "-" : a[0]->attribute("loc").ToString(),
                  a.empty() ? "-" : a[0]->attribute("uid").ToString(),
                  bikes.empty() ? "-" : bikes});
  }
  std::printf("%s", table.ToString().c_str());
}

int Main() {
  std::printf("=== Table I: partial matches for the query of Example 1 ===\n");
  std::printf("PATTERN SEQ(req a, avail+ b[], unlock c) WITHIN 10 min\n\n");

  SchemaRegistry registry;
  if (const Status st = BikeShareGenerator::RegisterSchemas(&registry);
      !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  auto parsed = ParseQuery(
      "PATTERN SEQ(req a, avail+ b[], unlock c) WITHIN 10 min");
  auto analyzed = Analyze(parsed.MoveValueUnsafe(), registry);
  auto nfa = CompileToNfa(analyzed.MoveValueUnsafe()).MoveValueUnsafe();
  const ParsedQuery& query = nfa->query();

  Engine engine(nfa, EngineOptions{});
  // Stream of Table I: r1 = (1, (x1,y1), 5), r2 = (8, (x2,y2), 6),
  // a1 = (9, (x3,y3), 90), a2 = (10, (x4,y4), 85). Locations are zone ids.
  const std::vector<EventPtr> events = {
      Make(registry, "req", 1 * kMinute, {Value(11), Value(5)}, 1),
      Make(registry, "req", 8 * kMinute, {Value(22), Value(6)}, 2),
      Make(registry, "avail", 9 * kMinute, {Value(33), Value(90)}, 3),
      Make(registry, "avail", 10 * kMinute, {Value(44), Value(85)}, 4),
  };

  // After the two req events: partial matches of SEQ(req a).
  (void)engine.ProcessEvent(events[0]);
  (void)engine.ProcessEvent(events[1]);
  std::printf("Partial matches of SEQ(req a) after r1, r2 (%zu):\n",
              engine.num_runs());
  PrintRunTable(engine, query);

  (void)engine.ProcessEvent(events[2]);
  (void)engine.ProcessEvent(events[3]);
  std::printf(
      "\nPartial matches of SEQ(req a, avail+ b[]) after a1, a2 (%zu):\n",
      engine.num_runs());
  PrintRunTable(engine, query);
  std::printf(
      "\nThe paper's count: 8 partial matches from 4 processed events.\n");

  // Growth curve: |R(t)| doubles with every further avail event.
  std::printf("\n=== Exponential growth of |R(t)| ===\n");
  TablePrinter growth({"avail events processed", "|R(t)|", "runs extended"});
  Engine growth_engine(nfa, EngineOptions{});
  (void)growth_engine.ProcessEvent(
      Make(registry, "req", kMinute, {Value(0), Value(1)}, 10));
  growth.AddRow({"0", std::to_string(growth_engine.num_runs()), "0"});
  for (int i = 1; i <= 14; ++i) {
    (void)growth_engine.ProcessEvent(Make(registry, "avail",
                                          kMinute + i * kSecond,
                                          {Value(i), Value(100 + i)},
                                          10 + static_cast<uint64_t>(i)));
    growth.AddRow({std::to_string(i), std::to_string(growth_engine.num_runs()),
                   std::to_string(growth_engine.metrics().runs_extended)});
  }
  std::printf("%s", growth.ToString().c_str());
  std::printf(
      "\n|R(t)| = 2^k for k avail events within the window: the exponential\n"
      "state the paper sheds. (Expected: 1, 2, 4, ..., 16384.)\n");
  return 0;
}

}  // namespace
}  // namespace cep

int main() { return cep::Main(); }
