#ifndef CEPSHED_BENCH_BENCH_COMMON_H_
#define CEPSHED_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "harness/experiment.h"
#include "shedding/input_shedder.h"
#include "shedding/random_shedder.h"
#include "shedding/registry.h"
#include "shedding/state_shedder.h"
#include "workload/google_trace.h"
#include "workload/queries.h"

namespace cep {
namespace bench {

/// Exits with a diagnostic if `status` is not OK (bench binaries are
/// experiment scripts; any setup failure is fatal).
inline void CheckOk(const Status& status, const char* context) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", context, status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T CheckResult(Result<T> result, const char* context) {
  if (!result.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", context,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return result.MoveValueUnsafe();
}

/// Number of repetitions per strategy (paper: 5). Override with CEPSHED_REPS.
inline int RepsFromEnv(int fallback = 3) {
  const char* raw = std::getenv("CEPSHED_REPS");
  if (raw == nullptr) return fallback;
  const int reps = std::atoi(raw);
  return reps > 0 ? reps : fallback;
}

/// \brief The shared cluster-trace workload of the Table II family of
/// experiments: registry + trace events (scaled by CEPSHED_SCALE).
struct ClusterWorkload {
  SchemaRegistry registry;
  std::vector<EventPtr> events;
  GoogleTraceOptions trace_options;
};

inline std::unique_ptr<ClusterWorkload> BuildClusterWorkload(
    double extra_scale = 1.0, uint64_t seed = 42, double regularity = 0.9) {
  auto workload = std::make_unique<ClusterWorkload>();
  CheckOk(GoogleTraceGenerator::RegisterSchemas(&workload->registry),
          "register cluster schemas");
  GoogleTraceOptions options;
  options.duration = 24 * kHour;
  options.jobs_per_hour = 150.0 * BenchScaleFromEnv() * extra_scale;
  options.burst_multiplier = 8.0;
  options.burst_period = 6 * kHour;
  options.burst_duration = 40 * kMinute;
  options.seed = seed;
  options.regularity = regularity;
  workload->trace_options = options;
  GoogleTraceGenerator generator(options);
  workload->events =
      CheckResult(generator.Generate(workload->registry), "generate trace");
  return workload;
}

/// Engine configuration used by the paper-style experiments: deterministic
/// virtual-cost overload detection, 20% shed fraction, per-query threshold.
inline EngineOptions PaperEngineOptions(double threshold_micros) {
  EngineOptions options;
  options.latency_mode = LatencyMode::kVirtualCost;
  options.virtual_ns_per_op = 100.0;
  options.latency_threshold_micros = threshold_micros;
  options.latency_window_events = 256;
  options.shed_cooldown_events = 256;
  options.shed_amount.fraction = 0.20;  // the paper's setting
  return options;
}

/// SBLS configuration for a canned query: recommended hash attributes plus
/// scoring weights that value a completed match above the cost of the single
/// derivation that produced it.
inline StateShedderOptions SblsOptions(const CannedQuery& query,
                                       uint64_t seed) {
  StateShedderOptions options;
  options.pm_hash = query.pm_hash;
  options.time_slices = 16;
  options.scoring.weight_contribution = 4.0;
  options.scoring.weight_cost = 1.0;
  options.seed = seed;
  return options;
}

/// Renders PmHashOptions selectors in registry spec form ("req:loc;..." —
/// ';'-separated because spec values cannot contain ',').
inline std::string PmHashSpecString(const PmHashOptions& hash) {
  std::string out;
  for (const auto& selector : hash.attributes) {
    if (!out.empty()) out += ';';
    out += selector.event_type + ":" + selector.attribute;
  }
  return out;
}

/// Builds a shedder from a registry spec, exiting on any error (bench
/// binaries are experiment scripts).
inline ShedderPtr MakeRegistryShedder(const std::string& spec,
                                      const SchemaRegistry* registry) {
  ShedderEnv env;
  env.schema = registry;
  auto shedder = ShedderRegistry::Make(spec, env);
  if (!shedder.ok()) {
    std::fprintf(stderr, "FATAL shedder spec '%s': %s\n", spec.c_str(),
                 shedder.status().ToString().c_str());
    std::exit(1);
  }
  return shedder.MoveValueUnsafe();
}

inline ShedderFactory MakeSblsFactory(const CannedQuery& query,
                                      const SchemaRegistry* registry) {
  return [&query, registry](int rep) -> ShedderPtr {
    return MakeRegistryShedder(
        StrFormat("sbls(seed=%llu,slices=16,wplus=4,wminus=1,hash=%s,"
                  "bucket=%g)",
                  static_cast<unsigned long long>(
                      0x5b15 + static_cast<uint64_t>(rep)),
                  PmHashSpecString(query.pm_hash).c_str(),
                  query.pm_hash.numeric_bucket_width),
        registry);
  };
}

inline ShedderFactory MakeRblsFactory() {
  return [](int rep) -> ShedderPtr {
    return MakeRegistryShedder(
        StrFormat("rbls(seed=%llu)",
                  static_cast<unsigned long long>(
                      0xab1e + static_cast<uint64_t>(rep))),
        nullptr);
  };
}

}  // namespace bench
}  // namespace cep

#endif  // CEPSHED_BENCH_BENCH_COMMON_H_
