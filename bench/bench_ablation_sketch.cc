// Ablation C — exact hash-table models vs count-min-sketch models (paper
// §VI: "more efficient data structures, for instance based on sketching, to
// maintain contribution and resource consumption models").

#include <cstdio>

#include "bench_common.h"
#include "harness/table_printer.h"
#include "shedding/state_shedder.h"

namespace cep {
namespace {

using bench::BuildClusterWorkload;
using bench::CheckOk;
using bench::CheckResult;
using bench::PaperEngineOptions;
using bench::RepsFromEnv;
using bench::SblsOptions;

int Main() {
  const int reps = RepsFromEnv(1);
  auto workload = BuildClusterWorkload();
  const CannedQuery query =
      CheckResult(MakeClusterQ1(workload->registry, 5 * kHour), "compile Q1");
  std::printf(
      "=== Ablation C: exact vs count-min-sketch model backends "
      "(Q1, 5h window) ===\n%zu events, reps %d\n\n",
      workload->events.size(), reps);
  const RunOutcome golden = CheckResult(
      RunOnce(workload->events, query.nfa, EngineOptions{}, nullptr),
      "golden");
  const EngineOptions lossy = PaperEngineOptions(80.0);

  TablePrinter table(
      {"backend", "accuracy", "throughput e/s", "model memory (KiB)"});

  const auto evaluate = [&](const std::string& label,
                            StateShedderOptions::Backend backend,
                            size_t width) {
    const auto make_options = [&](uint64_t seed) {
      StateShedderOptions options = SblsOptions(query, seed);
      options.backend = backend;
      options.sketch_width = width;
      options.sketch_depth = 4;
      return options;
    };
    ShedderFactory factory = [&, make_options](int rep) -> ShedderPtr {
      return std::make_unique<StateShedder>(
          make_options(0x57e7c4 + static_cast<uint64_t>(rep)),
          &workload->registry);
    };
    const StrategySummary summary = CheckResult(
        EvaluateStrategy(workload->events, query.nfa, lossy, factory, reps,
                         golden.matches, label),
        "config");
    // One extra pass whose shedder we can inspect for the trained models'
    // memory footprint.
    Engine engine(query.nfa, lossy,
                  std::make_unique<StateShedder>(make_options(0x57e7c4),
                                                 &workload->registry));
    for (const auto& event : workload->events) {
      CheckOk(engine.ProcessEvent(event), "memory probe");
    }
    const auto* shedder = static_cast<const StateShedder*>(engine.shedder());
    const size_t memory_bytes =
        shedder->contribution_model().backend().MemoryBytes() +
        shedder->cost_model().backend().MemoryBytes();
    table.AddRow({label, FormatPercent(summary.avg_accuracy),
                  FormatWithThousands(summary.avg_throughput_eps),
                  FormatDouble(static_cast<double>(memory_bytes) / 1024.0,
                               1)});
  };

  evaluate("exact", StateShedderOptions::Backend::kExact, 0);
  for (const size_t width : {size_t{1} << 8, size_t{1} << 10, size_t{1} << 12,
                             size_t{1} << 14}) {
    evaluate("sketch w=" + std::to_string(width),
             StateShedderOptions::Backend::kSketch, width);
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Expected: sketch backends match the exact backend's accuracy while\n"
      "bounding memory regardless of how many distinct partial-match groups\n"
      "the stream produces. On this workload the exact table stays small\n"
      "(few hundred cells), so even narrow sketches suffice; the sketch's\n"
      "value is the worst-case guarantee on high-cardinality streams, where\n"
      "the exact table grows without bound (paper SVI).\n");
  return 0;
}

}  // namespace
}  // namespace cep

int main() { return cep::Main(); }
