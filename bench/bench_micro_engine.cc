// Micro-benchmarks (google-benchmark) for the engine's hot paths: per-event
// evaluation as a function of |R(t)|, query compilation, the SBLS model
// bookkeeping, and victim selection — the operations whose constant-time
// behaviour the paper requires.

#include <benchmark/benchmark.h>

#include <dirent.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "engine/engine.h"
#include "event/stream.h"
#include "nfa/compiler.h"
#include "query/analyzer.h"
#include "query/parser.h"
#include "shedding/random_shedder.h"
#include "shedding/sketch.h"
#include "shedding/state_shedder.h"
#include "workload/bikeshare.h"
#include "workload/google_trace.h"
#include "workload/queries.h"

namespace cep {
namespace {

constexpr const char* kQueryText =
    "PATTERN SEQ(req a, avail+ b[], unlock c) "
    "WHERE diff(b[i].loc, a.loc) < 5, COUNT(b[]) > 2, "
    "diff(c.loc, a.loc) > 5, c.uid = a.uid "
    "WITHIN 10 min "
    "RETURN warning(loc = a.loc, user = a.uid)";

struct BikeFixture {
  BikeFixture() {
    (void)BikeShareGenerator::RegisterSchemas(&registry);
    req = registry.FindType("req");
    unlock = registry.FindType("unlock");
  }

  EventPtr MakeReq(Timestamp ts, int64_t loc, int64_t uid) {
    return std::make_shared<Event>(
        req, registry.schema(req), ts,
        std::vector<Value>{Value(loc), Value(uid)}, seq++);
  }
  EventPtr MakeUnlock(Timestamp ts, int64_t loc, int64_t uid) {
    return std::make_shared<Event>(
        unlock, registry.schema(unlock), ts,
        std::vector<Value>{Value(loc), Value(uid), Value(int64_t{1})}, seq++);
  }

  SchemaRegistry registry;
  EventTypeId req = 0;
  EventTypeId unlock = 0;
  uint64_t seq = 1;
};

NfaPtr CompileBikeQuery(const SchemaRegistry& registry, const char* text) {
  auto parsed = ParseQuery(text);
  auto analyzed = Analyze(parsed.MoveValueUnsafe(), registry);
  return CompileToNfa(analyzed.MoveValueUnsafe()).MoveValueUnsafe();
}

void BM_ParseQuery(benchmark::State& state) {
  for (auto _ : state) {
    auto parsed = ParseQuery(kQueryText);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_ParseQuery);

void BM_AnalyzeAndCompile(benchmark::State& state) {
  BikeFixture fixture;
  for (auto _ : state) {
    auto parsed = ParseQuery(kQueryText);
    auto analyzed = Analyze(parsed.MoveValueUnsafe(), fixture.registry);
    auto nfa = CompileToNfa(analyzed.MoveValueUnsafe());
    benchmark::DoNotOptimize(nfa);
  }
}
BENCHMARK(BM_AnalyzeAndCompile);

/// Cost of one event against |R(t)| = `state.range(0)` runs awaiting a
/// same-type event with a failing predicate (the engine's dominant loop).
void BM_ProcessEventPerRun(benchmark::State& state) {
  BikeFixture fixture;
  NfaPtr nfa = CompileBikeQuery(
      fixture.registry,
      "PATTERN SEQ(req a, unlock c) WHERE c.uid = a.uid WITHIN 24 hours");
  Engine engine(nfa, EngineOptions{});
  const int64_t runs = state.range(0);
  Timestamp ts = kMinute;
  for (int64_t i = 0; i < runs; ++i) {
    (void)engine.ProcessEvent(fixture.MakeReq(++ts, 1, 1000000 + i));
  }
  for (auto _ : state) {
    // uid -1 never matches: pure predicate-evaluation cost over all runs.
    (void)engine.ProcessEvent(fixture.MakeUnlock(++ts, 1, -1));
  }
  state.SetItemsProcessed(state.iterations() * runs);
}
BENCHMARK(BM_ProcessEventPerRun)->Arg(16)->Arg(256)->Arg(4096);

void BM_RunExtendClone(benchmark::State& state) {
  BikeFixture fixture;
  const EventPtr event = fixture.MakeReq(1, 2, 3);
  Run base(1, 3, 0, 0);
  base.Bind(0, event, 1);
  uint64_t id = 2;
  for (auto _ : state) {
    auto child = base.Extend(id++, 1, event, 2);
    benchmark::DoNotOptimize(child);
  }
}
BENCHMARK(BM_RunExtendClone);

void BM_SketchAdd(benchmark::State& state) {
  CountMinSketch sketch(1 << 14, 4);
  uint64_t key = 0;
  for (auto _ : state) {
    sketch.Add(key++ * 0x9e3779b97f4a7c15ULL, 1.0);
  }
}
BENCHMARK(BM_SketchAdd);

void BM_SketchEstimate(benchmark::State& state) {
  CountMinSketch sketch(1 << 14, 4);
  for (uint64_t k = 0; k < 10000; ++k) sketch.Add(k, 1.0);
  uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sketch.Estimate(key++ % 20000));
  }
}
BENCHMARK(BM_SketchEstimate);

void BM_ExactBackendAdd(benchmark::State& state) {
  ExactCounterBackend backend;
  uint64_t key = 0;
  for (auto _ : state) {
    backend.Add(key++ % 100000, 1.0, 1.0);
  }
}
BENCHMARK(BM_ExactBackendAdd);

/// SBLS bookkeeping per transition (hash extend + cell entry), the paper's
/// "constant time" requirement.
void BM_SblsOnRunExtended(benchmark::State& state) {
  BikeFixture fixture;
  NfaPtr nfa = CompileBikeQuery(
      fixture.registry,
      "PATTERN SEQ(req a, unlock c) WHERE c.uid = a.uid WITHIN 1 hour");
  StateShedderOptions options;
  options.pm_hash.attributes = {{"req", "loc"}};
  StateShedder shedder(options, &fixture.registry);
  shedder.Attach(*nfa);
  const EventPtr event = fixture.MakeReq(1, 2, 3);
  Run parent(1, 2, 0, 0);
  parent.Bind(0, event, 1);
  shedder.OnRunCreated(&parent, *event, 0);
  for (auto _ : state) {
    auto child = parent.Extend(2, 1, event, 2);
    shedder.OnRunExtended(&parent, child.get(), *event, kMinute);
    benchmark::DoNotOptimize(child);
  }
}
BENCHMARK(BM_SblsOnRunExtended);

/// Victim selection over |R(t)| = range(0) runs: O(n) selection via
/// nth_element, amortised over the shed interval.
void BM_ShedDecide(benchmark::State& state) {
  BikeFixture fixture;
  const int64_t n = state.range(0);
  std::vector<RunPtr> runs;
  const EventPtr event = fixture.MakeReq(1, 2, 3);
  for (int64_t i = 0; i < n; ++i) {
    auto run = MakeRun(static_cast<uint64_t>(i), 2, 1, i);
    run->Bind(0, event, 1);
    runs.push_back(std::move(run));
  }
  StateShedderOptions options;
  StateShedder shedder(options, nullptr);
  const ShedContext ctx{runs, n + 1, static_cast<size_t>(n / 5),
                        /*want_scores=*/false};
  for (auto _ : state) {
    ShedDecision decision = shedder.Decide(ctx);
    benchmark::DoNotOptimize(decision);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ShedDecide)->Arg(1024)->Arg(16384);

void BM_GoogleTraceGeneration(benchmark::State& state) {
  SchemaRegistry registry;
  (void)GoogleTraceGenerator::RegisterSchemas(&registry);
  GoogleTraceOptions options;
  options.duration = 2 * kHour;
  options.jobs_per_hour = 200;
  for (auto _ : state) {
    GoogleTraceGenerator generator(options);
    auto events = generator.Generate(registry);
    benchmark::DoNotOptimize(events);
  }
}
BENCHMARK(BM_GoogleTraceGeneration);

}  // namespace

/// Threads × batch-size sweep over the engine's dominant loop (one event
/// against |R(t)| = 4096 predicate-failing runs), written as machine-readable
/// JSON so CI can track parallel scaling. Speedups are relative to the
/// threads=1, batch=1 row; on a single-core container they will hover
/// around (or below) 1.0 — the JSON records `hardware_threads` so readers
/// can tell scheduling noise from a real scaling regression.
void RunParallelSweepAndWriteJson(const char* path) {
  BikeFixture fixture;
  NfaPtr nfa = CompileBikeQuery(
      fixture.registry,
      "PATTERN SEQ(req a, unlock c) WHERE c.uid = a.uid WITHIN 24 hours");
  constexpr int kPreloadRuns = 4096;
  constexpr int kMeasuredEvents = 2000;

  struct Row {
    size_t threads;
    size_t batch;
    double events_per_sec;
  };
  std::vector<Row> rows;
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    for (size_t batch : {1u, 64u}) {
      EngineOptions options;
      options.parallel.threads = threads;
      Engine engine(nfa, options);
      Timestamp ts = kMinute;
      for (int i = 0; i < kPreloadRuns; ++i) {
        (void)engine.ProcessEvent(fixture.MakeReq(++ts, 1, 1000000 + i));
      }
      std::vector<EventPtr> measured;
      measured.reserve(kMeasuredEvents);
      for (int i = 0; i < kMeasuredEvents; ++i) {
        // uid -1 never matches: pure predicate-evaluation cost per run.
        measured.push_back(fixture.MakeUnlock(++ts, 1, -1));
      }
      VectorEventStream stream(std::move(measured));
      const auto t0 = std::chrono::steady_clock::now();
      (void)engine.ProcessStream(&stream, batch);
      const double secs =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      rows.push_back({threads, batch, kMeasuredEvents / secs});
    }
  }

  const double serial = rows.front().events_per_sec;
  size_t max_threads = 0;
  for (const Row& row : rows) max_threads = std::max(max_threads, row.threads);
  const unsigned hardware = std::thread::hardware_concurrency();
  // When the sweep asks for more threads than the machine has, speedup rows
  // measure scheduler time-slicing, not scaling: flag the file so CI and
  // readers don't treat those rows as a regression (or an improvement).
  const bool valid_scaling = hardware >= max_threads;
  if (!valid_scaling) {
    std::fprintf(stderr,
                 "warning: sweep uses up to %zu threads but only %u hardware "
                 "thread(s) are available; speedup rows measure time-slicing, "
                 "not scaling (valid_scaling=false)\n",
                 max_threads, hardware);
  }
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return;
  }
  std::fprintf(out,
               "{\n  \"benchmark\": \"parallel_sweep\",\n"
               "  \"hardware_threads\": %u,\n"
               "  \"valid_scaling\": %s,\n"
               "  \"preloaded_runs\": %d,\n  \"measured_events\": %d,\n"
               "  \"results\": [\n",
               hardware, valid_scaling ? "true" : "false", kPreloadRuns,
               kMeasuredEvents);
  for (size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(out,
                 "    {\"threads\": %zu, \"batch\": %zu, "
                 "\"events_per_sec\": %.1f, \"speedup_vs_serial\": %.3f}%s\n",
                 rows[i].threads, rows[i].batch, rows[i].events_per_sec,
                 rows[i].events_per_sec / serial,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path);
}

/// Checkpoint overhead at the default 10k-event interval: the same stream is
/// driven through identical engines with checkpointing off, with the
/// background writer (the production configuration), and with synchronous
/// writes (the worst case, for scale). Written as machine-readable JSON so
/// CI can hold the async overhead under the 5% budget.
void RunCheckpointOverheadAndWriteJson(const char* path) {
  BikeFixture fixture;
  NfaPtr nfa = CompileBikeQuery(
      fixture.registry,
      "PATTERN SEQ(req a, unlock c) WHERE c.uid = a.uid WITHIN 10 min");
  constexpr int kEvents = 60000;
  constexpr size_t kInterval = 10000;
  constexpr int kRepetitions = 5;

  // Pre-generate the stream: one event per second, uids cycling so runs are
  // created, matched, and expired at a steady live population.
  std::vector<EventPtr> events;
  events.reserve(kEvents);
  Timestamp ts = kMinute;
  for (int i = 0; i < kEvents; ++i) {
    ts += kSecond;
    if (i % 2 == 0) {
      events.push_back(fixture.MakeReq(ts, i % 7, i % 211));
    } else {
      events.push_back(fixture.MakeUnlock(ts, i % 7, (i - 1) % 211));
    }
  }

  char dir_template[] = "/tmp/bench_ckpt_XXXXXX";
  char* tmp_dir = mkdtemp(dir_template);
  if (tmp_dir == nullptr) {
    std::fprintf(stderr, "mkdtemp failed; skipping checkpoint bench\n");
    return;
  }
  auto clean_dir = [&] {
    DIR* dir = opendir(tmp_dir);
    if (dir == nullptr) return;
    while (dirent* entry = readdir(dir)) {
      if (std::strcmp(entry->d_name, ".") == 0 ||
          std::strcmp(entry->d_name, "..") == 0) {
        continue;
      }
      std::string full = std::string(tmp_dir) + "/" + entry->d_name;
      std::remove(full.c_str());
    }
    closedir(dir);
  };

  struct Row {
    const char* mode;
    double events_per_sec;
  };
  std::vector<Row> rows;
  for (const char* mode : {"off", "async", "sync"}) {
    double best = 0.0;
    for (int rep = 0; rep < kRepetitions; ++rep) {
      clean_dir();
      EngineOptions options;
      // Streaming configuration: matches are delivered, not retained, so a
      // snapshot carries live runs rather than the full match history. A
      // match-retaining engine pays serialization proportional to what it
      // retains, which is not the hot path this budget guards.
      options.collect_matches = false;
      if (std::strcmp(mode, "off") != 0) {
        options.checkpoint.directory = tmp_dir;
        options.checkpoint.interval_events = kInterval;
        options.checkpoint.keep = 1;
        options.checkpoint.synchronous = std::strcmp(mode, "sync") == 0;
      }
      Engine engine(nfa, options);
      const auto t0 = std::chrono::steady_clock::now();
      for (const EventPtr& event : events) {
        (void)engine.OfferEvent(event);
      }
      (void)engine.FlushCheckpoints();
      const double secs =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      best = std::max(best, kEvents / secs);
    }
    rows.push_back({mode, best});
  }
  clean_dir();
  rmdir(tmp_dir);

  const double baseline = rows.front().events_per_sec;
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return;
  }
  std::fprintf(out,
               "{\n  \"benchmark\": \"checkpoint_overhead\",\n"
               "  \"events\": %d,\n  \"interval_events\": %zu,\n"
               "  \"repetitions\": %d,\n  \"results\": [\n",
               kEvents, kInterval, kRepetitions);
  for (size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(out,
                 "    {\"mode\": \"%s\", \"events_per_sec\": %.1f, "
                 "\"overhead_pct\": %.2f}%s\n",
                 rows[i].mode, rows[i].events_per_sec,
                 100.0 * (1.0 - rows[i].events_per_sec / baseline),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path);
}

}  // namespace cep

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  cep::RunParallelSweepAndWriteJson("BENCH_parallel.json");
  cep::RunCheckpointOverheadAndWriteJson("BENCH_ckpt.json");
  return 0;
}
