// Ablation B — time-slice granularity of the contribution / resource
// consumption models (paper §IV-A: "the size of these slices becomes a
// tuning parameter for the accuracy of the prediction model").

#include <cstdio>

#include "bench_common.h"
#include "harness/table_printer.h"

namespace cep {
namespace {

using bench::BuildClusterWorkload;
using bench::CheckResult;
using bench::PaperEngineOptions;
using bench::RepsFromEnv;
using bench::SblsOptions;

int Main() {
  const int reps = RepsFromEnv(1);
  auto workload = BuildClusterWorkload();
  const CannedQuery query =
      CheckResult(MakeClusterQ1(workload->registry, 5 * kHour), "compile Q1");
  std::printf(
      "=== Ablation B: model time-slice granularity (Q1, 5h window) ===\n"
      "%zu events, reps %d\n\n",
      workload->events.size(), reps);
  const RunOutcome golden = CheckResult(
      RunOnce(workload->events, query.nfa, EngineOptions{}, nullptr),
      "golden");
  const EngineOptions lossy = PaperEngineOptions(80.0);

  TablePrinter table({"time slices", "slice width", "accuracy",
                      "throughput e/s"});
  for (const int slices : {1, 2, 4, 8, 16, 32, 64}) {
    ShedderFactory factory = [&, slices](int rep) -> ShedderPtr {
      StateShedderOptions options =
          SblsOptions(query, 0x7151 + static_cast<uint64_t>(rep));
      options.time_slices = slices;
      return std::make_unique<StateShedder>(options, &workload->registry);
    };
    const StrategySummary summary = CheckResult(
        EvaluateStrategy(workload->events, query.nfa, lossy, factory, reps,
                         golden.matches, "SBLS"),
        "sweep point");
    table.AddRow({std::to_string(slices),
                  FormatDuration(5 * kHour / slices),
                  FormatPercent(summary.avg_accuracy),
                  FormatWithThousands(summary.avg_throughput_eps)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Expected: coarse slices merge the statistics of young and old\n"
      "partial matches, fine slices fragment the evidence per cell. On Q1\n"
      "the accuracy is fairly insensitive (runs enter their scoring cells\n"
      "early in their lifetime), with a mild decline at very fine slicing —\n"
      "the tuning parameter matters most for queries whose completion\n"
      "probability changes sharply over the window.\n");
  return 0;
}

}  // namespace
}  // namespace cep

int main() { return cep::Main(); }
