// Ablation A — "how many partial matches to shed" (paper §VI): sweeps the
// shed fraction for SBLS and RBLS and compares against the adaptive
// controller that scales the amount with the overload ratio µ(t)/θ.

#include <cstdio>

#include "bench_common.h"
#include "harness/table_printer.h"

namespace cep {
namespace {

using bench::BuildClusterWorkload;
using bench::CheckResult;
using bench::MakeRblsFactory;
using bench::MakeSblsFactory;
using bench::PaperEngineOptions;
using bench::RepsFromEnv;

int Main() {
  const int reps = RepsFromEnv();
  auto workload = BuildClusterWorkload();
  const CannedQuery query =
      CheckResult(MakeClusterQ1(workload->registry, 5 * kHour), "compile Q1");
  std::printf(
      "=== Ablation A: shed amount (Q1, 5h window, theta 80 us) ===\n"
      "%zu events, reps %d\n\n",
      workload->events.size(), reps);
  const RunOutcome golden = CheckResult(
      RunOnce(workload->events, query.nfa, EngineOptions{}, nullptr),
      "golden");

  TablePrinter table({"shed amount", "SBLS accuracy", "SBLS e/s",
                      "SBLS sheds", "RBLS accuracy", "RBLS e/s",
                      "RBLS sheds"});
  const double fractions[] = {0.05, 0.10, 0.20, 0.40, 0.60, 0.80};
  for (const double fraction : fractions) {
    EngineOptions options = PaperEngineOptions(80.0);
    options.shed_amount.fraction = fraction;
    const StrategySummary sbls = CheckResult(
        EvaluateStrategy(workload->events, query.nfa, options,
                         MakeSblsFactory(query, &workload->registry), reps,
                         golden.matches, "SBLS"),
        "SBLS");
    const StrategySummary rbls = CheckResult(
        EvaluateStrategy(workload->events, query.nfa, options,
                         MakeRblsFactory(), reps, golden.matches, "RBLS"),
        "RBLS");
    table.AddRow({FormatPercent(fraction), FormatPercent(sbls.avg_accuracy),
                  FormatWithThousands(sbls.avg_throughput_eps),
                  FormatDouble(sbls.avg_shed_triggers, 1),
                  FormatPercent(rbls.avg_accuracy),
                  FormatWithThousands(rbls.avg_throughput_eps),
                  FormatDouble(rbls.avg_shed_triggers, 1)});
  }
  // Adaptive controller: base 10%, scaled by overload severity.
  EngineOptions adaptive = PaperEngineOptions(80.0);
  adaptive.shed_amount.mode = ShedAmountOptions::Mode::kAdaptive;
  adaptive.shed_amount.fraction = 0.10;
  adaptive.shed_amount.adaptive_gain = 1.0;
  adaptive.shed_amount.max_fraction = 0.8;
  const StrategySummary sbls_adaptive = CheckResult(
      EvaluateStrategy(workload->events, query.nfa, adaptive,
                       MakeSblsFactory(query, &workload->registry), reps,
                       golden.matches, "SBLS"),
      "SBLS adaptive");
  const StrategySummary rbls_adaptive = CheckResult(
      EvaluateStrategy(workload->events, query.nfa, adaptive,
                       MakeRblsFactory(), reps, golden.matches, "RBLS"),
      "RBLS adaptive");
  table.AddRow({"adaptive (10% base)",
                FormatPercent(sbls_adaptive.avg_accuracy),
                FormatWithThousands(sbls_adaptive.avg_throughput_eps),
                FormatDouble(sbls_adaptive.avg_shed_triggers, 1),
                FormatPercent(rbls_adaptive.avg_accuracy),
                FormatWithThousands(rbls_adaptive.avg_throughput_eps),
                FormatDouble(rbls_adaptive.avg_shed_triggers, 1)});
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Expected: accuracy falls as the fixed fraction grows; SBLS degrades\n"
      "more gracefully than RBLS; the adaptive controller matches a small\n"
      "fixed fraction in calm phases while shedding hard enough in bursts.\n");
  return 0;
}

}  // namespace
}  // namespace cep

int main() { return cep::Main(); }
