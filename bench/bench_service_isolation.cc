// bench_service_isolation — multi-tenant noisy-neighbour isolation through
// the service layer (TenantSession + QuotaAllocator, docs/SERVICE.md).
//
// Tenant B runs the paper's cluster Q1 with SBLS at a normal event rate.
// Tenant A runs the same query but is driven at ~10x B's rate against a
// byte quota sized for B's load, so A's degradation ladder must engage.
// Because quotas are per-tenant slices of the global budget (weights are
// fixed at hello time) and every engine runs the deterministic virtual-cost
// clock, B's recall and p99 µ(t) must be unchanged — bit-identical, well
// inside the 5% acceptance band — whether A is hammering the server or not.
//
// Writes BENCH_service.json into the working directory.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.h"
#include "event/csv.h"
#include "harness/accuracy.h"
#include "service/quota.h"
#include "service/tenant.h"

namespace cep {
namespace bench {
namespace {

constexpr double kThetaMicros = 80.0;
constexpr size_t kGlobalBudgetBytes = 1 << 20;  // 1 MiB of run state, total
constexpr double kWeightA = 0.5;
constexpr double kWeightB = 0.5;

// Mirrors SblsOptions(MakeClusterQ1(...)) in spec form so the service layer
// builds the exact shedder the in-process experiments use.
const char kQuerySpec[] =
    "theta=80 fraction=0.2 cooldown=256 shedder=sbls seed=23317 "
    "hash=submit:priority,schedule:machine_id,schedule:priority "
    "bucket=4 slices=16 wplus=4 wminus=1";

struct TenantOutcome {
  double recall = 0.0;
  double p99_micros = 0.0;
  uint64_t matches = 0;
  uint64_t shed_events = 0;
  uint64_t degradation_ups = 0;
};

double Percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const size_t idx = std::min(
      samples.size() - 1, static_cast<size_t>(q * (samples.size() - 1)));
  return samples[idx];
}

std::unique_ptr<service::TenantSession> MakeTenant(
    const std::string& base, const std::string& name, double weight,
    const service::QuotaAllocator& quota, const std::string& query_text) {
  service::TenantSession::Config config;
  config.tenant = name;
  config.root = base + "/" + name;
  config.theta = kThetaMicros;
  config.weight = weight;
  config.quota_bytes = quota.QuotaBytes(weight);
  config.checkpoint_interval_events = 0;  // not under test here
  auto session =
      CheckResult(service::TenantSession::Create(std::move(config)),
                  "create tenant");
  CheckOk(session->ApplySchemaCommand({"cluster"}), "apply cluster schema");
  CheckOk(session->AddQuery("q1", kQuerySpec, query_text), "add query");
  return session;
}

/// Streams B's events through a fresh tenant (optionally interleaved with
/// tenant A's 10x stream by timestamp) and reports B's recall/p99 against
/// `golden`.
TenantOutcome RunTenantB(const std::string& base, bool with_noisy,
                         const ClusterWorkload& workload_b,
                         const ClusterWorkload& workload_a,
                         const std::string& query_text,
                         const std::vector<Match>& golden,
                         TenantOutcome* noisy_outcome) {
  std::filesystem::remove_all(base);
  std::filesystem::create_directories(base);

  service::QuotaAllocator quota(kGlobalBudgetBytes, /*admission_ratio=*/0.9,
                                /*default_weight=*/0.25);
  std::unique_ptr<service::TenantSession> a;
  if (with_noisy) {
    CheckResult(quota.AdmitTenant("a", kWeightA, 0), "admit tenant a");
    a = MakeTenant(base, "a", kWeightA, quota, query_text);
  }
  CheckResult(quota.AdmitTenant("b", kWeightB, 0), "admit tenant b");
  auto b = MakeTenant(base, "b", kWeightB, quota, query_text);

  Engine* engine_b = b->FindEngine("q1");
  std::vector<double> mu_samples;
  mu_samples.reserve(workload_b.events.size());

  // Merge the two streams by timestamp — the arrival order a server would
  // see with A flooding at 10x B's rate.
  size_t ia = 0;
  size_t ib = 0;
  const auto& ea = workload_a.events;
  const auto& eb = workload_b.events;
  while (ib < eb.size() || (with_noisy && ia < ea.size())) {
    const bool take_a =
        with_noisy && ia < ea.size() &&
        (ib >= eb.size() || ea[ia]->timestamp() <= eb[ib]->timestamp());
    if (take_a) {
      CheckOk(a->IngestLine(EventToCsvLine(*ea[ia])), "ingest A");
      ++ia;
    } else {
      CheckOk(b->IngestLine(EventToCsvLine(*eb[ib])), "ingest B");
      ++ib;
      mu_samples.push_back(engine_b->CurrentLatencyMicros());
    }
  }

  CheckOk(b->Drain(base + "/out_b"), "drain tenant b");
  TenantOutcome out;
  const AccuracyReport report = CompareMatches(golden, engine_b->matches());
  out.recall = report.recall();
  out.p99_micros = Percentile(std::move(mu_samples), 0.99);
  out.matches = engine_b->matches().size();
  out.shed_events = engine_b->metrics().runs_shed;
  out.degradation_ups = engine_b->metrics().degradation_ups;
  if (with_noisy && noisy_outcome != nullptr) {
    CheckOk(a->Drain(base + "/out_a"), "drain tenant a");
    Engine* engine_a = a->FindEngine("q1");
    noisy_outcome->matches = engine_a->matches().size();
    noisy_outcome->shed_events = engine_a->metrics().runs_shed;
    noisy_outcome->degradation_ups = engine_a->metrics().degradation_ups;
  }
  return out;
}

double DeltaPercent(double solo, double shared) {
  if (solo == 0.0) return shared == 0.0 ? 0.0 : 100.0;
  return 100.0 * (shared - solo) / solo;
}

int Main() {
  std::printf("=== Service isolation: tenant B vs a 10x noisy neighbour "
              "===\n\n");
  const auto workload_b = BuildClusterWorkload(1.0, /*seed=*/42);
  const auto workload_a = BuildClusterWorkload(10.0, /*seed=*/77);
  std::printf("tenant B: %zu events, tenant A: %zu events (%.1fx)\n",
              workload_b->events.size(), workload_a->events.size(),
              static_cast<double>(workload_a->events.size()) /
                  static_cast<double>(workload_b->events.size()));

  const Duration window = 3 * kHour;
  const auto query =
      CheckResult(MakeClusterQ1(workload_b->registry, window), "compile Q1");

  const std::string base =
      (std::filesystem::temp_directory_path() / "cepshed_bench_service")
          .string();

  // Oracle: exhaustive engine fed through the same service ingest path
  // (sequence numbers are assigned by WAL ordinal, so golden fingerprints
  // must come from an identically-sequenced stream).
  std::filesystem::remove_all(base);
  std::filesystem::create_directories(base);
  std::vector<Match> golden;
  {
    service::TenantSession::Config config;
    config.tenant = "oracle";
    config.root = base + "/oracle";
    config.checkpoint_interval_events = 0;
    auto oracle =
        CheckResult(service::TenantSession::Create(std::move(config)),
                    "create oracle tenant");
    CheckOk(oracle->ApplySchemaCommand({"cluster"}), "oracle schema");
    CheckOk(oracle->AddQuery("q1", "theta=0", query.text), "oracle query");
    for (const auto& e : workload_b->events) {
      CheckOk(oracle->IngestLine(EventToCsvLine(*e)), "oracle ingest");
    }
    CheckOk(oracle->Drain(base + "/out_oracle"), "oracle drain");
    golden = oracle->FindEngine("q1")->matches();
  }
  std::printf("golden: %zu matches for tenant B's stream\n\n", golden.size());
  TenantOutcome noisy;
  const TenantOutcome solo = RunTenantB(base, /*with_noisy=*/false,
                                        *workload_b, *workload_a, query.text,
                                        golden, nullptr);
  const TenantOutcome shared = RunTenantB(base, /*with_noisy=*/true,
                                          *workload_b, *workload_a,
                                          query.text, golden, &noisy);
  std::filesystem::remove_all(base);

  const double recall_delta = DeltaPercent(solo.recall, shared.recall);
  const double p99_delta = DeltaPercent(solo.p99_micros, shared.p99_micros);
  const bool isolated =
      std::abs(recall_delta) <= 5.0 && std::abs(p99_delta) <= 5.0;

  std::printf("tenant B solo:   recall %.4f  p99 %.1f us  matches %llu  "
              "shed %llu  ladder ups %llu\n",
              solo.recall, solo.p99_micros,
              static_cast<unsigned long long>(solo.matches),
              static_cast<unsigned long long>(solo.shed_events),
              static_cast<unsigned long long>(solo.degradation_ups));
  std::printf("tenant B shared: recall %.4f  p99 %.1f us  matches %llu  "
              "shed %llu  ladder ups %llu\n",
              shared.recall, shared.p99_micros,
              static_cast<unsigned long long>(shared.matches),
              static_cast<unsigned long long>(shared.shed_events),
              static_cast<unsigned long long>(shared.degradation_ups));
  std::printf("tenant A (noisy): matches %llu  shed %llu  ladder ups %llu\n",
              static_cast<unsigned long long>(noisy.matches),
              static_cast<unsigned long long>(noisy.shed_events),
              static_cast<unsigned long long>(noisy.degradation_ups));
  std::printf("\nrecall delta %.2f%%  p99 delta %.2f%%  -> %s\n",
              recall_delta, p99_delta,
              isolated ? "ISOLATED (within 5%)" : "ISOLATION BREACH");

  FILE* json = std::fopen("BENCH_service.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "FATAL: cannot write BENCH_service.json\n");
    return 1;
  }
  std::fprintf(json,
               "{\n"
               "  \"benchmark\": \"service_tenant_isolation\",\n"
               "  \"noisy_rate_multiplier\": 10.0,\n"
               "  \"global_budget_bytes\": %zu,\n"
               "  \"tenant_b_events\": %zu,\n"
               "  \"tenant_a_events\": %zu,\n"
               "  \"golden_matches\": %zu,\n"
               "  \"solo\": {\"recall\": %.6f, \"p99_micros\": %.2f, "
               "\"matches\": %llu},\n"
               "  \"shared\": {\"recall\": %.6f, \"p99_micros\": %.2f, "
               "\"matches\": %llu},\n"
               "  \"noisy_tenant\": {\"matches\": %llu, \"shed\": %llu, "
               "\"ladder_ups\": %llu},\n"
               "  \"recall_delta_pct\": %.4f,\n"
               "  \"p99_delta_pct\": %.4f,\n"
               "  \"isolated_within_5pct\": %s\n"
               "}\n",
               kGlobalBudgetBytes, workload_b->events.size(),
               workload_a->events.size(), golden.size(), solo.recall,
               solo.p99_micros, static_cast<unsigned long long>(solo.matches),
               shared.recall, shared.p99_micros,
               static_cast<unsigned long long>(shared.matches),
               static_cast<unsigned long long>(noisy.matches),
               static_cast<unsigned long long>(noisy.shed_events),
               static_cast<unsigned long long>(noisy.degradation_ups),
               recall_delta, p99_delta, isolated ? "true" : "false");
  std::fclose(json);
  std::printf("wrote BENCH_service.json\n");
  return isolated ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace cep

int main() { return cep::bench::Main(); }
