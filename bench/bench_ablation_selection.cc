// Ablation F — event selection strategies. Skip-till-any-match is the
// semantics behind the paper's exponential partial-match state (Table I);
// this experiment quantifies what the greedier strategies trade away on the
// bike-sharing workload of Example 1.
//
// The second section joins the shed-decision audit trail against the golden
// (shed-free) run: a victim "would have completed" when its per-variable
// bindings are a prefix of some golden match's bindings, i.e. shedding it
// destroyed a future match. SBLS earns its keep by picking victims whose
// viable fraction is lower than random's.

#include <cstdio>
#include <unordered_map>

#include "bench_common.h"
#include "harness/table_printer.h"
#include "obs/audit.h"
#include "workload/bikeshare.h"

namespace cep {
namespace {

using bench::CheckOk;
using bench::CheckResult;

// --- audit-oracle join ------------------------------------------------------

/// Golden matches indexed by the sequence number of their first bound event,
/// for prefix-joining shed victims against them.
class GoldenIndex {
 public:
  explicit GoldenIndex(const std::vector<Match>* matches) : matches_(matches) {
    for (size_t i = 0; i < matches->size(); ++i) {
      const Match& match = (*matches)[i];
      if (match.bindings.empty() || match.bindings[0].empty()) continue;
      by_first_[match.bindings[0][0]->sequence()].push_back(i);
    }
  }

  /// True when some golden match extends every binding of `run`: under
  /// skip-till-any-match the engine explores all extensions, so a run with
  /// prefix bindings of a real match completes unless it is shed.
  bool WouldComplete(const Run& run) const {
    const std::vector<EventPtr>& first = run.binding(0);
    if (first.empty()) return false;
    const auto it = by_first_.find(first[0]->sequence());
    if (it == by_first_.end()) return false;
    for (const size_t index : it->second) {
      const Match& match = (*matches_)[index];
      bool prefix = true;
      for (size_t var = 0; var < match.bindings.size() && prefix; ++var) {
        const std::vector<EventPtr>& bound =
            run.binding(static_cast<int>(var));
        if (bound.size() > match.bindings[var].size()) {
          prefix = false;
          break;
        }
        for (size_t j = 0; j < bound.size(); ++j) {
          if (bound[j]->sequence() != match.bindings[var][j]->sequence()) {
            prefix = false;
            break;
          }
        }
      }
      if (prefix) return true;
    }
    return false;
  }

 private:
  const std::vector<Match>* matches_;
  std::unordered_map<uint64_t, std::vector<size_t>> by_first_;
};

struct AuditJoinStats {
  uint64_t runs_shed = 0;
  uint64_t viable_victims = 0;  ///< victims that would have completed
  uint64_t matches = 0;
};

AuditJoinStats RunWithAuditJoin(const std::vector<EventPtr>& events,
                                const CannedQuery& query,
                                const EngineOptions& options,
                                ShedderPtr shedder, const GoldenIndex& index) {
  Engine engine(query.nfa, options, std::move(shedder));
  AuditJoinStats stats;
  engine.SetShedCallback(
      [&](const Run& run, const obs::ShedDecisionRecord&) {
        ++stats.runs_shed;
        if (index.WouldComplete(run)) ++stats.viable_victims;
      });
  CheckOk(engine.ProcessBatch(
              std::span<const EventPtr>(events.data(), events.size())),
          "audit-join run");
  stats.matches = engine.metrics().matches_emitted;
  return stats;
}

int Main() {
  SchemaRegistry registry;
  CheckOk(BikeShareGenerator::RegisterSchemas(&registry), "register schemas");
  BikeShareOptions trace_options;
  // Kleene growth under skip-till-any-match is exponential in the number of
  // lambda-close avail events per window; keep zones sparse so the golden
  // run stays tractable (~2 matching avails per partial match).
  trace_options.duration = 4 * kHour;
  trace_options.num_zones = 200;
  trace_options.requests_per_minute = 2.0 * BenchScaleFromEnv();
  BikeShareGenerator generator(trace_options);
  const std::vector<EventPtr> events =
      CheckResult(generator.Generate(registry), "generate");
  const CannedQuery query = CheckResult(
      MakeBikeQuery(registry, 5 * kMinute, trace_options.lambda, 1),
      "compile bike query");
  std::printf(
      "=== Ablation F: selection strategies (Example 1 query, %zu events) "
      "===\n\n",
      events.size());

  TablePrinter table({"selection strategy", "matches", "peak |R(t)|",
                      "edge evals", "throughput e/s"});
  for (const SelectionStrategy strategy :
       {SelectionStrategy::kSkipTillAnyMatch,
        SelectionStrategy::kSkipTillNextMatch,
        SelectionStrategy::kStrictContiguity}) {
    EngineOptions options;
    options.selection = strategy;
    const RunOutcome outcome = CheckResult(
        RunOnce(events, query.nfa, options, nullptr), "run");
    table.AddRow({SelectionStrategyName(strategy),
                  std::to_string(outcome.matches.size()),
                  std::to_string(outcome.metrics.peak_runs),
                  std::to_string(outcome.metrics.edge_evaluations),
                  FormatWithThousands(outcome.throughput_eps)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Expected: skip-till-any-match finds the complete match set at an\n"
      "exponentially larger state and work; the greedy strategies are cheap\n"
      "but miss matches — which is why the paper sheds state instead of\n"
      "weakening the semantics.\n\n");

  // --- audit join: which shed victims would have completed? -----------------
  // Shed-decision callbacks are joined against a golden (shed-free) run: a
  // victim whose bindings are a prefix of a golden match was a future match
  // destroyed by shedding. The join runs on the bursty cluster trace (the
  // Table II workload) — selection quality only matters when overload is
  // intermittent; under the bike stream's permanent cap pressure every
  // policy converges to the same recall. This is the paper's claim made
  // attributable per decision: SBLS discards mostly doomed runs, random
  // shedding discards viable ones at the base rate.
  auto cluster = bench::BuildClusterWorkload();
  const CannedQuery q1 = CheckResult(
      MakeClusterQ1(cluster->registry, 3 * kHour), "compile Q1");
  const RunOutcome q1_golden = CheckResult(
      RunOnce(cluster->events, q1.nfa, EngineOptions{}, nullptr),
      "golden Q1 run");
  const GoldenIndex index(&q1_golden.matches);
  const EngineOptions shed_run_options = bench::PaperEngineOptions(80.0);

  TablePrinter join_table({"shedder", "runs shed", "viable victims",
                           "viable %", "matches", "recall %"});
  struct JoinRow {
    const char* name;
    AuditJoinStats stats;
  };
  const JoinRow rows[] = {
      {"SBLS (state-based)",
       RunWithAuditJoin(cluster->events, q1, shed_run_options,
                        std::make_unique<StateShedder>(
                            bench::SblsOptions(q1, 0x5b15),
                            &cluster->registry),
                        index)},
      {"RBLS (random)",
       RunWithAuditJoin(cluster->events, q1, shed_run_options,
                        std::make_unique<RandomShedder>(0xab1e), index)},
  };
  for (const JoinRow& row : rows) {
    const AuditJoinStats& stats = row.stats;
    char viable_pct[32];
    std::snprintf(viable_pct, sizeof(viable_pct), "%.1f",
                  stats.runs_shed == 0
                      ? 0.0
                      : 100.0 * static_cast<double>(stats.viable_victims) /
                            static_cast<double>(stats.runs_shed));
    char recall_pct[32];
    std::snprintf(recall_pct, sizeof(recall_pct), "%.1f",
                  q1_golden.matches.empty()
                      ? 0.0
                      : 100.0 * static_cast<double>(stats.matches) /
                            static_cast<double>(q1_golden.matches.size()));
    join_table.AddRow({row.name, std::to_string(stats.runs_shed),
                       std::to_string(stats.viable_victims), viable_pct,
                       std::to_string(stats.matches), recall_pct});
  }
  std::printf("=== Audit join: shed victims vs oracle (cluster Q1, 3 h "
              "window, %zu golden matches) ===\n\n%s\n",
              q1_golden.matches.size(), join_table.ToString().c_str());
  std::printf(
      "Expected: SBLS's viable-victim share sits below random's — the audit\n"
      "trail attributes its recall advantage to individual shed decisions\n"
      "rather than to the aggregate counters.\n");
  return 0;
}

}  // namespace
}  // namespace cep

int main() { return cep::Main(); }
