// Ablation F — event selection strategies. Skip-till-any-match is the
// semantics behind the paper's exponential partial-match state (Table I);
// this experiment quantifies what the greedier strategies trade away on the
// bike-sharing workload of Example 1.

#include <cstdio>

#include "bench_common.h"
#include "harness/table_printer.h"
#include "workload/bikeshare.h"

namespace cep {
namespace {

using bench::CheckOk;
using bench::CheckResult;

int Main() {
  SchemaRegistry registry;
  CheckOk(BikeShareGenerator::RegisterSchemas(&registry), "register schemas");
  BikeShareOptions trace_options;
  // Kleene growth under skip-till-any-match is exponential in the number of
  // lambda-close avail events per window; keep zones sparse so the golden
  // run stays tractable (~2 matching avails per partial match).
  trace_options.duration = 4 * kHour;
  trace_options.num_zones = 200;
  trace_options.requests_per_minute = 2.0 * BenchScaleFromEnv();
  BikeShareGenerator generator(trace_options);
  const std::vector<EventPtr> events =
      CheckResult(generator.Generate(registry), "generate");
  const CannedQuery query = CheckResult(
      MakeBikeQuery(registry, 5 * kMinute, trace_options.lambda, 1),
      "compile bike query");
  std::printf(
      "=== Ablation F: selection strategies (Example 1 query, %zu events) "
      "===\n\n",
      events.size());

  TablePrinter table({"selection strategy", "matches", "peak |R(t)|",
                      "edge evals", "throughput e/s"});
  for (const SelectionStrategy strategy :
       {SelectionStrategy::kSkipTillAnyMatch,
        SelectionStrategy::kSkipTillNextMatch,
        SelectionStrategy::kStrictContiguity}) {
    EngineOptions options;
    options.selection = strategy;
    const RunOutcome outcome = CheckResult(
        RunOnce(events, query.nfa, options, nullptr), "run");
    table.AddRow({SelectionStrategyName(strategy),
                  std::to_string(outcome.matches.size()),
                  std::to_string(outcome.metrics.peak_runs),
                  std::to_string(outcome.metrics.edge_evaluations),
                  FormatWithThousands(outcome.throughput_eps)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Expected: skip-till-any-match finds the complete match set at an\n"
      "exponentially larger state and work; the greedy strategies are cheap\n"
      "but miss matches — which is why the paper sheds state instead of\n"
      "weakening the semantics.\n");
  return 0;
}

}  // namespace
}  // namespace cep

int main() { return cep::Main(); }
