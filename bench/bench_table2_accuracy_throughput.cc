// Reproduces Table II of the paper: accuracy and average throughput (e/sec)
// of queries Q1 and Q2 under state-based (SBLS) vs random (RBLS) shedding of
// partial matches, for time windows of 3, 5, and 7 hours. Shedding affects
// 20% of the partial matches per overload episode and is triggered by a
// per-query latency threshold, as in the paper.
//
// Absolute throughput depends on the machine; the paper's *shape* is what
// must hold: SBLS accuracy > RBLS accuracy with a margin that grows with the
// window size, at slightly lower throughput (model maintenance overhead).

#include <cstdio>

#include "bench_common.h"
#include "harness/table_printer.h"

namespace cep {
namespace {

using bench::BuildClusterWorkload;
using bench::CheckResult;
using bench::MakeRblsFactory;
using bench::MakeSblsFactory;
using bench::PaperEngineOptions;
using bench::RepsFromEnv;

// Latency thresholds (µs) per query. The paper used 150 µs (Q1) and 6 µs
// (Q2) on its hardware; under the calibrated virtual-cost model (100 ns per
// edge evaluation) these values reproduce comparable overload behaviour.
constexpr double kThetaQ1 = 80.0;
constexpr double kThetaQ2 = 50.0;

struct Cell {
  double accuracy = 0;
  double throughput = 0;
  double sheds = 0;
};

int Main() {
  const int reps = RepsFromEnv();
  auto workload = BuildClusterWorkload();
  std::printf("=== Table II: accuracy and throughput (e/sec) of Q1 and Q2 ===\n");
  std::printf(
      "trace: %zu events over %s, %.0f jobs/h base rate, burst x%.0f\n"
      "shed fraction: 20%%, thresholds: Q1 %.0f us, Q2 %.0f us, reps: %d\n\n",
      workload->events.size(),
      FormatDuration(workload->trace_options.duration).c_str(),
      workload->trace_options.jobs_per_hour,
      workload->trace_options.burst_multiplier, kThetaQ1, kThetaQ2, reps);

  const Duration windows[] = {3 * kHour, 5 * kHour, 7 * kHour};
  // cells[strategy][window][query]
  Cell cells[2][3][2];
  double golden_throughput[3][2];
  size_t golden_matches[3][2];

  for (int qi = 0; qi < 2; ++qi) {
    const double theta = qi == 0 ? kThetaQ1 : kThetaQ2;
    for (int wi = 0; wi < 3; ++wi) {
      const CannedQuery query = CheckResult(
          qi == 0 ? MakeClusterQ1(workload->registry, windows[wi])
                  : MakeClusterQ2(workload->registry, windows[wi]),
          "compile query");
      RunOutcome golden = CheckResult(
          RunOnce(workload->events, query.nfa, EngineOptions{}, nullptr),
          "golden run");
      golden_throughput[wi][qi] = golden.throughput_eps;
      golden_matches[wi][qi] = golden.matches.size();

      const EngineOptions lossy = PaperEngineOptions(theta);
      const StrategySummary sbls = CheckResult(
          EvaluateStrategy(workload->events, query.nfa, lossy,
                           MakeSblsFactory(query, &workload->registry), reps,
                           golden.matches, "SBLS"),
          "SBLS");
      const StrategySummary rbls = CheckResult(
          EvaluateStrategy(workload->events, query.nfa, lossy,
                           MakeRblsFactory(), reps, golden.matches, "RBLS"),
          "RBLS");
      cells[0][wi][qi] = {sbls.avg_accuracy, sbls.avg_throughput_eps,
                          sbls.avg_shed_triggers};
      cells[1][wi][qi] = {rbls.avg_accuracy, rbls.avg_throughput_eps,
                          rbls.avg_shed_triggers};
      if (sbls.false_positives > 0 || rbls.false_positives > 0) {
        std::fprintf(stderr, "FATAL: false positives detected\n");
        return 1;
      }
    }
  }

  TablePrinter table({"shedding strategy", "time window", "Q1 accuracy",
                      "Q1 avg throughput", "Q2 accuracy",
                      "Q2 avg throughput"});
  const char* names[] = {"SBLS", "RBLS"};
  const char* window_names[] = {"3 hours", "5 hours", "7 hours"};
  for (int wi = 0; wi < 3; ++wi) {
    for (int si = 0; si < 2; ++si) {
      table.AddRow({names[si], window_names[wi],
                    FormatPercent(cells[si][wi][0].accuracy),
                    FormatWithThousands(cells[si][wi][0].throughput),
                    FormatPercent(cells[si][wi][1].accuracy),
                    FormatWithThousands(cells[si][wi][1].throughput)});
    }
  }
  std::printf("%s\n", table.ToString().c_str());

  TablePrinter detail({"window", "Q1 golden matches", "Q1 golden e/s",
                       "Q1 sheds (SBLS/RBLS)", "Q2 golden matches",
                       "Q2 golden e/s", "Q2 sheds (SBLS/RBLS)"});
  for (int wi = 0; wi < 3; ++wi) {
    detail.AddRow(
        {window_names[wi], std::to_string(golden_matches[wi][0]),
         FormatWithThousands(golden_throughput[wi][0]),
         FormatDouble(cells[0][wi][0].sheds, 1) + "/" +
             FormatDouble(cells[1][wi][0].sheds, 1),
         std::to_string(golden_matches[wi][1]),
         FormatWithThousands(golden_throughput[wi][1]),
         FormatDouble(cells[0][wi][1].sheds, 1) + "/" +
             FormatDouble(cells[1][wi][1].sheds, 1)});
  }
  std::printf("%s\n", detail.ToString().c_str());

  std::printf(
      "Expected shape (paper): SBLS accuracy above RBLS for every window,\n"
      "margin widening as the window grows; SBLS throughput slightly below\n"
      "RBLS (contribution/cost model maintenance).\n");
  return 0;
}

}  // namespace
}  // namespace cep

int main() { return cep::Main(); }
