// Kleene aggregates: SUM/AVG/MIN/MAX(b[].attr) in WHERE and RETURN.

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "query/analyzer.h"
#include "query/parser.h"
#include "test_util.h"

namespace cep {
namespace {

using testing_util::BikeSchema;
using testing_util::FakeBindings;
using testing_util::RunAll;

class AggregateTest : public ::testing::Test {
 protected:
  /// Resolves `expr_text` as a WHERE conjunct of a Kleene query.
  const Expr* Resolve(const std::string& expr_text) {
    auto parsed = ParseQuery(
        "PATTERN SEQ(req a, avail+ b[]) WHERE " + expr_text +
        " WITHIN 10 min");
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    auto analyzed = Analyze(parsed.MoveValueUnsafe(), fixture_.registry);
    EXPECT_TRUE(analyzed.ok()) << analyzed.status().ToString();
    analyzed_.push_back(
        std::make_unique<AnalyzedQuery>(analyzed.MoveValueUnsafe()));
    return analyzed_.back()->query.predicates[0].get();
  }

  FakeBindings ThreeAvails() {
    FakeBindings bindings;
    bindings.BindKleene(1, {fixture_.Avail(1, 10, 1), fixture_.Avail(2, 30, 2),
                            fixture_.Avail(3, 20, 3)});
    return bindings;
  }

  BikeSchema fixture_;
  std::vector<std::unique_ptr<AnalyzedQuery>> analyzed_;
};

TEST_F(AggregateTest, ParserAcceptsAllFourAggregates) {
  for (const char* text :
       {"SUM(b[].loc) > 1", "AVG(b[].loc) > 1", "MIN(b[].loc) > 1",
        "MAX(b[].loc) > 1"}) {
    EXPECT_NE(Resolve(text), nullptr) << text;
  }
}

TEST_F(AggregateTest, MinMaxStillWorkAsTwoArgBuiltins) {
  const Expr* expr = Resolve("min(a.loc, 5) = 5");
  FakeBindings bindings;
  bindings.BindSingle(0, fixture_.Req(1, 9, 1));
  EXPECT_EQ(expr->Eval(bindings).ValueOrDie(), Value(true));
}

TEST_F(AggregateTest, SumOverInts) {
  const Expr* expr = Resolve("SUM(b[].loc) = 60");
  FakeBindings bindings = ThreeAvails();
  EXPECT_EQ(expr->Eval(bindings).ValueOrDie(), Value(true));
}

TEST_F(AggregateTest, AvgMinMaxValues) {
  FakeBindings bindings = ThreeAvails();
  EXPECT_EQ(Resolve("AVG(b[].loc) = 20")->Eval(bindings).ValueOrDie(),
            Value(true));
  EXPECT_EQ(Resolve("MIN(b[].loc) = 10")->Eval(bindings).ValueOrDie(),
            Value(true));
  EXPECT_EQ(Resolve("MAX(b[].loc) = 30")->Eval(bindings).ValueOrDie(),
            Value(true));
}

TEST_F(AggregateTest, VirtualAppendIncluded) {
  const Expr* expr = Resolve("SUM(b[].loc) = 65");
  FakeBindings bindings = ThreeAvails();
  const EventPtr current = fixture_.Avail(4, 5, 4);
  bindings.SetCurrent(1, current.get());
  EXPECT_EQ(expr->Eval(bindings).ValueOrDie(), Value(true));
}

TEST_F(AggregateTest, EmptyBindingYieldsNull) {
  const Expr* expr = Resolve("SUM(b[].loc) > 0");
  FakeBindings bindings;  // no Kleene elements
  // null compares false.
  EXPECT_EQ(expr->Eval(bindings).ValueOrDie(), Value(false));
}

TEST_F(AggregateTest, ToStringRoundTrips) {
  const Expr* expr = Resolve("SUM(b[].loc) > 1");
  EXPECT_NE(expr->ToString().find("SUM(b[].loc)"), std::string::npos);
}

TEST_F(AggregateTest, AnalyzerRejectsAggregateOnSingleVariable) {
  auto parsed = ParseQuery(
      "PATTERN SEQ(req a, avail+ b[]) WHERE SUM(a[].loc) > 1 WITHIN 1 min");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(Analyze(parsed.MoveValueUnsafe(), fixture_.registry)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(AggregateTest, AnalyzerRejectsUnknownAttribute) {
  auto parsed = ParseQuery(
      "PATTERN SEQ(req a, avail+ b[]) WHERE SUM(b[].bogus) > 1 WITHIN 1 min");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(Analyze(parsed.MoveValueUnsafe(), fixture_.registry)
                  .status()
                  .IsNotFound());
}

TEST_F(AggregateTest, ParserRejectsScalarArgumentToSum) {
  EXPECT_TRUE(ParseQuery("PATTERN SEQ(req a) WHERE SUM(a.loc) > 1 "
                         "WITHIN 1 min")
                  .status()
                  .IsParseError());
}

TEST_F(AggregateTest, AggregateGatesAtKleeneExit) {
  // SUM over the whole binding must gate the proceed, not individual takes.
  NfaPtr nfa = fixture_.Compile(
      "PATTERN SEQ(req a, avail+ b[], unlock c) "
      "WHERE SUM(b[].loc) > 25 WITHIN 10 min");
  // Avail locs 10, 20: subsets with sum > 25 are {10,20} (30) only.
  const auto matches = RunAll(nfa, EngineOptions{},
                              {fixture_.Req(1 * kMinute, 0, 5),
                               fixture_.Avail(2 * kMinute, 10, 1),
                               fixture_.Avail(3 * kMinute, 20, 2),
                               fixture_.Unlock(4 * kMinute, 0, 5, 9)});
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].bindings[1].size(), 2u);
}

TEST_F(AggregateTest, AggregateInReturnClause) {
  NfaPtr nfa = fixture_.Compile(
      "PATTERN SEQ(req a, avail+ b[], unlock c) WITHIN 10 min "
      "RETURN summary(total = SUM(b[].loc), best = MIN(b[].loc), "
      "n = COUNT(b[]))");
  const auto matches = RunAll(nfa, EngineOptions{},
                              {fixture_.Req(1 * kMinute, 0, 5),
                               fixture_.Avail(2 * kMinute, 10, 1),
                               fixture_.Avail(3 * kMinute, 20, 2),
                               fixture_.Unlock(4 * kMinute, 0, 5, 9)});
  ASSERT_EQ(matches.size(), 3u);  // subsets {10}, {20}, {10,20}
  for (const auto& m : matches) {
    const EventPtr& out = m.complex_event;
    const int64_t n = out->attribute("n").int_value();
    if (n == 2) {
      EXPECT_EQ(out->attribute("total"), Value(30));
      EXPECT_EQ(out->attribute("best"), Value(10));
    }
  }
}

TEST_F(AggregateTest, MixedIntDoubleSumIsDouble) {
  SchemaRegistry registry;
  ASSERT_TRUE(
      registry.Register("m", {{"v", ValueType::kDouble}}).ok());
  auto parsed = ParseQuery(
      "PATTERN SEQ(m+ xs[]) WHERE SUM(xs[].v) > 0.5 WITHIN 1 min");
  ASSERT_TRUE(parsed.ok());
  auto analyzed = Analyze(parsed.MoveValueUnsafe(), registry);
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  // Direct evaluation with doubles.
  const Expr* expr = analyzed.ValueOrDie().query.predicates[0].get();
  FakeBindings bindings;
  const EventTypeId id = registry.FindType("m");
  bindings.BindKleene(
      0, {std::make_shared<Event>(id, registry.schema(id), 1,
                                  std::vector<Value>{Value(0.25)}, 1),
          std::make_shared<Event>(id, registry.schema(id), 2,
                                  std::vector<Value>{Value(0.5)}, 2)});
  EXPECT_EQ(expr->Eval(bindings).ValueOrDie(), Value(true));
}

}  // namespace
}  // namespace cep
