#include <gtest/gtest.h>

#include "engine/engine.h"
#include "test_util.h"

namespace cep {
namespace {

using testing_util::BikeSchema;
using testing_util::RunAll;

class EngineSelectionTest : public ::testing::Test {
 protected:
  std::vector<EventPtr> TwoByTwo() {
    return {fixture_.Req(1 * kMinute, 1, 42), fixture_.Req(2 * kMinute, 2, 42),
            fixture_.Unlock(3 * kMinute, 3, 42, 7),
            fixture_.Unlock(4 * kMinute, 4, 42, 8)};
  }

  BikeSchema fixture_;
};

TEST_F(EngineSelectionTest, StrategyNamesAreDistinct) {
  EXPECT_STREQ(SelectionStrategyName(SelectionStrategy::kSkipTillAnyMatch),
               "skip-till-any-match");
  EXPECT_STREQ(SelectionStrategyName(SelectionStrategy::kSkipTillNextMatch),
               "skip-till-next-match");
  EXPECT_STREQ(SelectionStrategyName(SelectionStrategy::kStrictContiguity),
               "strict-contiguity");
}

TEST_F(EngineSelectionTest, SkipTillAnyMatchBranches) {
  NfaPtr nfa = fixture_.Compile(
      "PATTERN SEQ(req a, unlock c) WHERE c.uid = a.uid WITHIN 10 min");
  EngineOptions options;
  options.selection = SelectionStrategy::kSkipTillAnyMatch;
  EXPECT_EQ(RunAll(nfa, options, TwoByTwo()).size(), 4u);
}

TEST_F(EngineSelectionTest, SkipTillNextMatchTakesFirstOnly) {
  NfaPtr nfa = fixture_.Compile(
      "PATTERN SEQ(req a, unlock c) WHERE c.uid = a.uid WITHIN 10 min");
  EngineOptions options;
  options.selection = SelectionStrategy::kSkipTillNextMatch;
  // Each req-run greedily takes the first matching unlock: 2 matches
  // (r1+u1, r2+u1 — both runs take u1 since runs are independent).
  const auto matches = RunAll(nfa, options, TwoByTwo());
  EXPECT_EQ(matches.size(), 2u);
  for (const auto& m : matches) {
    EXPECT_EQ(m.bindings[1][0]->attribute("bid"), Value(7));
  }
}

TEST_F(EngineSelectionTest, SkipTillNextMatchSkipsIrrelevantEvents) {
  NfaPtr nfa = fixture_.Compile(
      "PATTERN SEQ(req a, unlock c) WHERE c.uid = a.uid WITHIN 10 min");
  EngineOptions options;
  options.selection = SelectionStrategy::kSkipTillNextMatch;
  // A non-matching unlock (other user) is skipped, not fatal.
  const auto matches = RunAll(nfa, options,
                              {fixture_.Req(1 * kMinute, 1, 42),
                               fixture_.Unlock(2 * kMinute, 2, 99, 9),
                               fixture_.Unlock(3 * kMinute, 3, 42, 7)});
  EXPECT_EQ(matches.size(), 1u);
}

TEST_F(EngineSelectionTest, StrictContiguityKillsOnGap) {
  NfaPtr nfa = fixture_.Compile(
      "PATTERN SEQ(req a, unlock c) WHERE c.uid = a.uid WITHIN 10 min");
  EngineOptions options;
  options.selection = SelectionStrategy::kStrictContiguity;
  // The intervening foreign unlock breaks contiguity for the req-run.
  const auto broken = RunAll(nfa, options,
                             {fixture_.Req(1 * kMinute, 1, 42),
                              fixture_.Unlock(2 * kMinute, 2, 99, 9),
                              fixture_.Unlock(3 * kMinute, 3, 42, 7)});
  EXPECT_TRUE(broken.empty());
  const auto adjacent = RunAll(nfa, options,
                               {fixture_.Req(1 * kMinute, 1, 42),
                                fixture_.Unlock(2 * kMinute, 3, 42, 7)});
  EXPECT_EQ(adjacent.size(), 1u);
}

TEST_F(EngineSelectionTest, StrictContiguityKleeneRun) {
  NfaPtr nfa = fixture_.Compile(
      "PATTERN SEQ(req a, avail+ b[], unlock c) WITHIN 10 min");
  EngineOptions options;
  options.selection = SelectionStrategy::kStrictContiguity;
  // Contiguous req, avail, avail, unlock: exactly one (maximal) match.
  const auto matches = RunAll(nfa, options,
                              {fixture_.Req(1 * kMinute, 1, 42),
                               fixture_.Avail(2 * kMinute, 1, 1),
                               fixture_.Avail(3 * kMinute, 1, 2),
                               fixture_.Unlock(4 * kMinute, 1, 42, 7)});
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].bindings[1].size(), 2u);
}

TEST_F(EngineSelectionTest, MatchCountOrdering) {
  // STAM produces at least as many matches as STNM, which produces at least
  // as many as strict contiguity — on any stream.
  NfaPtr nfa = fixture_.Compile(
      "PATTERN SEQ(req a, avail+ b[], unlock c) WITHIN 10 min");
  const std::vector<EventPtr> stream = {
      fixture_.Req(1 * kMinute, 1, 42),   fixture_.Avail(2 * kMinute, 1, 1),
      fixture_.Req(3 * kMinute, 2, 43),   fixture_.Avail(4 * kMinute, 1, 2),
      fixture_.Unlock(5 * kMinute, 1, 42, 7),
      fixture_.Unlock(6 * kMinute, 1, 43, 8)};
  EngineOptions stam, stnm, strict;
  stam.selection = SelectionStrategy::kSkipTillAnyMatch;
  stnm.selection = SelectionStrategy::kSkipTillNextMatch;
  strict.selection = SelectionStrategy::kStrictContiguity;
  const size_t n_stam = RunAll(nfa, stam, stream).size();
  const size_t n_stnm = RunAll(nfa, stnm, stream).size();
  const size_t n_strict = RunAll(nfa, strict, stream).size();
  EXPECT_GE(n_stam, n_stnm);
  EXPECT_GE(n_stnm, n_strict);
  EXPECT_GT(n_stam, 0u);
}

TEST_F(EngineSelectionTest, InPlaceStrategiesKeepRunCountLow) {
  NfaPtr nfa = fixture_.Compile(
      "PATTERN SEQ(req a, avail+ b[], unlock c) WITHIN 10 min");
  EngineOptions options;
  options.selection = SelectionStrategy::kSkipTillNextMatch;
  Engine engine(nfa, options);
  CEP_ASSERT_OK(engine.ProcessEvent(fixture_.Req(1 * kMinute, 1, 42)));
  for (int i = 0; i < 10; ++i) {
    CEP_ASSERT_OK(
        engine.ProcessEvent(fixture_.Avail((2 + i) * kMinute / 2, 1, i)));
  }
  // One run that swallowed every avail — no exponential branching.
  EXPECT_EQ(engine.num_runs(), 1u);
}

}  // namespace
}  // namespace cep
