#include "common/string_util.h"

#include <gtest/gtest.h>

namespace cep {
namespace {

TEST(SplitStringTest, BasicSplit) {
  EXPECT_EQ(SplitString("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitStringTest, KeepsEmptyFields) {
  EXPECT_EQ(SplitString(",a,,b,", ','),
            (std::vector<std::string>{"", "a", "", "b", ""}));
  EXPECT_EQ(SplitString("", ','), (std::vector<std::string>{""}));
}

TEST(StripWhitespaceTest, StripsBothEnds) {
  EXPECT_EQ(StripWhitespace("  abc \t\n"), "abc");
  EXPECT_EQ(StripWhitespace("abc"), "abc");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" a b "), "a b");
}

TEST(EqualsIgnoreCaseTest, Matches) {
  EXPECT_TRUE(EqualsIgnoreCase("PATTERN", "pattern"));
  EXPECT_TRUE(EqualsIgnoreCase("SeQ", "sEq"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abd"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abcd"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
}

TEST(ParseInt64Test, ParsesValidIntegers) {
  EXPECT_EQ(ParseInt64("42").ValueOrDie(), 42);
  EXPECT_EQ(ParseInt64("-17").ValueOrDie(), -17);
  EXPECT_EQ(ParseInt64("  8  ").ValueOrDie(), 8);
  EXPECT_EQ(ParseInt64("0").ValueOrDie(), 0);
}

TEST(ParseInt64Test, RejectsGarbage) {
  EXPECT_TRUE(ParseInt64("").status().IsParseError());
  EXPECT_TRUE(ParseInt64("abc").status().IsParseError());
  EXPECT_TRUE(ParseInt64("12x").status().IsParseError());
  EXPECT_TRUE(ParseInt64("1.5").status().IsParseError());
  EXPECT_TRUE(ParseInt64("99999999999999999999").status().IsOutOfRange());
}

TEST(ParseDoubleTest, ParsesValidDoubles) {
  EXPECT_DOUBLE_EQ(ParseDouble("2.5").ValueOrDie(), 2.5);
  EXPECT_DOUBLE_EQ(ParseDouble("-1e3").ValueOrDie(), -1000.0);
  EXPECT_DOUBLE_EQ(ParseDouble("7").ValueOrDie(), 7.0);
}

TEST(ParseDoubleTest, RejectsGarbage) {
  EXPECT_TRUE(ParseDouble("").status().IsParseError());
  EXPECT_TRUE(ParseDouble("1.2.3").status().IsParseError());
  EXPECT_TRUE(ParseDouble("x").status().IsParseError());
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(JoinStringsTest, JoinsWithSeparator) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({"solo"}, ","), "solo");
  EXPECT_EQ(JoinStrings({}, ","), "");
}

}  // namespace
}  // namespace cep
