#include "nfa/compiler.h"

#include <gtest/gtest.h>

#include "nfa/dot.h"
#include "test_util.h"

namespace cep {
namespace {

using testing_util::BikeSchema;

class NfaCompilerTest : public ::testing::Test {
 protected:
  BikeSchema fixture_;
};

TEST_F(NfaCompilerTest, PlainSequenceChain) {
  NfaPtr nfa = fixture_.Compile(
      "PATTERN SEQ(req a, avail m, unlock c) WITHIN 1 min");
  ASSERT_NE(nfa, nullptr);
  // S0 (await a) -> S1 (await m) -> S2 (await c) -> S3 final.
  ASSERT_EQ(nfa->num_states(), 4u);
  EXPECT_EQ(nfa->state(0).var_index, 0);
  EXPECT_FALSE(nfa->state(0).is_final);
  ASSERT_EQ(nfa->state(0).edges.size(), 1u);
  EXPECT_EQ(nfa->state(0).edges[0].kind, EdgeKind::kTake);
  EXPECT_EQ(nfa->state(0).edges[0].target, 1);
  EXPECT_EQ(nfa->state(2).edges[0].target, 3);
  EXPECT_TRUE(nfa->state(3).is_final);
  EXPECT_TRUE(nfa->state(3).edges.empty());
}

TEST_F(NfaCompilerTest, PredicatesLandOnTheRightEdges) {
  NfaPtr nfa = fixture_.Compile(
      "PATTERN SEQ(req a, unlock c) "
      "WHERE a.loc > 0, c.uid = a.uid WITHIN 1 min");
  ASSERT_NE(nfa, nullptr);
  EXPECT_EQ(nfa->state(0).edges[0].predicates.size(), 1u);
  EXPECT_EQ(nfa->state(1).edges[0].predicates.size(), 1u);
}

TEST_F(NfaCompilerTest, KleeneProducesEntryAndLoopStates) {
  NfaPtr nfa = fixture_.Compile(
      "PATTERN SEQ(req a, avail+ b[], unlock c) "
      "WHERE COUNT(b[]) > 2 WITHIN 1 min");
  ASSERT_NE(nfa, nullptr);
  // S0 await a, S1 await first b, S2 in-kleene b, S3 await... no: c's entry
  // edges are hosted on S2; S3 is the final state.
  ASSERT_EQ(nfa->num_states(), 4u);
  const State& kleene = nfa->state(2);
  EXPECT_TRUE(kleene.in_kleene);
  ASSERT_EQ(kleene.edges.size(), 2u);
  EXPECT_EQ(kleene.edges[0].kind, EdgeKind::kKleeneTake);
  EXPECT_EQ(kleene.edges[0].target, 2);  // self loop
  EXPECT_EQ(kleene.edges[1].kind, EdgeKind::kTake);
  EXPECT_EQ(kleene.edges[1].exit_var, 1);
  EXPECT_EQ(kleene.edges[1].exit_predicates.size(), 1u);  // COUNT check
  EXPECT_EQ(kleene.edges[1].target, 3);
  EXPECT_TRUE(nfa->state(3).is_final);
}

TEST_F(NfaCompilerTest, TrailingKleeneStateIsFinalWithLoop) {
  NfaPtr nfa = fixture_.Compile(
      "PATTERN SEQ(req a, avail+ b[]) WHERE COUNT(b[]) > 1 WITHIN 1 min");
  ASSERT_NE(nfa, nullptr);
  ASSERT_EQ(nfa->num_states(), 3u);
  const State& kleene = nfa->state(2);
  EXPECT_TRUE(kleene.is_final);
  EXPECT_TRUE(kleene.in_kleene);
  ASSERT_EQ(kleene.edges.size(), 1u);  // only the self loop
  EXPECT_EQ(kleene.edges[0].target, 2);
  EXPECT_EQ(kleene.final_predicates.size(), 1u);  // COUNT gate at emission
}

TEST_F(NfaCompilerTest, NegationBecomesKillEdge) {
  NfaPtr nfa = fixture_.Compile(
      "PATTERN SEQ(req a, NOT avail x, unlock c) "
      "WHERE x.loc = a.loc WITHIN 1 min");
  ASSERT_NE(nfa, nullptr);
  // States: S0 await a, S1 await c (with kill), S2 final.
  ASSERT_EQ(nfa->num_states(), 3u);
  const State& awaiting_c = nfa->state(1);
  ASSERT_EQ(awaiting_c.edges.size(), 2u);
  EXPECT_EQ(awaiting_c.edges[0].kind, EdgeKind::kKill);
  EXPECT_EQ(awaiting_c.edges[0].var_index, 1);
  EXPECT_EQ(awaiting_c.edges[0].predicates.size(), 1u);
  EXPECT_EQ(awaiting_c.edges[0].target, -1);
  EXPECT_EQ(awaiting_c.edges[1].kind, EdgeKind::kTake);
}

TEST_F(NfaCompilerTest, DoubleNegationTwoKillEdges) {
  NfaPtr nfa = fixture_.Compile(
      "PATTERN SEQ(req a, NOT avail x, NOT unlock y, req c) WITHIN 1 min");
  ASSERT_NE(nfa, nullptr);
  const State& awaiting_c = nfa->state(1);
  ASSERT_EQ(awaiting_c.edges.size(), 3u);
  EXPECT_EQ(awaiting_c.edges[0].kind, EdgeKind::kKill);
  EXPECT_EQ(awaiting_c.edges[1].kind, EdgeKind::kKill);
  EXPECT_EQ(awaiting_c.edges[2].kind, EdgeKind::kTake);
}

TEST_F(NfaCompilerTest, LeadingKleene) {
  NfaPtr nfa = fixture_.Compile(
      "PATTERN SEQ(avail+ b[], unlock c) WITHIN 1 min");
  ASSERT_NE(nfa, nullptr);
  // S0 await first b, S1 in-kleene, S2 final.
  ASSERT_EQ(nfa->num_states(), 3u);
  EXPECT_EQ(nfa->state(0).edges[0].target, 1);
  EXPECT_TRUE(nfa->state(1).in_kleene);
}

TEST_F(NfaCompilerTest, BackToBackKleene) {
  NfaPtr nfa = fixture_.Compile(
      "PATTERN SEQ(req a, avail+ b[], unlock+ u[]) WITHIN 1 min");
  ASSERT_NE(nfa, nullptr);
  // S0 await a, S1 await first b, S2 in-kleene b, S3 in-kleene u (final).
  // u's entry edge is hosted on S2; u has no reachable awaiting state.
  ASSERT_EQ(nfa->num_states(), 4u);
  const State& b_state = nfa->state(2);
  ASSERT_EQ(b_state.edges.size(), 2u);
  EXPECT_EQ(b_state.edges[1].target, 3);
  EXPECT_TRUE(nfa->state(3).is_final);
  EXPECT_TRUE(nfa->state(3).in_kleene);
}

TEST_F(NfaCompilerTest, SingleVariablePattern) {
  NfaPtr nfa = fixture_.Compile(
      "PATTERN SEQ(req a) WHERE a.loc > 3 WITHIN 1 min");
  ASSERT_NE(nfa, nullptr);
  ASSERT_EQ(nfa->num_states(), 2u);
  EXPECT_TRUE(nfa->state(1).is_final);
}

TEST_F(NfaCompilerTest, ToStringAndDotRenderEveryState) {
  NfaPtr nfa = fixture_.Compile(
      "PATTERN SEQ(req a, avail+ b[], unlock c) "
      "WHERE diff(b[i].loc, a.loc) < 5 WITHIN 10 min");
  ASSERT_NE(nfa, nullptr);
  const std::string text = nfa->ToString();
  for (size_t i = 0; i < nfa->num_states(); ++i) {
    EXPECT_NE(text.find("S" + std::to_string(i)), std::string::npos);
  }
  const std::string dot = NfaToDot(*nfa);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
}

TEST_F(NfaCompilerTest, TrailingNegationDeferredFinal) {
  NfaPtr nfa = fixture_.Compile(
      "PATTERN SEQ(req a, NOT unlock x) WHERE x.uid = a.uid WITHIN 1 min");
  ASSERT_NE(nfa, nullptr);
  ASSERT_EQ(nfa->num_states(), 2u);
  const State& final_state = nfa->state(1);
  EXPECT_TRUE(final_state.is_final);
  EXPECT_TRUE(final_state.deferred_final);
  ASSERT_EQ(final_state.edges.size(), 1u);
  EXPECT_EQ(final_state.edges[0].kind, EdgeKind::kKill);
  EXPECT_EQ(final_state.edges[0].var_index, 1);
  // Plain final states are not deferred.
  NfaPtr plain = fixture_.Compile("PATTERN SEQ(req a, unlock c) WITHIN 1 min");
  EXPECT_FALSE(plain->state(2).deferred_final);
}

TEST_F(NfaCompilerTest, WindowIsExposed) {
  NfaPtr nfa =
      fixture_.Compile("PATTERN SEQ(req a) WITHIN 7 min");
  ASSERT_NE(nfa, nullptr);
  EXPECT_EQ(nfa->window(), 7 * kMinute);
}

}  // namespace
}  // namespace cep
