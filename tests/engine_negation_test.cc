#include <gtest/gtest.h>

#include "engine/engine.h"
#include "test_util.h"

namespace cep {
namespace {

using testing_util::BikeSchema;
using testing_util::RunAll;

class EngineNegationTest : public ::testing::Test {
 protected:
  BikeSchema fixture_;
  EngineOptions options_;
};

TEST_F(EngineNegationTest, ViolationKillsTheRun) {
  // req .. (no avail) .. unlock — any avail in between kills the match.
  NfaPtr nfa = fixture_.Compile(
      "PATTERN SEQ(req a, NOT avail x, unlock c) WITHIN 10 min");
  const auto matches = RunAll(nfa, options_,
                              {fixture_.Req(1 * kMinute, 1, 5),
                               fixture_.Avail(2 * kMinute, 1, 1),
                               fixture_.Unlock(3 * kMinute, 1, 5, 9)});
  EXPECT_TRUE(matches.empty());
}

TEST_F(EngineNegationTest, NoViolationMatches) {
  NfaPtr nfa = fixture_.Compile(
      "PATTERN SEQ(req a, NOT avail x, unlock c) WITHIN 10 min");
  const auto matches = RunAll(nfa, options_,
                              {fixture_.Req(1 * kMinute, 1, 5),
                               fixture_.Unlock(3 * kMinute, 1, 5, 9)});
  EXPECT_EQ(matches.size(), 1u);
}

TEST_F(EngineNegationTest, PredicatedNegationOnlyKillsOnCondition) {
  // Only avail events at the same loc as the request forbid the match.
  NfaPtr nfa = fixture_.Compile(
      "PATTERN SEQ(req a, NOT avail x, unlock c) "
      "WHERE x.loc = a.loc WITHIN 10 min");
  const auto matches = RunAll(nfa, options_,
                              {fixture_.Req(1 * kMinute, 1, 5),
                               fixture_.Avail(2 * kMinute, 99, 1),  // elsewhere
                               fixture_.Unlock(3 * kMinute, 1, 5, 9)});
  EXPECT_EQ(matches.size(), 1u);
  const auto killed = RunAll(nfa, options_,
                             {fixture_.Req(1 * kMinute, 1, 5),
                              fixture_.Avail(2 * kMinute, 1, 1),  // same loc
                              fixture_.Unlock(3 * kMinute, 1, 5, 9)});
  EXPECT_TRUE(killed.empty());
}

TEST_F(EngineNegationTest, ViolationBeforeAnchorIsIrrelevant) {
  // An avail before the req does not affect the match.
  NfaPtr nfa = fixture_.Compile(
      "PATTERN SEQ(req a, NOT avail x, unlock c) WITHIN 10 min");
  const auto matches = RunAll(nfa, options_,
                              {fixture_.Avail(1 * kMinute, 1, 1),
                               fixture_.Req(2 * kMinute, 1, 5),
                               fixture_.Unlock(3 * kMinute, 1, 5, 9)});
  EXPECT_EQ(matches.size(), 1u);
}

TEST_F(EngineNegationTest, ViolationAfterCompletionIsIrrelevant) {
  NfaPtr nfa = fixture_.Compile(
      "PATTERN SEQ(req a, NOT avail x, unlock c) WITHIN 10 min");
  const auto matches = RunAll(nfa, options_,
                              {fixture_.Req(1 * kMinute, 1, 5),
                               fixture_.Unlock(2 * kMinute, 1, 5, 9),
                               fixture_.Avail(3 * kMinute, 1, 1)});
  EXPECT_EQ(matches.size(), 1u);
}

TEST_F(EngineNegationTest, KillOnlyAffectsRunsInTheGap) {
  NfaPtr nfa = fixture_.Compile(
      "PATTERN SEQ(req a, NOT avail x, unlock c) WITHIN 10 min");
  // First req is killed by the avail; a second req arriving after the avail
  // is not.
  const auto matches = RunAll(nfa, options_,
                              {fixture_.Req(1 * kMinute, 1, 5),
                               fixture_.Avail(2 * kMinute, 1, 1),
                               fixture_.Req(3 * kMinute, 1, 6),
                               fixture_.Unlock(4 * kMinute, 1, 6, 9)});
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].bindings[0][0]->attribute("uid"), Value(6));
}

TEST_F(EngineNegationTest, DoubleNegation) {
  NfaPtr nfa = fixture_.Compile(
      "PATTERN SEQ(req a, NOT avail x, NOT unlock y, req c) "
      "WHERE y.uid = a.uid WITHIN 10 min");
  // A foreign-user unlock does not kill; a matching one does.
  const auto survives = RunAll(nfa, options_,
                               {fixture_.Req(1 * kMinute, 1, 5),
                                fixture_.Unlock(2 * kMinute, 1, 99, 9),
                                fixture_.Req(3 * kMinute, 2, 7)});
  EXPECT_EQ(survives.size(), 1u);
  const auto killed = RunAll(nfa, options_,
                             {fixture_.Req(1 * kMinute, 1, 5),
                              fixture_.Unlock(2 * kMinute, 1, 5, 9),
                              fixture_.Req(3 * kMinute, 2, 7)});
  EXPECT_TRUE(killed.empty());
}

TEST_F(EngineNegationTest, NegationBeforeKleene) {
  NfaPtr nfa = fixture_.Compile(
      "PATTERN SEQ(req a, NOT unlock x, avail+ b[]) "
      "WHERE x.uid = a.uid WITHIN 10 min");
  // The unlock by the same user between req and the first avail kills it.
  const auto killed = RunAll(nfa, options_,
                             {fixture_.Req(1 * kMinute, 1, 5),
                              fixture_.Unlock(2 * kMinute, 1, 5, 9),
                              fixture_.Avail(3 * kMinute, 1, 1)});
  EXPECT_TRUE(killed.empty());
  // Once the Kleene part has started, later unlocks are fine.
  const auto survives = RunAll(nfa, options_,
                               {fixture_.Req(1 * kMinute, 1, 5),
                                fixture_.Avail(2 * kMinute, 1, 1),
                                fixture_.Unlock(3 * kMinute, 1, 5, 9),
                                fixture_.Avail(4 * kMinute, 1, 2)});
  EXPECT_GE(survives.size(), 1u);
}

TEST_F(EngineNegationTest, TrailingNegationEmitsOnWindowClose) {
  // "A request not followed by any unlock of the same user within 10 min."
  NfaPtr nfa = fixture_.Compile(
      "PATTERN SEQ(req a, NOT unlock x) WHERE x.uid = a.uid WITHIN 10 min");
  Engine engine(nfa, EngineOptions{});
  CEP_ASSERT_OK(engine.ProcessEvent(fixture_.Req(1 * kMinute, 1, 5)));
  EXPECT_EQ(engine.matches().size(), 0u);  // deferred
  EXPECT_EQ(engine.num_runs(), 1u);
  // An unrelated event after the window closes confirms the match.
  CEP_ASSERT_OK(engine.ProcessEvent(fixture_.Avail(12 * kMinute, 1, 1)));
  ASSERT_EQ(engine.matches().size(), 1u);
  EXPECT_EQ(engine.matches()[0].bindings[0][0]->attribute("uid"), Value(5));
  EXPECT_EQ(engine.num_runs(), 0u);
}

TEST_F(EngineNegationTest, TrailingNegationViolationSuppressesMatch) {
  NfaPtr nfa = fixture_.Compile(
      "PATTERN SEQ(req a, NOT unlock x) WHERE x.uid = a.uid WITHIN 10 min");
  Engine engine(nfa, EngineOptions{});
  CEP_ASSERT_OK(engine.ProcessEvent(fixture_.Req(1 * kMinute, 1, 5)));
  CEP_ASSERT_OK(engine.ProcessEvent(fixture_.Unlock(3 * kMinute, 2, 5, 9)));
  CEP_ASSERT_OK(engine.ProcessEvent(fixture_.Avail(12 * kMinute, 1, 1)));
  EXPECT_TRUE(engine.matches().empty());
  EXPECT_EQ(engine.metrics().runs_killed, 1u);
}

TEST_F(EngineNegationTest, TrailingNegationForeignViolatorIsIgnored) {
  NfaPtr nfa = fixture_.Compile(
      "PATTERN SEQ(req a, NOT unlock x) WHERE x.uid = a.uid WITHIN 10 min");
  Engine engine(nfa, EngineOptions{});
  CEP_ASSERT_OK(engine.ProcessEvent(fixture_.Req(1 * kMinute, 1, 5)));
  CEP_ASSERT_OK(engine.ProcessEvent(fixture_.Unlock(3 * kMinute, 2, 99, 9)));
  CEP_ASSERT_OK(engine.ProcessEvent(fixture_.Avail(12 * kMinute, 1, 1)));
  EXPECT_EQ(engine.matches().size(), 1u);
}

TEST_F(EngineNegationTest, FlushConfirmsPendingTrailingNegations) {
  NfaPtr nfa = fixture_.Compile(
      "PATTERN SEQ(req a, NOT unlock x) WHERE x.uid = a.uid WITHIN 10 min");
  Engine engine(nfa, EngineOptions{});
  CEP_ASSERT_OK(engine.ProcessEvent(fixture_.Req(1 * kMinute, 1, 5)));
  CEP_ASSERT_OK(engine.ProcessEvent(fixture_.Req(2 * kMinute, 2, 6)));
  EXPECT_TRUE(engine.matches().empty());
  CEP_ASSERT_OK(engine.Flush());
  EXPECT_EQ(engine.matches().size(), 2u);
  EXPECT_EQ(engine.num_runs(), 0u);
  // Flush is idempotent.
  CEP_ASSERT_OK(engine.Flush());
  EXPECT_EQ(engine.matches().size(), 2u);
}

TEST_F(EngineNegationTest, TrailingNegationBetweenPositivesStillWorks) {
  // Mixed: an inner negation and a trailing one.
  NfaPtr nfa = fixture_.Compile(
      "PATTERN SEQ(req a, NOT avail y, req b, NOT unlock x) "
      "WHERE x.uid = a.uid WITHIN 10 min");
  // Run: a@1, b@2; no avail between; no unlock by uid 5 afterwards.
  const auto matches = testing_util::RunAll(
      nfa, EngineOptions{},
      {fixture_.Req(1 * kMinute, 1, 5), fixture_.Req(2 * kMinute, 2, 6),
       fixture_.Unlock(3 * kMinute, 1, 99, 1)});
  // Matches: (a@1, b@2) pending -> flushed. The run started at a@2 never
  // gets a second req, so exactly one match.
  EXPECT_EQ(matches.size(), 1u);
}

TEST_F(EngineNegationTest, KilledRunsAreCounted) {
  NfaPtr nfa = fixture_.Compile(
      "PATTERN SEQ(req a, NOT avail x, unlock c) WITHIN 10 min");
  Engine engine(nfa, options_);
  CEP_ASSERT_OK(engine.ProcessEvent(fixture_.Req(1 * kMinute, 1, 5)));
  CEP_ASSERT_OK(engine.ProcessEvent(fixture_.Req(1 * kMinute, 2, 6)));
  CEP_ASSERT_OK(engine.ProcessEvent(fixture_.Avail(2 * kMinute, 1, 1)));
  EXPECT_EQ(engine.metrics().runs_killed, 2u);
  EXPECT_EQ(engine.num_runs(), 0u);
}

}  // namespace
}  // namespace cep
