#include "shedding/sketch.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "common/rng.h"

namespace cep {
namespace {

TEST(CountMinSketchTest, NeverUndercounts) {
  CountMinSketch sketch(64, 4);
  Rng rng(5);
  std::vector<std::pair<uint64_t, double>> truth;
  for (int i = 0; i < 200; ++i) {
    const uint64_t key = rng.NextBounded(500);
    sketch.Add(key, 1.0);
    bool found = false;
    for (auto& [k, v] : truth) {
      if (k == key) {
        v += 1.0;
        found = true;
      }
    }
    if (!found) truth.emplace_back(key, 1.0);
  }
  for (const auto& [key, count] : truth) {
    EXPECT_GE(sketch.Estimate(key), count) << "key " << key;
  }
}

TEST(CountMinSketchTest, ExactWhenSparse) {
  // Far fewer keys than width: estimates are exact with high probability.
  CountMinSketch sketch(1 << 12, 4);
  for (uint64_t k = 0; k < 20; ++k) sketch.Add(k, static_cast<double>(k + 1));
  for (uint64_t k = 0; k < 20; ++k) {
    EXPECT_DOUBLE_EQ(sketch.Estimate(k), static_cast<double>(k + 1));
  }
  EXPECT_DOUBLE_EQ(sketch.Estimate(999), 0.0);
}

TEST(CountMinSketchTest, TextSaveLoadRoundTripsAdversarialDoubles) {
  // Regression: Save streamed cells at the default ostream precision (6
  // significant figures), so each text save/load cycle silently rounded the
  // learned counters. Adversarial magnitudes must now round-trip bit-exactly.
  const double kAdversarial[] = {
      std::numeric_limits<double>::denorm_min(),        // smallest subnormal
      std::numeric_limits<double>::min() / 2,           // subnormal
      std::numeric_limits<double>::min(),               // smallest normal
      1e-300,
      0.1 + 0.2,                                        // 0.30000000000000004
      1.0 + std::numeric_limits<double>::epsilon(),     // 17-digit payload
      12345678.910111213,
      1e300,
      std::numeric_limits<double>::max(),
  };
  CountMinSketch sketch(32, 3, 0xabcd);
  uint64_t key = 1;
  for (const double v : kAdversarial) sketch.Add(key++, v);

  std::stringstream buffer;
  ASSERT_TRUE(sketch.Save(buffer).ok());
  CountMinSketch loaded(32, 3, 0xabcd);
  ASSERT_TRUE(loaded.Load(buffer).ok());

  key = 1;
  for (const double v : kAdversarial) {
    const double expected = sketch.Estimate(key);
    const double actual = loaded.Estimate(key);
    EXPECT_EQ(expected, actual)
        << "cell for value " << v << " did not round-trip bit-exactly";
    ++key;
  }

  // A second save must be byte-identical to the first: the text codec has a
  // fixed point after one cycle or state drifts on every warm start.
  std::stringstream again;
  ASSERT_TRUE(loaded.Save(again).ok());
  EXPECT_EQ(buffer.str(), again.str());
}

TEST(CountMinSketchTest, SavePreservesCallerStreamPrecision) {
  std::ostringstream out;
  out.precision(3);
  CountMinSketch sketch(8, 1);
  sketch.Add(1, 1.0);
  ASSERT_TRUE(sketch.Save(out).ok());
  EXPECT_EQ(out.precision(), 3);
  out << 0.123456789;
  const std::string text = out.str();
  EXPECT_TRUE(text.ends_with("0.123"))
      << "Save leaked its precision change into the caller's stream: "
      << text;
}

TEST(CountMinSketchTest, OverestimateBoundedByTheory) {
  const size_t width = 256;
  CountMinSketch sketch(width, 4);
  Rng rng(7);
  const int n = 5000;
  for (int i = 0; i < n; ++i) sketch.Add(rng.NextBounded(2000), 1.0);
  // Point query error <= 2N/width with prob 1 - 2^-depth; check an unseen key
  // (true count 0) stays within a loose multiple of that bound.
  const double bound = 2.0 * n / static_cast<double>(width);
  EXPECT_LE(sketch.Estimate(0xdeadbeef), 2.0 * bound);
}

TEST(CountMinSketchTest, ClearResets) {
  CountMinSketch sketch(64, 2);
  sketch.Add(42, 10.0);
  EXPECT_GE(sketch.Estimate(42), 10.0);
  sketch.Clear();
  EXPECT_DOUBLE_EQ(sketch.Estimate(42), 0.0);
}

TEST(CountMinSketchTest, MinimumDimensionsEnforced) {
  CountMinSketch sketch(1, 0);
  EXPECT_GE(sketch.width(), 8u);
  EXPECT_GE(sketch.depth(), 1u);
  sketch.Add(1, 1.0);
  EXPECT_GE(sketch.Estimate(1), 1.0);
}

TEST(CountMinSketchTest, NegativeOrZeroAddIgnored) {
  CountMinSketch sketch(64, 2);
  sketch.Add(1, 0.0);
  sketch.Add(1, -5.0);
  EXPECT_DOUBLE_EQ(sketch.Estimate(1), 0.0);
}

TEST(SketchBackendTest, BehavesLikeCounterBackend) {
  SketchCounterBackend backend(1 << 10, 4);
  EXPECT_DOUBLE_EQ(backend.Ratio(7, 0.9), 0.9);  // unseen
  backend.Add(7, 0.0, 1.0);
  backend.Add(7, 0.0, 1.0);
  backend.Add(7, 1.0, 0.0);
  EXPECT_DOUBLE_EQ(backend.Ratio(7, 0.0), 0.5);
  EXPECT_DOUBLE_EQ(backend.Support(7), 2.0);
  EXPECT_EQ(backend.name(), "count-min");
  EXPECT_GT(backend.MemoryBytes(), 0u);
  backend.Clear();
  EXPECT_DOUBLE_EQ(backend.Support(7), 0.0);
}

TEST(SketchBackendTest, MemoryIsIndependentOfKeyCount) {
  SketchCounterBackend backend(256, 4);
  const size_t before = backend.MemoryBytes();
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) backend.Add(rng.Next(), 1.0, 1.0);
  EXPECT_EQ(backend.MemoryBytes(), before);
}

/// Property sweep: across widths, sketch ratios approximate exact ratios for
/// skewed key distributions.
class SketchAccuracyProperty : public ::testing::TestWithParam<size_t> {};

TEST_P(SketchAccuracyProperty, RatiosTrackExactBackend) {
  const size_t width = GetParam();
  SketchCounterBackend sketch(width, 4);
  ExactCounterBackend exact;
  Rng rng(13);
  for (int i = 0; i < 3000; ++i) {
    const uint64_t key = rng.NextZipf(100, 1.2);
    const double num = rng.NextBernoulli(0.3) ? 1.0 : 0.0;
    sketch.Add(key, num, 1.0);
    exact.Add(key, num, 1.0);
  }
  // Heavy hitters (keys 0..4 under Zipf) must be estimated well.
  for (uint64_t key = 0; key < 5; ++key) {
    EXPECT_NEAR(sketch.Ratio(key, 0), exact.Ratio(key, 0), 0.15)
        << "width=" << width << " key=" << key;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, SketchAccuracyProperty,
                         ::testing::Values(512, 2048, 8192));

}  // namespace
}  // namespace cep
