#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <unordered_set>

#include "common/hash.h"
#include "common/rng.h"

namespace cep {
namespace {

TEST(HashTest, Mix64IsDeterministic) {
  EXPECT_EQ(Mix64(12345), Mix64(12345));
  EXPECT_NE(Mix64(12345), Mix64(12346));
}

TEST(HashTest, Mix64SpreadsSequentialInputs) {
  // Consecutive keys must land in different high bits most of the time.
  std::unordered_set<uint64_t> tops;
  for (uint64_t i = 0; i < 256; ++i) tops.insert(Mix64(i) >> 56);
  EXPECT_GT(tops.size(), 100u);
}

TEST(HashTest, HashBytesMatchesKnownFnvVector) {
  // FNV-1a 64-bit of "a" is a published constant.
  EXPECT_EQ(HashBytes("a", 1), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(HashBytes("", 0), 0xcbf29ce484222325ULL);
}

TEST(HashTest, HashCombineOrderMatters) {
  const uint64_t a = Mix64(1), b = Mix64(2);
  EXPECT_NE(HashCombine(HashCombine(0, a), b),
            HashCombine(HashCombine(0, b), a));
}

TEST(HashTest, HashStringEqualsHashBytes) {
  EXPECT_EQ(HashString("hello"), HashBytes("hello", 5));
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequencyApproximatesP) {
  Rng rng(21);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.NextBernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, ExponentialMeanApproximatesInverseRate) {
  Rng rng(13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.03);
}

TEST(RngTest, GaussianMomentsApproximate) {
  Rng rng(17);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian(5.0, 2.0);
    sum += g;
    sq += g * g;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(RngTest, PoissonMeanApproximates) {
  Rng rng(19);
  double small_sum = 0, large_sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    small_sum += static_cast<double>(rng.NextPoisson(3.0));
    large_sum += static_cast<double>(rng.NextPoisson(50.0));
  }
  EXPECT_NEAR(small_sum / n, 3.0, 0.1);
  EXPECT_NEAR(large_sum / n, 50.0, 0.5);
  EXPECT_EQ(rng.NextPoisson(0.0), 0u);
}

TEST(RngTest, ZipfFavorsLowRanks) {
  Rng rng(23);
  int first = 0, last = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const uint64_t r = rng.NextZipf(100, 1.0);
    EXPECT_LT(r, 100u);
    if (r == 0) ++first;
    if (r == 99) ++last;
  }
  EXPECT_GT(first, 20 * std::max(last, 1));
}

TEST(RngTest, ZipfZeroExponentIsUniformish) {
  Rng rng(29);
  int low_half = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextZipf(10, 0.0) < 5) ++low_half;
  }
  EXPECT_NEAR(static_cast<double>(low_half) / n, 0.5, 0.03);
}

TEST(RngTest, PermutationIsAPermutation) {
  Rng rng(31);
  const auto perm = rng.Permutation(50);
  std::set<size_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 49u);
}

TEST(RngTest, PermutationZeroAndOne) {
  Rng rng(33);
  EXPECT_TRUE(rng.Permutation(0).empty());
  EXPECT_EQ(rng.Permutation(1), std::vector<size_t>{0});
}

}  // namespace
}  // namespace cep
