#include "oracle.h"

#include "query/expr.h"

namespace cep {
namespace testing_util {

namespace {

/// BindingView over the oracle's in-progress assignment, honouring the
/// virtual-append contract.
class OracleView final : public BindingView {
 public:
  OracleView(const std::vector<std::vector<EventPtr>>& bindings,
             int current_var, const Event* current)
      : bindings_(bindings), current_var_(current_var), current_(current) {}

  const Event* Single(int var) const override {
    if (var == current_var_ && current_ != nullptr) return current_;
    return bindings_[var].empty() ? nullptr : bindings_[var].front().get();
  }
  int KleeneCount(int var) const override {
    int n = static_cast<int>(bindings_[var].size());
    if (var == current_var_ && current_ != nullptr) ++n;
    return n;
  }
  const Event* KleeneAt(int var, int idx) const override {
    const int stored = static_cast<int>(bindings_[var].size());
    if (idx >= 0 && idx < stored) return bindings_[var][idx].get();
    if (var == current_var_ && current_ != nullptr && idx == stored) {
      return current_;
    }
    return nullptr;
  }
  const Event* Current() const override { return current_; }

 private:
  const std::vector<std::vector<EventPtr>>& bindings_;
  int current_var_;
  const Event* current_;
};

class Searcher {
 public:
  Searcher(const AnalyzedQuery& analyzed, const std::vector<EventPtr>& events)
      : analyzed_(analyzed),
        events_(events),
        window_(analyzed.query.window),
        bindings_(analyzed.query.pattern.size()) {
    // Chain of positive variables with the negated variables guarding the
    // gap before each of them (mirrors the NFA compiler's structure).
    const auto& pattern = analyzed_.query.pattern;
    std::vector<int> pending;
    for (size_t i = 0; i < pattern.size(); ++i) {
      if (pattern[i].kind == VariableKind::kNegated) {
        pending.push_back(static_cast<int>(i));
      } else {
        positives_.push_back(static_cast<int>(i));
        negs_before_.push_back(pending);
        pending.clear();
      }
    }
    trailing_negs_ = std::move(pending);
  }

  Result<std::vector<uint64_t>> Run() {
    CEP_RETURN_NOT_OK(RecursePositive(0, 0, 0));
    return std::move(out_);
  }

 private:
  Result<bool> EvalConjuncts(const std::vector<const Expr*>& conjuncts,
                             int current_var, const Event* current) {
    const OracleView view(bindings_, current_var, current);
    for (const Expr* conjunct : conjuncts) {
      CEP_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*conjunct, view));
      if (!pass) return false;
    }
    return true;
  }

  /// True if any event in stream positions [from, to) violates one of the
  /// negated variables in `negs`.
  Result<bool> GapViolated(const std::vector<int>& negs, size_t from,
                           size_t to) {
    for (const int neg : negs) {
      const auto& pv = analyzed_.query.pattern[neg];
      for (size_t p = from; p < to; ++p) {
        if (events_[p]->type() != pv.type_id) continue;
        CEP_ASSIGN_OR_RETURN(
            bool violated,
            EvalConjuncts(analyzed_.attachments[neg].take, neg,
                          events_[p].get()));
        if (violated) return true;
      }
    }
    return false;
  }

  bool WithinWindow(const Event& event) const {
    return first_ts_ == -1 ||
           event.timestamp() - first_ts_ <= window_;
  }

  /// Emits the current assignment unless a trailing negation is violated by
  /// an event after `after_pos` within the window.
  Status Emit(size_t after_pos) {
    for (const int neg : trailing_negs_) {
      const auto& pv = analyzed_.query.pattern[neg];
      for (size_t p = after_pos; p < events_.size(); ++p) {
        if (events_[p]->timestamp() - first_ts_ > window_) break;
        if (events_[p]->type() != pv.type_id) continue;
        CEP_ASSIGN_OR_RETURN(
            bool violated,
            EvalConjuncts(analyzed_.attachments[neg].take, neg,
                          events_[p].get()));
        if (violated) return Status::OK();
      }
    }
    out_.push_back(MatchFingerprint(bindings_));
    return Status::OK();
  }

  /// Assigns the positive variable at chain position `k`, scanning stream
  /// positions starting at `min_pos`; `prev_end` is one past the stream
  /// position of the most recently bound event (start of the negation gap).
  Status RecursePositive(size_t k, size_t min_pos, size_t prev_end) {
    if (k == positives_.size()) return Emit(prev_end);
    const int var = positives_[k];
    const auto& pv = analyzed_.query.pattern[var];
    for (size_t p = min_pos; p < events_.size(); ++p) {
      const EventPtr& event = events_[p];
      if (event->type() != pv.type_id) continue;
      if (!WithinWindow(*event)) break;  // timestamps are non-decreasing
      CEP_ASSIGN_OR_RETURN(
          bool pass, EvalConjuncts(analyzed_.attachments[var].take, var,
                                   event.get()));
      if (!pass) continue;
      // The gap includes position p itself: an event that both satisfies a
      // kill condition and could bind this variable kills the run in the
      // engine (kill edges are evaluated first).
      CEP_ASSIGN_OR_RETURN(bool violated,
                           GapViolated(negs_before_[k], prev_end, p + 1));
      if (violated) continue;
      const Timestamp saved_first = first_ts_;
      if (first_ts_ == -1) first_ts_ = event->timestamp();
      bindings_[var].push_back(event);
      if (pv.kind == VariableKind::kKleene) {
        CEP_RETURN_NOT_OK(RecurseKleene(k, p + 1));
      } else {
        CEP_RETURN_NOT_OK(RecursePositive(k + 1, p + 1, p + 1));
      }
      bindings_[var].pop_back();
      first_ts_ = saved_first;
    }
    return Status::OK();
  }

  /// Extends the Kleene variable at chain position `k` (>= 1 element bound)
  /// or proceeds past it, enforcing the exit predicates.
  Status RecurseKleene(size_t k, size_t min_pos) {
    const int var = positives_[k];
    // Proceed (or accept, for a trailing Kleene variable) with the current
    // elements if the exit predicates hold.
    CEP_ASSIGN_OR_RETURN(
        bool exit_ok,
        EvalConjuncts(analyzed_.attachments[var].exit, -1, nullptr));
    if (exit_ok) {
      if (k + 1 == positives_.size()) {
        CEP_RETURN_NOT_OK(Emit(min_pos));
      } else {
        CEP_RETURN_NOT_OK(RecursePositive(k + 1, min_pos, min_pos));
      }
    }
    // Take further elements.
    const auto& pv = analyzed_.query.pattern[var];
    for (size_t p = min_pos; p < events_.size(); ++p) {
      const EventPtr& event = events_[p];
      if (event->type() != pv.type_id) continue;
      if (!WithinWindow(*event)) break;
      CEP_ASSIGN_OR_RETURN(
          bool pass, EvalConjuncts(analyzed_.attachments[var].take, var,
                                   event.get()));
      if (!pass) continue;
      bindings_[var].push_back(event);
      CEP_RETURN_NOT_OK(RecurseKleene(k, p + 1));
      bindings_[var].pop_back();
    }
    return Status::OK();
  }

  const AnalyzedQuery& analyzed_;
  const std::vector<EventPtr>& events_;
  const Duration window_;
  std::vector<std::vector<EventPtr>> bindings_;
  std::vector<int> positives_;
  std::vector<std::vector<int>> negs_before_;
  std::vector<int> trailing_negs_;
  Timestamp first_ts_ = -1;
  std::vector<uint64_t> out_;
};

}  // namespace

Result<std::vector<uint64_t>> OracleMatchFingerprints(
    const Nfa& nfa, const std::vector<EventPtr>& events) {
  Searcher searcher(nfa.analyzed(), events);
  return searcher.Run();
}

}  // namespace testing_util
}  // namespace cep
