#!/bin/sh
# End-to-end chaos test for cepshed_server (docs/SERVICE.md).
#
# Baseline: serve two tenants (one with a threads/shards engine, one with
# SBLS shedding) to completion and drain via SIGTERM. Chaos: same streams,
# but the server is SIGKILLed mid-stream, restarted (crash recovery from
# WAL + snapshots), the clients resume with --resume, and the final SIGTERM
# drain must produce byte-identical matches, metrics, and audit artifacts
# for every tenant. The harness tolerates the kill landing after a client
# already finished — resume then skips the whole stream.
#
# Usage: server_smoke_test.sh <cepshed_server> <cepshed_client>
set -e
SERVER="$1"
CLIENT="$2"
WORKDIR="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null
  rm -rf "$WORKDIR"
}
trap cleanup EXIT

awk 'BEGIN { for (i = 1; i <= 1200; i++) print "req," i*1000 "," i%7 "," i }' \
    > "$WORKDIR/a.csv"
awk 'BEGIN { for (i = 1; i <= 800; i++) print "req," i*2000 "," i%5 "," i }' \
    > "$WORKDIR/b.csv"
echo 'PATTERN SEQ(req a, req b) WHERE a.loc = b.loc WITHIN 1 min' \
    > "$WORKDIR/q.sase"

# Tenant A exercises the parallel engine, tenant B latency-triggered SBLS.
A_OPTS='theta=0 threads=3 shards=2 maxruns=64'
B_OPTS='theta=50 shedder=sbls hash=req:loc slices=16 seed=11'

start_server() {
  # $1 = root, $2 = out, $3 = socket, extra args follow
  root="$1"; out="$2"; sock="$3"; shift 3
  mkdir -p "$root" "$out"
  # SIGKILL leaves a stale socket file behind; remove it so the readiness
  # poll below cannot pass before the restarted server has re-bound.
  rm -f "$sock"
  "$SERVER" --root "$root" --out-dir "$out" --socket "$sock" \
      --checkpoint-interval-events 64 "$@" 2>> "$WORKDIR/server.log" &
  SERVER_PID=$!
  for _ in $(seq 1 100); do
    [ -S "$sock" ] && return 0
    sleep 0.05
  done
  echo "server socket $sock never appeared" >&2
  exit 1
}

stop_server_graceful() {
  kill -TERM "$SERVER_PID"
  wait "$SERVER_PID"
  SERVER_PID=""
}

run_client() {
  # $1 = socket, $2 = tenant, $3 = opts, $4 = input, rest = extra flags
  sock="$1"; tenant="$2"; opts="$3"; input="$4"; shift 4
  "$CLIENT" --socket "$sock" --tenant "$tenant" \
      --schema "req loc:int uid:int" \
      --query-name q1 --query "$WORKDIR/q.sase" --query-opts "$opts" \
      --input "$input" "$@"
}

# --- Baseline: uninterrupted run, graceful SIGTERM drain --------------------
start_server "$WORKDIR/base_root" "$WORKDIR/base_out" "$WORKDIR/base.sock"
run_client "$WORKDIR/base.sock" alice "$A_OPTS" "$WORKDIR/a.csv" > /dev/null
run_client "$WORKDIR/base.sock" bob "$B_OPTS" "$WORKDIR/b.csv" > /dev/null
stop_server_graceful
test -s "$WORKDIR/base_out/alice--q1.matches.csv"
test -s "$WORKDIR/base_out/bob--q1.audit.jsonl"
grep -q "cep_tenant_ingested_total" "$WORKDIR/base_out/alice.metrics.prom"
grep -q "cep_server_connections_total" "$WORKDIR/base_out/server.metrics.prom"

# --- Chaos: SIGKILL mid-stream, restart, resume, drain ----------------------
start_server "$WORKDIR/chaos_root" "$WORKDIR/chaos_out" "$WORKDIR/chaos.sock"
run_client "$WORKDIR/chaos.sock" alice "$A_OPTS" "$WORKDIR/a.csv" \
    > /dev/null 2>&1 &
A_PID=$!
run_client "$WORKDIR/chaos.sock" bob "$B_OPTS" "$WORKDIR/b.csv" \
    > /dev/null 2>&1 &
B_PID=$!
sleep 0.3
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
# Clients exit 3 (connection lost) when the kill caught them mid-stream, 0
# if they had already finished; anything else is a harness bug.
wait "$A_PID" && A_RC=0 || A_RC=$?
wait "$B_PID" && B_RC=0 || B_RC=$?
for rc in "$A_RC" "$B_RC"; do
  case "$rc" in
    0|3) ;;
    *) echo "chaos client exited $rc" >&2; exit 1 ;;
  esac
done

start_server "$WORKDIR/chaos_root" "$WORKDIR/chaos_out" "$WORKDIR/chaos.sock"
grep -q "tenants recovered" "$WORKDIR/server.log"
run_client "$WORKDIR/chaos.sock" alice "$A_OPTS" "$WORKDIR/a.csv" --resume \
    > /dev/null
run_client "$WORKDIR/chaos.sock" bob "$B_OPTS" "$WORKDIR/b.csv" --resume \
    > /dev/null
stop_server_graceful

# --- Exactly-once: every per-tenant artifact is byte-identical --------------
for f in alice--q1.matches.csv alice--q1.metrics.txt alice--q1.audit.jsonl \
         bob--q1.matches.csv bob--q1.metrics.txt bob--q1.audit.jsonl; do
  cmp "$WORKDIR/base_out/$f" "$WORKDIR/chaos_out/$f" || {
    echo "artifact $f diverged after crash recovery" >&2
    exit 1
  }
done

echo "server smoke test passed"
