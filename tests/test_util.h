#ifndef CEPSHED_TESTS_TEST_UTIL_H_
#define CEPSHED_TESTS_TEST_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "event/event.h"
#include "event/schema.h"
#include "nfa/compiler.h"
#include "query/analyzer.h"
#include "query/parser.h"

namespace cep {
namespace testing_util {

/// Fails the current test if `status` is not OK.
#define CEP_ASSERT_OK(expr)                                        \
  do {                                                             \
    const ::cep::Status _st = (expr);                              \
    ASSERT_TRUE(_st.ok()) << _st.ToString();                       \
  } while (false)

#define CEP_EXPECT_OK(expr)                                        \
  do {                                                             \
    const ::cep::Status _st = (expr);                              \
    EXPECT_TRUE(_st.ok()) << _st.ToString();                       \
  } while (false)

/// Unwraps a Result<T> or fails the test.
#define CEP_ASSERT_OK_AND_ASSIGN(lhs, rexpr)                       \
  CEP_ASSERT_OK_AND_ASSIGN_IMPL_(                                  \
      CEP_CONCAT_(_test_result_, __LINE__), lhs, rexpr)
#define CEP_ASSERT_OK_AND_ASSIGN_IMPL_(result, lhs, rexpr)         \
  auto result = (rexpr);                                           \
  ASSERT_TRUE(result.ok()) << result.status().ToString();          \
  lhs = result.MoveValueUnsafe()

/// \brief The bike-sharing fixture schema of the paper's Example 1 / Table I:
/// req(loc, uid), avail(loc, bid), unlock(loc, uid, bid).
class BikeSchema {
 public:
  BikeSchema() {
    EXPECT_TRUE(registry.Register("req", {{"loc", ValueType::kInt},
                                          {"uid", ValueType::kInt}})
                    .ok());
    EXPECT_TRUE(registry.Register("avail", {{"loc", ValueType::kInt},
                                            {"bid", ValueType::kInt}})
                    .ok());
    EXPECT_TRUE(registry.Register("unlock", {{"loc", ValueType::kInt},
                                             {"uid", ValueType::kInt},
                                             {"bid", ValueType::kInt}})
                    .ok());
  }

  EventPtr Req(Timestamp ts, int64_t loc, int64_t uid, uint64_t seq = 0) {
    return Make("req", ts, {Value(loc), Value(uid)}, seq);
  }
  EventPtr Avail(Timestamp ts, int64_t loc, int64_t bid, uint64_t seq = 0) {
    return Make("avail", ts, {Value(loc), Value(bid)}, seq);
  }
  EventPtr Unlock(Timestamp ts, int64_t loc, int64_t uid, int64_t bid,
                  uint64_t seq = 0) {
    return Make("unlock", ts, {Value(loc), Value(uid), Value(bid)}, seq);
  }

  EventPtr Make(const std::string& type, Timestamp ts, std::vector<Value> vals,
                uint64_t seq) {
    const EventTypeId id = registry.FindType(type);
    EXPECT_NE(id, kInvalidEventType);
    if (seq == 0) seq = next_seq_++;
    return std::make_shared<Event>(id, registry.schema(id), ts,
                                   std::move(vals), seq);
  }

  /// Parses + analyzes + compiles against this registry.
  NfaPtr Compile(const std::string& text) {
    auto parsed = ParseQuery(text);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    if (!parsed.ok()) return nullptr;
    auto analyzed = Analyze(parsed.MoveValueUnsafe(), registry);
    EXPECT_TRUE(analyzed.ok()) << analyzed.status().ToString();
    if (!analyzed.ok()) return nullptr;
    auto nfa = CompileToNfa(analyzed.MoveValueUnsafe());
    EXPECT_TRUE(nfa.ok()) << nfa.status().ToString();
    if (!nfa.ok()) return nullptr;
    return nfa.MoveValueUnsafe();
  }

  SchemaRegistry registry;

 private:
  uint64_t next_seq_ = 1;
};

/// \brief Map-backed BindingView for expression tests, implementing the
/// virtual-append contract manually via explicit vectors.
class FakeBindings final : public BindingView {
 public:
  void BindSingle(int var, EventPtr event) {
    Ensure(var);
    slots_[var] = {std::move(event)};
  }
  void BindKleene(int var, std::vector<EventPtr> events) {
    Ensure(var);
    slots_[var] = std::move(events);
  }
  void SetCurrent(int var, const Event* event) {
    current_var_ = var;
    current_ = event;
  }

  const Event* Single(int var) const override {
    if (var == current_var_ && current_ != nullptr) return current_;
    if (var >= static_cast<int>(slots_.size()) || slots_[var].empty()) {
      return nullptr;
    }
    return slots_[var].front().get();
  }
  int KleeneCount(int var) const override {
    int n = var < static_cast<int>(slots_.size())
                ? static_cast<int>(slots_[var].size())
                : 0;
    if (var == current_var_ && current_ != nullptr) ++n;
    return n;
  }
  const Event* KleeneAt(int var, int idx) const override {
    const int stored = var < static_cast<int>(slots_.size())
                           ? static_cast<int>(slots_[var].size())
                           : 0;
    if (idx >= 0 && idx < stored) return slots_[var][idx].get();
    if (var == current_var_ && current_ != nullptr && idx == stored) {
      return current_;
    }
    return nullptr;
  }
  const Event* Current() const override { return current_; }

 private:
  void Ensure(int var) {
    if (var >= static_cast<int>(slots_.size())) slots_.resize(var + 1);
  }
  std::vector<std::vector<EventPtr>> slots_;
  int current_var_ = -1;
  const Event* current_ = nullptr;
};

/// Runs all events through a fresh engine, asserting success.
inline std::vector<Match> RunAll(const NfaPtr& nfa, EngineOptions options,
                                 const std::vector<EventPtr>& events,
                                 ShedderPtr shedder = nullptr) {
  Engine engine(nfa, options, std::move(shedder));
  for (const auto& e : events) {
    const Status st = engine.ProcessEvent(e);
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
  const Status st = engine.Flush();
  EXPECT_TRUE(st.ok()) << st.ToString();
  return engine.TakeMatches();
}

}  // namespace testing_util
}  // namespace cep

#endif  // CEPSHED_TESTS_TEST_UTIL_H_
