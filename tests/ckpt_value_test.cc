// Round-trip property tests for the snapshot value and binding codecs:
// serialize -> restore -> re-serialize must be byte-identical for every
// representable value, including the encodings equality can't check (NaN
// payloads, signed zeros).

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "ckpt/event_codec.h"
#include "ckpt/io.h"
#include "common/rng.h"
#include "engine/run.h"
#include "test_util.h"

namespace cep {
namespace {

using testing_util::BikeSchema;

double DoubleFromBits(uint64_t bits) {
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

/// Serializes `value`, reads it back, serializes the read-back copy, and
/// checks the two byte strings match. Byte equality is stricter than
/// operator== (NaN != NaN, -0.0 == 0.0) and is exactly the property the
/// replay-determinism tests depend on.
void ExpectValueRoundTrips(const Value& value) {
  ckpt::Sink first;
  first.WriteValue(value);
  ckpt::Source source(first.bytes());
  Result<Value> restored = source.ReadValue();
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ASSERT_TRUE(source.AtEnd());
  ckpt::Sink second;
  second.WriteValue(restored.ValueOrDie());
  EXPECT_EQ(first.bytes(), second.bytes());
}

TEST(ValueCodecTest, ScalarEdgeCases) {
  ExpectValueRoundTrips(Value::Null());
  ExpectValueRoundTrips(Value(true));
  ExpectValueRoundTrips(Value(false));
  ExpectValueRoundTrips(Value(int64_t{0}));
  ExpectValueRoundTrips(Value(std::numeric_limits<int64_t>::min()));
  ExpectValueRoundTrips(Value(std::numeric_limits<int64_t>::max()));
}

TEST(ValueCodecTest, DoubleEdgeCases) {
  ExpectValueRoundTrips(Value(0.0));
  ExpectValueRoundTrips(Value(-0.0));
  ExpectValueRoundTrips(Value(std::numeric_limits<double>::infinity()));
  ExpectValueRoundTrips(Value(-std::numeric_limits<double>::infinity()));
  ExpectValueRoundTrips(Value(std::numeric_limits<double>::quiet_NaN()));
  // NaN with a non-default payload: the bit pattern must survive.
  ExpectValueRoundTrips(Value(DoubleFromBits(0x7ff800000000beefULL)));
  ExpectValueRoundTrips(Value(std::numeric_limits<double>::denorm_min()));
  ExpectValueRoundTrips(Value(std::numeric_limits<double>::max()));
}

TEST(ValueCodecTest, StringEdgeCases) {
  ExpectValueRoundTrips(Value(std::string()));
  ExpectValueRoundTrips(Value(std::string("plain")));
  ExpectValueRoundTrips(Value(std::string("embedded\0nul", 12)));
  ExpectValueRoundTrips(Value(std::string(3, '\0')));
  ExpectValueRoundTrips(Value(std::string(1 << 16, 'x')));
  std::string all_bytes;
  for (int i = 0; i < 256; ++i) all_bytes.push_back(static_cast<char>(i));
  ExpectValueRoundTrips(Value(all_bytes));
}

TEST(ValueCodecTest, MaxWidthHashesRoundTrip) {
  // Attribute hashes travel as raw u64s; the extremes must survive.
  for (const uint64_t hash :
       {uint64_t{0}, uint64_t{1}, std::numeric_limits<uint64_t>::max(),
        std::numeric_limits<uint64_t>::max() - 1, uint64_t{0x8000000000000000ULL}}) {
    ckpt::Sink sink;
    sink.WriteU64(hash);
    ckpt::Source source(sink.bytes());
    Result<uint64_t> restored = source.ReadU64();
    ASSERT_TRUE(restored.ok());
    EXPECT_EQ(restored.ValueOrDie(), hash);
  }
}

TEST(ValueCodecTest, RandomizedValuesRoundTrip) {
  Rng rng(0xC0DEC);
  for (int i = 0; i < 2000; ++i) {
    switch (rng.NextBounded(4)) {
      case 0:
        ExpectValueRoundTrips(Value(static_cast<int64_t>(rng.Next())));
        break;
      case 1:
        // Arbitrary bit patterns, including NaNs, infinities, denormals.
        ExpectValueRoundTrips(Value(DoubleFromBits(rng.Next())));
        break;
      case 2: {
        std::string s(rng.NextBounded(64), '\0');
        for (char& c : s) c = static_cast<char>(rng.NextBounded(256));
        ExpectValueRoundTrips(Value(std::move(s)));
        break;
      }
      default:
        ExpectValueRoundTrips(Value(rng.NextBounded(2) == 1));
        break;
    }
  }
}

TEST(ValueCodecTest, TruncatedValueIsOutOfRange) {
  ckpt::Sink sink;
  sink.WriteValue(Value(std::string("hello")));
  const std::string bytes = sink.bytes();
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    ckpt::Source source(std::string_view(bytes).substr(0, cut));
    const Result<Value> restored = source.ReadValue();
    EXPECT_FALSE(restored.ok()) << "cut at " << cut;
    EXPECT_TRUE(restored.status().IsOutOfRange()) << restored.status().ToString();
  }
}

/// Bindings with adversarial attribute values must survive the run codec:
/// serialize a run, restore it through the event table, re-serialize, and
/// compare bytes.
TEST(BindingCodecTest, AdversarialBindingsRoundTrip) {
  SchemaRegistry registry;
  ASSERT_TRUE(registry
                  .Register("probe", {{"d", ValueType::kDouble},
                                      {"s", ValueType::kString},
                                      {"b", ValueType::kBool}})
                  .ok());
  const EventTypeId type = registry.FindType("probe");
  auto make_event = [&](Timestamp ts, double d, std::string s, bool b) {
    return std::make_shared<Event>(
        type, registry.schema(type), ts,
        std::vector<Value>{Value(d), Value(std::move(s)), Value(b)},
        static_cast<uint64_t>(ts));
  };
  const EventPtr nan_event = make_event(
      1, std::numeric_limits<double>::quiet_NaN(), std::string("a\0b", 3),
      true);
  const EventPtr inf_event =
      make_event(2, -std::numeric_limits<double>::infinity(), "", false);

  RunArena arena;
  RunPtr run = arena.New(/*id=*/7, /*num_variables=*/2, /*state=*/1,
                         /*start_ts=*/1);
  run->Bind(0, nan_event, 1);
  RunPtr child = run->Extend(/*child_id=*/8, /*var_index=*/1, inf_event,
                             /*state=*/2);

  ckpt::EventTableBuilder builder;
  ckpt::Sink runs_sink;
  CEP_ASSERT_OK(child->SerializeTo(runs_sink, &builder));
  ckpt::Sink table_sink;
  builder.Serialize(table_sink);

  ckpt::Source table_source(table_sink.bytes());
  ckpt::EventTable table;
  CEP_ASSERT_OK(table.RestoreFrom(table_source));
  ckpt::Source run_source(runs_sink.bytes());
  CEP_ASSERT_OK_AND_ASSIGN(RunPtr restored,
                           Run::RestoreFrom(run_source, table, &arena));
  ASSERT_TRUE(run_source.AtEnd());

  ckpt::EventTableBuilder builder2;
  ckpt::Sink runs_sink2;
  CEP_ASSERT_OK(restored->SerializeTo(runs_sink2, &builder2));
  EXPECT_EQ(runs_sink.bytes(), runs_sink2.bytes());
  EXPECT_EQ(restored->id(), child->id());
  EXPECT_EQ(restored->binding(0).size(), 1u);
  EXPECT_EQ(restored->binding(1).size(), 1u);
}

}  // namespace
}  // namespace cep
