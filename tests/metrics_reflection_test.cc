// Reflection tests for the EngineMetrics field table (engine/metrics.cc):
// every field must be listed exactly once, so that ToString(), Add(), and
// the observability registry export can never silently skip a field. Adding
// a field to EngineMetrics without a table entry fails the size check here.

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <string>

#include "engine/metrics.h"

namespace cep {
namespace {

TEST(MetricsReflectionTest, TableCoversEveryField) {
  size_t count = 0;
  const EngineMetricField* fields = EngineMetricFields(&count);
  ASSERT_GT(count, 0u);
  size_t covered_bytes = 0;
  std::set<const void*> seen_members;
  EngineMetrics probe;
  for (size_t i = 0; i < count; ++i) {
    const EngineMetricField& field = fields[i];
    // Exactly one member pointer per entry.
    ASSERT_TRUE((field.u64 != nullptr) != (field.f64 != nullptr))
        << field.name;
    covered_bytes += field.u64 != nullptr ? sizeof(uint64_t) : sizeof(double);
    // No field listed twice: resolve each member pointer to its address
    // within one struct instance.
    const void* addr = field.u64 != nullptr
                           ? static_cast<const void*>(&(probe.*field.u64))
                           : static_cast<const void*>(&(probe.*field.f64));
    EXPECT_TRUE(seen_members.insert(addr).second)
        << "field listed twice: " << field.name;
  }
  // EngineMetrics is all 8-byte members, so covered bytes == sizeof means
  // the table is complete. A new field without a table entry breaks this.
  EXPECT_EQ(covered_bytes, sizeof(EngineMetrics))
      << "EngineMetrics has a field missing from kEngineMetricFields "
         "(engine/metrics.cc) — add it there so serialization, aggregation, "
         "and export pick it up";
}

TEST(MetricsReflectionTest, NamesAreWellFormedAndUnique) {
  size_t count = 0;
  const EngineMetricField* fields = EngineMetricFields(&count);
  std::set<std::string> names;
  std::set<std::string> prom_names;
  for (size_t i = 0; i < count; ++i) {
    const EngineMetricField& field = fields[i];
    ASSERT_NE(field.name, nullptr);
    ASSERT_NE(field.prom_name, nullptr);
    ASSERT_NE(field.help, nullptr);
    EXPECT_GT(std::strlen(field.help), 0u) << field.name;
    EXPECT_TRUE(names.insert(field.name).second) << field.name;
    EXPECT_TRUE(prom_names.insert(field.prom_name).second) << field.prom_name;
    const std::string prom = field.prom_name;
    EXPECT_EQ(prom.rfind("cep_", 0), 0u) << prom;
    // Monotonic counters follow the Prometheus _total convention; peaks and
    // other gauges must not.
    const bool has_total =
        prom.size() > 6 && prom.compare(prom.size() - 6, 6, "_total") == 0;
    if (field.monotonic && field.u64 != nullptr) {
      EXPECT_TRUE(has_total) << prom;
    } else if (!field.monotonic) {
      EXPECT_FALSE(has_total) << prom;
    }
  }
}

TEST(MetricsReflectionTest, ToStringCoversEveryField) {
  size_t count = 0;
  const EngineMetricField* fields = EngineMetricFields(&count);
  EngineMetrics metrics;
  // Give every field a distinct value through its member pointer.
  for (size_t i = 0; i < count; ++i) {
    if (fields[i].u64 != nullptr) {
      metrics.*fields[i].u64 = 1000 + i;
    } else {
      metrics.*fields[i].f64 = 1000.5 + static_cast<double>(i);
    }
  }
  const std::string text = metrics.ToString();
  for (size_t i = 0; i < count; ++i) {
    const std::string needle =
        std::string(fields[i].name) + "=" +
        (fields[i].u64 != nullptr
             ? std::to_string(1000 + i)
             : std::to_string(1000 + i) + ".5");
    EXPECT_NE(text.find(needle), std::string::npos)
        << "ToString missing '" << needle << "': " << text;
  }
}

TEST(MetricsReflectionTest, AddSumsEveryField) {
  size_t count = 0;
  const EngineMetricField* fields = EngineMetricFields(&count);
  EngineMetrics a;
  EngineMetrics b;
  for (size_t i = 0; i < count; ++i) {
    if (fields[i].u64 != nullptr) {
      a.*fields[i].u64 = i + 1;
      b.*fields[i].u64 = 10 * (i + 1);
    } else {
      a.*fields[i].f64 = static_cast<double>(i + 1);
      b.*fields[i].f64 = 10.0 * static_cast<double>(i + 1);
    }
  }
  a.Add(b);
  for (size_t i = 0; i < count; ++i) {
    if (fields[i].u64 != nullptr) {
      EXPECT_EQ(a.*fields[i].u64, 11 * (i + 1)) << fields[i].name;
    } else {
      EXPECT_DOUBLE_EQ(a.*fields[i].f64, 11.0 * static_cast<double>(i + 1))
          << fields[i].name;
    }
  }
}

}  // namespace
}  // namespace cep
