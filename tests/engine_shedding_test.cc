#include <gtest/gtest.h>

#include <unordered_set>

#include "engine/engine.h"
#include "engine/latency_monitor.h"
#include "shedding/random_shedder.h"
#include "test_util.h"

namespace cep {
namespace {

using testing_util::BikeSchema;

class EngineSheddingTest : public ::testing::Test {
 protected:
  /// Produces `n` req events that all stay within the window, creating n
  /// long-lived runs.
  std::vector<EventPtr> ManyReqs(int n, Timestamp start = kMinute) {
    std::vector<EventPtr> events;
    events.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      events.push_back(fixture_.Req(start + i, i % 50, 1000 + i));
    }
    return events;
  }

  BikeSchema fixture_;
};

TEST(LatencyMonitorTest, WallClockSlidingMean) {
  WallClockLatencyMonitor monitor(4);
  EXPECT_DOUBLE_EQ(monitor.CurrentLatencyMicros(), 0.0);
  monitor.Record(0, 10, 1);
  monitor.Record(0, 20, 1);
  EXPECT_DOUBLE_EQ(monitor.CurrentLatencyMicros(), 15.0);
  monitor.Record(0, 30, 1);
  monitor.Record(0, 40, 1);
  EXPECT_DOUBLE_EQ(monitor.CurrentLatencyMicros(), 25.0);
  // Window slides: the 10 drops out.
  monitor.Record(0, 50, 1);
  EXPECT_DOUBLE_EQ(monitor.CurrentLatencyMicros(), 35.0);
  monitor.Reset();
  EXPECT_DOUBLE_EQ(monitor.CurrentLatencyMicros(), 0.0);
}

TEST(LatencyMonitorTest, VirtualCostUsesOpsNotWallTime) {
  VirtualCostLatencyMonitor monitor(2, /*ns_per_op=*/1000.0);
  monitor.Record(0, /*micros=*/999999.0, /*ops=*/5);  // wall time ignored
  EXPECT_DOUBLE_EQ(monitor.CurrentLatencyMicros(), 5.0);
  monitor.Record(0, 0.0, 15);
  EXPECT_DOUBLE_EQ(monitor.CurrentLatencyMicros(), 10.0);
}

TEST(LatencyMonitorTest, QueueingIdleServerHasServiceOnlyLatency) {
  // 1 µs of service per op, arrivals far apart: latency == service time.
  QueueingLatencyMonitor monitor(8, /*ns_per_op=*/1000.0,
                                 /*compression=*/1.0);
  monitor.Record(/*event_ts=*/1000, 0.0, /*ops=*/5);
  EXPECT_DOUBLE_EQ(monitor.CurrentLatencyMicros(), 5.0);
  monitor.Record(/*event_ts=*/2000, 0.0, /*ops=*/5);
  EXPECT_DOUBLE_EQ(monitor.CurrentLatencyMicros(), 5.0);
}

TEST(LatencyMonitorTest, QueueingBacklogAccumulates) {
  // Two events arriving at the same instant: the second waits for the first.
  QueueingLatencyMonitor monitor(8, /*ns_per_op=*/1000.0, 1.0);
  monitor.Record(100, 0.0, 10);  // service 10 µs, latency 10
  monitor.Record(100, 0.0, 10);  // waits 10, then 10 service: latency 20
  monitor.Record(100, 0.0, 10);  // latency 30
  EXPECT_DOUBLE_EQ(monitor.CurrentLatencyMicros(), 20.0);
  EXPECT_DOUBLE_EQ(monitor.busy_until_micros(), 130.0);
}

TEST(LatencyMonitorTest, QueueingDrainsWhenArrivalsSlowDown) {
  QueueingLatencyMonitor monitor(1, 1000.0, 1.0);
  monitor.Record(0, 0.0, 100);    // busy until 100
  EXPECT_DOUBLE_EQ(monitor.CurrentLatencyMicros(), 100.0);
  monitor.Record(1000, 0.0, 1);   // idle gap: queue drained
  EXPECT_DOUBLE_EQ(monitor.CurrentLatencyMicros(), 1.0);
}

TEST(LatencyMonitorTest, QueueingTimeCompressionScalesArrivals) {
  // compression 1000: stream-ms arrive every µs of arrival time.
  QueueingLatencyMonitor monitor(1, 1000.0, 1000.0);
  monitor.Record(0, 0.0, 2);        // busy until 2 µs
  monitor.Record(1000, 0.0, 2);     // arrival at 1 µs -> waits 1 µs
  EXPECT_DOUBLE_EQ(monitor.CurrentLatencyMicros(), 3.0);
}

TEST(LatencyMonitorTest, QueueingResetKeepsBacklog) {
  QueueingLatencyMonitor monitor(4, 1000.0, 1.0);
  monitor.Record(0, 0.0, 50);
  monitor.Reset();
  EXPECT_DOUBLE_EQ(monitor.CurrentLatencyMicros(), 0.0);  // samples cleared
  EXPECT_DOUBLE_EQ(monitor.busy_until_micros(), 50.0);    // backlog persists
}

TEST_F(EngineSheddingTest, MaxRunsCapForcesShedding) {
  NfaPtr nfa = fixture_.Compile(
      "PATTERN SEQ(req a, unlock c) WHERE c.uid = a.uid WITHIN 60 min");
  EngineOptions options;
  options.max_runs = 100;
  options.shed_amount.fraction = 0.2;
  Engine engine(nfa, options, std::make_unique<RandomShedder>(1));
  for (const auto& e : ManyReqs(500)) {
    CEP_ASSERT_OK(engine.ProcessEvent(e));
    EXPECT_LE(engine.num_runs(), 100u);
  }
  EXPECT_GT(engine.metrics().runs_shed, 0u);
  EXPECT_GT(engine.metrics().shed_triggers, 0u);
}

TEST_F(EngineSheddingTest, LatencyThresholdTriggersShedding) {
  NfaPtr nfa = fixture_.Compile(
      "PATTERN SEQ(req a, unlock c) WHERE c.uid = a.uid WITHIN 60 min");
  EngineOptions options;
  options.latency_mode = LatencyMode::kVirtualCost;
  options.virtual_ns_per_op = 1000.0;  // 1 us per edge evaluation
  options.latency_threshold_micros = 50.0;  // overload at ~50 active runs
  options.latency_window_events = 16;
  options.shed_cooldown_events = 16;
  options.shed_amount.fraction = 0.5;
  Engine engine(nfa, options, std::make_unique<RandomShedder>(1));
  // Unlock events probe every run (uid predicate fails, but the edge is
  // evaluated), driving the virtual latency up with |R(t)|.
  for (int i = 0; i < 400; ++i) {
    CEP_ASSERT_OK(engine.ProcessEvent(fixture_.Req(kMinute + 2 * i, 1, i)));
    CEP_ASSERT_OK(
        engine.ProcessEvent(fixture_.Unlock(kMinute + 2 * i + 1, 1, -1, 1)));
  }
  EXPECT_GT(engine.metrics().shed_triggers, 0u);
  EXPECT_GT(engine.metrics().runs_shed, 0u);
  // Shedding keeps the run count bounded well below the unshedded 400.
  EXPECT_LT(engine.num_runs(), 300u);
}

TEST_F(EngineSheddingTest, NoSheddingWithoutShedder) {
  NfaPtr nfa = fixture_.Compile(
      "PATTERN SEQ(req a, unlock c) WITHIN 60 min");
  EngineOptions options;
  options.latency_threshold_micros = 0.001;  // absurdly low
  Engine engine(nfa, options);  // no shedder installed
  for (const auto& e : ManyReqs(200)) CEP_ASSERT_OK(engine.ProcessEvent(e));
  EXPECT_EQ(engine.metrics().shed_triggers, 0u);
  EXPECT_EQ(engine.num_runs(), 200u);
}

TEST_F(EngineSheddingTest, ThresholdZeroDisablesLatencyShedding) {
  NfaPtr nfa = fixture_.Compile(
      "PATTERN SEQ(req a, unlock c) WITHIN 60 min");
  EngineOptions options;
  options.latency_threshold_micros = 0.0;
  Engine engine(nfa, options, std::make_unique<RandomShedder>(1));
  for (const auto& e : ManyReqs(200)) CEP_ASSERT_OK(engine.ProcessEvent(e));
  EXPECT_EQ(engine.metrics().shed_triggers, 0u);
}

TEST_F(EngineSheddingTest, ForceShedDropsRequestedAmount) {
  NfaPtr nfa = fixture_.Compile(
      "PATTERN SEQ(req a, unlock c) WITHIN 60 min");
  Engine engine(nfa, EngineOptions{}, std::make_unique<RandomShedder>(7));
  for (const auto& e : ManyReqs(100)) CEP_ASSERT_OK(engine.ProcessEvent(e));
  ASSERT_EQ(engine.num_runs(), 100u);
  engine.ForceShed(30);
  EXPECT_EQ(engine.num_runs(), 70u);
  EXPECT_EQ(engine.metrics().runs_shed, 30u);
}

TEST_F(EngineSheddingTest, SheddingNeverCreatesFalsePositives) {
  // Matches produced under aggressive shedding are a subset of the golden
  // matches (the paper's "no false positives" guarantee, §III).
  NfaPtr nfa = fixture_.Compile(
      "PATTERN SEQ(req a, unlock c) WHERE c.uid = a.uid WITHIN 60 min");
  std::vector<EventPtr> events;
  Rng rng(3);
  Timestamp ts = kMinute;
  for (int i = 0; i < 300; ++i) {
    ts += 1 + rng.NextBounded(kSecond);
    const auto uid = static_cast<int64_t>(rng.NextBounded(20));
    if (rng.NextBernoulli(0.6)) {
      events.push_back(fixture_.Req(ts, 1, uid));
    } else {
      events.push_back(fixture_.Unlock(ts, 2, uid, 1));
    }
  }
  const auto golden = testing_util::RunAll(nfa, EngineOptions{}, events);
  EngineOptions lossy;
  lossy.max_runs = 20;
  lossy.shed_amount.fraction = 0.5;
  Engine engine(nfa, lossy, std::make_unique<RandomShedder>(9));
  for (const auto& e : events) CEP_ASSERT_OK(engine.ProcessEvent(e));
  std::unordered_multiset<uint64_t> golden_prints;
  for (const auto& m : golden) golden_prints.insert(m.fingerprint);
  for (const auto& m : engine.matches()) {
    const auto it = golden_prints.find(m.fingerprint);
    ASSERT_NE(it, golden_prints.end()) << "false positive match";
    golden_prints.erase(it);
  }
  EXPECT_LT(engine.matches().size(), golden.size());
  EXPECT_GT(engine.metrics().runs_shed, 0u);
}

TEST_F(EngineSheddingTest, QueueSimulationModeTriggersOnBacklog) {
  NfaPtr nfa = fixture_.Compile(
      "PATTERN SEQ(req a, unlock c) WHERE c.uid = a.uid WITHIN 60 min");
  EngineOptions options;
  options.latency_mode = LatencyMode::kQueueSimulation;
  options.virtual_ns_per_op = 1000.0;     // 1 us per edge evaluation
  options.queue_time_compression = 1e6;   // 1 stream-second = 1 arrival-us
  options.latency_threshold_micros = 200.0;
  options.latency_window_events = 16;
  options.shed_cooldown_events = 16;
  options.shed_amount.fraction = 0.5;
  Engine engine(nfa, options, std::make_unique<RandomShedder>(1));
  // Events 1 stream-second apart: ~1 us of arrival budget per event, but
  // probing hundreds of runs costs hundreds of us — the queue builds up and
  // u(t) crosses theta even though each individual event is "cheap".
  Timestamp ts = kMinute;
  for (int i = 0; i < 300; ++i) {
    ts += kSecond;
    CEP_ASSERT_OK(engine.ProcessEvent(fixture_.Req(ts, 1, i)));
    ts += kSecond;
    CEP_ASSERT_OK(engine.ProcessEvent(fixture_.Unlock(ts, 1, -1, 1)));
  }
  EXPECT_GT(engine.metrics().shed_triggers, 0u);
  EXPECT_LT(engine.num_runs(), 300u);
}

TEST_F(EngineSheddingTest, CooldownLimitsTriggerRate) {
  NfaPtr nfa = fixture_.Compile(
      "PATTERN SEQ(req a, unlock c) WITHIN 60 min");
  EngineOptions options;
  options.latency_mode = LatencyMode::kVirtualCost;
  options.virtual_ns_per_op = 100000.0;  // everything is over threshold
  options.latency_threshold_micros = 1.0;
  options.latency_window_events = 4;
  options.shed_cooldown_events = 100;
  options.shed_amount.fraction = 0.01;
  options.shed_amount.min_victims = 1;
  Engine engine(nfa, options, std::make_unique<RandomShedder>(1));
  for (const auto& e : ManyReqs(300)) CEP_ASSERT_OK(engine.ProcessEvent(e));
  // At most one trigger per 100 events.
  EXPECT_LE(engine.metrics().shed_triggers, 3u);
  EXPECT_GE(engine.metrics().shed_triggers, 1u);
}

}  // namespace
}  // namespace cep
