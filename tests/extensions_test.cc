// Tests for the operational extensions: out-of-order ingestion
// (ReorderBuffer), model persistence (warm starts), and MultiEngine.

#include <gtest/gtest.h>

#include <sstream>

#include "engine/multi.h"
#include "event/reorder.h"
#include "shedding/random_shedder.h"
#include "shedding/sketch.h"
#include "shedding/state_shedder.h"
#include "test_util.h"

namespace cep {
namespace {

using testing_util::BikeSchema;

class ReorderBufferTest : public ::testing::Test {
 protected:
  BikeSchema fixture_;
};

TEST_F(ReorderBufferTest, InOrderEventsFlowThroughAfterDelay) {
  ReorderBuffer buffer(10);
  EXPECT_TRUE(buffer.Push(fixture_.Req(100, 1, 1)).empty());
  // Watermark at 105: the event at 100 is not yet safe.
  EXPECT_TRUE(buffer.Push(fixture_.Req(105, 1, 2)).empty());
  // Watermark at 110: releases the event at 100.
  const auto released = buffer.Push(fixture_.Req(120, 1, 3));
  ASSERT_EQ(released.size(), 2u);
  EXPECT_EQ(released[0]->timestamp(), 100);
  EXPECT_EQ(released[1]->timestamp(), 105);
  EXPECT_EQ(buffer.buffered(), 1u);
}

TEST_F(ReorderBufferTest, ReordersWithinDelayBound) {
  ReorderBuffer buffer(50);
  (void)buffer.Push(fixture_.Req(100, 1, 1));
  (void)buffer.Push(fixture_.Req(90, 1, 2));   // late but within bound
  (void)buffer.Push(fixture_.Req(95, 1, 3));
  auto released = buffer.Push(fixture_.Req(200, 1, 4));
  std::vector<Timestamp> order;
  for (const auto& e : released) order.push_back(e->timestamp());
  EXPECT_EQ(order, (std::vector<Timestamp>{90, 95, 100}));
  EXPECT_EQ(buffer.late_dropped(), 0u);
}

TEST_F(ReorderBufferTest, DropsEventsBehindWatermark) {
  ReorderBuffer buffer(10);
  (void)buffer.Push(fixture_.Req(100, 1, 1));
  (void)buffer.Push(fixture_.Req(50, 1, 2));  // 50 < 100 - 10: too late
  EXPECT_EQ(buffer.late_dropped(), 1u);
  EXPECT_EQ(buffer.buffered(), 1u);
}

TEST_F(ReorderBufferTest, FlushReleasesRemainderInOrder) {
  ReorderBuffer buffer(1000);
  (void)buffer.Push(fixture_.Req(30, 1, 1));
  (void)buffer.Push(fixture_.Req(10, 1, 2));
  (void)buffer.Push(fixture_.Req(20, 1, 3));
  const auto rest = buffer.Flush();
  ASSERT_EQ(rest.size(), 3u);
  EXPECT_EQ(rest[0]->timestamp(), 10);
  EXPECT_EQ(rest[2]->timestamp(), 30);
  EXPECT_EQ(buffer.buffered(), 0u);
}

TEST_F(ReorderBufferTest, TiesReleaseInSequenceOrder) {
  ReorderBuffer buffer(5);
  (void)buffer.Push(fixture_.Req(100, 1, 1, /*seq=*/7));
  (void)buffer.Push(fixture_.Req(100, 1, 2, /*seq=*/3));
  const auto released = buffer.Push(fixture_.Req(200, 1, 3, /*seq=*/9));
  ASSERT_EQ(released.size(), 2u);
  EXPECT_EQ(released[0]->sequence(), 3u);
  EXPECT_EQ(released[1]->sequence(), 7u);
}

TEST_F(ReorderBufferTest, EqualTimestampAndSequenceReleaseInArrivalOrder) {
  // Regression: events that tie on (timestamp, sequence) — producers that
  // never set a sequence leave it 0, and fault-injection duplicates share
  // one — used to release in arbitrary heap order, so buffered ingestion of
  // an already-ordered stream was not bit-identical to unbuffered ingestion.
  const EventTypeId req = fixture_.registry.FindType("req");
  const SchemaPtr schema = fixture_.registry.schema(req);
  auto unsequenced = [&](Timestamp ts, int64_t loc) {
    return std::make_shared<Event>(
        req, schema, ts, std::vector<Value>{Value(loc), Value(int64_t{1})},
        /*sequence=*/0);
  };
  std::vector<EventPtr> arrivals;
  for (int64_t i = 0; i < 6; ++i) arrivals.push_back(unsequenced(100, i));
  for (int64_t i = 6; i < 9; ++i) arrivals.push_back(unsequenced(101, i));

  ReorderBuffer buffer(5);
  std::vector<EventPtr> released;
  for (const auto& e : arrivals) {
    for (auto& out : buffer.Push(e)) released.push_back(std::move(out));
  }
  for (auto& out : buffer.Flush()) released.push_back(std::move(out));

  ASSERT_EQ(released.size(), arrivals.size());
  for (size_t i = 0; i < arrivals.size(); ++i) {
    EXPECT_EQ(released[i].get(), arrivals[i].get())
        << "position " << i << " released out of arrival order";
  }
}

TEST_F(ReorderBufferTest, DuplicateEventsSurviveWithStableOrder) {
  // The same EventPtr offered twice (a dup fault) must come out twice, in
  // arrival order, not collapse or invert.
  const EventPtr original = fixture_.Req(50, 3, 9, /*seq=*/4);
  ReorderBuffer buffer(100);
  (void)buffer.Push(original);
  (void)buffer.Push(original);
  (void)buffer.Push(fixture_.Req(49, 1, 1, /*seq=*/2));
  const auto released = buffer.Flush();
  ASSERT_EQ(released.size(), 3u);
  EXPECT_EQ(released[0]->timestamp(), 49);
  EXPECT_EQ(released[1].get(), original.get());
  EXPECT_EQ(released[2].get(), original.get());
}

TEST_F(ReorderBufferTest, FeedsEngineCorrectly) {
  // A shuffled stream through the buffer produces the same matches as the
  // sorted stream fed directly.
  NfaPtr nfa = fixture_.Compile(
      "PATTERN SEQ(req a, unlock c) WHERE c.uid = a.uid WITHIN 10 min");
  std::vector<EventPtr> sorted = {
      fixture_.Req(1 * kMinute, 1, 42),  fixture_.Req(2 * kMinute, 2, 43),
      fixture_.Unlock(3 * kMinute, 3, 42, 1),
      fixture_.Unlock(4 * kMinute, 4, 43, 2)};
  const auto golden = testing_util::RunAll(nfa, EngineOptions{}, sorted);
  // Shuffle mildly (swap neighbours) and pipe through the buffer.
  std::vector<EventPtr> shuffled = {sorted[1], sorted[0], sorted[3],
                                    sorted[2]};
  ReorderBuffer buffer(2 * kMinute);
  Engine engine(nfa, EngineOptions{});
  for (const auto& e : shuffled) {
    for (const auto& out : buffer.Push(e)) {
      CEP_ASSERT_OK(engine.ProcessEvent(out));
    }
  }
  for (const auto& out : buffer.Flush()) {
    CEP_ASSERT_OK(engine.ProcessEvent(out));
  }
  EXPECT_EQ(engine.matches().size(), golden.size());
}

class PersistenceTest : public ::testing::Test {
 protected:
  StateShedderOptions Options() {
    StateShedderOptions options;
    options.pm_hash.attributes = {{"req", "loc"}};
    options.scoring.weight_contribution = 2.0;
    return options;
  }

  /// Trains a shedder inside an engine: loc-1 requests complete, loc-2
  /// requests never do.
  void Train(Engine* engine) {
    Timestamp ts = kMinute;
    for (int i = 0; i < 30; ++i) {
      ts += kSecond;
      CEP_ASSERT_OK(engine->ProcessEvent(fixture_.Req(ts, 1, 100 + i)));
      ts += kSecond;
      CEP_ASSERT_OK(
          engine->ProcessEvent(fixture_.Unlock(ts, 9, 100 + i, 1)));
      ts += kSecond;
      CEP_ASSERT_OK(engine->ProcessEvent(fixture_.Req(ts, 2, 500 + i)));
    }
  }

  BikeSchema fixture_;
};

TEST_F(PersistenceTest, ExactBackendRoundTrip) {
  ExactCounterBackend original;
  original.Add(1, 2.0, 5.0);
  original.Add(42, 0.0, 3.0);
  std::stringstream buffer;
  CEP_ASSERT_OK(original.Save(buffer));
  ExactCounterBackend restored;
  CEP_ASSERT_OK(restored.Load(buffer));
  EXPECT_DOUBLE_EQ(restored.Ratio(1, 0), 0.4);
  EXPECT_DOUBLE_EQ(restored.Support(42), 3.0);
  EXPECT_EQ(restored.num_cells(), 2u);
}

TEST_F(PersistenceTest, SketchBackendRoundTrip) {
  SketchCounterBackend original(256, 4, 9);
  for (uint64_t k = 0; k < 50; ++k) original.Add(k, 1.0, 2.0);
  std::stringstream buffer;
  CEP_ASSERT_OK(original.Save(buffer));
  SketchCounterBackend restored(256, 4, 9);
  CEP_ASSERT_OK(restored.Load(buffer));
  for (uint64_t k = 0; k < 50; ++k) {
    EXPECT_DOUBLE_EQ(restored.Ratio(k, 0), original.Ratio(k, 0));
  }
}

TEST_F(PersistenceTest, SketchLoadRejectsShapeMismatch) {
  SketchCounterBackend original(256, 4, 9);
  std::stringstream buffer;
  CEP_ASSERT_OK(original.Save(buffer));
  SketchCounterBackend wrong(512, 4, 9);
  EXPECT_TRUE(wrong.Load(buffer).IsInvalidArgument());
}

TEST_F(PersistenceTest, LoadRejectsGarbage) {
  ExactCounterBackend backend;
  std::stringstream garbage("not a snapshot");
  EXPECT_TRUE(backend.Load(garbage).IsParseError());
}

TEST_F(PersistenceTest, WarmStartCarriesLearnedScores) {
  NfaPtr nfa = fixture_.Compile(
      "PATTERN SEQ(req a, unlock c) WHERE c.uid = a.uid WITHIN 60 min");
  // Cold shedder: train inside an engine, then snapshot the models.
  auto trained = std::make_unique<StateShedder>(Options(), &fixture_.registry);
  StateShedder* trained_raw = trained.get();
  Engine train_engine(nfa, EngineOptions{}, std::move(trained));
  Train(&train_engine);
  std::stringstream snapshot;
  CEP_ASSERT_OK(trained_raw->SaveModels(snapshot));

  // Fresh shedder in a fresh engine: load the snapshot, then verify that a
  // brand-new loc-1 run immediately outscores a loc-2 run (no re-training).
  auto warm = std::make_unique<StateShedder>(Options(), &fixture_.registry);
  StateShedder* warm_raw = warm.get();
  Engine engine(nfa, EngineOptions{}, std::move(warm));
  CEP_ASSERT_OK(warm_raw->LoadModels(snapshot));
  Timestamp ts = kMinute;
  CEP_ASSERT_OK(engine.ProcessEvent(fixture_.Req(ts, 1, 9001)));
  CEP_ASSERT_OK(engine.ProcessEvent(fixture_.Req(ts + 1, 2, 9002)));
  const ::cep::Run* good = engine.runs()[0].get();
  const ::cep::Run* bad = engine.runs()[1].get();
  EXPECT_GT(warm_raw->Score(*good, ts + 1), warm_raw->Score(*bad, ts + 1));
}

TEST_F(PersistenceTest, LoadRejectsDifferentConfiguration) {
  NfaPtr nfa = fixture_.Compile(
      "PATTERN SEQ(req a, unlock c) WITHIN 60 min");
  auto a = std::make_unique<StateShedder>(Options(), &fixture_.registry);
  StateShedder* a_raw = a.get();
  Engine engine_a(nfa, EngineOptions{}, std::move(a));
  std::stringstream snapshot;
  CEP_ASSERT_OK(a_raw->SaveModels(snapshot));

  StateShedderOptions other = Options();
  other.time_slices = 99;
  auto b = std::make_unique<StateShedder>(other, &fixture_.registry);
  StateShedder* b_raw = b.get();
  Engine engine_b(nfa, EngineOptions{}, std::move(b));
  EXPECT_TRUE(b_raw->LoadModels(snapshot).IsInvalidArgument());
}

class MultiEngineTest : public ::testing::Test {
 protected:
  BikeSchema fixture_;
};

TEST_F(MultiEngineTest, RoutesEventsToEveryQuery) {
  MultiEngine multi;
  const size_t q0 = multi.AddQuery(
      fixture_.Compile("PATTERN SEQ(req a, unlock c) WITHIN 10 min"),
      EngineOptions{}, nullptr, "pairs");
  const size_t q1 = multi.AddQuery(
      fixture_.Compile("PATTERN SEQ(req a) WHERE a.loc > 5 WITHIN 1 min"),
      EngineOptions{}, nullptr, "hot-reqs");
  EXPECT_EQ(multi.num_queries(), 2u);
  EXPECT_EQ(multi.query_name(q0), "pairs");
  EXPECT_EQ(multi.query_name(q1), "hot-reqs");
  CEP_ASSERT_OK(multi.ProcessEvent(fixture_.Req(kMinute, 9, 1)));
  CEP_ASSERT_OK(multi.ProcessEvent(fixture_.Unlock(2 * kMinute, 1, 1, 7)));
  EXPECT_EQ(multi.engine(q0).matches().size(), 1u);
  EXPECT_EQ(multi.engine(q1).matches().size(), 1u);
  EXPECT_EQ(multi.AggregateMetrics().matches_emitted, 2u);
  EXPECT_EQ(multi.TotalRuns(), 1u);  // q0's run survives, q1 emits instantly
}

TEST_F(MultiEngineTest, PerQuerySheddingIsIndependent) {
  MultiEngine multi;
  EngineOptions capped;
  capped.max_runs = 10;
  capped.shed_amount.fraction = 0.5;
  const size_t lossy = multi.AddQuery(
      fixture_.Compile("PATTERN SEQ(req a, unlock c) WITHIN 60 min"), capped,
      std::make_unique<RandomShedder>(1), "capped");
  const size_t exact = multi.AddQuery(
      fixture_.Compile("PATTERN SEQ(req a, avail m) WITHIN 60 min"),
      EngineOptions{}, nullptr, "exact");
  for (int i = 0; i < 100; ++i) {
    CEP_ASSERT_OK(multi.ProcessEvent(fixture_.Req(kMinute + i, 1, i)));
  }
  EXPECT_LE(multi.engine(lossy).num_runs(), 10u);
  EXPECT_EQ(multi.engine(exact).num_runs(), 100u);
  EXPECT_GT(multi.engine(lossy).metrics().runs_shed, 0u);
  EXPECT_EQ(multi.engine(exact).metrics().runs_shed, 0u);
}

TEST_F(MultiEngineTest, ProcessStreamDrains) {
  MultiEngine multi;
  multi.AddQuery(fixture_.Compile("PATTERN SEQ(req a) WITHIN 1 min"),
                 EngineOptions{});
  VectorEventStream stream(
      {fixture_.Req(1, 1, 1), fixture_.Req(2, 2, 2)});
  CEP_ASSERT_OK(multi.ProcessStream(&stream));
  EXPECT_EQ(multi.engine(0).matches().size(), 2u);
}

}  // namespace
}  // namespace cep
