#include "query/analyzer.h"

#include <gtest/gtest.h>

#include "query/builder.h"
#include "query/parser.h"
#include "test_util.h"

namespace cep {
namespace {

using testing_util::BikeSchema;

class AnalyzerTest : public ::testing::Test {
 protected:
  Result<AnalyzedQuery> AnalyzeText(const std::string& text) {
    auto parsed = ParseQuery(text);
    if (!parsed.ok()) return parsed.status();
    return Analyze(parsed.MoveValueUnsafe(), fixture_.registry);
  }

  BikeSchema fixture_;
};

TEST_F(AnalyzerTest, ResolvesTypesAndAttributes) {
  auto result = AnalyzeText(
      "PATTERN SEQ(req a, avail+ b[], unlock c) "
      "WHERE c.uid = a.uid WITHIN 10 min");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const AnalyzedQuery& q = result.ValueOrDie();
  EXPECT_EQ(q.num_positive, 3);
  EXPECT_EQ(q.query.pattern[0].type_id, fixture_.registry.FindType("req"));
  EXPECT_EQ(q.query.pattern[1].type_id, fixture_.registry.FindType("avail"));
}

TEST_F(AnalyzerTest, AttachesConjunctToLatestVariable) {
  auto result = AnalyzeText(
      "PATTERN SEQ(req a, avail+ b[], unlock c) "
      "WHERE a.loc > 0, diff(b[i].loc, a.loc) < 5, c.uid = a.uid "
      "WITHIN 10 min");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const AnalyzedQuery& q = result.ValueOrDie();
  EXPECT_EQ(q.attachments[0].take.size(), 1u);  // a.loc > 0
  EXPECT_EQ(q.attachments[1].take.size(), 1u);  // b[i] predicate
  EXPECT_EQ(q.attachments[2].take.size(), 1u);  // c.uid = a.uid
  EXPECT_TRUE(q.attachments[1].exit.empty());
}

TEST_F(AnalyzerTest, CountAttachesToKleeneExit) {
  auto result = AnalyzeText(
      "PATTERN SEQ(req a, avail+ b[], unlock c) "
      "WHERE COUNT(b[]) > 5 WITHIN 10 min");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const AnalyzedQuery& q = result.ValueOrDie();
  EXPECT_TRUE(q.attachments[1].take.empty());
  EXPECT_EQ(q.attachments[1].exit.size(), 1u);
}

TEST_F(AnalyzerTest, LastRefAttachesToExitFirstRefToTake) {
  auto result = AnalyzeText(
      "PATTERN SEQ(req a, avail+ b[], unlock c) "
      "WHERE b[last].loc > 0, b[first].loc > 0 WITHIN 10 min");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const AnalyzedQuery& q = result.ValueOrDie();
  EXPECT_EQ(q.attachments[1].exit.size(), 1u);  // b[last]
  EXPECT_EQ(q.attachments[1].take.size(), 1u);  // b[first]
}

TEST_F(AnalyzerTest, ConstantConjunctGatesFirstVariable) {
  auto result = AnalyzeText(
      "PATTERN SEQ(req a, unlock c) WHERE 1 < 2 WITHIN 10 min");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.ValueOrDie().attachments[0].take.size(), 1u);
}

TEST_F(AnalyzerTest, NegationConditionAttachesToNegatedVariable) {
  auto result = AnalyzeText(
      "PATTERN SEQ(req a, NOT unlock x, req b) "
      "WHERE x.uid = a.uid WITHIN 10 min");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const AnalyzedQuery& q = result.ValueOrDie();
  EXPECT_EQ(q.attachments[1].take.size(), 1u);
  EXPECT_EQ(q.num_positive, 2);
}

TEST_F(AnalyzerTest, RejectsNegationConditionUsingLaterVariable) {
  EXPECT_TRUE(AnalyzeText("PATTERN SEQ(req a, NOT unlock x, req b) "
                          "WHERE x.uid = b.uid WITHIN 10 min")
                  .status()
                  .IsInvalidArgument());
}

TEST_F(AnalyzerTest, RejectsConjunctWithTwoNegatedVariables) {
  EXPECT_TRUE(AnalyzeText("PATTERN SEQ(req a, NOT unlock x, NOT avail y, "
                          "req b) WHERE x.uid = y.bid WITHIN 10 min")
                  .status()
                  .IsInvalidArgument());
}

TEST_F(AnalyzerTest, RejectsUnknownEventType) {
  EXPECT_TRUE(AnalyzeText("PATTERN SEQ(martian m) WITHIN 1 min")
                  .status()
                  .IsNotFound());
}

TEST_F(AnalyzerTest, RejectsUnknownAttribute) {
  EXPECT_TRUE(AnalyzeText("PATTERN SEQ(req a) WHERE a.bogus > 1 WITHIN 1 min")
                  .status()
                  .IsNotFound());
}

TEST_F(AnalyzerTest, RejectsUnknownVariable) {
  EXPECT_TRUE(AnalyzeText("PATTERN SEQ(req a) WHERE z.loc > 1 WITHIN 1 min")
                  .status()
                  .IsNotFound());
}

TEST_F(AnalyzerTest, RejectsDuplicateVariables) {
  EXPECT_TRUE(AnalyzeText("PATTERN SEQ(req a, unlock a) WITHIN 1 min")
                  .status()
                  .IsInvalidArgument());
}

TEST_F(AnalyzerTest, RejectsKleeneIndexOnSingleVariable) {
  EXPECT_TRUE(AnalyzeText("PATTERN SEQ(req a, unlock c) "
                          "WHERE a[i].loc > 1 WITHIN 1 min")
                  .status()
                  .IsInvalidArgument());
}

TEST_F(AnalyzerTest, RejectsPlainRefOnKleeneVariable) {
  EXPECT_TRUE(AnalyzeText("PATTERN SEQ(req a, avail+ b[]) "
                          "WHERE b.loc > 1 WITHIN 1 min")
                  .status()
                  .IsInvalidArgument());
}

TEST_F(AnalyzerTest, RejectsCountOnSingleVariable) {
  EXPECT_TRUE(AnalyzeText("PATTERN SEQ(req a, unlock c) "
                          "WHERE COUNT(a[]) > 1 WITHIN 1 min")
                  .status()
                  .IsInvalidArgument());
}

TEST_F(AnalyzerTest, RejectsLeadingNegation) {
  EXPECT_TRUE(AnalyzeText("PATTERN SEQ(NOT req x, unlock c) WITHIN 1 min")
                  .status()
                  .IsInvalidArgument());
}

TEST_F(AnalyzerTest, AcceptsTrailingNegation) {
  // Emission is deferred to window close by the engine.
  auto result =
      AnalyzeText("PATTERN SEQ(req a, NOT unlock x) "
                  "WHERE x.uid = a.uid WITHIN 1 min");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.ValueOrDie().attachments[1].take.size(), 1u);
}

TEST_F(AnalyzerTest, RejectsNegationAfterKleene) {
  EXPECT_TRUE(AnalyzeText("PATTERN SEQ(req a, avail+ b[], NOT unlock x, "
                          "req c) WITHIN 1 min")
                  .status()
                  .IsNotImplemented());
}

TEST_F(AnalyzerTest, RejectsAllNegatedPattern) {
  // Leading-negation check fires first; the pattern is invalid either way.
  EXPECT_FALSE(AnalyzeText("PATTERN SEQ(NOT req a) WITHIN 1 min").ok());
}

TEST_F(AnalyzerTest, RejectsWrongBuiltinArity) {
  EXPECT_TRUE(AnalyzeText("PATTERN SEQ(req a) WHERE abs(a.loc, 1) > 0 "
                          "WITHIN 1 min")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(AnalyzeText("PATTERN SEQ(req a) WHERE diff(a.loc) > 0 "
                          "WITHIN 1 min")
                  .status()
                  .IsInvalidArgument());
}

TEST_F(AnalyzerTest, RejectsUnknownFunction) {
  EXPECT_TRUE(AnalyzeText("PATTERN SEQ(req a) WHERE frob(a.loc) > 0 "
                          "WITHIN 1 min")
                  .status()
                  .IsNotFound());
}

TEST_F(AnalyzerTest, ReturnCurrentRewrittenToLast) {
  auto result = AnalyzeText(
      "PATTERN SEQ(req a, avail+ b[]) WITHIN 10 min "
      "RETURN w(near = b[i].loc)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const auto& item = result.ValueOrDie().query.return_spec.items[0];
  EXPECT_NE(item.expr->ToString().find("[last]"), std::string::npos);
}

TEST_F(AnalyzerTest, ReturnCannotReferenceNegatedVariable) {
  EXPECT_TRUE(AnalyzeText("PATTERN SEQ(req a, NOT unlock x, req b) "
                          "WITHIN 1 min RETURN o(v = x.loc)")
                  .status()
                  .IsInvalidArgument());
}

TEST_F(AnalyzerTest, BuilderEquivalentToParser) {
  CEP_ASSERT_OK_AND_ASSIGN(
      AnalyzedQuery built,
      QueryBuilder("demo")
          .Seq("req", "a")
          .SeqKleene("avail", "b")
          .Seq("unlock", "c")
          .Where("diff(b[i].loc, a.loc) < 5")
          .Where("c.uid = a.uid")
          .Within(10 * kMinute)
          .Return("warning", {{"loc", "a.loc"}})
          .Build(fixture_.registry));
  auto parsed = AnalyzeText(
      "PATTERN SEQ(req a, avail+ b[], unlock c) "
      "WHERE diff(b[i].loc, a.loc) < 5, c.uid = a.uid "
      "WITHIN 10 min RETURN warning(loc = a.loc)");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(built.query.ToString().substr(built.query.ToString().find("SEQ")),
            parsed.ValueOrDie().query.ToString().substr(
                parsed.ValueOrDie().query.ToString().find("SEQ")));
}

TEST_F(AnalyzerTest, BuilderReportsDeferredErrors) {
  auto result = QueryBuilder("bad")
                    .Seq("req", "a")
                    .Where("1 +")  // parse error, reported at Build
                    .Within(kMinute)
                    .Build(fixture_.registry);
  EXPECT_TRUE(result.status().IsParseError());
}

TEST_F(AnalyzerTest, BuilderRejectsNullExpr) {
  auto result = QueryBuilder("bad")
                    .Seq("req", "a")
                    .Where(ExprPtr(nullptr))
                    .Within(kMinute)
                    .Build(fixture_.registry);
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST_F(AnalyzerTest, RejectsNonPositiveWindow) {
  auto parsed = ParseQuery("PATTERN SEQ(req a) WITHIN 1 min").MoveValueUnsafe();
  parsed.window = 0;
  EXPECT_TRUE(Analyze(std::move(parsed), fixture_.registry)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace cep
