#ifndef CEPSHED_TESTS_ORACLE_H_
#define CEPSHED_TESTS_ORACLE_H_

#include <vector>

#include "common/result.h"
#include "engine/match.h"
#include "engine/run.h"
#include "nfa/nfa.h"

namespace cep {
namespace testing_util {

/// \brief Brute-force reference matcher for skip-till-any-match semantics.
///
/// Enumerates every assignment of stream events to pattern variables by
/// exhaustive recursion over the (analyzed) query — no NFA, no incremental
/// state — and returns the fingerprints of all complete matches. Exponential
/// in the stream length; usable only on small streams, which is exactly its
/// job: an independent oracle for property tests of the engine.
///
/// Semantics implemented (mirroring the engine's contract):
///  * variables bind timestamp-ordered events (sequence order for ties);
///  * all events of a match lie within the window (last - first <= window);
///  * Kleene variables bind one or more events; take predicates are
///    evaluated per element with virtual append, exit predicates once the
///    binding is complete;
///  * negated variables: no event between the neighbouring bound events may
///    satisfy the kill conjuncts;
///  * take predicates of each variable are checked with the candidate
///    virtually bound.
Result<std::vector<uint64_t>> OracleMatchFingerprints(
    const Nfa& nfa, const std::vector<EventPtr>& events);

}  // namespace testing_util
}  // namespace cep

#endif  // CEPSHED_TESTS_ORACLE_H_
