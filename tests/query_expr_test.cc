#include "query/expr.h"

#include <gtest/gtest.h>

#include "query/analyzer.h"
#include "query/parser.h"
#include "test_util.h"

namespace cep {
namespace {

using testing_util::BikeSchema;
using testing_util::FakeBindings;

/// Evaluates a constant expression (no attribute references).
Value EvalConst(const std::string& text) {
  auto expr = ParseExpression(text);
  EXPECT_TRUE(expr.ok()) << expr.status().ToString();
  FakeBindings bindings;
  auto result = expr.ValueOrDie()->Eval(bindings);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.MoveValueUnsafe();
}

Status EvalConstStatus(const std::string& text) {
  auto expr = ParseExpression(text);
  EXPECT_TRUE(expr.ok()) << expr.status().ToString();
  FakeBindings bindings;
  return expr.ValueOrDie()->Eval(bindings).status();
}

TEST(ExprEvalTest, IntegerArithmetic) {
  EXPECT_EQ(EvalConst("1 + 2 * 3"), Value(7));
  EXPECT_EQ(EvalConst("(1 + 2) * 3"), Value(9));
  EXPECT_EQ(EvalConst("10 - 4 - 3"), Value(3));  // left associative
  EXPECT_EQ(EvalConst("7 % 3"), Value(1));
  EXPECT_EQ(EvalConst("-5 + 2"), Value(-3));
}

TEST(ExprEvalTest, DivisionIsAlwaysDouble) {
  EXPECT_EQ(EvalConst("7 / 2"), Value(3.5));
  EXPECT_EQ(EvalConst("6 / 2"), Value(3.0));
}

TEST(ExprEvalTest, DoubleArithmeticAndMixing) {
  EXPECT_EQ(EvalConst("1.5 + 1"), Value(2.5));
  EXPECT_EQ(EvalConst("2 * 2.5"), Value(5.0));
  EXPECT_EQ(EvalConst("5.0 % 2.0"), Value(1.0));
}

TEST(ExprEvalTest, DivisionByZeroFails) {
  EXPECT_TRUE(EvalConstStatus("1 / 0").IsInvalidArgument());
  EXPECT_TRUE(EvalConstStatus("1 % 0").IsInvalidArgument());
}

TEST(ExprEvalTest, StringConcatenation) {
  EXPECT_EQ(EvalConst("'a' + 'b'"), Value("ab"));
  EXPECT_TRUE(EvalConstStatus("'a' - 'b'").IsTypeError());
}

TEST(ExprEvalTest, Comparisons) {
  EXPECT_EQ(EvalConst("1 < 2"), Value(true));
  EXPECT_EQ(EvalConst("2 <= 2"), Value(true));
  EXPECT_EQ(EvalConst("3 > 4"), Value(false));
  EXPECT_EQ(EvalConst("3 >= 4"), Value(false));
  EXPECT_EQ(EvalConst("3 = 3"), Value(true));
  EXPECT_EQ(EvalConst("3 != 3"), Value(false));
  EXPECT_EQ(EvalConst("'a' < 'b'"), Value(true));
  EXPECT_EQ(EvalConst("1 = 1.0"), Value(true));
}

TEST(ExprEvalTest, EqualityAcrossTypesIsFalseNotError) {
  EXPECT_EQ(EvalConst("'1' = 1"), Value(false));
  EXPECT_EQ(EvalConst("'1' != 1"), Value(true));
}

TEST(ExprEvalTest, OrderAcrossTypesIsError) {
  EXPECT_TRUE(EvalConstStatus("'a' < 1").IsTypeError());
}

TEST(ExprEvalTest, BooleanLogicShortCircuits) {
  EXPECT_EQ(EvalConst("true AND false"), Value(false));
  EXPECT_EQ(EvalConst("true OR false"), Value(true));
  EXPECT_EQ(EvalConst("NOT true"), Value(false));
  EXPECT_EQ(EvalConst("NOT false OR false"), Value(true));
  // Short circuit: the erroring right side is never evaluated.
  EXPECT_EQ(EvalConst("false AND (1/0 > 0)"), Value(false));
  EXPECT_EQ(EvalConst("true OR (1/0 > 0)"), Value(true));
}

TEST(ExprEvalTest, PrecedenceAndOverOr) {
  EXPECT_EQ(EvalConst("true OR false AND false"), Value(true));
  EXPECT_EQ(EvalConst("(true OR false) AND false"), Value(false));
}

TEST(ExprEvalTest, Builtins) {
  EXPECT_EQ(EvalConst("abs(-3)"), Value(3));
  EXPECT_EQ(EvalConst("abs(-3.5)"), Value(3.5));
  EXPECT_EQ(EvalConst("diff(2, 5)"), Value(3.0));
  EXPECT_EQ(EvalConst("diff(5, 2)"), Value(3.0));
  EXPECT_EQ(EvalConst("min(2, 5)"), Value(2));
  EXPECT_EQ(EvalConst("max(2, 5)"), Value(5));
  EXPECT_EQ(EvalConst("min('a', 'b')"), Value("a"));
}

TEST(ExprEvalTest, UnknownFunctionFailsAtParseViaEval) {
  // Parsing succeeds; the unresolved builtin is an eval-time internal error
  // (the analyzer resolves builtins in query context; see analyzer test).
  auto expr = ParseExpression("frobnicate(1)").ValueOrDie();
  FakeBindings bindings;
  EXPECT_TRUE(expr->Eval(bindings).status().IsInternal());
}

TEST(ExprEvalTest, ToStringRoundTripsStructure) {
  auto expr = ParseExpression("(a.x + 1) * 2 < diff(b.y, 3)").ValueOrDie();
  const std::string text = expr->ToString();
  EXPECT_NE(text.find("a.x"), std::string::npos);
  EXPECT_NE(text.find("diff"), std::string::npos);
  // Re-parse the printed form; structure must be stable.
  auto reparsed = ParseExpression(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed.ValueOrDie()->ToString(), text);
}

TEST(ExprEvalTest, CloneIsDeep) {
  auto expr = ParseExpression("1 + 2 * 3").ValueOrDie();
  auto clone = expr->Clone();
  EXPECT_EQ(expr->ToString(), clone->ToString());
  EXPECT_NE(expr.get(), clone.get());
}

// --- attribute references against a resolved query -------------------------

class ResolvedExprTest : public ::testing::Test {
 protected:
  /// Resolves `expr_text` as a WHERE conjunct of the Example 1 query. All
  /// analyzed queries stay alive so multiple resolved pointers can coexist.
  const Expr* Resolve(const std::string& expr_text) {
    auto parsed = ParseQuery(
        "PATTERN SEQ(req a, avail+ b[], unlock c) WHERE " + expr_text +
        " WITHIN 10 min");
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    auto analyzed = Analyze(parsed.MoveValueUnsafe(), fixture_.registry);
    EXPECT_TRUE(analyzed.ok()) << analyzed.status().ToString();
    analyzed_.push_back(
        std::make_unique<AnalyzedQuery>(analyzed.MoveValueUnsafe()));
    return analyzed_.back()->query.predicates[0].get();
  }

  BikeSchema fixture_;
  std::vector<std::unique_ptr<AnalyzedQuery>> analyzed_;
};

TEST_F(ResolvedExprTest, SingleVariableReference) {
  const Expr* expr = Resolve("a.loc + 1 = 8");
  FakeBindings bindings;
  bindings.BindSingle(0, fixture_.Req(1, 7, 50));
  EXPECT_EQ(expr->Eval(bindings).ValueOrDie(), Value(true));
}

TEST_F(ResolvedExprTest, UnboundSingleIsNullAndComparesFalse) {
  const Expr* expr = Resolve("a.loc = 7");
  FakeBindings bindings;  // nothing bound
  EXPECT_EQ(expr->Eval(bindings).ValueOrDie(), Value(false));
}

TEST_F(ResolvedExprTest, KleeneCurrentUsesCurrentEvent) {
  const Expr* expr = Resolve("b[i].loc = 3");
  FakeBindings bindings;
  const EventPtr current = fixture_.Avail(2, 3, 900);
  bindings.SetCurrent(1, current.get());
  EXPECT_EQ(expr->Eval(bindings).ValueOrDie(), Value(true));
}

TEST_F(ResolvedExprTest, KleenePrevIsVacuouslyTrueOnFirstTake) {
  // The analyzer wraps [i-1] conjuncts as `COUNT(b[]) <= 1 OR (...)`, so on
  // the first take (virtual count 1, no previous element) the predicate is
  // vacuously true — the SASE+ semantics.
  const Expr* expr = Resolve("b[i].loc > b[i-1].loc");
  FakeBindings bindings;
  const EventPtr current = fixture_.Avail(2, 3, 900);
  bindings.SetCurrent(1, current.get());
  EXPECT_EQ(expr->Eval(bindings).ValueOrDie(), Value(true));
  // With a stored element the wrapped conjunct degenerates to the raw
  // comparison.
  bindings.BindKleene(1, {fixture_.Avail(1, 7, 899)});
  EXPECT_EQ(expr->Eval(bindings).ValueOrDie(), Value(false));  // 3 > 7 fails
}

TEST_F(ResolvedExprTest, KleenePrevComparesAgainstStoredLast) {
  const Expr* expr = Resolve("b[i].loc > b[i-1].loc");
  FakeBindings bindings;
  bindings.BindKleene(1, {fixture_.Avail(1, 2, 900)});
  const EventPtr current = fixture_.Avail(2, 5, 901);
  bindings.SetCurrent(1, current.get());
  EXPECT_EQ(expr->Eval(bindings).ValueOrDie(), Value(true));
}

TEST_F(ResolvedExprTest, KleeneFirstAndLast) {
  const Expr* first_expr = Resolve("b[first].loc = 10");
  const Expr* last_expr = Resolve("b[last].loc = 30");
  FakeBindings bindings;
  bindings.BindKleene(1, {fixture_.Avail(1, 10, 1), fixture_.Avail(2, 20, 2),
                          fixture_.Avail(3, 30, 3)});
  EXPECT_EQ(first_expr->Eval(bindings).ValueOrDie(), Value(true));
  EXPECT_EQ(last_expr->Eval(bindings).ValueOrDie(), Value(true));
}

TEST_F(ResolvedExprTest, CountReflectsVirtualAppend) {
  const Expr* expr = Resolve("COUNT(b[]) = 3");
  FakeBindings bindings;
  bindings.BindKleene(1, {fixture_.Avail(1, 1, 1), fixture_.Avail(2, 2, 2)});
  EXPECT_EQ(expr->Eval(bindings).ValueOrDie(), Value(false));
  const EventPtr current = fixture_.Avail(3, 3, 3);
  bindings.SetCurrent(1, current.get());
  EXPECT_EQ(expr->Eval(bindings).ValueOrDie(), Value(true));
}

TEST_F(ResolvedExprTest, DiffBuiltinOnAttributes) {
  const Expr* expr = Resolve("diff(c.loc, a.loc) > 5");
  FakeBindings bindings;
  bindings.BindSingle(0, fixture_.Req(1, 10, 50));
  bindings.BindSingle(2, fixture_.Unlock(2, 20, 50, 7));
  EXPECT_EQ(expr->Eval(bindings).ValueOrDie(), Value(true));
}

TEST(EvalPredicateTest, NullIsFalseNonBoolIsError) {
  FakeBindings bindings;
  auto null_expr = ParseExpression("1 + 2").ValueOrDie();
  EXPECT_TRUE(EvalPredicate(*null_expr, bindings).status().IsTypeError());
  auto bool_expr = ParseExpression("1 < 2").ValueOrDie();
  EXPECT_TRUE(EvalPredicate(*bool_expr, bindings).ValueOrDie());
}

TEST(ExprVisitTest, VisitsAllNodes) {
  auto expr = ParseExpression("abs(a.x) + 2 * 3 < 10 AND NOT (b.y = 1)")
                  .ValueOrDie();
  int count = 0;
  VisitExpr(const_cast<const Expr*>(expr.get()),
            [&](const Expr*) { ++count; });
  // AND, <, +, abs, a.x, *, 2, 3, 10, NOT, =, b.y, 1
  EXPECT_EQ(count, 13);
}

}  // namespace
}  // namespace cep
