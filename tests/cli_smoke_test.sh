#!/bin/sh
# End-to-end smoke test for cepshed_cli: generate -> explain -> run,
# exercising the full CSV -> parse -> compile -> engine -> shedding path,
# plus the observability exports (validated when a validate_obs binary is
# passed as the second argument).
set -e
CLI="$1"
VALIDATOR="$2"
WORKDIR="$(mktemp -d)"
trap 'rm -rf "$WORKDIR"' EXIT

"$CLI" generate --workload bike --out "$WORKDIR/bike.csv" --duration-hours 1 \
    --seed 7 | grep -q "wrote"

QUERY='PATTERN SEQ(req a, unlock c) WHERE c.uid = a.uid WITHIN 5 min RETURN w(loc = a.loc, user = a.uid)'

"$CLI" explain --schema bike --query "$QUERY" --dot "$WORKDIR/nfa.dot" \
    | grep -q "NFA"
grep -q "digraph" "$WORKDIR/nfa.dot"

"$CLI" run --schema bike --query "$QUERY" --input "$WORKDIR/bike.csv" \
    --matches "$WORKDIR/matches.csv" --stats | grep -q "matches over"
test -s "$WORKDIR/matches.csv"

# Shedding path: SBLS with a hard run cap, exporting every observability
# artifact (metrics in both formats, Chrome trace, shed-decision audit).
"$CLI" run --schema bike --query "$QUERY" --input "$WORKDIR/bike.csv" \
    --shedder sbls --max-runs 5 --hash req:loc --stats \
    --metrics-out "$WORKDIR/metrics.prom" --trace-out "$WORKDIR/trace.json" \
    --audit-out "$WORKDIR/audit.jsonl" \
    | grep -q "shed"
"$CLI" run --schema bike --query "$QUERY" --input "$WORKDIR/bike.csv" \
    --shedder sbls --max-runs 5 --hash req:loc \
    --metrics-out "$WORKDIR/metrics.json" > /dev/null
test -s "$WORKDIR/metrics.prom"
test -s "$WORKDIR/metrics.json"
test -s "$WORKDIR/trace.json"
test -s "$WORKDIR/audit.jsonl"
grep -q "cep_runs_shed_total" "$WORKDIR/metrics.prom"
grep -q "traceEvents" "$WORKDIR/trace.json"
grep -q '"run_id"' "$WORKDIR/audit.jsonl"
if [ -n "$VALIDATOR" ]; then
  "$VALIDATOR" metrics-prom "$WORKDIR/metrics.prom"
  "$VALIDATOR" metrics-json "$WORKDIR/metrics.json"
  "$VALIDATOR" trace "$WORKDIR/trace.json"
  "$VALIDATOR" audit "$WORKDIR/audit.jsonl"
fi

# Periodic metric snapshots go to stderr, at least one for this input size.
"$CLI" run --schema bike --query "$QUERY" --input "$WORKDIR/bike.csv" \
    --stats-interval-events 100 2> "$WORKDIR/snapshots.txt" > /dev/null
grep -q "stats\[" "$WORKDIR/snapshots.txt"

# Resilience path: fault injection + degradation ladder + error budget over
# a deliberately corrupted input survives and reports stats.
printf 'garbage line that is not csv\n' >> "$WORKDIR/bike.csv"
"$CLI" run --schema bike --query "$QUERY" --input "$WORKDIR/bike.csv" \
    --resilience --theta 50 --shedder sbls --hash req:loc \
    --fault-corrupt 0.05 --fault-dup 0.1 --fault-seed 3 --stats \
    | grep -q "faults:"

# Without --resilience the corrupted line is fatal.
if "$CLI" run --schema bike --query "$QUERY" --input "$WORKDIR/bike.csv" \
    2>/dev/null; then
  echo "expected csv parse failure" >&2
  exit 1
fi

# Error paths exit non-zero.
if "$CLI" run --schema bike --query "PATTERN garbage" \
    --input "$WORKDIR/bike.csv" 2>/dev/null; then
  echo "expected parse failure" >&2
  exit 1
fi

echo "cli smoke ok"
