#!/bin/sh
# End-to-end smoke test for cepshed_cli: generate -> explain -> run,
# exercising the full CSV -> parse -> compile -> engine -> shedding path,
# plus the observability exports (validated when a validate_obs binary is
# passed as the second argument) and the checkpoint/restore path including
# crash injection (ckpt_tool binary as the third argument).
set -e
CLI="$1"
VALIDATOR="$2"
CKPT_TOOL="$3"
WORKDIR="$(mktemp -d)"
trap 'rm -rf "$WORKDIR"' EXIT

"$CLI" generate --workload bike --out "$WORKDIR/bike.csv" --duration-hours 1 \
    --seed 7 | grep -q "wrote"

QUERY='PATTERN SEQ(req a, unlock c) WHERE c.uid = a.uid WITHIN 5 min RETURN w(loc = a.loc, user = a.uid)'

"$CLI" explain --schema bike --query "$QUERY" --dot "$WORKDIR/nfa.dot" \
    | grep -q "NFA"
grep -q "digraph" "$WORKDIR/nfa.dot"

"$CLI" run --schema bike --query "$QUERY" --input "$WORKDIR/bike.csv" \
    --matches "$WORKDIR/matches.csv" --stats | grep -q "matches over"
test -s "$WORKDIR/matches.csv"

# Shedding path: SBLS with a hard run cap, exporting every observability
# artifact (metrics in both formats, Chrome trace, shed-decision audit).
"$CLI" run --schema bike --query "$QUERY" --input "$WORKDIR/bike.csv" \
    --shedder sbls --max-runs 5 --hash req:loc --stats \
    --metrics-out "$WORKDIR/metrics.prom" --trace-out "$WORKDIR/trace.json" \
    --audit-out "$WORKDIR/audit.jsonl" \
    | grep -q "shed"
"$CLI" run --schema bike --query "$QUERY" --input "$WORKDIR/bike.csv" \
    --shedder sbls --max-runs 5 --hash req:loc \
    --metrics-out "$WORKDIR/metrics.json" > /dev/null
test -s "$WORKDIR/metrics.prom"
test -s "$WORKDIR/metrics.json"
test -s "$WORKDIR/trace.json"
test -s "$WORKDIR/audit.jsonl"
grep -q "cep_runs_shed_total" "$WORKDIR/metrics.prom"
grep -q "traceEvents" "$WORKDIR/trace.json"
grep -q '"run_id"' "$WORKDIR/audit.jsonl"
if [ -n "$VALIDATOR" ]; then
  "$VALIDATOR" metrics-prom "$WORKDIR/metrics.prom"
  "$VALIDATOR" metrics-json "$WORKDIR/metrics.json"
  "$VALIDATOR" trace "$WORKDIR/trace.json"
  "$VALIDATOR" audit "$WORKDIR/audit.jsonl"
fi

# Periodic metric snapshots go to stderr, at least one for this input size.
"$CLI" run --schema bike --query "$QUERY" --input "$WORKDIR/bike.csv" \
    --stats-interval-events 100 2> "$WORKDIR/snapshots.txt" > /dev/null
grep -q "stats\[" "$WORKDIR/snapshots.txt"

# Checkpoint/restore path: a checkpointed run and a crash-interrupted-then-
# resumed run over the same input must produce byte-identical outputs, and
# snapshot corruption must be detected, skipped, or rejected as appropriate.
"$CLI" generate --workload bike --out "$WORKDIR/crash.csv" \
    --duration-hours 48 --seed 11 > /dev/null
CKPT_FLAGS="--schema bike --input $WORKDIR/crash.csv --shedder sbls \
    --max-runs 5 --hash req:loc --threads 2"

# Baseline: uninterrupted run, checkpointing every 100 events.
"$CLI" run $CKPT_FLAGS --query "$QUERY" \
    --checkpoint-dir "$WORKDIR/ckpts_base" --checkpoint-interval-events 100 \
    --checkpoint-sync --checkpoint-keep 4 \
    --matches "$WORKDIR/matches_base.csv" \
    --metrics-out "$WORKDIR/metrics_base.json" > /dev/null
test "$(ls "$WORKDIR/ckpts_base" | grep -c '\.cep$')" -ge 1

if [ -n "$CKPT_TOOL" ]; then
  "$CKPT_TOOL" verify "$WORKDIR/ckpts_base" | grep -q "valid"
  FIRST_SNAP="$(ls "$WORKDIR"/ckpts_base/*.cep | head -n 1)"
  "$CKPT_TOOL" inspect "$FIRST_SNAP" | grep -q "stream offset"
  "$CKPT_TOOL" diff "$FIRST_SNAP" "$FIRST_SNAP" > /dev/null
fi

# Crash injection: SIGKILL the CLI once at least two snapshots exist. The
# kill can land mid-write; recovery must never see a torn file as valid.
"$CLI" run $CKPT_FLAGS --query "$QUERY" \
    --checkpoint-dir "$WORKDIR/ckpts_crash" --checkpoint-interval-events 100 \
    --checkpoint-sync > /dev/null 2>&1 &
CLI_PID=$!
TRIES=0
while [ "$(ls "$WORKDIR/ckpts_crash" 2>/dev/null | grep -c '\.cep$')" -lt 2 ]
do
  kill -0 "$CLI_PID" 2>/dev/null || break
  TRIES=$((TRIES + 1))
  [ "$TRIES" -gt 600 ] && break
  sleep 0.05
done
kill -9 "$CLI_PID" 2>/dev/null || true
wait "$CLI_PID" 2>/dev/null || true
test "$(ls "$WORKDIR/ckpts_crash" | grep -c '\.cep$')" -ge 1

# A torn temp file (as a crash mid-write would leave) must be ignored by
# recovery even though its name sorts newest.
printf 'torn partial snapshot bytes' \
    > "$WORKDIR/ckpts_crash/ckpt-18446744073709551615.cep.tmp"

# A complete-looking but corrupted newest snapshot must fail its CRC and
# recovery must fall back to the previous good one.
NEWEST="$(ls "$WORKDIR"/ckpts_crash/*.cep | tail -n 1)"
cp "$NEWEST" "$WORKDIR/ckpts_crash/ckpt-18446744073709551614.cep"
SIZE="$(wc -c < "$NEWEST")"
printf '\377' | dd of="$WORKDIR/ckpts_crash/ckpt-18446744073709551614.cep" \
    bs=1 seek=$((SIZE / 2)) conv=notrunc 2> /dev/null

if [ -n "$CKPT_TOOL" ]; then
  if "$CKPT_TOOL" verify "$WORKDIR/ckpts_crash/ckpt-18446744073709551614.cep" \
      > /dev/null 2>&1; then
    echo "expected ckpt_tool verify to fail on the corrupted snapshot" >&2
    exit 1
  fi
fi

# Restoring directly from the corrupted file is a typed DataLoss error.
if "$CLI" run $CKPT_FLAGS --query "$QUERY" \
    --restore-from "$WORKDIR/ckpts_crash/ckpt-18446744073709551614.cep" \
    > /dev/null 2> "$WORKDIR/restore_err.txt"; then
  echo "expected restore from corrupted snapshot to fail" >&2
  exit 1
fi
grep -q "DataLoss" "$WORKDIR/restore_err.txt"

# Resume from the directory: picks the newest snapshot that verifies, skips
# the torn temp and the corrupted file, and finishes with outputs
# byte-identical to the uninterrupted run.
"$CLI" run $CKPT_FLAGS --query "$QUERY" \
    --restore-from "$WORKDIR/ckpts_crash" \
    --matches "$WORKDIR/matches_resumed.csv" \
    --metrics-out "$WORKDIR/metrics_resumed.json" > /dev/null
cmp "$WORKDIR/matches_base.csv" "$WORKDIR/matches_resumed.csv"
cmp "$WORKDIR/metrics_base.json" "$WORKDIR/metrics_resumed.json"

# Resilience path: fault injection + degradation ladder + error budget over
# a deliberately corrupted input survives and reports stats.
printf 'garbage line that is not csv\n' >> "$WORKDIR/bike.csv"
"$CLI" run --schema bike --query "$QUERY" --input "$WORKDIR/bike.csv" \
    --resilience --theta 50 --shedder sbls --hash req:loc \
    --fault-corrupt 0.05 --fault-dup 0.1 --fault-seed 3 --stats \
    | grep -q "faults:"

# Without --resilience the corrupted line is fatal.
if "$CLI" run --schema bike --query "$QUERY" --input "$WORKDIR/bike.csv" \
    2>/dev/null; then
  echo "expected csv parse failure" >&2
  exit 1
fi

# Error paths exit non-zero.
if "$CLI" run --schema bike --query "PATTERN garbage" \
    --input "$WORKDIR/bike.csv" 2>/dev/null; then
  echo "expected parse failure" >&2
  exit 1
fi

echo "cli smoke ok"
