// Service-layer unit tests: wire framing, the per-tenant WAL, quota
// admission, checkpoint path safety, and TenantSession exactly-once
// recovery. The end-to-end daemon (sockets, signals, SIGKILL chaos) is
// covered by tests/server_smoke_test.sh and stress_engine --server.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "ckpt/manager.h"
#include "event/csv.h"
#include "obs/metrics.h"
#include "service/framing.h"
#include "service/quota.h"
#include "service/tenant.h"
#include "service/wal.h"
#include "test_util.h"

namespace cep {
namespace {

using service::EncodeFrame;
using service::FrameReader;
using service::QuotaAllocator;
using service::TenantSession;
using service::Wal;

std::string TestDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// ---------------------------------------------------------------------------
// FrameReader
// ---------------------------------------------------------------------------

TEST(FrameReaderTest, TextLineAcrossFeeds) {
  FrameReader reader;
  reader.Feed("hel", 3);
  EXPECT_FALSE(reader.Next().ValueOrDie().have);
  EXPECT_TRUE(reader.mid_message());
  reader.Feed("lo\r\n", 4);
  const auto message = reader.Next().ValueOrDie();
  ASSERT_TRUE(message.have);
  EXPECT_FALSE(message.binary);
  EXPECT_EQ(message.payload, "hello");  // '\r' stripped
  EXPECT_FALSE(reader.mid_message());
}

TEST(FrameReaderTest, BinaryFrameByteAtATime) {
  const std::string frame = EncodeFrame("a\nb");
  ASSERT_EQ(frame.size(), service::kFrameHeaderBytes + 3);
  EXPECT_EQ(static_cast<uint8_t>(frame[0]), service::kFrameMagic);
  FrameReader reader;
  for (size_t i = 0; i + 1 < frame.size(); ++i) {
    reader.Feed(frame.data() + i, 1);
    EXPECT_FALSE(reader.Next().ValueOrDie().have);
  }
  reader.Feed(frame.data() + frame.size() - 1, 1);
  const auto message = reader.Next().ValueOrDie();
  ASSERT_TRUE(message.have);
  EXPECT_TRUE(message.binary);
  EXPECT_EQ(message.payload, "a\nb");  // newline survives framing
}

TEST(FrameReaderTest, MixedTextAndBinaryInOneBuffer) {
  const std::string wire = "first\n" + EncodeFrame("second") + "third\n";
  FrameReader reader;
  reader.Feed(wire.data(), wire.size());
  std::vector<std::string> payloads;
  for (;;) {
    const auto message = reader.Next().ValueOrDie();
    if (!message.have) break;
    payloads.push_back(message.payload);
  }
  EXPECT_EQ(payloads,
            (std::vector<std::string>{"first", "second", "third"}));
}

TEST(FrameReaderTest, OversizedLineQuarantinesAndResyncs) {
  FrameReader reader(/*max_message_bytes=*/8);
  const std::string wire = "way-too-long-for-the-bound\nok\n";
  reader.Feed(wire.data(), wire.size());
  const auto oversized = reader.Next();
  ASSERT_FALSE(oversized.ok());
  EXPECT_TRUE(oversized.status().IsOutOfRange())
      << oversized.status().ToString();
  EXPECT_NE(oversized.status().ToString().find("oversized_line"),
            std::string::npos)
      << oversized.status().ToString();
  const auto next = reader.Next().ValueOrDie();
  ASSERT_TRUE(next.have);
  EXPECT_EQ(next.payload, "ok");
}

TEST(FrameReaderTest, OversizedFrameDiscardsBodyWithoutBuffering) {
  FrameReader reader(/*max_message_bytes=*/8);
  const std::string wire =
      EncodeFrame(std::string(1 << 16, 'x')) + EncodeFrame("ok");
  // Drip-feed so the discard path runs while the body is still arriving;
  // the reader must never buffer the declared 64 KiB.
  size_t fed = 0;
  bool saw_error = false;
  std::string payload;
  while (fed < wire.size()) {
    const size_t chunk = std::min<size_t>(4096, wire.size() - fed);
    reader.Feed(wire.data() + fed, chunk);
    fed += chunk;
    EXPECT_LE(reader.buffered_bytes(), 4096u + service::kFrameHeaderBytes);
    for (;;) {
      const auto message = reader.Next();
      if (!message.ok()) {
        EXPECT_TRUE(message.status().IsOutOfRange());
        EXPECT_NE(message.status().ToString().find("oversized_frame"),
                  std::string::npos);
        saw_error = true;
        continue;
      }
      if (!message.ValueOrDie().have) break;
      payload = message.ValueOrDie().payload;
    }
  }
  EXPECT_TRUE(saw_error);
  EXPECT_EQ(payload, "ok");
}

// ---------------------------------------------------------------------------
// Wal
// ---------------------------------------------------------------------------

TEST(WalTest, AppendCountsAndReplaysAfterOffset) {
  const std::string path = TestDir("wal_basic") + "/wal.csv";
  auto wal = Wal::Open(path, /*sync=*/false).ValueOrDie();
  EXPECT_EQ(wal->count(), 0u);
  ASSERT_TRUE(wal->Append("one").ok());
  ASSERT_TRUE(wal->Append("two").ok());
  ASSERT_TRUE(wal->Append("three").ok());
  EXPECT_EQ(wal->count(), 3u);

  std::vector<std::pair<uint64_t, std::string>> seen;
  ASSERT_TRUE(wal->Replay(1, [&](uint64_t ordinal, std::string_view record) {
                    seen.emplace_back(ordinal, std::string(record));
                    return Status::OK();
                  }).ok());
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], (std::pair<uint64_t, std::string>{2, "two"}));
  EXPECT_EQ(seen[1], (std::pair<uint64_t, std::string>{3, "three"}));

  // Reopen finds the same count (ordinals are stable across restarts).
  wal.reset();
  auto reopened = Wal::Open(path, false).ValueOrDie();
  EXPECT_EQ(reopened->count(), 3u);
}

TEST(WalTest, TornTailIsTruncatedOnOpen) {
  const std::string path = TestDir("wal_torn") + "/wal.csv";
  {
    std::ofstream out(path, std::ios::binary);
    out << "req,1,0,0\nreq,2,0,0\nreq,3,0";  // crash mid-append: no '\n'
  }
  auto wal = Wal::Open(path, false).ValueOrDie();
  EXPECT_EQ(wal->count(), 2u);
  // The torn record is gone; the next append lands cleanly at ordinal 3.
  ASSERT_TRUE(wal->Append("req,9,0,0").ok());
  std::vector<std::string> records;
  ASSERT_TRUE(wal->Replay(0, [&](uint64_t, std::string_view record) {
                    records.emplace_back(record);
                    return Status::OK();
                  }).ok());
  EXPECT_EQ(records,
            (std::vector<std::string>{"req,1,0,0", "req,2,0,0", "req,9,0,0"}));
}

TEST(WalTest, RejectsEmbeddedNewline) {
  const std::string path = TestDir("wal_newline") + "/wal.csv";
  auto wal = Wal::Open(path, false).ValueOrDie();
  EXPECT_FALSE(wal->Append("two\nlines").ok());
  EXPECT_EQ(wal->count(), 0u);
}

// ---------------------------------------------------------------------------
// QuotaAllocator
// ---------------------------------------------------------------------------

TEST(QuotaAllocatorTest, WeightsAreReservedIdempotentlyAndReleased) {
  QuotaAllocator quota(/*budget_bytes=*/1000, /*admission_ratio=*/0.9,
                       /*default_weight=*/0.25);
  EXPECT_EQ(quota.AdmitTenant("a", 0.5, 0).ValueOrDie(), 0.5);
  EXPECT_EQ(quota.QuotaBytes(0.5), 500u);
  // Re-hello keeps the original weight: quotas are fixed at admission.
  EXPECT_EQ(quota.AdmitTenant("a", 0.9, 0).ValueOrDie(), 0.5);
  // 0.5 + 0.6 > 1: rejected, and the failed attempt reserves nothing.
  EXPECT_TRUE(quota.AdmitTenant("b", 0.6, 0).status().IsOutOfRange());
  EXPECT_EQ(quota.AdmitTenant("b", 0.5, 0).ValueOrDie(), 0.5);
  EXPECT_TRUE(quota.AdmitTenant("c", 0.1, 0).status().IsOutOfRange());
  quota.ReleaseTenant("a");
  EXPECT_EQ(quota.AdmitTenant("c", 0.1, 0).ValueOrDie(), 0.1);
  // Weight <= 0 selects the default; out-of-domain weights are invalid.
  EXPECT_EQ(quota.AdmitTenant("d", 0.0, 0).ValueOrDie(), 0.25);
  EXPECT_TRUE(quota.AdmitTenant("e", 1.5, 0).status().IsInvalidArgument());
}

TEST(QuotaAllocatorTest, ByteWatermarkGatesAdmission) {
  QuotaAllocator quota(1000, 0.9, 0.25);
  // 950 used > 900 watermark: no new tenants, no new queries.
  EXPECT_TRUE(quota.AdmitTenant("a", 0.1, 950).status().IsOutOfRange());
  EXPECT_TRUE(quota.AdmitQuery(950).IsOutOfRange());
  EXPECT_TRUE(quota.AdmitQuery(899).ok());
  // Budget 0 disables byte budgeting entirely.
  QuotaAllocator unbounded(0, 0.9, 0.25);
  EXPECT_TRUE(unbounded.AdmitQuery(1u << 30).ok());
  EXPECT_EQ(unbounded.QuotaBytes(0.5), 0u);
}

// ---------------------------------------------------------------------------
// Checkpoint namespace path safety
// ---------------------------------------------------------------------------

TEST(PathSafetyTest, SafeComponentsOnly) {
  EXPECT_TRUE(ckpt::IsSafePathComponent("alice"));
  EXPECT_TRUE(ckpt::IsSafePathComponent("Tenant_01.prod-eu"));
  EXPECT_FALSE(ckpt::IsSafePathComponent(""));
  EXPECT_FALSE(ckpt::IsSafePathComponent(".hidden"));
  EXPECT_FALSE(ckpt::IsSafePathComponent(".."));
  EXPECT_FALSE(ckpt::IsSafePathComponent("a/b"));
  EXPECT_FALSE(ckpt::IsSafePathComponent("a b"));
  EXPECT_FALSE(ckpt::IsSafePathComponent(std::string(65, 'a')));
  EXPECT_TRUE(ckpt::JoinNamespace("/root", "alice").ok());
  EXPECT_FALSE(ckpt::JoinNamespace("/root", "../alice").ok());
}

// ---------------------------------------------------------------------------
// TenantSession: exactly-once recovery at the session level
// ---------------------------------------------------------------------------

constexpr const char* kQueryText =
    "PATTERN SEQ(req a, req b) WHERE a.loc = b.loc WITHIN 5 min";

TenantSession::Config MakeConfig(const std::string& dir) {
  TenantSession::Config config;
  config.tenant = "alice";
  config.root = dir + "/alice";
  config.checkpoint_interval_events = 0;  // explicit checkpoints only
  return config;
}

Status ApplyBikeSchema(TenantSession& session) {
  CEP_RETURN_NOT_OK(
      session.ApplySchemaCommand({"req", "loc:int", "uid:int"}));
  CEP_RETURN_NOT_OK(
      session.ApplySchemaCommand({"avail", "loc:int", "bid:int"}));
  return session.ApplySchemaCommand(
      {"unlock", "loc:int", "uid:int", "bid:int"});
}

std::vector<std::string> MakeLines(int n) {
  std::vector<std::string> lines;
  for (int i = 1; i <= n; ++i) {
    lines.push_back("req," + std::to_string(i * 1000) + "," +
                    std::to_string(i % 3) + "," + std::to_string(i));
  }
  return lines;
}

TEST(TenantSessionTest, RecoverReplaysWalTailToExactEquality) {
  const std::string ref_dir = TestDir("tenant_recover_ref");
  const std::string crash_dir = TestDir("tenant_recover_crash");
  const auto lines = MakeLines(10);

  // Reference: one uninterrupted session over all 10 events.
  std::string want_stats;
  {
    auto session = TenantSession::Create(MakeConfig(ref_dir)).ValueOrDie();
    ASSERT_TRUE(ApplyBikeSchema(*session).ok());
    ASSERT_TRUE(session->AddQuery("q", "", kQueryText).ok());
    for (const auto& line : lines) ASSERT_TRUE(session->IngestLine(line).ok());
    want_stats = session->StatsText();
  }

  // Crash scenario: snapshot at 5, two more WAL-only events, "crash"
  // (destructor, no further checkpoint), recover, finish the stream.
  const auto config = MakeConfig(crash_dir);
  {
    auto session = TenantSession::Create(config).ValueOrDie();
    ASSERT_TRUE(ApplyBikeSchema(*session).ok());
    ASSERT_TRUE(session->AddQuery("q", "", kQueryText).ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(session->IngestLine(lines[i]).ok());
    }
    ASSERT_TRUE(session->Checkpoint(/*synchronous=*/true).ok());
    ASSERT_TRUE(session->IngestLine(lines[5]).ok());
    ASSERT_TRUE(session->IngestLine(lines[6]).ok());
  }
  auto recovered = TenantSession::Recover(config).ValueOrDie();
  EXPECT_EQ(recovered->ingested(), 7u);
  for (int i = 7; i < 10; ++i) {
    ASSERT_TRUE(recovered->IngestLine(lines[i]).ok());
  }
  EXPECT_EQ(recovered->StatsText(), want_stats);
}

TEST(TenantSessionTest, AddQueryIsIdempotentForIdenticalDefinitions) {
  const std::string dir = TestDir("tenant_idempotent");
  auto session = TenantSession::Create(MakeConfig(dir)).ValueOrDie();
  ASSERT_TRUE(ApplyBikeSchema(*session).ok());
  ASSERT_TRUE(session->AddQuery("q", "theta=50", kQueryText).ok());
  EXPECT_TRUE(session->AddQuery("q", "theta=50", kQueryText).ok());
  EXPECT_EQ(session->num_queries(), 1u);
  EXPECT_TRUE(session->AddQuery("q", "theta=80", kQueryText)
                  .IsAlreadyExists());
}

TEST(TenantSessionTest, LateBornQueryOnlySeesPostBirthEvents) {
  const std::string dir = TestDir("tenant_birth");
  const auto lines = MakeLines(6);
  const auto config = MakeConfig(dir);
  {
    auto session = TenantSession::Create(config).ValueOrDie();
    ASSERT_TRUE(ApplyBikeSchema(*session).ok());
    ASSERT_TRUE(session->AddQuery("early", "", kQueryText).ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(session->IngestLine(lines[i]).ok());
    }
    ASSERT_TRUE(session->AddQuery("late", "", kQueryText).ok());
    for (int i = 3; i < 6; ++i) {
      ASSERT_TRUE(session->IngestLine(lines[i]).ok());
    }
    EXPECT_EQ(session->FindEngine("early")->metrics().events_processed, 6u);
    EXPECT_EQ(session->FindEngine("late")->metrics().events_processed, 3u);
  }
  // Recovery has no snapshot at all: both queries replay from their birth
  // offsets — "late" must not see the three events that predate it.
  auto recovered = TenantSession::Recover(config).ValueOrDie();
  EXPECT_EQ(recovered->FindEngine("early")->metrics().events_processed, 6u);
  EXPECT_EQ(recovered->FindEngine("late")->metrics().events_processed, 3u);
}

TEST(TenantSessionTest, ParseFailuresQuarantineWithoutTouchingTheWal) {
  const std::string dir = TestDir("tenant_quarantine");
  auto session = TenantSession::Create(MakeConfig(dir)).ValueOrDie();
  ASSERT_TRUE(ApplyBikeSchema(*session).ok());
  ASSERT_TRUE(session->AddQuery("q", "", kQueryText).ok());
  EXPECT_FALSE(session->IngestLine("not,a,valid,record").ok());
  EXPECT_FALSE(session->IngestLine("req,embedded\nnewline,0,0").ok());
  EXPECT_EQ(session->quarantined(), 2u);
  EXPECT_EQ(session->ingested(), 0u);
  ASSERT_TRUE(session->IngestLine("req,1000,1,1").ok());
  EXPECT_EQ(session->ingested(), 1u);
}

TEST(TenantSessionTest, MetricsExportCarriesQualityAndDegradationLabels) {
  const std::string dir = TestDir("tenant_quality_metrics");
  auto config = MakeConfig(dir);
  config.quota_bytes = 1 << 20;  // enables the degradation ladder
  auto session = TenantSession::Create(config).ValueOrDie();
  ASSERT_TRUE(ApplyBikeSchema(*session).ok());
  ASSERT_TRUE(session->AddQuery("plain", "", kQueryText).ok());
  ASSERT_TRUE(
      session->AddQuery("watched", "shadow=1 calibration=1 slo=0.01",
                        kQueryText)
          .ok());
  for (const auto& line : MakeLines(20)) {
    ASSERT_TRUE(session->IngestLine(line).ok());
  }

  obs::Registry registry;
  session->ExportMetrics(&registry);
  const std::string prom = registry.ToPrometheusText();
  // Quality series carry the {tenant, query} labels of the engine that
  // produced them, and only quality-enabled queries emit them.
  EXPECT_NE(
      prom.find(
          "cep_shadow_spans_sampled_total{query=\"watched\",tenant=\"alice\"}"),
      std::string::npos);
  EXPECT_NE(
      prom.find("cep_slo_events_total{query=\"watched\",tenant=\"alice\"}"),
      std::string::npos);
  EXPECT_NE(prom.find("cep_calibration_outcomes_total{query=\"watched\","
                      "tenant=\"alice\"}"),
            std::string::npos);
  EXPECT_EQ(
      prom.find(
          "cep_shadow_spans_sampled_total{query=\"plain\",tenant=\"alice\"}"),
      std::string::npos);
  // The degradation ladder gauge is per query regardless of quality config.
  EXPECT_NE(
      prom.find("cep_degradation_level{query=\"plain\",tenant=\"alice\"}"),
      std::string::npos);
  EXPECT_NE(
      prom.find("cep_degradation_level{query=\"watched\",tenant=\"alice\"}"),
      std::string::npos);
  EXPECT_NE(prom.find("cep_tenant_run_bytes{tenant=\"alice\"}"),
            std::string::npos);

  // !stats surfaces the quality JSON only for quality-enabled queries.
  const std::string stats = session->StatsText();
  EXPECT_NE(stats.find("quality=watched"), std::string::npos);
  EXPECT_EQ(stats.find("quality=plain"), std::string::npos);
}

TEST(ParseKvSpecTest, RejectsDuplicatesAndMalformedTokens) {
  EXPECT_EQ(service::ParseKvSpec("a=1 b=2").ValueOrDie().size(), 2u);
  EXPECT_TRUE(service::ParseKvSpec("").ValueOrDie().empty());
  EXPECT_FALSE(service::ParseKvSpec("a=1 a=2").ok());
  EXPECT_FALSE(service::ParseKvSpec("novalue").ok());
  EXPECT_FALSE(service::ParseKvSpec("=1").ok());
}

TEST(MakeEngineOptionsFromSpecTest, EnforcesServiceInvariants) {
  const auto kv = service::ParseKvSpec("theta=80 threads=3").ValueOrDie();
  const auto options =
      service::MakeEngineOptionsFromSpec(kv, /*default_theta=*/50,
                                         /*quota_bytes=*/4096)
          .ValueOrDie();
  EXPECT_EQ(options.latency_mode, LatencyMode::kVirtualCost);
  EXPECT_TRUE(options.collect_matches);
  EXPECT_EQ(options.latency_threshold_micros, 80.0);
  EXPECT_EQ(options.parallel.threads, 3u);
  EXPECT_TRUE(options.degradation.enabled);
  EXPECT_EQ(options.degradation.run_bytes_budget, 4096u);
  // Tenant default θ applies when the spec names none.
  const auto defaulted =
      service::MakeEngineOptionsFromSpec(service::ParseKvSpec("").ValueOrDie(),
                                         50, 0)
          .ValueOrDie();
  EXPECT_EQ(defaulted.latency_threshold_micros, 50.0);
  EXPECT_FALSE(defaulted.degradation.enabled);
  EXPECT_FALSE(
      service::MakeEngineOptionsFromSpec(
          service::ParseKvSpec("selection=7").ValueOrDie(), 0, 0)
          .ok());
}

}  // namespace
}  // namespace cep
