// Differential property tests: the NFA engine against an independent
// brute-force oracle (tests/oracle.h) on randomised micro-streams, across a
// panel of queries covering single variables, Kleene closure with take/exit
// predicates, [i-1] references, COUNT gates, and negation.

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "common/rng.h"
#include "engine/engine.h"
#include "oracle.h"
#include "test_util.h"

namespace cep {
namespace {

using testing_util::BikeSchema;
using testing_util::OracleMatchFingerprints;

constexpr const char* kOracleQueries[] = {
    // 0: plain sequence with an equi-predicate
    "PATTERN SEQ(req a, unlock c) WHERE c.uid = a.uid WITHIN 5 min",
    // 1: three-variable sequence with arithmetic predicate
    "PATTERN SEQ(req a, avail m, unlock c) "
    "WHERE m.loc >= a.loc, diff(c.loc, a.loc) < 20 WITHIN 5 min",
    // 2: Kleene with per-take predicate and COUNT exit gate
    "PATTERN SEQ(req a, avail+ b[], unlock c) "
    "WHERE diff(b[i].loc, a.loc) < 10, COUNT(b[]) > 1, c.uid = a.uid "
    "WITHIN 5 min",
    // 3: Kleene with [i-1] monotonicity and trailing single variable
    "PATTERN SEQ(req a, avail+ b[], unlock c) "
    "WHERE b[i].loc > b[i-1].loc, b[first].loc >= a.loc WITHIN 5 min",
    // 4: negation with a condition
    "PATTERN SEQ(req a, NOT avail x, unlock c) "
    "WHERE x.loc = a.loc, c.uid = a.uid WITHIN 5 min",
    // 5: trailing Kleene (accepting state with self loop)
    "PATTERN SEQ(req a, avail+ b[]) "
    "WHERE diff(b[i].loc, a.loc) < 10, COUNT(b[]) > 1 WITHIN 5 min",
    // 6: negation between later variables, plus double negation risk of
    //    same-type kill/take interplay (avail is both negated and bound)
    "PATTERN SEQ(req a, NOT unlock x, avail m) "
    "WHERE x.uid = a.uid WITHIN 5 min",
    // 7: trailing negation (deferred emission at window close / Flush)
    "PATTERN SEQ(req a, avail m, NOT unlock x) "
    "WHERE x.uid = a.uid, m.loc = a.loc WITHIN 5 min",
    // 8: Kleene aggregate gating the exit
    "PATTERN SEQ(req a, avail+ b[], unlock c) "
    "WHERE diff(b[i].loc, a.loc) < 10, SUM(b[].loc) > 30, c.uid = a.uid "
    "WITHIN 5 min",
};

std::vector<EventPtr> MicroStream(BikeSchema* fixture, uint64_t seed,
                                  int n) {
  Rng rng(seed);
  std::vector<EventPtr> events;
  Timestamp ts = 0;
  for (int i = 0; i < n; ++i) {
    ts += 1 + rng.NextBounded(40 * kSecond);
    const auto loc = static_cast<int64_t>(rng.NextBounded(25));
    const auto uid = static_cast<int64_t>(rng.NextBounded(4));
    switch (rng.NextBounded(3)) {
      case 0:
        events.push_back(fixture->Req(ts, loc, uid));
        break;
      case 1:
        events.push_back(fixture->Avail(
            ts, loc, static_cast<int64_t>(rng.NextBounded(50))));
        break;
      default:
        events.push_back(fixture->Unlock(ts, loc, uid, 1));
        break;
    }
  }
  return events;
}

class OracleProperty : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  BikeSchema fixture_;
};

TEST_P(OracleProperty, EngineMatchesBruteForce) {
  const auto [query_idx, seed] = GetParam();
  NfaPtr nfa = fixture_.Compile(kOracleQueries[query_idx]);
  ASSERT_NE(nfa, nullptr);
  const auto events = MicroStream(&fixture_, 500 + seed * 31, 14);

  auto oracle = OracleMatchFingerprints(*nfa, events);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  std::vector<uint64_t> expected = oracle.MoveValueUnsafe();

  Engine engine(nfa, EngineOptions{});
  for (const auto& e : events) CEP_ASSERT_OK(engine.ProcessEvent(e));
  CEP_ASSERT_OK(engine.Flush());
  std::vector<uint64_t> actual;
  for (const auto& m : engine.matches()) actual.push_back(m.fingerprint);

  std::sort(expected.begin(), expected.end());
  std::sort(actual.begin(), actual.end());
  EXPECT_EQ(actual, expected)
      << "query: " << kOracleQueries[query_idx] << "\n"
      << "engine found " << actual.size() << " matches, oracle "
      << expected.size();
}

INSTANTIATE_TEST_SUITE_P(
    QueriesAndSeeds, OracleProperty,
    ::testing::Combine(::testing::Range(0, 9),
                       ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return "q" + std::to_string(std::get<0>(info.param)) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

/// Longer streams for the cheap queries only (no Kleene blow-up).
class OracleLongStreamProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  BikeSchema fixture_;
};

TEST_P(OracleLongStreamProperty, EngineMatchesBruteForce) {
  const auto [query_idx, seed] = GetParam();
  NfaPtr nfa = fixture_.Compile(kOracleQueries[query_idx]);
  ASSERT_NE(nfa, nullptr);
  const auto events = MicroStream(&fixture_, 900 + seed * 17, 40);
  auto oracle = OracleMatchFingerprints(*nfa, events);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  std::vector<uint64_t> expected = oracle.MoveValueUnsafe();
  Engine engine(nfa, EngineOptions{});
  for (const auto& e : events) CEP_ASSERT_OK(engine.ProcessEvent(e));
  CEP_ASSERT_OK(engine.Flush());
  std::vector<uint64_t> actual;
  for (const auto& m : engine.matches()) actual.push_back(m.fingerprint);
  std::sort(expected.begin(), expected.end());
  std::sort(actual.begin(), actual.end());
  EXPECT_EQ(actual, expected);
}

INSTANTIATE_TEST_SUITE_P(
    NonKleeneQueries, OracleLongStreamProperty,
    ::testing::Combine(::testing::Values(0, 1, 4, 6, 7),
                       ::testing::Values(1, 2, 3)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return "q" + std::to_string(std::get<0>(info.param)) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace cep
