// Edge-case tests for the µ(t) latency monitors (engine/latency_monitor.h):
// zero-cost events, monotonic-clock regressions in the queueing simulation,
// and the engine's strict µ(t) > θ overload comparison at exactly µ(t) = θ.

#include <gtest/gtest.h>

#include <vector>

#include "engine/engine.h"
#include "engine/latency_monitor.h"
#include "shedding/random_shedder.h"
#include "test_util.h"

namespace cep {
namespace {

using testing_util::BikeSchema;

// --- zero-cost events -------------------------------------------------------

TEST(LatencyMonitorTest, ZeroCostEventsKeepEstimateAtZero) {
  WallClockLatencyMonitor wall(8);
  VirtualCostLatencyMonitor virt(8, /*ns_per_op=*/100.0);
  QueueingLatencyMonitor queue(8, /*ns_per_op=*/100.0,
                               /*stream_micros_per_arrival_micro=*/1.0);
  for (int i = 0; i < 20; ++i) {
    wall.Record(i, 0.0, 0);
    virt.Record(i, 0.0, 0);
    queue.Record(i, 0.0, 0);
  }
  EXPECT_EQ(wall.CurrentLatencyMicros(), 0.0);
  EXPECT_EQ(virt.CurrentLatencyMicros(), 0.0);
  // Zero service time and strictly advancing arrivals: the queue never
  // builds, so the simulated latency is exactly zero too.
  EXPECT_EQ(queue.CurrentLatencyMicros(), 0.0);
}

TEST(LatencyMonitorTest, ZeroCostEventsDilutePriorLoad) {
  VirtualCostLatencyMonitor virt(4, /*ns_per_op=*/1000.0);
  virt.Record(0, 0.0, 8);  // 8 µs
  EXPECT_DOUBLE_EQ(virt.CurrentLatencyMicros(), 8.0);
  virt.Record(1, 0.0, 0);
  EXPECT_DOUBLE_EQ(virt.CurrentLatencyMicros(), 4.0);
  // Rolling out of the window removes the expensive sample entirely.
  for (int i = 0; i < 4; ++i) virt.Record(2 + i, 0.0, 0);
  EXPECT_EQ(virt.CurrentLatencyMicros(), 0.0);
}

// --- monotonic-clock regressions -------------------------------------------

TEST(LatencyMonitorTest, QueueingSurvivesBackwardsTimestamps) {
  QueueingLatencyMonitor queue(8, /*ns_per_op=*/1000.0,
                               /*stream_micros_per_arrival_micro=*/1.0);
  queue.Record(1000, 0.0, 500);  // arrival 1000, service 500 µs
  const double busy_after_first = queue.busy_until_micros();
  EXPECT_DOUBLE_EQ(busy_after_first, 1500.0);
  // A timestamp regression (duplicate delivery, clock skew between sources)
  // must not rewind the server: the late event queues behind the work in
  // progress and its latency includes the wait.
  queue.Record(200, 0.0, 100);
  EXPECT_GE(queue.busy_until_micros(), busy_after_first);
  EXPECT_DOUBLE_EQ(queue.busy_until_micros(), 1600.0);
  // Latency of the regressed event: finished at 1600, "arrived" at 200.
  EXPECT_DOUBLE_EQ(queue.CurrentLatencyMicros(), (500.0 + 1400.0) / 2.0);
  // µ(t) never goes negative no matter how the clock jumps.
  queue.Record(0, 0.0, 0);
  EXPECT_GT(queue.CurrentLatencyMicros(), 0.0);
}

TEST(LatencyMonitorTest, QueueBacklogPersistsAcrossReset) {
  QueueingLatencyMonitor queue(4, /*ns_per_op=*/1000.0,
                               /*stream_micros_per_arrival_micro=*/1.0);
  queue.Record(0, 0.0, 2000);  // 2000 µs of service from t=0
  EXPECT_DOUBLE_EQ(queue.busy_until_micros(), 2000.0);
  queue.Reset();
  // Reset starts a fresh measurement window but cannot decree the backlog
  // away: the simulated server is still busy.
  EXPECT_EQ(queue.CurrentLatencyMicros(), 0.0);
  EXPECT_DOUBLE_EQ(queue.busy_until_micros(), 2000.0);
  queue.Record(100, 0.0, 0);
  EXPECT_DOUBLE_EQ(queue.CurrentLatencyMicros(), 1900.0);
}

// --- threshold hysteresis at exactly µ(t) = θ -------------------------------

/// A stream of req events against SEQ(req, unlock) gives every event the
/// identical virtual cost (one initial op + one spawn-edge evaluation), so
/// µ(t) settles at an exactly representable constant we can aim θ at.
std::vector<EventPtr> ConstantCostEvents(BikeSchema* fixture, int n) {
  std::vector<EventPtr> events;
  events.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    events.push_back(fixture->Req(kMinute + i * kSecond, 1, 100 + i));
  }
  return events;
}

EngineOptions ConstantCostOptions(double theta) {
  EngineOptions options;
  options.latency_mode = LatencyMode::kVirtualCost;
  options.latency_threshold_micros = theta;
  options.latency_window_events = 8;
  options.shed_cooldown_events = 1;
  return options;
}

TEST(LatencyMonitorTest, NoSheddingAtExactlyTheta) {
  BikeSchema fixture;
  const std::vector<EventPtr> events = ConstantCostEvents(&fixture, 64);
  const char* query =
      "PATTERN SEQ(req a, unlock c) WHERE c.uid = a.uid WITHIN 30 min";

  // Probe the µ(t) trajectory with shedding disabled (θ = 0). The mean can
  // wobble by an ulp while the sample window warms up, so aim θ at the
  // maximum the trajectory ever reaches.
  Engine probe(fixture.Compile(query), ConstantCostOptions(0.0),
               std::make_unique<RandomShedder>(1));
  double mu = 0.0;
  for (const auto& event : events) {
    CEP_ASSERT_OK(probe.ProcessEvent(event));
    mu = std::max(mu, probe.CurrentLatencyMicros());
  }
  ASSERT_GT(mu, 0.0);
  EXPECT_EQ(probe.metrics().shed_triggers, 0u);

  // θ = µ exactly: overload requires µ(t) > θ strictly, so the engine must
  // sit on the boundary forever without a single shed.
  Engine at_theta(fixture.Compile(query), ConstantCostOptions(mu),
                  std::make_unique<RandomShedder>(1));
  for (const auto& event : events) {
    CEP_ASSERT_OK(at_theta.ProcessEvent(event));
  }
  EXPECT_LE(at_theta.CurrentLatencyMicros(), mu);
  EXPECT_EQ(at_theta.metrics().shed_triggers, 0u);
  EXPECT_EQ(at_theta.metrics().runs_shed, 0u);

  // Any θ below µ crosses the boundary and sheds.
  Engine below(fixture.Compile(query), ConstantCostOptions(mu * 0.999),
               std::make_unique<RandomShedder>(1));
  for (const auto& event : events) {
    CEP_ASSERT_OK(below.ProcessEvent(event));
  }
  EXPECT_GT(below.metrics().shed_triggers, 0u);
  EXPECT_GT(below.metrics().runs_shed, 0u);
}

}  // namespace
}  // namespace cep
