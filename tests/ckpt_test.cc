// Checkpoint/restore subsystem tests: snapshot format validation and
// corruption taxonomy, checkpoint-directory recovery semantics, and the
// tentpole property — a restored engine replays byte-identically to the
// uninterrupted run, for every (threads, shards) configuration.

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "ckpt/manager.h"
#include "ckpt/snapshot.h"
#include "engine/engine.h"
#include "engine/multi.h"
#include "obs/audit.h"
#include "shedding/random_shedder.h"
#include "shedding/state_shedder.h"
#include "test_util.h"

namespace cep {
namespace {

using testing_util::BikeSchema;

std::string TestDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  ::mkdir(dir.c_str(), 0755);
  // Start empty so reruns do not see a previous invocation's snapshots.
  if (DIR* handle = ::opendir(dir.c_str())) {
    while (struct dirent* entry = ::readdir(handle)) {
      const std::string entry_name = entry->d_name;
      if (entry_name == "." || entry_name == "..") continue;
      ::unlink((dir + "/" + entry_name).c_str());
    }
    ::closedir(handle);
  }
  return dir;
}

// --- snapshot format ---------------------------------------------------------

TEST(SnapshotFormatTest, RoundTrip) {
  ckpt::SnapshotBuilder builder(/*stream_offset=*/42);
  builder.AddSection("alpha", "payload-a");
  builder.AddSection("beta", std::string("nul\0payload", 11));
  const std::string bytes = builder.Finish();

  CEP_ASSERT_OK_AND_ASSIGN(ckpt::SnapshotView view,
                           ckpt::ParseSnapshot(bytes));
  EXPECT_EQ(view.version, ckpt::kSnapshotVersion);
  EXPECT_EQ(view.stream_offset, 42u);
  ASSERT_EQ(view.sections.size(), 2u);
  EXPECT_EQ(view.sections[0].name, "alpha");
  EXPECT_EQ(view.sections[0].payload, "payload-a");
  EXPECT_EQ(view.sections[1].payload, std::string("nul\0payload", 11));
  ASSERT_NE(view.Find("beta"), nullptr);
  EXPECT_EQ(view.Find("gamma"), nullptr);
}

TEST(SnapshotFormatTest, FlippedPayloadByteIsDataLoss) {
  ckpt::SnapshotBuilder builder(7);
  builder.AddSection("alpha", "payload-a");
  std::string bytes = builder.Finish();
  bytes[bytes.size() / 2] ^= 0x40;
  const Result<ckpt::SnapshotView> view = ckpt::ParseSnapshot(bytes);
  ASSERT_FALSE(view.ok());
  EXPECT_TRUE(view.status().IsDataLoss()) << view.status().ToString();
}

TEST(SnapshotFormatTest, BadMagicIsParseError) {
  ckpt::SnapshotBuilder builder(7);
  builder.AddSection("alpha", "payload-a");
  std::string bytes = builder.Finish();
  bytes[0] = 'X';
  const Result<ckpt::SnapshotView> view = ckpt::ParseSnapshot(bytes);
  ASSERT_FALSE(view.ok());
  EXPECT_TRUE(view.status().IsParseError()) << view.status().ToString();
}

TEST(SnapshotFormatTest, EveryTruncationIsRejected) {
  ckpt::SnapshotBuilder builder(7);
  builder.AddSection("alpha", "payload-a");
  const std::string bytes = builder.Finish();
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    const Result<ckpt::SnapshotView> view =
        ckpt::ParseSnapshot(std::string_view(bytes).substr(0, cut));
    EXPECT_FALSE(view.ok()) << "truncated to " << cut << " bytes parsed";
  }
}

TEST(SnapshotFormatTest, EqualStateProducesIdenticalBytes) {
  ckpt::SnapshotBuilder a(9), b(9);
  a.AddSection("alpha", "payload");
  b.AddSection("alpha", "payload");
  EXPECT_EQ(a.Finish(), b.Finish());
}

TEST(SnapshotFileNameTest, RoundTripsAndRejectsStrangers) {
  const std::string name = ckpt::SnapshotFileName(12345);
  CEP_ASSERT_OK_AND_ASSIGN(uint64_t offset,
                           ckpt::ParseSnapshotFileName(name));
  EXPECT_EQ(offset, 12345u);
  EXPECT_FALSE(ckpt::ParseSnapshotFileName("ckpt-123.cep.tmp").ok());
  EXPECT_FALSE(ckpt::ParseSnapshotFileName("notes.txt").ok());
  EXPECT_FALSE(ckpt::ParseSnapshotFileName("ckpt-12x45.cep").ok());
}

// --- checkpoint directory recovery ------------------------------------------

std::string SmallSnapshot(uint64_t offset, const std::string& payload) {
  ckpt::SnapshotBuilder builder(offset);
  builder.AddSection("alpha", payload);
  return builder.Finish();
}

TEST(CheckpointManagerTest, FindLatestPicksNewestValidSnapshot) {
  const std::string dir = TestDir("ckpt_find_latest");
  {
    ckpt::CheckpointManager manager(dir, /*keep=*/0);
    CEP_ASSERT_OK(manager.WriteNow(SmallSnapshot(100, "a"), 100));
    CEP_ASSERT_OK(manager.WriteNow(SmallSnapshot(200, "b"), 200));
    EXPECT_EQ(manager.snapshots_written(), 2u);
  }
  CEP_ASSERT_OK_AND_ASSIGN(std::string latest,
                           ckpt::CheckpointManager::FindLatest(dir));
  EXPECT_NE(latest.find(ckpt::SnapshotFileName(200)), std::string::npos);
}

TEST(CheckpointManagerTest, TornTempFileIsIgnored) {
  const std::string dir = TestDir("ckpt_torn_temp");
  {
    ckpt::CheckpointManager manager(dir, 0);
    CEP_ASSERT_OK(manager.WriteNow(SmallSnapshot(100, "a"), 100));
  }
  // A crash mid-write leaves a half-written temp file at a later offset.
  std::ofstream torn(dir + "/" + ckpt::SnapshotFileName(300) +
                     ckpt::kSnapshotTempSuffix);
  torn << "half-written garbage";
  torn.close();
  CEP_ASSERT_OK_AND_ASSIGN(std::string latest,
                           ckpt::CheckpointManager::FindLatest(dir));
  EXPECT_NE(latest.find(ckpt::SnapshotFileName(100)), std::string::npos);
}

TEST(CheckpointManagerTest, CorruptNewestFallsBackToPrevious) {
  const std::string dir = TestDir("ckpt_corrupt_newest");
  {
    ckpt::CheckpointManager manager(dir, 0);
    CEP_ASSERT_OK(manager.WriteNow(SmallSnapshot(100, "a"), 100));
    CEP_ASSERT_OK(manager.WriteNow(SmallSnapshot(200, "b"), 200));
  }
  // Flip one byte in the newest snapshot; recovery must use the older one.
  const std::string newest = dir + "/" + ckpt::SnapshotFileName(200);
  CEP_ASSERT_OK_AND_ASSIGN(std::string bytes, ckpt::ReadFileBytes(newest));
  bytes[bytes.size() / 2] ^= 0x01;
  CEP_ASSERT_OK(ckpt::WriteFileAtomic(newest, bytes));
  CEP_ASSERT_OK_AND_ASSIGN(std::string latest,
                           ckpt::CheckpointManager::FindLatest(dir));
  EXPECT_NE(latest.find(ckpt::SnapshotFileName(100)), std::string::npos);
}

TEST(CheckpointManagerTest, PrunesToKeepCount) {
  const std::string dir = TestDir("ckpt_prune");
  ckpt::CheckpointManager manager(dir, /*keep=*/2);
  for (uint64_t offset = 100; offset <= 500; offset += 100) {
    CEP_ASSERT_OK(manager.WriteNow(SmallSnapshot(offset, "x"), offset));
  }
  EXPECT_FALSE(
      ckpt::ReadFileBytes(dir + "/" + ckpt::SnapshotFileName(300)).ok());
  EXPECT_TRUE(
      ckpt::ReadFileBytes(dir + "/" + ckpt::SnapshotFileName(400)).ok());
  EXPECT_TRUE(
      ckpt::ReadFileBytes(dir + "/" + ckpt::SnapshotFileName(500)).ok());
}

TEST(CheckpointManagerTest, AsyncSubmitIsDurableAfterFlush) {
  const std::string dir = TestDir("ckpt_async");
  ckpt::CheckpointManager manager(dir, 0);
  manager.SubmitAsync(SmallSnapshot(700, "async"), 700);
  CEP_ASSERT_OK(manager.Flush());
  CEP_ASSERT_OK_AND_ASSIGN(std::string latest,
                           ckpt::CheckpointManager::FindLatest(dir));
  EXPECT_NE(latest.find(ckpt::SnapshotFileName(700)), std::string::npos);
  EXPECT_EQ(manager.snapshots_written(), 1u);
}

// --- engine replay determinism ----------------------------------------------

constexpr const char* kKleeneQuery =
    "PATTERN SEQ(req a, avail+ b[], unlock c) WITHIN 30 min";

std::vector<EventPtr> MakeWorkload(BikeSchema& fixture, int n) {
  std::vector<EventPtr> events;
  Timestamp ts = kMinute;
  for (int i = 0; i < n; ++i) {
    ts += kSecond;
    const int64_t loc = i % 5;
    switch (i % 3) {
      case 0:
        events.push_back(fixture.Req(ts, loc, i % 17));
        break;
      case 1:
        events.push_back(fixture.Avail(ts, loc, i % 7));
        break;
      default:
        events.push_back(fixture.Unlock(ts, loc, i % 17, i % 7));
        break;
    }
  }
  return events;
}

EngineOptions CheckpointedOptions(size_t threads, size_t shards,
                                  bool with_quality = false) {
  EngineOptions options;
  options.collect_matches = true;
  options.max_runs = 96;  // deterministic overload trigger
  options.parallel.threads = threads;
  options.parallel.shards = shards;
  options.parallel.min_parallel_runs = 1;
  if (with_quality) {
    options.quality.shadow.sample_every = 1;
    // The Kleene query explodes without the primary's max_runs cap; a small
    // ghost cap makes overloaded spans abort (deterministically) instead of
    // burning minutes of unshed evaluation.
    options.quality.shadow.max_ghost_runs = 512;
    options.quality.calibration.enabled = true;
    options.quality.slo.enabled = true;
  }
  return options;
}

ShedderPtr MakeSbls(const SchemaRegistry& registry) {
  StateShedderOptions options;
  options.pm_hash.attributes = {{"req", "loc"}};
  options.time_slices = 4;
  options.scoring.weight_contribution = 2.0;
  return std::make_unique<StateShedder>(options, &registry);
}

/// Per-section fingerprint of a snapshot, so a determinism failure names the
/// diverging component instead of dumping megabytes of raw bytes.
std::string DescribeSections(const std::string& snapshot) {
  Result<ckpt::SnapshotView> view = ckpt::ParseSnapshot(snapshot);
  if (!view.ok()) return "unparseable: " + view.status().ToString();
  std::string out;
  for (const ckpt::SnapshotSection& section : view.ValueOrDie().sections) {
    out += section.name + ":" + std::to_string(section.payload.size()) +
           ":" + std::to_string(section.digest) + "\n";
  }
  return out;
}

struct RunOutcome {
  std::string final_snapshot;
  std::string metrics;
  std::string audit;
  std::string quality;
  std::vector<std::string> matches;
};

RunOutcome Drive(Engine& engine, obs::ShedAuditLog& audit,
                 const std::vector<EventPtr>& events, size_t from) {
  for (size_t i = from; i < events.size(); ++i) {
    CEP_EXPECT_OK(engine.OfferEvent(events[i]));
  }
  RunOutcome outcome;
  Result<std::string> snapshot = engine.SerializeSnapshot();
  CEP_EXPECT_OK(snapshot.status());
  if (snapshot.ok()) outcome.final_snapshot = snapshot.MoveValueUnsafe();
  outcome.metrics = engine.metrics().ToString();
  outcome.audit = audit.ToJsonl();
  outcome.quality = engine.ExportQualityJson();
  for (const Match& match : engine.matches()) {
    outcome.matches.push_back(match.ToString(engine.nfa().query()));
  }
  return outcome;
}

TEST(EngineReplayTest, RestoredRunIsByteIdenticalAcrossThreadsAndShards) {
  BikeSchema fixture;
  const std::vector<EventPtr> events = MakeWorkload(fixture, 300);
  const size_t half = events.size() / 2;

  for (const size_t threads : {size_t{1}, size_t{4}}) {
    for (const size_t shards : {size_t{1}, size_t{8}}) {
    for (const bool with_quality : {false, true}) {
      SCOPED_TRACE(testing::Message()
                   << "threads=" << threads << " shards=" << shards
                   << " quality=" << with_quality);
      const NfaPtr nfa = fixture.Compile(kKleeneQuery);
      ASSERT_NE(nfa, nullptr);
      const EngineOptions options =
          CheckpointedOptions(threads, shards, with_quality);

      // Uninterrupted baseline.
      obs::ShedAuditLog baseline_audit;
      Engine baseline(nfa, options, MakeSbls(fixture.registry));
      baseline.AttachAuditLog(&baseline_audit);
      const RunOutcome expected = Drive(baseline, baseline_audit, events, 0);
      ASSERT_FALSE(expected.final_snapshot.empty());
      EXPECT_GT(baseline.metrics().shed_triggers, 0u)
          << "workload never sheds; the test is not exercising SBLS state";

      // Interrupted at the midpoint: snapshot, then resume in a fresh
      // engine and finish the stream.
      obs::ShedAuditLog first_audit;
      Engine first_half(nfa, options, MakeSbls(fixture.registry));
      first_half.AttachAuditLog(&first_audit);
      for (size_t i = 0; i < half; ++i) {
        CEP_ASSERT_OK(first_half.OfferEvent(events[i]));
      }
      CEP_ASSERT_OK_AND_ASSIGN(std::string mid_snapshot,
                               first_half.SerializeSnapshot());

      obs::ShedAuditLog resumed_audit;
      Engine resumed(nfa, options, MakeSbls(fixture.registry));
      resumed.AttachAuditLog(&resumed_audit);
      CEP_ASSERT_OK(resumed.RestoreFromSnapshot(mid_snapshot));
      EXPECT_EQ(resumed.stream_offset(), half);
      const RunOutcome actual = Drive(resumed, resumed_audit, events, half);

      EXPECT_EQ(actual.matches, expected.matches);
      EXPECT_EQ(actual.metrics, expected.metrics);
      EXPECT_EQ(actual.audit, expected.audit);
      EXPECT_EQ(actual.quality, expected.quality);
      EXPECT_EQ(DescribeSections(actual.final_snapshot),
                DescribeSections(expected.final_snapshot))
          << "restored engine state diverged from the uninterrupted run";
      EXPECT_TRUE(actual.final_snapshot == expected.final_snapshot);
    }
    }
  }
}

TEST(EngineReplayTest, SnapshotIsIndependentOfThreadCount) {
  // The snapshot written by a 4-thread engine must restore into a 1-thread
  // engine (and vice versa): parallelism is execution strategy, not state.
  BikeSchema fixture;
  const std::vector<EventPtr> events = MakeWorkload(fixture, 200);
  const NfaPtr nfa = fixture.Compile(kKleeneQuery);
  ASSERT_NE(nfa, nullptr);

  Engine parallel_engine(nfa, CheckpointedOptions(4, 8),
                         MakeSbls(fixture.registry));
  for (const EventPtr& event : events) {
    CEP_ASSERT_OK(parallel_engine.OfferEvent(event));
  }
  CEP_ASSERT_OK_AND_ASSIGN(std::string parallel_snapshot,
                           parallel_engine.SerializeSnapshot());

  Engine serial_engine(nfa, CheckpointedOptions(1, 1),
                       MakeSbls(fixture.registry));
  for (const EventPtr& event : events) {
    CEP_ASSERT_OK(serial_engine.OfferEvent(event));
  }
  CEP_ASSERT_OK_AND_ASSIGN(std::string serial_snapshot,
                           serial_engine.SerializeSnapshot());
  EXPECT_EQ(parallel_snapshot, serial_snapshot);

  Engine restored(nfa, CheckpointedOptions(1, 1), MakeSbls(fixture.registry));
  CEP_ASSERT_OK(restored.RestoreFromSnapshot(parallel_snapshot));
  EXPECT_EQ(restored.num_runs(), parallel_engine.num_runs());
  EXPECT_EQ(restored.matches().size(), parallel_engine.matches().size());
}

TEST(EngineReplayTest, RestoreIntoDifferentShedderIsConfigMismatch) {
  BikeSchema fixture;
  const std::vector<EventPtr> events = MakeWorkload(fixture, 60);
  const NfaPtr nfa = fixture.Compile(kKleeneQuery);
  ASSERT_NE(nfa, nullptr);

  Engine sbls_engine(nfa, CheckpointedOptions(1, 1),
                     MakeSbls(fixture.registry));
  for (const EventPtr& event : events) {
    CEP_ASSERT_OK(sbls_engine.OfferEvent(event));
  }
  CEP_ASSERT_OK_AND_ASSIGN(std::string snapshot,
                           sbls_engine.SerializeSnapshot());

  // The shedder kind is encoded in the section name ("shedder.SBLS"), so a
  // restore into an RBLS engine fails loudly instead of silently mixing
  // learned state across strategies.
  Engine rbls_engine(nfa, CheckpointedOptions(1, 1),
                     std::make_unique<RandomShedder>(1));
  const Status status = rbls_engine.RestoreFromSnapshot(snapshot);
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsNotFound()) << status.ToString();
}

TEST(EngineReplayTest, CheckpointDirectoryEndToEnd) {
  const std::string dir = TestDir("ckpt_engine_dir");
  BikeSchema fixture;
  const std::vector<EventPtr> events = MakeWorkload(fixture, 250);
  const NfaPtr nfa = fixture.Compile(kKleeneQuery);
  ASSERT_NE(nfa, nullptr);

  EngineOptions options = CheckpointedOptions(1, 1);
  options.checkpoint.directory = dir;
  options.checkpoint.interval_events = 50;
  options.checkpoint.synchronous = true;
  {
    Engine engine(nfa, options, MakeSbls(fixture.registry));
    for (const EventPtr& event : events) {
      CEP_ASSERT_OK(engine.OfferEvent(event));
    }
    CEP_ASSERT_OK(engine.FlushCheckpoints());
    EXPECT_EQ(engine.checkpoints_written(), 5u);
  }

  // Restore from the directory (newest valid snapshot = offset 250) and
  // compare against a cold run over the same events.
  EngineOptions restore_options = CheckpointedOptions(1, 1);
  Engine restored(nfa, restore_options, MakeSbls(fixture.registry));
  CEP_ASSERT_OK(restored.RestoreFromFile(dir));
  EXPECT_EQ(restored.stream_offset(), 250u);

  Engine cold(nfa, restore_options, MakeSbls(fixture.registry));
  for (const EventPtr& event : events) {
    CEP_ASSERT_OK(cold.OfferEvent(event));
  }
  CEP_ASSERT_OK_AND_ASSIGN(std::string cold_snapshot,
                           cold.SerializeSnapshot());
  CEP_ASSERT_OK_AND_ASSIGN(std::string restored_snapshot,
                           restored.SerializeSnapshot());
  EXPECT_EQ(restored_snapshot, cold_snapshot);
}

TEST(MultiEngineCheckpointTest, RoundTripAcrossQueries) {
  BikeSchema fixture;
  const std::vector<EventPtr> events = MakeWorkload(fixture, 150);
  const size_t half = events.size() / 2;
  const NfaPtr nfa_a = fixture.Compile(kKleeneQuery);
  const NfaPtr nfa_b = fixture.Compile(
      "PATTERN SEQ(req a, unlock c) WHERE c.uid = a.uid WITHIN 30 min");
  ASSERT_NE(nfa_a, nullptr);
  ASSERT_NE(nfa_b, nullptr);

  auto build = [&](MultiEngine& multi) {
    multi.AddQuery(nfa_a, CheckpointedOptions(1, 1),
                   MakeSbls(fixture.registry), "kleene");
    multi.AddQuery(nfa_b, CheckpointedOptions(1, 1),
                   std::make_unique<RandomShedder>(11), "pair");
  };

  MultiEngine baseline;
  build(baseline);
  for (const EventPtr& event : events) {
    CEP_ASSERT_OK(baseline.OfferEvent(event));
  }
  CEP_ASSERT_OK_AND_ASSIGN(std::string expected,
                           baseline.SerializeSnapshot());

  MultiEngine interrupted;
  build(interrupted);
  for (size_t i = 0; i < half; ++i) {
    CEP_ASSERT_OK(interrupted.OfferEvent(events[i]));
  }
  CEP_ASSERT_OK_AND_ASSIGN(std::string mid, interrupted.SerializeSnapshot());

  MultiEngine resumed;
  build(resumed);
  CEP_ASSERT_OK(resumed.RestoreFromSnapshot(mid));
  EXPECT_EQ(resumed.stream_offset(), half);
  for (size_t i = half; i < events.size(); ++i) {
    CEP_ASSERT_OK(resumed.OfferEvent(events[i]));
  }
  CEP_ASSERT_OK_AND_ASSIGN(std::string actual, resumed.SerializeSnapshot());
  EXPECT_EQ(actual, expected);

  // Query-count mismatch is a configuration error, not silent truncation.
  MultiEngine wrong_count;
  wrong_count.AddQuery(nfa_a, CheckpointedOptions(1, 1),
                       MakeSbls(fixture.registry), "kleene");
  const Status status = wrong_count.RestoreFromSnapshot(mid);
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsNotFound()) << status.ToString();
}

}  // namespace
}  // namespace cep
