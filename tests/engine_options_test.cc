#include <gtest/gtest.h>

#include "engine/options.h"

namespace cep {
namespace {

testing::AssertionResult RejectedMentioning(const EngineOptions& options,
                                            const std::string& needle) {
  const Result<EngineOptions> validated = options.Validated();
  if (validated.ok()) {
    return testing::AssertionFailure() << "Validated() accepted the options";
  }
  if (!validated.status().IsInvalidArgument()) {
    return testing::AssertionFailure()
           << "expected InvalidArgument, got "
           << validated.status().ToString();
  }
  if (validated.status().ToString().find(needle) == std::string::npos) {
    return testing::AssertionFailure()
           << "message '" << validated.status().ToString()
           << "' does not mention '" << needle << "'";
  }
  return testing::AssertionSuccess();
}

TEST(EngineOptionsValidatedTest, DefaultsAreValid) {
  EXPECT_TRUE(EngineOptions{}.Validated().ok());
}

TEST(EngineOptionsValidatedTest, ValidatedReturnsTheOptions) {
  EngineOptions options;
  options.max_runs = 1234;
  const Result<EngineOptions> validated = options.Validated();
  ASSERT_TRUE(validated.ok());
  EXPECT_EQ(validated.ValueOrDie().max_runs, 1234u);
}

TEST(EngineOptionsValidatedTest, RejectsZeroBatchSize) {
  EngineOptions options;
  options.batch_size = 0;
  EXPECT_TRUE(RejectedMentioning(options, "batch_size"));
}

TEST(EngineOptionsValidatedTest, RejectsZeroLatencyWindow) {
  EngineOptions options;
  options.latency_window_events = 0;
  EXPECT_TRUE(RejectedMentioning(options, "latency_window_events"));
}

TEST(EngineOptionsValidatedTest, RejectsNonPositiveVirtualCost) {
  EngineOptions options;
  options.latency_mode = LatencyMode::kVirtualCost;
  options.virtual_ns_per_op = 0.0;
  EXPECT_TRUE(RejectedMentioning(options, "virtual_ns_per_op"));
  // Irrelevant under wall-clock measurement: accepted.
  options.latency_mode = LatencyMode::kWallClock;
  EXPECT_TRUE(options.Validated().ok());
}

TEST(EngineOptionsValidatedTest, RejectsNonPositiveTimeCompression) {
  EngineOptions options;
  options.latency_mode = LatencyMode::kQueueSimulation;
  options.queue_time_compression = 0.0;
  EXPECT_TRUE(RejectedMentioning(options, "queue_time_compression"));
}

TEST(EngineOptionsValidatedTest, RejectsShedFractionOutOfRange) {
  EngineOptions options;
  options.shed_amount.fraction = 0.0;
  EXPECT_TRUE(RejectedMentioning(options, "shed_amount.fraction"));
  options.shed_amount.fraction = 1.5;
  EXPECT_TRUE(RejectedMentioning(options, "shed_amount.fraction"));
  options.shed_amount.fraction = 1.0;
  EXPECT_TRUE(options.Validated().ok());
}

TEST(EngineOptionsValidatedTest, RejectsAdaptiveMaxFractionOutOfRange) {
  EngineOptions options;
  options.shed_amount.mode = ShedAmountOptions::Mode::kAdaptive;
  options.shed_amount.max_fraction = 0.0;
  EXPECT_TRUE(RejectedMentioning(options, "max_fraction"));
  // Fixed-fraction mode never reads max_fraction: accepted.
  options.shed_amount.mode = ShedAmountOptions::Mode::kFixedFraction;
  EXPECT_TRUE(options.Validated().ok());
}

TEST(EngineOptionsValidatedTest, RejectsMoreShardsThanRunCap) {
  EngineOptions options;
  options.max_runs = 4;
  options.parallel.shards = 8;
  EXPECT_TRUE(RejectedMentioning(options, "shards"));
  // No cap: any shard count is fine.
  options.max_runs = 0;
  EXPECT_TRUE(options.Validated().ok());
}

TEST(EngineOptionsValidatedTest, RejectsNonIncreasingDegradationRatios) {
  EngineOptions options;
  options.degradation.enabled = true;
  options.degradation.shedding_enter_ratio = 2.0;
  options.degradation.emergency_enter_ratio = 2.0;  // not strictly above
  EXPECT_TRUE(RejectedMentioning(options, "strictly increasing"));
  // The same ratios are ignored while the ladder is disabled.
  options.degradation.enabled = false;
  EXPECT_TRUE(options.Validated().ok());
}

TEST(EngineOptionsValidatedTest, RejectsHysteresisOutOfRange) {
  EngineOptions options;
  options.degradation.enabled = true;
  options.degradation.hysteresis = 0.0;
  EXPECT_TRUE(RejectedMentioning(options, "hysteresis"));
  options.degradation.hysteresis = 1.25;
  EXPECT_TRUE(RejectedMentioning(options, "hysteresis"));
}

TEST(EngineOptionsValidatedTest, RejectsZeroCheckpointInterval) {
  EngineOptions options;
  options.checkpoint.directory = "/tmp/ckpts";
  options.checkpoint.interval_events = 0;
  EXPECT_TRUE(RejectedMentioning(options, "interval_events"));
  // Interval is irrelevant while checkpointing is disabled.
  options.checkpoint.directory.clear();
  EXPECT_TRUE(options.Validated().ok());
}

TEST(EngineOptionsValidatedTest, RejectsRestoreUnderFaultInjection) {
  EngineOptions options;
  options.checkpoint.restore_from = "/tmp/ckpts";
  options.checkpoint.fault_injection_active = true;
  EXPECT_TRUE(RejectedMentioning(options, "fault injection"));
  options.checkpoint.fault_injection_active = false;
  EXPECT_TRUE(options.Validated().ok());
}

}  // namespace
}  // namespace cep
