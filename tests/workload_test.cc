#include <gtest/gtest.h>

#include <unordered_map>

#include "test_util.h"
#include "workload/bikeshare.h"
#include "workload/burst.h"
#include "workload/google_trace.h"
#include "workload/queries.h"
#include "workload/stock.h"

namespace cep {
namespace {

TEST(BurstProfileTest, RateSwitchesDuringBursts) {
  BurstProfile profile;
  profile.base_rate = 10.0;
  profile.burst_multiplier = 5.0;
  profile.burst_period = 100;
  profile.burst_duration = 20;
  profile.phase = 0;
  EXPECT_DOUBLE_EQ(profile.RateAt(5), 50.0);
  EXPECT_DOUBLE_EQ(profile.RateAt(50), 10.0);
  EXPECT_DOUBLE_EQ(profile.RateAt(105), 50.0);  // periodic
  EXPECT_TRUE(profile.InBurst(5));
  EXPECT_FALSE(profile.InBurst(50));
}

TEST(BurstProfileTest, NoBurstsWhenUnconfigured) {
  BurstProfile profile;
  profile.base_rate = 3.0;
  EXPECT_DOUBLE_EQ(profile.RateAt(12345), 3.0);
  EXPECT_FALSE(profile.InBurst(12345));
}

TEST(ArrivalProcessTest, ArrivalsAreStrictlyIncreasing) {
  BurstProfile profile;
  profile.base_rate = 100.0;
  ArrivalProcess arrivals(profile, 3);
  Timestamp t = 0;
  for (int i = 0; i < 500; ++i) {
    const Timestamp next = arrivals.NextArrival(t);
    EXPECT_GT(next, t);
    t = next;
  }
}

TEST(ArrivalProcessTest, RateApproximatesProfile) {
  BurstProfile profile;
  profile.base_rate = 1000.0;  // 1000 events/sec
  ArrivalProcess arrivals(profile, 5);
  Timestamp t = 0;
  int count = 0;
  while (true) {
    t = arrivals.NextArrival(t);
    if (t > 10 * kSecond) break;
    ++count;
  }
  EXPECT_NEAR(count, 10000, 600);
}

TEST(ArrivalProcessTest, BurstsConcentrateArrivals) {
  BurstProfile profile;
  profile.base_rate = 100.0;
  profile.burst_multiplier = 10.0;
  profile.burst_period = 10 * kSecond;
  profile.burst_duration = 1 * kSecond;
  ArrivalProcess arrivals(profile, 7);
  Timestamp t = 0;
  int in_burst = 0, total = 0;
  while (true) {
    t = arrivals.NextArrival(t);
    if (t > 100 * kSecond) break;
    ++total;
    if (profile.InBurst(t)) ++in_burst;
  }
  // Bursts cover 10% of time but ~50% of events (10x rate).
  const double share = static_cast<double>(in_burst) / total;
  EXPECT_GT(share, 0.4);
  EXPECT_LT(share, 0.65);
}

class GoogleTraceTest : public ::testing::Test {
 protected:
  GoogleTraceOptions SmallOptions() {
    GoogleTraceOptions options;
    options.duration = 2 * kHour;
    options.jobs_per_hour = 200;
    options.seed = 99;
    return options;
  }

  SchemaRegistry registry_;
};

TEST_F(GoogleTraceTest, RegistersSixEventTypes) {
  CEP_ASSERT_OK(GoogleTraceGenerator::RegisterSchemas(&registry_));
  for (const char* name :
       {"submit", "schedule", "evict", "fail", "finish", "kill"}) {
    EXPECT_NE(registry_.FindType(name), kInvalidEventType) << name;
    EXPECT_EQ(registry_.schema(registry_.FindType(name))->num_attributes(),
              7u);
  }
}

TEST_F(GoogleTraceTest, GeneratesOrderedNonEmptyTrace) {
  CEP_ASSERT_OK(GoogleTraceGenerator::RegisterSchemas(&registry_));
  GoogleTraceGenerator generator(SmallOptions());
  CEP_ASSERT_OK_AND_ASSIGN(std::vector<EventPtr> events,
                           generator.Generate(registry_));
  ASSERT_GT(events.size(), 500u);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i]->timestamp(), events[i - 1]->timestamp());
  }
  for (const auto& e : events) {
    EXPECT_LE(e->timestamp(), SmallOptions().duration);
  }
}

TEST_F(GoogleTraceTest, DeterministicPerSeed) {
  CEP_ASSERT_OK(GoogleTraceGenerator::RegisterSchemas(&registry_));
  GoogleTraceGenerator a(SmallOptions()), b(SmallOptions());
  const auto ea = a.Generate(registry_).ValueOrDie();
  const auto eb = b.Generate(registry_).ValueOrDie();
  ASSERT_EQ(ea.size(), eb.size());
  for (size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i]->timestamp(), eb[i]->timestamp());
    EXPECT_EQ(ea[i]->attribute("job_id"), eb[i]->attribute("job_id"));
  }
}

TEST_F(GoogleTraceTest, LifecyclesAreWellFormed) {
  CEP_ASSERT_OK(GoogleTraceGenerator::RegisterSchemas(&registry_));
  GoogleTraceGenerator generator(SmallOptions());
  const auto events = generator.Generate(registry_).ValueOrDie();
  // Every schedule/evict/fail must reference a previously submitted task.
  const EventTypeId submit = registry_.FindType("submit");
  std::unordered_map<int64_t, int> submitted;  // job_id*100+task -> count
  int schedules = 0, evicts = 0, fails = 0;
  for (const auto& e : events) {
    const int64_t key = e->attribute("job_id").int_value() * 100 +
                        e->attribute("task_idx").int_value();
    if (e->type() == submit) {
      ++submitted[key];
    } else {
      EXPECT_TRUE(submitted.count(key)) << e->ToString();
      const std::string& type = e->schema().name();
      if (type == "schedule") ++schedules;
      if (type == "evict") ++evicts;
      if (type == "fail") ++fails;
    }
  }
  EXPECT_GT(schedules, 0);
  EXPECT_GT(evicts, 0);
  EXPECT_GT(fails, 0);
}

TEST_F(GoogleTraceTest, RegularityCorrelatesEvictionsWithAttributes) {
  CEP_ASSERT_OK(GoogleTraceGenerator::RegisterSchemas(&registry_));
  GoogleTraceOptions options = SmallOptions();
  options.duration = 6 * kHour;
  options.regularity = 1.0;
  GoogleTraceGenerator generator(options);
  const auto events = generator.Generate(registry_).ValueOrDie();
  const EventTypeId schedule = registry_.FindType("schedule");
  const EventTypeId evict = registry_.FindType("evict");
  // Eviction rate for (hot machine, low priority) schedules vs the rest.
  int hot_low = 0, hot_low_evicted = 0, other = 0, other_evicted = 0;
  std::unordered_map<int64_t, bool> hot_low_key;
  for (const auto& e : events) {
    const int64_t key = e->attribute("job_id").int_value() * 100 +
                        e->attribute("task_idx").int_value();
    if (e->type() == schedule) {
      const bool hot = GoogleTraceGenerator::IsHotMachine(
          options, static_cast<int>(e->attribute("machine_id").int_value()));
      const bool low = e->attribute("priority").int_value() <= 3;
      hot_low_key[key] = hot && low;
      if (hot && low) ++hot_low; else ++other;
    } else if (e->type() == evict) {
      if (hot_low_key[key]) ++hot_low_evicted; else ++other_evicted;
    }
  }
  ASSERT_GT(hot_low, 50);
  ASSERT_GT(other, 50);
  const double hot_rate = static_cast<double>(hot_low_evicted) / hot_low;
  const double other_rate = static_cast<double>(other_evicted) / other;
  EXPECT_GT(hot_rate, 2.5 * other_rate)
      << "regularity must induce attribute-correlated evictions";
}

TEST(BikeShareTest, GeneratesExampleOneShapes) {
  SchemaRegistry registry;
  CEP_ASSERT_OK(BikeShareGenerator::RegisterSchemas(&registry));
  BikeShareOptions options;
  options.duration = 30 * kMinute;
  BikeShareGenerator generator(options);
  const auto events = generator.Generate(registry).ValueOrDie();
  ASSERT_GT(events.size(), 100u);
  int reqs = 0, avails = 0, unlocks = 0;
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i]->timestamp(), events[i - 1]->timestamp());
  }
  for (const auto& e : events) {
    const std::string& type = e->schema().name();
    if (type == "req") ++reqs;
    if (type == "avail") ++avails;
    if (type == "unlock") ++unlocks;
  }
  EXPECT_GT(reqs, 0);
  EXPECT_GT(avails, reqs);     // several avail per request
  EXPECT_EQ(unlocks, reqs);    // one unlock per request
}

TEST(StockTest, PricesStayPositiveAndTrendySymbolsRise) {
  SchemaRegistry registry;
  CEP_ASSERT_OK(StockGenerator::RegisterSchemas(&registry));
  StockOptions options;
  options.duration = 5 * kMinute;
  options.num_symbols = 10;
  StockGenerator generator(options);
  const auto events = generator.Generate(registry).ValueOrDie();
  ASSERT_GT(events.size(), 1000u);
  std::unordered_map<int64_t, double> last_price;
  for (const auto& e : events) {
    const double p = e->attribute("price").double_value();
    EXPECT_GT(p, 0.0);
    last_price[e->attribute("symbol").int_value()] = p;
  }
  // Trendy symbols (low indices) should finish above the start price more
  // often than not.
  int trendy_up = 0, trendy_total = 0;
  for (const auto& [symbol, price] : last_price) {
    if (StockGenerator::IsTrendy(options, static_cast<int>(symbol))) {
      ++trendy_total;
      if (price > options.initial_price) ++trendy_up;
    }
  }
  ASSERT_GT(trendy_total, 0);
  EXPECT_GE(trendy_up * 2, trendy_total);
}

TEST(CannedQueriesTest, AllCompile) {
  SchemaRegistry cluster;
  CEP_ASSERT_OK(GoogleTraceGenerator::RegisterSchemas(&cluster));
  EXPECT_TRUE(MakeClusterQ1(cluster, 3 * kHour).ok());
  EXPECT_TRUE(MakeClusterQ2(cluster, 5 * kHour).ok());

  SchemaRegistry bike;
  CEP_ASSERT_OK(BikeShareGenerator::RegisterSchemas(&bike));
  EXPECT_TRUE(MakeBikeQuery(bike, 10 * kMinute, 5, 2).ok());

  SchemaRegistry stock;
  CEP_ASSERT_OK(StockGenerator::RegisterSchemas(&stock));
  EXPECT_TRUE(MakeStockRisingQuery(stock, kMinute, 3).ok());
}

TEST(CannedQueriesTest, Q1FindsChurnOnTheTrace) {
  SchemaRegistry registry;
  CEP_ASSERT_OK(GoogleTraceGenerator::RegisterSchemas(&registry));
  GoogleTraceOptions options;
  options.duration = 4 * kHour;
  options.jobs_per_hour = 150;
  options.seed = 3;
  GoogleTraceGenerator generator(options);
  const auto events = generator.Generate(registry).ValueOrDie();
  CEP_ASSERT_OK_AND_ASSIGN(CannedQuery q1, MakeClusterQ1(registry, 3 * kHour));
  const auto matches = testing_util::RunAll(q1.nfa, EngineOptions{}, events);
  EXPECT_GT(matches.size(), 0u);
  // Every match binds submit/schedule/evict of one task.
  for (const auto& m : matches) {
    const auto job = m.bindings[0][0]->attribute("job_id");
    EXPECT_EQ(m.bindings[1][0]->attribute("job_id"), job);
    EXPECT_EQ(m.bindings[2][0]->attribute("job_id"), job);
  }
}

}  // namespace
}  // namespace cep
