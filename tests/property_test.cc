#include <gtest/gtest.h>

#include <tuple>
#include <unordered_set>

#include "harness/accuracy.h"
#include "harness/experiment.h"
#include "shedding/random_shedder.h"
#include "shedding/state_shedder.h"
#include "test_util.h"

namespace cep {
namespace {

using testing_util::BikeSchema;

/// Generates a randomised bike stream with the given seed.
std::vector<EventPtr> RandomStream(BikeSchema* fixture, uint64_t seed,
                                   int n) {
  Rng rng(seed);
  std::vector<EventPtr> events;
  Timestamp ts = kMinute;
  for (int i = 0; i < n; ++i) {
    ts += 1 + rng.NextBounded(20 * kSecond);
    const auto loc = static_cast<int64_t>(rng.NextBounded(30));
    const auto uid = static_cast<int64_t>(rng.NextBounded(15));
    switch (rng.NextBounded(3)) {
      case 0:
        events.push_back(fixture->Req(ts, loc, uid));
        break;
      case 1:
        events.push_back(
            fixture->Avail(ts, loc, static_cast<int64_t>(rng.Next() % 100)));
        break;
      default:
        events.push_back(fixture->Unlock(ts, loc, uid, 1));
        break;
    }
  }
  return events;
}

constexpr const char* kQueries[] = {
    "PATTERN SEQ(req a, unlock c) WHERE c.uid = a.uid WITHIN 10 min",
    "PATTERN SEQ(req a, avail+ b[], unlock c) "
    "WHERE diff(b[i].loc, a.loc) < 8, c.uid = a.uid WITHIN 10 min",
    "PATTERN SEQ(req a, NOT unlock x, avail m) "
    "WHERE x.uid = a.uid WITHIN 10 min",
};

/// (query index, stream seed)
class EngineInvariantProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  BikeSchema fixture_;
};

TEST_P(EngineInvariantProperty, MatchesRespectWindowAndOrder) {
  const auto [query_idx, seed] = GetParam();
  NfaPtr nfa = fixture_.Compile(kQueries[query_idx]);
  const auto events = RandomStream(&fixture_, 1000 + seed, 400);
  const auto matches = testing_util::RunAll(nfa, EngineOptions{}, events);
  for (const auto& m : matches) {
    EXPECT_LE(m.last_ts - m.first_ts, nfa->window());
    // Bindings are timestamp-ordered along the pattern.
    Timestamp prev = INT64_MIN;
    for (const auto& var_events : m.bindings) {
      for (const auto& e : var_events) {
        EXPECT_GE(e->timestamp(), prev);
        prev = e->timestamp();
      }
    }
  }
}

TEST_P(EngineInvariantProperty, DeterministicAcrossRuns) {
  const auto [query_idx, seed] = GetParam();
  NfaPtr nfa = fixture_.Compile(kQueries[query_idx]);
  const auto events = RandomStream(&fixture_, 2000 + seed, 300);
  const auto a = testing_util::RunAll(nfa, EngineOptions{}, events);
  const auto b = testing_util::RunAll(nfa, EngineOptions{}, events);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].fingerprint, b[i].fingerprint);
  }
}

TEST_P(EngineInvariantProperty, SheddingIsSubsetOfGolden) {
  const auto [query_idx, seed] = GetParam();
  NfaPtr nfa = fixture_.Compile(kQueries[query_idx]);
  const auto events = RandomStream(&fixture_, 3000 + seed, 400);
  const auto golden = testing_util::RunAll(nfa, EngineOptions{}, events);
  EngineOptions lossy;
  lossy.max_runs = 15;
  lossy.shed_amount.fraction = 0.4;
  const auto shed = testing_util::RunAll(
      nfa, lossy, events,
      std::make_unique<RandomShedder>(static_cast<uint64_t>(seed)));
  const auto report = CompareMatches(golden, shed);
  EXPECT_EQ(report.false_positives(), 0u)
      << "shedding must never invent matches";
  EXPECT_LE(shed.size(), golden.size());
}

TEST_P(EngineInvariantProperty, SblsIsAlsoSubsetOfGolden) {
  const auto [query_idx, seed] = GetParam();
  NfaPtr nfa = fixture_.Compile(kQueries[query_idx]);
  const auto events = RandomStream(&fixture_, 4000 + seed, 400);
  const auto golden = testing_util::RunAll(nfa, EngineOptions{}, events);
  EngineOptions lossy;
  lossy.max_runs = 15;
  lossy.shed_amount.fraction = 0.4;
  StateShedderOptions options;
  options.pm_hash.attributes = {{"req", "loc"}};
  const auto shed = testing_util::RunAll(
      nfa, lossy, events,
      std::make_unique<StateShedder>(options, &fixture_.registry));
  const auto report = CompareMatches(golden, shed);
  EXPECT_EQ(report.false_positives(), 0u);
}

TEST_P(EngineInvariantProperty, NoOverloadMeansNoLoss) {
  const auto [query_idx, seed] = GetParam();
  NfaPtr nfa = fixture_.Compile(kQueries[query_idx]);
  const auto events = RandomStream(&fixture_, 5000 + seed, 200);
  const auto golden = testing_util::RunAll(nfa, EngineOptions{}, events);
  // Shedder installed but thresholds never reached: accuracy must be 1.
  EngineOptions options;
  options.latency_threshold_micros = 1e12;
  options.max_runs = 0;
  const auto shed = testing_util::RunAll(
      nfa, options, events, std::make_unique<RandomShedder>(1));
  const auto report = CompareMatches(golden, shed);
  EXPECT_DOUBLE_EQ(report.recall(), 1.0);
  EXPECT_DOUBLE_EQ(report.precision(), 1.0);
}

TEST_P(EngineInvariantProperty, MetricsAreConsistent) {
  const auto [query_idx, seed] = GetParam();
  NfaPtr nfa = fixture_.Compile(kQueries[query_idx]);
  const auto events = RandomStream(&fixture_, 6000 + seed, 300);
  Engine engine(nfa, EngineOptions{});
  for (const auto& e : events) CEP_ASSERT_OK(engine.ProcessEvent(e));
  const EngineMetrics& m = engine.metrics();
  EXPECT_EQ(m.events_processed, events.size());
  // Exact run conservation: every run that ever entered R(t) left through
  // exactly one exit counter or is still live.
  CEP_ASSERT_OK(engine.VerifyInvariants());
  EXPECT_EQ(m.runs_created + m.runs_extended,
            m.runs_completed + m.runs_expired + m.runs_killed + m.runs_shed +
                m.runs_aborted + engine.num_runs());
  EXPECT_LE(engine.num_runs(), m.peak_runs);
}

TEST_P(EngineInvariantProperty, RunConservationHoldsUnderShedding) {
  const auto [query_idx, seed] = GetParam();
  NfaPtr nfa = fixture_.Compile(kQueries[query_idx]);
  const auto events = RandomStream(&fixture_, 7000 + seed, 400);
  EngineOptions lossy;
  lossy.max_runs = 10;
  lossy.shed_amount.fraction = 0.5;
  Engine engine(nfa, lossy,
                std::make_unique<RandomShedder>(static_cast<uint64_t>(seed)));
  for (const auto& e : events) {
    CEP_ASSERT_OK(engine.ProcessEvent(e));
    CEP_ASSERT_OK(engine.VerifyInvariants());
  }
  EXPECT_GT(engine.metrics().runs_shed, 0u)
      << "max_runs=10 should have forced shedding on this stream";
  CEP_ASSERT_OK(engine.Flush());
  CEP_ASSERT_OK(engine.VerifyInvariants());
}

INSTANTIATE_TEST_SUITE_P(
    QueriesAndSeeds, EngineInvariantProperty,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(1, 2, 3, 4, 5)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return "q" + std::to_string(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

/// Selection-strategy sweep: for every strategy, matches satisfy the window
/// and shedding stays sound.
class SelectionProperty
    : public ::testing::TestWithParam<SelectionStrategy> {
 protected:
  BikeSchema fixture_;
};

TEST_P(SelectionProperty, RunConservationHoldsPerStrategy) {
  // The ledger differs per strategy (skip-till-any-match counts extensions
  // as new run objects; the greedy strategies extend in place), so sweep all
  // three over a Kleene query that exercises completion, kill, and expiry.
  NfaPtr nfa = fixture_.Compile(kQueries[1]);
  const auto events = RandomStream(&fixture_, 79, 400);
  EngineOptions options;
  options.selection = GetParam();
  Engine engine(nfa, options);
  for (const auto& e : events) {
    CEP_ASSERT_OK(engine.ProcessEvent(e));
    CEP_ASSERT_OK(engine.VerifyInvariants());
  }
  CEP_ASSERT_OK(engine.Flush());
  CEP_ASSERT_OK(engine.VerifyInvariants());
  // Strict contiguity rarely completes on a random stream (any interleaved
  // event breaks the run), so only the skip-till strategies must complete.
  if (GetParam() != SelectionStrategy::kStrictContiguity) {
    EXPECT_GT(engine.metrics().runs_completed, 0u);
  }
}

TEST_P(SelectionProperty, WindowRespectedUnderAllStrategies) {
  NfaPtr nfa = fixture_.Compile(kQueries[1]);
  const auto events = RandomStream(&fixture_, 77, 300);
  EngineOptions options;
  options.selection = GetParam();
  const auto matches = testing_util::RunAll(nfa, options, events);
  for (const auto& m : matches) {
    EXPECT_LE(m.last_ts - m.first_ts, nfa->window());
  }
}

TEST_P(SelectionProperty, StamDominatesEveryStrategy) {
  NfaPtr nfa = fixture_.Compile(kQueries[0]);
  const auto events = RandomStream(&fixture_, 78, 300);
  EngineOptions stam;
  stam.selection = SelectionStrategy::kSkipTillAnyMatch;
  const auto stam_matches = testing_util::RunAll(nfa, stam, events);
  EngineOptions other;
  other.selection = GetParam();
  const auto other_matches = testing_util::RunAll(nfa, other, events);
  EXPECT_GE(stam_matches.size(), other_matches.size());
  // Every match under the restricted strategy also exists under STAM.
  std::unordered_multiset<uint64_t> stam_prints;
  for (const auto& m : stam_matches) stam_prints.insert(m.fingerprint);
  for (const auto& m : other_matches) {
    EXPECT_TRUE(stam_prints.count(m.fingerprint) > 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, SelectionProperty,
    ::testing::Values(SelectionStrategy::kSkipTillAnyMatch,
                      SelectionStrategy::kSkipTillNextMatch,
                      SelectionStrategy::kStrictContiguity),
    [](const ::testing::TestParamInfo<SelectionStrategy>& info) {
      switch (info.param) {
        case SelectionStrategy::kSkipTillAnyMatch: return std::string("stam");
        case SelectionStrategy::kSkipTillNextMatch: return std::string("stnm");
        case SelectionStrategy::kStrictContiguity: return std::string("strict");
      }
      return std::string("unknown");
    });

}  // namespace
}  // namespace cep
