#include <gtest/gtest.h>

#include "shedding/adaptive.h"
#include "shedding/contribution_model.h"
#include "shedding/cost_model.h"
#include "shedding/model_backend.h"
#include "shedding/scoring.h"
#include "shedding/sketch.h"
#include "shedding/time_slice.h"

namespace cep {
namespace {

TEST(ExactBackendTest, RatioAndSupport) {
  ExactCounterBackend backend;
  EXPECT_DOUBLE_EQ(backend.Ratio(1, 0.5), 0.5);  // unseen -> fallback
  EXPECT_DOUBLE_EQ(backend.Support(1), 0.0);
  backend.Add(1, 0.0, 1.0);
  backend.Add(1, 0.0, 1.0);
  backend.Add(1, 1.0, 0.0);
  EXPECT_DOUBLE_EQ(backend.Ratio(1, 0.5), 0.5);
  EXPECT_DOUBLE_EQ(backend.Support(1), 2.0);
  backend.Add(1, 1.0, 0.0);
  EXPECT_DOUBLE_EQ(backend.Ratio(1, 0.0), 1.0);
  EXPECT_GT(backend.MemoryBytes(), 0u);
  backend.Clear();
  EXPECT_DOUBLE_EQ(backend.Support(1), 0.0);
}

TEST(ExactBackendTest, KeysAreIndependent) {
  ExactCounterBackend backend;
  backend.Add(1, 5.0, 10.0);
  backend.Add(2, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(backend.Ratio(1, 0), 0.5);
  EXPECT_DOUBLE_EQ(backend.Ratio(2, 0), 1.0);
  EXPECT_EQ(backend.num_cells(), 2u);
}

TEST(ContributionModelTest, ObserveAndCredit) {
  ContributionModel model(std::make_unique<ExactCounterBackend>());
  // Three runs pass through cell 7; one of them later completes a match.
  model.Observe(7);
  model.Observe(7);
  model.Observe(7);
  model.Credit({7});
  EXPECT_DOUBLE_EQ(model.Estimate(7, 1.0), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(model.Estimate(8, 0.75), 0.75);  // unseen -> optimism
  EXPECT_DOUBLE_EQ(model.Support(7), 3.0);
}

TEST(ContributionModelTest, CreditWholeTrail) {
  ContributionModel model(std::make_unique<ExactCounterBackend>());
  model.Observe(1);
  model.Observe(2);
  model.Observe(3);
  model.Credit({1, 2, 3});
  EXPECT_DOUBLE_EQ(model.Estimate(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(model.Estimate(2, 0), 1.0);
  EXPECT_DOUBLE_EQ(model.Estimate(3, 0), 1.0);
}

TEST(CostModelTest, ObserveAndCharge) {
  CostModel model(std::make_unique<ExactCounterBackend>());
  model.Observe(5);
  model.Observe(5);
  model.Charge({5});
  model.Charge({5});
  model.Charge({5});
  EXPECT_DOUBLE_EQ(model.Estimate(5, 0.0), 1.5);  // 3 derived / 2 observed
  EXPECT_DOUBLE_EQ(model.Estimate(6, 0.25), 0.25);
}

TEST(TimeSlicerTest, SliceBoundaries) {
  TimeSlicer slicer(100, 10);
  EXPECT_EQ(slicer.Slice(0, 0), 0);
  EXPECT_EQ(slicer.Slice(0, 9), 0);
  EXPECT_EQ(slicer.Slice(0, 10), 1);
  EXPECT_EQ(slicer.Slice(0, 99), 9);
  EXPECT_EQ(slicer.Slice(0, 100), 9);   // clamped to last slice
  EXPECT_EQ(slicer.Slice(0, 5000), 9);  // beyond the window
  EXPECT_EQ(slicer.Slice(50, 40), 0);   // negative age clamps to 0
}

TEST(TimeSlicerTest, SingleSliceDegenerate) {
  TimeSlicer slicer(100, 1);
  EXPECT_EQ(slicer.Slice(0, 0), 0);
  EXPECT_EQ(slicer.Slice(0, 99), 0);
  EXPECT_EQ(slicer.num_slices(), 1);
}

TEST(TimeSlicerTest, HugeWindowsDoNotOverflow) {
  // Regression: Slice computed (age * num_slices) / window in int64, which
  // overflows (signed UB) once window > INT64_MAX / num_slices — reachable
  // with giant WITHIN windows and extreme CSV timestamps. The widened
  // intermediate must bucket such ages exactly.
  // Even power of two so the boundary expectations below divide exactly.
  const Duration window = int64_t{1} << 62;  // > INT64_MAX / 16
  TimeSlicer slicer(window, 16);
  EXPECT_EQ(slicer.Slice(0, 0), 0);
  EXPECT_EQ(slicer.Slice(0, window / 16 - 1), 0);
  EXPECT_EQ(slicer.Slice(0, window / 16 + 1), 1);
  EXPECT_EQ(slicer.Slice(0, window / 2), 8);
  EXPECT_EQ(slicer.Slice(0, window - 1), 15);
  EXPECT_EQ(slicer.Slice(0, window), 15);  // clamp
  // Maximum representable age, window just above it: still the last slice.
  TimeSlicer max_window(INT64_MAX, 64);
  EXPECT_EQ(max_window.Slice(0, INT64_MAX - 1), 63);
  EXPECT_EQ(max_window.Slice(INT64_MIN / 2, INT64_MAX / 2), 63);
  // Extreme negative start (e.g. a corrupt CSV timestamp) with a huge now.
  TimeSlicer wide(INT64_MAX, 8);
  EXPECT_GE(wide.Slice(-4, INT64_MAX - 8), 7);
}

TEST(TimeSlicerTest, HugeWindowSlicesAreMonotonic) {
  const Duration window = INT64_MAX - 1;
  TimeSlicer slicer(window, 10);
  int last = 0;
  for (int i = 0; i <= 10; ++i) {
    const Timestamp now = static_cast<Timestamp>((window / 10) * i);
    const int slice = slicer.Slice(0, now);
    EXPECT_GE(slice, last);
    EXPECT_LT(slice, 10);
    last = slice;
  }
  EXPECT_EQ(last, 9);
}

TEST(TimeSlicerTest, TtlFraction) {
  TimeSlicer slicer(100, 10);
  EXPECT_DOUBLE_EQ(slicer.TtlFraction(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(slicer.TtlFraction(0, 50), 0.5);
  EXPECT_DOUBLE_EQ(slicer.TtlFraction(0, 100), 0.0);
  EXPECT_DOUBLE_EQ(slicer.TtlFraction(0, 200), 0.0);
}

TEST(ScoringTest, LinearCombination) {
  ScoringOptions options;
  options.function = RankingFunction::kLinear;
  options.weight_contribution = 2.0;
  options.weight_cost = 3.0;
  EXPECT_DOUBLE_EQ(ScorePartialMatch(options, 1.0, 0.5, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(ScorePartialMatch(options, 0.0, 1.0, 1.0), -3.0);
}

TEST(ScoringTest, RatioFunction) {
  ScoringOptions options;
  options.function = RankingFunction::kRatio;
  options.ratio_epsilon = 1.0;
  EXPECT_DOUBLE_EQ(ScorePartialMatch(options, 1.0, 1.0, 1.0), 1.0);
  EXPECT_GT(ScorePartialMatch(options, 3.0, 0.0, 1.0),
            ScorePartialMatch(options, 1.0, 0.0, 1.0));
}

TEST(ScoringTest, SingleSidedFunctions) {
  ScoringOptions options;
  options.function = RankingFunction::kContributionOnly;
  EXPECT_DOUBLE_EQ(ScorePartialMatch(options, 0.7, 9.0, 1.0), 0.7);
  options.function = RankingFunction::kCostOnly;
  EXPECT_DOUBLE_EQ(ScorePartialMatch(options, 0.7, 9.0, 1.0), -9.0);
}

TEST(ScoringTest, TtlDiscount) {
  ScoringOptions options;
  options.function = RankingFunction::kTtlDiscounted;
  const double fresh = ScorePartialMatch(options, 1.0, 0.0, 1.0);
  const double stale = ScorePartialMatch(options, 1.0, 0.0, 0.1);
  EXPECT_GT(fresh, stale);
  EXPECT_DOUBLE_EQ(ScorePartialMatch(options, 1.0, 0.0, 0.0), 0.0);
}

TEST(ScoringTest, RankingFunctionNames) {
  EXPECT_STREQ(RankingFunctionName(RankingFunction::kLinear), "linear");
  EXPECT_STRNE(RankingFunctionName(RankingFunction::kRatio),
               RankingFunctionName(RankingFunction::kTtlDiscounted));
}

TEST(ComputeShedTargetTest, FixedFraction) {
  ShedAmountOptions options;
  options.fraction = 0.2;
  EXPECT_EQ(ComputeShedTarget(options, 100, 0, 0), 20u);
  EXPECT_EQ(ComputeShedTarget(options, 0, 0, 0), 0u);
  // min_victims floor.
  EXPECT_EQ(ComputeShedTarget(options, 3, 0, 0), 1u);
}

TEST(ComputeShedTargetTest, AdaptiveScalesWithOvershoot) {
  ShedAmountOptions options;
  options.mode = ShedAmountOptions::Mode::kAdaptive;
  options.fraction = 0.2;
  options.adaptive_gain = 1.0;
  options.max_fraction = 0.8;
  const size_t mild = ComputeShedTarget(options, 1000, 110.0, 100.0);
  const size_t severe = ComputeShedTarget(options, 1000, 500.0, 100.0);
  EXPECT_GT(severe, mild);
  EXPECT_LE(severe, 800u);  // capped by max_fraction
  EXPECT_NEAR(static_cast<double>(mild), 220.0, 5.0);
}

TEST(ComputeShedTargetTest, NeverExceedsRunCount) {
  ShedAmountOptions options;
  options.fraction = 0.9;
  options.max_fraction = 5.0;
  EXPECT_LE(ComputeShedTarget(options, 10, 0, 0), 10u);
}

TEST(ComputeShedTargetTest, ZeroRunsAlwaysZeroRegardlessOfFloors) {
  ShedAmountOptions options;
  options.fraction = 0.5;
  options.min_victims = 10;
  EXPECT_EQ(ComputeShedTarget(options, 0, 0, 0), 0u);
  options.mode = ShedAmountOptions::Mode::kAdaptive;
  EXPECT_EQ(ComputeShedTarget(options, 0, 1e9, 1.0), 0u);
}

TEST(ComputeShedTargetTest, ExtremeOvershootClampedByMaxFraction) {
  ShedAmountOptions options;
  options.mode = ShedAmountOptions::Mode::kAdaptive;
  options.fraction = 0.2;
  options.adaptive_gain = 1.0;
  options.max_fraction = 0.8;
  // µ/θ >> 1: the adaptive fraction explodes but must clamp at max_fraction.
  EXPECT_EQ(ComputeShedTarget(options, 1000, 1e12, 1.0), 800u);
  // θ == 0 must not divide by zero.
  const size_t with_zero_theta = ComputeShedTarget(options, 1000, 100.0, 0.0);
  EXPECT_LE(with_zero_theta, 800u);
}

TEST(ComputeShedTargetTest, MinVictimsFloorApplies) {
  ShedAmountOptions options;
  options.fraction = 0.001;  // rounds to 0 victims on small run sets
  options.min_victims = 5;
  EXPECT_EQ(ComputeShedTarget(options, 100, 0, 0), 5u);
  // The floor itself is capped by the run count.
  EXPECT_EQ(ComputeShedTarget(options, 3, 0, 0), 3u);
}

TEST(ComputeShedTargetTest, FractionAtOrAboveOneShedsEverything) {
  ShedAmountOptions options;
  options.fraction = 1.0;
  options.max_fraction = 2.0;
  EXPECT_EQ(ComputeShedTarget(options, 57, 0, 0), 57u);
  options.fraction = 1.5;
  EXPECT_EQ(ComputeShedTarget(options, 57, 0, 0), 57u);
}

}  // namespace
}  // namespace cep
