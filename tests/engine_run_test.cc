#include "engine/run.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace cep {
namespace {

using testing_util::BikeSchema;

class RunTest : public ::testing::Test {
 protected:
  BikeSchema fixture_;
};

TEST_F(RunTest, BindSetsTimestampsAndState) {
  ::cep::Run run(1, 3, 0, 0);
  EXPECT_EQ(run.size(), 0);
  run.Bind(0, fixture_.Req(5 * kMinute, 1, 2), 1);
  EXPECT_EQ(run.state(), 1);
  EXPECT_EQ(run.start_ts(), 5 * kMinute);
  EXPECT_EQ(run.last_ts(), 5 * kMinute);
  EXPECT_EQ(run.size(), 1);
  run.Bind(1, fixture_.Avail(6 * kMinute, 1, 3), 2);
  EXPECT_EQ(run.start_ts(), 5 * kMinute);  // anchored at the first event
  EXPECT_EQ(run.last_ts(), 6 * kMinute);
  EXPECT_EQ(run.size(), 2);
  EXPECT_EQ(run.binding(0).size(), 1u);
  EXPECT_EQ(run.binding(1).size(), 1u);
  EXPECT_TRUE(run.binding(2).empty());
}

TEST_F(RunTest, ExtendSharesUnchangedBindingsCopyOnWrite) {
  BindingCellPool pool;
  ::cep::Run parent(1, 2, 0, 0);
  parent.Bind(0, fixture_.Req(1, 1, 2), 1, &pool);
  parent.Bind(1, fixture_.Avail(2, 1, 3), 1, &pool);
  ASSERT_EQ(pool.live(), 2u);
  const EventPtr extra = fixture_.Avail(3, 1, 4);
  auto child = parent.Extend(2, 1, extra, 1);
  // Extending retains the parent's chains and appends exactly one cell
  // (heap-allocated here: no arena was given) — no pooled cell is copied.
  EXPECT_EQ(pool.live(), 2u);
  EXPECT_EQ(parent.first_event(0), child->first_event(0));
  EXPECT_EQ(parent.first_event(1), child->first_event(1));
  // The parent is untouched by the child's extension.
  EXPECT_EQ(parent.binding(1).size(), 1u);
  EXPECT_EQ(child->binding(1).size(), 2u);
  EXPECT_EQ(child->binding(1)[1]->timestamp(), 3);
  // Extending the parent again must not affect the earlier child.
  parent.Bind(1, fixture_.Avail(4, 1, 5), 1);
  EXPECT_EQ(child->binding(1).size(), 2u);
  EXPECT_EQ(parent.binding(1).size(), 2u);
  EXPECT_EQ(parent.binding(1)[1]->timestamp(), 4);
}

TEST_F(RunTest, ExtendInheritsMetadata) {
  ::cep::Run parent(1, 2, 0, 0);
  parent.Bind(0, fixture_.Req(kMinute, 1, 2), 1);
  parent.PushTrail(77);
  parent.set_pm_hash(0xabc);
  auto child = parent.Extend(9, 1, fixture_.Avail(2 * kMinute, 1, 3), 2);
  EXPECT_EQ(child->id(), 9u);
  EXPECT_EQ(child->state(), 2);
  EXPECT_EQ(child->start_ts(), kMinute);
  EXPECT_EQ(child->last_ts(), 2 * kMinute);
  EXPECT_EQ(child->size(), 2);
  EXPECT_EQ(child->trail(), (std::vector<uint64_t>{77}));
  EXPECT_EQ(child->pm_hash(), 0xabcu);
}

TEST_F(RunTest, CopyBindingsMaterialisesAllVariables) {
  ::cep::Run run(1, 3, 0, 0);
  run.Bind(0, fixture_.Req(1, 1, 2), 1);
  run.Bind(1, fixture_.Avail(2, 1, 3), 1);
  run.Bind(1, fixture_.Avail(3, 1, 4), 1);
  const auto copy = run.CopyBindings();
  ASSERT_EQ(copy.size(), 3u);
  EXPECT_EQ(copy[0].size(), 1u);
  EXPECT_EQ(copy[1].size(), 2u);
  EXPECT_TRUE(copy[2].empty());
}

TEST_F(RunTest, TtlAndExpiry) {
  ::cep::Run run(1, 1, 0, 0);
  run.Bind(0, fixture_.Req(100, 1, 2), 1);
  EXPECT_EQ(run.RemainingTtl(100, 50), 50);
  EXPECT_EQ(run.RemainingTtl(130, 50), 20);
  EXPECT_EQ(run.RemainingTtl(200, 50), 0);
  EXPECT_FALSE(run.Expired(150, 50));  // inclusive boundary
  EXPECT_TRUE(run.Expired(151, 50));
}

TEST_F(RunTest, BindingViewVirtualAppendOnKleene) {
  ::cep::Run run(1, 2, 0, 0);
  run.Bind(0, fixture_.Req(1, 1, 2), 1);
  run.Bind(1, fixture_.Avail(2, 10, 3), 1);
  const EventPtr candidate = fixture_.Avail(3, 20, 4);
  const RunBindingView view(run, 1, candidate.get());
  EXPECT_EQ(view.KleeneCount(1), 2);
  EXPECT_EQ(view.KleeneAt(1, 0)->attribute("loc"), Value(10));
  EXPECT_EQ(view.KleeneAt(1, 1)->attribute("loc"), Value(20));  // virtual
  EXPECT_EQ(view.KleeneAt(1, 2), nullptr);
  EXPECT_EQ(view.Current(), candidate.get());
  // Without a candidate, the view reflects stored state only.
  const RunBindingView plain(run);
  EXPECT_EQ(plain.KleeneCount(1), 1);
  EXPECT_EQ(plain.Current(), nullptr);
}

TEST_F(RunTest, BindingViewVirtualSingle) {
  ::cep::Run run(1, 2, 0, 0);
  const EventPtr candidate = fixture_.Req(1, 7, 8);
  const RunBindingView view(run, 0, candidate.get());
  EXPECT_EQ(view.Single(0), candidate.get());
  EXPECT_EQ(view.Single(1), nullptr);
}

TEST_F(RunTest, ToStringListsBindingsInPatternOrder) {
  NfaPtr nfa = fixture_.Compile(
      "PATTERN SEQ(req a, avail+ b[], unlock c) WITHIN 10 min");
  ::cep::Run run(3, 3, 0, 0);
  run.Bind(0, fixture_.Req(1, 1, 2), 1);
  run.Bind(1, fixture_.Avail(2, 1, 3), 2);
  const std::string text = run.ToString(nfa->query());
  EXPECT_NE(text.find("run#3"), std::string::npos);
  EXPECT_NE(text.find("a:1"), std::string::npos);
  EXPECT_NE(text.find("b:2"), std::string::npos);
}

}  // namespace
}  // namespace cep
