#include "common/value.h"

#include <gtest/gtest.h>

namespace cep {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), ValueType::kNull);
  EXPECT_EQ(v.ToString(), "null");
}

TEST(ValueTest, TypeTagsMatchConstructors) {
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_TRUE(Value(int64_t{3}).is_int());
  EXPECT_TRUE(Value(3).is_int());
  EXPECT_TRUE(Value(3.5).is_double());
  EXPECT_TRUE(Value("abc").is_string());
  EXPECT_TRUE(Value(std::string("abc")).is_string());
  EXPECT_TRUE(Value(3).is_numeric());
  EXPECT_TRUE(Value(3.5).is_numeric());
  EXPECT_FALSE(Value("x").is_numeric());
}

TEST(ValueTest, Accessors) {
  EXPECT_EQ(Value(true).bool_value(), true);
  EXPECT_EQ(Value(42).int_value(), 42);
  EXPECT_DOUBLE_EQ(Value(2.5).double_value(), 2.5);
  EXPECT_EQ(Value("hi").string_value(), "hi");
  EXPECT_DOUBLE_EQ(Value(42).AsDouble(), 42.0);
  EXPECT_DOUBLE_EQ(Value(2.5).AsDouble(), 2.5);
}

TEST(ValueTest, CheckedAccessorsRejectWrongType) {
  EXPECT_TRUE(Value(1).GetBool().status().IsTypeError());
  EXPECT_TRUE(Value(true).GetInt().status().IsTypeError());
  EXPECT_TRUE(Value("x").GetDouble().status().IsTypeError());
  EXPECT_TRUE(Value(1).GetString().status().IsTypeError());
  EXPECT_EQ(Value(7).GetInt().ValueOrDie(), 7);
  // GetDouble accepts ints (numeric widening).
  EXPECT_DOUBLE_EQ(Value(7).GetDouble().ValueOrDie(), 7.0);
}

TEST(ValueTest, EqualityWithinTypes) {
  EXPECT_EQ(Value(3), Value(3));
  EXPECT_NE(Value(3), Value(4));
  EXPECT_EQ(Value("a"), Value("a"));
  EXPECT_NE(Value("a"), Value("b"));
  EXPECT_EQ(Value(true), Value(true));
  EXPECT_EQ(Value(), Value());
}

TEST(ValueTest, NumericCrossTypeEquality) {
  EXPECT_EQ(Value(3), Value(3.0));
  EXPECT_NE(Value(3), Value(3.5));
}

TEST(ValueTest, NoCrossTypeEqualityOtherwise) {
  EXPECT_NE(Value(1), Value(true));
  EXPECT_NE(Value("3"), Value(3));
  EXPECT_NE(Value(), Value(0));
}

TEST(ValueTest, CompareNumeric) {
  EXPECT_EQ(Value::Compare(Value(1), Value(2)).ValueOrDie(), -1);
  EXPECT_EQ(Value::Compare(Value(2), Value(2)).ValueOrDie(), 0);
  EXPECT_EQ(Value::Compare(Value(3), Value(2)).ValueOrDie(), 1);
  EXPECT_EQ(Value::Compare(Value(1.5), Value(2)).ValueOrDie(), -1);
  EXPECT_EQ(Value::Compare(Value(2), Value(1.5)).ValueOrDie(), 1);
}

TEST(ValueTest, CompareStringsAndBools) {
  EXPECT_EQ(Value::Compare(Value("a"), Value("b")).ValueOrDie(), -1);
  EXPECT_EQ(Value::Compare(Value("b"), Value("b")).ValueOrDie(), 0);
  EXPECT_EQ(Value::Compare(Value(false), Value(true)).ValueOrDie(), -1);
}

TEST(ValueTest, CompareIncompatibleTypesFails) {
  EXPECT_TRUE(Value::Compare(Value("a"), Value(1)).status().IsTypeError());
  EXPECT_TRUE(Value::Compare(Value(), Value(1)).status().IsTypeError());
  EXPECT_TRUE(Value::Compare(Value(true), Value(1)).status().IsTypeError());
}

TEST(ValueTest, HashEqualValuesHashEqually) {
  EXPECT_EQ(Value(17).Hash(), Value(17).Hash());
  EXPECT_EQ(Value("xyz").Hash(), Value("xyz").Hash());
  EXPECT_EQ(Value(-0.0).Hash(), Value(0.0).Hash());
}

TEST(ValueTest, HashDistinguishesTypesAndValues) {
  // Not guaranteed in theory, but these must differ for a usable hash.
  EXPECT_NE(Value(3).Hash(), Value(3.0).Hash());
  EXPECT_NE(Value(3).Hash(), Value(4).Hash());
  EXPECT_NE(Value("a").Hash(), Value("b").Hash());
  EXPECT_NE(Value().Hash(), Value(0).Hash());
}

TEST(ValueTest, ToStringFormats) {
  EXPECT_EQ(Value(3).ToString(), "3");
  EXPECT_EQ(Value(true).ToString(), "true");
  EXPECT_EQ(Value(false).ToString(), "false");
  EXPECT_EQ(Value("s").ToString(), "s");
  EXPECT_EQ(Value(2.5).ToString(), "2.5");
}

TEST(ValueTest, ValueTypeNames) {
  EXPECT_STREQ(ValueTypeName(ValueType::kNull), "null");
  EXPECT_STREQ(ValueTypeName(ValueType::kBool), "bool");
  EXPECT_STREQ(ValueTypeName(ValueType::kInt), "int");
  EXPECT_STREQ(ValueTypeName(ValueType::kDouble), "double");
  EXPECT_STREQ(ValueTypeName(ValueType::kString), "string");
}

// Property-style sweep: Compare is antisymmetric and consistent with ==
// across a grid of numeric values.
class ValueCompareProperty : public ::testing::TestWithParam<int> {};

TEST_P(ValueCompareProperty, AntisymmetricAgainstGrid) {
  const int64_t a = GetParam();
  for (int64_t b = -3; b <= 3; ++b) {
    const int ab = Value::Compare(Value(a), Value(b)).ValueOrDie();
    const int ba = Value::Compare(Value(b), Value(a)).ValueOrDie();
    EXPECT_EQ(ab, -ba);
    EXPECT_EQ(ab == 0, Value(a) == Value(b));
    // Mixed int/double comparisons agree with pure-int ones.
    const int mixed =
        Value::Compare(Value(static_cast<double>(a)), Value(b)).ValueOrDie();
    EXPECT_EQ(ab, mixed);
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, ValueCompareProperty,
                         ::testing::Values(-3, -1, 0, 1, 2, 3));

}  // namespace
}  // namespace cep
