// Tests for the shedding-quality observability stack (shadow oracle,
// calibration monitor, θ SLO burn rates, interpolated histogram quantiles):
//  - unit math: Wilson bounds, calibration buckets/Brier/drift, burn rates,
//    histogram quantile boundary-exactness;
//  - the shadow oracle's recall estimate against ground truth under forced
//    shedding, and its exact non-interference with primary results;
//  - determinism: byte-identical quality exports across threads x shards and
//    across a mid-span checkpoint -> restore.

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ckpt/io.h"
#include "common/time.h"
#include "engine/shadow.h"
#include "obs/metrics.h"
#include "obs/quality.h"
#include "shedding/random_shedder.h"
#include "shedding/state_shedder.h"
#include "test_util.h"

namespace cep {
namespace {

using testing_util::BikeSchema;
using testing_util::RunAll;

// --- Wilson interval --------------------------------------------------------

TEST(WilsonScoreTest, EmptyTrialsGiveFullInterval) {
  const obs::WilsonInterval interval = obs::WilsonScore(0, 0);
  EXPECT_DOUBLE_EQ(interval.center, 0.0);
  EXPECT_DOUBLE_EQ(interval.lower, 0.0);
  EXPECT_DOUBLE_EQ(interval.upper, 1.0);
}

TEST(WilsonScoreTest, CenterMatchesProportionAndBoundsBracketIt) {
  const obs::WilsonInterval interval = obs::WilsonScore(80, 100);
  EXPECT_DOUBLE_EQ(interval.center, 0.8);
  EXPECT_LT(interval.lower, 0.8);
  EXPECT_GT(interval.upper, 0.8);
  EXPECT_GE(interval.lower, 0.0);
  EXPECT_LE(interval.upper, 1.0);
  // ~95% interval for n=100, p=0.8 is roughly +-0.08.
  EXPECT_NEAR(interval.lower, 0.71, 0.02);
  EXPECT_NEAR(interval.upper, 0.87, 0.02);
}

TEST(WilsonScoreTest, IntervalTightensWithMoreTrials) {
  const obs::WilsonInterval small = obs::WilsonScore(8, 10);
  const obs::WilsonInterval large = obs::WilsonScore(800, 1000);
  EXPECT_LT(large.upper - large.lower, small.upper - small.lower);
}

TEST(WilsonScoreTest, PerfectRecallKeepsUpperAtOne) {
  const obs::WilsonInterval interval = obs::WilsonScore(50, 50);
  EXPECT_DOUBLE_EQ(interval.center, 1.0);
  EXPECT_DOUBLE_EQ(interval.upper, 1.0);
  EXPECT_LT(interval.lower, 1.0);
}

// --- calibration monitor ----------------------------------------------------

TEST(CalibrationMonitorTest, PerfectlyCalibratedPredictionsHaveZeroDrift) {
  obs::CalibrationMonitor monitor(10);
  // Prediction 1.0 -> always completes; prediction 0.0 -> never completes.
  for (int i = 0; i < 50; ++i) {
    monitor.ObserveOutcome(1.0, true);
    monitor.ObserveOutcome(0.0, false);
  }
  EXPECT_EQ(monitor.outcomes(), 100u);
  EXPECT_DOUBLE_EQ(monitor.BrierScore(), 0.0);
  EXPECT_DOUBLE_EQ(monitor.Drift(), 0.0);
}

TEST(CalibrationMonitorTest, MaximallyMiscalibratedDriftApproachesOne) {
  obs::CalibrationMonitor monitor(10);
  for (int i = 0; i < 50; ++i) {
    monitor.ObserveOutcome(1.0, false);  // confident and always wrong
  }
  EXPECT_DOUBLE_EQ(monitor.BrierScore(), 1.0);
  EXPECT_DOUBLE_EQ(monitor.Drift(), 1.0);
}

TEST(CalibrationMonitorTest, BucketsAccumulatePredictedAndObservedRates) {
  obs::CalibrationMonitor monitor(10);
  // Bucket [0.7, 0.8): predicted 0.75, observed completion rate 0.5.
  monitor.ObserveOutcome(0.75, true);
  monitor.ObserveOutcome(0.75, false);
  size_t hot = monitor.num_buckets();
  for (size_t b = 0; b < monitor.num_buckets(); ++b) {
    if (monitor.bucket_count(b) > 0) hot = b;
  }
  ASSERT_LT(hot, monitor.num_buckets());
  EXPECT_EQ(monitor.bucket_count(hot), 2u);
  EXPECT_DOUBLE_EQ(monitor.bucket_predicted(hot), 0.75);
  EXPECT_DOUBLE_EQ(monitor.bucket_observed(hot), 0.5);
  // Brier: ((0.75-1)^2 + (0.75-0)^2) / 2 = (0.0625 + 0.5625) / 2.
  EXPECT_DOUBLE_EQ(monitor.BrierScore(), 0.3125);
  EXPECT_DOUBLE_EQ(monitor.Drift(), 0.25);
}

TEST(CalibrationMonitorTest, ShedPredictionsTrackedSeparately) {
  obs::CalibrationMonitor monitor(10);
  monitor.ObserveShed(0.2);
  monitor.ObserveShed(0.4);
  EXPECT_EQ(monitor.shed_observations(), 2u);
  EXPECT_DOUBLE_EQ(monitor.MeanShedPrediction(), 0.3);
  // Shed victims never contribute to Brier/drift (outcome unobservable).
  EXPECT_EQ(monitor.outcomes(), 0u);
  EXPECT_DOUBLE_EQ(monitor.BrierScore(), 0.0);
}

TEST(CalibrationMonitorTest, SerializeRestoreRoundTripsExports) {
  obs::CalibrationMonitor monitor(10);
  for (int i = 0; i < 25; ++i) {
    monitor.ObserveOutcome(0.1 + 0.03 * i, i % 3 == 0);
    monitor.ObserveShed(0.02 * i);
  }
  ckpt::Sink sink;
  CEP_ASSERT_OK(monitor.SerializeTo(sink));
  const std::string bytes = sink.TakeBytes();
  obs::CalibrationMonitor restored(10);
  ckpt::Source source(bytes);
  CEP_ASSERT_OK(restored.RestoreFrom(source));
  EXPECT_EQ(monitor.ToJson(), restored.ToJson());
  // Canonical bytes: serialize(restore(x)) == x.
  ckpt::Sink again;
  CEP_ASSERT_OK(restored.SerializeTo(again));
  EXPECT_EQ(bytes, again.TakeBytes());
}

// --- θ SLO monitor ----------------------------------------------------------

TEST(ThetaSloMonitorTest, BurnRateIsViolatingFractionOverBudget) {
  obs::ThetaSloMonitor monitor({10, 100}, 0.1);
  // 5 violations in the first 10 events: windowed fraction 0.5, budget 0.1
  // -> burn rate 5.0 over the small window.
  for (int i = 0; i < 10; ++i) monitor.Observe(i % 2 == 0, 1.0);
  EXPECT_EQ(monitor.events(), 10u);
  EXPECT_EQ(monitor.violating_events(), 5u);
  EXPECT_DOUBLE_EQ(monitor.BurnRate(0), 5.0);
  // The large window clamps to the 10 events seen so far: same fraction.
  EXPECT_DOUBLE_EQ(monitor.BurnRate(1), 5.0);
}

TEST(ThetaSloMonitorTest, WindowForgetsOldViolations) {
  obs::ThetaSloMonitor monitor({4, 16}, 0.5);
  for (int i = 0; i < 4; ++i) monitor.Observe(true, 2.0);
  for (int i = 0; i < 4; ++i) monitor.Observe(false, 1.0);
  // Small window now holds only the 4 clean events.
  EXPECT_DOUBLE_EQ(monitor.BurnRate(0), 0.0);
  // The 16-window still remembers all 8: fraction 0.5 / budget 0.5 = 1.
  EXPECT_DOUBLE_EQ(monitor.BurnRate(1), 1.0);
  EXPECT_DOUBLE_EQ(monitor.time_in_violation_us(), 8.0);
}

TEST(ThetaSloMonitorTest, StreaksTrackConsecutiveViolations) {
  obs::ThetaSloMonitor monitor({8}, 0.01);
  monitor.Observe(true, 1.0);
  monitor.Observe(true, 1.0);
  monitor.Observe(false, 1.0);
  monitor.Observe(true, 1.0);
  EXPECT_EQ(monitor.current_streak(), 1u);
  EXPECT_EQ(monitor.longest_streak(), 2u);
}

TEST(ThetaSloMonitorTest, SerializeRestoreRoundTripsExports) {
  obs::ThetaSloMonitor monitor({4, 32}, 0.05);
  for (int i = 0; i < 40; ++i) monitor.Observe(i % 7 == 0, 0.5 * i);
  ckpt::Sink sink;
  CEP_ASSERT_OK(monitor.SerializeTo(sink));
  const std::string bytes = sink.TakeBytes();
  obs::ThetaSloMonitor restored({4, 32}, 0.05);
  ckpt::Source source(bytes);
  CEP_ASSERT_OK(restored.RestoreFrom(source));
  EXPECT_EQ(monitor.ToJson(), restored.ToJson());
  for (size_t w = 0; w < monitor.num_windows(); ++w) {
    EXPECT_DOUBLE_EQ(monitor.BurnRate(w), restored.BurnRate(w)) << w;
  }
}

// --- histogram quantiles (interpolated p50/p90/p99) -------------------------

TEST(HistogramQuantileTest, BoundaryRankIsExactBucketBound) {
  obs::Histogram histogram;  // bounds 1, 2, 4, 8, ...
  histogram.Record(0.5);
  histogram.Record(0.9);  // bucket (0, 1]: 2 samples
  histogram.Record(1.5);
  histogram.Record(1.9);  // bucket (1, 2]: 2 samples
  // Rank p50 = 2 falls exactly on bucket 0's upper edge: the interpolation
  // must return the bound itself, not a value inside either bucket.
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.5), 1.0);
  EXPECT_DOUBLE_EQ(histogram.Quantile(1.0), 2.0);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.25), 0.5);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.75), 1.5);
}

TEST(HistogramQuantileTest, EmptyHistogramIsZero) {
  obs::Histogram histogram;
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.5), 0.0);
}

TEST(HistogramQuantileTest, SingleBucketInterpolatesLinearly) {
  obs::Histogram histogram;
  for (int i = 0; i < 10; ++i) histogram.Record(3.0);  // bucket (2, 4]
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(histogram.Quantile(1.0), 4.0);
}

TEST(HistogramQuantileTest, OverflowBucketClampsToLastBound) {
  obs::HistogramSpec spec;
  spec.num_buckets = 3;  // bounds 1, 2, 4
  obs::Histogram histogram(spec);
  histogram.Record(100.0);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.99), 4.0);
}

TEST(HistogramQuantileTest, PrometheusAndJsonExportQuantiles) {
  obs::Registry registry;
  obs::Histogram* histogram =
      registry.GetHistogram("test_hist", "help", obs::HistogramSpec{});
  for (int i = 0; i < 100; ++i) histogram->Record(static_cast<double>(i));
  const std::string prom = registry.ToPrometheusText();
  EXPECT_NE(prom.find("test_hist{quantile=\"0.5\"}"), std::string::npos);
  EXPECT_NE(prom.find("test_hist{quantile=\"0.99\"}"), std::string::npos);
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p90\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

// --- shadow oracle: fixture -------------------------------------------------

class ShadowOracleTest : public ::testing::Test {
 protected:
  static constexpr int kPairsPerSpan = 8;

  // Query over the bike schema: req -> unlock of the same user within 10 s.
  NfaPtr CompileQuery() {
    return schema_.Compile(
        "PATTERN SEQ(req a, unlock c) WHERE c.uid = a.uid "
        "WITHIN 10 s RETURN w(user = a.uid)");
  }

  /// One block of 8 overlapping req/unlock pairs per shadow span (the span
  /// width defaults to 2x the 10 s window = 20 s): reqs at offsets 0..7 s,
  /// their unlocks at offsets 9..16 s. Every match is span-contained, all
  /// pairs inside a block overlap (so a max_runs cap forces real shedding),
  /// and uids are globally unique so golden truth is one match per pair.
  std::vector<EventPtr> MakeStream(int spans) {
    std::vector<EventPtr> events;
    for (int s = 0; s < spans; ++s) {
      const Timestamp base = static_cast<Timestamp>(s) * 20 * kSecond;
      for (int i = 0; i < kPairsPerSpan; ++i) {
        events.push_back(schema_.Req(base + i * kSecond, /*loc=*/1,
                                     /*uid=*/s * kPairsPerSpan + i));
      }
      for (int i = 0; i < kPairsPerSpan; ++i) {
        events.push_back(schema_.Unlock(base + (9 + i) * kSecond, /*loc=*/9,
                                        /*uid=*/s * kPairsPerSpan + i,
                                        /*bid=*/i));
      }
    }
    return events;
  }

  EngineOptions QualityOptions(size_t sample_every = 1) {
    EngineOptions options;
    options.quality.shadow.sample_every = sample_every;
    options.quality.calibration.enabled = true;
    options.quality.slo.enabled = true;
    return options;
  }

  BikeSchema schema_;
};

TEST_F(ShadowOracleTest, UnshedEngineEstimatesFullRecall) {
  const NfaPtr nfa = CompileQuery();
  Engine engine(nfa, QualityOptions());
  for (const auto& event : MakeStream(5)) {
    CEP_ASSERT_OK(engine.ProcessEvent(event));
  }
  CEP_ASSERT_OK(engine.Flush());
  engine.FinishShadowSpan();
  const ShadowOracle* shadow = engine.shadow();
  ASSERT_NE(shadow, nullptr);
  EXPECT_GT(shadow->spans_completed(), 0u);
  EXPECT_GT(shadow->ghost_matches_total(), 0u);
  EXPECT_EQ(shadow->matched_total(), shadow->ghost_matches_total());
  EXPECT_EQ(shadow->unexpected_total(), 0u);
  EXPECT_DOUBLE_EQ(shadow->LifetimeRecall().center, 1.0);
}

TEST_F(ShadowOracleTest, ShedEngineEstimateTracksTrueRecall) {
  const NfaPtr nfa = CompileQuery();
  const std::vector<EventPtr> events = MakeStream(8);
  const std::vector<Match> golden = RunAll(nfa, EngineOptions{}, events);
  ASSERT_EQ(golden.size(), 64u);

  // A hard run cap forces state shedding: inside each block 8 runs overlap,
  // so most die before their unlock arrives.
  EngineOptions lossy = QualityOptions();
  lossy.max_runs = 2;
  lossy.shed_amount.fraction = 0.5;
  Engine engine(nfa, lossy, std::make_unique<RandomShedder>(7));
  for (const auto& event : events) CEP_ASSERT_OK(engine.ProcessEvent(event));
  CEP_ASSERT_OK(engine.Flush());
  engine.FinishShadowSpan();

  const std::vector<Match> lossy_matches = engine.TakeMatches();
  const double true_recall = static_cast<double>(lossy_matches.size()) /
                             static_cast<double>(golden.size());
  EXPECT_LT(true_recall, 1.0);

  const ShadowOracle* shadow = engine.shadow();
  ASSERT_NE(shadow, nullptr);
  // Every span sampled and every match span-contained: the estimate must
  // equal the true recall exactly, and the primary can never beat the ghost.
  EXPECT_EQ(shadow->unexpected_total(), 0u);
  EXPECT_EQ(shadow->ghost_matches_total(), golden.size());
  EXPECT_DOUBLE_EQ(shadow->LifetimeRecall().center, true_recall);
}

TEST_F(ShadowOracleTest, ShadowDoesNotPerturbPrimaryResults) {
  const NfaPtr nfa = CompileQuery();
  const std::vector<EventPtr> events = MakeStream(6);

  EngineOptions lossy;
  lossy.max_runs = 3;
  lossy.shed_amount.fraction = 0.5;
  Engine bare(nfa, lossy, std::make_unique<RandomShedder>(11));
  for (const auto& event : events) CEP_ASSERT_OK(bare.ProcessEvent(event));
  CEP_ASSERT_OK(bare.Flush());

  EngineOptions shadowed = lossy;
  shadowed.quality.shadow.sample_every = 1;
  shadowed.quality.calibration.enabled = true;
  shadowed.quality.slo.enabled = true;
  Engine quality(nfa, shadowed, std::make_unique<RandomShedder>(11));
  for (const auto& event : events) CEP_ASSERT_OK(quality.ProcessEvent(event));
  CEP_ASSERT_OK(quality.Flush());
  quality.FinishShadowSpan();

  // Exact non-interference: identical matches and identical primary metrics.
  const std::vector<Match> bare_matches = bare.TakeMatches();
  const std::vector<Match> quality_matches = quality.TakeMatches();
  ASSERT_EQ(bare_matches.size(), quality_matches.size());
  for (size_t i = 0; i < bare_matches.size(); ++i) {
    EXPECT_EQ(bare_matches[i].fingerprint, quality_matches[i].fingerprint);
  }
  EXPECT_EQ(bare.metrics().ToString(), quality.metrics().ToString());
}

TEST_F(ShadowOracleTest, SamplingSkipsUnselectedSpans) {
  const NfaPtr nfa = CompileQuery();
  const std::vector<EventPtr> events = MakeStream(12);
  // Seed 3 samples span ids {0, 2, 3, 8} of 0..11 under sample_every = 2
  // (the default seed happens to sample nothing on short streams).
  EngineOptions options = QualityOptions(/*sample_every=*/2);
  options.quality.shadow.seed = 3;
  Engine engine(nfa, options);
  for (const auto& event : events) CEP_ASSERT_OK(engine.ProcessEvent(event));
  CEP_ASSERT_OK(engine.Flush());
  engine.FinishShadowSpan();
  const ShadowOracle* shadow = engine.shadow();
  ASSERT_NE(shadow, nullptr);
  EXPECT_GT(shadow->spans_completed(), 0u);
  EXPECT_LT(shadow->spans_completed(), 12u);
  EXPECT_GT(shadow->events_mirrored(), 0u);
  EXPECT_LT(shadow->events_mirrored(), events.size());
  EXPECT_DOUBLE_EQ(shadow->LifetimeRecall().center, 1.0);
}

// --- determinism across parallelism -----------------------------------------

TEST_F(ShadowOracleTest, QualityExportsByteIdenticalAcrossThreadsAndShards) {
  const NfaPtr nfa = CompileQuery();
  const std::vector<EventPtr> events = MakeStream(8);

  std::string reference;
  for (const size_t threads : {1, 4}) {
    for (const size_t shards : {1, 8}) {
      EngineOptions options = QualityOptions();
      options.max_runs = 4;
      options.shed_amount.fraction = 0.5;
      options.parallel.threads = threads;
      options.parallel.shards = shards;
      options.parallel.min_parallel_runs = 1;
      Engine engine(nfa, options, std::make_unique<RandomShedder>(5));
      for (const auto& event : events) {
        CEP_ASSERT_OK(engine.ProcessEvent(event));
      }
      CEP_ASSERT_OK(engine.Flush());
      engine.FinishShadowSpan();
      obs::Registry registry;
      engine.ExportMetrics(&registry);
      const std::string exported =
          engine.ExportQualityJson() + "\n" + registry.ToPrometheusText();
      if (reference.empty()) {
        reference = exported;
      } else {
        EXPECT_EQ(exported, reference)
            << "threads=" << threads << " shards=" << shards;
      }
    }
  }
}

// --- checkpoint / restore ---------------------------------------------------

TEST_F(ShadowOracleTest, MidSpanCheckpointRestoreIsByteIdentical) {
  const NfaPtr nfa = CompileQuery();
  const std::vector<EventPtr> events = MakeStream(6);
  EngineOptions options = QualityOptions();
  options.max_runs = 2;
  options.shed_amount.fraction = 0.5;

  // Reference: straight run.
  Engine reference(nfa, options, std::make_unique<RandomShedder>(3));
  for (const auto& event : events) {
    CEP_ASSERT_OK(reference.ProcessEvent(event));
  }
  CEP_ASSERT_OK(reference.Flush());
  reference.FinishShadowSpan();

  // Snapshot mid-stream, inside the second span's block (event 24 is that
  // block's 9th event), so an open span with a live ghost engine and
  // buffered fingerprints crosses the checkpoint.
  const size_t cut = 24;
  Engine first(nfa, options, std::make_unique<RandomShedder>(3));
  for (size_t i = 0; i < cut; ++i) {
    CEP_ASSERT_OK(first.ProcessEvent(events[i]));
  }
  CEP_ASSERT_OK_AND_ASSIGN(const std::string snapshot,
                           first.SerializeSnapshot());

  Engine second(nfa, options, std::make_unique<RandomShedder>(3));
  CEP_ASSERT_OK(second.RestoreFromSnapshot(snapshot));
  for (size_t i = cut; i < events.size(); ++i) {
    CEP_ASSERT_OK(second.ProcessEvent(events[i]));
  }
  CEP_ASSERT_OK(second.Flush());
  second.FinishShadowSpan();

  EXPECT_EQ(second.ExportQualityJson(), reference.ExportQualityJson());
  // The snapshot itself must be canonical: serialize(restore(x)) == x.
  Engine third(nfa, options, std::make_unique<RandomShedder>(3));
  CEP_ASSERT_OK(third.RestoreFromSnapshot(snapshot));
  CEP_ASSERT_OK_AND_ASSIGN(const std::string again,
                           third.SerializeSnapshot());
  EXPECT_EQ(snapshot, again);
}

TEST_F(ShadowOracleTest, RestoreRejectsMismatchedShadowConfig) {
  const NfaPtr nfa = CompileQuery();
  Engine writer(nfa, QualityOptions());
  for (const auto& event : MakeStream(2)) {
    CEP_ASSERT_OK(writer.ProcessEvent(event));
  }
  CEP_ASSERT_OK_AND_ASSIGN(const std::string snapshot,
                           writer.SerializeSnapshot());
  Engine reader(nfa, QualityOptions(/*sample_every=*/3));
  EXPECT_FALSE(reader.RestoreFromSnapshot(snapshot).ok());
}

// --- engine-level calibration + SLO wiring ----------------------------------

TEST_F(ShadowOracleTest, CalibrationObservesSblsRunOutcomes) {
  const NfaPtr nfa = CompileQuery();
  EngineOptions options = QualityOptions();
  options.max_runs = 2;
  options.shed_amount.fraction = 0.5;
  StateShedderOptions shedder_options;
  shedder_options.pm_hash.attributes = {{"req", "loc"}};
  Engine engine(nfa, options,
                std::make_unique<StateShedder>(shedder_options,
                                               &schema_.registry));
  for (const auto& event : MakeStream(6)) {
    CEP_ASSERT_OK(engine.ProcessEvent(event));
  }
  CEP_ASSERT_OK(engine.Flush());
  const obs::CalibrationMonitor* calibration = engine.calibration();
  ASSERT_NE(calibration, nullptr);
  EXPECT_GT(calibration->outcomes(), 0u);
  EXPECT_GT(calibration->shed_observations(), 0u);
}

TEST_F(ShadowOracleTest, SloObservesEveryEvent) {
  const NfaPtr nfa = CompileQuery();
  const std::vector<EventPtr> events = MakeStream(2);
  Engine engine(nfa, QualityOptions());
  for (const auto& event : events) CEP_ASSERT_OK(engine.ProcessEvent(event));
  const obs::ThetaSloMonitor* slo = engine.theta_slo();
  ASSERT_NE(slo, nullptr);
  EXPECT_EQ(slo->events(), events.size());
  // θ = 0 disables violation accounting entirely.
  EXPECT_EQ(slo->violating_events(), 0u);
}

}  // namespace
}  // namespace cep
