#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace cep {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.message(), "");
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::ParseError("x").IsParseError());
  EXPECT_TRUE(Status::TypeError("x").IsTypeError());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::IoError("x").IsIoError());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_EQ(Status::NotFound("missing thing").message(), "missing thing");
}

TEST(StatusTest, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::ParseError("bad token").ToString(),
            "ParseError: bad token");
}

TEST(StatusTest, CopyPreservesState) {
  Status a = Status::IoError("disk");
  Status b = a;  // copy ctor
  EXPECT_TRUE(b.IsIoError());
  EXPECT_EQ(b.message(), "disk");
  Status c;
  c = a;  // copy assign
  EXPECT_TRUE(c.IsIoError());
  a = Status::OK();
  EXPECT_TRUE(a.ok());
  EXPECT_TRUE(c.IsIoError()) << "copy must be independent";
}

TEST(StatusTest, MovePreservesState) {
  Status a = Status::Internal("boom");
  Status b = std::move(a);
  EXPECT_TRUE(b.IsInternal());
  EXPECT_EQ(b.message(), "boom");
}

TEST(StatusTest, WithContextPrefixesMessage) {
  const Status st = Status::ParseError("bad char").WithContext("line 3");
  EXPECT_EQ(st.message(), "line 3: bad char");
  EXPECT_TRUE(st.IsParseError());
  EXPECT_TRUE(Status::OK().WithContext("ignored").ok());
}

TEST(StatusTest, EqualityComparesCodesOnly) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IoError("a"));
}

TEST(StatusTest, CodeNamesAreDistinct) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STRNE(StatusCodeName(StatusCode::kParseError),
               StatusCodeName(StatusCode::kTypeError));
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UsesReturnNotOk(int x) {
  CEP_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusMacrosTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(UsesReturnNotOk(1).ok());
  EXPECT_TRUE(UsesReturnNotOk(-1).IsInvalidArgument());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("gone");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r.ValueOr("fallback"), "hello");
}

TEST(ResultTest, ConvertingConstructor) {
  // unique_ptr<Derived> -> Result<unique_ptr<Base>> style conversions.
  Result<std::shared_ptr<const int>> r = std::make_shared<int>(9);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r.ValueOrDie(), 9);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  CEP_ASSIGN_OR_RETURN(int h, Half(x));
  CEP_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultMacrosTest, AssignOrReturnChains) {
  auto ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.ValueOrDie(), 2);
  EXPECT_TRUE(Quarter(6).status().IsInvalidArgument());  // 6/2=3 is odd
  EXPECT_TRUE(Quarter(7).status().IsInvalidArgument());
}

TEST(ResultTest, MoveValueUnsafeMovesOutOwnership) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  std::unique_ptr<int> v = r.MoveValueUnsafe();
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, 5);
}

}  // namespace
}  // namespace cep
