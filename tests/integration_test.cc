#include <gtest/gtest.h>

#include "harness/accuracy.h"
#include "harness/experiment.h"
#include "shedding/random_shedder.h"
#include "shedding/state_shedder.h"
#include "test_util.h"
#include "workload/google_trace.h"
#include "workload/queries.h"

namespace cep {
namespace {

/// End-to-end: synthetic cluster trace -> Q1 -> golden vs SBLS vs RBLS under
/// a hard run cap. This is a miniature of the paper's Table II protocol.
class ClusterIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CEP_ASSERT_OK(GoogleTraceGenerator::RegisterSchemas(&registry_));
    GoogleTraceOptions options;
    options.duration = 8 * kHour;
    options.jobs_per_hour = 120;
    options.burst_multiplier = 6.0;
    options.burst_period = 3 * kHour;
    options.burst_duration = 20 * kMinute;
    options.seed = 17;
    GoogleTraceGenerator generator(options);
    CEP_ASSERT_OK_AND_ASSIGN(events_, generator.Generate(registry_));
    CEP_ASSERT_OK_AND_ASSIGN(q1_, MakeClusterQ1(registry_, 3 * kHour));
  }

  EngineOptions LossyOptions() const {
    EngineOptions options;
    options.max_runs = 150;  // deterministic overload trigger
    options.shed_amount.fraction = 0.25;
    return options;
  }

  StateShedderOptions SblsOptions() const {
    StateShedderOptions options;
    options.pm_hash = q1_.pm_hash;
    options.time_slices = 8;
    options.scoring.weight_contribution = 4.0;
    options.scoring.weight_cost = 1.0;
    return options;
  }

  SchemaRegistry registry_;
  std::vector<EventPtr> events_;
  CannedQuery q1_;
};

TEST_F(ClusterIntegrationTest, GoldenRunProducesMatches) {
  CEP_ASSERT_OK_AND_ASSIGN(
      RunOutcome golden, RunOnce(events_, q1_.nfa, EngineOptions{}, nullptr));
  EXPECT_GT(golden.matches.size(), 10u);
  EXPECT_EQ(golden.metrics.runs_shed, 0u);
  EXPECT_EQ(golden.metrics.events_processed, events_.size());
}

TEST_F(ClusterIntegrationTest, SheddingBoundsStateAndLosesSomeMatches) {
  CEP_ASSERT_OK_AND_ASSIGN(
      RunOutcome golden, RunOnce(events_, q1_.nfa, EngineOptions{}, nullptr));
  CEP_ASSERT_OK_AND_ASSIGN(
      RunOutcome lossy,
      RunOnce(events_, q1_.nfa, LossyOptions(),
              std::make_unique<RandomShedder>(5)));
  EXPECT_GT(lossy.metrics.runs_shed, 0u);
  EXPECT_LE(lossy.metrics.peak_runs, 160u);
  const auto report = CompareMatches(golden.matches, lossy.matches);
  EXPECT_EQ(report.false_positives(), 0u);
  EXPECT_LT(report.recall(), 1.0);
  EXPECT_GT(report.recall(), 0.05);
}

TEST_F(ClusterIntegrationTest, SblsBeatsRblsOnRegularTrace) {
  CEP_ASSERT_OK_AND_ASSIGN(
      RunOutcome golden, RunOnce(events_, q1_.nfa, EngineOptions{}, nullptr));
  ASSERT_GT(golden.matches.size(), 0u);
  double sbls_acc = 0, rbls_acc = 0;
  const int reps = 3;
  for (int rep = 0; rep < reps; ++rep) {
    CEP_ASSERT_OK_AND_ASSIGN(
        RunOutcome sbls,
        RunOnce(events_, q1_.nfa, LossyOptions(),
                std::make_unique<StateShedder>(SblsOptions(), &registry_)));
    CEP_ASSERT_OK_AND_ASSIGN(
        RunOutcome rbls,
        RunOnce(events_, q1_.nfa, LossyOptions(),
                std::make_unique<RandomShedder>(100 + rep)));
    sbls_acc += CompareMatches(golden.matches, sbls.matches).recall();
    rbls_acc += CompareMatches(golden.matches, rbls.matches).recall();
  }
  sbls_acc /= reps;
  rbls_acc /= reps;
  // The paper's headline claim: state-based shedding preserves more matches
  // than random shedding on a stream with attribute regularity.
  EXPECT_GT(sbls_acc, rbls_acc)
      << "SBLS=" << sbls_acc << " RBLS=" << rbls_acc;
}

TEST_F(ClusterIntegrationTest, LatencyTriggeredSheddingEngages) {
  EngineOptions options;
  options.latency_mode = LatencyMode::kVirtualCost;
  options.virtual_ns_per_op = 200.0;
  options.latency_threshold_micros = 10.0;
  options.latency_window_events = 64;
  options.shed_cooldown_events = 64;
  options.shed_amount.fraction = 0.2;
  CEP_ASSERT_OK_AND_ASSIGN(
      RunOutcome outcome,
      RunOnce(events_, q1_.nfa, options, std::make_unique<RandomShedder>(3)));
  EXPECT_GT(outcome.metrics.shed_triggers, 0u);
  EXPECT_GT(outcome.metrics.runs_shed, 0u);
}

TEST_F(ClusterIntegrationTest, Q2EndToEnd) {
  CEP_ASSERT_OK_AND_ASSIGN(CannedQuery q2, MakeClusterQ2(registry_, 3 * kHour));
  CEP_ASSERT_OK_AND_ASSIGN(
      RunOutcome golden, RunOnce(events_, q2.nfa, EngineOptions{}, nullptr));
  EXPECT_GT(golden.matches.size(), 0u);
  // Matches are schedule -> fail -> schedule of the same task.
  for (const auto& m : golden.matches) {
    EXPECT_EQ(m.bindings[0][0]->schema().name(), "schedule");
    EXPECT_EQ(m.bindings[1][0]->schema().name(), "fail");
    EXPECT_EQ(m.bindings[2][0]->schema().name(), "schedule");
    EXPECT_EQ(m.bindings[0][0]->attribute("job_id"),
              m.bindings[2][0]->attribute("job_id"));
  }
}

TEST_F(ClusterIntegrationTest, ComplexEventsCarrySchema) {
  CEP_ASSERT_OK_AND_ASSIGN(
      RunOutcome golden, RunOnce(events_, q1_.nfa, EngineOptions{}, nullptr));
  ASSERT_GT(golden.matches.size(), 0u);
  const EventPtr& out = golden.matches.front().complex_event;
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->schema().name(), "churn");
  EXPECT_FALSE(out->attribute("job").is_null());
  EXPECT_FALSE(out->attribute("machine").is_null());
}

}  // namespace
}  // namespace cep
