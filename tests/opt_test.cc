// Tests for the multi-query optimizer (src/opt/, docs/OPTIMIZER.md): the
// name-free expression canonicalizer, each pass in isolation (DSE constant
// folding + dead-state removal, cross-query CSE interning, shared-prefix
// merging and its refusal cases, pushdown safety gating), and
// MultiEngine::Optimize end to end — per-query match identity against the
// unoptimized fan-out, metric export with duplicate query names, and the
// optimized checkpoint/restore paths including the mode- and
// digest-mismatch errors.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/rng.h"
#include "engine/multi.h"
#include "obs/metrics.h"
#include "opt/expr_canon.h"
#include "opt/fingerprint.h"
#include "opt/ir.h"
#include "opt/pass.h"
#include "opt/pass_manager.h"
#include "opt/passes.h"
#include "opt/shared_preds.h"
#include "test_util.h"

namespace cep {
namespace {

using testing_util::BikeSchema;

constexpr char kLocQuery[] =
    "PATTERN SEQ(req a, unlock c) WHERE a.loc = 3, c.uid = a.uid "
    "WITHIN 5 min RETURN m(loc = a.loc, user = a.uid)";

std::vector<EventPtr> MakeStream(BikeSchema* schema, int num_events) {
  Rng rng(0x0b75c0de);
  std::vector<EventPtr> events;
  events.reserve(num_events);
  Timestamp ts = 0;
  for (int i = 0; i < num_events; ++i) {
    ts += 1 + static_cast<Duration>(rng.NextBounded(30 * kSecond));
    const auto loc = static_cast<int64_t>(rng.NextBounded(6));
    const auto uid = static_cast<int64_t>(rng.NextBounded(4));
    switch (rng.NextBounded(3)) {
      case 0:
        events.push_back(schema->Req(ts, loc, uid));
        break;
      case 1:
        events.push_back(
            schema->Avail(ts, loc, static_cast<int64_t>(rng.NextBounded(9))));
        break;
      default:
        events.push_back(schema->Unlock(ts, loc, uid, 1));
        break;
    }
  }
  return events;
}

/// First take edge for `type` anywhere in the automaton (the tests' queries
/// have exactly one per type).
const Edge* FindTakeEdge(const Nfa& nfa, EventTypeId type) {
  for (const State& state : nfa.states()) {
    for (const Edge& edge : state.edges) {
      if (edge.kind != EdgeKind::kKill && edge.event_type == type) {
        return &edge;
      }
    }
  }
  return nullptr;
}

opt::QueryUnit MakeUnit(BikeSchema* schema, const std::string& text,
                        size_t index, uint64_t fingerprint = 1) {
  opt::QueryUnit unit;
  unit.query_index = index;
  unit.leader = index;
  unit.nfa = schema->Compile(text);
  EXPECT_NE(unit.nfa, nullptr);
  unit.name = unit.nfa->query().name;
  unit.config_fingerprint = fingerprint;
  unit.mergeable = true;
  return unit;
}

opt::MultiQueryIr BuildIr(BikeSchema* schema,
                          const std::vector<std::string>& texts) {
  opt::MultiQueryIr ir;
  for (const std::string& text : texts) {
    ir.units.push_back(MakeUnit(schema, text, ir.units.size()));
  }
  return ir;
}

Status RunPipeline(opt::MultiQueryIr* ir, const opt::OptOptions& options = {}) {
  opt::PassManager pipeline = opt::MakeDefaultPipeline(options);
  return pipeline.Run(ir, false, nullptr);
}

// --- expression canonicalization -------------------------------------------

TEST(ExprCanonTest, CanonicalFormIsNameFree) {
  BikeSchema schema;
  const NfaPtr a = schema.Compile(
      "PATTERN SEQ(req a, unlock c) WHERE a.loc = 3, c.uid = a.uid "
      "WITHIN 5 min RETURN m(loc = a.loc)");
  const NfaPtr b = schema.Compile(
      "PATTERN SEQ(req x, unlock y) WHERE x.loc = 3, y.uid = x.uid "
      "WITHIN 5 min RETURN m(loc = x.loc)");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  const EventTypeId req = schema.registry.FindType("req");
  const Edge* edge_a = FindTakeEdge(*a, req);
  const Edge* edge_b = FindTakeEdge(*b, req);
  ASSERT_NE(edge_a, nullptr);
  ASSERT_NE(edge_b, nullptr);
  ASSERT_EQ(edge_a->predicates.size(), 1u);
  ASSERT_EQ(edge_b->predicates.size(), 1u);
  // `a.loc = 3` and `x.loc = 3` do the same work; normalizing the bound
  // variable makes the canonical strings identical across the two queries.
  EXPECT_EQ(
      opt::CanonicalExprString(*edge_a->predicates[0], edge_a->var_index),
      opt::CanonicalExprString(*edge_b->predicates[0], edge_b->var_index));
}

TEST(ExprCanonTest, IsEventOnlyDistinguishesBindingDependence) {
  BikeSchema schema;
  const NfaPtr nfa = schema.Compile(kLocQuery);
  ASSERT_NE(nfa, nullptr);
  const Edge* req_edge =
      FindTakeEdge(*nfa, schema.registry.FindType("req"));
  const Edge* unlock_edge =
      FindTakeEdge(*nfa, schema.registry.FindType("unlock"));
  ASSERT_NE(req_edge, nullptr);
  ASSERT_NE(unlock_edge, nullptr);
  ASSERT_EQ(req_edge->predicates.size(), 1u);
  ASSERT_EQ(unlock_edge->predicates.size(), 1u);
  // `a.loc = 3` reads only the candidate event; `c.uid = a.uid` reaches back
  // into the run's binding for `a`, so it can never be a shared predicate.
  EXPECT_TRUE(opt::IsEventOnly(*req_edge->predicates[0], req_edge->var_index));
  EXPECT_FALSE(
      opt::IsEventOnly(*unlock_edge->predicates[0], unlock_edge->var_index));
  EXPECT_FALSE(opt::IsConstant(*req_edge->predicates[0]));
}

// --- dead-state / dead-edge elimination ------------------------------------

TEST(DsePassTest, FoldsTautologicalPredicate) {
  BikeSchema schema;
  opt::MultiQueryIr ir = BuildIr(
      &schema, {"PATTERN SEQ(req a, unlock c) WHERE 1 = 1, c.uid = a.uid "
                "WITHIN 5 min RETURN m(loc = a.loc)"});
  CEP_ASSERT_OK(opt::MakeDsePass()->Run(&ir));
  EXPECT_EQ(ir.stats.preds_folded, 1u);
  for (const State& state : ir.units[0].nfa->states()) {
    for (const Edge& edge : state.edges) {
      for (const Expr* pred : edge.predicates) {
        EXPECT_FALSE(opt::IsConstant(*pred)) << "tautology survived DSE";
      }
    }
  }
}

TEST(DsePassTest, FalseConstantKillsEdgeAndUnreachableStates) {
  BikeSchema schema;
  opt::MultiQueryIr ir = BuildIr(
      &schema, {"PATTERN SEQ(req a, unlock c) WHERE 1 = 2, c.uid = a.uid "
                "WITHIN 5 min RETURN m(loc = a.loc)"});
  const size_t states_before = ir.units[0].nfa->num_states();
  CEP_ASSERT_OK(opt::MakeDsePass()->Run(&ir));
  EXPECT_GE(ir.stats.edges_eliminated, 1u);
  EXPECT_GE(ir.stats.states_eliminated, 1u);
  EXPECT_LT(ir.units[0].nfa->num_states(), states_before);
  // The start state always survives, even for an unsatisfiable query.
  EXPECT_GE(ir.units[0].nfa->num_states(), 1u);
}

// --- cross-query CSE --------------------------------------------------------

TEST(CsePassTest, InternsStructurallyEqualPredicatesAcrossQueries) {
  BikeSchema schema;
  opt::MultiQueryIr ir = BuildIr(
      &schema,
      {"PATTERN SEQ(req a, unlock c) WHERE a.loc < 5, c.uid = a.uid "
       "WITHIN 5 min RETURN m(loc = a.loc)",
       "PATTERN SEQ(req x, unlock y) WHERE x.loc < 5, y.bid = 1 "
       "WITHIN 9 min RETURN other(loc = x.loc)"});
  CEP_ASSERT_OK(opt::MakeCsePass()->Run(&ir));
  // `a.loc < 5` and `x.loc < 5` intern to one id; `y.bid = 1` is its own.
  // `c.uid = a.uid` is binding-dependent and never enters the table.
  EXPECT_EQ(ir.preds.size(), 2u);
  EXPECT_GE(ir.preds.deduped(), 1u);
  const EventTypeId req = schema.registry.FindType("req");
  const Edge* e0 = FindTakeEdge(*ir.units[0].nfa, req);
  const Edge* e1 = FindTakeEdge(*ir.units[1].nfa, req);
  ASSERT_NE(e0, nullptr);
  ASSERT_NE(e1, nullptr);
  ASSERT_EQ(e0->shared_pred_ids.size(), 1u);
  ASSERT_EQ(e1->shared_pred_ids.size(), 1u);
  EXPECT_EQ(e0->shared_pred_ids[0], e1->shared_pred_ids[0]);
  EXPECT_GE(e0->shared_pred_ids[0], 0);

  const Edge* unlock0 =
      FindTakeEdge(*ir.units[0].nfa, schema.registry.FindType("unlock"));
  ASSERT_NE(unlock0, nullptr);
  ASSERT_EQ(unlock0->shared_pred_ids.size(), 1u);
  EXPECT_EQ(unlock0->shared_pred_ids[0], -1) << "binding-dependent predicate "
                                                "must stay local";
}

TEST(SharedPredTableTest, VerdictRowsMatchDirectEvaluation) {
  BikeSchema schema;
  opt::MultiQueryIr ir = BuildIr(&schema, {kLocQuery});
  CEP_ASSERT_OK(opt::MakeCsePass()->Run(&ir));
  ASSERT_EQ(ir.preds.size(), 1u);
  const EventPtr hit = schema.Req(1000, /*loc=*/3, /*uid=*/1);
  const EventPtr miss = schema.Req(2000, /*loc=*/4, /*uid=*/1);
  ir.preds.BeginEvent(*hit);
  const opt::SharedPredRow* row = ir.preds.RowFor(hit.get());
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->verdicts[0], opt::SharedPredTable::kTrue);
  ir.preds.BeginEvent(*miss);
  row = ir.preds.RowFor(miss.get());
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->verdicts[0], opt::SharedPredTable::kFalse);
  // The old event's row is gone after the next Begin call.
  EXPECT_EQ(ir.preds.RowFor(hit.get()), nullptr);
}

// --- shared-prefix merging --------------------------------------------------

TEST(PrefixMergeTest, IdenticalQueriesMergeDifferentReturnsDoNot) {
  BikeSchema schema;
  opt::MultiQueryIr ir = BuildIr(
      &schema, {kLocQuery, kLocQuery,
                // Same automaton shape but a different complex-event name:
                // consumers can tell the outputs apart, so no merge.
                "PATTERN SEQ(req a, unlock c) WHERE a.loc = 3, c.uid = a.uid "
                "WITHIN 5 min RETURN other(loc = a.loc, user = a.uid)"});
  CEP_ASSERT_OK(RunPipeline(&ir));
  EXPECT_EQ(ir.units[0].leader, 0u);
  EXPECT_EQ(ir.units[1].leader, 0u);
  EXPECT_EQ(ir.units[2].leader, 2u);
  EXPECT_EQ(ir.stats.queries_merged, 1u);
  EXPECT_EQ(ir.stats.merge_groups, 1u);
  EXPECT_EQ(opt::UnitMergeCanon(ir.units[0]), opt::UnitMergeCanon(ir.units[1]));
  EXPECT_NE(opt::UnitMergeCanon(ir.units[0]), opt::UnitMergeCanon(ir.units[2]));
}

TEST(PrefixMergeTest, ConfigAndMergeabilityBlockMerging) {
  BikeSchema schema;
  {
    // Same text, different engine configuration: results could diverge
    // (e.g. different selection strategy), so the units must not merge.
    opt::MultiQueryIr ir;
    ir.units.push_back(MakeUnit(&schema, kLocQuery, 0, /*fingerprint=*/1));
    ir.units.push_back(MakeUnit(&schema, kLocQuery, 1, /*fingerprint=*/2));
    CEP_ASSERT_OK(RunPipeline(&ir));
    EXPECT_EQ(ir.units[1].leader, 1u);
    EXPECT_EQ(ir.stats.queries_merged, 0u);
  }
  {
    // mergeable=false (MultiEngine clears it for shedder-bearing queries:
    // per-query shedder state cannot be shared).
    opt::MultiQueryIr ir = BuildIr(&schema, {kLocQuery, kLocQuery});
    ir.units[1].mergeable = false;
    CEP_ASSERT_OK(RunPipeline(&ir));
    EXPECT_EQ(ir.units[1].leader, 1u);
    EXPECT_EQ(ir.stats.queries_merged, 0u);
  }
}

// --- predicate pushdown -----------------------------------------------------

TEST(PushdownTest, DropsInertTypesAndGuardMisses) {
  BikeSchema schema;
  opt::MultiQueryIr ir = BuildIr(&schema, {kLocQuery});
  CEP_ASSERT_OK(RunPipeline(&ir));
  ASSERT_TRUE(ir.prefilter.safe);
  // No query consumes `avail` at all.
  const EventPtr avail = schema.Avail(1000, 3, 7);
  EXPECT_TRUE(ir.prefilter.ShouldDrop(*avail, ir.preds));
  // A req that fails every query's guard can never matter...
  const EventPtr miss = schema.Req(1000, /*loc=*/4, /*uid=*/1);
  EXPECT_TRUE(ir.prefilter.ShouldDrop(*miss, ir.preds));
  // ...but one that satisfies a guard must be kept, as must unlocks (their
  // edge predicate is binding-dependent, so ingestion cannot decide).
  const EventPtr hit = schema.Req(1000, /*loc=*/3, /*uid=*/1);
  EXPECT_FALSE(ir.prefilter.ShouldDrop(*hit, ir.preds));
  const EventPtr unlock = schema.Unlock(1000, 3, 1, 1);
  EXPECT_FALSE(ir.prefilter.ShouldDrop(*unlock, ir.preds));
}

TEST(PushdownTest, EngineSideFeaturesDisableThePrefilter) {
  BikeSchema schema;
  for (const int feature : {0, 1, 2, 3}) {
    opt::MultiQueryIr ir = BuildIr(&schema, {kLocQuery});
    switch (feature) {
      case 0: ir.units[0].has_shedder = true; break;
      case 1: ir.units[0].has_degradation = true; break;
      case 2: ir.units[0].has_latency_threshold = true; break;
      case 3: ir.units[0].selection = SelectionStrategy::kStrictContiguity;
              break;
    }
    CEP_ASSERT_OK(RunPipeline(&ir));
    EXPECT_FALSE(ir.prefilter.safe) << "feature " << feature;
    EXPECT_FALSE(ir.prefilter.ShouldDrop(*schema.Avail(1000, 3, 7), ir.preds))
        << "feature " << feature;
  }
}

// --- MultiEngine::Optimize end to end ---------------------------------------

class MultiEngineOptTest : public ::testing::Test {
 protected:
  /// The five-query panel: 0/1 identical (merge), 2 shares the `a.loc = 3`
  /// guard (CSE), 3 watches another zone, 4 has a different window.
  std::vector<std::string> Panel() const {
    return {kLocQuery, kLocQuery,
            "PATTERN SEQ(req a, unlock c) WHERE a.loc = 3, c.bid = 1 "
            "WITHIN 7 min RETURN near(loc = a.loc)",
            "PATTERN SEQ(req a, unlock c) WHERE a.loc = 1, c.uid = a.uid "
            "WITHIN 5 min RETURN m(loc = a.loc, user = a.uid)",
            "PATTERN SEQ(req a, unlock c) WHERE a.loc = 3, c.uid = a.uid "
            "WITHIN 2 min RETURN m(loc = a.loc, user = a.uid)"};
  }

  void Build(MultiEngine* multi, bool optimize) {
    for (const std::string& text : Panel()) {
      multi->AddQuery(schema_.Compile(text), Options());
    }
    if (optimize) CEP_ASSERT_OK(multi->Optimize());
  }

  static EngineOptions Options() {
    EngineOptions options;
    options.latency_mode = LatencyMode::kVirtualCost;
    return options;
  }

  static std::vector<std::vector<uint64_t>> Fingerprints(
      const MultiEngine& multi) {
    std::vector<std::vector<uint64_t>> out(multi.num_queries());
    for (size_t i = 0; i < multi.num_queries(); ++i) {
      for (const Match& m : multi.engine(i).matches()) {
        out[i].push_back(m.fingerprint);
      }
    }
    return out;
  }

  BikeSchema schema_;
};

TEST_F(MultiEngineOptTest, MatchesIdenticalToUnoptimizedFanOut) {
  const std::vector<EventPtr> events = MakeStream(&schema_, 600);
  MultiEngine plain;
  Build(&plain, false);
  MultiEngine optimized;
  Build(&optimized, true);
  EXPECT_EQ(plain.num_engines(), 5u);
  EXPECT_EQ(optimized.num_engines(), 4u) << "queries 0 and 1 should share";
  ASSERT_NE(optimized.ir(), nullptr);
  EXPECT_GT(optimized.ir()->preds.size(), 0u);
  EXPECT_TRUE(optimized.ir()->prefilter.safe);
  for (const EventPtr& event : events) {
    CEP_ASSERT_OK(plain.ProcessEvent(event));
    CEP_ASSERT_OK(optimized.ProcessEvent(event));
  }
  const auto expected = Fingerprints(plain);
  EXPECT_EQ(Fingerprints(optimized), expected);
  // The panel produces matches at all (otherwise this test proves nothing).
  size_t total = 0;
  for (const auto& per_query : expected) total += per_query.size();
  EXPECT_GT(total, 0u);
  EXPECT_GT(optimized.events_prefiltered(), 0u);
}

TEST_F(MultiEngineOptTest, OptimizeGuardsAgainstMisuse) {
  MultiEngine empty;
  EXPECT_TRUE(empty.Optimize().IsInvalidArgument());

  MultiEngine twice;
  Build(&twice, true);
  EXPECT_TRUE(twice.Optimize().IsInvalidArgument());

  MultiEngine started;
  Build(&started, false);
  CEP_ASSERT_OK(started.OfferEvent(schema_.Req(1000, 3, 1)));
  EXPECT_TRUE(started.Optimize().IsInvalidArgument());
}

TEST_F(MultiEngineOptTest, DuplicateQueryNamesExportUniqueMetricLabels) {
  MultiEngine multi;
  Build(&multi, true);  // queries 0/1/3/4 all RETURN "m"
  obs::Registry registry;
  multi.ExportMetrics(&registry);
  const std::string text = registry.ToPrometheusText();
  // Duplicated names get a stable "#<query-index>" suffix; unique names
  // stay unsuffixed.
  EXPECT_NE(text.find("query=\"m#0\""), std::string::npos) << text;
  EXPECT_NE(text.find("query=\"m#1\""), std::string::npos);
  EXPECT_NE(text.find("query=\"m#3\""), std::string::npos);
  EXPECT_NE(text.find("query=\"m#4\""), std::string::npos);
  EXPECT_NE(text.find("query=\"near\""), std::string::npos);
  EXPECT_EQ(text.find("query=\"m\""), std::string::npos);
  // The optimizer family is exported alongside.
  EXPECT_NE(text.find("cep_opt_queries"), std::string::npos);
  EXPECT_NE(text.find("cep_opt_engines"), std::string::npos);
  EXPECT_NE(text.find("cep_opt_queries_merged_total"), std::string::npos);
}

TEST_F(MultiEngineOptTest, OptimizedCheckpointRoundTrip) {
  const std::vector<EventPtr> events = MakeStream(&schema_, 400);

  // OfferEvent, not ProcessEvent: only the consuming API advances the
  // stream offset the snapshot records (restore skips exactly that many).
  MultiEngine straight;
  Build(&straight, true);
  for (const EventPtr& event : events) {
    CEP_ASSERT_OK(straight.OfferEvent(event));
  }

  MultiEngine writer;
  Build(&writer, true);
  std::string snapshot;
  for (size_t i = 0; i < events.size(); ++i) {
    if (i == events.size() / 2) {
      CEP_ASSERT_OK_AND_ASSIGN(snapshot, writer.SerializeSnapshot());
    }
    CEP_ASSERT_OK(writer.OfferEvent(events[i]));
  }

  MultiEngine resumed;
  Build(&resumed, true);
  CEP_ASSERT_OK(resumed.RestoreFromSnapshot(snapshot));
  EXPECT_EQ(resumed.stream_offset(), events.size() / 2);
  for (size_t i = events.size() / 2; i < events.size(); ++i) {
    CEP_ASSERT_OK(resumed.OfferEvent(events[i]));
  }
  EXPECT_EQ(Fingerprints(resumed), Fingerprints(straight));
  EXPECT_EQ(resumed.events_prefiltered(), straight.events_prefiltered());
}

TEST_F(MultiEngineOptTest, SnapshotModeMismatchIsTypedError) {
  MultiEngine optimized;
  Build(&optimized, true);
  CEP_ASSERT_OK_AND_ASSIGN(const std::string opt_snapshot,
                           optimized.SerializeSnapshot());

  MultiEngine plain;
  Build(&plain, false);
  const Status into_plain = plain.RestoreFromSnapshot(opt_snapshot);
  EXPECT_TRUE(into_plain.IsInvalidArgument());
  EXPECT_NE(into_plain.ToString().find("Optimize"), std::string::npos)
      << into_plain.ToString();

  CEP_ASSERT_OK_AND_ASSIGN(const std::string plain_snapshot,
                           plain.SerializeSnapshot());
  MultiEngine optimized2;
  Build(&optimized2, true);
  EXPECT_TRUE(
      optimized2.RestoreFromSnapshot(plain_snapshot).IsInvalidArgument());
}

TEST_F(MultiEngineOptTest, DigestMismatchRefusesForeignLayout) {
  // [X, X, Y] and [X, Y, Y] rebuild to the same physical engine sequence
  // (X-leader, Y-leader) with the same query count, so the per-engine
  // restores succeed — only the embedded optimizer digest (which hashes the
  // merge mapping) can tell the layouts apart.
  const std::string x = kLocQuery;
  const std::string y =
      "PATTERN SEQ(req a, unlock c) WHERE a.loc = 1, c.uid = a.uid "
      "WITHIN 5 min RETURN m(loc = a.loc, user = a.uid)";
  MultiEngine xxy;
  for (const std::string& text : {x, x, y}) {
    xxy.AddQuery(schema_.Compile(text), Options());
  }
  CEP_ASSERT_OK(xxy.Optimize());
  CEP_ASSERT_OK_AND_ASSIGN(const std::string snapshot,
                           xxy.SerializeSnapshot());

  MultiEngine xyy;
  for (const std::string& text : {x, y, y}) {
    xyy.AddQuery(schema_.Compile(text), Options());
  }
  CEP_ASSERT_OK(xyy.Optimize());
  ASSERT_EQ(xyy.num_engines(), 2u);
  const Status restored = xyy.RestoreFromSnapshot(snapshot);
  EXPECT_TRUE(restored.IsInvalidArgument());
  EXPECT_NE(restored.ToString().find("digest"), std::string::npos)
      << restored.ToString();
}

TEST(FingerprintTest, ExcludesExecutionLayoutOptions) {
  EngineOptions base;
  const uint64_t digest = opt::FingerprintEngineOptions(base);

  // Thread/shard/batch/checkpoint settings never change results or snapshot
  // bytes, so they must not affect merge eligibility.
  EngineOptions threaded = base;
  threaded.parallel.shards = 8;
  threaded.parallel.min_parallel_runs = 2;
  threaded.batch_size = 64;
  EXPECT_EQ(opt::FingerprintEngineOptions(threaded), digest);

  // Semantics-bearing options must.
  EngineOptions strict = base;
  strict.selection = SelectionStrategy::kStrictContiguity;
  EXPECT_NE(opt::FingerprintEngineOptions(strict), digest);
  EngineOptions theta = base;
  theta.latency_threshold_micros = 50.0;
  EXPECT_NE(opt::FingerprintEngineOptions(theta), digest);
}

}  // namespace
}  // namespace cep
