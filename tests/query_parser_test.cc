#include "query/parser.h"

#include <gtest/gtest.h>

namespace cep {
namespace {

TEST(ParseDurationTest, Units) {
  EXPECT_EQ(ParseDuration("150 us").ValueOrDie(), 150 * kMicrosecond);
  EXPECT_EQ(ParseDuration("20 ms").ValueOrDie(), 20 * kMillisecond);
  EXPECT_EQ(ParseDuration("3 sec").ValueOrDie(), 3 * kSecond);
  EXPECT_EQ(ParseDuration("10 min").ValueOrDie(), 10 * kMinute);
  EXPECT_EQ(ParseDuration("5 hours").ValueOrDie(), 5 * kHour);
  EXPECT_EQ(ParseDuration("1 hour").ValueOrDie(), kHour);
  EXPECT_EQ(ParseDuration("2 h").ValueOrDie(), 2 * kHour);
  EXPECT_EQ(ParseDuration("1.5 min").ValueOrDie(), 90 * kSecond);
}

TEST(ParseDurationTest, Rejections) {
  EXPECT_TRUE(ParseDuration("min").status().IsParseError());
  EXPECT_TRUE(ParseDuration("3 lightyears").status().IsParseError());
  EXPECT_TRUE(ParseDuration("-5 min").status().IsParseError());
  EXPECT_TRUE(ParseDuration("0 min").status().IsOutOfRange());
  EXPECT_TRUE(ParseDuration("3 min extra").status().IsParseError());
}

TEST(ParseQueryTest, PaperExampleOne) {
  auto result = ParseQuery(
      "PATTERN SEQ (req a, avail+ b[], unlock c) "
      "WHERE diff(b[i].loc, a.loc) < 5, COUNT(b[]) > 5, "
      "diff(c.loc, a.loc) > 5, c.uid = a.uid "
      "WITHIN 10 min "
      "RETURN warning(a.loc, b[i].loc)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const ParsedQuery& q = result.ValueOrDie();
  ASSERT_EQ(q.pattern.size(), 3u);
  EXPECT_EQ(q.pattern[0].event_type, "req");
  EXPECT_EQ(q.pattern[0].name, "a");
  EXPECT_EQ(q.pattern[0].kind, VariableKind::kSingle);
  EXPECT_EQ(q.pattern[1].event_type, "avail");
  EXPECT_EQ(q.pattern[1].kind, VariableKind::kKleene);
  EXPECT_EQ(q.pattern[2].kind, VariableKind::kSingle);
  EXPECT_EQ(q.predicates.size(), 4u);
  EXPECT_EQ(q.window, 10 * kMinute);
  EXPECT_EQ(q.return_spec.event_name, "warning");
  ASSERT_EQ(q.return_spec.items.size(), 2u);
  EXPECT_EQ(q.return_spec.items[0].name, "v0");
  EXPECT_EQ(q.return_spec.items[1].name, "v1");
}

TEST(ParseQueryTest, NegationWithNotAndBang) {
  auto a = ParseQuery("PATTERN SEQ(req a, NOT unlock x, req b) WITHIN 1 min");
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  EXPECT_EQ(a.ValueOrDie().pattern[1].kind, VariableKind::kNegated);
  auto b = ParseQuery("PATTERN SEQ(req a, ! unlock x, req b) WITHIN 1 min");
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(b.ValueOrDie().pattern[1].kind, VariableKind::kNegated);
}

TEST(ParseQueryTest, NamedReturnItems) {
  auto result = ParseQuery(
      "PATTERN SEQ(req a) WITHIN 1 min RETURN out(loc = a.loc, two = 1 + 1)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const auto& items = result.ValueOrDie().return_spec.items;
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0].name, "loc");
  EXPECT_EQ(items[1].name, "two");
}

TEST(ParseQueryTest, WhereIsOptional) {
  auto result = ParseQuery("PATTERN SEQ(req a, unlock b) WITHIN 5 sec");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.ValueOrDie().predicates.empty());
  EXPECT_TRUE(result.ValueOrDie().return_spec.empty());
}

TEST(ParseQueryTest, KeywordsAreCaseInsensitive) {
  auto result =
      ParseQuery("pattern seq(req a) where a.loc > 1 within 1 min");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
}

TEST(ParseQueryTest, CommentsInsideQuery) {
  auto result = ParseQuery(
      "PATTERN SEQ(req a) -- the pattern\n"
      "WHERE a.loc > 0 -- a filter\n"
      "WITHIN 1 min");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
}

TEST(ParseQueryTest, KleeneIndexVariants) {
  auto result = ParseQuery(
      "PATTERN SEQ(req a, avail+ b[]) "
      "WHERE b[i].loc > 0, b[i-1].loc > 0, b[first].loc > 0, "
      "b[last].loc > 0, COUNT(b) > 1 "
      "WITHIN 1 min");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.ValueOrDie().predicates.size(), 5u);
}

TEST(ParseQueryTest, RejectsBadKleeneIndex) {
  EXPECT_TRUE(ParseQuery("PATTERN SEQ(avail+ b[]) WHERE b[i-2].loc > 0 "
                         "WITHIN 1 min")
                  .status()
                  .IsParseError());
  EXPECT_TRUE(ParseQuery("PATTERN SEQ(avail+ b[]) WHERE b[5].loc > 0 "
                         "WITHIN 1 min")
                  .status()
                  .IsParseError());
}

TEST(ParseQueryTest, RejectsMissingClauses) {
  EXPECT_TRUE(ParseQuery("SEQ(req a) WITHIN 1 min").status().IsParseError());
  EXPECT_TRUE(ParseQuery("PATTERN SEQ(req a)").status().IsParseError());
  EXPECT_TRUE(ParseQuery("PATTERN SEQ() WITHIN 1 min").status().IsParseError());
}

TEST(ParseQueryTest, RejectsTrailingInput) {
  EXPECT_TRUE(ParseQuery("PATTERN SEQ(req a) WITHIN 1 min garbage garbage")
                  .status()
                  .IsParseError());
}

TEST(ParseQueryTest, RejectsNegatedKleene) {
  EXPECT_TRUE(ParseQuery("PATTERN SEQ(req a, NOT avail+ b[]) WITHIN 1 min")
                  .status()
                  .IsParseError());
}

TEST(ParseQueryTest, RejectsBracketsOnSingleVariable) {
  EXPECT_TRUE(ParseQuery("PATTERN SEQ(req a[]) WITHIN 1 min")
                  .status()
                  .IsParseError());
}

TEST(ParseQueryTest, ToStringRoundTrip) {
  const std::string text =
      "PATTERN SEQ(req a, avail+ b[], unlock c) "
      "WHERE (diff(b[i].loc, a.loc) < 5), (c.uid = a.uid) "
      "WITHIN 10 min "
      "RETURN warning(loc = a.loc)";
  auto first = ParseQuery(text);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  const std::string printed = first.ValueOrDie().ToString();
  auto second = ParseQuery(printed);
  ASSERT_TRUE(second.ok()) << second.status().ToString() << "\n" << printed;
  EXPECT_EQ(second.ValueOrDie().ToString(), printed);
}

TEST(ParseQueryTest, ToStringRoundTripEmbeddedQuotes) {
  // String literals render with the lexer's doubled-quote escape; an
  // embedded quote used to break the parse->print->parse fixpoint (the
  // reprinted literal terminated early).
  const std::string text =
      "PATTERN SEQ(req a) WHERE a.tag = 'it''s ''quoted''' "
      "WITHIN 1 min RETURN o(x = a.loc)";
  auto first = ParseQuery(text);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  const std::string printed = first.ValueOrDie().ToString();
  auto second = ParseQuery(printed);
  ASSERT_TRUE(second.ok()) << second.status().ToString() << "\n" << printed;
  EXPECT_EQ(second.ValueOrDie().ToString(), printed);
  EXPECT_NE(printed.find("it''s"), std::string::npos) << printed;
}

TEST(ParseQueryTest, ToStringRoundTripDoubleLiterals) {
  // Doubles print in shortest round-trip form: reparsing must recover the
  // exact bits (0.1 used to reprint as a truncated fixed-point rendering
  // that parsed back to a different value).
  const std::string text =
      "PATTERN SEQ(req a) "
      "WHERE a.score > 0.1, a.score < 12345.678901234567, a.score != 1e-9 "
      "WITHIN 1 min RETURN o(x = a.loc)";
  auto first = ParseQuery(text);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  const std::string printed = first.ValueOrDie().ToString();
  auto second = ParseQuery(printed);
  ASSERT_TRUE(second.ok()) << second.status().ToString() << "\n" << printed;
  const std::string reprinted = second.ValueOrDie().ToString();
  EXPECT_EQ(reprinted, printed);
  auto third = ParseQuery(reprinted);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third.ValueOrDie().ToString(), reprinted);
}

TEST(ParseQueryTest, ToStringRoundTripNestedBooleanPredicates) {
  // Audit for nested AND/OR/NOT: the printer parenthesizes every binary
  // and unary node, so operator precedence (OR < AND < NOT < comparison)
  // can never be re-associated by a reparse. Each form must reach a
  // parse -> print -> parse fixpoint.
  const char* wheres[] = {
      "a.x = 1 OR a.y = 2 AND NOT a.z = 3",
      "(a.x = 1 OR a.y = 2) AND NOT (a.z = 3 OR a.w = 4)",
      "NOT NOT a.x = 1",
      "NOT (a.x = 1 AND (a.y = 2 OR NOT a.z = 3))",
      "a.x = 1 AND a.y = 2 AND a.z = 3 OR a.w = 4",
      "NOT true OR NOT (false AND a.x = 1)",
      "NOT a.x < 3 AND -(a.y) > -2",
  };
  for (const char* where : wheres) {
    const std::string text = std::string("PATTERN SEQ(t a) WHERE ") + where +
                             " WITHIN 1 min RETURN o(v = a.x)";
    auto first = ParseQuery(text);
    ASSERT_TRUE(first.ok()) << where << "\n" << first.status().ToString();
    const std::string printed = first.ValueOrDie().ToString();
    auto second = ParseQuery(printed);
    ASSERT_TRUE(second.ok())
        << where << "\n" << printed << "\n" << second.status().ToString();
    EXPECT_EQ(second.ValueOrDie().ToString(), printed) << where;
  }
}

TEST(ParseQueryTest, CopySemanticsOfParsedQuery) {
  auto result = ParseQuery(
      "PATTERN SEQ(req a) WHERE a.loc > 1 WITHIN 1 min RETURN o(x = a.loc)");
  ASSERT_TRUE(result.ok());
  ParsedQuery original = result.MoveValueUnsafe();
  ParsedQuery copy = original;  // deep copy of predicates and return items
  EXPECT_EQ(copy.ToString(), original.ToString());
  EXPECT_NE(copy.predicates[0].get(), original.predicates[0].get());
}

TEST(ParseExpressionTest, StandaloneExpressions) {
  EXPECT_TRUE(ParseExpression("1 + 2").ok());
  EXPECT_TRUE(ParseExpression("a.x < b.y AND c.z = 1").ok());
  EXPECT_TRUE(ParseExpression("1 +").status().IsParseError());
  EXPECT_TRUE(ParseExpression("").status().IsParseError());
  EXPECT_TRUE(ParseExpression("a.x extra").status().IsParseError());
}

TEST(ParseExpressionTest, BareIdentifierIsError) {
  // Identifiers must be attribute refs, calls, or boolean literals.
  EXPECT_TRUE(ParseExpression("foo").status().IsParseError());
  EXPECT_TRUE(ParseExpression("true").ok());
  EXPECT_TRUE(ParseExpression("FALSE").ok());
}

TEST(FormatDurationTest, PicksLargestExactUnit) {
  EXPECT_EQ(FormatDuration(3 * kHour), "3 hours");
  EXPECT_EQ(FormatDuration(kHour), "1 hour");
  EXPECT_EQ(FormatDuration(10 * kMinute), "10 min");
  EXPECT_EQ(FormatDuration(90 * kSecond), "90 sec");
  EXPECT_EQ(FormatDuration(150), "150 us");
}

}  // namespace
}  // namespace cep
