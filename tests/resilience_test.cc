#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "engine/degradation.h"
#include "engine/engine.h"
#include "event/fault_injection.h"
#include "event/reorder.h"
#include "event/stream.h"
#include "harness/accuracy.h"
#include "shedding/random_shedder.h"
#include "test_util.h"

namespace cep {
namespace {

using testing_util::BikeSchema;

// ---------------------------------------------------------------------------
// DegradationController unit tests: ladder mechanics in isolation.
// ---------------------------------------------------------------------------

DegradationOptions SmallLadder() {
  DegradationOptions options;
  options.enabled = true;
  options.shedding_enter_ratio = 1.0;
  options.emergency_enter_ratio = 2.0;
  options.bypass_enter_ratio = 4.0;
  options.hysteresis = 0.5;
  options.cooldown_events = 4;
  return options;
}

TEST(DegradationControllerTest, ClimbsImmediatelyAndDescendsStepwise) {
  DegradationController ladder(SmallLadder());
  EXPECT_EQ(ladder.level(), DegradationLevel::kHealthy);
  EXPECT_EQ(ladder.Update(0.5, 0, 0), DegradationLevel::kHealthy);

  // Escalation is immediate, one Update is enough.
  EXPECT_EQ(ladder.Update(1.5, 0, 0), DegradationLevel::kShedding);
  EXPECT_EQ(ladder.ups(), 1u);
  // A severe burst jumps multiple levels; each step is counted.
  EXPECT_EQ(ladder.Update(5.0, 0, 0), DegradationLevel::kBypass);
  EXPECT_EQ(ladder.ups(), 3u);
  EXPECT_EQ(ladder.entries(DegradationLevel::kEmergency), 1u);
  EXPECT_EQ(ladder.entries(DegradationLevel::kBypass), 1u);

  // De-escalation needs cooldown_events quiet updates per step.
  for (int step = 0; step < 3; ++step) {
    const DegradationLevel before = ladder.level();
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(ladder.Update(0.0, 0, 0), before);  // still cooling down
    }
    EXPECT_LT(ladder.Update(0.0, 0, 0), before);  // 4th quiet event steps down
  }
  EXPECT_EQ(ladder.level(), DegradationLevel::kHealthy);
  EXPECT_EQ(ladder.downs(), 3u);
}

TEST(DegradationControllerTest, HysteresisBlocksOscillation) {
  DegradationController ladder(SmallLadder());
  ASSERT_EQ(ladder.Update(1.2, 0, 0), DegradationLevel::kShedding);
  // Ratio drops below the entry threshold (1.0) but stays above the release
  // threshold (1.0 * hysteresis 0.5): the ladder must hold its level no
  // matter how long the cooldown has elapsed.
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(ladder.Update(0.8, 0, 0), DegradationLevel::kShedding);
  }
  EXPECT_EQ(ladder.downs(), 0u);
  // Once the signal falls below 0.5 the pending cooldown releases it.
  EXPECT_EQ(ladder.Update(0.3, 0, 0), DegradationLevel::kHealthy);
}

TEST(DegradationControllerTest, ByteBudgetEscalates) {
  DegradationOptions options = SmallLadder();
  options.run_bytes_budget = 1000;
  DegradationController ladder(options);
  EXPECT_EQ(ladder.Update(0.0, 900, 0), DegradationLevel::kHealthy);
  EXPECT_EQ(ladder.Update(0.0, 1500, 0), DegradationLevel::kEmergency);
  EXPECT_EQ(ladder.Update(0.0, 2500, 0), DegradationLevel::kBypass);
}

TEST(DegradationControllerTest, ErrorStreakForcesBypass) {
  DegradationOptions options = SmallLadder();
  options.error_streak_bypass = 8;
  DegradationController ladder(options);
  EXPECT_EQ(ladder.Update(0.0, 0, 7), DegradationLevel::kHealthy);
  EXPECT_EQ(ladder.Update(0.0, 0, 8), DegradationLevel::kBypass);
}

TEST(DegradationControllerTest, WallClockRegressionDoesNotShortcutCooldown) {
  // A wall-clock latency source can regress to zero instantly (e.g. the
  // monitor window rotating out a stall). The ladder must treat the sudden
  // all-clear like any other quiet signal: full cooldown per step, one
  // level at a time, never a jump straight to healthy.
  DegradationController ladder(SmallLadder());
  ASSERT_EQ(ladder.Update(5.0, 0, 0), DegradationLevel::kBypass);
  EXPECT_EQ(ladder.ups(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(ladder.Update(0.0, 0, 0), DegradationLevel::kBypass);
  }
  // The 4th quiet event releases exactly one level, not three.
  EXPECT_EQ(ladder.Update(0.0, 0, 0), DegradationLevel::kEmergency);
  EXPECT_EQ(ladder.downs(), 1u);
  // The cooldown clock restarted at the new level.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(ladder.Update(0.0, 0, 0), DegradationLevel::kEmergency);
  }
  EXPECT_EQ(ladder.Update(0.0, 0, 0), DegradationLevel::kShedding);
  EXPECT_EQ(ladder.downs(), 2u);
}

TEST(DegradationControllerTest, ExactThresholdsAreExclusive) {
  // Entry uses strict '>': a ratio sitting exactly on the entry threshold
  // must not escalate (otherwise a system pinned at µ == θ flaps).
  DegradationController ladder(SmallLadder());
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(ladder.Update(1.0, 0, 0), DegradationLevel::kHealthy);
  }
  EXPECT_EQ(ladder.ups(), 0u);

  // Release uses strict '<' against enter * hysteresis: a ratio sitting
  // exactly on the release threshold (1.0 * 0.5) holds the level forever.
  ASSERT_EQ(ladder.Update(1.5, 0, 0), DegradationLevel::kShedding);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(ladder.Update(0.5, 0, 0), DegradationLevel::kShedding);
  }
  EXPECT_EQ(ladder.downs(), 0u);
}

TEST(DegradationControllerTest, ReentryAfterReleaseEscalatesImmediately) {
  // Hysteresis delays release, never re-entry: the moment the signal
  // crosses the entry threshold again the ladder climbs back without any
  // cooldown, and the entry counter records the second visit.
  DegradationController ladder(SmallLadder());
  ASSERT_EQ(ladder.Update(1.5, 0, 0), DegradationLevel::kShedding);
  for (int i = 0; i < 4; ++i) ladder.Update(0.1, 0, 0);
  ASSERT_EQ(ladder.level(), DegradationLevel::kHealthy);
  ASSERT_EQ(ladder.downs(), 1u);
  EXPECT_EQ(ladder.Update(1.5, 0, 0), DegradationLevel::kShedding);
  EXPECT_EQ(ladder.entries(DegradationLevel::kShedding), 2u);
  EXPECT_EQ(ladder.ups(), 2u);
}

// ---------------------------------------------------------------------------
// FaultInjectingStream: deterministic replay and per-fault behavior.
// ---------------------------------------------------------------------------

class FaultInjectionTest : public ::testing::Test {
 protected:
  std::vector<EventPtr> Reqs(int n, Timestamp spacing = kSecond) {
    std::vector<EventPtr> events;
    for (int i = 0; i < n; ++i) {
      events.push_back(fixture_.Req(kMinute + i * spacing, i % 7, 100 + i));
    }
    return events;
  }

  static std::vector<EventPtr> DrainFaulty(const std::vector<EventPtr>& events,
                                           const FaultInjectionOptions& options,
                                           FaultInjectionStats* stats = nullptr) {
    FaultInjectingStream stream(std::make_unique<VectorEventStream>(events),
                                options);
    std::vector<EventPtr> out;
    while (EventPtr e = stream.Next()) out.push_back(std::move(e));
    if (stats != nullptr) *stats = stream.stats();
    return out;
  }

  BikeSchema fixture_;
};

TEST_F(FaultInjectionTest, SameSeedReplaysIdenticalSchedule) {
  const std::vector<EventPtr> events = Reqs(200);
  FaultInjectionOptions options;
  options.drop_probability = 0.2;
  options.duplicate_probability = 0.2;
  options.delay_probability = 0.2;
  options.corrupt_probability = 0.2;
  options.seed = 42;

  FaultInjectionStats stats_a, stats_b;
  const auto a = DrainFaulty(events, options, &stats_a);
  const auto b = DrainFaulty(events, options, &stats_b);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i]->timestamp(), b[i]->timestamp());
    EXPECT_EQ(a[i]->sequence(), b[i]->sequence());
  }
  EXPECT_EQ(stats_a.dropped, stats_b.dropped);
  EXPECT_EQ(stats_a.corrupted, stats_b.corrupted);
  // The storm actually exercised every fault class.
  EXPECT_GT(stats_a.dropped, 0u);
  EXPECT_GT(stats_a.duplicated, 0u);
  EXPECT_GT(stats_a.delayed, 0u);
  EXPECT_GT(stats_a.corrupted, 0u);

  // A different seed produces a different schedule.
  options.seed = 43;
  FaultInjectionStats stats_c;
  DrainFaulty(events, options, &stats_c);
  EXPECT_NE(stats_a.dropped, stats_c.dropped);
}

TEST_F(FaultInjectionTest, DropAllDeliversNothing) {
  FaultInjectionOptions options;
  options.drop_probability = 1.0;
  FaultInjectionStats stats;
  EXPECT_TRUE(DrainFaulty(Reqs(25), options, &stats).empty());
  EXPECT_EQ(stats.dropped, 25u);
  EXPECT_EQ(stats.delivered, 0u);
}

TEST_F(FaultInjectionTest, DuplicateAllDoublesTheStream) {
  FaultInjectionOptions options;
  options.duplicate_probability = 1.0;
  FaultInjectionStats stats;
  const auto out = DrainFaulty(Reqs(10), options, &stats);
  ASSERT_EQ(out.size(), 20u);
  EXPECT_EQ(stats.duplicated, 10u);
  for (size_t i = 0; i < out.size(); i += 2) {
    // Redelivery keeps the same sequence number (at-least-once semantics).
    EXPECT_EQ(out[i]->sequence(), out[i + 1]->sequence());
  }
}

TEST_F(FaultInjectionTest, CorruptFlipsExactlyOneAttributeType) {
  FaultInjectionOptions options;
  options.corrupt_probability = 1.0;
  options.corrupt_null_fraction = 0.0;  // always type-flip
  const std::vector<EventPtr> events = Reqs(50);
  const auto out = DrainFaulty(events, options);
  ASSERT_EQ(out.size(), events.size());
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i]->timestamp(), events[i]->timestamp());
    size_t flipped = 0;
    for (size_t a = 0; a < out[i]->num_attributes(); ++a) {
      if (out[i]->attribute(static_cast<int>(a)).type() !=
          events[i]->attribute(static_cast<int>(a)).type()) {
        ++flipped;
      }
    }
    EXPECT_EQ(flipped, 1u);
  }
}

TEST_F(FaultInjectionTest, CorruptNullFractionNullsInstead) {
  FaultInjectionOptions options;
  options.corrupt_probability = 1.0;
  options.corrupt_null_fraction = 1.0;
  const auto out = DrainFaulty(Reqs(20), options);
  for (const auto& e : out) {
    size_t nulls = 0;
    for (size_t a = 0; a < e->num_attributes(); ++a) {
      if (e->attribute(static_cast<int>(a)).is_null()) ++nulls;
    }
    EXPECT_EQ(nulls, 1u);
  }
}

TEST_F(FaultInjectionTest, ActivityWindowBoundsTheStorm) {
  FaultInjectionOptions options;
  options.drop_probability = 1.0;
  options.active_from = kMinute + 10 * kSecond;
  options.active_until = kMinute + 20 * kSecond;
  FaultInjectionStats stats;
  const auto out = DrainFaulty(Reqs(30), options, &stats);
  EXPECT_EQ(out.size(), 20u);   // events outside [10s, 20s) pass untouched
  EXPECT_EQ(stats.dropped, 10u);
  for (const auto& e : out) {
    EXPECT_TRUE(e->timestamp() < options.active_from ||
                e->timestamp() >= options.active_until);
  }
}

TEST_F(FaultInjectionTest, DelayReordersAndReorderBufferRepairs) {
  FaultInjectionOptions options;
  options.delay_probability = 0.3;
  options.delay_events = 4;
  options.seed = 7;
  FaultInjectionStats stats;
  const auto out = DrainFaulty(Reqs(100), options, &stats);
  ASSERT_EQ(out.size(), 100u);  // delayed, not lost
  EXPECT_GT(stats.delayed, 0u);
  size_t inversions = 0;
  for (size_t i = 1; i < out.size(); ++i) {
    if (out[i]->timestamp() < out[i - 1]->timestamp()) ++inversions;
  }
  EXPECT_GT(inversions, 0u);

  // A ReorderBuffer sized for the injected delay restores timestamp order.
  ReorderBuffer buffer(/*max_delay=*/10 * kSecond);
  std::vector<EventPtr> repaired;
  for (const auto& e : out) {
    for (auto& r : buffer.Push(e)) repaired.push_back(std::move(r));
  }
  for (auto& r : buffer.Flush()) repaired.push_back(std::move(r));
  ASSERT_EQ(repaired.size(), 100u);
  EXPECT_EQ(buffer.late_dropped(), 0u);
  EXPECT_TRUE(std::is_sorted(
      repaired.begin(), repaired.end(), [](const EventPtr& a, const EventPtr& b) {
        return a->timestamp() < b->timestamp();
      }));
}

TEST_F(FaultInjectionTest, EngineSurfacesReorderBufferMetrics) {
  BikeSchema fixture;
  NfaPtr nfa = fixture.Compile(
      "PATTERN SEQ(req a, unlock c) WHERE c.uid = a.uid WITHIN 10 min");
  Engine engine(nfa, EngineOptions{});

  // An undersized buffer is forced to late-drop the delayed events; the
  // engine mirrors the buffer's counters into its own Metrics (satellite:
  // ReorderBuffer observability).
  FaultInjectionOptions options;
  options.delay_probability = 0.3;
  options.delay_events = 4;
  options.seed = 7;
  const auto out = DrainFaulty(Reqs(100), options);
  ReorderBuffer buffer(/*max_delay=*/kMillisecond);
  engine.AttachReorderBuffer(&buffer);
  for (const auto& e : out) {
    for (const auto& r : buffer.Push(e)) CEP_ASSERT_OK(engine.ProcessEvent(r));
  }
  for (const auto& r : buffer.Flush()) CEP_ASSERT_OK(engine.ProcessEvent(r));
  engine.SyncReorderMetrics();
  EXPECT_GT(buffer.late_dropped(), 0u);
  EXPECT_EQ(engine.metrics().reorder_late_dropped, buffer.late_dropped());
  EXPECT_GT(engine.metrics().reorder_buffered_peak, 0u);
}

// ---------------------------------------------------------------------------
// Error budget: poison-tolerant ingestion through Engine::OfferEvent.
// ---------------------------------------------------------------------------

class ErrorBudgetTest : public ::testing::Test {
 protected:
  NfaPtr Nfa() {
    // `a.loc >= 0` rides the spawn edge: a req whose loc is not an integer
    // poisons ProcessEvent with a TypeError the moment it arrives.
    return fixture_.Compile(
        "PATTERN SEQ(req a, unlock c) WHERE a.loc >= 0, c.uid = a.uid "
        "WITHIN 60 min");
  }

  EventPtr PoisonReq(Timestamp ts) {
    return fixture_.Make("req", ts,
                         {Value(std::string("poison")), Value(int64_t{1})}, 0);
  }

  BikeSchema fixture_;
};

TEST_F(ErrorBudgetTest, QuarantinesPoisonAndKeepsMatching) {
  EngineOptions options;
  options.error_budget.enabled = true;
  options.error_budget.max_consecutive_errors = 4;
  Engine engine(Nfa(), options);

  CEP_ASSERT_OK(engine.OfferEvent(fixture_.Req(kMinute, 1, 7)));
  CEP_ASSERT_OK(engine.OfferEvent(PoisonReq(kMinute + 1 * kSecond)));
  EXPECT_EQ(engine.consecutive_errors(), 1u);
  CEP_ASSERT_OK(engine.OfferEvent(fixture_.Unlock(kMinute + 2 * kSecond, 1, 7, 5)));
  EXPECT_EQ(engine.consecutive_errors(), 0u);  // success resets the streak

  EXPECT_EQ(engine.metrics().quarantined_events, 1u);
  ASSERT_EQ(engine.matches().size(), 1u);  // the clean pair still matched
}

TEST_F(ErrorBudgetTest, FailsFastWhenBudgetDisabled) {
  Engine engine(Nfa(), EngineOptions{});  // error budget off by default
  CEP_ASSERT_OK(engine.OfferEvent(fixture_.Req(kMinute, 1, 7)));
  const Status poisoned = engine.OfferEvent(PoisonReq(kMinute + kSecond));
  EXPECT_FALSE(poisoned.ok());
  EXPECT_EQ(engine.metrics().quarantined_events, 0u);

  // ProcessStream propagates the failure (fail-fast default).
  Engine fresh(Nfa(), EngineOptions{});
  VectorEventStream stream({fixture_.Req(kMinute, 1, 7),
                            PoisonReq(kMinute + kSecond),
                            fixture_.Unlock(kMinute + 2 * kSecond, 1, 7, 5)});
  EXPECT_FALSE(fresh.ProcessStream(&stream).ok());
}

TEST_F(ErrorBudgetTest, ProcessStreamCompletesOverPoisonWithBudget) {
  EngineOptions options;
  options.error_budget.enabled = true;
  options.error_budget.max_consecutive_errors = 4;
  Engine engine(Nfa(), options);
  VectorEventStream stream({fixture_.Req(kMinute, 1, 7),
                            PoisonReq(kMinute + kSecond),
                            PoisonReq(kMinute + 2 * kSecond),
                            fixture_.Unlock(kMinute + 3 * kSecond, 1, 7, 5)});
  CEP_ASSERT_OK(engine.ProcessStream(&stream));
  EXPECT_EQ(engine.metrics().quarantined_events, 2u);
  EXPECT_EQ(engine.matches().size(), 1u);
}

TEST_F(ErrorBudgetTest, QuarantineRecoveryKeepsRunConservation) {
  // Under skip-till-any-match a poison event can fail one run's predicate
  // *after* another run already produced a child: the child was counted in
  // runs_extended but is discarded by recovery, so it must be booked as
  // aborted for the conservation ledger to balance.
  EngineOptions options;
  options.error_budget.enabled = true;
  options.error_budget.max_consecutive_errors = 4;
  options.selection = SelectionStrategy::kSkipTillAnyMatch;
  NfaPtr nfa = fixture_.Compile(
      "PATTERN SEQ(req a, avail+ b[], unlock c) "
      "WHERE b[i].loc < a.loc, c.uid = a.uid WITHIN 60 min");
  Engine engine(nfa, options);

  // Spawn edge carries no predicate, so the poison req spawns a run whose
  // `a.loc` binding is a string; the clean run sits ahead of it in R(t).
  CEP_ASSERT_OK(engine.OfferEvent(fixture_.Req(kMinute, 10, 7)));
  CEP_ASSERT_OK(engine.OfferEvent(PoisonReq(kMinute + kSecond)));
  CEP_ASSERT_OK(engine.VerifyInvariants());

  // The avail extends the clean run (child pushed), then type-errors on the
  // poison run's `b[i].loc < a.loc` — the whole event is quarantined.
  CEP_ASSERT_OK(engine.OfferEvent(fixture_.Avail(kMinute + 2 * kSecond, 3, 1)));
  EXPECT_EQ(engine.metrics().quarantined_events, 1u);
  EXPECT_GT(engine.metrics().runs_aborted, 0u);
  CEP_ASSERT_OK(engine.VerifyInvariants());

  CEP_ASSERT_OK(
      engine.OfferEvent(fixture_.Unlock(kMinute + 3 * kSecond, 10, 7, 1)));
  CEP_ASSERT_OK(engine.VerifyInvariants());
}

TEST_F(ErrorBudgetTest, ExhaustsAfterConsecutiveFailures) {
  EngineOptions options;
  options.error_budget.enabled = true;
  options.error_budget.max_consecutive_errors = 3;
  // Keep the ladder out of the way so every poison event actually reaches
  // the failing spawn predicate instead of being bypassed.
  Engine engine(Nfa(), options);

  CEP_ASSERT_OK(engine.OfferEvent(PoisonReq(kMinute)));
  CEP_ASSERT_OK(engine.OfferEvent(PoisonReq(kMinute + kSecond)));
  const Status exhausted = engine.OfferEvent(PoisonReq(kMinute + 2 * kSecond));
  ASSERT_FALSE(exhausted.ok());
  EXPECT_NE(exhausted.ToString().find("error budget exhausted"),
            std::string::npos)
      << exhausted.ToString();
  EXPECT_EQ(engine.metrics().quarantined_events, 3u);
}

TEST_F(ErrorBudgetTest, QuarantinesTimestampRegression) {
  EngineOptions options;
  options.error_budget.enabled = true;
  options.error_budget.max_consecutive_errors = 4;
  Engine engine(Nfa(), options);
  CEP_ASSERT_OK(engine.OfferEvent(fixture_.Req(kMinute, 1, 7)));
  // An out-of-order event (no ReorderBuffer in front) is quarantined, not
  // fatal.
  CEP_ASSERT_OK(engine.OfferEvent(fixture_.Req(kMinute - 10 * kSecond, 1, 8)));
  EXPECT_EQ(engine.metrics().quarantined_events, 1u);
}

// ---------------------------------------------------------------------------
// Engine + ladder integration.
// ---------------------------------------------------------------------------

TEST(EngineDegradationTest, LatencySheddingIsGatedByTheLadder) {
  BikeSchema fixture;
  NfaPtr nfa = fixture.Compile(
      "PATTERN SEQ(req a, unlock c) WHERE c.uid = a.uid WITHIN 60 min");
  EngineOptions options;
  options.latency_mode = LatencyMode::kVirtualCost;
  options.virtual_ns_per_op = 1000.0;
  options.latency_threshold_micros = 50.0;
  options.latency_window_events = 16;
  options.shed_cooldown_events = 16;
  options.shed_amount.fraction = 0.5;
  options.degradation.enabled = true;
  options.degradation.emergency_drop_probability = 0.0;

  // With the ladder held at kHealthy by absurd entry thresholds, µ(t) > θ
  // alone must NOT trigger latency shedding any more.
  EngineOptions gated = options;
  gated.degradation.shedding_enter_ratio = 1e9;
  gated.degradation.emergency_enter_ratio = 2e9;
  gated.degradation.bypass_enter_ratio = 4e9;
  Engine held(nfa, gated, std::make_unique<RandomShedder>(1));
  Engine armed(nfa, options, std::make_unique<RandomShedder>(1));
  for (int i = 0; i < 400; ++i) {
    const EventPtr req = fixture.Req(kMinute + 2 * i, 1, i);
    const EventPtr probe = fixture.Unlock(kMinute + 2 * i + 1, 1, -1, 1);
    CEP_ASSERT_OK(held.ProcessEvent(req));
    CEP_ASSERT_OK(held.ProcessEvent(probe));
    CEP_ASSERT_OK(armed.ProcessEvent(req));
    CEP_ASSERT_OK(armed.ProcessEvent(probe));
  }
  EXPECT_EQ(held.metrics().shed_triggers, 0u);
  EXPECT_EQ(held.degradation_level(), DegradationLevel::kHealthy);
  EXPECT_GT(armed.metrics().shed_triggers, 0u);
  EXPECT_GT(armed.metrics().runs_shed, 0u);
  EXPECT_GE(armed.metrics().degradation_ups, 1u);
}

TEST(EngineDegradationTest, ByteBudgetCapsRunSetGrowth) {
  BikeSchema fixture;
  NfaPtr nfa = fixture.Compile("PATTERN SEQ(req a, unlock c) WITHIN 60 min");
  EngineOptions options;
  options.degradation.enabled = true;
  options.degradation.run_bytes_budget = 20000;
  options.degradation.emergency_drop_probability = 0.0;
  Engine engine(nfa, options);
  for (int i = 0; i < 500; ++i) {
    CEP_ASSERT_OK(engine.ProcessEvent(fixture.Req(kMinute + i, i % 50, i)));
  }
  EXPECT_GT(engine.metrics().peak_run_bytes, options.degradation.run_bytes_budget);
  EXPECT_GT(engine.metrics().bypassed_spawns, 0u);
  EXPECT_LT(engine.num_runs(), 500u);  // bypass stopped the growth
  EXPECT_EQ(engine.degradation_level(), DegradationLevel::kBypass);
}

TEST(EngineDegradationTest, EmergencyLevelShedsInput) {
  BikeSchema fixture;
  NfaPtr nfa = fixture.Compile("PATTERN SEQ(req a, unlock c) WITHIN 60 min");
  EngineOptions options;
  options.latency_mode = LatencyMode::kVirtualCost;
  options.latency_threshold_micros = 0.001;  // any activity is overload
  options.degradation.enabled = true;
  options.degradation.emergency_drop_probability = 1.0;
  Engine engine(nfa, options);
  for (int i = 0; i < 50; ++i) {
    CEP_ASSERT_OK(engine.ProcessEvent(fixture.Req(kMinute + i, 1, i)));
  }
  // The first event sees an empty latency window (ratio 0) and spawns; every
  // later event is dropped in front of the automaton.
  EXPECT_EQ(engine.num_runs(), 1u);
  EXPECT_EQ(engine.metrics().emergency_input_drops, 49u);
  EXPECT_GE(engine.metrics().events_dropped, 49u);
}

// ---------------------------------------------------------------------------
// The acceptance storm: burst + poison drives the full ladder up, recovery
// brings it back down, and post-storm recall returns to the clean baseline.
// ---------------------------------------------------------------------------

TEST(ResilienceStormTest, SurvivesStormClimbsLadderAndRecovers) {
  BikeSchema fixture;
  const std::string query =
      "PATTERN SEQ(req a, unlock c) WHERE a.loc >= 0, c.uid = a.uid "
      "WITHIN 60 sec";
  NfaPtr nfa = fixture.Compile(query);

  EngineOptions options;
  options.latency_mode = LatencyMode::kVirtualCost;
  options.virtual_ns_per_op = 1000.0;           // µ(t) in µs == mean ops
  options.latency_threshold_micros = 25.0;      // θ
  options.latency_window_events = 16;
  options.degradation.enabled = true;
  options.degradation.cooldown_events = 32;
  options.degradation.emergency_drop_probability = 0.0;  // keep deterministic
  options.error_budget.enabled = true;
  options.error_budget.max_consecutive_errors = 32;
  Engine engine(nfa, options);

  // Phase 1 — healthy traffic: five clean pairs, all matched, ladder quiet.
  const Timestamp t0 = kMinute;
  for (int i = 0; i < 5; ++i) {
    const Timestamp t = t0 + i * 30 * kSecond;
    CEP_ASSERT_OK(engine.OfferEvent(fixture.Req(t, 1, 10 + i)));
    CEP_ASSERT_OK(engine.OfferEvent(fixture.Unlock(t + kSecond, 1, 10 + i, 3)));
  }
  ASSERT_EQ(engine.matches().size(), 5u);
  EXPECT_EQ(engine.degradation_level(), DegradationLevel::kHealthy);
  EXPECT_EQ(engine.metrics().degradation_ups, 0u);

  // Phase 2 — burst: a req flood grows R(t) while unmatched unlocks probe
  // every run, driving µ(t) through θ and 2θ.
  const Timestamp t1 = t0 + 160 * kSecond;
  for (int i = 0; i < 400; ++i) {
    const Timestamp t = t1 + i * 100 * kMillisecond;
    if (i % 4 == 0) {
      CEP_ASSERT_OK(engine.OfferEvent(fixture.Req(t, 1, 100000 + i)));
    } else {
      CEP_ASSERT_OK(engine.OfferEvent(fixture.Unlock(t, 1, -1, 1)));
    }
  }
  EXPECT_GE(engine.degradation_level(), DegradationLevel::kShedding);
  EXPECT_GE(engine.metrics().degradation_ups, 2u);

  // Phase 3 — poison streak: corrupted reqs fail the spawn predicate until
  // the error streak forces kBypass (which then suppresses the evaluation
  // entirely, so exactly error_streak_bypass events are quarantined).
  const Timestamp t2 = t1 + 40 * kSecond;
  for (int i = 0; i < 12; ++i) {
    CEP_ASSERT_OK(engine.OfferEvent(
        fixture.Make("req", t2 + i * 100 * kMillisecond,
                     {Value(std::string("poison")), Value(int64_t{1})}, 0)));
  }
  EXPECT_EQ(engine.degradation_level(), DegradationLevel::kBypass);
  EXPECT_EQ(engine.metrics().quarantined_events,
            static_cast<uint64_t>(options.degradation.error_streak_bypass));
  EXPECT_GT(engine.metrics().bypassed_spawns, 0u);
  EXPECT_GE(engine.metrics().degradation_ups, 3u);
  EXPECT_GE(engine.degradation()->entries(DegradationLevel::kBypass), 1u);

  // Phase 4 — calm: the storm's runs expire, cheap traffic drains the
  // latency window, and the ladder steps back down through every level.
  Timestamp t3 = t2 + 72 * kSecond;
  int calm = 0;
  for (; calm < 400 && engine.degradation_level() != DegradationLevel::kHealthy;
       ++calm) {
    CEP_ASSERT_OK(
        engine.OfferEvent(fixture.Unlock(t3 + calm * 100 * kMillisecond, 1,
                                         -999, 1)));
  }
  EXPECT_EQ(engine.degradation_level(), DegradationLevel::kHealthy)
      << "ladder stuck after " << calm << " calm events: "
      << engine.degradation()->ToString();
  EXPECT_GE(engine.metrics().degradation_downs, 3u);

  // Phase 5 — recovery: post-storm recall returns to the no-fault baseline.
  const Timestamp t4 = t3 + 50 * kSecond;
  std::vector<EventPtr> recovery;
  for (int i = 0; i < 20; ++i) {
    const Timestamp t = t4 + i * kSecond;
    recovery.push_back(fixture.Req(t, 1, 200000 + i));
    recovery.push_back(fixture.Unlock(t + 100 * kMillisecond, 1, 200000 + i, 4));
  }
  for (const auto& e : recovery) CEP_ASSERT_OK(engine.OfferEvent(e));

  Engine baseline(fixture.Compile(query), EngineOptions{});
  for (const auto& e : recovery) CEP_ASSERT_OK(baseline.ProcessEvent(e));

  const AccuracyReport report = CompareMatchesInRange(
      baseline.matches(), engine.matches(), t4, kMaxTimestamp);
  EXPECT_EQ(report.golden_matches, 20u);
  EXPECT_DOUBLE_EQ(report.recall(), 1.0);
  EXPECT_EQ(report.false_positives(), 0u);
}

}  // namespace
}  // namespace cep
