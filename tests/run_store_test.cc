// Tests for the flat SoA run storage behind batched predicate evaluation:
// the pooled binding-cell slab (COW chains), the run arena's slot free list,
// the InlineBitmap masks, the RunStore columns, the BatchEvalPlan compiler,
// and stability of the run section's snapshot wire format.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ckpt/event_codec.h"
#include "ckpt/io.h"
#include "common/inline_bitmap.h"
#include "engine/batch_eval.h"
#include "engine/binding_slab.h"
#include "engine/engine.h"
#include "engine/run.h"
#include "engine/run_arena.h"
#include "engine/run_store.h"
#include "test_util.h"

namespace cep {
namespace {

using testing_util::BikeSchema;

// --- binding-cell slab ------------------------------------------------------

TEST(BindingCellPoolTest, BlockExhaustionAndFreeListReuse) {
  BikeSchema schema;
  const EventPtr event = schema.Req(1, 2, 3);
  BindingCellPool pool(/*cells_per_block=*/4);
  std::vector<BindingCell*> cells;
  for (int i = 0; i < 9; ++i) {
    cells.push_back(NewBindingCell(&pool, event, nullptr));
  }
  EXPECT_EQ(pool.live(), 9u);
  EXPECT_EQ(pool.peak_live(), 9u);
  const size_t capacity = pool.capacity();
  EXPECT_GE(capacity, 9u);
  const size_t bytes = pool.bytes_reserved();
  EXPECT_EQ(bytes, capacity * sizeof(BindingCell));

  for (BindingCell* cell : cells) ReleaseBindingChain(cell);
  cells.clear();
  EXPECT_EQ(pool.live(), 0u);

  // Refilling up to the old population must be pure free-list reuse.
  for (size_t i = 0; i < capacity; ++i) {
    cells.push_back(NewBindingCell(&pool, event, nullptr));
  }
  EXPECT_EQ(pool.capacity(), capacity);
  // One past capacity exhausts the free list and grows a fresh block.
  cells.push_back(NewBindingCell(&pool, event, nullptr));
  EXPECT_EQ(pool.capacity(), capacity + 4);
  EXPECT_EQ(pool.peak_live(), capacity + 1);
  for (BindingCell* cell : cells) ReleaseBindingChain(cell);
}

TEST(BindingCellPoolTest, ReleaseWalksSharedChainsByRefcount) {
  BikeSchema schema;
  BindingCellPool pool(/*cells_per_block=*/8);
  // parent chain: e1 <- e2 ; two children each append one cell onto e2.
  BindingCell* e1 = NewBindingCell(&pool, schema.Req(1, 1, 1), nullptr);
  BindingCell* e2 = NewBindingCell(&pool, schema.Req(2, 1, 1), e1);
  RetainBindingChain(e2);  // second owner of the shared prefix
  BindingCell* childa = NewBindingCell(&pool, schema.Req(3, 1, 1), e2);
  BindingCell* childb = NewBindingCell(&pool, schema.Req(4, 1, 1), e2);
  EXPECT_EQ(pool.live(), 4u);
  ReleaseBindingChain(childa);
  // The shared prefix survives: only child A's own cell was freed.
  EXPECT_EQ(pool.live(), 3u);
  ReleaseBindingChain(childb);
  EXPECT_EQ(pool.live(), 0u);
}

// --- run arena slot free list ----------------------------------------------

TEST(RunArenaTest, SlotReuseAndFreeListExhaustion) {
  RunArena arena(/*runs_per_block=*/4);
  std::vector<RunPtr> runs;
  for (int i = 0; i < 10; ++i) {
    runs.push_back(arena.New(static_cast<uint64_t>(i), 2, 0, Timestamp{0}));
  }
  EXPECT_EQ(arena.live(), 10u);
  EXPECT_EQ(arena.capacity(), 12u);  // three blocks of four
  runs.clear();
  EXPECT_EQ(arena.live(), 0u);

  // Recycling: refilling to capacity pops the free list, no new block.
  for (int i = 0; i < 12; ++i) {
    runs.push_back(arena.New(static_cast<uint64_t>(100 + i), 2, 0,
                             Timestamp{0}));
  }
  EXPECT_EQ(arena.capacity(), 12u);
  // The 13th allocation exhausts the free list and grows a block.
  runs.push_back(arena.New(999, 2, 0, Timestamp{0}));
  EXPECT_EQ(arena.capacity(), 16u);
  EXPECT_EQ(arena.live(), 13u);
}

TEST(RunArenaTest, EngineExtensionSharesChainCellsCopyOnWrite) {
  BikeSchema schema;
  NfaPtr nfa = schema.Compile(
      "PATTERN SEQ(req a, avail+ b[], unlock c) "
      "WHERE c.uid = a.uid WITHIN 10 min "
      "RETURN out(u = a.uid)");
  ASSERT_NE(nfa, nullptr);
  Engine engine(nfa, EngineOptions{});  // arena pooling on by default
  Timestamp ts = kMinute;
  CEP_ASSERT_OK(engine.ProcessEvent(schema.Req(++ts, 1, 7)));
  for (int i = 0; i < 5; ++i) {
    CEP_ASSERT_OK(engine.ProcessEvent(schema.Avail(++ts, 1, 100 + i)));
  }
  const BindingCellPool* cells = engine.arena().cell_pool();
  ASSERT_NE(cells, nullptr);
  size_t bound_sum = 0;
  for (const RunPtr& run : engine.runs()) {
    bound_sum += static_cast<size_t>(run->size());
  }
  // Skip-till-any-match branching: chains are shared copy-on-write, so the
  // slab holds far fewer cells than the per-run binding totals suggest.
  EXPECT_GT(engine.num_runs(), 2u);
  EXPECT_LT(cells->live(), bound_sum);
  // Each bind appends exactly one cell: live cells == binds performed.
  const EngineMetrics& m = engine.metrics();
  EXPECT_EQ(cells->live(), m.runs_created + m.runs_extended);
}

// --- inline bitmap ----------------------------------------------------------

TEST(InlineBitmapTest, InlineSpillShrinkRegrow) {
  InlineBitmap bm;
  EXPECT_EQ(bm.bit_count(), 0u);
  bm.Resize(64);
  bm.Set(0);
  bm.Set(63);
  EXPECT_TRUE(bm.Get(0));
  EXPECT_TRUE(bm.Get(63));
  EXPECT_FALSE(bm.Get(31));
  EXPECT_EQ(bm.CountSet(), 2u);

  bm.Resize(200);  // spills past the inline words; bits preserved
  EXPECT_TRUE(bm.Get(0));
  EXPECT_TRUE(bm.Get(63));
  bm.Set(199);
  EXPECT_EQ(bm.CountSet(), 3u);

  bm.Resize(50);  // shrink zeroes the dropped tail, including bit 63
  EXPECT_EQ(bm.CountSet(), 1u);
  bm.Resize(200);  // stale bits must not resurface
  EXPECT_FALSE(bm.Get(63));
  EXPECT_FALSE(bm.Get(199));
  EXPECT_EQ(bm.CountSet(), 1u);

  bm.Clear(0);
  EXPECT_EQ(bm.CountSet(), 0u);
  bm.Set(130);
  bm.ClearAll();
  EXPECT_EQ(bm.CountSet(), 0u);
}

// --- run store columns ------------------------------------------------------

TEST(RunStoreTest, EncodeHotValueTags) {
  EXPECT_EQ(EncodeHotValue(Value()).tag, kHotNull);
  const HotCell i = EncodeHotValue(Value(int64_t{42}));
  EXPECT_EQ(i.tag, kHotInt);
  EXPECT_EQ(i.i, 42);
  EXPECT_EQ(i.d, 42.0);  // both representations, int-int stays exact
  const HotCell d = EncodeHotValue(Value(2.5));
  EXPECT_EQ(d.tag, kHotDouble);
  EXPECT_EQ(d.d, 2.5);
  EXPECT_EQ(EncodeHotValue(Value(true)).tag, kHotOther);
  EXPECT_EQ(EncodeHotValue(Value("text")).tag, kHotOther);
  // Null event / out-of-range attribute route to null / interpreter.
  EXPECT_EQ(EncodeHotAttr(nullptr, 0).tag, kHotNull);
  BikeSchema schema;
  const EventPtr event = schema.Req(1, 5, 6);
  EXPECT_EQ(EncodeHotAttr(event.get(), 1).tag, kHotInt);
  EXPECT_EQ(EncodeHotAttr(event.get(), 99).tag, kHotOther);
}

TEST(RunStoreTest, PushKillRefreshCompactKeepColumnsInStep) {
  BikeSchema schema;
  RunStore store;
  const std::vector<HotAttr> plan{{0, 1, /*last=*/false}};  // a.uid
  store.SetHotPlan(&plan);

  for (int i = 0; i < 5; ++i) {
    RunPtr run = MakeRun(static_cast<uint64_t>(i + 1), 2, 0, Timestamp{0});
    run->Bind(0, schema.Req(10 + i, 1, 100 + i), 1);
    store.Push(std::move(run));
  }
  ASSERT_EQ(store.size(), 5u);
  CEP_EXPECT_OK(store.CheckConsistency(100));
  EXPECT_EQ(store.live_mask().CountSet(), 5u);
  EXPECT_EQ(store.states()[2], 1);
  EXPECT_EQ(store.hot(0)[2].i, 102);

  // Mutating a run behind the store's back must be caught...
  store.at(2)->Bind(1, schema.Unlock(20, 1, 102, 1), 2);
  EXPECT_FALSE(store.CheckConsistency(100).ok());
  // ...and Refresh re-gathers the row.
  store.Refresh(2);
  CEP_EXPECT_OK(store.CheckConsistency(100));
  EXPECT_EQ(store.states()[2], 2);

  store.Kill(1);
  store.MarkVictim(3);
  EXPECT_EQ(store.live_mask().CountSet(), 3u);
  EXPECT_EQ(store.victim_mask().CountSet(), 1u);
  EXPECT_TRUE(store.victim_mask().Get(3));
  CEP_EXPECT_OK(store.CheckConsistency(100));

  store.Compact();
  ASSERT_EQ(store.size(), 3u);
  // Stable order: survivors are runs 1, 3, 5 by id.
  EXPECT_EQ(store.at(0)->id(), 1u);
  EXPECT_EQ(store.at(1)->id(), 3u);
  EXPECT_EQ(store.at(2)->id(), 5u);
  EXPECT_EQ(store.hot(0)[1].i, 102);
  // Victim bits die with the episode that set them.
  EXPECT_EQ(store.victim_mask().CountSet(), 0u);
  EXPECT_EQ(store.live_mask().CountSet(), 3u);
  CEP_EXPECT_OK(store.CheckConsistency(100));

  store.Clear();
  EXPECT_TRUE(store.empty());
  CEP_EXPECT_OK(store.CheckConsistency(100));
}

// --- batch evaluation plan --------------------------------------------------

TEST(BatchEvalTest, CompilesComparisonAndDiffPredicates) {
  BikeSchema schema;
  NfaPtr nfa = schema.Compile(
      "PATTERN SEQ(req a, unlock c) "
      "WHERE c.uid = a.uid, diff(c.loc, a.loc) > 5 WITHIN 10 min");
  ASSERT_NE(nfa, nullptr);
  BatchEvalPlan plan;
  plan.Compile(*nfa);
  EXPECT_GT(plan.fast_edge_count(), 0u);
  // Hot run-side operands: a.uid and a.loc, one column slot each.
  EXPECT_EQ(plan.hot_plan().size(), 2u);
}

TEST(BatchEvalTest, AggregatePredicatesStayOnTheInterpreter) {
  BikeSchema schema;
  NfaPtr nfa = schema.Compile(
      "PATTERN SEQ(req a, avail+ b[], unlock c) "
      "WHERE diff(b[i].loc, a.loc) < 5, COUNT(b[]) > 2, c.uid = a.uid "
      "WITHIN 10 min");
  ASSERT_NE(nfa, nullptr);
  BatchEvalPlan plan;
  plan.Compile(*nfa);
  // COUNT(b[]) is not a plain comparison of gatherable operands: its edge
  // must fall back, while at least one other edge compiles fast.
  EXPECT_GT(plan.fast_edge_count(), 0u);
  EXPECT_LT(plan.fast_edge_count(), plan.total_edge_count());
}

TEST(BatchEvalTest, EngineCountsFastPathEdgesAndMatchesStayExact) {
  BikeSchema schema;
  NfaPtr nfa = schema.Compile(
      "PATTERN SEQ(req a, unlock c) WHERE c.uid = a.uid WITHIN 10 min "
      "RETURN out(u = a.uid)");
  ASSERT_NE(nfa, nullptr);
  EngineOptions options;
  Engine engine(nfa, options);
  EXPECT_EQ(engine.metrics().hot_attr_slots, 1u);  // a.uid
  Timestamp ts = kMinute;
  for (int i = 0; i < 8; ++i) {
    CEP_ASSERT_OK(engine.ProcessEvent(schema.Req(++ts, 1, i)));
  }
  // One matching unlock (uid 3) and one that matches nothing.
  CEP_ASSERT_OK(engine.ProcessEvent(schema.Unlock(++ts, 1, 3, 1)));
  CEP_ASSERT_OK(engine.ProcessEvent(schema.Unlock(++ts, 1, -1, 1)));
  EXPECT_EQ(engine.metrics().matches_emitted, 1u);
  // Every take-edge evaluation of `c.uid = a.uid` ran on the fast path.
  EXPECT_GT(engine.metrics().fast_path_edges, 0u);
  EXPECT_LE(engine.metrics().fast_path_edges,
            engine.metrics().edge_evaluations);
  CEP_EXPECT_OK(engine.VerifyInvariants());
}

// --- snapshot wire format ---------------------------------------------------

/// Hand-authors one run section exactly as the pre-refactor
/// shared_ptr<vector> layout wrote it, restores it through the flat-layout
/// Run, and re-serializes: the bytes must survive unchanged (including an
/// over-reserved trail capacity).
TEST(RunSnapshotTest, PreRefactorRunSectionRestoresAndReserializesByteIdentical) {
  BikeSchema schema;
  const EventPtr e1 = schema.Req(100, 1, 7);
  const EventPtr e2 = schema.Avail(130, 1, 41);
  const EventPtr e3 = schema.Avail(190, 1, 42);

  ckpt::EventTableBuilder builder;
  ckpt::Sink run_sink;
  run_sink.WriteU64(7);      // id
  run_sink.WriteI64(3);      // state
  run_sink.WriteI64(100);    // start_ts
  run_sink.WriteI64(190);    // last_ts
  run_sink.WriteI64(3);      // size
  run_sink.WriteU64(0xabc);  // pm_hash
  run_sink.WriteU32(3);      // num_vars
  run_sink.WriteU8(1);       // var 0 present
  run_sink.WriteU32(1);
  run_sink.WriteU32(builder.Intern(e1));
  run_sink.WriteU8(1);  // var 1: Kleene binding, oldest first
  run_sink.WriteU32(2);
  run_sink.WriteU32(builder.Intern(e2));
  run_sink.WriteU32(builder.Intern(e3));
  run_sink.WriteU8(0);  // var 2 unbound
  run_sink.WriteU32(2);  // trail size
  run_sink.WriteU32(8);  // trail capacity (over-reserved by the old writer)
  run_sink.WriteU64(11);
  run_sink.WriteU64(22);

  ckpt::Sink full;
  builder.Serialize(full);
  full.WriteBytes(run_sink.bytes().data(), run_sink.size());

  ckpt::Source source(full.bytes());
  ckpt::EventTable table;
  CEP_ASSERT_OK(table.RestoreFrom(source));
  CEP_ASSERT_OK_AND_ASSIGN(RunPtr run,
                           Run::RestoreFrom(source, table, nullptr));
  EXPECT_EQ(run->id(), 7u);
  EXPECT_EQ(run->state(), 3);
  EXPECT_EQ(run->start_ts(), 100);
  EXPECT_EQ(run->last_ts(), 190);
  EXPECT_EQ(run->size(), 3);
  EXPECT_EQ(run->pm_hash(), 0xabcu);
  EXPECT_EQ(run->binding_count(0), 1u);
  ASSERT_EQ(run->binding_count(1), 2u);
  EXPECT_EQ(run->first_event(1)->timestamp(), 130);
  EXPECT_EQ(run->last_event(1)->timestamp(), 190);
  EXPECT_EQ(run->binding_count(2), 0u);
  EXPECT_EQ(run->trail(), (std::vector<uint64_t>{11, 22}));

  ckpt::EventTableBuilder builder2;
  ckpt::Sink out;
  CEP_ASSERT_OK(run->SerializeTo(out, &builder2));
  EXPECT_EQ(out.bytes(), run_sink.bytes());
}

TEST(RunSnapshotTest, EngineSnapshotRoundTripIsByteIdentical) {
  BikeSchema schema;
  NfaPtr nfa = schema.Compile(
      "PATTERN SEQ(req a, avail+ b[], unlock c) "
      "WHERE c.uid = a.uid WITHIN 10 min "
      "RETURN out(u = a.uid)");
  ASSERT_NE(nfa, nullptr);
  EngineOptions options;
  options.collect_matches = true;
  Engine writer(nfa, options);
  Timestamp ts = kMinute;
  for (int i = 0; i < 24; ++i) {
    switch (i % 4) {
      case 0:
        CEP_ASSERT_OK(writer.OfferEvent(schema.Req(++ts, i % 3, i % 5)));
        break;
      case 3:
        CEP_ASSERT_OK(
            writer.OfferEvent(schema.Unlock(++ts, i % 3, (i - 3) % 5, 1)));
        break;
      default:
        CEP_ASSERT_OK(writer.OfferEvent(schema.Avail(++ts, i % 3, i)));
        break;
    }
  }
  ASSERT_GT(writer.num_runs(), 0u);
  CEP_ASSERT_OK_AND_ASSIGN(std::string snap1, writer.SerializeSnapshot());

  Engine reader(nfa, options);
  CEP_ASSERT_OK(reader.RestoreFromSnapshot(snap1));
  CEP_ASSERT_OK(reader.VerifyInvariants());
  CEP_ASSERT_OK_AND_ASSIGN(std::string snap2, reader.SerializeSnapshot());
  EXPECT_EQ(snap1, snap2);

  // The restored engine must also continue identically.
  for (int i = 0; i < 10; ++i) {
    const EventPtr event = schema.Unlock(++ts, i % 3, i % 5, 1);
    CEP_ASSERT_OK(writer.OfferEvent(event));
    CEP_ASSERT_OK(reader.OfferEvent(event));
  }
  EXPECT_EQ(writer.metrics().ToString(), reader.metrics().ToString());
  EXPECT_EQ(writer.matches().size(), reader.matches().size());
}

}  // namespace
}  // namespace cep
