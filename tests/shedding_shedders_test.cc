#include <gtest/gtest.h>

#include <set>

#include "engine/engine.h"
#include "shedding/input_shedder.h"
#include "shedding/pm_hash.h"
#include "shedding/random_shedder.h"
#include "shedding/state_shedder.h"
#include "test_util.h"

namespace cep {
namespace {

using testing_util::BikeSchema;

std::vector<RunPtr> MakeRuns(int n, int num_vars = 2) {
  std::vector<RunPtr> runs;
  for (int i = 0; i < n; ++i) {
    runs.push_back(MakeRun(static_cast<uint64_t>(i + 1), num_vars,
                           /*state=*/1, /*start_ts=*/i * kMinute));
  }
  return runs;
}

std::vector<size_t> VictimIndices(Shedder& shedder,
                                  const std::vector<RunPtr>& runs,
                                  Timestamp now, size_t target) {
  const ShedDecision decision =
      shedder.Decide(ShedContext{runs, now, target, /*want_scores=*/false});
  std::vector<size_t> indices;
  indices.reserve(decision.victims.size());
  for (const ShedVictim& victim : decision.victims) {
    indices.push_back(victim.index);
  }
  return indices;
}

TEST(RandomShedderTest, SelectsDistinctAliveIndices) {
  RandomShedder shedder(17);
  auto runs = MakeRuns(50);
  runs[10] = nullptr;
  runs[20] = nullptr;
  std::vector<size_t> victims = VictimIndices(shedder, runs, 0, 10);
  ASSERT_EQ(victims.size(), 10u);
  std::set<size_t> unique(victims.begin(), victims.end());
  EXPECT_EQ(unique.size(), 10u);
  EXPECT_EQ(unique.count(10), 0u);
  EXPECT_EQ(unique.count(20), 0u);
}

TEST(RandomShedderTest, TargetLargerThanPopulation) {
  RandomShedder shedder(17);
  auto runs = MakeRuns(5);
  EXPECT_EQ(VictimIndices(shedder, runs, 0, 100).size(), 5u);
}

TEST(RandomShedderTest, DeterministicPerSeed) {
  auto runs = MakeRuns(30);
  RandomShedder s5a(5), s5b(5), s6(6);
  const std::vector<size_t> a = VictimIndices(s5a, runs, 0, 10);
  const std::vector<size_t> b = VictimIndices(s5b, runs, 0, 10);
  const std::vector<size_t> c = VictimIndices(s6, runs, 0, 10);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(TtlShedderTest, ShedsOldestFirst) {
  TtlShedder shedder;
  auto runs = MakeRuns(10);  // start_ts = 0, 1min, 2min, ...
  std::vector<size_t> victims = VictimIndices(shedder, runs, 10 * kMinute, 3);
  std::set<size_t> got(victims.begin(), victims.end());
  EXPECT_EQ(got, (std::set<size_t>{0, 1, 2}));
}

TEST(InputShedderTest, DropsOnlyWhenOverloaded) {
  BikeSchema fixture;
  InputShedderOptions options;
  options.drop_probability = 1.0;
  options.only_when_overloaded = true;
  InputShedder shedder(options);
  const EventPtr e = fixture.Req(1, 1, 1);
  EXPECT_FALSE(shedder.ShouldDropEvent(*e, /*overloaded=*/false));
  EXPECT_TRUE(shedder.ShouldDropEvent(*e, /*overloaded=*/true));
}

TEST(InputShedderTest, DropRateMatchesProbability) {
  BikeSchema fixture;
  InputShedderOptions options;
  options.drop_probability = 0.3;
  options.only_when_overloaded = false;
  InputShedder shedder(options);
  const EventPtr e = fixture.Req(1, 1, 1);
  int drops = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    drops += shedder.ShouldDropEvent(*e, false) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(drops) / n, 0.3, 0.03);
}

TEST(InputShedderTest, TypeUtilityProtectsImportantTypes) {
  BikeSchema fixture;
  NfaPtr nfa = fixture.Compile(
      "PATTERN SEQ(req a, unlock c) WITHIN 10 min");
  InputShedderOptions options;
  options.drop_probability = 1.0;
  options.only_when_overloaded = false;
  options.type_utility = {{"req", 1.0}, {"unlock", 0.0}};
  InputShedder shedder(options);
  shedder.Attach(*nfa);
  const EventPtr req = fixture.Req(1, 1, 1);
  const EventPtr unlock = fixture.Unlock(2, 1, 1, 1);
  int req_drops = 0, unlock_drops = 0;
  for (int i = 0; i < 100; ++i) {
    req_drops += shedder.ShouldDropEvent(*req, false) ? 1 : 0;
    unlock_drops += shedder.ShouldDropEvent(*unlock, false) ? 1 : 0;
  }
  EXPECT_EQ(req_drops, 0);
  EXPECT_EQ(unlock_drops, 100);
}

TEST(InputShedderTest, DecideIsNoOp) {
  InputShedder shedder(InputShedderOptions{});
  auto runs = MakeRuns(10);
  EXPECT_TRUE(VictimIndices(shedder, runs, 0, 5).empty());
}

TEST(PmHasherTest, DefaultHashesAllAttributes) {
  BikeSchema fixture;
  PmHasher hasher{PmHashOptions{}};
  hasher.AttachDynamic();
  const EventPtr a = fixture.Req(1, 5, 10);
  const EventPtr b = fixture.Req(2, 5, 10);   // same attrs, different ts
  const EventPtr c = fixture.Req(3, 6, 10);   // different loc
  EXPECT_EQ(hasher.EventHash(*a), hasher.EventHash(*b));
  EXPECT_NE(hasher.EventHash(*a), hasher.EventHash(*c));
}

TEST(PmHasherTest, SelectorsRestrictHashedAttributes) {
  BikeSchema fixture;
  PmHashOptions options;
  options.attributes = {{"req", "loc"}};
  PmHasher hasher(options);
  hasher.AttachDynamic();
  const EventPtr a = fixture.Req(1, 5, 10);
  const EventPtr b = fixture.Req(2, 5, 999);  // different uid is ignored
  const EventPtr c = fixture.Req(3, 6, 10);
  EXPECT_EQ(hasher.EventHash(*a), hasher.EventHash(*b));
  EXPECT_NE(hasher.EventHash(*a), hasher.EventHash(*c));
}

TEST(PmHasherTest, NumericBucketingGroupsNearbyValues) {
  BikeSchema fixture;
  PmHashOptions options;
  options.attributes = {{"req", "loc"}};
  options.numeric_bucket_width = 10.0;
  PmHasher hasher(options);
  hasher.AttachDynamic();
  EXPECT_EQ(hasher.EventHash(*fixture.Req(1, 12, 1)),
            hasher.EventHash(*fixture.Req(2, 17, 2)));
  EXPECT_NE(hasher.EventHash(*fixture.Req(1, 12, 1)),
            hasher.EventHash(*fixture.Req(2, 27, 2)));
}

TEST(PmHasherTest, ExtendIsOrderInsensitive) {
  BikeSchema fixture;
  PmHasher hasher{PmHashOptions{}};
  hasher.AttachDynamic();
  const EventPtr a = fixture.Avail(1, 3, 1);
  const EventPtr b = fixture.Avail(2, 4, 2);
  EXPECT_EQ(hasher.Extend(hasher.Extend(0, *a), *b),
            hasher.Extend(hasher.Extend(0, *b), *a));
}

TEST(PmHasherTest, RegistryAttachMatchesDynamic) {
  BikeSchema fixture;
  PmHashOptions options;
  options.attributes = {{"req", "loc"}, {"avail", "bid"}};
  NfaPtr nfa = fixture.Compile(
      "PATTERN SEQ(req a, avail+ b[], unlock c) WITHIN 10 min");
  PmHasher resolved(options);
  CEP_ASSERT_OK(resolved.Attach(*nfa, fixture.registry));
  PmHasher dynamic(options);
  dynamic.AttachDynamic();
  const EventPtr e = fixture.Req(1, 5, 10);
  EXPECT_EQ(resolved.EventHash(*e), dynamic.EventHash(*e));
}

class StateShedderTest : public ::testing::Test {
 protected:
  StateShedderOptions DefaultOptions() {
    StateShedderOptions options;
    options.pm_hash.attributes = {{"req", "loc"}};
    options.time_slices = 4;
    // A completed match must outweigh the cost of the one derivation that
    // produced it, otherwise productive and dead groups tie at score 0.
    options.scoring.weight_contribution = 2.0;
    options.scoring.weight_cost = 1.0;
    return options;
  }

  BikeSchema fixture_;
};

TEST_F(StateShedderTest, LearnsToProtectProductiveGroups) {
  // Query: req -> unlock by same user. Requests at loc 1 always complete;
  // requests at loc 2 never do. After a training phase, the shedder must
  // score loc-1 runs above loc-2 runs.
  NfaPtr nfa = fixture_.Compile(
      "PATTERN SEQ(req a, unlock c) WHERE c.uid = a.uid WITHIN 60 min");
  auto shedder =
      std::make_unique<StateShedder>(DefaultOptions(), &fixture_.registry);
  StateShedder* raw = shedder.get();
  Engine engine(nfa, EngineOptions{}, std::move(shedder));
  Timestamp ts = kMinute;
  // Training: 50 completing (loc 1) and 50 dead-end (loc 2) requests.
  for (int i = 0; i < 50; ++i) {
    ts += kSecond;
    CEP_ASSERT_OK(engine.ProcessEvent(fixture_.Req(ts, 1, 100 + i)));
    ts += kSecond;
    CEP_ASSERT_OK(engine.ProcessEvent(fixture_.Unlock(ts, 9, 100 + i, 1)));
    ts += kSecond;
    CEP_ASSERT_OK(engine.ProcessEvent(fixture_.Req(ts, 2, 500 + i)));
  }
  // Probe runs: one fresh run per group.
  ts += kSecond;
  CEP_ASSERT_OK(engine.ProcessEvent(fixture_.Req(ts, 1, 9001)));
  ts += kSecond;
  CEP_ASSERT_OK(engine.ProcessEvent(fixture_.Req(ts, 2, 9002)));
  const ::cep::Run* good = nullptr;
  const ::cep::Run* bad = nullptr;
  for (const auto& run : engine.runs()) {
    if (run->binding(0)[0]->attribute("uid") == Value(9001)) good = run.get();
    if (run->binding(0)[0]->attribute("uid") == Value(9002)) bad = run.get();
  }
  ASSERT_NE(good, nullptr);
  ASSERT_NE(bad, nullptr);
  EXPECT_GT(raw->Score(*good, ts), raw->Score(*bad, ts));
}

TEST_F(StateShedderTest, SelectsLowestScoredRunsAsVictims) {
  NfaPtr nfa = fixture_.Compile(
      "PATTERN SEQ(req a, unlock c) WHERE c.uid = a.uid WITHIN 60 min");
  StateShedderOptions options = DefaultOptions();
  options.contribution_optimism = 0.0;  // unseen groups score 0
  auto shedder = std::make_unique<StateShedder>(options, &fixture_.registry);
  Engine engine(nfa, EngineOptions{}, std::move(shedder));
  Timestamp ts = kMinute;
  // Make loc-1 runs productive.
  for (int i = 0; i < 20; ++i) {
    ts += kSecond;
    CEP_ASSERT_OK(engine.ProcessEvent(fixture_.Req(ts, 1, 100 + i)));
    ts += kSecond;
    CEP_ASSERT_OK(engine.ProcessEvent(fixture_.Unlock(ts, 9, 100 + i, 1)));
  }
  // Now 10 live loc-1 runs and 10 live loc-2 runs.
  for (int i = 0; i < 10; ++i) {
    ts += kSecond;
    CEP_ASSERT_OK(engine.ProcessEvent(fixture_.Req(ts, 1, 7000 + i)));
    ts += kSecond;
    CEP_ASSERT_OK(engine.ProcessEvent(fixture_.Req(ts, 2, 8000 + i)));
  }
  // Under skip-till-any-match the 20 training runs also survive (completing
  // a match never retires the original run), so 30 loc-1 runs + 10 loc-2
  // runs are live.
  ASSERT_EQ(engine.num_runs(), 40u);
  engine.ForceShed(10);
  // The 10 loc-2 runs (never productive) must be the victims.
  EXPECT_EQ(engine.num_runs(), 30u);
  for (const auto& run : engine.runs()) {
    EXPECT_EQ(run->binding(0)[0]->attribute("loc"), Value(1));
  }
}

TEST_F(StateShedderTest, TrailGrowsWithTransitions) {
  NfaPtr nfa = fixture_.Compile(
      "PATTERN SEQ(req a, avail+ b[], unlock c) WITHIN 60 min");
  auto shedder =
      std::make_unique<StateShedder>(DefaultOptions(), &fixture_.registry);
  Engine engine(nfa, EngineOptions{}, std::move(shedder));
  CEP_ASSERT_OK(engine.ProcessEvent(fixture_.Req(kMinute, 1, 1)));
  ASSERT_EQ(engine.num_runs(), 1u);
  EXPECT_EQ(engine.runs()[0]->trail().size(), 1u);
  CEP_ASSERT_OK(engine.ProcessEvent(fixture_.Avail(2 * kMinute, 1, 1)));
  // Child run <r, a1> carries the parent's trail plus its own cell.
  for (const auto& run : engine.runs()) {
    if (run->size() == 2) EXPECT_EQ(run->trail().size(), 2u);
  }
}

TEST_F(StateShedderTest, SketchBackendWorksEndToEnd) {
  NfaPtr nfa = fixture_.Compile(
      "PATTERN SEQ(req a, unlock c) WHERE c.uid = a.uid WITHIN 60 min");
  StateShedderOptions options = DefaultOptions();
  options.backend = StateShedderOptions::Backend::kSketch;
  options.sketch_width = 1024;
  options.sketch_depth = 4;
  auto shedder = std::make_unique<StateShedder>(options, &fixture_.registry);
  Engine engine(nfa, EngineOptions{}, std::move(shedder));
  Timestamp ts = kMinute;
  for (int i = 0; i < 50; ++i) {
    ts += kSecond;
    CEP_ASSERT_OK(engine.ProcessEvent(fixture_.Req(ts, i % 5, i)));
  }
  engine.ForceShed(25);
  EXPECT_EQ(engine.num_runs(), 25u);
}

TEST_F(StateShedderTest, NameIsSBLS) {
  StateShedder shedder(DefaultOptions(), nullptr);
  EXPECT_EQ(shedder.name(), "SBLS");
  EXPECT_EQ(RandomShedder(1).name(), "RBLS");
  EXPECT_EQ(TtlShedder().name(), "TTL");
  EXPECT_EQ(InputShedder(InputShedderOptions{}).name(), "IBLS");
}

}  // namespace
}  // namespace cep
