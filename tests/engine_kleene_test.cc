#include <gtest/gtest.h>

#include "engine/engine.h"
#include "test_util.h"

namespace cep {
namespace {

using testing_util::BikeSchema;
using testing_util::RunAll;

class EngineKleeneTest : public ::testing::Test {
 protected:
  BikeSchema fixture_;
  EngineOptions options_;
};

/// Reproduces the paper's Table I: after processing r1, r2, a1, a2 for
/// SEQ(req a, avail+ b[], ...) under skip-till-any-match, the system holds
/// exactly eight partial matches: <r1>, <r2>, <r1,a1>, <r1,a2>, <r1,a1,a2>,
/// <r2,a1>, <r2,a2>, <r2,a1,a2>.
TEST_F(EngineKleeneTest, TableOnePartialMatchGrowth) {
  NfaPtr nfa = fixture_.Compile(
      "PATTERN SEQ(req a, avail+ b[], unlock c) WITHIN 10 min");
  Engine engine(nfa, options_);
  // Timestamps follow Table I (in minutes).
  CEP_ASSERT_OK(engine.ProcessEvent(fixture_.Req(1 * kMinute, 1, 5)));
  EXPECT_EQ(engine.num_runs(), 1u);
  CEP_ASSERT_OK(engine.ProcessEvent(fixture_.Req(8 * kMinute, 2, 6)));
  EXPECT_EQ(engine.num_runs(), 2u);
  CEP_ASSERT_OK(engine.ProcessEvent(fixture_.Avail(9 * kMinute, 3, 90)));
  EXPECT_EQ(engine.num_runs(), 4u);  // r1, r2, r1a1, r2a1
  CEP_ASSERT_OK(engine.ProcessEvent(fixture_.Avail(10 * kMinute, 4, 85)));
  EXPECT_EQ(engine.num_runs(), 8u);  // Table I
  // One more avail doubles again (2 * 2^3 = 16): exponential growth.
  CEP_ASSERT_OK(engine.ProcessEvent(fixture_.Avail(10 * kMinute, 5, 86)));
  EXPECT_EQ(engine.num_runs(), 16u);
}

TEST_F(EngineKleeneTest, KleeneMatchesEverySubsequence) {
  NfaPtr nfa = fixture_.Compile(
      "PATTERN SEQ(req a, avail+ b[], unlock c) WITHIN 10 min");
  // One req, three avails, one unlock: every non-empty subset of the avails
  // in order forms a match -> 2^3 - 1 = 7 matches.
  const auto matches = RunAll(nfa, options_,
                              {fixture_.Req(1 * kMinute, 1, 5),
                               fixture_.Avail(2 * kMinute, 1, 1),
                               fixture_.Avail(3 * kMinute, 1, 2),
                               fixture_.Avail(4 * kMinute, 1, 3),
                               fixture_.Unlock(5 * kMinute, 1, 5, 9)});
  EXPECT_EQ(matches.size(), 7u);
}

TEST_F(EngineKleeneTest, CountPredicateGatesAtExit) {
  NfaPtr nfa = fixture_.Compile(
      "PATTERN SEQ(req a, avail+ b[], unlock c) "
      "WHERE COUNT(b[]) > 2 WITHIN 10 min");
  // Only the subset of size 3 passes COUNT > 2.
  const auto matches = RunAll(nfa, options_,
                              {fixture_.Req(1 * kMinute, 1, 5),
                               fixture_.Avail(2 * kMinute, 1, 1),
                               fixture_.Avail(3 * kMinute, 1, 2),
                               fixture_.Avail(4 * kMinute, 1, 3),
                               fixture_.Unlock(5 * kMinute, 1, 5, 9)});
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].bindings[1].size(), 3u);
}

TEST_F(EngineKleeneTest, KleeneTakePredicateFiltersElements) {
  NfaPtr nfa = fixture_.Compile(
      "PATTERN SEQ(req a, avail+ b[], unlock c) "
      "WHERE diff(b[i].loc, a.loc) < 5 WITHIN 10 min");
  // Second avail is far away (loc 100): it can never join the Kleene part.
  const auto matches = RunAll(nfa, options_,
                              {fixture_.Req(1 * kMinute, 10, 5),
                               fixture_.Avail(2 * kMinute, 12, 1),
                               fixture_.Avail(3 * kMinute, 100, 2),
                               fixture_.Unlock(5 * kMinute, 10, 5, 9)});
  // Only <r, a1, u>: one match.
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].bindings[1][0]->attribute("bid"), Value(1));
}

TEST_F(EngineKleeneTest, PrevPredicateEnforcesMonotoneRuns) {
  NfaPtr nfa = fixture_.Compile(
      "PATTERN SEQ(req a, avail+ b[], unlock c) "
      "WHERE b[i].loc > b[i-1].loc, COUNT(b[]) > 1 WITHIN 10 min");
  // locs 1, 3, 2: increasing subsequences with >= 2 elements: (1,3), (1,2)
  // — note (3,2) fails and (1,3,2) fails on the last take.
  const auto matches = RunAll(nfa, options_,
                              {fixture_.Req(1 * kMinute, 0, 5),
                               fixture_.Avail(2 * kMinute, 1, 1),
                               fixture_.Avail(3 * kMinute, 3, 2),
                               fixture_.Avail(4 * kMinute, 2, 3),
                               fixture_.Unlock(5 * kMinute, 0, 5, 9)});
  EXPECT_EQ(matches.size(), 2u);
}

TEST_F(EngineKleeneTest, TrailingKleeneEmitsOnEveryQualifiedTake) {
  NfaPtr nfa = fixture_.Compile(
      "PATTERN SEQ(req a, avail+ b[]) WHERE COUNT(b[]) > 1 WITHIN 10 min");
  Engine engine(nfa, options_);
  CEP_ASSERT_OK(engine.ProcessEvent(fixture_.Req(1 * kMinute, 1, 5)));
  CEP_ASSERT_OK(engine.ProcessEvent(fixture_.Avail(2 * kMinute, 1, 1)));
  EXPECT_EQ(engine.matches().size(), 0u);  // COUNT = 1 fails the gate
  CEP_ASSERT_OK(engine.ProcessEvent(fixture_.Avail(3 * kMinute, 1, 2)));
  // Subsets of size 2: {a1,a2} -> 1 new match.
  EXPECT_EQ(engine.matches().size(), 1u);
  CEP_ASSERT_OK(engine.ProcessEvent(fixture_.Avail(4 * kMinute, 1, 3)));
  // New matches ending at a3 with >= 2 elements: {a1,a3},{a2,a3},{a1,a2,a3}.
  EXPECT_EQ(engine.matches().size(), 4u);
}

TEST_F(EngineKleeneTest, KleeneRunsExpireWithWindow) {
  NfaPtr nfa = fixture_.Compile(
      "PATTERN SEQ(req a, avail+ b[], unlock c) WITHIN 10 min");
  Engine engine(nfa, options_);
  CEP_ASSERT_OK(engine.ProcessEvent(fixture_.Req(1 * kMinute, 1, 5)));
  CEP_ASSERT_OK(engine.ProcessEvent(fixture_.Avail(2 * kMinute, 1, 1)));
  EXPECT_EQ(engine.num_runs(), 2u);
  // 12 minutes later, everything anchored at minute 1 is gone.
  CEP_ASSERT_OK(engine.ProcessEvent(fixture_.Req(13 * kMinute, 1, 6)));
  EXPECT_EQ(engine.num_runs(), 1u);
  EXPECT_EQ(engine.metrics().runs_expired, 2u);
}

TEST_F(EngineKleeneTest, PaperExampleEndToEnd) {
  // The full Example 1 query with lambda = 5 and COUNT > 2.
  NfaPtr nfa = fixture_.Compile(
      "PATTERN SEQ(req a, avail+ b[], unlock c) "
      "WHERE diff(b[i].loc, a.loc) < 5, COUNT(b[]) > 2, "
      "diff(c.loc, a.loc) > 5, c.uid = a.uid "
      "WITHIN 10 min "
      "RETURN warning(loc = a.loc, user = a.uid)");
  // req at loc 10 by user 5; three nearby bikes; unlock far away by user 5.
  const auto matches = RunAll(nfa, options_,
                              {fixture_.Req(1 * kMinute, 10, 5),
                               fixture_.Avail(2 * kMinute, 11, 1),
                               fixture_.Avail(3 * kMinute, 9, 2),
                               fixture_.Avail(4 * kMinute, 12, 3),
                               fixture_.Unlock(6 * kMinute, 30, 5, 9)});
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].complex_event->attribute("loc"), Value(10));
  EXPECT_EQ(matches[0].complex_event->attribute("user"), Value(5));
}

TEST_F(EngineKleeneTest, LeadingKleenePattern) {
  NfaPtr nfa = fixture_.Compile(
      "PATTERN SEQ(avail+ b[], unlock c) WITHIN 10 min");
  const auto matches = RunAll(nfa, options_,
                              {fixture_.Avail(1 * kMinute, 1, 1),
                               fixture_.Avail(2 * kMinute, 1, 2),
                               fixture_.Unlock(3 * kMinute, 1, 5, 9)});
  // Non-empty subsets of {a1, a2}: 3 matches.
  EXPECT_EQ(matches.size(), 3u);
}

}  // namespace
}  // namespace cep
