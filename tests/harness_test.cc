#include <gtest/gtest.h>

#include "harness/accuracy.h"
#include "harness/experiment.h"
#include "harness/sweep.h"
#include "harness/table_printer.h"
#include "shedding/random_shedder.h"
#include "test_util.h"

namespace cep {
namespace {

using testing_util::BikeSchema;

Match FakeMatch(uint64_t fingerprint) {
  Match m;
  m.fingerprint = fingerprint;
  return m;
}

TEST(AccuracyTest, PerfectRecall) {
  const std::vector<Match> golden = {FakeMatch(1), FakeMatch(2), FakeMatch(3)};
  const auto report = CompareMatches(golden, golden);
  EXPECT_EQ(report.true_positives, 3u);
  EXPECT_DOUBLE_EQ(report.recall(), 1.0);
  EXPECT_DOUBLE_EQ(report.precision(), 1.0);
  EXPECT_EQ(report.false_negatives(), 0u);
  EXPECT_EQ(report.false_positives(), 0u);
}

TEST(AccuracyTest, PartialRecall) {
  const std::vector<Match> golden = {FakeMatch(1), FakeMatch(2), FakeMatch(3),
                                     FakeMatch(4)};
  const std::vector<Match> lossy = {FakeMatch(2), FakeMatch(4)};
  const auto report = CompareMatches(golden, lossy);
  EXPECT_DOUBLE_EQ(report.recall(), 0.5);
  EXPECT_EQ(report.false_negatives(), 2u);
  EXPECT_DOUBLE_EQ(report.precision(), 1.0);
}

TEST(AccuracyTest, FalsePositivesDetected) {
  const std::vector<Match> golden = {FakeMatch(1)};
  const std::vector<Match> lossy = {FakeMatch(1), FakeMatch(99)};
  const auto report = CompareMatches(golden, lossy);
  EXPECT_EQ(report.false_positives(), 1u);
  EXPECT_DOUBLE_EQ(report.precision(), 0.5);
}

TEST(AccuracyTest, MultisetSemantics) {
  // Duplicate fingerprints count individually.
  const std::vector<Match> golden = {FakeMatch(1), FakeMatch(1)};
  const std::vector<Match> lossy = {FakeMatch(1)};
  const auto report = CompareMatches(golden, lossy);
  EXPECT_EQ(report.true_positives, 1u);
  EXPECT_DOUBLE_EQ(report.recall(), 0.5);
}

TEST(AccuracyTest, EmptyGoldenIsPerfect) {
  const auto report = CompareMatches({}, {});
  EXPECT_DOUBLE_EQ(report.recall(), 1.0);
  EXPECT_DOUBLE_EQ(report.precision(), 1.0);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({"x", "1"});
  table.AddRow({"longer-name", "22"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("| name        | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer-name | 22    |"), std::string::npos);
  EXPECT_NE(out.find("|-"), std::string::npos);
}

TEST(TablePrinterTest, ShortRowsArePadded) {
  TablePrinter table({"a", "b", "c"});
  table.AddRow({"1"});
  EXPECT_NE(table.ToString().find("| 1 |"), std::string::npos);
}

TEST(FormattersTest, Percent) {
  EXPECT_EQ(FormatPercent(0.805), "80.50%");
  EXPECT_EQ(FormatPercent(1.0), "100.00%");
  EXPECT_EQ(FormatPercent(0.0), "0.00%");
}

TEST(FormattersTest, Thousands) {
  EXPECT_EQ(FormatWithThousands(77123.4), "77,123");
  EXPECT_EQ(FormatWithThousands(505631), "505,631");
  EXPECT_EQ(FormatWithThousands(12), "12");
  EXPECT_EQ(FormatWithThousands(1234567), "1,234,567");
}

TEST(SweepTest, LinSpace) {
  const auto xs = LinSpace(0, 1, 5);
  ASSERT_EQ(xs.size(), 5u);
  EXPECT_DOUBLE_EQ(xs.front(), 0.0);
  EXPECT_DOUBLE_EQ(xs.back(), 1.0);
  EXPECT_DOUBLE_EQ(xs[2], 0.5);
  EXPECT_EQ(LinSpace(3, 9, 1).size(), 1u);
}

TEST(SweepTest, GeomSpace) {
  const auto xs = GeomSpace(1, 16, 5);
  ASSERT_EQ(xs.size(), 5u);
  EXPECT_NEAR(xs[0], 1.0, 1e-9);
  EXPECT_NEAR(xs[1], 2.0, 1e-9);
  EXPECT_NEAR(xs[4], 16.0, 1e-9);
}

TEST(SweepTest, AsciiPlotRendersPoints) {
  const std::string plot =
      AsciiPlot({0, 1, 2, 3}, {0, 1, 4, 9}, 20, 8, "x", "y");
  EXPECT_NE(plot.find('*'), std::string::npos);
  EXPECT_NE(plot.find("y (0 .. 9)"), std::string::npos);
  EXPECT_EQ(AsciiPlot({}, {}, 20, 8, "x", "y"), "(no data)\n");
}

TEST(ExperimentTest, RunOnceMatchesDirectEngineUse) {
  BikeSchema fixture;
  NfaPtr nfa = fixture.Compile(
      "PATTERN SEQ(req a, unlock c) WHERE c.uid = a.uid WITHIN 10 min");
  std::vector<EventPtr> events = {fixture.Req(kMinute, 1, 42),
                                  fixture.Unlock(2 * kMinute, 2, 42, 7)};
  CEP_ASSERT_OK_AND_ASSIGN(
      RunOutcome outcome, RunOnce(events, nfa, EngineOptions{}, nullptr));
  EXPECT_EQ(outcome.matches.size(), 1u);
  EXPECT_EQ(outcome.metrics.events_processed, 2u);
  EXPECT_GT(outcome.throughput_eps, 0.0);
}

TEST(ExperimentTest, EvaluateStrategyAveragesRepetitions) {
  BikeSchema fixture;
  NfaPtr nfa = fixture.Compile(
      "PATTERN SEQ(req a, unlock c) WHERE c.uid = a.uid WITHIN 60 min");
  std::vector<EventPtr> events;
  for (int i = 0; i < 200; ++i) {
    events.push_back(fixture.Req(kMinute + 2 * i, 1, i % 25));
    events.push_back(fixture.Unlock(kMinute + 2 * i + 1, 2, i % 25, 1));
  }
  CEP_ASSERT_OK_AND_ASSIGN(
      RunOutcome golden, RunOnce(events, nfa, EngineOptions{}, nullptr));
  ASSERT_GT(golden.matches.size(), 0u);
  EngineOptions lossy;
  lossy.max_runs = 10;
  lossy.shed_amount.fraction = 0.5;
  CEP_ASSERT_OK_AND_ASSIGN(
      StrategySummary summary,
      EvaluateStrategy(
          events, nfa, lossy,
          [](int rep) -> ShedderPtr {
            return std::make_unique<RandomShedder>(1000 + rep);
          },
          /*repetitions=*/3, golden.matches, "RBLS"));
  EXPECT_EQ(summary.repetitions, 3);
  EXPECT_GT(summary.avg_accuracy, 0.0);
  EXPECT_LT(summary.avg_accuracy, 1.0);  // shedding must cost something here
  EXPECT_LE(summary.min_accuracy, summary.avg_accuracy);
  EXPECT_DOUBLE_EQ(summary.false_positives, 0.0);
  EXPECT_GT(summary.avg_runs_shed, 0.0);
}

TEST(ExperimentTest, BenchScaleDefaultsToOne) {
  // Unless the caller exported CEPSHED_SCALE, the default is 1.0.
  if (getenv("CEPSHED_SCALE") == nullptr) {
    EXPECT_DOUBLE_EQ(BenchScaleFromEnv(), 1.0);
  }
}

}  // namespace
}  // namespace cep
