#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.h"
#include "event/csv.h"
#include "event/stream.h"
#include "test_util.h"

namespace cep {
namespace {

using testing_util::BikeSchema;

TEST(VectorEventStreamTest, IteratesInOrderAndResets) {
  BikeSchema fixture;
  std::vector<EventPtr> events = {fixture.Req(1, 0, 1), fixture.Req(2, 0, 2)};
  VectorEventStream stream(events);
  EXPECT_EQ(stream.size(), 2u);
  EXPECT_EQ(stream.Next()->timestamp(), 1);
  EXPECT_EQ(stream.Next()->timestamp(), 2);
  EXPECT_EQ(stream.Next(), nullptr);
  EXPECT_EQ(stream.Next(), nullptr);
  stream.Reset();
  EXPECT_EQ(stream.Next()->timestamp(), 1);
}

TEST(EventStreamTest, DrainCollectsRemainder) {
  BikeSchema fixture;
  VectorEventStream stream(
      {fixture.Req(1, 0, 1), fixture.Req(2, 0, 2), fixture.Req(3, 0, 3)});
  stream.Next();
  const auto rest = stream.Drain();
  ASSERT_EQ(rest.size(), 2u);
  EXPECT_EQ(rest[0]->timestamp(), 2);
}

TEST(CallbackEventStreamTest, GeneratesUntilNull) {
  BikeSchema fixture;
  int count = 0;
  CallbackEventStream stream([&]() -> EventPtr {
    if (count >= 3) return nullptr;
    return fixture.Req(++count, 0, count);
  });
  EXPECT_EQ(stream.Drain().size(), 3u);
}

TEST(MergedEventStreamTest, MergesByTimestamp) {
  BikeSchema fixture;
  std::vector<std::unique_ptr<EventStream>> inputs;
  inputs.push_back(std::make_unique<VectorEventStream>(
      std::vector<EventPtr>{fixture.Req(1, 0, 1), fixture.Req(5, 0, 2)}));
  inputs.push_back(std::make_unique<VectorEventStream>(
      std::vector<EventPtr>{fixture.Req(2, 0, 3), fixture.Req(4, 0, 4)}));
  MergedEventStream merged(std::move(inputs));
  std::vector<Timestamp> order;
  while (EventPtr e = merged.Next()) order.push_back(e->timestamp());
  EXPECT_EQ(order, (std::vector<Timestamp>{1, 2, 4, 5}));
}

TEST(MergedEventStreamTest, EmptyInputs) {
  MergedEventStream merged({});
  EXPECT_EQ(merged.Next(), nullptr);
}

TEST(SortEventsTest, SortsByTimestampThenSequence) {
  BikeSchema fixture;
  std::vector<EventPtr> events = {fixture.Req(5, 0, 1, /*seq=*/30),
                                  fixture.Req(1, 0, 2, /*seq=*/20),
                                  fixture.Req(5, 0, 3, /*seq=*/10)};
  SortEvents(&events);
  EXPECT_EQ(events[0]->timestamp(), 1);
  EXPECT_EQ(events[1]->sequence(), 10u);
  EXPECT_EQ(events[2]->sequence(), 30u);
}

TEST(CsvTest, SplitsSimpleRecord) {
  const auto fields = SplitCsvRecord("a,b,c").ValueOrDie();
  EXPECT_EQ(fields, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(CsvTest, SplitsQuotedFields) {
  const auto fields = SplitCsvRecord(R"(plain,"with,comma","with""quote")")
                          .ValueOrDie();
  EXPECT_EQ(fields, (std::vector<std::string>{"plain", "with,comma",
                                              "with\"quote"}));
}

TEST(CsvTest, RejectsMalformedQuotes) {
  EXPECT_TRUE(SplitCsvRecord("\"unterminated").status().IsParseError());
  EXPECT_TRUE(SplitCsvRecord("a\"b").status().IsParseError());
}

TEST(CsvTest, EventRoundTrip) {
  BikeSchema fixture;
  const EventPtr original = fixture.Unlock(123, -4, 9, 77);
  const std::string line = EventToCsvLine(*original);
  const EventPtr parsed =
      EventFromCsvLine(fixture.registry, line, 5).ValueOrDie();
  EXPECT_EQ(parsed->timestamp(), 123);
  EXPECT_EQ(parsed->attribute("loc"), Value(-4));
  EXPECT_EQ(parsed->attribute("uid"), Value(9));
  EXPECT_EQ(parsed->attribute("bid"), Value(77));
  EXPECT_EQ(parsed->sequence(), 5u);
}

TEST(CsvTest, NullValuesSerialiseAsEmptyFields) {
  SchemaRegistry registry;
  const auto id =
      registry.Register("n", {{"x", ValueType::kInt}}).ValueOrDie();
  const auto e = std::make_shared<Event>(
      id, registry.schema(id), 10, std::vector<Value>{Value::Null()}, 0);
  const std::string line = EventToCsvLine(*e);
  EXPECT_EQ(line, "n,10,");
  const EventPtr parsed = EventFromCsvLine(registry, line, 0).ValueOrDie();
  EXPECT_TRUE(parsed->attribute("x").is_null());
}

TEST(CsvTest, StreamRoundTripPreservesAll) {
  BikeSchema fixture;
  Rng rng(4);
  std::vector<EventPtr> events;
  for (int i = 0; i < 200; ++i) {
    events.push_back(fixture.Req(i, static_cast<int64_t>(rng.NextBounded(50)),
                                 static_cast<int64_t>(rng.NextBounded(1000))));
  }
  std::stringstream buffer;
  CEP_ASSERT_OK(WriteEventsCsv(buffer, events));
  const auto parsed = ReadEventsCsv(fixture.registry, buffer).ValueOrDie();
  ASSERT_EQ(parsed.size(), events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(parsed[i]->timestamp(), events[i]->timestamp());
    EXPECT_EQ(parsed[i]->attribute("loc"), events[i]->attribute("loc"));
    EXPECT_EQ(parsed[i]->attribute("uid"), events[i]->attribute("uid"));
  }
}

TEST(CsvTest, ReadReportsLineNumberOnError) {
  BikeSchema fixture;
  std::stringstream buffer("req,1,2,3\nreq,not_a_ts,2,3\n");
  const auto status = ReadEventsCsv(fixture.registry, buffer).status();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("line 2"), std::string::npos);
}

TEST(CsvTest, RejectsUnknownTypeAndWrongArity) {
  BikeSchema fixture;
  EXPECT_TRUE(EventFromCsvLine(fixture.registry, "nope,1", 0)
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(EventFromCsvLine(fixture.registry, "req,1,2", 0)
                  .status()
                  .IsParseError());  // req needs 2 attribute fields
  EXPECT_TRUE(EventFromCsvLine(fixture.registry, "req,1,2,3,4", 0)
                  .status()
                  .IsParseError());
}

TEST(CsvTest, SkipsBlankLinesAndCr) {
  BikeSchema fixture;
  std::stringstream buffer("req,1,2,3\r\n\n  \nreq,2,4,5\n");
  const auto events = ReadEventsCsv(fixture.registry, buffer).ValueOrDie();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1]->sequence(), 1u);
}

TEST(CsvTest, FileRoundTrip) {
  BikeSchema fixture;
  const std::string path = ::testing::TempDir() + "/cepshed_csv_test.csv";
  std::vector<EventPtr> events = {fixture.Req(1, 2, 3), fixture.Req(4, 5, 6)};
  CEP_ASSERT_OK(WriteEventsCsvFile(path, events));
  const auto parsed = ReadEventsCsvFile(fixture.registry, path).ValueOrDie();
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[1]->attribute("loc"), Value(5));
}

TEST(CsvTest, MissingFileIsIoError) {
  BikeSchema fixture;
  EXPECT_TRUE(ReadEventsCsvFile(fixture.registry, "/nonexistent/nope.csv")
                  .status()
                  .IsIoError());
}

}  // namespace
}  // namespace cep
