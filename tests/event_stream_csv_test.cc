#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.h"
#include "event/csv.h"
#include "event/stream.h"
#include "test_util.h"

namespace cep {
namespace {

using testing_util::BikeSchema;

TEST(VectorEventStreamTest, IteratesInOrderAndResets) {
  BikeSchema fixture;
  std::vector<EventPtr> events = {fixture.Req(1, 0, 1), fixture.Req(2, 0, 2)};
  VectorEventStream stream(events);
  EXPECT_EQ(stream.size(), 2u);
  EXPECT_EQ(stream.Next()->timestamp(), 1);
  EXPECT_EQ(stream.Next()->timestamp(), 2);
  EXPECT_EQ(stream.Next(), nullptr);
  EXPECT_EQ(stream.Next(), nullptr);
  stream.Reset();
  EXPECT_EQ(stream.Next()->timestamp(), 1);
}

TEST(EventStreamTest, DrainCollectsRemainder) {
  BikeSchema fixture;
  VectorEventStream stream(
      {fixture.Req(1, 0, 1), fixture.Req(2, 0, 2), fixture.Req(3, 0, 3)});
  stream.Next();
  const auto rest = stream.Drain();
  ASSERT_EQ(rest.size(), 2u);
  EXPECT_EQ(rest[0]->timestamp(), 2);
}

TEST(CallbackEventStreamTest, GeneratesUntilNull) {
  BikeSchema fixture;
  int count = 0;
  CallbackEventStream stream([&]() -> EventPtr {
    if (count >= 3) return nullptr;
    return fixture.Req(++count, 0, count);
  });
  EXPECT_EQ(stream.Drain().size(), 3u);
}

TEST(MergedEventStreamTest, MergesByTimestamp) {
  BikeSchema fixture;
  std::vector<std::unique_ptr<EventStream>> inputs;
  inputs.push_back(std::make_unique<VectorEventStream>(
      std::vector<EventPtr>{fixture.Req(1, 0, 1), fixture.Req(5, 0, 2)}));
  inputs.push_back(std::make_unique<VectorEventStream>(
      std::vector<EventPtr>{fixture.Req(2, 0, 3), fixture.Req(4, 0, 4)}));
  MergedEventStream merged(std::move(inputs));
  std::vector<Timestamp> order;
  while (EventPtr e = merged.Next()) order.push_back(e->timestamp());
  EXPECT_EQ(order, (std::vector<Timestamp>{1, 2, 4, 5}));
}

TEST(MergedEventStreamTest, EmptyInputs) {
  MergedEventStream merged({});
  EXPECT_EQ(merged.Next(), nullptr);
}

TEST(SortEventsTest, SortsByTimestampThenSequence) {
  BikeSchema fixture;
  std::vector<EventPtr> events = {fixture.Req(5, 0, 1, /*seq=*/30),
                                  fixture.Req(1, 0, 2, /*seq=*/20),
                                  fixture.Req(5, 0, 3, /*seq=*/10)};
  SortEvents(&events);
  EXPECT_EQ(events[0]->timestamp(), 1);
  EXPECT_EQ(events[1]->sequence(), 10u);
  EXPECT_EQ(events[2]->sequence(), 30u);
}

TEST(CsvTest, SplitsSimpleRecord) {
  const auto fields = SplitCsvRecord("a,b,c").ValueOrDie();
  EXPECT_EQ(fields, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(CsvTest, SplitsQuotedFields) {
  const auto fields = SplitCsvRecord(R"(plain,"with,comma","with""quote")")
                          .ValueOrDie();
  EXPECT_EQ(fields, (std::vector<std::string>{"plain", "with,comma",
                                              "with\"quote"}));
}

TEST(CsvTest, RejectsMalformedQuotes) {
  EXPECT_TRUE(SplitCsvRecord("\"unterminated").status().IsParseError());
  EXPECT_TRUE(SplitCsvRecord("a\"b").status().IsParseError());
}

TEST(CsvTest, EventRoundTrip) {
  BikeSchema fixture;
  const EventPtr original = fixture.Unlock(123, -4, 9, 77);
  const std::string line = EventToCsvLine(*original);
  const EventPtr parsed =
      EventFromCsvLine(fixture.registry, line, 5).ValueOrDie();
  EXPECT_EQ(parsed->timestamp(), 123);
  EXPECT_EQ(parsed->attribute("loc"), Value(-4));
  EXPECT_EQ(parsed->attribute("uid"), Value(9));
  EXPECT_EQ(parsed->attribute("bid"), Value(77));
  EXPECT_EQ(parsed->sequence(), 5u);
}

TEST(CsvTest, NullValuesSerialiseAsEmptyFields) {
  SchemaRegistry registry;
  const auto id =
      registry.Register("n", {{"x", ValueType::kInt}}).ValueOrDie();
  const auto e = std::make_shared<Event>(
      id, registry.schema(id), 10, std::vector<Value>{Value::Null()}, 0);
  const std::string line = EventToCsvLine(*e);
  EXPECT_EQ(line, "n,10,");
  const EventPtr parsed = EventFromCsvLine(registry, line, 0).ValueOrDie();
  EXPECT_TRUE(parsed->attribute("x").is_null());
}

TEST(CsvTest, StreamRoundTripPreservesAll) {
  BikeSchema fixture;
  Rng rng(4);
  std::vector<EventPtr> events;
  for (int i = 0; i < 200; ++i) {
    events.push_back(fixture.Req(i, static_cast<int64_t>(rng.NextBounded(50)),
                                 static_cast<int64_t>(rng.NextBounded(1000))));
  }
  std::stringstream buffer;
  CEP_ASSERT_OK(WriteEventsCsv(buffer, events));
  const auto parsed = ReadEventsCsv(fixture.registry, buffer).ValueOrDie();
  ASSERT_EQ(parsed.size(), events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(parsed[i]->timestamp(), events[i]->timestamp());
    EXPECT_EQ(parsed[i]->attribute("loc"), events[i]->attribute("loc"));
    EXPECT_EQ(parsed[i]->attribute("uid"), events[i]->attribute("uid"));
  }
}

TEST(CsvTest, ReadReportsLineNumberOnError) {
  BikeSchema fixture;
  std::stringstream buffer("req,1,2,3\nreq,not_a_ts,2,3\n");
  const auto status = ReadEventsCsv(fixture.registry, buffer).status();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("line 2"), std::string::npos);
}

TEST(CsvTest, RejectsUnknownTypeAndWrongArity) {
  BikeSchema fixture;
  EXPECT_TRUE(EventFromCsvLine(fixture.registry, "nope,1", 0)
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(EventFromCsvLine(fixture.registry, "req,1,2", 0)
                  .status()
                  .IsParseError());  // req needs 2 attribute fields
  EXPECT_TRUE(EventFromCsvLine(fixture.registry, "req,1,2,3,4", 0)
                  .status()
                  .IsParseError());
}

TEST(CsvTest, SkipsBlankLinesAndCr) {
  BikeSchema fixture;
  std::stringstream buffer("req,1,2,3\r\n\n  \nreq,2,4,5\n");
  const auto events = ReadEventsCsv(fixture.registry, buffer).ValueOrDie();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1]->sequence(), 1u);
}

TEST(CsvTest, FileRoundTrip) {
  BikeSchema fixture;
  const std::string path = ::testing::TempDir() + "/cepshed_csv_test.csv";
  std::vector<EventPtr> events = {fixture.Req(1, 2, 3), fixture.Req(4, 5, 6)};
  CEP_ASSERT_OK(WriteEventsCsvFile(path, events));
  const auto parsed = ReadEventsCsvFile(fixture.registry, path).ValueOrDie();
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[1]->attribute("loc"), Value(5));
}

TEST(CsvTest, MissingFileIsIoError) {
  BikeSchema fixture;
  EXPECT_TRUE(ReadEventsCsvFile(fixture.registry, "/nonexistent/nope.csv")
                  .status()
                  .IsIoError());
}

// Registers msg(txt: string, n: int) for the pathological-value tests.
EventTypeId RegisterMsg(SchemaRegistry* registry) {
  return registry
      ->Register("msg",
                 {{"txt", ValueType::kString}, {"n", ValueType::kInt}})
      .ValueOrDie();
}

EventPtr MakeMsg(const SchemaRegistry& registry, EventTypeId id, Timestamp ts,
                 Value txt, Value n, uint64_t seq) {
  return std::make_shared<Event>(id, registry.schema(id), ts,
                                 std::vector<Value>{std::move(txt),
                                                    std::move(n)},
                                 seq);
}

TEST(CsvTest, PathologicalValuesRoundTrip) {
  SchemaRegistry registry;
  const EventTypeId id = RegisterMsg(&registry);
  const std::vector<EventPtr> events = {
      MakeMsg(registry, id, 1, Value(std::string("plain")), Value(int64_t{7}),
              0),
      MakeMsg(registry, id, 2, Value(std::string("a,b,,c")), Value::Null(), 1),
      MakeMsg(registry, id, 3, Value(std::string("say \"hi\" twice \"\"")),
              Value(int64_t{-9}), 2),
      MakeMsg(registry, id, 4, Value(std::string("line1\nline2\n,\"mix\"")),
              Value(int64_t{0}), 3),
      MakeMsg(registry, id, 5, Value::Null(), Value(int64_t{1}), 4),
  };
  std::stringstream buffer;
  CEP_ASSERT_OK(WriteEventsCsv(buffer, events));
  // The embedded newline makes the serialized form span more physical lines
  // than there are events; the reader must stitch quoted records back up.
  const auto parsed = ReadEventsCsv(registry, buffer).ValueOrDie();
  ASSERT_EQ(parsed.size(), events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(parsed[i]->timestamp(), events[i]->timestamp()) << "event " << i;
    EXPECT_EQ(parsed[i]->attribute("txt"), events[i]->attribute("txt"))
        << "event " << i;
    EXPECT_EQ(parsed[i]->attribute("n"), events[i]->attribute("n"))
        << "event " << i;
  }
}

TEST(CsvTest, UnterminatedQuoteAtEofIsParseError) {
  SchemaRegistry registry;
  RegisterMsg(&registry);
  std::stringstream in("msg,1,\"never closed\nmore text");
  EXPECT_TRUE(ReadEventsCsv(registry, in).status().IsParseError());
}

TEST(CsvTest, QuarantineSkipsBadRecordsWhenBudgetEnabled) {
  BikeSchema fixture;
  std::stringstream in(
      "req,1,10,20\n"
      "utter garbage\n"
      "req,2,11,21\n"
      "req,notatimestamp,0,0\n"
      "req,3,12,22\n");
  // Default is fail-fast: the first bad line is fatal and names its line.
  {
    std::stringstream copy(in.str());
    const auto result = ReadEventsCsv(fixture.registry, copy);
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.status().ToString().find("line 2"), std::string::npos)
        << result.status().ToString();
  }
  // With an error budget the bad lines are quarantined and counted.
  CsvReadOptions options;
  options.max_consecutive_errors = 4;
  CsvReadStats stats;
  const auto events =
      ReadEventsCsv(fixture.registry, in, options, &stats).ValueOrDie();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(stats.quarantined, 2u);
  EXPECT_NE(stats.last_error.find("line 4"), std::string::npos)
      << stats.last_error;
  // Sequence numbers of surviving events stay dense.
  EXPECT_EQ(events[0]->sequence(), 0u);
  EXPECT_EQ(events[1]->sequence(), 1u);
  EXPECT_EQ(events[2]->sequence(), 2u);
}

TEST(CsvTest, OversizedRecordIsQuarantinedWithBoundedMemory) {
  BikeSchema fixture;
  // An attacker-sized line (no newline for megabytes) must not be buffered
  // whole: the reader discards past max_record_bytes and quarantines the
  // record under its own reason code.
  std::stringstream in;
  in << "req,1,10,20\n";
  in << "req,2," << std::string(4096, '9') << ",0\n";
  in << "req,3,11,21\n";
  CsvReadOptions options;
  options.max_record_bytes = 256;
  options.max_consecutive_errors = 4;
  CsvReadStats stats;
  const auto events =
      ReadEventsCsv(fixture.registry, in, options, &stats).ValueOrDie();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(stats.quarantined, 1u);
  EXPECT_EQ(stats.oversized, 1u);
  EXPECT_NE(stats.last_error.find("max_record_bytes"), std::string::npos)
      << stats.last_error;
  EXPECT_NE(stats.last_error.find("line 2"), std::string::npos)
      << stats.last_error;
  // The stream resynchronises on the next newline: event timestamps 1, 3.
  EXPECT_EQ(events[1]->timestamp(), 3);
}

TEST(CsvTest, OversizedRecordFailsFastInStrictMode) {
  BikeSchema fixture;
  std::stringstream in;
  in << "req,1,10,20\n" << std::string(1024, 'x') << "\nreq,2,11,21\n";
  CsvReadOptions options;
  options.max_record_bytes = 64;
  CsvReadStats stats;
  const auto result = ReadEventsCsv(fixture.registry, in, options, &stats);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsOutOfRange()) << result.status().ToString();
  EXPECT_EQ(stats.oversized, 1u);
}

TEST(CsvTest, OversizedQuotedContinuationIsBounded) {
  BikeSchema fixture;
  // A quoted field swallowing newlines must count the total stitched record
  // size against the bound, not each physical line separately — otherwise
  // an unterminated quote grows the buffer without limit.
  std::stringstream in;
  in << "req,1,10,20\n" << "req,2,\"";
  for (int i = 0; i < 64; ++i) in << std::string(32, 'a') << "\n";
  in << "\",0\nreq,3,11,21\n";
  CsvReadOptions options;
  options.max_record_bytes = 128;
  // The resynchronisation point is the next physical newline, so the
  // remaining continuation lines surface as ordinary quarantined records.
  options.max_consecutive_errors = 128;
  CsvReadStats stats;
  const auto events =
      ReadEventsCsv(fixture.registry, in, options, &stats).ValueOrDie();
  EXPECT_GE(stats.oversized, 1u);
  EXPECT_GE(events.size(), 1u);
  EXPECT_EQ(events.front()->timestamp(), 1);
}

TEST(CsvTest, ZeroMaxRecordBytesDisablesTheBound) {
  BikeSchema fixture;
  std::stringstream in;
  in << "req,1," << std::string(1 << 16, '0') << "7,20\n";
  CsvReadOptions options;
  options.max_record_bytes = 0;
  CsvReadStats stats;
  const auto events =
      ReadEventsCsv(fixture.registry, in, options, &stats).ValueOrDie();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(stats.oversized, 0u);
}

TEST(CsvTest, QuarantineBudgetExhaustsOnConsecutiveBadRecords) {
  BikeSchema fixture;
  std::stringstream in(
      "req,1,10,20\n"
      "bad one\n"
      "bad two\n"
      "bad three\n"
      "req,2,11,21\n");
  CsvReadOptions options;
  options.max_consecutive_errors = 3;
  CsvReadStats stats;
  const auto result = ReadEventsCsv(fixture.registry, in, options, &stats);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("error budget exhausted"),
            std::string::npos)
      << result.status().ToString();
  EXPECT_EQ(stats.quarantined, 3u);
}

}  // namespace
}  // namespace cep
