#include "engine/engine.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace cep {
namespace {

using testing_util::BikeSchema;
using testing_util::RunAll;

class EngineBasicTest : public ::testing::Test {
 protected:
  BikeSchema fixture_;
  EngineOptions options_;
};

TEST_F(EngineBasicTest, DetectsSimpleSequence) {
  NfaPtr nfa = fixture_.Compile(
      "PATTERN SEQ(req a, unlock c) WHERE c.uid = a.uid WITHIN 10 min");
  const auto matches = RunAll(nfa, options_,
                              {fixture_.Req(1 * kMinute, 5, 42),
                               fixture_.Unlock(2 * kMinute, 9, 42, 7)});
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].first_ts, 1 * kMinute);
  EXPECT_EQ(matches[0].last_ts, 2 * kMinute);
  ASSERT_EQ(matches[0].bindings.size(), 2u);
  EXPECT_EQ(matches[0].bindings[0][0]->attribute("uid"), Value(42));
}

TEST_F(EngineBasicTest, PredicateFiltersNonMatchingPairs) {
  NfaPtr nfa = fixture_.Compile(
      "PATTERN SEQ(req a, unlock c) WHERE c.uid = a.uid WITHIN 10 min");
  const auto matches = RunAll(nfa, options_,
                              {fixture_.Req(1 * kMinute, 5, 42),
                               fixture_.Unlock(2 * kMinute, 9, 99, 7)});
  EXPECT_TRUE(matches.empty());
}

TEST_F(EngineBasicTest, WindowExcludesLateEvents) {
  NfaPtr nfa = fixture_.Compile(
      "PATTERN SEQ(req a, unlock c) WHERE c.uid = a.uid WITHIN 10 min");
  const auto matches = RunAll(nfa, options_,
                              {fixture_.Req(1 * kMinute, 5, 42),
                               fixture_.Unlock(12 * kMinute, 9, 42, 7)});
  EXPECT_TRUE(matches.empty());
}

TEST_F(EngineBasicTest, WindowBoundaryIsInclusive) {
  NfaPtr nfa = fixture_.Compile(
      "PATTERN SEQ(req a, unlock c) WITHIN 10 min");
  // last - first == window exactly: still a match (Expired uses >).
  const auto matches = RunAll(nfa, options_,
                              {fixture_.Req(0, 5, 42),
                               fixture_.Unlock(10 * kMinute, 9, 42, 7)});
  EXPECT_EQ(matches.size(), 1u);
}

TEST_F(EngineBasicTest, SkipTillAnyMatchFindsAllCombinations) {
  NfaPtr nfa = fixture_.Compile(
      "PATTERN SEQ(req a, unlock c) WHERE c.uid = a.uid WITHIN 10 min");
  // Two reqs by the same user, two unlocks: 2x2 matches.
  const auto matches = RunAll(nfa, options_,
                              {fixture_.Req(1 * kMinute, 1, 42),
                               fixture_.Req(2 * kMinute, 2, 42),
                               fixture_.Unlock(3 * kMinute, 3, 42, 7),
                               fixture_.Unlock(4 * kMinute, 4, 42, 8)});
  EXPECT_EQ(matches.size(), 4u);
}

TEST_F(EngineBasicTest, SingleVariableQueryEmitsPerEvent) {
  NfaPtr nfa = fixture_.Compile(
      "PATTERN SEQ(req a) WHERE a.loc > 10 WITHIN 1 min");
  const auto matches = RunAll(nfa, options_,
                              {fixture_.Req(1, 5, 1), fixture_.Req(2, 15, 2),
                               fixture_.Req(3, 20, 3)});
  EXPECT_EQ(matches.size(), 2u);
}

TEST_F(EngineBasicTest, ComplexEventCarriesReturnValues) {
  NfaPtr nfa = fixture_.Compile(
      "PATTERN SEQ(req a, unlock c) WHERE c.uid = a.uid WITHIN 10 min "
      "RETURN warning(where = a.loc, who = a.uid, far = diff(c.loc, a.loc))");
  const auto matches = RunAll(nfa, options_,
                              {fixture_.Req(1 * kMinute, 5, 42),
                               fixture_.Unlock(2 * kMinute, 9, 42, 7)});
  ASSERT_EQ(matches.size(), 1u);
  const EventPtr& complex = matches[0].complex_event;
  ASSERT_NE(complex, nullptr);
  EXPECT_EQ(complex->schema().name(), "warning");
  EXPECT_EQ(complex->attribute("where"), Value(5));
  EXPECT_EQ(complex->attribute("who"), Value(42));
  EXPECT_EQ(complex->attribute("far"), Value(4.0));
  EXPECT_EQ(complex->timestamp(), 2 * kMinute);
}

TEST_F(EngineBasicTest, NoReturnClauseNoComplexEvent) {
  NfaPtr nfa = fixture_.Compile("PATTERN SEQ(req a) WITHIN 1 min");
  const auto matches = RunAll(nfa, options_, {fixture_.Req(1, 1, 1)});
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].complex_event, nullptr);
}

TEST_F(EngineBasicTest, MatchCallbackFires) {
  NfaPtr nfa = fixture_.Compile("PATTERN SEQ(req a) WITHIN 1 min");
  Engine engine(nfa, options_);
  int called = 0;
  engine.SetMatchCallback([&](const Match&) { ++called; });
  CEP_ASSERT_OK(engine.ProcessEvent(fixture_.Req(1, 1, 1)));
  CEP_ASSERT_OK(engine.ProcessEvent(fixture_.Req(2, 2, 2)));
  EXPECT_EQ(called, 2);
  EXPECT_EQ(engine.matches().size(), 2u);
}

TEST_F(EngineBasicTest, CollectMatchesCanBeDisabled) {
  NfaPtr nfa = fixture_.Compile("PATTERN SEQ(req a) WITHIN 1 min");
  EngineOptions options;
  options.collect_matches = false;
  Engine engine(nfa, options);
  CEP_ASSERT_OK(engine.ProcessEvent(fixture_.Req(1, 1, 1)));
  EXPECT_TRUE(engine.matches().empty());
  EXPECT_EQ(engine.metrics().matches_emitted, 1u);
}

TEST_F(EngineBasicTest, RejectsOutOfOrderEvents) {
  NfaPtr nfa = fixture_.Compile("PATTERN SEQ(req a) WITHIN 1 min");
  Engine engine(nfa, options_);
  CEP_ASSERT_OK(engine.ProcessEvent(fixture_.Req(10, 1, 1)));
  EXPECT_TRUE(engine.ProcessEvent(fixture_.Req(5, 1, 1))
                  .IsInvalidArgument());
  // Equal timestamps are allowed.
  CEP_ASSERT_OK(engine.ProcessEvent(fixture_.Req(10, 1, 1)));
}

TEST_F(EngineBasicTest, MetricsCountLifecycle) {
  NfaPtr nfa = fixture_.Compile(
      "PATTERN SEQ(req a, unlock c) WHERE c.uid = a.uid WITHIN 1 min");
  Engine engine(nfa, options_);
  CEP_ASSERT_OK(engine.ProcessEvent(fixture_.Req(1, 1, 42)));
  CEP_ASSERT_OK(engine.ProcessEvent(fixture_.Unlock(2, 2, 42, 7)));
  // Expire the remaining run.
  CEP_ASSERT_OK(engine.ProcessEvent(fixture_.Req(3 * kMinute, 1, 43)));
  const EngineMetrics& m = engine.metrics();
  EXPECT_EQ(m.events_processed, 3u);
  EXPECT_EQ(m.runs_created, 2u);
  EXPECT_EQ(m.runs_extended, 1u);
  EXPECT_EQ(m.matches_emitted, 1u);
  EXPECT_EQ(m.runs_expired, 1u);
  EXPECT_GE(m.peak_runs, 1u);
  EXPECT_GT(m.edge_evaluations, 0u);
}

TEST_F(EngineBasicTest, ProcessStreamDrains) {
  NfaPtr nfa = fixture_.Compile("PATTERN SEQ(req a) WITHIN 1 min");
  Engine engine(nfa, options_);
  VectorEventStream stream(
      {fixture_.Req(1, 1, 1), fixture_.Req(2, 2, 2), fixture_.Req(3, 3, 3)});
  CEP_ASSERT_OK(engine.ProcessStream(&stream));
  EXPECT_EQ(engine.matches().size(), 3u);
}

TEST_F(EngineBasicTest, IrrelevantEventTypesAreCheap) {
  NfaPtr nfa = fixture_.Compile(
      "PATTERN SEQ(req a, unlock c) WITHIN 10 min");
  Engine engine(nfa, options_);
  CEP_ASSERT_OK(engine.ProcessEvent(fixture_.Req(1, 1, 1)));
  const uint64_t evals_before = engine.metrics().edge_evaluations;
  // avail events are irrelevant to this query: no edge evaluations beyond
  // the per-event baseline.
  CEP_ASSERT_OK(engine.ProcessEvent(fixture_.Avail(2, 1, 1)));
  EXPECT_EQ(engine.metrics().edge_evaluations, evals_before + 1);
}

TEST_F(EngineBasicTest, MatchFingerprintIdentifiesBoundEvents) {
  NfaPtr nfa = fixture_.Compile("PATTERN SEQ(req a, unlock c) WITHIN 10 min");
  const EventPtr r = fixture_.Req(1, 1, 1);
  const EventPtr u1 = fixture_.Unlock(2, 2, 1, 5);
  const EventPtr u2 = fixture_.Unlock(3, 3, 1, 6);
  const auto matches = RunAll(nfa, options_, {r, u1, u2});
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_NE(matches[0].fingerprint, matches[1].fingerprint);
}

}  // namespace
}  // namespace cep
