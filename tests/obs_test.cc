// Tests for the observability layer (src/obs/): metrics registry, shed
// audit log, and span tracer — plus the engine-level integration contract
// that every export (Prometheus text, metrics JSON, Chrome trace, audit
// JSONL) is byte-identical across thread counts for a fixed input.

#include <gtest/gtest.h>

#include <span>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "engine/multi.h"
#include "obs/audit.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "shedding/state_shedder.h"
#include "test_util.h"

namespace cep {
namespace {

using testing_util::BikeSchema;

// --- instruments ------------------------------------------------------------

TEST(ObsMetricsTest, CounterAndGauge) {
  obs::Counter counter;
  counter.Add();
  counter.Add(41);
  EXPECT_EQ(counter.value(), 42u);
  counter.Set(7);
  EXPECT_EQ(counter.value(), 7u);

  obs::Gauge gauge;
  gauge.Set(2.5);
  gauge.Add(-1.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 1.5);
}

TEST(ObsMetricsTest, FormatMetricValue) {
  EXPECT_EQ(obs::FormatMetricValue(0.0), "0");
  EXPECT_EQ(obs::FormatMetricValue(3.0), "3");
  EXPECT_EQ(obs::FormatMetricValue(-17.0), "-17");
  EXPECT_EQ(obs::FormatMetricValue(2.5), "2.5");
  // Deterministic: equal inputs always format identically.
  EXPECT_EQ(obs::FormatMetricValue(0.1), obs::FormatMetricValue(0.1));
}

TEST(ObsMetricsTest, HistogramBucketBoundaries) {
  obs::HistogramSpec spec;
  spec.base = 1.0;
  spec.growth = 2.0;
  spec.num_buckets = 4;  // bounds 1, 2, 4, 8
  obs::Histogram hist(spec);
  ASSERT_EQ(hist.num_buckets(), 4u);
  EXPECT_DOUBLE_EQ(hist.upper_bound(0), 1.0);
  EXPECT_DOUBLE_EQ(hist.upper_bound(3), 8.0);

  hist.Record(0.0);  // below base -> bucket 0
  hist.Record(1.0);  // exactly on a bound -> that bucket (le semantics)
  hist.Record(1.5);
  hist.Record(8.0);
  hist.Record(100.0);  // above the last bound -> +Inf overflow bucket
  EXPECT_EQ(hist.bucket_count(0), 2u);
  EXPECT_EQ(hist.bucket_count(1), 1u);
  EXPECT_EQ(hist.bucket_count(2), 0u);
  EXPECT_EQ(hist.bucket_count(3), 1u);
  EXPECT_EQ(hist.bucket_count(4), 1u);  // +Inf
  EXPECT_EQ(hist.count(), 5u);
  EXPECT_DOUBLE_EQ(hist.sum(), 110.5);
}

TEST(ObsMetricsTest, HistogramMergeCopyReset) {
  obs::HistogramSpec spec;
  spec.num_buckets = 4;
  obs::Histogram a(spec);
  obs::Histogram b(spec);
  a.Record(1.0);
  a.Record(100.0);
  b.Record(3.0);

  b.MergeFrom(a);
  EXPECT_EQ(b.count(), 3u);
  EXPECT_DOUBLE_EQ(b.sum(), 104.0);
  EXPECT_EQ(b.bucket_count(0), 1u);
  EXPECT_EQ(b.bucket_count(2), 1u);
  EXPECT_EQ(b.bucket_count(4), 1u);

  obs::Histogram c(spec);
  c.Record(999.0);
  c.CopyFrom(a);  // overwrite, not add
  EXPECT_EQ(c.count(), 2u);
  EXPECT_DOUBLE_EQ(c.sum(), 101.0);

  c.Reset();
  EXPECT_EQ(c.count(), 0u);
  EXPECT_DOUBLE_EQ(c.sum(), 0.0);
  for (size_t i = 0; i <= c.num_buckets(); ++i) {
    EXPECT_EQ(c.bucket_count(i), 0u) << i;
  }
}

// --- registry ---------------------------------------------------------------

TEST(ObsRegistryTest, SameIdentityReturnsSameInstrument) {
  obs::Registry registry;
  obs::Counter* a = registry.GetCounter("cep_x_total", "help");
  obs::Counter* b = registry.GetCounter("cep_x_total", "help");
  EXPECT_EQ(a, b);
  EXPECT_EQ(registry.size(), 1u);

  // Label order is canonicalised: the same label *set* is the same metric.
  obs::Counter* c = registry.GetCounter("cep_x_total", "help",
                                        {{"b", "2"}, {"a", "1"}});
  obs::Counter* d = registry.GetCounter("cep_x_total", "help",
                                        {{"a", "1"}, {"b", "2"}});
  EXPECT_EQ(c, d);
  EXPECT_NE(a, c);
  EXPECT_EQ(registry.size(), 2u);

  obs::Gauge* g = registry.GetGauge("cep_depth", "help");
  EXPECT_EQ(registry.GetGauge("cep_depth", "help"), g);
  obs::Histogram* h = registry.GetHistogram("cep_lat_us", "help");
  EXPECT_EQ(registry.GetHistogram("cep_lat_us", "help"), h);
}

TEST(ObsRegistryTest, ExportsAreDeterministicAndOrdered) {
  obs::Registry registry;
  // Register out of name order; exports must still be sorted and stable.
  registry.GetCounter("cep_zeta_total", "last metric")->Set(3);
  registry.GetGauge("cep_alpha", "first metric")->Set(1.5);
  registry.GetCounter("cep_mid_total", "labelled", {{"query", "q1"}})->Set(2);

  const std::string prom = registry.ToPrometheusText();
  EXPECT_NE(prom.find("# HELP cep_alpha first metric"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE cep_alpha gauge"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE cep_zeta_total counter"), std::string::npos);
  EXPECT_NE(prom.find("cep_mid_total{query=\"q1\"} 2"), std::string::npos);
  EXPECT_LT(prom.find("cep_alpha"), prom.find("cep_mid_total"));
  EXPECT_LT(prom.find("cep_mid_total"), prom.find("cep_zeta_total"));
  // Byte-stable across repeated export.
  EXPECT_EQ(prom, registry.ToPrometheusText());

  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"metrics\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"cep_alpha\""), std::string::npos);
  EXPECT_NE(json.find("\"query\":\"q1\""), std::string::npos);
  EXPECT_EQ(json, registry.ToJson());
}

TEST(ObsRegistryTest, HistogramExportsCumulativeBuckets) {
  obs::Registry registry;
  obs::HistogramSpec spec;
  spec.num_buckets = 2;  // bounds 1, 2 (+Inf)
  obs::Histogram* h = registry.GetHistogram("cep_h_us", "hist", spec);
  h->Record(1.0);
  h->Record(1.5);
  h->Record(50.0);

  const std::string prom = registry.ToPrometheusText();
  EXPECT_NE(prom.find("# TYPE cep_h_us histogram"), std::string::npos);
  EXPECT_NE(prom.find("cep_h_us_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(prom.find("cep_h_us_bucket{le=\"2\"} 2"), std::string::npos);
  EXPECT_NE(prom.find("cep_h_us_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(prom.find("cep_h_us_count 3"), std::string::npos);
  EXPECT_NE(prom.find("cep_h_us_sum 52.5"), std::string::npos);
}

// --- shed audit log ---------------------------------------------------------

obs::ShedDecisionRecord MakeRecord(uint64_t run_id) {
  obs::ShedDecisionRecord record;
  record.run_id = run_id;
  record.nfa_state = 2;
  record.shed_ts = 1000 + static_cast<Timestamp>(run_id);
  record.c_plus = 0.25;
  record.c_minus = 2.0;
  record.score = 0.125;
  record.shed_fraction = 0.5;
  return record;
}

TEST(ObsAuditTest, SequenceStampingAndRingOverwrite) {
  obs::ShedAuditLog log(/*capacity=*/4);
  for (uint64_t i = 0; i < 6; ++i) {
    EXPECT_EQ(log.Append(MakeRecord(i)), i);
  }
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.dropped(), 2u);
  EXPECT_EQ(log.total_appended(), 6u);

  // Oldest two were overwritten; the snapshot is oldest-first.
  const std::vector<obs::ShedDecisionRecord> snapshot = log.Snapshot();
  ASSERT_EQ(snapshot.size(), 4u);
  for (size_t i = 0; i < snapshot.size(); ++i) {
    EXPECT_EQ(snapshot[i].sequence, i + 2);
    EXPECT_EQ(snapshot[i].run_id, i + 2);
  }

  log.Clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.total_appended(), 0u);
}

TEST(ObsAuditTest, JsonlShape) {
  obs::ShedAuditLog log;
  log.Append(MakeRecord(7));
  const std::string jsonl = log.ToJsonl();
  // One line, fixed field order, trailing newline.
  EXPECT_EQ(jsonl,
            "{\"seq\":0,\"engine\":0,\"episode\":0,\"run_id\":7,\"state\":2,"
            "\"shed_ts\":1007,\"run_start_ts\":0,\"time_slice\":-1,"
            "\"c_plus\":0.25,\"c_minus\":2,\"score\":0.125,"
            "\"shed_fraction\":0.5,\"degradation_level\":0}\n");
}

// --- tracer -----------------------------------------------------------------

TEST(ObsTraceTest, SpansSortAndExport) {
  obs::Tracer tracer;
  tracer.Span("event", /*ts=*/20, /*dur=*/5, /*tid=*/0, "ops", 3);
  tracer.Span("merge", /*ts=*/10, /*dur=*/2, /*tid=*/2);
  tracer.Instant("ladder_up", /*ts=*/15, /*tid=*/0, "level", 1);
  EXPECT_EQ(tracer.size(), 3u);
  EXPECT_EQ(tracer.dropped(), 0u);

  const std::vector<obs::TraceSpan> spans = tracer.SortedSpans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].ts_us, 10u);
  EXPECT_EQ(spans[1].ts_us, 15u);
  EXPECT_EQ(spans[2].ts_us, 20u);

  const std::string json = tracer.ToJson();
  EXPECT_NE(json.find("{\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(
      json.find("{\"name\":\"merge\",\"ph\":\"X\",\"pid\":0,\"tid\":2,"
                "\"ts\":10,\"dur\":2}"),
      std::string::npos);
  // Instant events carry scope "t" and no duration.
  EXPECT_NE(
      json.find("{\"name\":\"ladder_up\",\"ph\":\"i\",\"pid\":0,\"tid\":0,"
                "\"ts\":15,\"s\":\"t\",\"args\":{\"level\":1}}"),
      std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"ops\":3}"), std::string::npos);
}

TEST(ObsTraceTest, RingKeepsNewestSpans) {
  obs::Tracer tracer(/*capacity_per_thread=*/4);
  for (uint64_t i = 0; i < 6; ++i) {
    tracer.Span("event", /*ts=*/i, /*dur=*/1, /*tid=*/0);
  }
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 2u);
  const std::vector<obs::TraceSpan> spans = tracer.SortedSpans();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans.front().ts_us, 2u);
  EXPECT_EQ(spans.back().ts_us, 5u);
}

TEST(ObsTraceTest, ThreadsRecordIntoIndependentBuffers) {
  obs::Tracer tracer;
  auto record = [&tracer](uint64_t base) {
    for (uint64_t i = 0; i < 100; ++i) {
      tracer.Span("event", base + i, /*dur=*/1,
                  static_cast<uint32_t>(base / 1000));
    }
  };
  std::thread t1(record, 1000);
  std::thread t2(record, 2000);
  t1.join();
  t2.join();
  EXPECT_EQ(tracer.size(), 200u);
  EXPECT_EQ(tracer.dropped(), 0u);
  const std::vector<obs::TraceSpan> spans = tracer.SortedSpans();
  ASSERT_EQ(spans.size(), 200u);
  // Globally sorted regardless of which thread's buffer held what.
  for (size_t i = 1; i < spans.size(); ++i) {
    EXPECT_LE(spans[i - 1].ts_us, spans[i].ts_us);
  }
}

// --- engine integration -----------------------------------------------------

/// Same workload shape as parallel_test.cc: a skip-till-any Kleene query
/// whose run set doubles per matching avail, capped by max_runs, so shedding
/// fires on (almost) every cooldown boundary.
std::vector<EventPtr> StateGrowthEvents(BikeSchema* fixture, int n) {
  std::vector<EventPtr> events;
  events.reserve(static_cast<size_t>(n));
  Timestamp ts = kMinute;
  for (int i = 0; i < n; ++i) {
    ts += kSecond;
    switch (i % 7) {
      case 0:
        events.push_back(fixture->Req(ts, i % 5, 1000 + i % 11));
        break;
      case 6:
        events.push_back(fixture->Unlock(ts, i % 5, 1000 + i % 11, i % 3));
        break;
      default:
        events.push_back(fixture->Avail(ts, i % 5, i % 13));
        break;
    }
  }
  return events;
}

EngineOptions ObsWorkloadOptions(size_t threads, size_t shards) {
  EngineOptions options;
  options.latency_mode = LatencyMode::kVirtualCost;
  options.latency_threshold_micros = 40.0;
  options.latency_window_events = 32;
  options.shed_cooldown_events = 32;
  options.parallel.threads = threads;
  options.parallel.shards = shards;
  options.parallel.min_parallel_runs = 1;
  options.max_runs = 1024;
  return options;
}

struct ObsExports {
  std::string prom;
  std::string json;
  std::string trace;
  std::string audit;
  uint64_t events_processed = 0;
  uint64_t runs_shed = 0;
  uint64_t shed_triggers = 0;
  uint64_t event_busy_count = 0;
  uint64_t shed_episode_count = 0;
  uint64_t audit_appended = 0;
};

ObsExports RunObsWorkload(const std::vector<EventPtr>& events, size_t threads,
                          size_t shards) {
  BikeSchema fixture;  // schemas are only used at compile time here
  NfaPtr nfa = fixture.Compile(
      "PATTERN SEQ(req a, avail+ b[], unlock c) "
      "WHERE a.loc = b[i].loc, c.uid = a.uid WITHIN 30 min");
  StateShedderOptions shed_options;
  shed_options.time_slices = 4;
  auto shedder =
      std::make_unique<StateShedder>(shed_options, &fixture.registry);
  Engine engine(nfa, ObsWorkloadOptions(threads, shards), std::move(shedder));

  obs::ShedAuditLog audit;
  obs::Tracer tracer;
  engine.AttachAuditLog(&audit);
  engine.AttachTracer(&tracer);
  EXPECT_TRUE(engine
                  .ProcessBatch(std::span<const EventPtr>(events.data(),
                                                          events.size()))
                  .ok());

  obs::Registry registry;
  engine.ExportMetrics(&registry);
  ObsExports out;
  out.prom = registry.ToPrometheusText();
  out.json = registry.ToJson();
  out.trace = tracer.ToJson();
  out.audit = audit.ToJsonl();
  out.events_processed = engine.metrics().events_processed;
  out.runs_shed = engine.metrics().runs_shed;
  out.shed_triggers = engine.metrics().shed_triggers;
  out.event_busy_count = engine.event_busy_histogram().count();
  out.shed_episode_count = engine.shed_episode_histogram().count();
  out.audit_appended = audit.total_appended();
  return out;
}

TEST(ObsEngineTest, ExportsAreByteIdenticalAcrossThreadCounts) {
  BikeSchema fixture;
  const std::vector<EventPtr> events = StateGrowthEvents(&fixture, 900);
  const ObsExports serial = RunObsWorkload(events, /*threads=*/0,
                                           /*shards=*/0);
  ASSERT_GT(serial.runs_shed, 0u) << "workload must trigger shedding";
  ASSERT_FALSE(serial.audit.empty());
  ASSERT_NE(serial.trace.find("\"name\":\"event\""), std::string::npos);

  const size_t configs[][2] = {{1, 4}, {2, 4}, {4, 4}, {4, 8}};
  for (const auto& config : configs) {
    SCOPED_TRACE("threads=" + std::to_string(config[0]) +
                 " shards=" + std::to_string(config[1]));
    const ObsExports other = RunObsWorkload(events, config[0], config[1]);
    // The determinism contract (docs/PARALLELISM.md) extends to every
    // observability surface: byte-for-byte equal exports.
    EXPECT_EQ(serial.prom, other.prom);
    EXPECT_EQ(serial.json, other.json);
    EXPECT_EQ(serial.trace, other.trace);
    EXPECT_EQ(serial.audit, other.audit);
  }
}

TEST(ObsEngineTest, HistogramsAndAuditTrackEngineCounters) {
  BikeSchema fixture;
  const std::vector<EventPtr> events = StateGrowthEvents(&fixture, 600);
  const ObsExports run = RunObsWorkload(events, /*threads=*/0, /*shards=*/0);

  EXPECT_EQ(run.events_processed, 600u);
  // One busy-latency sample per processed event, one episode-duration
  // sample per shed trigger, one audit record per shed run.
  EXPECT_EQ(run.event_busy_count, run.events_processed);
  EXPECT_EQ(run.shed_episode_count, run.shed_triggers);
  EXPECT_EQ(run.audit_appended, run.runs_shed);
  EXPECT_GT(run.shed_triggers, 0u);

  // The trace covers every instrumented phase of this workload.
  EXPECT_NE(run.trace.find("\"name\":\"ingest_batch\""), std::string::npos);
  EXPECT_NE(run.trace.find("\"name\":\"event\""), std::string::npos);
  EXPECT_NE(run.trace.find("\"name\":\"eval_parallel\""), std::string::npos);
  EXPECT_NE(run.trace.find("\"name\":\"merge\""), std::string::npos);
  EXPECT_NE(run.trace.find("\"name\":\"shed_episode\""), std::string::npos);

  // The metrics exports carry the engine counter families and the three
  // latency histograms.
  for (const char* family :
       {"cep_events_processed_total", "cep_runs_shed_total",
        "cep_event_busy_us_bucket", "cep_merge_us_count",
        "cep_shed_episode_us_sum"}) {
    EXPECT_NE(run.prom.find(family), std::string::npos) << family;
  }
  // Audit records carry the SBLS model scores (C-, and so score, are
  // strictly positive whenever the cost model has seen any events).
  EXPECT_NE(run.audit.find("\"c_plus\":"), std::string::npos);
  EXPECT_NE(run.audit.find("\"time_slice\":"), std::string::npos);
}

TEST(ObsEngineTest, ShedCallbackSeesEveryVictim) {
  BikeSchema fixture;
  const std::vector<EventPtr> events = StateGrowthEvents(&fixture, 600);
  NfaPtr nfa = fixture.Compile(
      "PATTERN SEQ(req a, avail+ b[], unlock c) "
      "WHERE a.loc = b[i].loc, c.uid = a.uid WITHIN 30 min");
  StateShedderOptions shed_options;
  shed_options.time_slices = 4;
  auto shedder =
      std::make_unique<StateShedder>(shed_options, &fixture.registry);
  Engine engine(nfa, ObsWorkloadOptions(0, 0), std::move(shedder));

  uint64_t callbacks = 0;
  bool ids_consistent = true;
  engine.SetShedCallback(
      [&](const cep::Run& run, const obs::ShedDecisionRecord& record) {
        ++callbacks;
        if (run.id() != record.run_id) ids_consistent = false;
        if (record.shed_fraction <= 0.0 || record.shed_fraction > 1.0) {
          ids_consistent = false;
        }
      });
  CEP_ASSERT_OK(engine.ProcessBatch(
      std::span<const EventPtr>(events.data(), events.size())));
  EXPECT_GT(callbacks, 0u);
  EXPECT_EQ(callbacks, engine.metrics().runs_shed);
  EXPECT_TRUE(ids_consistent);
}

TEST(ObsMultiEngineTest, LabelledAndAggregateExport) {
  BikeSchema fixture;
  const char* query =
      "PATTERN SEQ(req a, unlock c) WHERE c.uid = a.uid WITHIN 30 min";
  MultiEngine multi;
  EngineOptions options;
  multi.AddQuery(fixture.Compile(query), options, nullptr, "alpha");
  multi.AddQuery(fixture.Compile(query), options, nullptr, "beta");

  obs::ShedAuditLog audit;
  multi.AttachAuditLog(&audit);

  const std::vector<EventPtr> events = StateGrowthEvents(&fixture, 140);
  CEP_ASSERT_OK(multi.ProcessBatch(
      std::span<const EventPtr>(events.data(), events.size())));
  EXPECT_EQ(multi.engine(0).metrics().events_processed, 140u);

  obs::Registry registry;
  multi.ExportMetrics(&registry);
  const std::string prom = registry.ToPrometheusText();
  EXPECT_NE(prom.find("cep_events_processed_total{query=\"alpha\"} 140"),
            std::string::npos);
  EXPECT_NE(prom.find("cep_events_processed_total{query=\"beta\"} 140"),
            std::string::npos);
  // The unlabelled aggregate keeps events_processed assign-last semantics:
  // 140 shared input events, not 280.
  EXPECT_NE(prom.find("\ncep_events_processed_total 140\n"),
            std::string::npos);
}

}  // namespace
}  // namespace cep
