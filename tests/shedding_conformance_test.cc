// Strategy-conformance suite: every shedder the ShedderRegistry knows is
// held to the engine's reproducibility contracts, so a newly registered
// strategy is conformance-checked without touching this file. Per strategy:
//
//  1. Determinism      — two identical serial runs produce byte-identical
//                        artifacts (matches, metrics, audit JSONL, final
//                        snapshot bytes).
//  2. Thread identity  — 1 thread/1 shard vs 4 threads/8 shards produce
//                        byte-identical artifacts (the decide+apply split
//                        guarantees all shedder hooks run serially).
//  3. Resume identity  — checkpoint mid-stream (while shed episodes are
//                        firing), restore into a fresh engine, replay the
//                        tail: final artifacts are byte-identical.
//  4. Conservation     — Engine::VerifyInvariants holds after every event
//                        under sustained shedding pressure.
//
// Plus unit tests for the registry itself (spec parsing, strict key
// validation, the hybrid composition rules) and for the widened
// ShedDecision (one probe decision can drop the event AND shed runs).

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "obs/audit.h"
#include "shedding/hybrid_shedder.h"
#include "shedding/registry.h"
#include "test_util.h"

namespace cep {
namespace {

using testing_util::BikeSchema;

constexpr const char* kQuery =
    "PATTERN SEQ(req a, avail+ b[], unlock c) "
    "WHERE diff(b[i].loc, a.loc) < 10, c.uid = a.uid WITHIN 5 min";

/// Inline spec exercising each strategy's own knobs at a fixed seed. Bare
/// names fall through (none, ttl — knobless strategies).
std::string SpecFor(const std::string& name) {
  if (name == "rbls") return "rbls(seed=99)";
  if (name == "ibls") return "ibls(seed=99,drop=0.3)";
  if (name == "sbls") return "sbls(seed=99,hash=req:loc,slices=8)";
  if (name == "espice") return "espice(seed=99,drop=0.3,buckets=8)";
  if (name == "hspice") return "hspice(seed=99,drop=0.3)";
  if (name == "pspice") return "pspice(slices=8)";
  if (name == "hybrid") return "hybrid(seed=99,drop=0.3,slices=8)";
  return name;
}

std::vector<std::string> RegisteredNames() {
  std::vector<std::string> names;
  for (const ShedderStrategyInfo& info : ShedderRegistry::ListStrategies()) {
    names.push_back(info.name);
  }
  return names;
}

/// Seeded bike-share stream dense enough that max_runs + θ overload keep
/// shed episodes firing throughout the run.
std::vector<EventPtr> MakeStream(BikeSchema* schema, int num_events) {
  Rng rng(0xc0f0e5);
  std::vector<EventPtr> events;
  events.reserve(num_events);
  Timestamp ts = 0;
  for (int i = 0; i < num_events; ++i) {
    ts += 1 + static_cast<Duration>(rng.NextBounded(20 * kSecond));
    const auto loc = static_cast<int64_t>(rng.NextBounded(12));
    const auto uid = static_cast<int64_t>(rng.NextBounded(4));
    switch (rng.NextBounded(3)) {
      case 0:
        events.push_back(schema->Req(ts, loc, uid));
        break;
      case 1:
        events.push_back(schema->Avail(
            ts, loc, static_cast<int64_t>(rng.NextBounded(50))));
        break;
      default:
        events.push_back(schema->Unlock(ts, loc, uid, 1));
        break;
    }
  }
  return events;
}

EngineOptions ConformanceOptions(size_t threads, size_t shards) {
  EngineOptions options;
  options.latency_mode = LatencyMode::kVirtualCost;
  options.latency_threshold_micros = 50.0;
  options.max_runs = 24;  // deterministic shed trigger on top of θ
  options.shed_amount.fraction = 0.4;
  options.shed_cooldown_events = 8;
  options.parallel.threads = threads;
  options.parallel.shards = shards;
  options.parallel.min_parallel_runs = 4;
  return options;
}

struct Artifacts {
  std::vector<uint64_t> fingerprints;
  std::string metrics;
  std::string audit_jsonl;
  std::string snapshot;
  uint64_t runs_shed = 0;
  uint64_t events_dropped = 0;
};

/// Runs the stream through one engine; optionally snapshots after
/// `checkpoint_at` events (into *checkpoint) or restores from *restore
/// before processing. Verifies run conservation at every step.
Artifacts RunStream(BikeSchema* schema, const NfaPtr& nfa,
                    const std::string& strategy,
                    const std::vector<EventPtr>& events, size_t threads,
                    size_t shards, size_t checkpoint_at = 0,
                    std::string* checkpoint = nullptr,
                    const std::string* restore = nullptr) {
  ShedderEnv env;
  env.schema = &schema->registry;
  auto shedder = ShedderRegistry::Make(SpecFor(strategy), env);
  EXPECT_TRUE(shedder.ok()) << shedder.status().ToString();
  Engine engine(nfa, ConformanceOptions(threads, shards),
                shedder.MoveValueUnsafe());
  obs::ShedAuditLog audit(1 << 12);
  engine.AttachAuditLog(&audit);

  size_t start = 0;
  if (restore != nullptr) {
    const Status st = engine.RestoreFromSnapshot(*restore);
    EXPECT_TRUE(st.ok()) << st.ToString();
    start = static_cast<size_t>(engine.stream_offset());
    EXPECT_LE(start, events.size());
  }
  for (size_t i = start; i < events.size(); ++i) {
    // OfferEvent (not ProcessEvent) so the snapshot's stream offset
    // advances and the resumed engine skips the consumed prefix.
    const Status st = engine.OfferEvent(events[i]);
    EXPECT_TRUE(st.ok()) << st.ToString();
    const Status inv = engine.VerifyInvariants();
    EXPECT_TRUE(inv.ok()) << "after event " << i << ": " << inv.ToString();
    if (checkpoint != nullptr && i + 1 == checkpoint_at) {
      auto snap = engine.SerializeSnapshot();
      EXPECT_TRUE(snap.ok()) << snap.status().ToString();
      *checkpoint = snap.MoveValueUnsafe();
    }
  }
  const Status st = engine.Flush();
  EXPECT_TRUE(st.ok()) << st.ToString();

  Artifacts artifacts;
  for (const Match& m : engine.matches()) {
    artifacts.fingerprints.push_back(m.fingerprint);
  }
  artifacts.metrics = engine.metrics().ToString();
  artifacts.audit_jsonl = audit.ToJsonl();
  auto snap = engine.SerializeSnapshot();
  EXPECT_TRUE(snap.ok()) << snap.status().ToString();
  artifacts.snapshot = snap.MoveValueUnsafe();
  artifacts.runs_shed = engine.metrics().runs_shed;
  artifacts.events_dropped = engine.metrics().events_dropped;
  return artifacts;
}

class StrategyConformance : public ::testing::TestWithParam<std::string> {
 protected:
  BikeSchema schema_;
};

INSTANTIATE_TEST_SUITE_P(
    Registry, StrategyConformance, ::testing::ValuesIn(RegisteredNames()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

TEST_P(StrategyConformance, DeterministicAtFixedSeed) {
  NfaPtr nfa = schema_.Compile(kQuery);
  ASSERT_NE(nfa, nullptr);
  const std::vector<EventPtr> events = MakeStream(&schema_, 240);
  const Artifacts a = RunStream(&schema_, nfa, GetParam(), events, 0, 0);
  const Artifacts b = RunStream(&schema_, nfa, GetParam(), events, 0, 0);
  EXPECT_EQ(a.fingerprints, b.fingerprints);
  EXPECT_EQ(a.metrics, b.metrics);
  EXPECT_EQ(a.audit_jsonl, b.audit_jsonl);
  EXPECT_EQ(a.snapshot, b.snapshot);
}

TEST_P(StrategyConformance, ArtifactsIdenticalAcrossThreadsAndShards) {
  NfaPtr nfa = schema_.Compile(kQuery);
  ASSERT_NE(nfa, nullptr);
  const std::vector<EventPtr> events = MakeStream(&schema_, 240);
  const Artifacts serial = RunStream(&schema_, nfa, GetParam(), events, 1, 1);
  const Artifacts parallel =
      RunStream(&schema_, nfa, GetParam(), events, 4, 8);
  EXPECT_EQ(serial.fingerprints, parallel.fingerprints);
  EXPECT_EQ(serial.metrics, parallel.metrics);
  EXPECT_EQ(serial.audit_jsonl, parallel.audit_jsonl);
  EXPECT_EQ(serial.snapshot, parallel.snapshot);
}

TEST_P(StrategyConformance, CheckpointRestoreMidShedEpisodeByteIdentical) {
  NfaPtr nfa = schema_.Compile(kQuery);
  ASSERT_NE(nfa, nullptr);
  const std::vector<EventPtr> events = MakeStream(&schema_, 240);
  std::string checkpoint;
  const Artifacts full = RunStream(&schema_, nfa, GetParam(), events, 0, 0,
                                   /*checkpoint_at=*/120, &checkpoint);
  ASSERT_FALSE(checkpoint.empty());
  const Artifacts resumed =
      RunStream(&schema_, nfa, GetParam(), events, 0, 0, 0, nullptr,
                &checkpoint);
  EXPECT_EQ(full.fingerprints, resumed.fingerprints);
  EXPECT_EQ(full.metrics, resumed.metrics);
  EXPECT_EQ(full.audit_jsonl, resumed.audit_jsonl);
  EXPECT_EQ(full.snapshot, resumed.snapshot);
}

TEST_P(StrategyConformance, RunConservationUnderSustainedShedding) {
  // VerifyInvariants is asserted after every event inside RunStream; this
  // test additionally checks the pressure was real for episode strategies.
  NfaPtr nfa = schema_.Compile(kQuery);
  ASSERT_NE(nfa, nullptr);
  const std::vector<EventPtr> events = MakeStream(&schema_, 240);
  const Artifacts a = RunStream(&schema_, nfa, GetParam(), events, 0, 0);
  const std::string& name = GetParam();
  if (name == "rbls" || name == "ttl" || name == "sbls" ||
      name == "pspice" || name == "hybrid") {
    EXPECT_GT(a.runs_shed, 0u) << "state-side strategy never shed a run";
  }
  if (name == "none") {
    EXPECT_EQ(a.runs_shed, 0u);
    EXPECT_EQ(a.events_dropped, 0u);
  }
}

// ---------------------------------------------------------------------------
// Registry unit tests
// ---------------------------------------------------------------------------

TEST(ShedderRegistryTest, ListStrategiesContainsTheWholeFamily) {
  const std::vector<std::string> names = RegisteredNames();
  for (const char* expected : {"none", "ibls", "rbls", "ttl", "sbls",
                               "espice", "hspice", "pspice", "hybrid"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing strategy " << expected;
  }
  // Name-sorted (the CLI --help and !hello listings rely on it).
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(ShedderRegistryTest, ParseSpecForms) {
  auto bare = ShedderRegistry::ParseSpec("sbls");
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(bare.ValueOrDie().first, "sbls");
  EXPECT_TRUE(bare.ValueOrDie().second.empty());

  auto params = ShedderRegistry::ParseSpec(" SBLS( slices=8 , seed=7 ) ");
  ASSERT_TRUE(params.ok());
  EXPECT_EQ(params.ValueOrDie().first, "sbls");
  EXPECT_EQ(params.ValueOrDie().second.at("slices"), "8");
  EXPECT_EQ(params.ValueOrDie().second.at("seed"), "7");

  EXPECT_FALSE(ShedderRegistry::ParseSpec("sbls(slices=8").ok());
  EXPECT_FALSE(ShedderRegistry::ParseSpec("").ok());
  EXPECT_FALSE(ShedderRegistry::ParseSpec("sbls(slices)").ok());
  EXPECT_FALSE(ShedderRegistry::ParseSpec("sbls(seed=1,seed=2)").ok());
}

TEST(ShedderRegistryTest, DuplicateKnobIsHardErrorEvenWithSpacing) {
  // Keys are stripped before the duplicate check, so "slices =8" and
  // "slices= 16" name the same knob; historically the spaced form slipped
  // past and last-won silently in the factory's param map.
  const auto spaced = ShedderRegistry::ParseSpec("sbls(slices =8, slices= 16)");
  ASSERT_FALSE(spaced.ok());
  EXPECT_TRUE(spaced.status().IsInvalidArgument()) << spaced.status().ToString();
  EXPECT_NE(spaced.status().ToString().find("duplicate"), std::string::npos);

  const auto plain = ShedderRegistry::ParseSpec("rbls(seed=1,seed=2)");
  ASSERT_FALSE(plain.ok());
  EXPECT_TRUE(plain.status().IsInvalidArgument());

  // Make surfaces the same hard error (not a fallback to defaults).
  EXPECT_TRUE(
      ShedderRegistry::Make("rbls(seed=1, seed =2)").status().IsInvalidArgument());
}

TEST(ShedderRegistryTest, EmptySpecIsInvalidArgumentNotParseError) {
  for (const char* spec : {"", "   ", "\t", "(slices=8)"}) {
    const auto parsed = ShedderRegistry::ParseSpec(spec);
    ASSERT_FALSE(parsed.ok()) << "spec '" << spec << "'";
    EXPECT_TRUE(parsed.status().IsInvalidArgument())
        << "spec '" << spec << "': " << parsed.status().ToString();
  }
  EXPECT_TRUE(ShedderRegistry::Make("  ").status().IsInvalidArgument());
}

TEST(ShedderRegistryTest, SpacedKnobsParse) {
  const auto parsed = ShedderRegistry::ParseSpec("sbls( slices = 8 )");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.ValueOrDie().second.at("slices"), "8");
}

TEST(ShedderRegistryTest, UnknownStrategyAndUnknownKeyAreErrors) {
  EXPECT_FALSE(ShedderRegistry::Make("no-such-strategy").ok());
  // Strict: an inline spec key the strategy does not know is a typo.
  EXPECT_FALSE(ShedderRegistry::Make("rbls(sede=7)").ok());
  EXPECT_TRUE(ShedderRegistry::Make("rbls(seed=7)").ok());
}

TEST(ShedderRegistryTest, NoneProducesNullShedder) {
  auto none = ShedderRegistry::Make("none");
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(none.ValueOrDie(), nullptr);
}

TEST(ShedderRegistryTest, MakeFromParamsFiltersForeignKeys) {
  // Flat service specs mix engine options into the same map; the registry
  // must ignore what the strategy does not declare.
  ShedderParams params{{"seed", "7"}, {"theta", "80"}, {"threads", "4"}};
  auto shedder = ShedderRegistry::MakeFromParams("rbls", params);
  ASSERT_TRUE(shedder.ok()) << shedder.status().ToString();
  EXPECT_NE(shedder.ValueOrDie(), nullptr);
}

TEST(ShedderRegistryTest, HybridComposesAndValidatesChildren) {
  BikeSchema schema;
  ShedderEnv env;
  env.schema = &schema.registry;
  auto hybrid =
      ShedderRegistry::Make("hybrid(input=ibls,state=sbls,hash=req:loc)", env);
  ASSERT_TRUE(hybrid.ok()) << hybrid.status().ToString();
  EXPECT_EQ(hybrid.ValueOrDie()->name(), "HYBRID[IBLS+SBLS]");

  EXPECT_FALSE(ShedderRegistry::Make("hybrid(input=hybrid)", env).ok());
  EXPECT_FALSE(ShedderRegistry::Make("hybrid(state=none)", env).ok());
  EXPECT_FALSE(ShedderRegistry::Make("hybrid(input=none)", env).ok());
}

TEST(ShedderRegistryTest, EveryStrategyHasSummaryAndBuildableDefault) {
  BikeSchema schema;
  ShedderEnv env;
  env.schema = &schema.registry;
  for (const ShedderStrategyInfo& info : ShedderRegistry::ListStrategies()) {
    EXPECT_FALSE(info.summary.empty()) << info.name;
    auto shedder = ShedderRegistry::Make(info.name, env);
    EXPECT_TRUE(shedder.ok())
        << info.name << ": " << shedder.status().ToString();
  }
}

// ---------------------------------------------------------------------------
// Widened ShedDecision: one probe decision can drop the event AND shed runs
// ---------------------------------------------------------------------------

/// Drops every third probed event and sheds the oldest live run whenever
/// more than two are alive — exercises both halves of ShedDecision from the
/// input probe path (no overload needed).
class DropAndShedShedder final : public Shedder {
 public:
  std::string name() const override { return "TEST-DROP-AND-SHED"; }

  ShedDecision Decide(const ShedContext& ctx) override {
    ShedDecision decision;
    if (ctx.event == nullptr) return decision;
    size_t live = 0;
    for (size_t i = 0; i < ctx.runs.size(); ++i) {
      if (ctx.runs[i] == nullptr) continue;
      if (live == 0 && ctx.runs.size() > 2) {
        ShedVictim victim;
        victim.index = i;
        decision.victims.push_back(victim);
      }
      ++live;
    }
    if (live <= 2) decision.victims.clear();
    if (++probes_ % 3 == 0) decision.drop_event = true;
    return decision;
  }

 private:
  uint64_t probes_ = 0;
};

TEST(ShedDecisionTest, ProbeCanDropEventAndShedRunsInOneDecision) {
  BikeSchema schema;
  NfaPtr nfa = schema.Compile(kQuery);
  ASSERT_NE(nfa, nullptr);
  const std::vector<EventPtr> events = MakeStream(&schema, 120);
  Engine engine(nfa, EngineOptions{},
                std::make_unique<DropAndShedShedder>());
  for (const EventPtr& event : events) {
    CEP_ASSERT_OK(engine.ProcessEvent(event));
    CEP_ASSERT_OK(engine.VerifyInvariants());
  }
  CEP_ASSERT_OK(engine.Flush());
  EXPECT_GT(engine.metrics().events_dropped, 0u);
  EXPECT_GT(engine.metrics().runs_shed, 0u);
  EXPECT_GT(engine.metrics().shed_triggers, 0u);
}

}  // namespace
}  // namespace cep
