#include "event/event.h"

#include <gtest/gtest.h>

#include "event/schema.h"
#include "test_util.h"

namespace cep {
namespace {

using testing_util::BikeSchema;

TEST(SchemaTest, AttributeLookup) {
  EventSchema schema("tick", {{"symbol", ValueType::kInt},
                              {"price", ValueType::kDouble}});
  EXPECT_EQ(schema.name(), "tick");
  EXPECT_EQ(schema.num_attributes(), 2u);
  EXPECT_EQ(schema.FindAttribute("symbol"), 0);
  EXPECT_EQ(schema.FindAttribute("price"), 1);
  EXPECT_EQ(schema.FindAttribute("nope"), -1);
  EXPECT_TRUE(schema.GetAttributeIndex("nope").status().IsNotFound());
  EXPECT_EQ(schema.GetAttributeIndex("price").ValueOrDie(), 1);
}

TEST(SchemaTest, ToStringListsAttributes) {
  EventSchema schema("t", {{"a", ValueType::kInt}, {"b", ValueType::kString}});
  EXPECT_EQ(schema.ToString(), "t(a:int, b:string)");
}

TEST(SchemaRegistryTest, RegisterAndLookup) {
  SchemaRegistry registry;
  const auto id = registry.Register("foo", {{"x", ValueType::kInt}});
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(registry.FindType("foo"), id.ValueOrDie());
  EXPECT_EQ(registry.FindType("bar"), kInvalidEventType);
  EXPECT_TRUE(registry.GetType("bar").status().IsNotFound());
  EXPECT_EQ(registry.schema(id.ValueOrDie())->name(), "foo");
  EXPECT_EQ(registry.num_types(), 1u);
}

TEST(SchemaRegistryTest, DuplicateRegistrationFails) {
  SchemaRegistry registry;
  ASSERT_TRUE(registry.Register("foo", {}).ok());
  EXPECT_TRUE(registry.Register("foo", {}).status().IsAlreadyExists());
}

TEST(SchemaRegistryTest, IdsAreDense) {
  SchemaRegistry registry;
  EXPECT_EQ(registry.Register("a", {}).ValueOrDie(), 0u);
  EXPECT_EQ(registry.Register("b", {}).ValueOrDie(), 1u);
  EXPECT_EQ(registry.Register("c", {}).ValueOrDie(), 2u);
}

TEST(EventTest, AttributeAccessByIndexAndName) {
  BikeSchema fixture;
  const EventPtr e = fixture.Req(100, 7, 55);
  EXPECT_EQ(e->timestamp(), 100);
  EXPECT_EQ(e->attribute(0), Value(7));
  EXPECT_EQ(e->attribute("loc"), Value(7));
  EXPECT_EQ(e->attribute("uid"), Value(55));
  EXPECT_TRUE(e->attribute("missing").is_null());
}

TEST(EventTest, ToStringContainsPayload) {
  BikeSchema fixture;
  const EventPtr e = fixture.Req(5, 1, 2);
  EXPECT_EQ(e->ToString(), "req@5{loc=1, uid=2}");
}

TEST(EventBuilderTest, BuildsValidEvent) {
  BikeSchema fixture;
  const EventTypeId req = fixture.registry.FindType("req");
  EventBuilder builder(req, fixture.registry.schema(req), 42);
  auto result =
      builder.Set("loc", Value(3)).Set("uid", Value(9)).SetSequence(77).Build();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const EventPtr e = result.ValueOrDie();
  EXPECT_EQ(e->timestamp(), 42);
  EXPECT_EQ(e->sequence(), 77u);
  EXPECT_EQ(e->attribute("loc"), Value(3));
}

TEST(EventBuilderTest, UnsetAttributesAreNull) {
  BikeSchema fixture;
  const EventTypeId req = fixture.registry.FindType("req");
  EventBuilder builder(req, fixture.registry.schema(req), 1);
  auto result = builder.Set("loc", Value(3)).Build();
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.ValueOrDie()->attribute("uid").is_null());
}

TEST(EventBuilderTest, RejectsUnknownAttribute) {
  BikeSchema fixture;
  const EventTypeId req = fixture.registry.FindType("req");
  EventBuilder builder(req, fixture.registry.schema(req), 1);
  EXPECT_TRUE(builder.Set("bogus", Value(1)).Build().status().IsNotFound());
}

TEST(EventBuilderTest, RejectsWrongType) {
  BikeSchema fixture;
  const EventTypeId req = fixture.registry.FindType("req");
  EventBuilder builder(req, fixture.registry.schema(req), 1);
  EXPECT_TRUE(
      builder.Set("loc", Value("not an int")).Build().status().IsTypeError());
}

TEST(EventBuilderTest, WidensIntToDouble) {
  SchemaRegistry registry;
  const auto id =
      registry.Register("m", {{"v", ValueType::kDouble}}).ValueOrDie();
  EventBuilder builder(id, registry.schema(id), 1);
  auto result = builder.Set("v", Value(4)).Build();
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.ValueOrDie()->attribute("v").is_double());
  EXPECT_DOUBLE_EQ(result.ValueOrDie()->attribute("v").double_value(), 4.0);
}

TEST(EventBuilderTest, FirstErrorWins) {
  BikeSchema fixture;
  const EventTypeId req = fixture.registry.FindType("req");
  EventBuilder builder(req, fixture.registry.schema(req), 1);
  const auto status = builder.Set("bogus", Value(1))
                          .Set("also_bogus", Value(2))
                          .Build()
                          .status();
  EXPECT_TRUE(status.IsNotFound());
  EXPECT_NE(status.message().find("bogus"), std::string::npos);
}

}  // namespace
}  // namespace cep
