#include "query/lexer.h"

#include <gtest/gtest.h>

namespace cep {
namespace {

std::vector<TokenKind> Kinds(const std::string& text) {
  auto tokens = Tokenize(text);
  EXPECT_TRUE(tokens.ok()) << tokens.status().ToString();
  std::vector<TokenKind> kinds;
  for (const auto& t : tokens.ValueOrDie()) kinds.push_back(t.kind);
  return kinds;
}

TEST(LexerTest, EmptyInputYieldsEnd) {
  EXPECT_EQ(Kinds(""), (std::vector<TokenKind>{TokenKind::kEnd}));
  EXPECT_EQ(Kinds("   \n\t "), (std::vector<TokenKind>{TokenKind::kEnd}));
}

TEST(LexerTest, Identifiers) {
  const auto tokens = Tokenize("abc _x a1_b2").ValueOrDie();
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].text, "abc");
  EXPECT_EQ(tokens[1].text, "_x");
  EXPECT_EQ(tokens[2].text, "a1_b2");
}

TEST(LexerTest, IntegerAndDoubleLiterals) {
  const auto tokens = Tokenize("42 3.5 1e3 2.5e-2 7").ValueOrDie();
  EXPECT_EQ(tokens[0].kind, TokenKind::kIntLiteral);
  EXPECT_EQ(tokens[0].value.int_value(), 42);
  EXPECT_EQ(tokens[1].kind, TokenKind::kDoubleLiteral);
  EXPECT_DOUBLE_EQ(tokens[1].value.double_value(), 3.5);
  EXPECT_EQ(tokens[2].kind, TokenKind::kDoubleLiteral);
  EXPECT_DOUBLE_EQ(tokens[2].value.double_value(), 1000.0);
  EXPECT_DOUBLE_EQ(tokens[3].value.double_value(), 0.025);
  EXPECT_EQ(tokens[4].kind, TokenKind::kIntLiteral);
}

TEST(LexerTest, StringLiterals) {
  const auto tokens = Tokenize("'abc' \"def\" 'it''s'").ValueOrDie();
  EXPECT_EQ(tokens[0].kind, TokenKind::kStringLiteral);
  EXPECT_EQ(tokens[0].value.string_value(), "abc");
  EXPECT_EQ(tokens[1].value.string_value(), "def");
  EXPECT_EQ(tokens[2].value.string_value(), "it's");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_TRUE(Tokenize("'oops").status().IsParseError());
}

TEST(LexerTest, OperatorsAndPunctuation) {
  EXPECT_EQ(Kinds(", ( ) [ ] . + - * / %"),
            (std::vector<TokenKind>{
                TokenKind::kComma, TokenKind::kLParen, TokenKind::kRParen,
                TokenKind::kLBracket, TokenKind::kRBracket, TokenKind::kDot,
                TokenKind::kPlus, TokenKind::kMinus, TokenKind::kStar,
                TokenKind::kSlash, TokenKind::kPercent, TokenKind::kEnd}));
}

TEST(LexerTest, ComparisonOperators) {
  EXPECT_EQ(Kinds("= == != <> < <= > >= !"),
            (std::vector<TokenKind>{
                TokenKind::kEq, TokenKind::kEq, TokenKind::kNe, TokenKind::kNe,
                TokenKind::kLt, TokenKind::kLe, TokenKind::kGt, TokenKind::kGe,
                TokenKind::kBang, TokenKind::kEnd}));
}

TEST(LexerTest, LineComments) {
  EXPECT_EQ(Kinds("a -- comment until eol\nb"),
            (std::vector<TokenKind>{TokenKind::kIdentifier,
                                    TokenKind::kIdentifier, TokenKind::kEnd}));
}

TEST(LexerTest, MinusVsCommentDisambiguation) {
  // A single '-' is an operator; '--' starts a comment.
  EXPECT_EQ(Kinds("a - b"),
            (std::vector<TokenKind>{TokenKind::kIdentifier, TokenKind::kMinus,
                                    TokenKind::kIdentifier, TokenKind::kEnd}));
}

TEST(LexerTest, RejectsUnknownCharacters) {
  EXPECT_TRUE(Tokenize("a @ b").status().IsParseError());
  EXPECT_TRUE(Tokenize("#").status().IsParseError());
}

TEST(LexerTest, OffsetsPointIntoSource) {
  const auto tokens = Tokenize("ab cd").ValueOrDie();
  EXPECT_EQ(tokens[0].offset, 0u);
  EXPECT_EQ(tokens[1].offset, 3u);
}

TEST(LexerTest, DotBetweenIdentifiers) {
  EXPECT_EQ(Kinds("a.loc"),
            (std::vector<TokenKind>{TokenKind::kIdentifier, TokenKind::kDot,
                                    TokenKind::kIdentifier, TokenKind::kEnd}));
}

TEST(LexerTest, LeadingDotDigitIsDouble) {
  const auto tokens = Tokenize(".5").ValueOrDie();
  EXPECT_EQ(tokens[0].kind, TokenKind::kDoubleLiteral);
  EXPECT_DOUBLE_EQ(tokens[0].value.double_value(), 0.5);
}

}  // namespace
}  // namespace cep
