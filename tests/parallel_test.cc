// Tests for the parallel batched evaluation core: the ThreadPool, the
// RunArena, and — most importantly — the determinism contract: a K-shard
// engine fed batches of any size must produce bit-identical matches,
// metrics, and shed decisions to the serial engine (docs/PARALLELISM.md).

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

#include "common/parallel.h"
#include "engine/engine.h"
#include "engine/multi.h"
#include "engine/run_arena.h"
#include "shedding/state_shedder.h"
#include "test_util.h"

namespace cep {
namespace {

using testing_util::BikeSchema;

// --- ThreadPool ------------------------------------------------------------

TEST(ParallelThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelThreadPoolTest, ReusableAcrossJobs) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<size_t> sum{0};
    pool.ParallelFor(10, [&](size_t i) { sum.fetch_add(i + 1); });
    EXPECT_EQ(sum.load(), 55u);
  }
}

TEST(ParallelThreadPoolTest, NestedCallsRunInline) {
  ThreadPool pool(4);
  std::atomic<int> inner_total{0};
  pool.ParallelFor(8, [&](size_t) {
    EXPECT_TRUE(ThreadPool::InParallelRegion());
    // A nested loop must not deadlock on the already-busy pool.
    pool.ParallelFor(4, [&](size_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 32);
  EXPECT_FALSE(ThreadPool::InParallelRegion());
}

TEST(ParallelThreadPoolTest, WidthOneRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  int count = 0;  // no atomics needed: everything runs on this thread
  pool.ParallelFor(16, [&](size_t) { ++count; });
  EXPECT_EQ(count, 16);
}

// --- RunArena --------------------------------------------------------------

TEST(ParallelRunArenaTest, RecyclesReleasedSlots) {
  RunArena arena(/*runs_per_block=*/4);
  RunPtr a = arena.New(1, 2, 0, 0);
  cep::Run* first_slot = a.get();
  EXPECT_EQ(arena.live(), 1u);
  EXPECT_EQ(arena.capacity(), 4u);
  a.reset();
  EXPECT_EQ(arena.live(), 0u);
  // The freed slot is handed out again before any new block is carved.
  RunPtr b = arena.New(2, 2, 0, 0);
  EXPECT_EQ(b.get(), first_slot);
  EXPECT_EQ(arena.capacity(), 4u);
}

TEST(ParallelRunArenaTest, GrowsBlockwiseAndTracksBytes) {
  RunArena arena(/*runs_per_block=*/8);
  EXPECT_EQ(arena.bytes_reserved(), 0u);
  std::vector<RunPtr> runs;
  for (int i = 0; i < 20; ++i) runs.push_back(arena.New(i, 2, 0, 0));
  EXPECT_EQ(arena.live(), 20u);
  EXPECT_EQ(arena.capacity(), 24u);  // three blocks of 8
  EXPECT_GE(arena.bytes_reserved(), 24 * sizeof(cep::Run));
  runs.clear();
  EXPECT_EQ(arena.live(), 0u);
  EXPECT_EQ(arena.capacity(), 24u);  // blocks are retained for reuse
  arena.Reset();
  EXPECT_EQ(arena.capacity(), 0u);
  EXPECT_EQ(arena.bytes_reserved(), 0u);
  // The arena is usable again after Reset.
  RunPtr again = arena.New(99, 2, 0, 0);
  EXPECT_EQ(arena.live(), 1u);
}

TEST(ParallelRunArenaTest, DisabledArenaFallsBackToHeap) {
  RunArena arena(/*runs_per_block=*/0);
  RunPtr run = arena.New(1, 2, 0, 0);
  EXPECT_EQ(run->id(), 1u);
  EXPECT_EQ(arena.capacity(), 0u);
  EXPECT_EQ(arena.bytes_reserved(), 0u);
}

TEST(ParallelRunArenaTest, PooledRunsBehaveLikeHeapRuns) {
  BikeSchema fixture;
  RunArena arena(16);
  RunPtr parent = arena.New(1, 3, 0, 0);
  parent->Bind(0, fixture.Req(kMinute, 1, 7), 1);
  RunPtr child = parent->Extend(2, 1, fixture.Avail(2 * kMinute, 1, 9), 2,
                                &arena);
  EXPECT_EQ(arena.live(), 2u);
  EXPECT_EQ(child->size(), 2);
  EXPECT_EQ(child->state(), 2);
  EXPECT_EQ(parent->size(), 1);
  ASSERT_EQ(child->binding(0).size(), 1u);
  EXPECT_EQ(child->binding(0).front()->timestamp(), kMinute);
}

// --- Serial vs. sharded determinism ---------------------------------------

struct EngineOutcome {
  std::vector<uint64_t> match_fingerprints;
  std::vector<uint64_t> match_ids;
  std::vector<uint64_t> final_run_ids;
  EngineMetrics metrics;
  size_t num_runs = 0;
  DegradationLevel level = DegradationLevel::kHealthy;
};

/// A seeded workload whose Kleene query piles up runs and whose θ is tuned
/// so the shedder (and, when enabled, the degradation ladder) engages.
std::vector<EventPtr> StateGrowthEvents(BikeSchema* fixture, int n) {
  std::vector<EventPtr> events;
  events.reserve(static_cast<size_t>(n));
  Timestamp ts = kMinute;
  for (int i = 0; i < n; ++i) {
    ts += kSecond;
    switch (i % 7) {
      case 0:
        events.push_back(fixture->Req(ts, i % 5, 1000 + i % 11));
        break;
      case 6:
        events.push_back(fixture->Unlock(ts, i % 5, 1000 + i % 11, i % 3));
        break;
      default:
        events.push_back(fixture->Avail(ts, i % 5, i % 13));
        break;
    }
  }
  return events;
}

EngineOptions DeterminismOptions(size_t threads, size_t shards,
                                 bool degradation) {
  EngineOptions options;
  options.latency_mode = LatencyMode::kVirtualCost;
  options.latency_threshold_micros = 40.0;
  options.latency_window_events = 32;
  options.shed_cooldown_events = 32;
  options.parallel.threads = threads;
  options.parallel.shards = shards;
  options.parallel.min_parallel_runs = 1;  // force the sharded path
  // Hard cap: the skip-till-any Kleene workload doubles runs per matching
  // avail, which outruns cooldown-gated latency shedding. The cap keeps the
  // test bounded while still forcing shed decisions on (almost) every event.
  options.max_runs = 1024;
  if (degradation) {
    options.degradation.enabled = true;
    options.degradation.cooldown_events = 16;
    options.degradation.run_bytes_budget = 1 << 16;
  }
  return options;
}

EngineOutcome RunDeterminismWorkload(const std::vector<EventPtr>& events,
                                     size_t threads, size_t shards,
                                     size_t batch_size, bool degradation) {
  BikeSchema fixture;  // schemas are only used at compile time here
  NfaPtr nfa = fixture.Compile(
      "PATTERN SEQ(req a, avail+ b[], unlock c) "
      "WHERE a.loc = b[i].loc, c.uid = a.uid WITHIN 30 min");
  StateShedderOptions shed_options;
  shed_options.time_slices = 4;
  auto shedder =
      std::make_unique<StateShedder>(shed_options, &fixture.registry);
  Engine engine(nfa, DeterminismOptions(threads, shards, degradation),
                std::move(shedder));
  EXPECT_TRUE(engine.ProcessBatch(std::span<const EventPtr>(
                                      events.data(), events.size()))
                  .ok());
  // Exercise sub-batch splits as the stream API would produce them.
  (void)batch_size;
  EngineOutcome outcome;
  for (const Match& match : engine.matches()) {
    outcome.match_fingerprints.push_back(match.fingerprint);
    outcome.match_ids.push_back(match.id);
  }
  for (const auto& run : engine.runs()) {
    outcome.final_run_ids.push_back(run->id());
  }
  outcome.metrics = engine.metrics();
  outcome.num_runs = engine.num_runs();
  outcome.level = engine.degradation_level();
  return outcome;
}

/// Fields that must be bit-identical across every (threads, shards, batch)
/// configuration. parallel_events and busy_micros are configuration-
/// dependent by design and excluded.
void ExpectSameOutcome(const EngineOutcome& base, const EngineOutcome& other,
                       const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(base.match_fingerprints, other.match_fingerprints);
  EXPECT_EQ(base.match_ids, other.match_ids);
  EXPECT_EQ(base.final_run_ids, other.final_run_ids);
  EXPECT_EQ(base.num_runs, other.num_runs);
  EXPECT_EQ(base.level, other.level);
  const EngineMetrics& a = base.metrics;
  const EngineMetrics& b = other.metrics;
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.events_dropped, b.events_dropped);
  EXPECT_EQ(a.runs_created, b.runs_created);
  EXPECT_EQ(a.runs_extended, b.runs_extended);
  EXPECT_EQ(a.runs_expired, b.runs_expired);
  EXPECT_EQ(a.runs_killed, b.runs_killed);
  EXPECT_EQ(a.runs_shed, b.runs_shed);
  EXPECT_EQ(a.shed_triggers, b.shed_triggers);
  EXPECT_EQ(a.matches_emitted, b.matches_emitted);
  EXPECT_EQ(a.edge_evaluations, b.edge_evaluations);
  EXPECT_EQ(a.peak_runs, b.peak_runs);
  EXPECT_EQ(a.degradation_ups, b.degradation_ups);
  EXPECT_EQ(a.degradation_downs, b.degradation_downs);
  EXPECT_EQ(a.bypassed_spawns, b.bypassed_spawns);
  EXPECT_EQ(a.emergency_input_drops, b.emergency_input_drops);
  EXPECT_EQ(a.peak_run_bytes, b.peak_run_bytes);
}

TEST(ParallelDeterminismTest, ShardedMatchesSerialWithShedding) {
  BikeSchema fixture;
  const std::vector<EventPtr> events = StateGrowthEvents(&fixture, 1200);
  const EngineOutcome serial =
      RunDeterminismWorkload(events, /*threads=*/0, /*shards=*/0,
                             /*batch_size=*/1, /*degradation=*/false);
  ASSERT_GT(serial.metrics.matches_emitted, 0u);
  ASSERT_GT(serial.metrics.runs_shed, 0u) << "workload must trigger shedding";
  for (size_t shards : {1u, 2u, 4u, 8u}) {
    const EngineOutcome sharded = RunDeterminismWorkload(
        events, /*threads=*/4, shards, /*batch_size=*/1,
        /*degradation=*/false);
    if (shards > 1) {
      EXPECT_GT(sharded.metrics.parallel_events, 0u)
          << "sharded path was not exercised";
    }
    ExpectSameOutcome(serial, sharded,
                      "shards=" + std::to_string(shards));
  }
}

TEST(ParallelDeterminismTest, ShardedMatchesSerialUnderDegradationLadder) {
  BikeSchema fixture;
  const std::vector<EventPtr> events = StateGrowthEvents(&fixture, 1500);
  const EngineOutcome serial =
      RunDeterminismWorkload(events, 0, 0, 1, /*degradation=*/true);
  ASSERT_GT(serial.metrics.degradation_ups, 0u)
      << "ladder must engage for this test to bite";
  for (size_t shards : {2u, 4u, 8u}) {
    const EngineOutcome sharded =
        RunDeterminismWorkload(events, 4, shards, 1, /*degradation=*/true);
    ExpectSameOutcome(serial, sharded,
                      "ladder shards=" + std::to_string(shards));
  }
}

TEST(ParallelDeterminismTest, BatchSizeDoesNotChangeResults) {
  BikeSchema fixture;
  const std::vector<EventPtr> events = StateGrowthEvents(&fixture, 900);
  NfaPtr nfa = fixture.Compile(
      "PATTERN SEQ(req a, avail+ b[], unlock c) "
      "WHERE a.loc = b[i].loc, c.uid = a.uid WITHIN 30 min");
  auto run_with_batch = [&](size_t batch_size) {
    Engine engine(nfa, DeterminismOptions(2, 4, false),
                  std::make_unique<StateShedder>(StateShedderOptions{},
                                                 &fixture.registry));
    VectorEventStream stream(events);
    EXPECT_TRUE(engine.ProcessStream(&stream, batch_size).ok());
    std::vector<uint64_t> prints;
    for (const Match& m : engine.matches()) prints.push_back(m.fingerprint);
    return std::make_pair(prints, engine.metrics().matches_emitted);
  };
  const auto batch1 = run_with_batch(1);
  const auto batch64 = run_with_batch(64);
  ASSERT_GT(batch1.second, 0u);
  EXPECT_EQ(batch1.first, batch64.first);
  EXPECT_EQ(batch1.second, batch64.second);
}

TEST(ParallelDeterminismTest, SelectionStrategiesSurviveSharding) {
  // The in-place (greedy) strategies take a different merge path; cover
  // them explicitly.
  BikeSchema fixture;
  const std::vector<EventPtr> events = StateGrowthEvents(&fixture, 600);
  NfaPtr nfa = fixture.Compile(
      "PATTERN SEQ(req a, avail+ b[], unlock c) "
      "WHERE a.loc = b[i].loc WITHIN 20 min");
  for (SelectionStrategy sel : {SelectionStrategy::kSkipTillNextMatch,
                                SelectionStrategy::kStrictContiguity}) {
    auto run_config = [&](size_t threads, size_t shards) {
      EngineOptions options = DeterminismOptions(threads, shards, false);
      options.selection = sel;
      Engine engine(nfa, options);
      EXPECT_TRUE(engine
                      .ProcessBatch(std::span<const EventPtr>(events.data(),
                                                              events.size()))
                      .ok());
      return std::make_pair(engine.metrics().matches_emitted,
                            engine.metrics().runs_killed);
    };
    const auto serial = run_config(0, 0);
    const auto sharded = run_config(3, 5);
    EXPECT_EQ(serial, sharded)
        << "selection=" << SelectionStrategyName(sel);
  }
}

// --- MultiEngine fan-out ---------------------------------------------------

TEST(ParallelMultiEngineTest, ParallelFanOutMatchesSerial) {
  BikeSchema fixture;
  const std::vector<EventPtr> events = StateGrowthEvents(&fixture, 800);
  const char* queries[] = {
      "PATTERN SEQ(req a, avail+ b[], unlock c) "
      "WHERE a.loc = b[i].loc WITHIN 30 min",
      "PATTERN SEQ(req a, unlock c) WHERE c.uid = a.uid WITHIN 30 min",
      "PATTERN SEQ(avail a, unlock c) WHERE c.loc = a.loc WITHIN 10 min",
  };
  auto run_multi = [&](size_t threads) {
    MultiEngine multi;
    for (const char* q : queries) {
      // Each query needs a shedder: the max_runs safety valve (which keeps
      // the Kleene query's state bounded) only fires when one is attached.
      multi.AddQuery(fixture.Compile(q), DeterminismOptions(0, 0, false),
                     std::make_unique<StateShedder>(StateShedderOptions{},
                                                    &fixture.registry));
    }
    if (threads > 1) multi.EnableParallel(threads);
    for (const EventPtr& event : events) {
      EXPECT_TRUE(multi.ProcessEvent(event).ok());
    }
    std::vector<uint64_t> per_query;
    for (size_t i = 0; i < multi.num_queries(); ++i) {
      per_query.push_back(multi.engine(i).metrics().matches_emitted);
      for (const Match& m : multi.engine(i).matches()) {
        per_query.push_back(m.fingerprint);
      }
    }
    return per_query;
  };
  const auto serial = run_multi(1);
  const auto parallel = run_multi(4);
  EXPECT_EQ(serial, parallel);
  EXPECT_FALSE(serial.empty());
}

TEST(ParallelMultiEngineTest, BatchFanOutMatchesEventFanOut) {
  BikeSchema fixture;
  const std::vector<EventPtr> events = StateGrowthEvents(&fixture, 500);
  auto run_mode = [&](bool batched) {
    MultiEngine multi;
    multi.AddQuery(
        fixture.Compile(
            "PATTERN SEQ(req a, unlock c) WHERE c.uid = a.uid WITHIN 1 hour"),
        DeterminismOptions(0, 0, false));
    multi.EnableParallel(2);
    if (batched) {
      VectorEventStream stream(events);
      EXPECT_TRUE(multi.ProcessStream(&stream, /*batch_size=*/32).ok());
    } else {
      for (const EventPtr& event : events) {
        EXPECT_TRUE(multi.OfferEvent(event).ok());
      }
    }
    return multi.AggregateMetrics().matches_emitted;
  };
  EXPECT_EQ(run_mode(false), run_mode(true));
}

}  // namespace
}  // namespace cep
