# Empty compiler generated dependencies file for stock_rally.
# This may be replaced when dependencies are built.
