file(REMOVE_RECURSE
  "CMakeFiles/stock_rally.dir/stock_rally.cpp.o"
  "CMakeFiles/stock_rally.dir/stock_rally.cpp.o.d"
  "stock_rally"
  "stock_rally.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stock_rally.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
