# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/cepshed_tests[1]_include.cmake")
add_test(cli_smoke "sh" "/root/repo/tests/cli_smoke_test.sh" "/root/repo/build/tools/cepshed_cli")
set_tests_properties(cli_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;42;add_test;/root/repo/tests/CMakeLists.txt;0;")
