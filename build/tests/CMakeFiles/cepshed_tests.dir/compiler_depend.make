# Empty compiler generated dependencies file for cepshed_tests.
# This may be replaced when dependencies are built.
