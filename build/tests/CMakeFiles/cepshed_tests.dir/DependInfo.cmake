
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common_hash_rng_test.cc" "tests/CMakeFiles/cepshed_tests.dir/common_hash_rng_test.cc.o" "gcc" "tests/CMakeFiles/cepshed_tests.dir/common_hash_rng_test.cc.o.d"
  "/root/repo/tests/common_status_test.cc" "tests/CMakeFiles/cepshed_tests.dir/common_status_test.cc.o" "gcc" "tests/CMakeFiles/cepshed_tests.dir/common_status_test.cc.o.d"
  "/root/repo/tests/common_string_util_test.cc" "tests/CMakeFiles/cepshed_tests.dir/common_string_util_test.cc.o" "gcc" "tests/CMakeFiles/cepshed_tests.dir/common_string_util_test.cc.o.d"
  "/root/repo/tests/common_value_test.cc" "tests/CMakeFiles/cepshed_tests.dir/common_value_test.cc.o" "gcc" "tests/CMakeFiles/cepshed_tests.dir/common_value_test.cc.o.d"
  "/root/repo/tests/engine_basic_test.cc" "tests/CMakeFiles/cepshed_tests.dir/engine_basic_test.cc.o" "gcc" "tests/CMakeFiles/cepshed_tests.dir/engine_basic_test.cc.o.d"
  "/root/repo/tests/engine_kleene_test.cc" "tests/CMakeFiles/cepshed_tests.dir/engine_kleene_test.cc.o" "gcc" "tests/CMakeFiles/cepshed_tests.dir/engine_kleene_test.cc.o.d"
  "/root/repo/tests/engine_negation_test.cc" "tests/CMakeFiles/cepshed_tests.dir/engine_negation_test.cc.o" "gcc" "tests/CMakeFiles/cepshed_tests.dir/engine_negation_test.cc.o.d"
  "/root/repo/tests/engine_run_test.cc" "tests/CMakeFiles/cepshed_tests.dir/engine_run_test.cc.o" "gcc" "tests/CMakeFiles/cepshed_tests.dir/engine_run_test.cc.o.d"
  "/root/repo/tests/engine_selection_test.cc" "tests/CMakeFiles/cepshed_tests.dir/engine_selection_test.cc.o" "gcc" "tests/CMakeFiles/cepshed_tests.dir/engine_selection_test.cc.o.d"
  "/root/repo/tests/engine_shedding_test.cc" "tests/CMakeFiles/cepshed_tests.dir/engine_shedding_test.cc.o" "gcc" "tests/CMakeFiles/cepshed_tests.dir/engine_shedding_test.cc.o.d"
  "/root/repo/tests/event_stream_csv_test.cc" "tests/CMakeFiles/cepshed_tests.dir/event_stream_csv_test.cc.o" "gcc" "tests/CMakeFiles/cepshed_tests.dir/event_stream_csv_test.cc.o.d"
  "/root/repo/tests/event_test.cc" "tests/CMakeFiles/cepshed_tests.dir/event_test.cc.o" "gcc" "tests/CMakeFiles/cepshed_tests.dir/event_test.cc.o.d"
  "/root/repo/tests/extensions_test.cc" "tests/CMakeFiles/cepshed_tests.dir/extensions_test.cc.o" "gcc" "tests/CMakeFiles/cepshed_tests.dir/extensions_test.cc.o.d"
  "/root/repo/tests/harness_test.cc" "tests/CMakeFiles/cepshed_tests.dir/harness_test.cc.o" "gcc" "tests/CMakeFiles/cepshed_tests.dir/harness_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/cepshed_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/cepshed_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/nfa_compiler_test.cc" "tests/CMakeFiles/cepshed_tests.dir/nfa_compiler_test.cc.o" "gcc" "tests/CMakeFiles/cepshed_tests.dir/nfa_compiler_test.cc.o.d"
  "/root/repo/tests/oracle.cc" "tests/CMakeFiles/cepshed_tests.dir/oracle.cc.o" "gcc" "tests/CMakeFiles/cepshed_tests.dir/oracle.cc.o.d"
  "/root/repo/tests/oracle_property_test.cc" "tests/CMakeFiles/cepshed_tests.dir/oracle_property_test.cc.o" "gcc" "tests/CMakeFiles/cepshed_tests.dir/oracle_property_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/cepshed_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/cepshed_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/query_aggregate_test.cc" "tests/CMakeFiles/cepshed_tests.dir/query_aggregate_test.cc.o" "gcc" "tests/CMakeFiles/cepshed_tests.dir/query_aggregate_test.cc.o.d"
  "/root/repo/tests/query_analyzer_test.cc" "tests/CMakeFiles/cepshed_tests.dir/query_analyzer_test.cc.o" "gcc" "tests/CMakeFiles/cepshed_tests.dir/query_analyzer_test.cc.o.d"
  "/root/repo/tests/query_expr_test.cc" "tests/CMakeFiles/cepshed_tests.dir/query_expr_test.cc.o" "gcc" "tests/CMakeFiles/cepshed_tests.dir/query_expr_test.cc.o.d"
  "/root/repo/tests/query_lexer_test.cc" "tests/CMakeFiles/cepshed_tests.dir/query_lexer_test.cc.o" "gcc" "tests/CMakeFiles/cepshed_tests.dir/query_lexer_test.cc.o.d"
  "/root/repo/tests/query_parser_test.cc" "tests/CMakeFiles/cepshed_tests.dir/query_parser_test.cc.o" "gcc" "tests/CMakeFiles/cepshed_tests.dir/query_parser_test.cc.o.d"
  "/root/repo/tests/resilience_test.cc" "tests/CMakeFiles/cepshed_tests.dir/resilience_test.cc.o" "gcc" "tests/CMakeFiles/cepshed_tests.dir/resilience_test.cc.o.d"
  "/root/repo/tests/shedding_models_test.cc" "tests/CMakeFiles/cepshed_tests.dir/shedding_models_test.cc.o" "gcc" "tests/CMakeFiles/cepshed_tests.dir/shedding_models_test.cc.o.d"
  "/root/repo/tests/shedding_shedders_test.cc" "tests/CMakeFiles/cepshed_tests.dir/shedding_shedders_test.cc.o" "gcc" "tests/CMakeFiles/cepshed_tests.dir/shedding_shedders_test.cc.o.d"
  "/root/repo/tests/shedding_sketch_test.cc" "tests/CMakeFiles/cepshed_tests.dir/shedding_sketch_test.cc.o" "gcc" "tests/CMakeFiles/cepshed_tests.dir/shedding_sketch_test.cc.o.d"
  "/root/repo/tests/workload_test.cc" "tests/CMakeFiles/cepshed_tests.dir/workload_test.cc.o" "gcc" "tests/CMakeFiles/cepshed_tests.dir/workload_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cepshed.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
