file(REMOVE_RECURSE
  "../bench/bench_ablation_time_slices"
  "../bench/bench_ablation_time_slices.pdb"
  "CMakeFiles/bench_ablation_time_slices.dir/bench_ablation_time_slices.cc.o"
  "CMakeFiles/bench_ablation_time_slices.dir/bench_ablation_time_slices.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_time_slices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
