# Empty dependencies file for bench_ablation_time_slices.
# This may be replaced when dependencies are built.
