file(REMOVE_RECURSE
  "../bench/bench_table2_accuracy_throughput"
  "../bench/bench_table2_accuracy_throughput.pdb"
  "CMakeFiles/bench_table2_accuracy_throughput.dir/bench_table2_accuracy_throughput.cc.o"
  "CMakeFiles/bench_table2_accuracy_throughput.dir/bench_table2_accuracy_throughput.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_accuracy_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
