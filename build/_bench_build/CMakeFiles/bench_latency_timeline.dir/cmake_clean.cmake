file(REMOVE_RECURSE
  "../bench/bench_latency_timeline"
  "../bench/bench_latency_timeline.pdb"
  "CMakeFiles/bench_latency_timeline.dir/bench_latency_timeline.cc.o"
  "CMakeFiles/bench_latency_timeline.dir/bench_latency_timeline.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_latency_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
