# Empty compiler generated dependencies file for bench_latency_timeline.
# This may be replaced when dependencies are built.
