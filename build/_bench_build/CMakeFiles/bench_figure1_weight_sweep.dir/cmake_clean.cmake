file(REMOVE_RECURSE
  "../bench/bench_figure1_weight_sweep"
  "../bench/bench_figure1_weight_sweep.pdb"
  "CMakeFiles/bench_figure1_weight_sweep.dir/bench_figure1_weight_sweep.cc.o"
  "CMakeFiles/bench_figure1_weight_sweep.dir/bench_figure1_weight_sweep.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure1_weight_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
