# Empty dependencies file for bench_figure1_weight_sweep.
# This may be replaced when dependencies are built.
