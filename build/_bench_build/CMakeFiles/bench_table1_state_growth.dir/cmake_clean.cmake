file(REMOVE_RECURSE
  "../bench/bench_table1_state_growth"
  "../bench/bench_table1_state_growth.pdb"
  "CMakeFiles/bench_table1_state_growth.dir/bench_table1_state_growth.cc.o"
  "CMakeFiles/bench_table1_state_growth.dir/bench_table1_state_growth.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_state_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
