# Empty dependencies file for bench_table1_state_growth.
# This may be replaced when dependencies are built.
