file(REMOVE_RECURSE
  "../bench/bench_ablation_shed_fraction"
  "../bench/bench_ablation_shed_fraction.pdb"
  "CMakeFiles/bench_ablation_shed_fraction.dir/bench_ablation_shed_fraction.cc.o"
  "CMakeFiles/bench_ablation_shed_fraction.dir/bench_ablation_shed_fraction.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_shed_fraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
