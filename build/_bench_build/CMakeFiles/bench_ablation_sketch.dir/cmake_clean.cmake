file(REMOVE_RECURSE
  "../bench/bench_ablation_sketch"
  "../bench/bench_ablation_sketch.pdb"
  "CMakeFiles/bench_ablation_sketch.dir/bench_ablation_sketch.cc.o"
  "CMakeFiles/bench_ablation_sketch.dir/bench_ablation_sketch.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_sketch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
