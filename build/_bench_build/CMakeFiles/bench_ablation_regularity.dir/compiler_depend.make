# Empty compiler generated dependencies file for bench_ablation_regularity.
# This may be replaced when dependencies are built.
