file(REMOVE_RECURSE
  "../bench/bench_ablation_regularity"
  "../bench/bench_ablation_regularity.pdb"
  "CMakeFiles/bench_ablation_regularity.dir/bench_ablation_regularity.cc.o"
  "CMakeFiles/bench_ablation_regularity.dir/bench_ablation_regularity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_regularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
