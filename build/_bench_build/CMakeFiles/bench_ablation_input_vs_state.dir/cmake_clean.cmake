file(REMOVE_RECURSE
  "../bench/bench_ablation_input_vs_state"
  "../bench/bench_ablation_input_vs_state.pdb"
  "CMakeFiles/bench_ablation_input_vs_state.dir/bench_ablation_input_vs_state.cc.o"
  "CMakeFiles/bench_ablation_input_vs_state.dir/bench_ablation_input_vs_state.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_input_vs_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
