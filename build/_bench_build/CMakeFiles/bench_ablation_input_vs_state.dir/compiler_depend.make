# Empty compiler generated dependencies file for bench_ablation_input_vs_state.
# This may be replaced when dependencies are built.
