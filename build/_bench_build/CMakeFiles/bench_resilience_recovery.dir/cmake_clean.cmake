file(REMOVE_RECURSE
  "../bench/bench_resilience_recovery"
  "../bench/bench_resilience_recovery.pdb"
  "CMakeFiles/bench_resilience_recovery.dir/bench_resilience_recovery.cc.o"
  "CMakeFiles/bench_resilience_recovery.dir/bench_resilience_recovery.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_resilience_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
