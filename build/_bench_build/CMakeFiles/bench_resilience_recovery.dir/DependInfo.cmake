
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_resilience_recovery.cc" "_bench_build/CMakeFiles/bench_resilience_recovery.dir/bench_resilience_recovery.cc.o" "gcc" "_bench_build/CMakeFiles/bench_resilience_recovery.dir/bench_resilience_recovery.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cepshed.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
