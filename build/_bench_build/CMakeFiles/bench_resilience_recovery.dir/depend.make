# Empty dependencies file for bench_resilience_recovery.
# This may be replaced when dependencies are built.
