
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/hash.cc" "src/CMakeFiles/cepshed.dir/common/hash.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/common/hash.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/cepshed.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/cepshed.dir/common/status.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/common/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/cepshed.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/common/string_util.cc.o.d"
  "/root/repo/src/common/value.cc" "src/CMakeFiles/cepshed.dir/common/value.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/common/value.cc.o.d"
  "/root/repo/src/engine/degradation.cc" "src/CMakeFiles/cepshed.dir/engine/degradation.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/engine/degradation.cc.o.d"
  "/root/repo/src/engine/engine.cc" "src/CMakeFiles/cepshed.dir/engine/engine.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/engine/engine.cc.o.d"
  "/root/repo/src/engine/latency_monitor.cc" "src/CMakeFiles/cepshed.dir/engine/latency_monitor.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/engine/latency_monitor.cc.o.d"
  "/root/repo/src/engine/match.cc" "src/CMakeFiles/cepshed.dir/engine/match.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/engine/match.cc.o.d"
  "/root/repo/src/engine/metrics.cc" "src/CMakeFiles/cepshed.dir/engine/metrics.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/engine/metrics.cc.o.d"
  "/root/repo/src/engine/multi.cc" "src/CMakeFiles/cepshed.dir/engine/multi.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/engine/multi.cc.o.d"
  "/root/repo/src/engine/run.cc" "src/CMakeFiles/cepshed.dir/engine/run.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/engine/run.cc.o.d"
  "/root/repo/src/event/csv.cc" "src/CMakeFiles/cepshed.dir/event/csv.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/event/csv.cc.o.d"
  "/root/repo/src/event/event.cc" "src/CMakeFiles/cepshed.dir/event/event.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/event/event.cc.o.d"
  "/root/repo/src/event/fault_injection.cc" "src/CMakeFiles/cepshed.dir/event/fault_injection.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/event/fault_injection.cc.o.d"
  "/root/repo/src/event/reorder.cc" "src/CMakeFiles/cepshed.dir/event/reorder.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/event/reorder.cc.o.d"
  "/root/repo/src/event/schema.cc" "src/CMakeFiles/cepshed.dir/event/schema.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/event/schema.cc.o.d"
  "/root/repo/src/event/stream.cc" "src/CMakeFiles/cepshed.dir/event/stream.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/event/stream.cc.o.d"
  "/root/repo/src/harness/accuracy.cc" "src/CMakeFiles/cepshed.dir/harness/accuracy.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/harness/accuracy.cc.o.d"
  "/root/repo/src/harness/experiment.cc" "src/CMakeFiles/cepshed.dir/harness/experiment.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/harness/experiment.cc.o.d"
  "/root/repo/src/harness/sweep.cc" "src/CMakeFiles/cepshed.dir/harness/sweep.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/harness/sweep.cc.o.d"
  "/root/repo/src/harness/table_printer.cc" "src/CMakeFiles/cepshed.dir/harness/table_printer.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/harness/table_printer.cc.o.d"
  "/root/repo/src/nfa/compiler.cc" "src/CMakeFiles/cepshed.dir/nfa/compiler.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/nfa/compiler.cc.o.d"
  "/root/repo/src/nfa/dot.cc" "src/CMakeFiles/cepshed.dir/nfa/dot.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/nfa/dot.cc.o.d"
  "/root/repo/src/nfa/nfa.cc" "src/CMakeFiles/cepshed.dir/nfa/nfa.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/nfa/nfa.cc.o.d"
  "/root/repo/src/query/analyzer.cc" "src/CMakeFiles/cepshed.dir/query/analyzer.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/query/analyzer.cc.o.d"
  "/root/repo/src/query/ast.cc" "src/CMakeFiles/cepshed.dir/query/ast.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/query/ast.cc.o.d"
  "/root/repo/src/query/builder.cc" "src/CMakeFiles/cepshed.dir/query/builder.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/query/builder.cc.o.d"
  "/root/repo/src/query/expr.cc" "src/CMakeFiles/cepshed.dir/query/expr.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/query/expr.cc.o.d"
  "/root/repo/src/query/lexer.cc" "src/CMakeFiles/cepshed.dir/query/lexer.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/query/lexer.cc.o.d"
  "/root/repo/src/query/parser.cc" "src/CMakeFiles/cepshed.dir/query/parser.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/query/parser.cc.o.d"
  "/root/repo/src/shedding/adaptive.cc" "src/CMakeFiles/cepshed.dir/shedding/adaptive.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/shedding/adaptive.cc.o.d"
  "/root/repo/src/shedding/input_shedder.cc" "src/CMakeFiles/cepshed.dir/shedding/input_shedder.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/shedding/input_shedder.cc.o.d"
  "/root/repo/src/shedding/model_backend.cc" "src/CMakeFiles/cepshed.dir/shedding/model_backend.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/shedding/model_backend.cc.o.d"
  "/root/repo/src/shedding/pm_hash.cc" "src/CMakeFiles/cepshed.dir/shedding/pm_hash.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/shedding/pm_hash.cc.o.d"
  "/root/repo/src/shedding/random_shedder.cc" "src/CMakeFiles/cepshed.dir/shedding/random_shedder.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/shedding/random_shedder.cc.o.d"
  "/root/repo/src/shedding/scoring.cc" "src/CMakeFiles/cepshed.dir/shedding/scoring.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/shedding/scoring.cc.o.d"
  "/root/repo/src/shedding/sketch.cc" "src/CMakeFiles/cepshed.dir/shedding/sketch.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/shedding/sketch.cc.o.d"
  "/root/repo/src/shedding/state_shedder.cc" "src/CMakeFiles/cepshed.dir/shedding/state_shedder.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/shedding/state_shedder.cc.o.d"
  "/root/repo/src/workload/bikeshare.cc" "src/CMakeFiles/cepshed.dir/workload/bikeshare.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/workload/bikeshare.cc.o.d"
  "/root/repo/src/workload/burst.cc" "src/CMakeFiles/cepshed.dir/workload/burst.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/workload/burst.cc.o.d"
  "/root/repo/src/workload/google_trace.cc" "src/CMakeFiles/cepshed.dir/workload/google_trace.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/workload/google_trace.cc.o.d"
  "/root/repo/src/workload/queries.cc" "src/CMakeFiles/cepshed.dir/workload/queries.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/workload/queries.cc.o.d"
  "/root/repo/src/workload/stock.cc" "src/CMakeFiles/cepshed.dir/workload/stock.cc.o" "gcc" "src/CMakeFiles/cepshed.dir/workload/stock.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
