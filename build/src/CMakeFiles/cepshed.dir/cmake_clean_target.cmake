file(REMOVE_RECURSE
  "libcepshed.a"
)
