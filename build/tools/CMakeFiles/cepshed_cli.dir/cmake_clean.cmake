file(REMOVE_RECURSE
  "CMakeFiles/cepshed_cli.dir/cepshed_cli.cc.o"
  "CMakeFiles/cepshed_cli.dir/cepshed_cli.cc.o.d"
  "cepshed_cli"
  "cepshed_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cepshed_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
