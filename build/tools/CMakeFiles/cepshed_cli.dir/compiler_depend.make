# Empty compiler generated dependencies file for cepshed_cli.
# This may be replaced when dependencies are built.
