// validate_obs — structural validator for the observability exports
// (docs/OBSERVABILITY.md). Used by tools/check.sh and the CLI smoke test to
// catch format regressions without external dependencies.
//
//   validate_obs metrics-json FILE   cepshed_cli --metrics-out x.json
//   validate_obs metrics-prom FILE   cepshed_cli --metrics-out x.prom
//   validate_obs trace FILE          cepshed_cli --trace-out x.json
//   validate_obs audit FILE          cepshed_cli --audit-out x.jsonl
//   validate_obs quality FILE        cepshed_cli --quality-out x.json
//   validate_obs bench-suite FILE    bench/bench_suite BENCH_suite.json
//   validate_obs bench-multiquery FILE
//                                    bench/bench_multiquery BENCH_multiquery.json
//
// Exit 0 when the file parses and satisfies the schema, 1 with a message on
// stderr otherwise.

#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

namespace {

// --- minimal JSON parser ----------------------------------------------------
// Just enough JSON to validate our own exports: objects, arrays, strings,
// numbers, booleans, null. No \uXXXX decoding (we never emit it).

struct JsonValue;
using JsonPtr = std::unique_ptr<JsonValue>;

struct JsonValue {
  enum class Kind { kObject, kArray, kString, kNumber, kBool, kNull };
  Kind kind = Kind::kNull;
  std::map<std::string, JsonPtr> object;
  std::vector<JsonPtr> array;
  std::string string;
  double number = 0.0;
  bool boolean = false;

  const JsonValue* Get(const std::string& key) const {
    const auto it = object.find(key);
    return it == object.end() ? nullptr : it->second.get();
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonPtr Parse(std::string* error) {
    JsonPtr value = ParseValue();
    SkipSpace();
    if (value == nullptr || pos_ != text_.size()) {
      *error = error_.empty() ? "trailing garbage" : error_;
      return nullptr;
    }
    return value;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Fail(const std::string& what) {
    if (error_.empty()) {
      std::ostringstream os;
      os << what << " at offset " << pos_;
      error_ = os.str();
    }
    return false;
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return Fail(std::string("expected '") + c + "'");
  }

  JsonPtr ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) {
      Fail("unexpected end of input");
      return nullptr;
    }
    const char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (c == 't' || c == 'f') return ParseBool();
    if (c == 'n') return ParseNull();
    return ParseNumber();
  }

  JsonPtr ParseObject() {
    auto value = std::make_unique<JsonValue>();
    value->kind = JsonValue::Kind::kObject;
    if (!Consume('{')) return nullptr;
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return value;
    }
    for (;;) {
      JsonPtr key = ParseString();
      if (key == nullptr) return nullptr;
      if (!Consume(':')) return nullptr;
      JsonPtr item = ParseValue();
      if (item == nullptr) return nullptr;
      value->object[key->string] = std::move(item);
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (!Consume('}')) return nullptr;
      return value;
    }
  }

  JsonPtr ParseArray() {
    auto value = std::make_unique<JsonValue>();
    value->kind = JsonValue::Kind::kArray;
    if (!Consume('[')) return nullptr;
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return value;
    }
    for (;;) {
      JsonPtr item = ParseValue();
      if (item == nullptr) return nullptr;
      value->array.push_back(std::move(item));
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (!Consume(']')) return nullptr;
      return value;
    }
  }

  JsonPtr ParseString() {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      Fail("expected string");
      return nullptr;
    }
    ++pos_;
    auto value = std::make_unique<JsonValue>();
    value->kind = JsonValue::Kind::kString;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          default:
            Fail("unsupported escape");
            return nullptr;
        }
      }
      value->string += c;
    }
    if (pos_ >= text_.size()) {
      Fail("unterminated string");
      return nullptr;
    }
    ++pos_;  // closing quote
    return value;
  }

  JsonPtr ParseNumber() {
    SkipSpace();
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            std::strchr("+-.eE", text_[pos_]) != nullptr)) {
      ++pos_;
    }
    if (pos_ == start) {
      Fail("expected number");
      return nullptr;
    }
    auto value = std::make_unique<JsonValue>();
    value->kind = JsonValue::Kind::kNumber;
    value->number = std::atof(text_.substr(start, pos_ - start).c_str());
    return value;
  }

  JsonPtr ParseBool() {
    SkipSpace();
    auto value = std::make_unique<JsonValue>();
    value->kind = JsonValue::Kind::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      value->boolean = true;
      pos_ += 4;
      return value;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return value;
    }
    Fail("expected boolean");
    return nullptr;
  }

  JsonPtr ParseNull() {
    SkipSpace();
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return std::make_unique<JsonValue>();
    }
    Fail("expected null");
    return nullptr;
  }

  const std::string& text_;
  size_t pos_ = 0;
  std::string error_;
};

int Invalid(const char* format, const std::string& detail) {
  std::fprintf(stderr, format, detail.c_str());
  std::fprintf(stderr, "\n");
  return 1;
}

JsonPtr ParseOrDie(const std::string& text, int* rc) {
  std::string error;
  JsonPtr value = JsonParser(text).Parse(&error);
  if (value == nullptr) {
    *rc = Invalid("invalid JSON: %s", error);
    return nullptr;
  }
  *rc = 0;
  return value;
}

/// Metric families every engine export must contain (a subset of
/// kEngineMetricFields' prom names plus the engine histograms).
const char* const kRequiredFamilies[] = {
    "cep_events_processed_total", "cep_matches_emitted_total",
    "cep_runs_created_total",     "cep_runs_shed_total",
    "cep_edge_evaluations_total", "cep_event_busy_us",
    "cep_merge_us",               "cep_shed_episode_us",
};

// --- metrics (JSON form) ----------------------------------------------------

int ValidateMetricsJson(const std::string& text) {
  int rc = 0;
  JsonPtr root = ParseOrDie(text, &rc);
  if (root == nullptr) return rc;
  if (root->kind != JsonValue::Kind::kObject) {
    return Invalid("metrics JSON: top level must be an object%s", "");
  }
  const JsonValue* metrics = root->Get("metrics");
  if (metrics == nullptr || metrics->kind != JsonValue::Kind::kArray) {
    return Invalid("metrics JSON: missing \"metrics\" array%s", "");
  }
  std::map<std::string, int> seen;
  for (const JsonPtr& metric : metrics->array) {
    if (metric->kind != JsonValue::Kind::kObject) {
      return Invalid("metrics JSON: non-object metric entry%s", "");
    }
    const JsonValue* name = metric->Get("name");
    const JsonValue* type = metric->Get("type");
    if (name == nullptr || name->kind != JsonValue::Kind::kString ||
        type == nullptr || type->kind != JsonValue::Kind::kString) {
      return Invalid("metrics JSON: metric missing name/type%s", "");
    }
    const std::string& t = type->string;
    if (t != "counter" && t != "gauge" && t != "histogram") {
      return Invalid("metrics JSON: unknown metric type '%s'", t);
    }
    if (t == "histogram") {
      const JsonValue* buckets = metric->Get("buckets");
      const JsonValue* count = metric->Get("count");
      if (buckets == nullptr || buckets->kind != JsonValue::Kind::kArray ||
          count == nullptr) {
        return Invalid("metrics JSON: histogram '%s' missing buckets/count",
                       name->string);
      }
    } else if (metric->Get("value") == nullptr) {
      return Invalid("metrics JSON: metric '%s' missing value", name->string);
    }
    ++seen[name->string];
  }
  for (const char* family : kRequiredFamilies) {
    if (seen.count(family) == 0) {
      return Invalid("metrics JSON: required family '%s' missing", family);
    }
  }
  return 0;
}

// --- metrics (Prometheus text exposition) -----------------------------------

int ValidateMetricsProm(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  std::map<std::string, std::string> types;  // family -> TYPE
  std::map<std::string, int> samples;        // family -> sample count
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::ostringstream ctx;
    ctx << "line " << line_no;
    if (line[0] == '#') {
      std::istringstream fields(line);
      std::string hash, keyword, family, rest;
      fields >> hash >> keyword >> family;
      if (keyword != "HELP" && keyword != "TYPE") {
        return Invalid("metrics prom: %s: comment is neither HELP nor TYPE",
                       ctx.str());
      }
      if (keyword == "TYPE") {
        fields >> rest;
        if (rest != "counter" && rest != "gauge" && rest != "histogram") {
          return Invalid("metrics prom: unknown TYPE '%s'", rest);
        }
        types[family] = rest;
      }
      continue;
    }
    // Sample line: name[{labels}] value
    const size_t brace = line.find('{');
    const size_t space = line.find(' ');
    if (space == std::string::npos) {
      return Invalid("metrics prom: %s: sample line without value", ctx.str());
    }
    std::string name =
        line.substr(0, brace == std::string::npos ? space
                                                  : std::min(brace, space));
    // _bucket/_sum/_count samples belong to their histogram family.
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const size_t len = std::strlen(suffix);
      if (name.size() > len &&
          name.compare(name.size() - len, len, suffix) == 0) {
        const std::string family = name.substr(0, name.size() - len);
        if (types.count(family) != 0 && types[family] == "histogram") {
          name = family;
          break;
        }
      }
    }
    if (types.count(name) == 0) {
      return Invalid("metrics prom: sample '%s' has no preceding TYPE", name);
    }
    ++samples[name];
  }
  for (const auto& [family, type] : types) {
    if (samples.count(family) == 0) {
      return Invalid("metrics prom: family '%s' declared but has no samples",
                     family);
    }
    (void)type;
  }
  for (const char* family : kRequiredFamilies) {
    if (types.count(family) == 0) {
      return Invalid("metrics prom: required family '%s' missing", family);
    }
  }
  return 0;
}

// --- Chrome trace_event JSON ------------------------------------------------

int ValidateTrace(const std::string& text) {
  int rc = 0;
  JsonPtr root = ParseOrDie(text, &rc);
  if (root == nullptr) return rc;
  if (root->kind != JsonValue::Kind::kObject) {
    return Invalid("trace: top level must be an object%s", "");
  }
  const JsonValue* events = root->Get("traceEvents");
  if (events == nullptr || events->kind != JsonValue::Kind::kArray) {
    return Invalid("trace: missing \"traceEvents\" array%s", "");
  }
  double last_ts = -1.0;
  for (const JsonPtr& event : events->array) {
    if (event->kind != JsonValue::Kind::kObject) {
      return Invalid("trace: non-object event%s", "");
    }
    const JsonValue* name = event->Get("name");
    const JsonValue* ph = event->Get("ph");
    const JsonValue* ts = event->Get("ts");
    if (name == nullptr || name->kind != JsonValue::Kind::kString ||
        ph == nullptr || ph->kind != JsonValue::Kind::kString ||
        ts == nullptr || ts->kind != JsonValue::Kind::kNumber ||
        event->Get("pid") == nullptr || event->Get("tid") == nullptr) {
      return Invalid("trace: event missing name/ph/ts/pid/tid%s", "");
    }
    if (ph->string == "X" && event->Get("dur") == nullptr) {
      return Invalid("trace: complete span '%s' missing dur", name->string);
    }
    if (ts->number < last_ts) {
      return Invalid("trace: events not sorted by ts (at '%s')", name->string);
    }
    last_ts = ts->number;
  }
  return 0;
}

// --- shed-decision audit JSONL ----------------------------------------------

int ValidateAudit(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  size_t line_no = 0;
  double last_seq = -1.0;
  const char* const required[] = {
      "seq",     "engine",  "episode", "run_id",        "state",
      "shed_ts", "c_plus",  "c_minus", "score",         "shed_fraction",
      "run_start_ts", "time_slice", "degradation_level",
  };
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    int rc = 0;
    JsonPtr record = ParseOrDie(line, &rc);
    if (record == nullptr) {
      std::fprintf(stderr, "audit: at line %zu\n", line_no);
      return rc;
    }
    if (record->kind != JsonValue::Kind::kObject) {
      return Invalid("audit: non-object record%s", "");
    }
    for (const char* key : required) {
      const JsonValue* field = record->Get(key);
      if (field == nullptr || field->kind != JsonValue::Kind::kNumber) {
        return Invalid("audit: record missing numeric field '%s'", key);
      }
    }
    const double seq = record->Get("seq")->number;
    if (seq <= last_seq) {
      return Invalid("audit: seq not strictly increasing%s", "");
    }
    last_seq = seq;
  }
  return 0;
}

// --- shedding-quality JSON (cepshed_cli --quality-out) ----------------------

/// Checks `object` has a numeric field for every name in `keys`.
int RequireNumbers(const JsonValue* object, const char* context,
                   const std::vector<const char*>& keys) {
  for (const char* key : keys) {
    const JsonValue* field = object->Get(key);
    if (field == nullptr || field->kind != JsonValue::Kind::kNumber) {
      std::fprintf(stderr, "%s: missing numeric field '%s'\n", context, key);
      return 1;
    }
  }
  return 0;
}

int ValidateQuality(const std::string& text) {
  int rc = 0;
  JsonPtr root = ParseOrDie(text, &rc);
  if (root == nullptr) return rc;
  if (root->kind != JsonValue::Kind::kObject) {
    return Invalid("quality: top level must be an object%s", "");
  }
  const JsonValue* version = root->Get("schema_version");
  if (version == nullptr || version->kind != JsonValue::Kind::kNumber) {
    return Invalid("quality: missing numeric schema_version%s", "");
  }
  // Every section is optional (each maps to an independently enabled
  // monitor), but a present section must carry its full schema.
  const JsonValue* shadow = root->Get("shadow");
  if (shadow != nullptr) {
    if (shadow->kind != JsonValue::Kind::kObject) {
      return Invalid("quality: shadow must be an object%s", "");
    }
    if (RequireNumbers(shadow, "quality: shadow",
                       {"sample_every", "span_width", "spans_sampled",
                        "spans_completed", "spans_aborted", "events_mirrored",
                        "ghost_matches", "matched", "unexpected",
                        "recall_estimate", "recall_lower", "recall_upper",
                        "recall_lifetime"}) != 0) {
      return 1;
    }
    const double lower = shadow->Get("recall_lower")->number;
    const double upper = shadow->Get("recall_upper")->number;
    const double estimate = shadow->Get("recall_estimate")->number;
    if (lower < 0.0 || upper > 1.0 || lower > upper) {
      return Invalid("quality: shadow recall bounds out of order%s", "");
    }
    if (shadow->Get("spans_completed")->number > 0 &&
        (estimate < lower || estimate > upper)) {
      return Invalid("quality: shadow recall estimate outside its bounds%s",
                     "");
    }
  }
  const JsonValue* calibration = root->Get("calibration");
  if (calibration != nullptr) {
    if (calibration->kind != JsonValue::Kind::kObject) {
      return Invalid("quality: calibration must be an object%s", "");
    }
    if (RequireNumbers(calibration, "quality: calibration",
                       {"outcomes", "shed_predictions", "brier_score",
                        "drift", "mean_shed_prediction"}) != 0) {
      return 1;
    }
    const JsonValue* buckets = calibration->Get("buckets");
    if (buckets == nullptr || buckets->kind != JsonValue::Kind::kArray ||
        buckets->array.empty()) {
      return Invalid("quality: calibration missing buckets array%s", "");
    }
    for (const JsonPtr& bucket : buckets->array) {
      if (bucket->kind != JsonValue::Kind::kObject ||
          RequireNumbers(bucket.get(), "quality: calibration bucket",
                         {"count", "predicted", "observed"}) != 0) {
        return 1;
      }
    }
  }
  const JsonValue* slo = root->Get("theta_slo");
  if (slo != nullptr) {
    if (slo->kind != JsonValue::Kind::kObject) {
      return Invalid("quality: theta_slo must be an object%s", "");
    }
    if (RequireNumbers(slo, "quality: theta_slo",
                       {"events", "violating_events", "time_in_violation_us",
                        "violation_streak", "violation_streak_max",
                        "budget_fraction"}) != 0) {
      return 1;
    }
    const JsonValue* rates = slo->Get("burn_rates");
    if (rates == nullptr || rates->kind != JsonValue::Kind::kArray ||
        rates->array.empty()) {
      return Invalid("quality: theta_slo missing burn_rates array%s", "");
    }
    double last_window = 0.0;
    for (const JsonPtr& rate : rates->array) {
      if (rate->kind != JsonValue::Kind::kObject ||
          RequireNumbers(rate.get(), "quality: burn_rate",
                         {"window", "burn_rate"}) != 0) {
        return 1;
      }
      const double window = rate->Get("window")->number;
      if (window <= last_window) {
        return Invalid("quality: burn_rate windows not increasing%s", "");
      }
      last_window = window;
    }
  }
  return 0;
}

// --- standing bench suite (bench/bench_suite.cc) ----------------------------

int ValidateBenchSuite(const std::string& text) {
  int rc = 0;
  JsonPtr root = ParseOrDie(text, &rc);
  if (root == nullptr) return rc;
  if (root->kind != JsonValue::Kind::kObject) {
    return Invalid("bench-suite: top level must be an object%s", "");
  }
  const JsonValue* version = root->Get("schema_version");
  if (version == nullptr || version->kind != JsonValue::Kind::kNumber ||
      version->number < 2) {
    return Invalid(
        "bench-suite: missing numeric schema_version >= 2 (v2 added the "
        "cross-strategy rows and per-row shed counters)%s",
        "");
  }
  if (root->Get("single_thread_eps") == nullptr ||
      root->Get("single_thread_eps")->kind != JsonValue::Kind::kNumber) {
    return Invalid("bench-suite: missing numeric single_thread_eps%s", "");
  }
  const JsonValue* rows = root->Get("rows");
  if (rows == nullptr || rows->kind != JsonValue::Kind::kArray) {
    return Invalid("bench-suite: missing rows array%s", "");
  }
  std::map<std::string, std::map<std::string, int>> seen;
  for (const JsonPtr& row : rows->array) {
    if (row->kind != JsonValue::Kind::kObject) {
      return Invalid("bench-suite: non-object row%s", "");
    }
    const JsonValue* workload = row->Get("workload");
    const JsonValue* strategy = row->Get("strategy");
    if (workload == nullptr || workload->kind != JsonValue::Kind::kString ||
        strategy == nullptr || strategy->kind != JsonValue::Kind::kString) {
      return Invalid("bench-suite: row missing workload/strategy%s", "");
    }
    if (RequireNumbers(row.get(), "bench-suite: row",
                       {"events", "matches", "throughput_eps", "recall",
                        "shadow_recall_estimate", "shadow_abs_error",
                        "shadow_spans", "brier", "drift",
                        "p99_event_busy_us", "events_dropped",
                        "runs_shed"}) != 0) {
      return 1;
    }
    const double recall = row->Get("recall")->number;
    if (recall < 0.0 || recall > 1.0) {
      return Invalid("bench-suite: recall out of [0,1] for workload '%s'",
                     workload->string);
    }
    ++seen[workload->string][strategy->string];
  }
  if (seen.size() < 3) {
    return Invalid("bench-suite: fewer than 3 workloads%s", "");
  }
  for (const auto& [workload, strategies] : seen) {
    // The full shoot-out: SBLS-family baselines plus the SPICE strategies
    // and the hybrid composition (docs/SHEDDING.md).
    for (const char* required : {"none", "ibls", "rbls", "sbls", "espice",
                                 "hspice", "pspice", "hybrid"}) {
      const auto it = strategies.find(required);
      if (it == strategies.end()) {
        return Invalid("bench-suite: workload missing a strategy row: %s",
                       workload + "/" + required);
      }
    }
  }
  return 0;
}

// --- multi-query optimizer bench (bench/bench_multiquery.cc) ----------------

int ValidateBenchMultiquery(const std::string& text) {
  int rc = 0;
  JsonPtr root = ParseOrDie(text, &rc);
  if (root == nullptr) return rc;
  if (root->kind != JsonValue::Kind::kObject) {
    return Invalid("bench-multiquery: top level must be an object%s", "");
  }
  const JsonValue* version = root->Get("schema_version");
  if (version == nullptr || version->kind != JsonValue::Kind::kNumber ||
      version->number < 1) {
    return Invalid("bench-multiquery: missing numeric schema_version >= 1%s",
                   "");
  }
  const JsonValue* rows = root->Get("rows");
  if (rows == nullptr || rows->kind != JsonValue::Kind::kArray ||
      rows->array.empty()) {
    return Invalid("bench-multiquery: missing non-empty rows array%s", "");
  }
  std::map<int, int> queries_seen;
  for (const JsonPtr& row : rows->array) {
    if (row->kind != JsonValue::Kind::kObject) {
      return Invalid("bench-multiquery: non-object row%s", "");
    }
    const JsonValue* overlap = row->Get("overlap");
    if (overlap == nullptr || overlap->kind != JsonValue::Kind::kString) {
      return Invalid("bench-multiquery: row missing string overlap%s", "");
    }
    if (RequireNumbers(row.get(), "bench-multiquery: row",
                       {"queries", "events", "unopt_eps", "opt_eps",
                        "speedup", "engines", "shared_preds",
                        "engine_skips", "events_prefiltered"}) != 0) {
      return 1;
    }
    const double unopt = row->Get("unopt_eps")->number;
    const double opt = row->Get("opt_eps")->number;
    const double speedup = row->Get("speedup")->number;
    if (unopt <= 0.0 || opt <= 0.0) {
      return Invalid("bench-multiquery: non-positive events/sec in overlap "
                     "'%s'",
                     overlap->string);
    }
    // The bench computes speedup from the same two rates it reports; a
    // mismatch means the file was edited by hand.
    const double expected = opt / unopt;
    if (speedup < expected * 0.99 || speedup > expected * 1.01) {
      return Invalid(
          "bench-multiquery: speedup inconsistent with opt_eps/unopt_eps in "
          "overlap '%s'",
          overlap->string);
    }
    const JsonValue* identical = row->Get("matches_identical");
    if (identical == nullptr || identical->kind != JsonValue::Kind::kBool ||
        !identical->boolean) {
      return Invalid(
          "bench-multiquery: row must record matches_identical=true (the "
          "bench aborts on a differential mismatch) in overlap '%s'",
          overlap->string);
    }
    ++queries_seen[static_cast<int>(row->Get("queries")->number)];
  }
  for (const int required : {10, 100, 1000}) {
    if (queries_seen.find(required) == queries_seen.end()) {
      return Invalid("bench-multiquery: missing a row with queries=%s",
                     std::to_string(required));
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr,
                 "usage: validate_obs <metrics-json|metrics-prom|trace|audit"
                 "|quality|bench-suite|bench-multiquery> <file>\n");
    return 2;
  }
  std::ifstream file(argv[2]);
  if (!file) {
    std::fprintf(stderr, "cannot open %s\n", argv[2]);
    return 2;
  }
  std::stringstream buffer;
  buffer << file.rdbuf();
  const std::string text = buffer.str();
  const std::string kind = argv[1];
  int rc;
  if (kind == "metrics-json") {
    rc = ValidateMetricsJson(text);
  } else if (kind == "metrics-prom") {
    rc = ValidateMetricsProm(text);
  } else if (kind == "trace") {
    rc = ValidateTrace(text);
  } else if (kind == "audit") {
    rc = ValidateAudit(text);
  } else if (kind == "quality") {
    rc = ValidateQuality(text);
  } else if (kind == "bench-suite") {
    rc = ValidateBenchSuite(text);
  } else if (kind == "bench-multiquery") {
    rc = ValidateBenchMultiquery(text);
  } else {
    std::fprintf(stderr, "unknown kind '%s'\n", kind.c_str());
    return 2;
  }
  if (rc == 0) std::printf("%s: %s ok\n", kind.c_str(), argv[2]);
  return rc;
}
