// cepshed_client — stream events and control commands to cepshed_server.
//
//   cepshed_client --socket s.sock --tenant alice --theta 80
//                  --schema bike
//                  --query-name q1 --query 'PATTERN SEQ(...) ...'
//                  --input trace.csv --drain
//
// Resume after a server crash: rerun with --resume — the client skips the
// first `ingested` events the server reports in its `!ok hello` reply, so
// the stream continues exactly where the WAL left off.
//
// Exit codes: 0 success, 1 protocol/file error, 2 usage, 3 connection lost
// (the chaos harness treats 3 as expected when it SIGKILLs the server).

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <string>

#include "common/result.h"
#include "common/string_util.h"
#include "service/client.h"

namespace cep {
namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: cepshed_client (--socket <path> | --port <p>) --tenant <name>\n"
      "       [--theta <micros>] [--weight <0..1>]\n"
      "       [--schema <cluster|bike|stock|file>]\n"
      "       [--query-name <name>] [--query <file|text>]\n"
      "       [--query-opts 'k=v ...'] [--input <events.csv>] [--resume]\n"
      "       [--binary-frames] [--checkpoint] [--stats] [--drain] [--quit]\n");
  return 2;
}

constexpr int kExitConnectionLost = 3;

int FailWith(const Status& status) {
  std::fprintf(stderr, "cepshed_client: %s\n", status.ToString().c_str());
  return status.IsIoError() ? kExitConnectionLost : 1;
}

Result<std::string> ReadFileOrLiteral(const std::string& arg) {
  std::ifstream file(arg);
  if (!file) return arg;
  std::string text((std::istreambuf_iterator<char>(file)),
                   std::istreambuf_iterator<char>());
  return text;
}

int Main(int argc, char** argv) {
  std::map<std::string, std::string> args;
  for (int i = 1; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) return Usage();
    key = key.substr(2);
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      args[key] = argv[++i];
    } else {
      args[key] = "";
    }
  }
  const auto has = [&](const char* k) { return args.count(k) > 0; };
  const auto get = [&](const char* k, const char* fallback = "") {
    const auto it = args.find(k);
    return it == args.end() ? std::string(fallback) : it->second;
  };
  if (!has("tenant") || (!has("socket") && !has("port"))) return Usage();

  auto connected =
      has("socket")
          ? service::BlockingClient::ConnectUnix(get("socket"))
          : service::BlockingClient::ConnectTcp(std::atoi(get("port").c_str()));
  if (!connected.ok()) return FailWith(connected.status());
  std::unique_ptr<service::BlockingClient> client =
      connected.MoveValueUnsafe();

  std::string hello = "!hello " + get("tenant");
  if (has("theta")) hello += " theta=" + get("theta");
  if (has("weight")) hello += " weight=" + get("weight");
  auto reply = client->Command(hello);
  if (!reply.ok()) return FailWith(reply.status());
  uint64_t ingested = 0;
  const size_t pos = reply.ValueOrDie().find("ingested=");
  if (pos != std::string::npos) {
    ingested = std::strtoull(reply.ValueOrDie().c_str() + pos + 9, nullptr, 10);
  }
  std::printf("%s\n", reply.ValueOrDie().c_str());

  if (has("schema")) {
    const std::string schema = get("schema");
    std::ifstream file(schema);
    if (file) {
      // Schema file: one `name attr:type ...` line per event type.
      std::string line;
      while (std::getline(file, line)) {
        const auto stripped = StripWhitespace(line);
        if (stripped.empty() || stripped[0] == '#') continue;
        auto st = client->Command("!schema " + std::string(stripped));
        if (!st.ok()) return FailWith(st.status());
      }
    } else {
      auto st = client->Command("!schema " + schema);
      if (!st.ok()) return FailWith(st.status());
    }
  }
  if (has("query")) {
    auto text = ReadFileOrLiteral(get("query"));
    if (!text.ok()) return FailWith(text.status());
    std::string query_text = text.ValueOrDie();
    while (!query_text.empty() &&
           (query_text.back() == '\n' || query_text.back() == '\r')) {
      query_text.pop_back();
    }
    std::string command = "!query " + get("query-name", "q0");
    if (has("query-opts")) command += " " + get("query-opts");
    command += " :: " + query_text;
    auto st = client->Command(command);
    if (!st.ok()) return FailWith(st.status());
  }
  if (has("input")) {
    std::ifstream input(get("input"));
    if (!input) {
      std::fprintf(stderr, "cepshed_client: cannot open %s\n",
                   get("input").c_str());
      return 1;
    }
    const bool binary = has("binary-frames");
    const uint64_t skip = has("resume") ? ingested : 0;
    uint64_t sent = 0, seen = 0;
    std::string line;
    while (std::getline(input, line)) {
      if (StripWhitespace(line).empty()) continue;
      ++seen;
      if (seen <= skip) continue;
      const Status st =
          binary ? client->SendFrame(line) : client->SendLine(line);
      if (!st.ok()) return FailWith(st);
      ++sent;
    }
    std::printf("sent %llu events (skipped %llu already ingested)\n",
                static_cast<unsigned long long>(sent),
                static_cast<unsigned long long>(skip));
  }
  if (has("checkpoint")) {
    auto st = client->Command("!checkpoint");
    if (!st.ok()) return FailWith(st.status());
    std::printf("%s\n", st.ValueOrDie().c_str());
  }
  if (has("stats")) {
    if (auto st = client->SendLine("!stats"); !st.ok()) return FailWith(st);
    auto block = client->ReadBlock();
    if (!block.ok()) return FailWith(block.status());
    std::printf("%s", block.ValueOrDie().c_str());
  }
  if (has("drain")) {
    auto st = client->Command("!drain");
    if (!st.ok()) return FailWith(st.status());
    std::printf("%s\n", st.ValueOrDie().c_str());
  }
  if (has("quit")) {
    auto st = client->Command("!quit");
    if (!st.ok()) return FailWith(st.status());
  }
  return 0;
}

}  // namespace
}  // namespace cep

int main(int argc, char** argv) { return cep::Main(argc, argv); }
