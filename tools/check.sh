#!/bin/sh
# Sanitized verification pass, two builds:
#   1. build-sanitize/  — ASan+UBSan, full test suite (memory/UB coverage for
#      the fault-injection and resilience paths), plus the fuzz corpus
#      replays and a differential stress sweep (docs/FUZZING.md).
#   2. build-tsan/      — ThreadSanitizer, the Parallel* suites (data-race
#      coverage for the worker pool, run sharding, and MultiEngine fan-out).
# Each build also runs the CLI on an example workload with the observability
# exports enabled and validates them with validate_obs (schema regressions
# and instrumentation races surface here), then writes checkpoints and
# verifies them with ckpt_tool (snapshot CRC/format coverage under both
# sanitizers), and runs the service-mode chaos harness (SIGKILL + resume)
# with a server-vs-in-process differential sweep.
# Usage: tools/check.sh [extra ctest args for the ASan pass...]
set -e
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 4)"

# configure BUILD_DIR [cmake args...] — fail fast with a pointed message if
# the configure step itself breaks (a silent half-configured build directory
# otherwise produces confusing downstream compile errors).
configure() {
  CONFIG_DIR="$1"
  shift
  if ! cmake -B "$CONFIG_DIR" -S "$ROOT" "$@"; then
    echo "error: cmake configure failed for $CONFIG_DIR -- fix the" \
         "configuration error above before looking at build output" >&2
    exit 1
  fi
}

# obs_check BUILD_DIR — generate a workload, run it with every observability
# export enabled (threads >1 so instrumentation runs under the sanitizer's
# eye), and validate the output files.
obs_check() {
  OBS_DIR="$(mktemp -d)"
  Q='PATTERN SEQ(req a, unlock c) WHERE c.uid = a.uid WITHIN 5 min RETURN w(loc = a.loc, user = a.uid)'
  "$1/tools/cepshed_cli" generate --workload bike --out "$OBS_DIR/bike.csv" \
      --duration-hours 1 --seed 7 > /dev/null
  "$1/tools/cepshed_cli" run --schema bike --query "$Q" \
      --input "$OBS_DIR/bike.csv" --shedder sbls --max-runs 5 \
      --hash req:loc --threads 4 \
      --metrics-out "$OBS_DIR/metrics.prom" \
      --trace-out "$OBS_DIR/trace.json" \
      --audit-out "$OBS_DIR/audit.jsonl" > /dev/null
  "$1/tools/validate_obs" metrics-prom "$OBS_DIR/metrics.prom"
  "$1/tools/validate_obs" trace "$OBS_DIR/trace.json"
  "$1/tools/validate_obs" audit "$OBS_DIR/audit.jsonl"
  rm -rf "$OBS_DIR"
}

# ckpt_check BUILD_DIR — run a checkpointed job, verify every snapshot with
# ckpt_tool, and restore from the newest one; the serializers, CRC paths,
# and background writer all run under the build's sanitizer.
ckpt_check() {
  CKPT_DIR="$(mktemp -d)"
  Q='PATTERN SEQ(req a, unlock c) WHERE c.uid = a.uid WITHIN 5 min RETURN w(loc = a.loc, user = a.uid)'
  "$1/tools/cepshed_cli" generate --workload bike --out "$CKPT_DIR/bike.csv" \
      --duration-hours 1 --seed 7 > /dev/null
  "$1/tools/cepshed_cli" run --schema bike --query "$Q" \
      --input "$CKPT_DIR/bike.csv" --shedder sbls --max-runs 5 \
      --hash req:loc --threads 4 \
      --checkpoint-dir "$CKPT_DIR/ckpts" \
      --checkpoint-interval-events 500 > /dev/null
  "$1/tools/ckpt_tool" verify "$CKPT_DIR/ckpts"
  for SNAP in "$CKPT_DIR"/ckpts/*.cep; do
    "$1/tools/ckpt_tool" verify "$SNAP" > /dev/null
  done
  "$1/tools/cepshed_cli" run --schema bike --query "$Q" \
      --input "$CKPT_DIR/bike.csv" --shedder sbls --max-runs 5 \
      --hash req:loc --restore-from "$CKPT_DIR/ckpts" > /dev/null
  rm -rf "$CKPT_DIR"
}

# server_check BUILD_DIR — service-mode pass: the SIGKILL chaos harness
# (crash recovery must reproduce a byte-identical drain) and a short
# differential sweep of the server transport/WAL/session path against
# in-process engines, all under the build's sanitizer.
server_check() {
  sh "$ROOT/tests/server_smoke_test.sh" \
      "$1/tools/cepshed_server" "$1/tools/cepshed_client"
  "$1/tools/stress_engine" --server --configs 10 --seed 11
}

# fuzz_check BUILD_DIR — differential stress sweep plus, when the toolchain
# supports -fsanitize=fuzzer (clang), a short coverage-guided run of each
# fuzz target over its checked-in corpus. The corpus-replay ctest entries
# already ran as part of the suite; this adds the wider seeded sweep.
fuzz_check() {
  "$1/tools/stress_engine" --configs 120 --seed 7
  if grep -q 'CEPSHED_LIBFUZZER_SUPPORTED.*=1' "$1/CMakeCache.txt"; then
    FUZZ_DIR="$(mktemp -d)"
    for TARGET in query csv snapshot; do
      # New inputs land in the scratch dir; the checked-in seeds stay pristine.
      mkdir -p "$FUZZ_DIR/$TARGET"
      "$1/fuzz/fuzz_$TARGET" -max_total_time=60 -timeout=10 \
          "$FUZZ_DIR/$TARGET" "$ROOT/tests/corpus/$TARGET"
    done
    rm -rf "$FUZZ_DIR"
  fi
}

BUILD="$ROOT/build-sanitize"
configure "$BUILD" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCEPSHED_SANITIZE=address \
    -DCEPSHED_FUZZ=ON \
    -DCEPSHED_BUILD_BENCHMARKS=OFF \
    -DCEPSHED_BUILD_EXAMPLES=OFF
cmake --build "$BUILD" -j "$JOBS"
(cd "$BUILD" && ctest --output-on-failure -j "$JOBS" "$@")
obs_check "$BUILD"
ckpt_check "$BUILD"
server_check "$BUILD"
fuzz_check "$BUILD"

TSAN_BUILD="$ROOT/build-tsan"
configure "$TSAN_BUILD" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCEPSHED_SANITIZE=thread \
    -DCEPSHED_BUILD_BENCHMARKS=OFF \
    -DCEPSHED_BUILD_EXAMPLES=OFF
cmake --build "$TSAN_BUILD" -j "$JOBS"
(cd "$TSAN_BUILD" && ctest --output-on-failure -j "$JOBS" -R 'Parallel')
obs_check "$TSAN_BUILD"
ckpt_check "$TSAN_BUILD"
server_check "$TSAN_BUILD"

echo "sanitized check ok"
