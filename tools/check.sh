#!/bin/sh
# Sanitized verification pass: builds the ASan+UBSan preset into
# build-sanitize/ and runs the full test suite under it, so the
# fault-injection and resilience paths are exercised with memory and UB
# checking on. Usage: tools/check.sh [extra ctest args...]
set -e
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/build-sanitize"

cmake -B "$BUILD" -S "$ROOT" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCEPSHED_SANITIZE=ON \
    -DCEPSHED_BUILD_BENCHMARKS=OFF \
    -DCEPSHED_BUILD_EXAMPLES=OFF
cmake --build "$BUILD" -j "$(nproc 2>/dev/null || echo 4)"
cd "$BUILD"
ctest --output-on-failure -j "$(nproc 2>/dev/null || echo 4)" "$@"
echo "sanitized check ok"
