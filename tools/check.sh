#!/bin/sh
# Sanitized verification pass, three builds:
#   1. build-sanitize/  — ASan+UBSan, full test suite (memory/UB coverage for
#      the fault-injection and resilience paths), plus the fuzz corpus
#      replays and a differential stress sweep (docs/FUZZING.md).
#   2. build-tsan/      — ThreadSanitizer, the Parallel* suites (data-race
#      coverage for the worker pool, run sharding, and MultiEngine fan-out).
#   3. build-release/   — -O2 -DNDEBUG, full test suite (assert-free paths),
#      a bench_micro_engine throughput smoke that fails on a >20%
#      single-thread regression vs the committed BENCH_parallel.json, and
#      the bench_suite shedding-quality smoke (schema-checked output,
#      shadow-recall accuracy gate, coarse throughput floor vs the
#      committed BENCH_suite.json).
# Each build also runs the CLI on an example workload with the observability
# exports enabled and validates them with validate_obs (schema regressions
# and instrumentation races surface here), then writes checkpoints and
# verifies them with ckpt_tool (snapshot CRC/format coverage under both
# sanitizers), and runs the service-mode chaos harness (SIGKILL + resume)
# with a server-vs-in-process differential sweep. The ASan and TSan passes
# additionally run the multi-query optimizer differential (stress_engine
# --multiquery: optimized vs unoptimized per-query matches must be
# byte-identical), and the ASan pass diffs opt_tool output against the
# checked-in goldens (tests/golden/opt/).
# Usage: tools/check.sh [extra ctest args for the ASan pass...]
set -e
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 4)"

# configure BUILD_DIR [cmake args...] — fail fast with a pointed message if
# the configure step itself breaks (a silent half-configured build directory
# otherwise produces confusing downstream compile errors).
configure() {
  CONFIG_DIR="$1"
  shift
  if ! cmake -B "$CONFIG_DIR" -S "$ROOT" "$@"; then
    echo "error: cmake configure failed for $CONFIG_DIR -- fix the" \
         "configuration error above before looking at build output" >&2
    exit 1
  fi
}

# obs_check BUILD_DIR — generate a workload, run it with every observability
# export enabled (threads >1 so instrumentation runs under the sanitizer's
# eye), and validate the output files.
obs_check() {
  OBS_DIR="$(mktemp -d)"
  Q='PATTERN SEQ(req a, unlock c) WHERE c.uid = a.uid WITHIN 5 min RETURN w(loc = a.loc, user = a.uid)'
  "$1/tools/cepshed_cli" generate --workload bike --out "$OBS_DIR/bike.csv" \
      --duration-hours 1 --seed 7 > /dev/null
  "$1/tools/cepshed_cli" run --schema bike --query "$Q" \
      --input "$OBS_DIR/bike.csv" --shedder sbls --max-runs 5 \
      --hash req:loc --threads 4 \
      --shadow-sample 1 --calibration --slo-budget 0.01 \
      --metrics-out "$OBS_DIR/metrics.prom" \
      --trace-out "$OBS_DIR/trace.json" \
      --audit-out "$OBS_DIR/audit.jsonl" \
      --quality-out "$OBS_DIR/quality.json" > /dev/null
  "$1/tools/validate_obs" metrics-prom "$OBS_DIR/metrics.prom"
  "$1/tools/validate_obs" trace "$OBS_DIR/trace.json"
  "$1/tools/validate_obs" audit "$OBS_DIR/audit.jsonl"
  "$1/tools/validate_obs" quality "$OBS_DIR/quality.json"
  rm -rf "$OBS_DIR"
}

# ckpt_check BUILD_DIR — run a checkpointed job, verify every snapshot with
# ckpt_tool, and restore from the newest one; the serializers, CRC paths,
# and background writer all run under the build's sanitizer.
ckpt_check() {
  CKPT_DIR="$(mktemp -d)"
  Q='PATTERN SEQ(req a, unlock c) WHERE c.uid = a.uid WITHIN 5 min RETURN w(loc = a.loc, user = a.uid)'
  "$1/tools/cepshed_cli" generate --workload bike --out "$CKPT_DIR/bike.csv" \
      --duration-hours 1 --seed 7 > /dev/null
  "$1/tools/cepshed_cli" run --schema bike --query "$Q" \
      --input "$CKPT_DIR/bike.csv" --shedder sbls --max-runs 5 \
      --hash req:loc --threads 4 \
      --checkpoint-dir "$CKPT_DIR/ckpts" \
      --checkpoint-interval-events 500 > /dev/null
  "$1/tools/ckpt_tool" verify "$CKPT_DIR/ckpts"
  for SNAP in "$CKPT_DIR"/ckpts/*.cep; do
    "$1/tools/ckpt_tool" verify "$SNAP" > /dev/null
  done
  "$1/tools/cepshed_cli" run --schema bike --query "$Q" \
      --input "$CKPT_DIR/bike.csv" --shedder sbls --max-runs 5 \
      --hash req:loc --restore-from "$CKPT_DIR/ckpts" > /dev/null
  rm -rf "$CKPT_DIR"
}

# server_check BUILD_DIR — service-mode pass: the SIGKILL chaos harness
# (crash recovery must reproduce a byte-identical drain) and a short
# differential sweep of the server transport/WAL/session path against
# in-process engines, all under the build's sanitizer.
server_check() {
  sh "$ROOT/tests/server_smoke_test.sh" \
      "$1/tools/cepshed_server" "$1/tools/cepshed_client"
  "$1/tools/stress_engine" --server --configs 10 --seed 11
}

# perf_check BUILD_DIR — throughput smoke against the committed baseline:
# re-run the bench_micro_engine parallel sweep (Release build) and fail when
# single-thread events/sec drops more than 20% below the checked-in
# BENCH_parallel.json. Catches hot-path regressions (run storage, predicate
# fast path) that no correctness test would notice.
perf_check() {
  PERF_DIR="$(mktemp -d)"
  (cd "$PERF_DIR" && "$1/bench/bench_micro_engine" --benchmark_filter=NONE \
      > /dev/null)
  ROW='s/.*"threads": 1, "batch": 1, "events_per_sec": \([0-9.]*\).*/\1/p'
  NEW="$(sed -n "$ROW" "$PERF_DIR/BENCH_parallel.json")"
  BASE="$(sed -n "$ROW" "$ROOT/BENCH_parallel.json")"
  rm -rf "$PERF_DIR"
  awk -v new="$NEW" -v base="$BASE" 'BEGIN {
    if (new == "" || base == "") {
      print "error: perf smoke could not parse events_per_sec" > "/dev/stderr"
      exit 1
    }
    if (new + 0 < 0.8 * base) {
      printf "error: perf smoke: single-thread %.1f ev/s is >20%% below the \
committed baseline %.1f ev/s (BENCH_parallel.json)\n", new, base > "/dev/stderr"
      exit 1
    }
    printf "perf smoke ok: single-thread %.1f ev/s (baseline %.1f)\n", new, base
  }'
}

# suite_check BUILD_DIR — shedding-quality trajectory smoke (Release build,
# small preset): re-run the standing bench suite, schema-check its output
# with validate_obs, and fail when single-thread throughput drops below 80%
# of the committed BENCH_suite.json baseline. The baseline is the full-scale
# run while this smoke uses CEPSHED_SCALE=0.1 (which is faster per event),
# so the floor is deliberately coarse — it catches catastrophic hot-path
# regressions; the tight 20% gate is perf_check's job. bench_suite itself
# also fails when the shadow oracle's online recall estimate drifts more
# than 5 points from the offline truth on the cluster workload.
suite_check() {
  SUITE_DIR="$(mktemp -d)"
  (cd "$SUITE_DIR" && CEPSHED_SCALE=0.1 "$1/bench/bench_suite" \
      > /dev/null 2>&1)
  "$1/tools/validate_obs" bench-suite "$SUITE_DIR/BENCH_suite.json"
  ROW='s/.*"single_thread_eps": \([0-9.]*\).*/\1/p'
  NEW="$(sed -n "$ROW" "$SUITE_DIR/BENCH_suite.json")"
  BASE="$(sed -n "$ROW" "$ROOT/BENCH_suite.json")"
  rm -rf "$SUITE_DIR"
  awk -v new="$NEW" -v base="$BASE" 'BEGIN {
    if (new == "" || base == "") {
      print "error: suite smoke could not parse single_thread_eps" \
          > "/dev/stderr"
      exit 1
    }
    if (new + 0 < 0.8 * base) {
      printf "error: suite smoke: single-thread %.1f ev/s is >20%% below the \
committed baseline %.1f ev/s (BENCH_suite.json)\n", new, base > "/dev/stderr"
      exit 1
    }
    printf "suite smoke ok: single-thread %.1f ev/s (baseline %.1f)\n", \
        new, base
  }'
}

# opt_check BUILD_DIR — multi-query optimizer golden check: run opt_tool on
# the example query set and diff both the text IR dump and the Graphviz
# rendering against the checked-in goldens. Any change to pass ordering,
# interning, merge grouping, or the IR printer shows up as a diff here and
# forces a conscious golden update.
opt_check() {
  OPT_DIR="$(mktemp -d)"
  "$1/tools/opt_tool" --schema bike \
      --queries "$ROOT/tests/golden/opt/example_queries.txt" \
      --dot "$OPT_DIR/example.dot" > "$OPT_DIR/example_dump.txt"
  diff -u "$ROOT/tests/golden/opt/example_dump.txt" "$OPT_DIR/example_dump.txt"
  diff -u "$ROOT/tests/golden/opt/example.dot" "$OPT_DIR/example.dot"
  rm -rf "$OPT_DIR"
}

# multiquery_check BUILD_DIR CONFIGS — differential multi-query sweep: for
# each random config the optimized MultiEngine (CSE + merge + pushdown) must
# produce byte-identical per-query match fingerprints vs the unoptimized
# one, across the thread/shard grid, batch feeding, and checkpoint-resume.
multiquery_check() {
  "$1/tools/stress_engine" --multiquery --configs "$2" --seed 9
}

# fuzz_check BUILD_DIR — differential stress sweep plus, when the toolchain
# supports -fsanitize=fuzzer (clang), a short coverage-guided run of each
# fuzz target over its checked-in corpus. The corpus-replay ctest entries
# already ran as part of the suite; this adds the wider seeded sweep.
fuzz_check() {
  "$1/tools/stress_engine" --configs 300 --seed 7 --shadow
  if grep -q 'CEPSHED_LIBFUZZER_SUPPORTED.*=1' "$1/CMakeCache.txt"; then
    FUZZ_DIR="$(mktemp -d)"
    for TARGET in query csv snapshot; do
      # New inputs land in the scratch dir; the checked-in seeds stay pristine.
      mkdir -p "$FUZZ_DIR/$TARGET"
      "$1/fuzz/fuzz_$TARGET" -max_total_time=60 -timeout=10 \
          "$FUZZ_DIR/$TARGET" "$ROOT/tests/corpus/$TARGET"
    done
    rm -rf "$FUZZ_DIR"
  fi
}

BUILD="$ROOT/build-sanitize"
configure "$BUILD" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCEPSHED_SANITIZE=address \
    -DCEPSHED_FUZZ=ON \
    -DCEPSHED_BUILD_BENCHMARKS=OFF \
    -DCEPSHED_BUILD_EXAMPLES=OFF
cmake --build "$BUILD" -j "$JOBS"
(cd "$BUILD" && ctest --output-on-failure -j "$JOBS" "$@")
# The strategy-conformance suite (every registered shedder: determinism,
# thread/shard artifact identity, checkpoint-resume byte identity, run
# conservation) runs explicitly under ASan+UBSan so that user-filtered
# ctest args above cannot skip it.
(cd "$BUILD" && ctest --output-on-failure -j "$JOBS" \
    -R 'StrategyConformance|ShedderRegistry|ShedDecision')
obs_check "$BUILD"
ckpt_check "$BUILD"
server_check "$BUILD"
opt_check "$BUILD"
multiquery_check "$BUILD" 30
fuzz_check "$BUILD"

TSAN_BUILD="$ROOT/build-tsan"
configure "$TSAN_BUILD" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCEPSHED_SANITIZE=thread \
    -DCEPSHED_BUILD_BENCHMARKS=OFF \
    -DCEPSHED_BUILD_EXAMPLES=OFF
cmake --build "$TSAN_BUILD" -j "$JOBS"
(cd "$TSAN_BUILD" && ctest --output-on-failure -j "$JOBS" \
    -R 'Parallel|StrategyConformance')
obs_check "$TSAN_BUILD"
ckpt_check "$TSAN_BUILD"
server_check "$TSAN_BUILD"
multiquery_check "$TSAN_BUILD" 10

# Release pass: the suite again under -O2 -DNDEBUG (assert-free code paths,
# optimizer-exposed UB) plus the throughput smoke against the committed
# baseline.
REL_BUILD="$ROOT/build-release"
configure "$REL_BUILD" \
    -DCMAKE_BUILD_TYPE=Release \
    -DCMAKE_CXX_FLAGS_RELEASE="-O2 -DNDEBUG" \
    -DCEPSHED_BUILD_BENCHMARKS=ON \
    -DCEPSHED_BUILD_EXAMPLES=OFF
cmake --build "$REL_BUILD" -j "$JOBS"
(cd "$REL_BUILD" && ctest --output-on-failure -j "$JOBS")
perf_check "$REL_BUILD"
suite_check "$REL_BUILD"

echo "sanitized check ok"
