#!/bin/sh
# Sanitized verification pass, two builds:
#   1. build-sanitize/  — ASan+UBSan, full test suite (memory/UB coverage for
#      the fault-injection and resilience paths).
#   2. build-tsan/      — ThreadSanitizer, the Parallel* suites (data-race
#      coverage for the worker pool, run sharding, and MultiEngine fan-out).
# Usage: tools/check.sh [extra ctest args for the ASan pass...]
set -e
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 4)"

BUILD="$ROOT/build-sanitize"
cmake -B "$BUILD" -S "$ROOT" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCEPSHED_SANITIZE=address \
    -DCEPSHED_BUILD_BENCHMARKS=OFF \
    -DCEPSHED_BUILD_EXAMPLES=OFF
cmake --build "$BUILD" -j "$JOBS"
(cd "$BUILD" && ctest --output-on-failure -j "$JOBS" "$@")

TSAN_BUILD="$ROOT/build-tsan"
cmake -B "$TSAN_BUILD" -S "$ROOT" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCEPSHED_SANITIZE=thread \
    -DCEPSHED_BUILD_BENCHMARKS=OFF \
    -DCEPSHED_BUILD_EXAMPLES=OFF
cmake --build "$TSAN_BUILD" -j "$JOBS"
(cd "$TSAN_BUILD" && ctest --output-on-failure -j "$JOBS" -R 'Parallel')

echo "sanitized check ok"
