#!/bin/sh
# Sanitized verification pass, two builds:
#   1. build-sanitize/  — ASan+UBSan, full test suite (memory/UB coverage for
#      the fault-injection and resilience paths).
#   2. build-tsan/      — ThreadSanitizer, the Parallel* suites (data-race
#      coverage for the worker pool, run sharding, and MultiEngine fan-out).
# Each build also runs the CLI on an example workload with the observability
# exports enabled and validates them with validate_obs (schema regressions
# and instrumentation races surface here).
# Usage: tools/check.sh [extra ctest args for the ASan pass...]
set -e
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 4)"

# obs_check BUILD_DIR — generate a workload, run it with every observability
# export enabled (threads >1 so instrumentation runs under the sanitizer's
# eye), and validate the output files.
obs_check() {
  OBS_DIR="$(mktemp -d)"
  Q='PATTERN SEQ(req a, unlock c) WHERE c.uid = a.uid WITHIN 5 min RETURN w(loc = a.loc, user = a.uid)'
  "$1/tools/cepshed_cli" generate --workload bike --out "$OBS_DIR/bike.csv" \
      --duration-hours 1 --seed 7 > /dev/null
  "$1/tools/cepshed_cli" run --schema bike --query "$Q" \
      --input "$OBS_DIR/bike.csv" --shedder sbls --max-runs 5 \
      --hash req:loc --threads 4 \
      --metrics-out "$OBS_DIR/metrics.prom" \
      --trace-out "$OBS_DIR/trace.json" \
      --audit-out "$OBS_DIR/audit.jsonl" > /dev/null
  "$1/tools/validate_obs" metrics-prom "$OBS_DIR/metrics.prom"
  "$1/tools/validate_obs" trace "$OBS_DIR/trace.json"
  "$1/tools/validate_obs" audit "$OBS_DIR/audit.jsonl"
  rm -rf "$OBS_DIR"
}

BUILD="$ROOT/build-sanitize"
cmake -B "$BUILD" -S "$ROOT" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCEPSHED_SANITIZE=address \
    -DCEPSHED_BUILD_BENCHMARKS=OFF \
    -DCEPSHED_BUILD_EXAMPLES=OFF
cmake --build "$BUILD" -j "$JOBS"
(cd "$BUILD" && ctest --output-on-failure -j "$JOBS" "$@")
obs_check "$BUILD"

TSAN_BUILD="$ROOT/build-tsan"
cmake -B "$TSAN_BUILD" -S "$ROOT" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCEPSHED_SANITIZE=thread \
    -DCEPSHED_BUILD_BENCHMARKS=OFF \
    -DCEPSHED_BUILD_EXAMPLES=OFF
cmake --build "$TSAN_BUILD" -j "$JOBS"
(cd "$TSAN_BUILD" && ctest --output-on-failure -j "$JOBS" -R 'Parallel')
obs_check "$TSAN_BUILD"

echo "sanitized check ok"
