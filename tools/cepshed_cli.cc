// cepshed_cli — run SASE queries over CSV event streams from the shell.
//
//   cepshed_cli generate --workload cluster --out trace.csv --duration-hours 6
//   cepshed_cli explain  --schema cluster --query 'PATTERN SEQ(...) ...'
//   cepshed_cli run      --schema cluster --query q.sase --input trace.csv
//                        --shedder sbls --theta 80 --stats
//
// Schemas: --schema accepts a file (one event type per line:
// `name attr:type attr:type ...`, types int|double|string|bool) or one of
// the builtin names `cluster`, `bike`, `stock`.

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>

#include "common/string_util.h"
#include "service/drain.h"
#include "engine/engine.h"
#include "engine/multi.h"
#include "event/csv.h"
#include "obs/audit.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "event/fault_injection.h"
#include "nfa/compiler.h"
#include "nfa/dot.h"
#include "query/analyzer.h"
#include "query/parser.h"
#include "shedding/registry.h"
#include "workload/bikeshare.h"
#include "workload/google_trace.h"
#include "workload/stock.h"

namespace cep {
namespace {

// SIGINT/SIGTERM during `run` stop the ingest loop after the in-flight
// event (or batch) instead of killing the process mid-write: the engine
// writes a final snapshot and every requested export before exiting, so a
// later --restore-from resumes exactly-once.
volatile std::sig_atomic_t g_interrupted = 0;

void HandleInterrupt(int) { g_interrupted = 1; }

void InstallInterruptHandlers() {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = HandleInterrupt;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
}

int Usage() {
  std::string strategies;
  for (const ShedderStrategyInfo& info : ShedderRegistry::ListStrategies()) {
    if (!strategies.empty()) strategies += "|";
    strategies += info.name;
  }
  std::fprintf(
      stderr,
      "usage: cepshed_cli <run|generate|explain> [options]\n"
      "\n"
      "run      --schema <file|cluster|bike|stock> --query <file|text>\n"
      "         --input <events.csv> [--matches <out.csv>]\n"
      "         [--queries <file> [--opt] [--opt-dump]]  multi-query mode:\n"
      "           one query per line; --opt runs the optimizer pass\n"
      "           pipeline (CSE/DSE/merge/pushdown, docs/OPTIMIZER.md)\n"
      "         [--shedder <name|'name(key=val,...)'>] [--theta <micros>]\n"
      "           shedder names: %s\n"
      "         [--fraction <0..1>] [--max-runs <n>]\n"
      "         [--hash type:attr[,type:attr...]] [--bucket <width>]\n"
      "         [--resilience] [--run-bytes-budget <bytes>]\n"
      "         [--error-budget <n-consecutive>]\n"
      "         [--fault-drop <p>] [--fault-dup <p>] [--fault-delay <p>]\n"
      "         [--fault-corrupt <p>] [--fault-seed <n>]\n"
      "         [--threads <n>] [--batch-size <n>]\n"
      "         [--checkpoint-dir <dir>] [--checkpoint-interval-events <n>]\n"
      "         [--checkpoint-keep <n>] [--checkpoint-sync]\n"
      "         [--restore-from <file|dir>]\n"
      "         [--stats] [--stats-interval-events <n>]\n"
      "         [--metrics-out <file[.prom|.json]>] [--trace-out <file>]\n"
      "         [--audit-out <file.jsonl>]\n"
      "         [--shadow-sample <1-in-n spans>] [--shadow-width <ts>]\n"
      "         [--shadow-seed <n>] [--calibration] [--slo-budget <frac>]\n"
      "         [--quality-out <file.json>]\n"
      "generate --workload cluster|bike|stock --out <events.csv>\n"
      "         [--duration-hours <h>] [--seed <n>] [--scale <f>]\n"
      "explain  --schema <...> --query <...> [--dot <out.dot>]\n",
      strategies.c_str());
  return 2;
}

class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) continue;
      key = key.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "";
      }
    }
  }
  bool Has(const std::string& key) const { return values_.count(key) > 0; }
  std::string Get(const std::string& key, std::string fallback = "") const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& key, double fallback) const {
    return Has(key) ? std::atof(Get(key).c_str()) : fallback;
  }
  int64_t GetInt(const std::string& key, int64_t fallback) const {
    return Has(key) ? std::atoll(Get(key).c_str()) : fallback;
  }

 private:
  std::map<std::string, std::string> values_;
};

Result<std::string> ReadFileOrLiteral(const std::string& arg) {
  std::ifstream file(arg);
  if (!file) return arg;  // treat as inline text
  std::stringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

Result<ValueType> ParseValueType(const std::string& name) {
  if (name == "int") return ValueType::kInt;
  if (name == "double") return ValueType::kDouble;
  if (name == "string") return ValueType::kString;
  if (name == "bool") return ValueType::kBool;
  return Status::ParseError("unknown attribute type '" + name + "'");
}

Status LoadSchema(const std::string& arg, SchemaRegistry* registry) {
  if (arg == "cluster") return GoogleTraceGenerator::RegisterSchemas(registry);
  if (arg == "bike") return BikeShareGenerator::RegisterSchemas(registry);
  if (arg == "stock") return StockGenerator::RegisterSchemas(registry);
  std::ifstream file(arg);
  if (!file) return Status::IoError("cannot open schema file: " + arg);
  std::string line;
  size_t line_no = 0;
  while (std::getline(file, line)) {
    ++line_no;
    const std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    std::istringstream fields{std::string(stripped)};
    std::string type_name;
    fields >> type_name;
    std::vector<AttributeDef> attrs;
    std::string attr_spec;
    while (fields >> attr_spec) {
      const size_t colon = attr_spec.find(':');
      if (colon == std::string::npos) {
        return Status::ParseError(
            StrFormat("schema line %zu: expected attr:type, got '%s'",
                      line_no, attr_spec.c_str()));
      }
      CEP_ASSIGN_OR_RETURN(ValueType vt,
                           ParseValueType(attr_spec.substr(colon + 1)));
      attrs.push_back(AttributeDef{attr_spec.substr(0, colon), vt});
    }
    CEP_RETURN_NOT_OK(
        registry->Register(type_name, std::move(attrs)).status());
  }
  return Status::OK();
}

Result<NfaPtr> CompileQuery(const std::string& arg,
                            const SchemaRegistry& registry) {
  CEP_ASSIGN_OR_RETURN(std::string text, ReadFileOrLiteral(arg));
  CEP_ASSIGN_OR_RETURN(ParsedQuery parsed, ParseQuery(text));
  CEP_ASSIGN_OR_RETURN(AnalyzedQuery analyzed,
                       Analyze(std::move(parsed), registry));
  return CompileToNfa(std::move(analyzed));
}

Result<ShedderPtr> MakeShedder(const Args& args,
                               const SchemaRegistry& registry) {
  CEP_ASSIGN_OR_RETURN(auto parsed, ShedderRegistry::ParseSpec(
                                        args.Get("shedder", "none")));
  // Keys written inside the inline spec were written for this strategy
  // alone, so reject unknown ones as typos (flags below are filtered).
  for (const ShedderStrategyInfo& info : ShedderRegistry::ListStrategies()) {
    if (info.name != parsed.first) continue;
    for (const auto& [key, value] : parsed.second) {
      (void)value;
      const bool known = std::any_of(
          info.knobs.begin(), info.knobs.end(),
          [&key = key](const ShedderKnob& k) { return k.key == key; });
      if (!known) {
        return Status::InvalidArgument("shedder '" + parsed.first +
                                       "' has no option '" + key + "'");
      }
    }
  }
  ShedderParams& params = parsed.second;
  // Flag overlay: an option inside the inline spec wins over the flag.
  if (args.Has("seed")) params.emplace("seed", args.Get("seed"));
  if (args.Has("fraction")) params.emplace("drop", args.Get("fraction"));
  if (args.Has("hash")) params.emplace("hash", args.Get("hash"));
  if (args.Has("bucket")) params.emplace("bucket", args.Get("bucket"));
  if (args.Has("slices")) params.emplace("slices", args.Get("slices"));
  // CLI defaults that differ from the registry's bare defaults.
  params.emplace("wplus", args.Get("wplus", "4"));
  params.emplace("wminus", args.Get("wminus", "1"));
  ShedderEnv env;
  env.schema = &registry;
  return ShedderRegistry::MakeFromParams(parsed.first, params, env);
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

Status WriteTextFile(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << text;
  if (!out.good()) return Status::IoError("write to " + path + " failed");
  return Status::OK();
}

// Multi-query mode: `run --queries <file>` evaluates every query in the
// file (one per line, # comments) over the same input through a MultiEngine,
// and --opt runs the optimizer pass pipeline (docs/OPTIMIZER.md) before
// evaluation. Per-query match counts go to stdout; --metrics-out exports the
// per-query label families plus cep_opt_* stats. Flags tied to single-engine
// state (checkpointing, shadow quality) are rejected rather than half-applied.
Status RunMultiCommand(const Args& args) {
  for (const char* flag :
       {"query", "matches", "checkpoint-dir", "restore-from", "shadow-sample",
        "shadow-width", "shadow-seed", "calibration", "slo-budget",
        "quality-out"}) {
    if (args.Has(flag)) {
      return Status::InvalidArgument(
          StrFormat("--%s is not supported in multi-query mode (--queries)",
                    flag));
    }
  }
  SchemaRegistry registry;
  CEP_RETURN_NOT_OK(LoadSchema(args.Get("schema"), &registry));

  std::ifstream file(args.Get("queries"));
  if (!file) {
    return Status::IoError("cannot open --queries file: " +
                           args.Get("queries"));
  }
  std::vector<NfaPtr> nfas;
  std::string line;
  size_t line_no = 0;
  while (std::getline(file, line)) {
    ++line_no;
    const std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    auto nfa = CompileQuery(std::string(stripped), registry);
    CEP_RETURN_NOT_OK(
        nfa.status().WithContext(StrFormat("query line %zu", line_no)));
    nfas.push_back(nfa.MoveValueUnsafe());
  }
  if (nfas.empty()) {
    return Status::InvalidArgument("--queries file holds no queries");
  }

  const bool resilience = args.Has("resilience");
  CsvReadOptions csv_options;
  CsvReadStats csv_stats;
  if (resilience || args.Has("error-budget")) {
    csv_options.max_consecutive_errors =
        static_cast<size_t>(args.GetInt("error-budget", 64));
  }
  CEP_ASSIGN_OR_RETURN(std::vector<EventPtr> events,
                       ReadEventsCsvFile(registry, args.Get("input"),
                                         csv_options, &csv_stats));

  EngineOptions options;
  options.latency_threshold_micros = args.GetDouble("theta", 0.0);
  options.shed_amount.fraction = args.GetDouble("fraction", 0.2);
  options.max_runs = static_cast<size_t>(args.GetInt("max-runs", 0));
  if (resilience) {
    options.degradation.enabled = true;
    options.degradation.run_bytes_budget =
        static_cast<size_t>(args.GetInt("run-bytes-budget", 0));
    options.error_budget.enabled = true;
    options.error_budget.max_consecutive_errors =
        static_cast<size_t>(args.GetInt("error-budget", 64));
  }
  CEP_ASSIGN_OR_RETURN(options, options.Validated());

  MultiEngine multi;
  for (NfaPtr& nfa : nfas) {
    // Every query gets its own shedder instance built from the same flags
    // (shedders are stateful, so one object cannot serve two engines).
    CEP_ASSIGN_OR_RETURN(ShedderPtr shedder, MakeShedder(args, registry));
    multi.AddQuery(std::move(nfa), options, std::move(shedder));
  }
  if (args.Has("opt")) {
    opt::OptOptions opt_options;
    opt_options.dump_ir = args.Has("opt-dump");
    CEP_RETURN_NOT_OK(multi.Optimize(opt_options));
    for (const opt::PassDump& dump : multi.opt_dumps()) {
      std::printf("==== before pass '%s' ====\n%s", dump.pass.c_str(),
                  dump.before.c_str());
      std::printf("==== after pass '%s' ====\n%s", dump.pass.c_str(),
                  dump.after.c_str());
    }
  }
  multi.EnableParallel(static_cast<size_t>(args.GetInt("threads", 0)));
  obs::ShedAuditLog audit_log;
  if (args.Has("audit-out")) multi.AttachAuditLog(&audit_log);
  obs::Tracer tracer;
  if (args.Has("trace-out")) multi.AttachTracer(&tracer);

  // Fault injection wraps the materialised input exactly as in single-query
  // mode: the storm is upstream of the fan-out, so every query sees the
  // same perturbed stream.
  auto stream = std::make_unique<VectorEventStream>(events);
  std::unique_ptr<EventStream> source = std::move(stream);
  FaultInjectingStream* faults = nullptr;
  if (args.Has("fault-drop") || args.Has("fault-dup") ||
      args.Has("fault-delay") || args.Has("fault-corrupt")) {
    FaultInjectionOptions fault_options;
    fault_options.drop_probability = args.GetDouble("fault-drop", 0.0);
    fault_options.duplicate_probability = args.GetDouble("fault-dup", 0.0);
    fault_options.delay_probability = args.GetDouble("fault-delay", 0.0);
    fault_options.corrupt_probability = args.GetDouble("fault-corrupt", 0.0);
    fault_options.seed = static_cast<uint64_t>(args.GetInt("fault-seed", 7));
    auto injector = std::make_unique<FaultInjectingStream>(std::move(source),
                                                           fault_options);
    faults = injector.get();
    source = std::move(injector);
  }

  const size_t batch_size =
      static_cast<size_t>(args.GetInt("batch-size", 1));
  const uint64_t stats_interval =
      static_cast<uint64_t>(args.GetInt("stats-interval-events", 0));
  InstallInterruptHandlers();
  uint64_t offered = 0;
  if (batch_size <= 1 || stats_interval > 0) {
    while (EventPtr event = source->Next()) {
      if (g_interrupted) break;
      CEP_RETURN_NOT_OK(multi.OfferEvent(event));
      ++offered;
      if (stats_interval > 0 && offered % stats_interval == 0) {
        std::fprintf(stderr, "stats[%llu] %s\n",
                     static_cast<unsigned long long>(offered),
                     multi.AggregateMetrics().ToString().c_str());
      }
    }
  } else {
    std::vector<EventPtr> batch;
    batch.reserve(batch_size);
    for (;;) {
      if (g_interrupted) break;
      batch.clear();
      while (batch.size() < batch_size) {
        EventPtr event = source->Next();
        if (event == nullptr) break;
        batch.push_back(std::move(event));
      }
      if (batch.empty()) break;
      offered += batch.size();
      CEP_RETURN_NOT_OK(multi.ProcessBatch(batch));
    }
  }
  for (size_t k = 0; k < multi.num_engines(); ++k) {
    CEP_RETURN_NOT_OK(
        service::DrainEngine(multi.physical_engine(k), /*flush_runs=*/true));
  }

  for (size_t i = 0; i < multi.num_queries(); ++i) {
    std::printf("query %zu (%s): %llu matches\n", i,
                multi.query_name(i).c_str(),
                static_cast<unsigned long long>(
                    multi.engine(i).metrics().matches_emitted));
  }
  std::printf("%llu matches over %zu events across %zu queries "
              "(%zu engines)\n",
              static_cast<unsigned long long>(
                  multi.AggregateMetrics().matches_emitted),
              events.size(), multi.num_queries(), multi.num_engines());
  if (args.Has("stats")) {
    std::printf("%s\n", multi.AggregateMetrics().ToString().c_str());
    if (const opt::MultiQueryIr* ir = multi.ir()) {
      const opt::OptStats& s = ir->stats;
      std::printf(
          "opt: shared_preds=%zu merged=%llu groups=%llu folded=%llu "
          "states_eliminated=%llu prefilter_safe=%s\n",
          ir->preds.size(), static_cast<unsigned long long>(s.queries_merged),
          static_cast<unsigned long long>(s.merge_groups),
          static_cast<unsigned long long>(s.preds_folded),
          static_cast<unsigned long long>(s.states_eliminated),
          s.prefilter_safe ? "true" : "false");
      uint64_t skips = 0;
      for (size_t k = 0; k < multi.num_engines(); ++k) {
        skips += multi.physical_engine(k).shared_skips();
      }
      std::printf("opt: engine_skips=%llu events_prefiltered=%llu\n",
                  static_cast<unsigned long long>(skips),
                  static_cast<unsigned long long>(
                      multi.events_prefiltered()));
    }
    if (csv_stats.quarantined > 0) {
      std::printf("csv: %llu/%llu records quarantined (last: %s)\n",
                  static_cast<unsigned long long>(csv_stats.quarantined),
                  static_cast<unsigned long long>(csv_stats.lines_read),
                  csv_stats.last_error.c_str());
    }
    if (faults != nullptr) {
      std::printf("faults: %s\n", faults->stats().ToString().c_str());
    }
  }
  if (args.Has("metrics-out")) {
    const std::string path = args.Get("metrics-out");
    obs::Registry metrics_registry;
    multi.ExportMetrics(&metrics_registry);
    CEP_RETURN_NOT_OK(WriteTextFile(
        path, EndsWith(path, ".prom") ? metrics_registry.ToPrometheusText()
                                      : metrics_registry.ToJson()));
  }
  if (args.Has("trace-out")) {
    CEP_RETURN_NOT_OK(WriteTextFile(args.Get("trace-out"), tracer.ToJson()));
  }
  if (args.Has("audit-out")) {
    CEP_RETURN_NOT_OK(
        WriteTextFile(args.Get("audit-out"), audit_log.ToJsonl()));
  }
  return Status::OK();
}

Status RunCommand(const Args& args) {
  if (args.Has("queries")) return RunMultiCommand(args);
  SchemaRegistry registry;
  CEP_RETURN_NOT_OK(LoadSchema(args.Get("schema"), &registry));
  CEP_ASSIGN_OR_RETURN(NfaPtr nfa, CompileQuery(args.Get("query"), registry));

  const bool resilience = args.Has("resilience");
  CsvReadOptions csv_options;
  CsvReadStats csv_stats;
  if (resilience || args.Has("error-budget")) {
    csv_options.max_consecutive_errors =
        static_cast<size_t>(args.GetInt("error-budget", 64));
  }
  CEP_ASSIGN_OR_RETURN(std::vector<EventPtr> events,
                       ReadEventsCsvFile(registry, args.Get("input"),
                                         csv_options, &csv_stats));

  EngineOptions options;
  options.latency_threshold_micros = args.GetDouble("theta", 0.0);
  options.shed_amount.fraction = args.GetDouble("fraction", 0.2);
  options.max_runs = static_cast<size_t>(args.GetInt("max-runs", 0));
  options.collect_matches = false;
  // Parallel evaluation core: shard runs across a worker pool. Results are
  // bit-identical to --threads 1 for any thread count (see
  // docs/PARALLELISM.md).
  options.parallel.threads = static_cast<size_t>(args.GetInt("threads", 0));
  if (resilience) {
    options.degradation.enabled = true;
    options.degradation.run_bytes_budget =
        static_cast<size_t>(args.GetInt("run-bytes-budget", 0));
    options.error_budget.enabled = true;
    options.error_budget.max_consecutive_errors =
        static_cast<size_t>(args.GetInt("error-budget", 64));
  }
  options.checkpoint.directory = args.Get("checkpoint-dir");
  options.checkpoint.interval_events = static_cast<size_t>(
      args.GetInt("checkpoint-interval-events", 10000));
  options.checkpoint.keep =
      static_cast<size_t>(args.GetInt("checkpoint-keep", 3));
  options.checkpoint.synchronous = args.Has("checkpoint-sync");
  options.checkpoint.restore_from = args.Get("restore-from");
  options.checkpoint.fault_injection_active =
      args.Has("fault-drop") || args.Has("fault-dup") ||
      args.Has("fault-delay") || args.Has("fault-corrupt");
  // Matches are engine state when checkpointing: a resumed run must re-emit
  // exactly the matches the interrupted run produced, so they are collected
  // in the engine (and snapshotted) and written once at the end instead of
  // streamed through the callback.
  const bool ckpt_active = options.checkpoint.enabled() ||
                           !options.checkpoint.restore_from.empty();
  if (ckpt_active) options.collect_matches = true;
  // Shedding-quality observability: shadow recall oracle, calibration
  // monitor, θ SLO burn rates (docs/OBSERVABILITY.md).
  options.quality.shadow.sample_every =
      static_cast<size_t>(args.GetInt("shadow-sample", 0));
  options.quality.shadow.span_width = args.GetInt("shadow-width", 0);
  if (args.Has("shadow-seed")) {
    options.quality.shadow.seed =
        static_cast<uint64_t>(args.GetInt("shadow-seed", 0));
  }
  if (args.Has("calibration")) options.quality.calibration.enabled = true;
  if (args.Has("slo-budget")) {
    options.quality.slo.enabled = true;
    options.quality.slo.budget_fraction = args.GetDouble("slo-budget", 0.01);
  }
  CEP_ASSIGN_OR_RETURN(options, options.Validated());
  CEP_ASSIGN_OR_RETURN(ShedderPtr shedder, MakeShedder(args, registry));

  Engine engine(nfa, options, std::move(shedder));
  // Observability sinks. Exports use the engine's virtual busy clock (the
  // default latency mode), so for a fixed input and seed they are
  // byte-identical across --threads settings.
  obs::ShedAuditLog audit_log;
  if (args.Has("audit-out")) engine.AttachAuditLog(&audit_log);
  obs::Tracer tracer;
  if (args.Has("trace-out")) engine.AttachTracer(&tracer);
  std::ofstream matches_file;
  const bool to_file = args.Has("matches");
  if (to_file) {
    matches_file.open(args.Get("matches"));
    if (!matches_file) {
      return Status::IoError("cannot open --matches file for writing");
    }
  }
  uint64_t printed = 0;
  auto emit_match = [&](const Match& match) {
    if (to_file) {
      if (match.complex_event != nullptr) {
        matches_file << EventToCsvLine(*match.complex_event) << "\n";
      } else {
        matches_file << match.ToString(engine.nfa().query()) << "\n";
      }
    } else if (printed < 20) {
      if (match.complex_event != nullptr) {
        std::printf("%s\n", match.complex_event->ToString().c_str());
      } else {
        std::printf("%s\n",
                    match.ToString(engine.nfa().query()).c_str());
      }
      ++printed;
      if (printed == 20) std::printf("... (use --matches FILE for all)\n");
    }
  };
  if (!ckpt_active) engine.SetMatchCallback(emit_match);
  // Resume: load the snapshot (newest valid one when given a directory) and
  // skip the events it already consumed, so the remainder of the stream
  // replays exactly as the uninterrupted run would have processed it.
  const size_t total_events = events.size();
  if (!options.checkpoint.restore_from.empty()) {
    CEP_RETURN_NOT_OK(
        engine.RestoreFromFile(options.checkpoint.restore_from));
    const uint64_t skip = engine.stream_offset();
    if (skip > events.size()) {
      return Status::InvalidArgument(StrFormat(
          "snapshot was taken at event %llu but the input has only %zu "
          "events: wrong input file?",
          static_cast<unsigned long long>(skip), events.size()));
    }
    events.erase(events.begin(),
                 events.begin() + static_cast<ptrdiff_t>(skip));
  }
  // Optional fault injection between the materialised input and the engine
  // (deterministic storms for resilience experiments).
  auto stream = std::make_unique<VectorEventStream>(events);
  std::unique_ptr<EventStream> source = std::move(stream);
  FaultInjectingStream* faults = nullptr;
  if (args.Has("fault-drop") || args.Has("fault-dup") ||
      args.Has("fault-delay") || args.Has("fault-corrupt")) {
    FaultInjectionOptions fault_options;
    fault_options.drop_probability = args.GetDouble("fault-drop", 0.0);
    fault_options.duplicate_probability = args.GetDouble("fault-dup", 0.0);
    fault_options.delay_probability = args.GetDouble("fault-delay", 0.0);
    fault_options.corrupt_probability = args.GetDouble("fault-corrupt", 0.0);
    fault_options.seed = static_cast<uint64_t>(args.GetInt("fault-seed", 7));
    auto injector = std::make_unique<FaultInjectingStream>(std::move(source),
                                                           fault_options);
    faults = injector.get();
    source = std::move(injector);
  }

  const size_t batch_size =
      static_cast<size_t>(args.GetInt("batch-size", 1));
  const uint64_t stats_interval =
      static_cast<uint64_t>(args.GetInt("stats-interval-events", 0));
  InstallInterruptHandlers();
  uint64_t offered = 0;
  bool interrupted = false;
  if (batch_size <= 1 || stats_interval > 0) {
    // Event-at-a-time loop (also used for periodic stats snapshots, which
    // go to stderr so stdout stays parseable).
    while (EventPtr event = source->Next()) {
      if (g_interrupted) {
        interrupted = true;
        break;
      }
      CEP_RETURN_NOT_OK(engine.OfferEvent(event));
      ++offered;
      if (stats_interval > 0 && offered % stats_interval == 0) {
        std::fprintf(stderr, "stats[%llu] %s\n",
                     static_cast<unsigned long long>(offered),
                     engine.metrics().ToString().c_str());
      }
    }
  } else {
    std::vector<EventPtr> batch;
    batch.reserve(batch_size);
    for (;;) {
      if (g_interrupted) {
        interrupted = true;
        break;
      }
      batch.clear();
      while (batch.size() < batch_size) {
        EventPtr event = source->Next();
        if (event == nullptr) break;
        batch.push_back(std::move(event));
      }
      if (batch.empty()) break;
      offered += batch.size();
      CEP_RETURN_NOT_OK(engine.ProcessBatch(batch));
    }
  }
  // Surface background-writer errors and make the final snapshot durable
  // before reporting success. An interrupted run drains without
  // Engine::Flush(): deferred final states stay parked so the resumed run
  // emits them exactly once.
  if (interrupted) {
    std::fprintf(stderr,
                 "interrupted after %llu events: writing final snapshot "
                 "and exports\n",
                 static_cast<unsigned long long>(offered));
    CEP_RETURN_NOT_OK(service::DrainEngine(engine, /*flush_runs=*/false));
  } else {
    CEP_RETURN_NOT_OK(engine.FlushCheckpoints());
  }
  if (ckpt_active) {
    for (const Match& match : engine.matches()) emit_match(match);
  }
  // Close a still-open shadow span so end-of-stream matches are scored
  // before the quality/metrics exports are written.
  engine.FinishShadowSpan();
  if (args.Has("quality-out")) {
    CEP_RETURN_NOT_OK(WriteTextFile(args.Get("quality-out"),
                                    engine.ExportQualityJson() + "\n"));
  }
  if (args.Has("metrics-out")) {
    const std::string path = args.Get("metrics-out");
    obs::Registry metrics_registry;
    engine.ExportMetrics(&metrics_registry);
    CEP_RETURN_NOT_OK(WriteTextFile(
        path, EndsWith(path, ".prom") ? metrics_registry.ToPrometheusText()
                                      : metrics_registry.ToJson()));
  }
  if (args.Has("trace-out")) {
    CEP_RETURN_NOT_OK(WriteTextFile(args.Get("trace-out"), tracer.ToJson()));
  }
  if (args.Has("audit-out")) {
    CEP_RETURN_NOT_OK(
        WriteTextFile(args.Get("audit-out"), audit_log.ToJsonl()));
  }
  std::printf("%llu matches over %zu events\n",
              static_cast<unsigned long long>(
                  engine.metrics().matches_emitted),
              total_events);
  if (args.Has("stats")) {
    std::printf("%s\n", engine.metrics().ToString().c_str());
    if (options.checkpoint.enabled()) {
      std::printf("checkpoints: %llu written to %s\n",
                  static_cast<unsigned long long>(
                      engine.checkpoints_written()),
                  options.checkpoint.directory.c_str());
    }
    if (csv_stats.quarantined > 0) {
      std::printf("csv: %llu/%llu records quarantined (last: %s)\n",
                  static_cast<unsigned long long>(csv_stats.quarantined),
                  static_cast<unsigned long long>(csv_stats.lines_read),
                  csv_stats.last_error.c_str());
    }
    if (faults != nullptr) {
      std::printf("faults: %s\n", faults->stats().ToString().c_str());
    }
    if (engine.degradation() != nullptr) {
      std::printf("degradation: %s\n",
                  engine.degradation()->ToString().c_str());
    }
    if (options.quality.any_enabled()) {
      std::printf("quality: %s\n", engine.ExportQualityJson().c_str());
    }
  }
  return Status::OK();
}

Status GenerateCommand(const Args& args) {
  const std::string workload = args.Get("workload", "cluster");
  const auto hours = args.GetInt("duration-hours", 6);
  const auto seed = static_cast<uint64_t>(args.GetInt("seed", 42));
  const double scale = args.GetDouble("scale", 1.0);
  SchemaRegistry registry;
  std::vector<EventPtr> events;
  if (workload == "cluster") {
    CEP_RETURN_NOT_OK(GoogleTraceGenerator::RegisterSchemas(&registry));
    GoogleTraceOptions options;
    options.duration = hours * kHour;
    options.jobs_per_hour = 150.0 * scale;
    options.seed = seed;
    CEP_ASSIGN_OR_RETURN(events,
                         GoogleTraceGenerator(options).Generate(registry));
  } else if (workload == "bike") {
    CEP_RETURN_NOT_OK(BikeShareGenerator::RegisterSchemas(&registry));
    BikeShareOptions options;
    options.duration = hours * kHour;
    options.num_zones = 200;
    options.requests_per_minute = 2.0 * scale;
    options.seed = seed;
    CEP_ASSIGN_OR_RETURN(events,
                         BikeShareGenerator(options).Generate(registry));
  } else if (workload == "stock") {
    CEP_RETURN_NOT_OK(StockGenerator::RegisterSchemas(&registry));
    StockOptions options;
    options.duration = hours * kHour;
    options.ticks_per_second = 12.0 * scale;
    options.seed = seed;
    CEP_ASSIGN_OR_RETURN(events, StockGenerator(options).Generate(registry));
  } else {
    return Status::InvalidArgument("unknown workload '" + workload + "'");
  }
  CEP_RETURN_NOT_OK(WriteEventsCsvFile(args.Get("out"), events));
  std::printf("wrote %zu events to %s\n", events.size(),
              args.Get("out").c_str());
  return Status::OK();
}

Status ExplainCommand(const Args& args) {
  SchemaRegistry registry;
  CEP_RETURN_NOT_OK(LoadSchema(args.Get("schema"), &registry));
  CEP_ASSIGN_OR_RETURN(NfaPtr nfa, CompileQuery(args.Get("query"), registry));
  std::printf("%s\n%s", nfa->query().ToString().c_str(),
              nfa->ToString().c_str());
  if (args.Has("dot")) {
    std::ofstream dot(args.Get("dot"));
    if (!dot) return Status::IoError("cannot open --dot file");
    dot << NfaToDot(*nfa);
    std::printf("wrote %s\n", args.Get("dot").c_str());
  }
  return Status::OK();
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const Args args(argc, argv);
  Status status;
  if (std::strcmp(argv[1], "run") == 0) {
    status = RunCommand(args);
  } else if (std::strcmp(argv[1], "generate") == 0) {
    status = GenerateCommand(args);
  } else if (std::strcmp(argv[1], "explain") == 0) {
    status = ExplainCommand(args);
  } else {
    return Usage();
  }
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace cep

int main(int argc, char** argv) { return cep::Main(argc, argv); }
