// cepshed_server — the long-lived multi-tenant CEP daemon (docs/SERVICE.md).
//
//   cepshed_server --socket /run/cepshed.sock --root /var/lib/cepshed
//                  --run-bytes-budget 268435456
//
// Clients speak the line/frame protocol over the Unix socket (or loopback
// TCP with --port): `!hello <tenant>` binds a tenant session, `!schema` and
// `!query` define work, and every other line is an event CSV record. An
// HTTP `GET /metrics` on the same socket returns Prometheus text.
//
// SIGTERM/SIGINT drain gracefully: queued events are processed, every
// tenant flushes, writes a final snapshot, and exports its artifacts into
// --out-dir. SIGKILL (or a crash) is recovered on the next start from the
// per-tenant WAL + snapshots — exactly-once, byte-identical to an
// uninterrupted run.

#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "service/server.h"

namespace {

int g_stop_fd = -1;

void HandleSignal(int) {
  if (g_stop_fd >= 0) {
    const char byte = 's';
    [[maybe_unused]] const ssize_t n = ::write(g_stop_fd, &byte, 1);
  }
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: cepshed_server --root <dir> (--socket <path> | --port <p>)\n"
      "       [--out-dir <dir>] [--run-bytes-budget <bytes>]\n"
      "       [--admission-ratio <0..1>] [--default-weight <0..1>]\n"
      "       [--default-theta <micros>] [--queue-events <n>]\n"
      "       [--pump-quantum <n>] [--checkpoint-interval-events <n>]\n"
      "       [--checkpoint-keep <n>] [--wal-sync] [--idle-timeout-ms <ms>]\n"
      "       [--max-message-bytes <n>] [--protocol-error-budget <n>]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  cep::service::ServerOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--socket") {
      options.socket_path = next();
    } else if (arg == "--port") {
      options.tcp_port = std::atoi(next());
    } else if (arg == "--root") {
      options.root = next();
    } else if (arg == "--out-dir") {
      options.out_dir = next();
    } else if (arg == "--run-bytes-budget") {
      options.run_bytes_budget =
          static_cast<size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--admission-ratio") {
      options.admission_ratio = std::atof(next());
    } else if (arg == "--default-weight") {
      options.default_weight = std::atof(next());
    } else if (arg == "--default-theta") {
      options.default_theta = std::atof(next());
    } else if (arg == "--queue-events") {
      options.queue_events =
          static_cast<size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--pump-quantum") {
      options.pump_quantum =
          static_cast<size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--checkpoint-interval-events") {
      options.checkpoint_interval_events =
          static_cast<size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--checkpoint-keep") {
      options.ckpt_keep =
          static_cast<size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--wal-sync") {
      options.wal_sync = true;
    } else if (arg == "--idle-timeout-ms") {
      options.idle_timeout_ms = std::atoi(next());
    } else if (arg == "--max-message-bytes") {
      options.max_message_bytes =
          static_cast<size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--protocol-error-budget") {
      options.protocol_error_budget =
          static_cast<size_t>(std::strtoull(next(), nullptr, 10));
    } else {
      return Usage();
    }
  }
  auto server = cep::service::Server::Create(std::move(options));
  if (!server.ok()) {
    std::fprintf(stderr, "cepshed_server: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  g_stop_fd = server.ValueOrDie()->stop_write_fd();
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = HandleSignal;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);
  std::fprintf(stderr, "cepshed_server: serving (%zu tenants recovered)\n",
               server.ValueOrDie()->num_tenants());
  const cep::Status status = server.ValueOrDie()->Run();
  if (!status.ok()) {
    std::fprintf(stderr, "cepshed_server: drain failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "cepshed_server: drained cleanly\n");
  return 0;
}
