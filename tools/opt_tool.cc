// Multi-query optimizer inspector (docs/OPTIMIZER.md).
//
//   opt_tool --schema bike --queries qs.txt            # optimized IR dump
//   opt_tool --schema bike --queries qs.txt --dumps    # per-pass before/after
//   opt_tool --schema bike --queries qs.txt --dot out.dot
//
// Parses one query per line from --queries (blank lines and # comments are
// skipped), compiles each to an NFA, runs the optimizer pass pipeline over
// the set exactly as MultiEngine::Optimize would (default engine options, no
// shedders), and prints the resulting IR as deterministic text — the same
// rendering the PassManager captures per pass — so its output can be diffed
// against golden files (tools/check.sh opt_check). Pass flags --no-dse,
// --no-cse, --no-merge, --no-pushdown disable individual passes.

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "engine/options.h"
#include "event/schema.h"
#include "nfa/compiler.h"
#include "opt/fingerprint.h"
#include "opt/ir.h"
#include "opt/pass_manager.h"
#include "query/analyzer.h"
#include "query/parser.h"
#include "workload/bikeshare.h"
#include "workload/google_trace.h"
#include "workload/stock.h"

namespace cep {
namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --schema <file|cluster|bike|stock> --queries <file>"
               " [--no-dse] [--no-cse] [--no-merge] [--no-pushdown]"
               " [--dumps] [--dot <out.dot>]\n",
               argv0);
  return 2;
}

Result<ValueType> ParseValueType(const std::string& name) {
  if (name == "int") return ValueType::kInt;
  if (name == "double") return ValueType::kDouble;
  if (name == "string") return ValueType::kString;
  if (name == "bool") return ValueType::kBool;
  return Status::ParseError("unknown attribute type '" + name + "'");
}

// Mirrors cepshed_cli's schema loading: a named generator schema or a file
// with one `type attr:type...` line per event type.
Status LoadSchema(const std::string& arg, SchemaRegistry* registry) {
  if (arg == "cluster") return GoogleTraceGenerator::RegisterSchemas(registry);
  if (arg == "bike") return BikeShareGenerator::RegisterSchemas(registry);
  if (arg == "stock") return StockGenerator::RegisterSchemas(registry);
  std::ifstream file(arg);
  if (!file) return Status::IoError("cannot open schema file: " + arg);
  std::string line;
  size_t line_no = 0;
  while (std::getline(file, line)) {
    ++line_no;
    const std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    std::istringstream fields{std::string(stripped)};
    std::string type_name;
    fields >> type_name;
    std::vector<AttributeDef> attrs;
    std::string attr_spec;
    while (fields >> attr_spec) {
      const size_t colon = attr_spec.find(':');
      if (colon == std::string::npos) {
        return Status::ParseError(StrFormat(
            "schema line %zu: expected attr:type, got '%s'", line_no,
            attr_spec.c_str()));
      }
      CEP_ASSIGN_OR_RETURN(ValueType vt,
                           ParseValueType(attr_spec.substr(colon + 1)));
      attrs.push_back(AttributeDef{attr_spec.substr(0, colon), vt});
    }
    CEP_RETURN_NOT_OK(registry->Register(type_name, std::move(attrs)).status());
  }
  return Status::OK();
}

/// Deterministic Graphviz rendering of every leader automaton. Shared
/// predicate annotations use the interned `#id`, so two queries whose edges
/// share a predicate render the same label.
std::string DumpDot(const opt::MultiQueryIr& ir) {
  std::string out = "digraph opt {\n  rankdir=LR;\n";
  for (const opt::QueryUnit& unit : ir.units) {
    if (unit.leader != unit.query_index) continue;
    out += StrFormat("  subgraph cluster_q%zu {\n    label=\"q%zu %s\";\n",
                     unit.query_index, unit.query_index, unit.name.c_str());
    for (const State& state : unit.nfa->states()) {
      out += StrFormat("    q%zu_s%d [label=\"s%d\"%s];\n", unit.query_index,
                       state.id, state.id,
                       state.is_final ? " shape=doublecircle" : "");
      for (const Edge& edge : state.edges) {
        std::string label = StrFormat("%s t%d", EdgeKindName(edge.kind),
                                      static_cast<int>(edge.event_type));
        for (size_t j = 0; j < edge.predicates.size(); ++j) {
          const int32_t shared = j < edge.shared_pred_ids.size()
                                     ? edge.shared_pred_ids[j]
                                     : -1;
          label += shared >= 0 ? StrFormat("\\n#%d", shared) : "\\n[local]";
        }
        const int target = edge.target >= 0 ? edge.target : state.id;
        out += StrFormat("    q%zu_s%d -> q%zu_s%d [label=\"%s\"%s];\n",
                         unit.query_index, state.id, unit.query_index, target,
                         label.c_str(),
                         edge.kind == EdgeKind::kKill ? " style=dashed" : "");
      }
    }
    out += "  }\n";
  }
  out += "}\n";
  return out;
}

Status RunTool(const std::map<std::string, std::string>& args) {
  const auto get = [&args](const char* key) -> const std::string* {
    const auto it = args.find(key);
    return it == args.end() ? nullptr : &it->second;
  };
  const std::string* schema_arg = get("schema");
  const std::string* queries_arg = get("queries");
  if (schema_arg == nullptr || queries_arg == nullptr) {
    return Status::InvalidArgument("--schema and --queries are required");
  }
  SchemaRegistry registry;
  CEP_RETURN_NOT_OK(LoadSchema(*schema_arg, &registry));

  std::ifstream file(*queries_arg);
  if (!file) {
    return Status::IoError("cannot open query file: " + *queries_arg);
  }
  opt::MultiQueryIr ir;
  const uint64_t default_fingerprint =
      opt::FingerprintEngineOptions(EngineOptions{});
  std::string line;
  size_t line_no = 0;
  while (std::getline(file, line)) {
    ++line_no;
    const std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    auto parsed = ParseQuery(std::string(stripped));
    CEP_RETURN_NOT_OK(parsed.status().WithContext(
        StrFormat("query line %zu", line_no)));
    auto analyzed = Analyze(parsed.MoveValueUnsafe(), registry);
    CEP_RETURN_NOT_OK(analyzed.status().WithContext(
        StrFormat("query line %zu", line_no)));
    auto nfa = CompileToNfa(analyzed.MoveValueUnsafe());
    CEP_RETURN_NOT_OK(nfa.status().WithContext(
        StrFormat("query line %zu", line_no)));
    opt::QueryUnit unit;
    unit.query_index = ir.units.size();
    unit.leader = unit.query_index;
    unit.nfa = nfa.MoveValueUnsafe();
    // Same naming fallback as MultiEngine::AddQuery.
    unit.name = unit.nfa->query().name;
    if (unit.name.empty()) unit.name = unit.nfa->query().return_spec.event_name;
    unit.config_fingerprint = default_fingerprint;
    unit.mergeable = get("no-merge") == nullptr;
    ir.units.push_back(std::move(unit));
  }
  if (ir.units.empty()) {
    return Status::InvalidArgument("query file holds no queries");
  }

  opt::OptOptions options;
  options.dse = get("no-dse") == nullptr;
  options.cse = get("no-cse") == nullptr;
  options.merge = get("no-merge") == nullptr;
  options.pushdown = get("no-pushdown") == nullptr;
  options.dump_ir = get("dumps") != nullptr;
  opt::PassManager pipeline = opt::MakeDefaultPipeline(options);
  std::vector<opt::PassDump> dumps;
  CEP_RETURN_NOT_OK(pipeline.Run(&ir, options.dump_ir, &dumps));

  for (const opt::PassDump& dump : dumps) {
    std::printf("==== before pass '%s' ====\n%s", dump.pass.c_str(),
                dump.before.c_str());
    std::printf("==== after pass '%s' ====\n%s", dump.pass.c_str(),
                dump.after.c_str());
  }
  std::printf("==== optimized ====\n%s", ir.Dump().c_str());

  if (const std::string* dot_path = get("dot")) {
    std::ofstream dot(*dot_path);
    if (!dot) return Status::IoError("cannot open " + *dot_path);
    dot << DumpDot(ir);
    if (!dot.good()) return Status::IoError("write to " + *dot_path + " failed");
  }
  return Status::OK();
}

}  // namespace
}  // namespace cep

int main(int argc, char** argv) {
  std::map<std::string, std::string> args;
  for (int i = 1; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) return cep::Usage(argv[0]);
    key = key.substr(2);
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      args[key] = argv[++i];
    } else {
      args[key] = "";
    }
  }
  if (args.empty() || args.count("help") > 0) return cep::Usage(argv[0]);
  const cep::Status status = cep::RunTool(args);
  if (!status.ok()) {
    std::fprintf(stderr, "opt_tool: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
