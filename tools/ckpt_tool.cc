// Checkpoint snapshot inspector.
//
//   ckpt_tool inspect <file>         header, sections, sizes, digests
//   ckpt_tool verify  <file|dir>     full validation; exit 0 iff valid
//   ckpt_tool diff    <file> <file>  compare snapshots by component digest
//
// `verify` on a directory validates the newest recoverable snapshot, i.e.
// exactly what a restart would load. Exit codes: 0 ok, 1 invalid/differs,
// 2 usage error.

#include <sys/stat.h>

#include <cstdio>
#include <map>
#include <string>
#include <string_view>

#include "ckpt/manager.h"
#include "ckpt/snapshot.h"
#include "common/result.h"
#include "common/status.h"

namespace cep {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: ckpt_tool inspect <file>\n"
               "       ckpt_tool verify  <file|dir>\n"
               "       ckpt_tool diff    <file-a> <file-b>\n");
  return 2;
}

Result<ckpt::SnapshotView> LoadSnapshot(const std::string& path,
                                        std::string* bytes) {
  CEP_ASSIGN_OR_RETURN(*bytes, ckpt::ReadFileBytes(path));
  return ckpt::ParseSnapshot(*bytes);
}

int Inspect(const std::string& path) {
  std::string bytes;
  Result<ckpt::SnapshotView> view = LoadSnapshot(path, &bytes);
  if (!view.ok()) {
    std::fprintf(stderr, "ckpt_tool: %s: %s\n", path.c_str(),
                 view.status().ToString().c_str());
    return 1;
  }
  const ckpt::SnapshotView& snapshot = view.ValueOrDie();
  std::printf("file:          %s\n", path.c_str());
  std::printf("size:          %zu bytes\n", bytes.size());
  std::printf("version:       %u\n", snapshot.version);
  std::printf("stream offset: %llu\n",
              static_cast<unsigned long long>(snapshot.stream_offset));
  std::printf("sections:      %zu\n", snapshot.sections.size());
  for (const ckpt::SnapshotSection& section : snapshot.sections) {
    std::printf("  %-24s %10zu bytes  digest %016llx\n",
                section.name.c_str(), section.payload.size(),
                static_cast<unsigned long long>(section.digest));
  }
  return 0;
}

int Verify(const std::string& path) {
  std::string file = path;
  struct stat file_stat;
  if (::stat(path.c_str(), &file_stat) == 0 && S_ISDIR(file_stat.st_mode)) {
    Result<std::string> latest = ckpt::CheckpointManager::FindLatest(path);
    if (!latest.ok()) {
      std::fprintf(stderr, "ckpt_tool: %s\n",
                   latest.status().ToString().c_str());
      return 1;
    }
    file = latest.ValueOrDie();
  }
  std::string bytes;
  Result<ckpt::SnapshotView> view = LoadSnapshot(file, &bytes);
  if (!view.ok()) {
    std::fprintf(stderr, "ckpt_tool: %s: %s\n", file.c_str(),
                 view.status().ToString().c_str());
    return 1;
  }
  std::printf("%s: valid (offset %llu, %zu sections)\n", file.c_str(),
              static_cast<unsigned long long>(
                  view.ValueOrDie().stream_offset),
              view.ValueOrDie().sections.size());
  return 0;
}

int Diff(const std::string& path_a, const std::string& path_b) {
  std::string bytes_a, bytes_b;
  Result<ckpt::SnapshotView> a = LoadSnapshot(path_a, &bytes_a);
  Result<ckpt::SnapshotView> b = LoadSnapshot(path_b, &bytes_b);
  if (!a.ok() || !b.ok()) {
    if (!a.ok()) {
      std::fprintf(stderr, "ckpt_tool: %s: %s\n", path_a.c_str(),
                   a.status().ToString().c_str());
    }
    if (!b.ok()) {
      std::fprintf(stderr, "ckpt_tool: %s: %s\n", path_b.c_str(),
                   b.status().ToString().c_str());
    }
    return 1;
  }
  const ckpt::SnapshotView& va = a.ValueOrDie();
  const ckpt::SnapshotView& vb = b.ValueOrDie();
  int differences = 0;
  if (va.stream_offset != vb.stream_offset) {
    std::printf("stream offset: %llu vs %llu\n",
                static_cast<unsigned long long>(va.stream_offset),
                static_cast<unsigned long long>(vb.stream_offset));
    ++differences;
  }
  // One pass over the union of section names, in sorted order.
  std::map<std::string, const ckpt::SnapshotSection*> in_a, in_b;
  for (const auto& s : va.sections) in_a[s.name] = &s;
  for (const auto& s : vb.sections) in_b[s.name] = &s;
  std::map<std::string, int> names;
  for (const auto& [name, unused] : in_a) names[name] = 0;
  for (const auto& [name, unused] : in_b) names[name] = 0;
  for (const auto& [name, unused] : names) {
    const auto it_a = in_a.find(name);
    const auto it_b = in_b.find(name);
    if (it_a == in_a.end()) {
      std::printf("%-24s only in %s\n", name.c_str(), path_b.c_str());
      ++differences;
    } else if (it_b == in_b.end()) {
      std::printf("%-24s only in %s\n", name.c_str(), path_a.c_str());
      ++differences;
    } else if (it_a->second->digest != it_b->second->digest) {
      std::printf("%-24s differs (digest %016llx vs %016llx)\n", name.c_str(),
                  static_cast<unsigned long long>(it_a->second->digest),
                  static_cast<unsigned long long>(it_b->second->digest));
      ++differences;
    }
  }
  if (differences == 0) {
    std::printf("snapshots are identical (%zu sections)\n",
                va.sections.size());
    return 0;
  }
  return 1;
}

int Main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string_view command = argv[1];
  if (command == "inspect" && argc == 3) return Inspect(argv[2]);
  if (command == "verify" && argc == 3) return Verify(argv[2]);
  if (command == "diff" && argc == 4) return Diff(argv[2], argv[3]);
  return Usage();
}

}  // namespace
}  // namespace cep

int main(int argc, char** argv) { return cep::Main(argc, argv); }
