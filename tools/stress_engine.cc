// Deterministic differential stress driver (docs/FUZZING.md).
//
// Generates seeded random (query x stream x shedder x threads/shards x
// checkpoint-interval) configurations and cross-checks, per configuration:
//
//  1. Oracle equality   — with shedding off, small stream, and
//                         skip-till-any-match, the engine's match
//                         fingerprints equal the brute-force oracle's
//                         (tests/oracle.cc, exhaustive recursion; no NFA).
//  2. Thread determinism — matches, metrics, audit JSONL, and the final
//                         snapshot bytes are identical between the serial
//                         engine and a multi-thread/multi-shard engine.
//  3. Checkpoint resume — serializing mid-stream, restoring into a fresh
//                         engine, and replaying the tail yields the same
//                         final snapshot bytes and matches as the
//                         uninterrupted run.
//  4. Run conservation  — Engine::VerifyInvariants holds at every merge
//                         barrier, and the same ledger recomputed from the
//                         observability registry export balances; audit-log
//                         victims are a subset of shed-callback victims and
//                         total_appended == runs_shed.
//
// Everything is derived from --seed via split Rng streams (kVirtualCost
// latency, seeded shedders), so failures reproduce exactly:
//   stress_engine --configs 1000 --seed 7
// Exit code 0 means every configuration passed all oracles.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/hash.h"
#include "common/rng.h"
#include "oracle.h"
#include "engine/engine.h"
#include "engine/multi.h"
#include "event/csv.h"
#include "event/event.h"
#include "event/schema.h"
#include "nfa/compiler.h"
#include "obs/audit.h"
#include "obs/metrics.h"
#include "query/analyzer.h"
#include "query/parser.h"
#include "service/client.h"
#include "service/server.h"
#include "service/tenant.h"
#include "shedding/registry.h"

namespace cep {
namespace {

// The oracle-backed query panel from tests/oracle_property_test.cc, plus a
// giant-WITHIN entry (index 9) that drives TimeSlicer into the range where
// (age * num_slices) used to overflow int64.
constexpr const char* kQueries[] = {
    "PATTERN SEQ(req a, unlock c) WHERE c.uid = a.uid WITHIN 5 min",
    "PATTERN SEQ(req a, avail m, unlock c) "
    "WHERE m.loc >= a.loc, diff(c.loc, a.loc) < 20 WITHIN 5 min",
    "PATTERN SEQ(req a, avail+ b[], unlock c) "
    "WHERE diff(b[i].loc, a.loc) < 10, COUNT(b[]) > 1, c.uid = a.uid "
    "WITHIN 5 min",
    "PATTERN SEQ(req a, avail+ b[], unlock c) "
    "WHERE b[i].loc > b[i-1].loc, b[first].loc >= a.loc WITHIN 5 min",
    "PATTERN SEQ(req a, NOT avail x, unlock c) "
    "WHERE x.loc = a.loc, c.uid = a.uid WITHIN 5 min",
    "PATTERN SEQ(req a, avail+ b[]) "
    "WHERE diff(b[i].loc, a.loc) < 10, COUNT(b[]) > 1 WITHIN 5 min",
    "PATTERN SEQ(req a, NOT unlock x, avail m) "
    "WHERE x.uid = a.uid WITHIN 5 min",
    "PATTERN SEQ(req a, avail m, NOT unlock x) "
    "WHERE x.uid = a.uid, m.loc = a.loc WITHIN 5 min",
    "PATTERN SEQ(req a, avail+ b[], unlock c) "
    "WHERE diff(b[i].loc, a.loc) < 10, SUM(b[].loc) > 30, c.uid = a.uid "
    "WITHIN 5 min",
    "PATTERN SEQ(req a, avail+ b[], unlock c) "
    "WHERE diff(b[i].loc, a.loc) < 10, c.uid = a.uid WITHIN 2000000 hours",
};
constexpr int kNumQueries = static_cast<int>(std::size(kQueries));

/// One generated configuration; every field is a pure function of the
/// config ordinal and the global seed. The shedder axis iterates every
/// strategy the ShedderRegistry knows, so a newly registered strategy is
/// swept differentially without touching this driver.
struct StressConfig {
  uint64_t ordinal = 0;
  uint64_t stream_seed = 0;
  int query = 0;
  int num_events = 0;
  SelectionStrategy selection = SelectionStrategy::kSkipTillAnyMatch;
  std::string shedder = "none";
  size_t max_runs = 0;      ///< deterministic shed trigger (0 = off)
  size_t threads = 2;       ///< parallel engine's lanes
  size_t shards = 0;        ///< 0 = one per lane
  size_t batch = 1;
  size_t arena_block = 0;
  size_t checkpoint_at = 0; ///< event index for the mid-stream snapshot
  bool giant_timestamps = false;  ///< spread events over huge spans

  std::string ToString() const {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "config #%llu: query=%d events=%d selection=%d shedder=%s "
                  "max_runs=%zu threads=%zu shards=%zu batch=%zu arena=%zu "
                  "ckpt@%zu giant_ts=%d stream_seed=%llu",
                  static_cast<unsigned long long>(ordinal), query, num_events,
                  static_cast<int>(selection), shedder.c_str(),
                  max_runs, threads, shards, batch, arena_block, checkpoint_at,
                  giant_timestamps ? 1 : 0,
                  static_cast<unsigned long long>(stream_seed));
    return buf;
  }
};

/// req(loc, uid), avail(loc, bid), unlock(loc, uid, bid) — the paper's
/// bike-share schema, mirrored from tests/test_util.h without gtest.
class Fixture {
 public:
  Fixture() {
    req_ = registry_.Register("req", {{"loc", ValueType::kInt},
                                      {"uid", ValueType::kInt}})
               .ValueOrDie();
    avail_ = registry_.Register("avail", {{"loc", ValueType::kInt},
                                          {"bid", ValueType::kInt}})
                 .ValueOrDie();
    unlock_ = registry_.Register("unlock", {{"loc", ValueType::kInt},
                                            {"uid", ValueType::kInt},
                                            {"bid", ValueType::kInt}})
                  .ValueOrDie();
  }

  const SchemaRegistry& registry() const { return registry_; }

  Result<NfaPtr> Compile(const char* text) const {
    auto parsed = ParseQuery(text);
    if (!parsed.ok()) return parsed.status();
    auto analyzed = Analyze(parsed.MoveValueUnsafe(), registry_);
    if (!analyzed.ok()) return analyzed.status();
    return CompileToNfa(analyzed.MoveValueUnsafe());
  }

  std::vector<EventPtr> MakeStream(const StressConfig& config) const {
    Rng rng(Mix64(config.stream_seed ^ 0x5eedu));
    std::vector<EventPtr> events;
    events.reserve(config.num_events);
    Timestamp ts = 0;
    uint64_t seq = 1;
    // Giant-timestamp mode spreads arrivals over ~half the int64 range so
    // run ages approach the huge WITHIN window of query 9.
    const Duration max_gap = config.giant_timestamps
                                 ? (int64_t{1} << 54)
                                 : 40 * kSecond;
    for (int i = 0; i < config.num_events; ++i) {
      ts += 1 + static_cast<Duration>(rng.NextBounded(max_gap));
      const auto loc = static_cast<int64_t>(rng.NextBounded(25));
      const auto uid = static_cast<int64_t>(rng.NextBounded(4));
      EventTypeId type;
      std::vector<Value> values;
      switch (rng.NextBounded(3)) {
        case 0:
          type = req_;
          values = {Value(loc), Value(uid)};
          break;
        case 1:
          type = avail_;
          values = {Value(loc), Value(static_cast<int64_t>(rng.NextBounded(50)))};
          break;
        default:
          type = unlock_;
          values = {Value(loc), Value(uid), Value(int64_t{1})};
          break;
      }
      events.push_back(std::make_shared<Event>(
          type, registry_.schema(type), ts, std::move(values), seq++));
    }
    return events;
  }

 private:
  SchemaRegistry registry_;
  EventTypeId req_ = 0, avail_ = 0, unlock_ = 0;
};

StressConfig MakeConfig(uint64_t seed, uint64_t ordinal) {
  Rng rng(Mix64(seed) ^ Mix64(ordinal * 0x9e3779b97f4a7c15ull + 1));
  StressConfig c;
  c.ordinal = ordinal;
  c.stream_seed = rng.Next();
  c.query = static_cast<int>(rng.NextBounded(kNumQueries));
  c.selection = static_cast<SelectionStrategy>(rng.NextBounded(3));
  // Name-sorted and deterministic, so the sweep reproduces across runs as
  // long as the registered strategy set is unchanged.
  static const std::vector<ShedderStrategyInfo> kStrategies =
      ShedderRegistry::ListStrategies();
  c.shedder = kStrategies[rng.NextBounded(kStrategies.size())].name;
  const bool oracle_eligible =
      c.shedder == "none" &&
      c.selection == SelectionStrategy::kSkipTillAnyMatch &&
      c.query < 9;  // the oracle recurses exhaustively — keep streams tiny
  c.num_events =
      oracle_eligible ? 8 + static_cast<int>(rng.NextBounded(7))
                      : 40 + static_cast<int>(rng.NextBounded(160));
  if (c.shedder != "none" && rng.NextBounded(2) == 0) {
    c.max_runs = 8 + rng.NextBounded(24);
  }
  c.threads = 2 + rng.NextBounded(3);
  c.shards = rng.NextBounded(4);  // 0 = per-lane
  c.batch = 1 + rng.NextBounded(8);
  c.arena_block = rng.NextBounded(2) == 0 ? 0 : 64;
  c.checkpoint_at = 1 + rng.NextBounded(static_cast<uint64_t>(c.num_events));
  c.giant_timestamps = c.query == 9;
  return c;
}

EngineOptions MakeOptions(const StressConfig& config, bool parallel,
                          bool with_quality = false) {
  EngineOptions options;
  options.selection = config.selection;
  options.latency_mode = LatencyMode::kVirtualCost;  // deterministic µ(t)
  options.max_runs = config.max_runs;
  options.shed_amount.fraction = 0.4;
  options.shed_cooldown_events = 8;
  if (config.shedder != "none" && config.max_runs == 0) {
    // Latency-triggered shedding with a deterministic virtual clock.
    options.latency_threshold_micros = 50.0;
  }
  options.parallel.threads = parallel ? config.threads : 0;
  options.parallel.shards = parallel ? config.shards : 0;
  // Force the sharded evaluation path even on small run sets — the whole
  // point is to diff it against the serial engine.
  options.parallel.min_parallel_runs = 4;
  options.parallel.arena_block_runs = config.arena_block;
  options.batch_size = config.batch;
  if (with_quality) {
    // The --shadow axis: every span mirrored, with a small ghost cap so the
    // unshed ghost aborts (deterministically) on Kleene-exploding configs
    // instead of stalling the sweep.
    options.quality.shadow.sample_every = 1;
    options.quality.shadow.max_ghost_runs = 512;
    options.quality.calibration.enabled = true;
    options.quality.slo.enabled = true;
  }
  return options;
}

/// Flat `shedder=... key=val` spec fragment for one config. Used verbatim
/// both by the in-process engines (via the service spec parser) and inside
/// the --server `!query` spec, so the two construction paths cannot drift.
std::string BuildShedderSpec(const StressConfig& config) {
  // KvUint parses through ParseInt64, so the shedder seed must fit in 63
  // bits; every consumer of this spec sees the identical masked value.
  const uint64_t seed =
      Mix64(config.stream_seed ^ 0x5eedbeefu) & 0x7fffffffffffffffull;
  std::ostringstream spec;
  spec << "shedder=" << config.shedder;
  const bool seeded = config.shedder == "rbls" || config.shedder == "ibls" ||
                      config.shedder == "sbls" || config.shedder == "espice" ||
                      config.shedder == "hspice" ||
                      config.shedder == "hybrid";
  if (seeded) spec << " seed=" << seed;
  if (config.shedder == "ibls" || config.shedder == "espice" ||
      config.shedder == "hspice" || config.shedder == "hybrid") {
    spec << " drop=0.2";
  }
  if (config.shedder == "sbls") spec << " hash=req:loc slices=16";
  if (config.shedder == "pspice") spec << " slices=16";
  return spec.str();
}

ShedderPtr MakeShedder(const StressConfig& config,
                       const SchemaRegistry& registry) {
  auto kv = service::ParseKvSpec(BuildShedderSpec(config));
  return service::MakeShedderFromSpec(kv.ValueOrDie(), registry)
      .MoveValueUnsafe();
}

/// Everything a run of one engine produces that must be reproducible.
struct RunArtifacts {
  std::vector<uint64_t> fingerprints;  ///< in emission order
  std::string metrics;
  std::string snapshot;     ///< final snapshot bytes (full durable state)
  std::string audit_jsonl;
  std::string quality;      ///< ExportQualityJson (empty object when off)
  std::vector<uint64_t> callback_victims;  ///< run ids via SetShedCallback
  uint64_t audit_appended = 0;
};

struct Failure {
  std::string config;
  std::string what;
};

#define STRESS_CHECK(cond, what)                         \
  do {                                                   \
    if (!(cond)) {                                       \
      failures->push_back({config.ToString(), (what)});  \
      return false;                                      \
    }                                                    \
  } while (0)

#define STRESS_OK(expr, what)                                             \
  do {                                                                    \
    const Status _st = (expr);                                            \
    if (!_st.ok()) {                                                      \
      failures->push_back({config.ToString(),                             \
                           std::string(what) + ": " + _st.ToString()});   \
      return false;                                                       \
    }                                                                     \
  } while (0)

/// Recomputes the conservation ledger from the observability export — the
/// registry is fed by the same field table that serializes metrics, so this
/// also guards the export path end to end.
bool RegistryInvariant(Engine& engine, const StressConfig& config,
                       std::vector<Failure>* failures) {
  obs::Registry registry;
  engine.ExportMetrics(&registry);
  const auto counter = [&registry](const char* name) {
    return registry.GetCounter(name, "")->value();
  };
  const uint64_t entered =
      counter("cep_runs_created_total") +
      (config.selection == SelectionStrategy::kSkipTillAnyMatch
           ? counter("cep_runs_extended_total")
           : 0);
  const uint64_t exited = counter("cep_runs_completed_total") +
                          counter("cep_runs_expired_total") +
                          counter("cep_runs_killed_total") +
                          counter("cep_runs_shed_total") +
                          counter("cep_runs_aborted_total");
  STRESS_CHECK(entered == exited + engine.runs().size(),
               "registry-recomputed run conservation violated");
  return true;
}

/// Runs `events` through one engine configuration; `restore_from` (when
/// non-null) seeds the engine from a snapshot and skips the consumed prefix.
bool RunEngine(const Fixture& fixture, const NfaPtr& nfa,
               const StressConfig& config, bool parallel,
               const std::vector<EventPtr>& events,
               const std::string* restore_from, size_t* checkpoint_at,
               std::string* checkpoint_bytes, RunArtifacts* out,
               std::vector<Failure>* failures, bool with_quality = false) {
  Engine engine(nfa, MakeOptions(config, parallel, with_quality),
                MakeShedder(config, fixture.registry()));
  obs::ShedAuditLog audit(1 << 12);
  engine.AttachAuditLog(&audit);
  RunArtifacts artifacts;
  engine.SetShedCallback(
      [&artifacts](const Run& run, const obs::ShedDecisionRecord&) {
        artifacts.callback_victims.push_back(run.id());
      });

  size_t start = 0;
  uint64_t restored_sheds = 0;
  if (restore_from != nullptr) {
    STRESS_OK(engine.RestoreFromSnapshot(*restore_from),
              "mid-stream restore failed");
    start = static_cast<size_t>(engine.stream_offset());
    STRESS_CHECK(start <= events.size(),
                 "restored stream offset beyond the stream");
    // The audit ring is itself a snapshot component, so pre-checkpoint
    // victims reappear in the restored ring but not in this engine's
    // shed callback.
    restored_sheds = engine.metrics().runs_shed;
  }
  for (size_t i = start; i < events.size(); ++i) {
    STRESS_OK(engine.OfferEvent(events[i]), "OfferEvent failed");
    STRESS_OK(engine.VerifyInvariants(), "merge-barrier invariant violated");
    if (checkpoint_at != nullptr && i + 1 == *checkpoint_at) {
      auto snap = engine.SerializeSnapshot();
      if (!snap.ok()) {
        failures->push_back({config.ToString(),
                             "mid-stream snapshot failed: " +
                                 snap.status().ToString()});
        return false;
      }
      *checkpoint_bytes = snap.MoveValueUnsafe();
    }
  }
  STRESS_OK(engine.Flush(), "Flush failed");
  STRESS_OK(engine.VerifyInvariants(), "post-Flush invariant violated");
  if (!RegistryInvariant(engine, config, failures)) return false;

  // Audit victims must be exactly the shed-callback victims (the log is
  // attached from the first event, and its ring is larger than any run
  // count this driver produces).
  artifacts.audit_appended = audit.total_appended();
  STRESS_CHECK(artifacts.audit_appended == engine.metrics().runs_shed,
               "audit total_appended != runs_shed");
  const auto records = audit.Snapshot();
  STRESS_CHECK(
      records.size() == artifacts.callback_victims.size() + restored_sheds,
      "audit ring lost records");
  for (size_t i = 0; i < artifacts.callback_victims.size(); ++i) {
    STRESS_CHECK(records[restored_sheds + i].run_id ==
                     artifacts.callback_victims[i],
                 "audit victim ids diverge from shed-callback victims");
  }

  for (const Match& m : engine.matches()) {
    artifacts.fingerprints.push_back(m.fingerprint);
  }
  artifacts.metrics = engine.metrics().ToString();
  artifacts.audit_jsonl = audit.ToJsonl();
  artifacts.quality = engine.ExportQualityJson();
  auto snapshot = engine.SerializeSnapshot();
  if (!snapshot.ok()) {
    failures->push_back({config.ToString(), "final snapshot failed: " +
                                                snapshot.status().ToString()});
    return false;
  }
  artifacts.snapshot = snapshot.MoveValueUnsafe();
  *out = std::move(artifacts);
  return true;
}

bool CompareArtifacts(const RunArtifacts& a, const RunArtifacts& b,
                      const StressConfig& config, const char* label,
                      std::vector<Failure>* failures) {
  STRESS_CHECK(a.fingerprints == b.fingerprints,
               std::string(label) + ": match fingerprints diverge");
  STRESS_CHECK(a.metrics == b.metrics,
               std::string(label) + ": metrics diverge");
  STRESS_CHECK(a.audit_jsonl == b.audit_jsonl,
               std::string(label) + ": audit JSONL diverges");
  STRESS_CHECK(a.callback_victims == b.callback_victims,
               std::string(label) + ": shed victims diverge");
  STRESS_CHECK(a.snapshot == b.snapshot,
               std::string(label) + ": final snapshot bytes diverge");
  return true;
}

bool RunConfig(const Fixture& fixture, const StressConfig& config,
               std::vector<Failure>* failures, bool shadow_axis = false) {
  auto nfa = fixture.Compile(kQueries[config.query]);
  if (!nfa.ok()) {
    failures->push_back({config.ToString(),
                         "query failed to compile: " + nfa.status().ToString()});
    return false;
  }
  const std::vector<EventPtr> events = fixture.MakeStream(config);

  // Serial baseline (A): also produces the mid-stream checkpoint.
  size_t checkpoint_at = config.checkpoint_at;
  std::string checkpoint_bytes;
  RunArtifacts serial;
  if (!RunEngine(fixture, nfa.ValueOrDie(), config, /*parallel=*/false, events,
                 nullptr, &checkpoint_at, &checkpoint_bytes, &serial,
                 failures)) {
    return false;
  }

  // Oracle equality (shedding off, STAM, tiny stream).
  if (config.shedder == "none" &&
      config.selection == SelectionStrategy::kSkipTillAnyMatch &&
      config.query < 9) {
    auto oracle = testing_util::OracleMatchFingerprints(*nfa.ValueOrDie(),
                                                        events);
    if (!oracle.ok()) {
      failures->push_back({config.ToString(),
                           "oracle failed: " + oracle.status().ToString()});
      return false;
    }
    std::vector<uint64_t> expected = oracle.MoveValueUnsafe();
    std::vector<uint64_t> actual = serial.fingerprints;
    std::sort(expected.begin(), expected.end());
    std::sort(actual.begin(), actual.end());
    STRESS_CHECK(actual == expected, "engine disagrees with brute-force oracle");
  }

  // Thread/shard determinism (B).
  RunArtifacts parallel;
  if (!RunEngine(fixture, nfa.ValueOrDie(), config, /*parallel=*/true, events,
                 nullptr, nullptr, nullptr, &parallel, failures)) {
    return false;
  }
  if (!CompareArtifacts(serial, parallel, config, "serial-vs-parallel",
                        failures)) {
    return false;
  }

  // Checkpoint/restore (C): resume the serial config from the mid-stream
  // snapshot; the tail must reproduce the uninterrupted run byte for byte.
  STRESS_CHECK(!checkpoint_bytes.empty(), "mid-stream checkpoint never taken");
  RunArtifacts resumed;
  if (!RunEngine(fixture, nfa.ValueOrDie(), config, /*parallel=*/false, events,
                 &checkpoint_bytes, nullptr, nullptr, &resumed, failures)) {
    return false;
  }
  // The resumed engine's shed callback only sees post-restore sheds, and the
  // pre-checkpoint audit records live in the restored log: compare the
  // durable artifacts, not the callback trace.
  STRESS_CHECK(resumed.fingerprints == serial.fingerprints,
               "resume: match fingerprints diverge");
  STRESS_CHECK(resumed.metrics == serial.metrics, "resume: metrics diverge");
  STRESS_CHECK(resumed.audit_jsonl == serial.audit_jsonl,
               "resume: audit JSONL diverges");
  STRESS_CHECK(resumed.snapshot == serial.snapshot,
               "resume: final snapshot bytes diverge");

  // Shadow non-interference (D, --shadow): a quality-enabled twin must
  // reproduce the baseline's primary artifacts exactly (snapshot bytes
  // excluded — the quality components add durable sections), and its
  // quality exports must themselves be thread/shard-deterministic.
  if (shadow_axis) {
    RunArtifacts quality_serial;
    if (!RunEngine(fixture, nfa.ValueOrDie(), config, /*parallel=*/false,
                   events, nullptr, nullptr, nullptr, &quality_serial,
                   failures, /*with_quality=*/true)) {
      return false;
    }
    STRESS_CHECK(quality_serial.fingerprints == serial.fingerprints,
                 "shadow twin: match fingerprints diverge from baseline");
    STRESS_CHECK(quality_serial.metrics == serial.metrics,
                 "shadow twin: primary metrics diverge from baseline");
    STRESS_CHECK(quality_serial.audit_jsonl == serial.audit_jsonl,
                 "shadow twin: audit JSONL diverges from baseline");
    STRESS_CHECK(quality_serial.callback_victims == serial.callback_victims,
                 "shadow twin: shed victims diverge from baseline");

    RunArtifacts quality_parallel;
    if (!RunEngine(fixture, nfa.ValueOrDie(), config, /*parallel=*/true,
                   events, nullptr, nullptr, nullptr, &quality_parallel,
                   failures, /*with_quality=*/true)) {
      return false;
    }
    if (!CompareArtifacts(quality_serial, quality_parallel, config,
                          "shadow serial-vs-parallel", failures)) {
      return false;
    }
    STRESS_CHECK(quality_serial.quality == quality_parallel.quality,
                 "shadow serial-vs-parallel: quality exports diverge");
  }
  return true;
}

// ---------------------------------------------------------------------------
// --server mode: replay the seeded config sweep through a live cepshed
// server over its Unix socket and assert that the drained artifact files
// (matches, metrics, audit JSONL) are byte-identical to an in-process
// engine built from the same query spec. The reference engine is
// constructed with the service's own spec parsers, so a divergence isolates
// the transport/WAL/session path: framing, CSV round-trip, WAL sequence
// assignment, queue pumping, and drain.
// ---------------------------------------------------------------------------

/// The `!query` option spec reproducing MakeOptions + MakeShedder for one
/// config (errorbudget=0: the in-process engines run strict).
std::string BuildQuerySpec(const StressConfig& config) {
  std::ostringstream spec;
  spec << "selection=" << static_cast<int>(config.selection)
       << " fraction=0.4 cooldown=8 errorbudget=0 minparallel=4"
       << " threads=" << config.threads << " shards=" << config.shards
       << " batch=" << config.batch << " arena=" << config.arena_block;
  if (config.max_runs > 0) spec << " maxruns=" << config.max_runs;
  const bool latency_shed = config.shedder != "none" && config.max_runs == 0;
  spec << " theta=" << (latency_shed ? 50 : 0);
  spec << ' ' << BuildShedderSpec(config);
  return spec.str();
}

Result<std::string> ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return text;
}

/// In-process reference: same spec, same events, no server in between.
struct ServiceArtifacts {
  std::string matches;
  std::string metrics;
  std::string audit_jsonl;
};

bool ReferenceArtifacts(const Fixture& fixture, const NfaPtr& nfa,
                        const std::string& spec,
                        const std::vector<EventPtr>& events,
                        const StressConfig& config, ServiceArtifacts* out,
                        std::vector<Failure>* failures) {
  auto kv = service::ParseKvSpec(spec);
  STRESS_OK(kv.status(), "reference spec failed to parse");
  auto options = service::MakeEngineOptionsFromSpec(kv.ValueOrDie(),
                                                    /*default_theta=*/0.0,
                                                    /*quota_bytes=*/0);
  STRESS_OK(options.status(), "reference options invalid");
  auto shedder =
      service::MakeShedderFromSpec(kv.ValueOrDie(), fixture.registry());
  STRESS_OK(shedder.status(), "reference shedder invalid");
  Engine engine(nfa, options.ValueOrDie(), shedder.MoveValueUnsafe());
  obs::ShedAuditLog audit(1 << 12);
  engine.AttachAuditLog(&audit);
  for (const EventPtr& event : events) {
    STRESS_OK(engine.OfferEvent(event), "reference OfferEvent failed");
  }
  STRESS_OK(engine.Flush(), "reference Flush failed");
  std::string matches;
  for (const Match& m : engine.matches()) {
    matches += service::FormatMatch(m, nfa->query());
    matches += '\n';
  }
  out->matches = std::move(matches);
  out->metrics = engine.metrics().ToString() + "\n";
  out->audit_jsonl = audit.ToJsonl();
  return true;
}

bool RunServerConfig(const Fixture& fixture, const StressConfig& config,
                     const std::string& base_dir,
                     std::vector<Failure>* failures) {
  auto nfa = fixture.Compile(kQueries[config.query]);
  if (!nfa.ok()) {
    failures->push_back({config.ToString(), "query failed to compile: " +
                                                nfa.status().ToString()});
    return false;
  }
  const std::vector<EventPtr> events = fixture.MakeStream(config);
  const std::string spec = BuildQuerySpec(config);

  ServiceArtifacts expected;
  if (!ReferenceArtifacts(fixture, nfa.ValueOrDie(), spec, events, config,
                          &expected, failures)) {
    return false;
  }

  const std::string tenant =
      "t" + std::to_string(static_cast<unsigned long long>(config.ordinal));
  const std::string dir =
      base_dir + "/cfg" +
      std::to_string(static_cast<unsigned long long>(config.ordinal));
  std::error_code ec;
  std::filesystem::create_directories(dir + "/root", ec);
  std::filesystem::create_directories(dir + "/out", ec);

  service::ServerOptions server_options;
  server_options.socket_path = dir + "/s.sock";
  server_options.root = dir + "/root";
  server_options.out_dir = dir + "/out";
  server_options.checkpoint_interval_events = 32;  // exercise async snapshots
  auto server = service::Server::Create(std::move(server_options));
  STRESS_OK(server.status(), "server failed to start");
  Status run_status;
  std::thread runner(
      [&] { run_status = server.ValueOrDie()->Run(); });

  const auto fail_and_stop = [&](const std::string& what, const Status& st) {
    server.ValueOrDie()->RequestStop();
    runner.join();
    failures->push_back({config.ToString(), what + ": " + st.ToString()});
    return false;
  };
  auto connected = service::BlockingClient::ConnectUnix(dir + "/s.sock");
  if (!connected.ok()) return fail_and_stop("connect", connected.status());
  const std::unique_ptr<service::BlockingClient> client =
      connected.MoveValueUnsafe();
  for (const std::string& command :
       {"!hello " + tenant, std::string("!schema req loc:int uid:int"),
        std::string("!schema avail loc:int bid:int"),
        std::string("!schema unlock loc:int uid:int bid:int"),
        "!query q0 " + spec + " :: " + kQueries[config.query]}) {
    auto reply = client->Command(command);
    if (!reply.ok()) return fail_and_stop("control command", reply.status());
  }
  // Stream the events, alternating text lines and binary frames so both
  // protocol paths carry real traffic.
  for (size_t i = 0; i < events.size(); ++i) {
    const std::string line = EventToCsvLine(*events[i]);
    const Status sent =
        (i % 2 == 0) ? client->SendLine(line) : client->SendFrame(line);
    if (!sent.ok()) return fail_and_stop("event send", sent);
  }
  // Command replies are ordered after every queued event for this tenant,
  // so this barrier guarantees the server ingested the whole stream before
  // the drain starts.
  auto barrier = client->Command("!checkpoint");
  if (!barrier.ok()) return fail_and_stop("checkpoint barrier",
                                          barrier.status());
  server.ValueOrDie()->RequestStop();
  runner.join();
  STRESS_OK(run_status, "server drain failed");

  ServiceArtifacts actual;
  const std::string prefix = dir + "/out/" + tenant + "--q0";
  auto matches = ReadWholeFile(prefix + ".matches.csv");
  STRESS_OK(matches.status(), "drained matches missing");
  actual.matches = matches.MoveValueUnsafe();
  auto metrics = ReadWholeFile(prefix + ".metrics.txt");
  STRESS_OK(metrics.status(), "drained metrics missing");
  actual.metrics = metrics.MoveValueUnsafe();
  auto audit = ReadWholeFile(prefix + ".audit.jsonl");
  STRESS_OK(audit.status(), "drained audit missing");
  actual.audit_jsonl = audit.MoveValueUnsafe();

  STRESS_CHECK(actual.matches == expected.matches,
               "server: drained matches diverge from in-process engine");
  STRESS_CHECK(actual.metrics == expected.metrics,
               "server: drained metrics diverge from in-process engine");
  STRESS_CHECK(actual.audit_jsonl == expected.audit_jsonl,
               "server: drained audit JSONL diverges from in-process engine");
  std::filesystem::remove_all(dir, ec);
  return true;
}

// ---------------------------------------------------------------------------
// --multiquery mode: differential sweep of the multi-query optimizer
// (src/opt/, docs/OPTIMIZER.md). Each config registers several overlapping —
// partly duplicate — queries in one MultiEngine and checks that the
// optimized engine (DSE + cross-query predicate CSE + shared-prefix merging
// + pushdown) produces byte-identical per-query match fingerprints vs the
// unoptimized fan-out, that the optimized artifacts (including snapshot
// bytes) are identical across {1,4} fan-out threads x {1,8} evaluation
// shards and through batch-at-a-time feeding, and that a mid-stream
// checkpoint/restore of the optimized engine reproduces the uninterrupted
// run exactly. Shedding stays off on this axis: the optimizer changes cost
// accounting (skipped events, eliminated edges), so shed decisions — and
// therefore matches — may legitimately differ under it.
// ---------------------------------------------------------------------------

struct MultiArtifacts {
  std::vector<std::vector<uint64_t>> per_query;  ///< fingerprints, per query
  std::string snapshot;
};

bool RunMulti(const Fixture& fixture, const std::vector<int>& query_ids,
              const StressConfig& config, bool optimize, size_t threads,
              size_t shards, size_t batch, const std::vector<EventPtr>& events,
              const std::string* restore_from, size_t checkpoint_at,
              std::string* checkpoint_bytes, MultiArtifacts* out,
              std::vector<Failure>* failures) {
  MultiEngine multi;
  for (const int q : query_ids) {
    auto nfa = fixture.Compile(kQueries[q]);
    STRESS_OK(nfa.status(), "multiquery compile failed");
    EngineOptions options;
    options.selection = config.selection;
    options.latency_mode = LatencyMode::kVirtualCost;  // deterministic µ(t)
    options.parallel.shards = shards > 1 ? shards : 0;
    options.parallel.min_parallel_runs = 4;
    multi.AddQuery(nfa.MoveValueUnsafe(), options);
  }
  if (threads > 1) multi.EnableParallel(threads);
  if (optimize) {
    STRESS_OK(multi.Optimize(), "Optimize failed");
  }
  size_t start = 0;
  if (restore_from != nullptr) {
    STRESS_OK(multi.RestoreFromSnapshot(*restore_from),
              "multiquery mid-stream restore failed");
    start = static_cast<size_t>(multi.stream_offset());
    STRESS_CHECK(start <= events.size(),
                 "multiquery restored offset beyond the stream");
  }
  if (batch <= 1) {
    for (size_t i = start; i < events.size(); ++i) {
      STRESS_OK(multi.OfferEvent(events[i]), "multiquery OfferEvent failed");
      if (checkpoint_bytes != nullptr && i + 1 == checkpoint_at) {
        auto snap = multi.SerializeSnapshot();
        if (!snap.ok()) {
          failures->push_back({config.ToString(),
                               "multiquery mid-stream snapshot failed: " +
                                   snap.status().ToString()});
          return false;
        }
        *checkpoint_bytes = snap.MoveValueUnsafe();
      }
    }
  } else {
    for (size_t i = start; i < events.size(); i += batch) {
      const size_t n = std::min(batch, events.size() - i);
      STRESS_OK(
          multi.ProcessBatch(std::span<const EventPtr>(events.data() + i, n)),
          "multiquery ProcessBatch failed");
    }
  }
  MultiArtifacts artifacts;
  artifacts.per_query.resize(multi.num_queries());
  for (size_t i = 0; i < multi.num_queries(); ++i) {
    for (const Match& m : multi.engine(i).matches()) {
      artifacts.per_query[i].push_back(m.fingerprint);
    }
  }
  auto snapshot = multi.SerializeSnapshot();
  if (!snapshot.ok()) {
    failures->push_back({config.ToString(), "multiquery final snapshot "
                                            "failed: " +
                                                snapshot.status().ToString()});
    return false;
  }
  artifacts.snapshot = snapshot.MoveValueUnsafe();
  *out = std::move(artifacts);
  return true;
}

bool RunMultiConfig(const Fixture& fixture, const StressConfig& config,
                    std::vector<Failure>* failures) {
  Rng rng(Mix64(config.stream_seed ^ 0x3617b1e5u));
  // Draw 3..6 queries with replacement from the non-giant panel: duplicates
  // are deliberate — they exercise shared-prefix merging, and overlapping
  // predicates across distinct queries exercise cross-query CSE.
  const size_t num_queries = 3 + rng.NextBounded(4);
  std::vector<int> query_ids;
  query_ids.reserve(num_queries);
  for (size_t i = 0; i < num_queries; ++i) {
    query_ids.push_back(static_cast<int>(rng.NextBounded(kNumQueries - 1)));
  }
  const std::vector<EventPtr> events = fixture.MakeStream(config);
  const size_t checkpoint_at = config.checkpoint_at;

  // Unoptimized serial baseline.
  MultiArtifacts baseline;
  if (!RunMulti(fixture, query_ids, config, /*optimize=*/false, 1, 1, 1,
                events, nullptr, 0, nullptr, &baseline, failures)) {
    return false;
  }

  // Optimized serial run; also takes the mid-stream checkpoint.
  std::string checkpoint_bytes;
  MultiArtifacts optimized;
  if (!RunMulti(fixture, query_ids, config, /*optimize=*/true, 1, 1, 1,
                events, nullptr, checkpoint_at, &checkpoint_bytes, &optimized,
                failures)) {
    return false;
  }
  STRESS_CHECK(optimized.per_query == baseline.per_query,
               "multiquery: optimized per-query matches diverge from the "
               "unoptimized fan-out");

  // Thread x shard grid: the optimized engine must reproduce its serial
  // artifacts (including snapshot bytes) on every point, and the
  // unoptimized fan-out must stay put too.
  for (const size_t threads : {size_t{1}, size_t{4}}) {
    for (const size_t shards : {size_t{1}, size_t{8}}) {
      if (threads == 1 && shards == 1) continue;
      MultiArtifacts opt_grid;
      if (!RunMulti(fixture, query_ids, config, /*optimize=*/true, threads,
                    shards, 1, events, nullptr, 0, nullptr, &opt_grid,
                    failures)) {
        return false;
      }
      STRESS_CHECK(opt_grid.per_query == optimized.per_query,
                   "multiquery: optimized matches diverge across the "
                   "thread/shard grid");
      STRESS_CHECK(opt_grid.snapshot == optimized.snapshot,
                   "multiquery: optimized snapshot bytes diverge across the "
                   "thread/shard grid");
      MultiArtifacts unopt_grid;
      if (!RunMulti(fixture, query_ids, config, /*optimize=*/false, threads,
                    shards, 1, events, nullptr, 0, nullptr, &unopt_grid,
                    failures)) {
        return false;
      }
      STRESS_CHECK(unopt_grid.per_query == baseline.per_query,
                   "multiquery: unoptimized matches diverge across the "
                   "thread/shard grid");
    }
  }

  // Batch-at-a-time feeding drives SharedPredTable::BeginBatch.
  MultiArtifacts batched;
  const size_t batch = 2 + config.batch;
  if (!RunMulti(fixture, query_ids, config, /*optimize=*/true, 1, 1, batch,
                events, nullptr, 0, nullptr, &batched, failures)) {
    return false;
  }
  STRESS_CHECK(batched.per_query == optimized.per_query,
               "multiquery: batch-fed optimized matches diverge");
  STRESS_CHECK(batched.snapshot == optimized.snapshot,
               "multiquery: batch-fed optimized snapshot bytes diverge");

  // Mid-stream checkpoint/restore of the optimized engine.
  STRESS_CHECK(!checkpoint_bytes.empty(),
               "multiquery mid-stream checkpoint never taken");
  MultiArtifacts resumed;
  if (!RunMulti(fixture, query_ids, config, /*optimize=*/true, 1, 1, 1,
                events, &checkpoint_bytes, 0, nullptr, &resumed, failures)) {
    return false;
  }
  STRESS_CHECK(resumed.per_query == optimized.per_query,
               "multiquery resume: per-query matches diverge");
  STRESS_CHECK(resumed.snapshot == optimized.snapshot,
               "multiquery resume: final snapshot bytes diverge");
  return true;
}

#undef STRESS_CHECK
#undef STRESS_OK

}  // namespace
}  // namespace cep

int main(int argc, char** argv) {
  uint64_t configs = 100;
  uint64_t seed = 7;
  bool server_mode = false;
  bool shadow_axis = false;
  bool multiquery_mode = false;
  bool configs_set = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--configs") {
      configs = std::strtoull(next(), nullptr, 10);
      configs_set = true;
    } else if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--server") {
      server_mode = true;
    } else if (arg == "--shadow") {
      shadow_axis = true;
    } else if (arg == "--multiquery") {
      multiquery_mode = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--configs N] [--seed S] [--server] [--shadow] "
                   "[--multiquery]\n",
                   argv[0]);
      return 2;
    }
  }
  // Each --server config spins up (and tears down) a whole daemon, and each
  // --multiquery config runs ~10 full MultiEngine sweeps, so their default
  // sweeps are smaller than the in-process single-engine one.
  if (server_mode && !configs_set) configs = 20;
  if (multiquery_mode && !configs_set) configs = 30;

  cep::Fixture fixture;
  std::vector<cep::Failure> failures;
  uint64_t oracle_checked = 0;
  std::string server_dir;
  if (server_mode) {
    server_dir = "stress_server_tmp_" + std::to_string(seed) + "_" +
                 std::to_string(static_cast<long long>(::getpid()));
    std::error_code ec;
    std::filesystem::create_directories(server_dir, ec);
    if (ec) {
      std::fprintf(stderr, "cannot create %s: %s\n", server_dir.c_str(),
                   ec.message().c_str());
      return 1;
    }
  }
  for (uint64_t c = 0; c < configs; ++c) {
    const cep::StressConfig config = cep::MakeConfig(seed, c);
    if (multiquery_mode) {
      cep::RunMultiConfig(fixture, config, &failures);
    } else if (server_mode) {
      cep::RunServerConfig(fixture, config, server_dir, &failures);
    } else {
      if (config.shedder == "none" &&
          config.selection == cep::SelectionStrategy::kSkipTillAnyMatch &&
          config.query < 9) {
        ++oracle_checked;
      }
      cep::RunConfig(fixture, config, &failures, shadow_axis);
    }
    if ((c + 1) % 100 == 0) {
      std::fprintf(stderr, "  ... %llu/%llu configs, %zu failures\n",
                   static_cast<unsigned long long>(c + 1),
                   static_cast<unsigned long long>(configs), failures.size());
    }
  }
  if (server_mode && failures.empty()) {
    std::error_code ec;
    std::filesystem::remove_all(server_dir, ec);
  }

  if (!failures.empty()) {
    std::fprintf(stderr, "%zu of %llu configs FAILED:\n", failures.size(),
                 static_cast<unsigned long long>(configs));
    for (const auto& f : failures) {
      std::fprintf(stderr, "  %s\n    %s\n", f.config.c_str(), f.what.c_str());
    }
    return 1;
  }
  if (multiquery_mode) {
    std::printf(
        "stress_engine: %llu multi-query configs passed (optimized vs "
        "unoptimized per-query matches byte-identical across the "
        "thread/shard grid, batch feeding, and checkpoint-resume), seed "
        "%llu\n",
        static_cast<unsigned long long>(configs),
        static_cast<unsigned long long>(seed));
    return 0;
  }
  if (server_mode) {
    std::printf(
        "stress_engine: %llu configs passed through the live server "
        "(drained artifacts byte-identical to in-process engines), seed "
        "%llu\n",
        static_cast<unsigned long long>(configs),
        static_cast<unsigned long long>(seed));
    return 0;
  }
  std::printf(
      "stress_engine: %llu configs passed (oracle cross-checked on %llu; "
      "determinism, checkpoint-resume, and run-conservation on all%s), "
      "seed %llu\n",
      static_cast<unsigned long long>(configs),
      static_cast<unsigned long long>(oracle_checked),
      shadow_axis ? "; shadow twins non-interfering" : "",
      static_cast<unsigned long long>(seed));
  return 0;
}
