#include "query/lexer.h"

#include <cctype>

#include "common/string_util.h"

namespace cep {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEnd: return "<end>";
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kIntLiteral: return "int";
    case TokenKind::kDoubleLiteral: return "double";
    case TokenKind::kStringLiteral: return "string";
    case TokenKind::kComma: return "','";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLBracket: return "'['";
    case TokenKind::kRBracket: return "']'";
    case TokenKind::kDot: return "'.'";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kPercent: return "'%'";
    case TokenKind::kEq: return "'='";
    case TokenKind::kNe: return "'!='";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kGe: return "'>='";
    case TokenKind::kBang: return "'!'";
  }
  return "?";
}

std::string Token::ToString() const {
  if (kind == TokenKind::kIdentifier || kind == TokenKind::kIntLiteral ||
      kind == TokenKind::kDoubleLiteral || kind == TokenKind::kStringLiteral) {
    return std::string(TokenKindName(kind)) + " '" + text + "'";
  }
  return TokenKindName(kind);
}

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view text) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = text.size();
  auto push = [&](TokenKind kind, size_t offset, std::string spelled = "",
                  Value value = Value()) {
    tokens.push_back(Token{kind, std::move(spelled), std::move(value), offset});
  };
  while (i < n) {
    const char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment: -- ... \n
    if (c == '-' && i + 1 < n && text[i + 1] == '-') {
      while (i < n && text[i] != '\n') ++i;
      continue;
    }
    const size_t start = i;
    if (IsIdentStart(c)) {
      size_t j = i + 1;
      while (j < n && IsIdentChar(text[j])) ++j;
      push(TokenKind::kIdentifier, start, std::string(text.substr(i, j - i)));
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
      size_t j = i;
      bool is_double = false;
      while (j < n && std::isdigit(static_cast<unsigned char>(text[j]))) ++j;
      if (j < n && text[j] == '.' && j + 1 < n &&
          std::isdigit(static_cast<unsigned char>(text[j + 1]))) {
        is_double = true;
        ++j;
        while (j < n && std::isdigit(static_cast<unsigned char>(text[j]))) ++j;
      }
      if (j < n && (text[j] == 'e' || text[j] == 'E')) {
        size_t k = j + 1;
        if (k < n && (text[k] == '+' || text[k] == '-')) ++k;
        if (k < n && std::isdigit(static_cast<unsigned char>(text[k]))) {
          is_double = true;
          j = k;
          while (j < n && std::isdigit(static_cast<unsigned char>(text[j]))) ++j;
        }
      }
      const std::string spelled(text.substr(i, j - i));
      if (is_double) {
        CEP_ASSIGN_OR_RETURN(double v, ParseDouble(spelled));
        push(TokenKind::kDoubleLiteral, start, spelled, Value(v));
      } else {
        CEP_ASSIGN_OR_RETURN(int64_t v, ParseInt64(spelled));
        push(TokenKind::kIntLiteral, start, spelled, Value(v));
      }
      i = j;
      continue;
    }
    if (c == '\'' || c == '"') {
      const char quote = c;
      std::string out;
      size_t j = i + 1;
      bool closed = false;
      while (j < n) {
        if (text[j] == quote) {
          if (j + 1 < n && text[j + 1] == quote) {  // doubled quote escape
            out += quote;
            j += 2;
            continue;
          }
          closed = true;
          ++j;
          break;
        }
        out += text[j];
        ++j;
      }
      if (!closed) {
        return Status::ParseError(
            StrFormat("unterminated string literal at offset %zu", start));
      }
      push(TokenKind::kStringLiteral, start, out, Value(out));
      i = j;
      continue;
    }
    switch (c) {
      case ',': push(TokenKind::kComma, start); ++i; break;
      case '(': push(TokenKind::kLParen, start); ++i; break;
      case ')': push(TokenKind::kRParen, start); ++i; break;
      case '[': push(TokenKind::kLBracket, start); ++i; break;
      case ']': push(TokenKind::kRBracket, start); ++i; break;
      case '.': push(TokenKind::kDot, start); ++i; break;
      case '+': push(TokenKind::kPlus, start); ++i; break;
      case '-': push(TokenKind::kMinus, start); ++i; break;
      case '*': push(TokenKind::kStar, start); ++i; break;
      case '/': push(TokenKind::kSlash, start); ++i; break;
      case '%': push(TokenKind::kPercent, start); ++i; break;
      case '=':
        if (i + 1 < n && text[i + 1] == '=') i += 2; else ++i;
        push(TokenKind::kEq, start);
        break;
      case '!':
        if (i + 1 < n && text[i + 1] == '=') {
          push(TokenKind::kNe, start);
          i += 2;
        } else {
          push(TokenKind::kBang, start);
          ++i;
        }
        break;
      case '<':
        if (i + 1 < n && text[i + 1] == '=') {
          push(TokenKind::kLe, start);
          i += 2;
        } else if (i + 1 < n && text[i + 1] == '>') {
          push(TokenKind::kNe, start);
          i += 2;
        } else {
          push(TokenKind::kLt, start);
          ++i;
        }
        break;
      case '>':
        if (i + 1 < n && text[i + 1] == '=') {
          push(TokenKind::kGe, start);
          i += 2;
        } else {
          push(TokenKind::kGt, start);
          ++i;
        }
        break;
      default:
        return Status::ParseError(
            StrFormat("unexpected character '%c' at offset %zu", c, start));
    }
  }
  push(TokenKind::kEnd, n);
  return tokens;
}

}  // namespace cep
