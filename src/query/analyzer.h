#ifndef CEPSHED_QUERY_ANALYZER_H_
#define CEPSHED_QUERY_ANALYZER_H_

#include <vector>

#include "common/result.h"
#include "event/schema.h"
#include "query/ast.h"

namespace cep {

/// Where a predicate conjunct is enforced during evaluation.
enum class AttachPhase : uint8_t {
  kTake,  ///< when an event is bound to the variable (take/begin/kill edge)
  kExit,  ///< when a run leaves a Kleene state (final COUNT / b[last] checks)
};

/// \brief A semantically validated query with every name resolved and each
/// WHERE conjunct attached to the earliest evaluation point where all of its
/// references are bound (predicate pushdown).
///
/// Move-only: attachments hold raw pointers into `query.predicates`.
struct AnalyzedQuery {
  /// Per pattern-variable conjunct attachment.
  struct Attachment {
    /// Evaluated with the candidate event virtually bound to the variable.
    /// For negated variables these are the *violation* conditions: an event
    /// satisfying all of them kills the run.
    std::vector<const Expr*> take;
    /// Kleene variables only: evaluated when the run proceeds past the
    /// variable (or at final emission when the Kleene variable is last).
    std::vector<const Expr*> exit;
  };

  ParsedQuery query;                    ///< resolved in place
  std::vector<Attachment> attachments;  ///< parallel to query.pattern
  int num_positive = 0;                 ///< non-negated pattern variables

  AnalyzedQuery() = default;
  AnalyzedQuery(AnalyzedQuery&&) = default;
  AnalyzedQuery& operator=(AnalyzedQuery&&) = default;
  AnalyzedQuery(const AnalyzedQuery&) = delete;
  AnalyzedQuery& operator=(const AnalyzedQuery&) = delete;

  const PatternVariable& variable(int index) const {
    return query.pattern[index];
  }
  int num_variables() const { return static_cast<int>(query.pattern.size()); }
};

/// \brief Validates `query` against `registry` and computes attachments.
///
/// Checks performed:
///  * every event type exists in the registry; attribute references resolve;
///  * pattern variable names are unique; at least one positive variable;
///  * Kleene-style references ([i], [i-1], [first], [last], COUNT) are only
///    applied to Kleene variables, plain `v.attr` only to non-Kleene ones;
///  * a conjunct references at most one negated variable, and only together
///    with variables that are bound earlier in the pattern;
///  * negation is not the first pattern element (nothing anchors the
///    forbidden interval) and does not directly follow a Kleene variable;
///    trailing negation is allowed — the engine defers emission until the
///    window closes (or Engine::Flush);
///  * builtin function names and arities (abs/1, diff/2, min/2, max/2);
///  * RETURN expressions reference bound variables ([i] is rewritten to
///    [last], since RETURN is evaluated once per complete match).
Result<AnalyzedQuery> Analyze(ParsedQuery query, const SchemaRegistry& registry);

}  // namespace cep

#endif  // CEPSHED_QUERY_ANALYZER_H_
