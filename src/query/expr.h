#ifndef CEPSHED_QUERY_EXPR_H_
#define CEPSHED_QUERY_EXPR_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "event/event.h"

namespace cep {

/// \brief Read-only view of the variable bindings of one partial match,
/// against which WHERE/RETURN expressions are evaluated.
///
/// The engine's Run adapts itself to this interface; tests provide simple
/// map-backed implementations.
///
/// Virtual-append contract: while a candidate event is being evaluated
/// against a take edge of variable v, the view exposes it as if it were
/// already bound — Single(v) returns it, and for a Kleene v it appears as the
/// last element (KleeneCount includes it, KleeneAt(v, n-1) returns it, and
/// Current() returns it). This makes `b[first]` well-defined on the begin
/// edge and gives `b[i-1]` its SASE meaning (the element taken before the
/// current one).
class BindingView {
 public:
  virtual ~BindingView() = default;

  /// Event bound to a single (non-Kleene) variable; nullptr if unbound.
  virtual const Event* Single(int var_index) const = 0;

  /// Number of events taken so far for a Kleene variable.
  virtual int KleeneCount(int var_index) const = 0;

  /// idx-th taken event of a Kleene variable (0-based); nullptr if OOB.
  virtual const Event* KleeneAt(int var_index, int idx) const = 0;

  /// The candidate event currently being evaluated against an edge
  /// (`b[i]` in SASE notation), or nullptr outside edge evaluation.
  virtual const Event* Current() const = 0;
};

/// How an attribute reference addresses its variable's binding.
enum class RefKind : uint8_t {
  kSingle,   ///< `a.attr` — the event bound to a single variable
  kCurrent,  ///< `b[i].attr` — the Kleene event being taken right now
  kPrev,     ///< `b[i-1].attr` — the most recently taken Kleene event
  kFirst,    ///< `b[first].attr`
  kLast,     ///< `b[last].attr`
};

const char* RefKindName(RefKind kind);

enum class ExprKind : uint8_t {
  kLiteral,
  kAttrRef,
  kCount,
  kAggregate,
  kUnary,
  kBinary,
  kCall,
};

/// Aggregates over the elements of a Kleene binding.
enum class AggOp : uint8_t { kSum, kAvg, kMin, kMax };

const char* AggOpName(AggOp op);

enum class UnaryOp : uint8_t { kNeg, kNot };

enum class BinaryOp : uint8_t {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
};

const char* BinaryOpName(BinaryOp op);

/// Builtin scalar functions usable in WHERE / RETURN.
enum class Builtin : uint8_t {
  kUnresolved,  ///< parser output before analysis
  kAbs,         ///< abs(x)
  kDiff,        ///< diff(x, y) = |x - y|  (the paper's distance predicate)
  kMin,         ///< min(x, y)
  kMax,         ///< max(x, y)
};

class Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// \brief Node of the expression tree used by WHERE predicates and RETURN
/// projections.
///
/// Parsed expressions carry symbolic names; Analyzer resolves them to
/// variable/attribute indices in place. Null handling is SQL-like: arithmetic
/// with a null operand yields null; comparisons with null yield false;
/// AND/OR treat null as false.
class Expr {
 public:
  virtual ~Expr() = default;

  ExprKind kind() const { return kind_; }

  /// Evaluates against bindings. Returns a Status for genuine errors
  /// (unresolved reference, type error, division by zero on integers).
  virtual Result<Value> Eval(const BindingView& bindings) const = 0;

  /// Deep copy.
  virtual ExprPtr Clone() const = 0;

  /// Human-readable rendering (parseable back for simple expressions).
  virtual std::string ToString() const = 0;

 protected:
  explicit Expr(ExprKind kind) : kind_(kind) {}

 private:
  ExprKind kind_;
};

class LiteralExpr final : public Expr {
 public:
  explicit LiteralExpr(Value value)
      : Expr(ExprKind::kLiteral), value_(std::move(value)) {}

  const Value& value() const { return value_; }

  Result<Value> Eval(const BindingView& bindings) const override;
  ExprPtr Clone() const override;
  std::string ToString() const override;

 private:
  Value value_;
};

class AttrRefExpr final : public Expr {
 public:
  AttrRefExpr(std::string var_name, RefKind ref_kind, std::string attr_name)
      : Expr(ExprKind::kAttrRef),
        var_name_(std::move(var_name)),
        attr_name_(std::move(attr_name)),
        ref_kind_(ref_kind) {}

  const std::string& var_name() const { return var_name_; }
  const std::string& attr_name() const { return attr_name_; }
  RefKind ref_kind() const { return ref_kind_; }

  bool resolved() const { return var_index_ >= 0; }
  int var_index() const { return var_index_; }
  int attr_index() const { return attr_index_; }

  /// Called by the analyzer once names are bound.
  void Resolve(int var_index, int attr_index) {
    var_index_ = var_index;
    attr_index_ = attr_index;
  }

  /// Analyzer rewrite hook (e.g. `b[i]` -> `b[last]` in RETURN clauses,
  /// which are evaluated once per complete match, outside edge evaluation).
  void set_ref_kind(RefKind kind) { ref_kind_ = kind; }

  Result<Value> Eval(const BindingView& bindings) const override;
  ExprPtr Clone() const override;
  std::string ToString() const override;

 private:
  std::string var_name_;
  std::string attr_name_;
  RefKind ref_kind_;
  int var_index_ = -1;
  int attr_index_ = -1;
};

/// `COUNT(b[])` — number of events taken by a Kleene variable.
class CountExpr final : public Expr {
 public:
  explicit CountExpr(std::string var_name)
      : Expr(ExprKind::kCount), var_name_(std::move(var_name)) {}

  const std::string& var_name() const { return var_name_; }
  bool resolved() const { return var_index_ >= 0; }
  int var_index() const { return var_index_; }
  void Resolve(int var_index) { var_index_ = var_index; }

  Result<Value> Eval(const BindingView& bindings) const override;
  ExprPtr Clone() const override;
  std::string ToString() const override;

 private:
  std::string var_name_;
  int var_index_ = -1;
};

/// `SUM(b[].attr)` / `AVG` / `MIN` / `MAX` — aggregate over the attribute
/// values of a Kleene variable's elements (virtual append included). Null
/// elements are skipped; an all-null or empty binding yields null.
class AggExpr final : public Expr {
 public:
  AggExpr(AggOp op, std::string var_name, std::string attr_name)
      : Expr(ExprKind::kAggregate),
        op_(op),
        var_name_(std::move(var_name)),
        attr_name_(std::move(attr_name)) {}

  AggOp op() const { return op_; }
  const std::string& var_name() const { return var_name_; }
  const std::string& attr_name() const { return attr_name_; }
  bool resolved() const { return var_index_ >= 0; }
  int var_index() const { return var_index_; }
  int attr_index() const { return attr_index_; }
  void Resolve(int var_index, int attr_index) {
    var_index_ = var_index;
    attr_index_ = attr_index;
  }

  Result<Value> Eval(const BindingView& bindings) const override;
  ExprPtr Clone() const override;
  std::string ToString() const override;

 private:
  AggOp op_;
  std::string var_name_;
  std::string attr_name_;
  int var_index_ = -1;
  int attr_index_ = -1;
};

class UnaryExpr final : public Expr {
 public:
  UnaryExpr(UnaryOp op, ExprPtr operand)
      : Expr(ExprKind::kUnary), op_(op), operand_(std::move(operand)) {}

  UnaryOp op() const { return op_; }
  const Expr& operand() const { return *operand_; }
  Expr* mutable_operand() { return operand_.get(); }

  Result<Value> Eval(const BindingView& bindings) const override;
  ExprPtr Clone() const override;
  std::string ToString() const override;

 private:
  UnaryOp op_;
  ExprPtr operand_;
};

class BinaryExpr final : public Expr {
 public:
  BinaryExpr(BinaryOp op, ExprPtr left, ExprPtr right)
      : Expr(ExprKind::kBinary),
        op_(op),
        left_(std::move(left)),
        right_(std::move(right)) {}

  BinaryOp op() const { return op_; }
  const Expr& left() const { return *left_; }
  const Expr& right() const { return *right_; }
  Expr* mutable_left() { return left_.get(); }
  Expr* mutable_right() { return right_.get(); }

  Result<Value> Eval(const BindingView& bindings) const override;
  ExprPtr Clone() const override;
  std::string ToString() const override;

 private:
  BinaryOp op_;
  ExprPtr left_;
  ExprPtr right_;
};

class CallExpr final : public Expr {
 public:
  CallExpr(std::string func_name, std::vector<ExprPtr> args)
      : Expr(ExprKind::kCall),
        func_name_(std::move(func_name)),
        args_(std::move(args)) {}

  const std::string& func_name() const { return func_name_; }
  Builtin builtin() const { return builtin_; }
  void ResolveBuiltin(Builtin b) { builtin_ = b; }
  const std::vector<ExprPtr>& args() const { return args_; }
  std::vector<ExprPtr>& mutable_args() { return args_; }

  Result<Value> Eval(const BindingView& bindings) const override;
  ExprPtr Clone() const override;
  std::string ToString() const override;

 private:
  std::string func_name_;
  std::vector<ExprPtr> args_;
  Builtin builtin_ = Builtin::kUnresolved;
};

/// Applies `fn` to every node of the tree (pre-order). Used by the analyzer.
void VisitExpr(Expr* expr, const std::function<void(Expr*)>& fn);
void VisitExpr(const Expr* expr, const std::function<void(const Expr*)>& fn);

/// Evaluates `expr` expecting a boolean outcome; null counts as false.
Result<bool> EvalPredicate(const Expr& expr, const BindingView& bindings);

}  // namespace cep

#endif  // CEPSHED_QUERY_EXPR_H_
