#ifndef CEPSHED_QUERY_BUILDER_H_
#define CEPSHED_QUERY_BUILDER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "query/analyzer.h"
#include "query/ast.h"

namespace cep {

/// \brief Fluent programmatic alternative to the SASE text parser.
///
/// ```
/// CEP_ASSIGN_OR_RETURN(
///     AnalyzedQuery q,
///     QueryBuilder("reschedule")
///         .Seq("schedule", "a")
///         .Seq("fail", "b")
///         .Seq("schedule", "c")
///         .Where("a.job_id = b.job_id AND b.job_id = c.job_id")
///         .Within(3 * kHour)
///         .Return("resubmission", {{"job", "a.job_id"}})
///         .Build(registry));
/// ```
///
/// Errors (bad expression text, unknown names) are deferred and reported by
/// Build(), so call chains stay clean.
class QueryBuilder {
 public:
  explicit QueryBuilder(std::string name = "");

  /// Appends a single-event pattern variable.
  QueryBuilder& Seq(std::string event_type, std::string var_name);
  /// Appends a Kleene-plus pattern variable.
  QueryBuilder& SeqKleene(std::string event_type, std::string var_name);
  /// Appends a negated pattern variable.
  QueryBuilder& SeqNot(std::string event_type, std::string var_name);

  /// Adds a WHERE conjunct from expression text (parsed immediately).
  QueryBuilder& Where(std::string_view expr_text);
  /// Adds a WHERE conjunct from an expression tree.
  QueryBuilder& Where(ExprPtr expr);

  QueryBuilder& Within(Duration window);

  /// Sets the RETURN clause; items are (name, expression-text) pairs.
  QueryBuilder& Return(
      std::string event_name,
      std::vector<std::pair<std::string, std::string>> items);

  /// Validates and analyzes against the registry.
  Result<AnalyzedQuery> Build(const SchemaRegistry& registry);

  /// The raw parsed form (pre-analysis); useful for ToString round trips.
  Result<ParsedQuery> BuildParsed();

 private:
  ParsedQuery query_;
  Status error_;
};

}  // namespace cep

#endif  // CEPSHED_QUERY_BUILDER_H_
