#include "query/analyzer.h"

#include <set>
#include <unordered_set>

#include "common/string_util.h"

namespace cep {

namespace {

/// Binding point of a reference in pattern order: phase kTake of position p
/// precedes phase kExit of p, which precedes kTake of p+1.
struct BindPoint {
  int position = -1;
  AttachPhase phase = AttachPhase::kTake;

  bool operator<(const BindPoint& other) const {
    if (position != other.position) return position < other.position;
    return static_cast<int>(phase) < static_cast<int>(other.phase);
  }
};

class Analyzer {
 public:
  Analyzer(ParsedQuery query, const SchemaRegistry& registry)
      : out_(), registry_(registry) {
    out_.query = std::move(query);
  }

  Result<AnalyzedQuery> Run() {
    CEP_RETURN_NOT_OK(ValidatePattern());
    CEP_RETURN_NOT_OK(AttachPredicates());
    CEP_RETURN_NOT_OK(ResolveReturn());
    return std::move(out_);
  }

 private:
  Status ValidatePattern() {
    auto& pattern = out_.query.pattern;
    if (pattern.empty()) {
      return Status::InvalidArgument("pattern has no variables");
    }
    std::unordered_set<std::string> names;
    for (auto& var : pattern) {
      if (!names.insert(var.name).second) {
        return Status::InvalidArgument("duplicate pattern variable '" +
                                       var.name + "'");
      }
      CEP_ASSIGN_OR_RETURN(var.type_id, registry_.GetType(var.event_type));
      if (var.kind != VariableKind::kNegated) ++out_.num_positive;
    }
    if (out_.num_positive == 0) {
      return Status::InvalidArgument(
          "pattern needs at least one positive (non-negated) variable");
    }
    if (pattern.front().kind == VariableKind::kNegated) {
      return Status::InvalidArgument(
          "negation cannot be the first pattern element: there is no "
          "preceding variable to anchor the forbidden interval");
    }
    for (size_t i = 1; i < pattern.size(); ++i) {
      if (pattern[i].kind == VariableKind::kNegated &&
          pattern[i - 1].kind == VariableKind::kKleene) {
        return Status::NotImplemented(
            "negation directly after a Kleene variable is not supported: "
            "the forbidden interval is ill-defined while the Kleene binding "
            "is still growing ('" +
            pattern[i].name + "' after '" + pattern[i - 1].name + "')");
      }
    }
    if (out_.query.window <= 0) {
      return Status::InvalidArgument("WITHIN window must be positive");
    }
    out_.attachments.resize(pattern.size());
    return Status::OK();
  }

  /// Resolves all references in `expr`. When `rewrite_current_to_last` is set
  /// (RETURN clause), `b[i]` references become `b[last]`.
  /// Reports the referenced variables via `refs` (variable index ->
  /// strongest binding requirement seen).
  Status ResolveExpr(Expr* expr, bool rewrite_current_to_last,
                     std::set<std::pair<int, int>>* refs, int* prev_var) {
    Status status;
    VisitExpr(expr, [&](Expr* node) {
      if (!status.ok()) return;
      switch (node->kind()) {
        case ExprKind::kAttrRef: {
          auto* ref = static_cast<AttrRefExpr*>(node);
          status = ResolveAttrRef(ref, rewrite_current_to_last, refs);
          if (status.ok() && ref->ref_kind() == RefKind::kPrev &&
              prev_var != nullptr) {
            *prev_var = ref->var_index();
          }
          break;
        }
        case ExprKind::kCount: {
          auto* count = static_cast<CountExpr*>(node);
          const int var = out_.query.FindVariable(count->var_name());
          if (var < 0) {
            status = Status::NotFound("COUNT references unknown variable '" +
                                      count->var_name() + "'");
            return;
          }
          if (out_.query.pattern[var].kind != VariableKind::kKleene) {
            status = Status::InvalidArgument(
                "COUNT(" + count->var_name() +
                "[]) requires a Kleene variable");
            return;
          }
          count->Resolve(var);
          refs->insert({var, /*exit=*/1});
          break;
        }
        case ExprKind::kAggregate: {
          auto* agg = static_cast<AggExpr*>(node);
          const int var = out_.query.FindVariable(agg->var_name());
          if (var < 0) {
            status = Status::NotFound(
                "aggregate references unknown variable '" + agg->var_name() +
                "'");
            return;
          }
          const PatternVariable& pv = out_.query.pattern[var];
          if (pv.kind != VariableKind::kKleene) {
            status = Status::InvalidArgument(
                agg->ToString() + " requires a Kleene variable");
            return;
          }
          const SchemaPtr& schema = registry_.schema(pv.type_id);
          auto attr = schema->GetAttributeIndex(agg->attr_name());
          if (!attr.ok()) {
            status = attr.status();
            return;
          }
          agg->Resolve(var, attr.ValueOrDie());
          // Aggregates summarise the final binding: exit-time requirement,
          // like COUNT.
          refs->insert({var, /*exit=*/1});
          break;
        }
        case ExprKind::kCall: {
          auto* call = static_cast<CallExpr*>(node);
          status = ResolveCall(call);
          break;
        }
        default:
          break;
      }
    });
    return status;
  }

  Status ResolveAttrRef(AttrRefExpr* ref, bool rewrite_current_to_last,
                        std::set<std::pair<int, int>>* refs) {
    const int var = out_.query.FindVariable(ref->var_name());
    if (var < 0) {
      return Status::NotFound("expression references unknown variable '" +
                              ref->var_name() + "' in " + ref->ToString());
    }
    const PatternVariable& pv = out_.query.pattern[var];
    const bool is_kleene = pv.kind == VariableKind::kKleene;
    RefKind kind = ref->ref_kind();
    if (kind == RefKind::kCurrent && rewrite_current_to_last) {
      // RETURN is evaluated once per complete match; rewrite b[i] -> b[last].
      kind = RefKind::kLast;
    }
    if (is_kleene && kind == RefKind::kSingle) {
      return Status::InvalidArgument(
          "Kleene variable '" + ref->var_name() +
          "' must be indexed ([i], [i-1], [first], [last]) in " +
          ref->ToString());
    }
    if (!is_kleene && kind != RefKind::kSingle) {
      return Status::InvalidArgument("variable '" + ref->var_name() +
                                     "' is not Kleene; use plain '" +
                                     ref->var_name() + ".attr' in " +
                                     ref->ToString());
    }
    const SchemaPtr& schema = registry_.schema(pv.type_id);
    CEP_ASSIGN_OR_RETURN(int attr, schema->GetAttributeIndex(ref->attr_name()));
    if (kind != ref->ref_kind()) ref->set_ref_kind(kind);
    ref->Resolve(var, attr);
    // Binding requirement: take-time for [i]/[i-1]/[first] and plain refs,
    // exit-time for [last] (its final value is only known then).
    const bool exit_time = is_kleene && ref->ref_kind() == RefKind::kLast &&
                           !rewrite_current_to_last;
    refs->insert({var, exit_time ? 1 : 0});
    return Status::OK();
  }

  Status ResolveCall(CallExpr* call) {
    struct BuiltinDef {
      const char* name;
      Builtin builtin;
      size_t arity;
    };
    static constexpr BuiltinDef kBuiltins[] = {
        {"abs", Builtin::kAbs, 1},
        {"diff", Builtin::kDiff, 2},
        {"min", Builtin::kMin, 2},
        {"max", Builtin::kMax, 2},
    };
    for (const auto& def : kBuiltins) {
      if (EqualsIgnoreCase(call->func_name(), def.name)) {
        if (call->args().size() != def.arity) {
          return Status::InvalidArgument(StrFormat(
              "%s() expects %zu argument(s), got %zu", def.name, def.arity,
              call->args().size()));
        }
        call->ResolveBuiltin(def.builtin);
        return Status::OK();
      }
    }
    return Status::NotFound("unknown function '" + call->func_name() + "'");
  }

  Status AttachPredicates() {
    for (auto& conjunct : out_.query.predicates) {
      std::set<std::pair<int, int>> refs;  // (var index, 0=take/1=exit)
      int prev_var = -1;
      CEP_RETURN_NOT_OK(ResolveExpr(conjunct.get(),
                                    /*rewrite_current_to_last=*/false, &refs,
                                    &prev_var));
      if (prev_var >= 0) {
        // SASE+ semantics: an [i-1] predicate is vacuously true on the first
        // Kleene take (there is no previous element). Rewrite the conjunct
        // to `COUNT(b[]) <= 1 OR (conjunct)` — with the virtual append the
        // count is 1 exactly on the first take. Attachment still follows the
        // pre-rewrite references (the guard's COUNT is not an exit gate).
        auto count =
            std::make_unique<CountExpr>(out_.query.pattern[prev_var].name);
        count->Resolve(prev_var);
        auto guard = std::make_unique<BinaryExpr>(
            BinaryOp::kLe, std::move(count),
            std::make_unique<LiteralExpr>(Value(1)));
        conjunct = std::make_unique<BinaryExpr>(
            BinaryOp::kOr, std::move(guard), std::move(conjunct));
      }
      CEP_RETURN_NOT_OK(Attach(conjunct.get(), refs));
    }
    return Status::OK();
  }

  Status Attach(const Expr* conjunct,
                const std::set<std::pair<int, int>>& refs) {
    // A conjunct referencing a negated variable is that variable's violation
    // condition and must not depend on anything bound later.
    int negated_var = -1;
    BindPoint latest{-1, AttachPhase::kTake};
    for (const auto& [var, exit_flag] : refs) {
      if (out_.query.pattern[var].kind == VariableKind::kNegated) {
        if (negated_var >= 0 && negated_var != var) {
          return Status::InvalidArgument(
              "a WHERE conjunct may reference at most one negated variable: " +
              conjunct->ToString());
        }
        negated_var = var;
      }
      const BindPoint point{var, exit_flag ? AttachPhase::kExit
                                           : AttachPhase::kTake};
      if (latest < point) latest = point;
    }
    if (negated_var >= 0) {
      if (latest.position > negated_var) {
        return Status::InvalidArgument(
            "negation condition references a variable bound after the "
            "negated variable: " +
            conjunct->ToString());
      }
      out_.attachments[negated_var].take.push_back(conjunct);
      return Status::OK();
    }
    if (latest.position < 0) {
      // Constant conjunct: gate run creation at the first variable.
      out_.attachments[0].take.push_back(conjunct);
      return Status::OK();
    }
    if (latest.phase == AttachPhase::kExit) {
      out_.attachments[latest.position].exit.push_back(conjunct);
    } else {
      out_.attachments[latest.position].take.push_back(conjunct);
    }
    return Status::OK();
  }

  Status ResolveReturn() {
    if (out_.query.return_spec.empty()) return Status::OK();
    for (auto& item : out_.query.return_spec.items) {
      std::set<std::pair<int, int>> refs;
      CEP_RETURN_NOT_OK(ResolveExpr(item.expr.get(),
                                    /*rewrite_current_to_last=*/true, &refs,
                                    /*prev_var=*/nullptr));
      for (const auto& [var, exit_flag] : refs) {
        (void)exit_flag;
        if (out_.query.pattern[var].kind == VariableKind::kNegated) {
          return Status::InvalidArgument(
              "RETURN cannot reference negated variable '" +
              out_.query.pattern[var].name + "'");
        }
      }
    }
    return Status::OK();
  }

  AnalyzedQuery out_;
  const SchemaRegistry& registry_;
};

}  // namespace

Result<AnalyzedQuery> Analyze(ParsedQuery query,
                              const SchemaRegistry& registry) {
  Analyzer analyzer(std::move(query), registry);
  return analyzer.Run();
}

}  // namespace cep
