#ifndef CEPSHED_QUERY_PARSER_H_
#define CEPSHED_QUERY_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "query/ast.h"

namespace cep {

/// \brief Parses a SASE-style query:
///
/// ```
/// PATTERN SEQ(req a, avail+ b[], unlock c)
/// WHERE diff(b[i].loc, a.loc) < 5, COUNT(b[]) > 5, c.uid = a.uid
/// WITHIN 10 min
/// RETURN warning(loc = a.loc, near = b[last].loc)
/// ```
///
/// * Pattern elements: `type var` (single), `type+ var[]` (Kleene plus),
///   `NOT type var` / `! type var` (negation).
/// * WHERE conjuncts are comma-separated; each conjunct is a boolean
///   expression with `AND`/`OR`/`NOT`, comparisons, arithmetic, and the
///   builtins `abs`, `diff`, `min`, `max`, plus `COUNT(b[])`.
/// * Kleene attribute references: `b[i].x` (element being taken),
///   `b[i-1].x` (previous element), `b[first].x`, `b[last].x`.
/// * WITHIN takes a number and a unit: us, ms, sec, min, hour(s).
/// * RETURN items may be named (`name = expr`); unnamed items get v0, v1, ...
///
/// Line comments start with `--`.
///
/// The result is *unresolved*: run Analyzer (query/analyzer.h) to bind names
/// against a SchemaRegistry before compiling to an NFA.
Result<ParsedQuery> ParseQuery(std::string_view text);

/// Parses a standalone expression (testing / tooling convenience).
Result<ExprPtr> ParseExpression(std::string_view text);

/// Parses "<number> <unit>" into a Duration.
Result<Duration> ParseDuration(std::string_view text);

}  // namespace cep

#endif  // CEPSHED_QUERY_PARSER_H_
