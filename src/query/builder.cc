#include "query/builder.h"

#include "query/parser.h"

namespace cep {

QueryBuilder::QueryBuilder(std::string name) { query_.name = std::move(name); }

QueryBuilder& QueryBuilder::Seq(std::string event_type, std::string var_name) {
  query_.pattern.push_back(PatternVariable{
      std::move(event_type), std::move(var_name), VariableKind::kSingle,
      kInvalidEventType});
  return *this;
}

QueryBuilder& QueryBuilder::SeqKleene(std::string event_type,
                                      std::string var_name) {
  query_.pattern.push_back(PatternVariable{
      std::move(event_type), std::move(var_name), VariableKind::kKleene,
      kInvalidEventType});
  return *this;
}

QueryBuilder& QueryBuilder::SeqNot(std::string event_type,
                                   std::string var_name) {
  query_.pattern.push_back(PatternVariable{
      std::move(event_type), std::move(var_name), VariableKind::kNegated,
      kInvalidEventType});
  return *this;
}

QueryBuilder& QueryBuilder::Where(std::string_view expr_text) {
  if (!error_.ok()) return *this;
  auto parsed = ParseExpression(expr_text);
  if (!parsed.ok()) {
    error_ = parsed.status().WithContext("WHERE '" + std::string(expr_text) +
                                         "'");
    return *this;
  }
  query_.predicates.push_back(parsed.MoveValueUnsafe());
  return *this;
}

QueryBuilder& QueryBuilder::Where(ExprPtr expr) {
  if (!error_.ok()) return *this;
  if (expr == nullptr) {
    error_ = Status::InvalidArgument("Where(nullptr)");
    return *this;
  }
  query_.predicates.push_back(std::move(expr));
  return *this;
}

QueryBuilder& QueryBuilder::Within(Duration window) {
  query_.window = window;
  return *this;
}

QueryBuilder& QueryBuilder::Return(
    std::string event_name,
    std::vector<std::pair<std::string, std::string>> items) {
  if (!error_.ok()) return *this;
  query_.return_spec.event_name = std::move(event_name);
  query_.return_spec.items.clear();
  for (auto& [name, text] : items) {
    auto parsed = ParseExpression(text);
    if (!parsed.ok()) {
      error_ = parsed.status().WithContext("RETURN '" + text + "'");
      return *this;
    }
    query_.return_spec.items.emplace_back(std::move(name),
                                          parsed.MoveValueUnsafe());
  }
  return *this;
}

Result<AnalyzedQuery> QueryBuilder::Build(const SchemaRegistry& registry) {
  CEP_RETURN_NOT_OK(error_);
  return Analyze(std::move(query_), registry);
}

Result<ParsedQuery> QueryBuilder::BuildParsed() {
  CEP_RETURN_NOT_OK(error_);
  return std::move(query_);
}

}  // namespace cep
