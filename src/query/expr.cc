#include "query/expr.h"

#include <cmath>
#include <functional>

#include "common/string_util.h"

namespace cep {

const char* RefKindName(RefKind kind) {
  switch (kind) {
    case RefKind::kSingle:
      return "single";
    case RefKind::kCurrent:
      return "[i]";
    case RefKind::kPrev:
      return "[i-1]";
    case RefKind::kFirst:
      return "[first]";
    case RefKind::kLast:
      return "[last]";
  }
  return "?";
}

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNe: return "!=";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAnd: return "AND";
    case BinaryOp::kOr: return "OR";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Literal

Result<Value> LiteralExpr::Eval(const BindingView&) const { return value_; }

ExprPtr LiteralExpr::Clone() const {
  return std::make_unique<LiteralExpr>(value_);
}

std::string LiteralExpr::ToString() const {
  if (value_.is_string()) {
    // Embedded quotes use the lexer's doubled-quote escape so the rendering
    // parses back to the same value (ParseQuery -> ToString -> ParseQuery
    // must be a fixpoint; fuzz_query replays regression forms for this).
    std::string out = "'";
    for (const char c : value_.string_value()) {
      out += c;
      if (c == '\'') out += '\'';
    }
    out += '\'';
    return out;
  }
  return value_.ToString();
}

// ---------------------------------------------------------------------------
// AttrRef

Result<Value> AttrRefExpr::Eval(const BindingView& bindings) const {
  if (!resolved()) {
    return Status::Internal("unresolved attribute reference " + ToString());
  }
  const Event* event = nullptr;
  switch (ref_kind_) {
    case RefKind::kSingle:
      event = bindings.Single(var_index_);
      break;
    case RefKind::kCurrent:
      event = bindings.Current();
      break;
    case RefKind::kPrev: {
      // During take-edge evaluation the candidate event is virtually appended
      // to the Kleene binding, so "the previous element" is index n-2. On the
      // first take there is no previous element and the reference yields null
      // (making [i-1] predicates vacuously true, as in SASE+).
      const int n = bindings.KleeneCount(var_index_);
      event = n >= 2 ? bindings.KleeneAt(var_index_, n - 2) : nullptr;
      break;
    }
    case RefKind::kFirst:
      event = bindings.KleeneAt(var_index_, 0);
      break;
    case RefKind::kLast: {
      const int n = bindings.KleeneCount(var_index_);
      event = n > 0 ? bindings.KleeneAt(var_index_, n - 1) : nullptr;
      break;
    }
  }
  if (event == nullptr) return Value::Null();
  return event->attribute(attr_index_);
}

ExprPtr AttrRefExpr::Clone() const {
  auto copy = std::make_unique<AttrRefExpr>(var_name_, ref_kind_, attr_name_);
  copy->var_index_ = var_index_;
  copy->attr_index_ = attr_index_;
  return copy;
}

std::string AttrRefExpr::ToString() const {
  switch (ref_kind_) {
    case RefKind::kSingle:
      return var_name_ + "." + attr_name_;
    case RefKind::kCurrent:
      return var_name_ + "[i]." + attr_name_;
    case RefKind::kPrev:
      return var_name_ + "[i-1]." + attr_name_;
    case RefKind::kFirst:
      return var_name_ + "[first]." + attr_name_;
    case RefKind::kLast:
      return var_name_ + "[last]." + attr_name_;
  }
  return var_name_ + ".?" + attr_name_;
}

// ---------------------------------------------------------------------------
// Count

Result<Value> CountExpr::Eval(const BindingView& bindings) const {
  if (!resolved()) {
    return Status::Internal("unresolved COUNT reference " + ToString());
  }
  return Value(static_cast<int64_t>(bindings.KleeneCount(var_index_)));
}

ExprPtr CountExpr::Clone() const {
  auto copy = std::make_unique<CountExpr>(var_name_);
  copy->var_index_ = var_index_;
  return copy;
}

std::string CountExpr::ToString() const {
  return "COUNT(" + var_name_ + "[])";
}

// ---------------------------------------------------------------------------
// Aggregate

const char* AggOpName(AggOp op) {
  switch (op) {
    case AggOp::kSum: return "SUM";
    case AggOp::kAvg: return "AVG";
    case AggOp::kMin: return "MIN";
    case AggOp::kMax: return "MAX";
  }
  return "?";
}

Result<Value> AggExpr::Eval(const BindingView& bindings) const {
  if (!resolved()) {
    return Status::Internal("unresolved aggregate " + ToString());
  }
  const int n = bindings.KleeneCount(var_index_);
  bool any = false;
  bool all_int = true;
  int contributing = 0;
  double sum = 0;
  int64_t int_sum = 0;
  Value best;
  for (int i = 0; i < n; ++i) {
    const Event* element = bindings.KleeneAt(var_index_, i);
    if (element == nullptr) continue;
    const Value& v = element->attribute(attr_index_);
    if (v.is_null()) continue;
    switch (op_) {
      case AggOp::kSum:
      case AggOp::kAvg: {
        CEP_ASSIGN_OR_RETURN(double d, v.GetDouble());
        sum += d;
        if (v.is_int()) int_sum += v.int_value(); else all_int = false;
        break;
      }
      case AggOp::kMin:
      case AggOp::kMax: {
        if (!any) {
          best = v;
        } else {
          CEP_ASSIGN_OR_RETURN(int c, Value::Compare(v, best));
          if ((op_ == AggOp::kMin && c < 0) ||
              (op_ == AggOp::kMax && c > 0)) {
            best = v;
          }
        }
        break;
      }
    }
    any = true;
    ++contributing;
  }
  if (!any) return Value::Null();
  switch (op_) {
    case AggOp::kSum:
      return all_int ? Value(int_sum) : Value(sum);
    case AggOp::kAvg:
      return Value(sum / static_cast<double>(contributing));
    case AggOp::kMin:
    case AggOp::kMax:
      return best;
  }
  return Status::Internal("unreachable");
}

ExprPtr AggExpr::Clone() const {
  auto copy = std::make_unique<AggExpr>(op_, var_name_, attr_name_);
  copy->var_index_ = var_index_;
  copy->attr_index_ = attr_index_;
  return copy;
}

std::string AggExpr::ToString() const {
  return std::string(AggOpName(op_)) + "(" + var_name_ + "[]." + attr_name_ +
         ")";
}

// ---------------------------------------------------------------------------
// Unary

Result<Value> UnaryExpr::Eval(const BindingView& bindings) const {
  CEP_ASSIGN_OR_RETURN(Value v, operand_->Eval(bindings));
  switch (op_) {
    case UnaryOp::kNeg:
      if (v.is_null()) return Value::Null();
      if (v.is_int()) return Value(-v.int_value());
      if (v.is_double()) return Value(-v.double_value());
      return Status::TypeError("cannot negate " +
                               std::string(ValueTypeName(v.type())));
    case UnaryOp::kNot:
      if (v.is_null()) return Value(true);  // NOT null == NOT false
      if (v.is_bool()) return Value(!v.bool_value());
      return Status::TypeError("NOT expects bool, got " +
                               std::string(ValueTypeName(v.type())));
  }
  return Status::Internal("unreachable");
}

ExprPtr UnaryExpr::Clone() const {
  return std::make_unique<UnaryExpr>(op_, operand_->Clone());
}

std::string UnaryExpr::ToString() const {
  return std::string(op_ == UnaryOp::kNeg ? "-" : "NOT ") + "(" +
         operand_->ToString() + ")";
}

// ---------------------------------------------------------------------------
// Binary

namespace {

Result<Value> EvalArithmetic(BinaryOp op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  if (!a.is_numeric() || !b.is_numeric()) {
    if (op == BinaryOp::kAdd && a.is_string() && b.is_string()) {
      return Value(a.string_value() + b.string_value());
    }
    return Status::TypeError(StrFormat("operator %s expects numeric operands",
                                       BinaryOpName(op)));
  }
  const bool both_int = a.is_int() && b.is_int();
  if (both_int && op != BinaryOp::kDiv) {
    const int64_t x = a.int_value(), y = b.int_value();
    switch (op) {
      case BinaryOp::kAdd: return Value(x + y);
      case BinaryOp::kSub: return Value(x - y);
      case BinaryOp::kMul: return Value(x * y);
      case BinaryOp::kMod:
        if (y == 0) return Status::InvalidArgument("integer modulo by zero");
        return Value(x % y);
      default: break;
    }
  }
  const double x = a.AsDouble(), y = b.AsDouble();
  switch (op) {
    case BinaryOp::kAdd: return Value(x + y);
    case BinaryOp::kSub: return Value(x - y);
    case BinaryOp::kMul: return Value(x * y);
    case BinaryOp::kDiv:
      if (y == 0.0) return Status::InvalidArgument("division by zero");
      return Value(x / y);
    case BinaryOp::kMod: return Value(std::fmod(x, y));
    default: break;
  }
  return Status::Internal("unreachable");
}

Result<Value> EvalComparison(BinaryOp op, const Value& a, const Value& b) {
  // SQL-like: comparisons involving null are false.
  if (a.is_null() || b.is_null()) return Value(false);
  if (op == BinaryOp::kEq) return Value(a == b);
  if (op == BinaryOp::kNe) return Value(a != b);
  CEP_ASSIGN_OR_RETURN(int c, Value::Compare(a, b));
  switch (op) {
    case BinaryOp::kLt: return Value(c < 0);
    case BinaryOp::kLe: return Value(c <= 0);
    case BinaryOp::kGt: return Value(c > 0);
    case BinaryOp::kGe: return Value(c >= 0);
    default: break;
  }
  return Status::Internal("unreachable");
}

Result<bool> AsBool(const Value& v, const char* op_name) {
  if (v.is_null()) return false;
  if (v.is_bool()) return v.bool_value();
  return Status::TypeError(StrFormat("%s expects bool operands", op_name));
}

}  // namespace

Result<Value> BinaryExpr::Eval(const BindingView& bindings) const {
  // Short-circuit logical operators.
  if (op_ == BinaryOp::kAnd || op_ == BinaryOp::kOr) {
    CEP_ASSIGN_OR_RETURN(Value lv, left_->Eval(bindings));
    CEP_ASSIGN_OR_RETURN(bool l, AsBool(lv, BinaryOpName(op_)));
    if (op_ == BinaryOp::kAnd && !l) return Value(false);
    if (op_ == BinaryOp::kOr && l) return Value(true);
    CEP_ASSIGN_OR_RETURN(Value rv, right_->Eval(bindings));
    CEP_ASSIGN_OR_RETURN(bool r, AsBool(rv, BinaryOpName(op_)));
    return Value(r);
  }
  CEP_ASSIGN_OR_RETURN(Value a, left_->Eval(bindings));
  CEP_ASSIGN_OR_RETURN(Value b, right_->Eval(bindings));
  switch (op_) {
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
    case BinaryOp::kMod:
      return EvalArithmetic(op_, a, b);
    default:
      return EvalComparison(op_, a, b);
  }
}

ExprPtr BinaryExpr::Clone() const {
  return std::make_unique<BinaryExpr>(op_, left_->Clone(), right_->Clone());
}

std::string BinaryExpr::ToString() const {
  return "(" + left_->ToString() + " " + BinaryOpName(op_) + " " +
         right_->ToString() + ")";
}

// ---------------------------------------------------------------------------
// Call

Result<Value> CallExpr::Eval(const BindingView& bindings) const {
  std::vector<Value> values;
  values.reserve(args_.size());
  for (const auto& arg : args_) {
    CEP_ASSIGN_OR_RETURN(Value v, arg->Eval(bindings));
    if (v.is_null()) return Value::Null();  // null propagates through builtins
    values.push_back(std::move(v));
  }
  const size_t expected_arity = builtin_ == Builtin::kAbs ? 1 : 2;
  if (builtin_ != Builtin::kUnresolved && values.size() != expected_arity) {
    return Status::InvalidArgument(
        StrFormat("%s() expects %zu argument(s), got %zu", func_name_.c_str(),
                  expected_arity, values.size()));
  }
  switch (builtin_) {
    case Builtin::kUnresolved:
      return Status::Internal("unresolved function call " + func_name_);
    case Builtin::kAbs: {
      CEP_ASSIGN_OR_RETURN(double x, values[0].GetDouble());
      if (values[0].is_int()) return Value(std::abs(values[0].int_value()));
      return Value(std::fabs(x));
    }
    case Builtin::kDiff: {
      CEP_ASSIGN_OR_RETURN(double x, values[0].GetDouble());
      CEP_ASSIGN_OR_RETURN(double y, values[1].GetDouble());
      return Value(std::fabs(x - y));
    }
    case Builtin::kMin:
    case Builtin::kMax: {
      CEP_ASSIGN_OR_RETURN(int c, Value::Compare(values[0], values[1]));
      const bool take_first = (builtin_ == Builtin::kMin) ? c <= 0 : c >= 0;
      return take_first ? values[0] : values[1];
    }
  }
  return Status::Internal("unreachable");
}

ExprPtr CallExpr::Clone() const {
  std::vector<ExprPtr> args;
  args.reserve(args_.size());
  for (const auto& a : args_) args.push_back(a->Clone());
  auto copy = std::make_unique<CallExpr>(func_name_, std::move(args));
  copy->builtin_ = builtin_;
  return copy;
}

std::string CallExpr::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(args_.size());
  for (const auto& a : args_) parts.push_back(a->ToString());
  return func_name_ + "(" + JoinStrings(parts, ", ") + ")";
}

// ---------------------------------------------------------------------------
// Traversal + predicate helper

void VisitExpr(Expr* expr, const std::function<void(Expr*)>& fn) {
  fn(expr);
  switch (expr->kind()) {
    case ExprKind::kUnary:
      VisitExpr(static_cast<UnaryExpr*>(expr)->mutable_operand(), fn);
      break;
    case ExprKind::kBinary: {
      auto* b = static_cast<BinaryExpr*>(expr);
      VisitExpr(b->mutable_left(), fn);
      VisitExpr(b->mutable_right(), fn);
      break;
    }
    case ExprKind::kCall:
      for (auto& arg : static_cast<CallExpr*>(expr)->mutable_args()) {
        VisitExpr(arg.get(), fn);
      }
      break;
    default:
      break;
  }
}

void VisitExpr(const Expr* expr, const std::function<void(const Expr*)>& fn) {
  VisitExpr(const_cast<Expr*>(expr),
            [&fn](Expr* e) { fn(const_cast<const Expr*>(e)); });
}

Result<bool> EvalPredicate(const Expr& expr, const BindingView& bindings) {
  CEP_ASSIGN_OR_RETURN(Value v, expr.Eval(bindings));
  if (v.is_null()) return false;
  if (!v.is_bool()) {
    return Status::TypeError("predicate did not evaluate to bool: " +
                             expr.ToString());
  }
  return v.bool_value();
}

}  // namespace cep
