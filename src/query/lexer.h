#ifndef CEPSHED_QUERY_LEXER_H_
#define CEPSHED_QUERY_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/value.h"

namespace cep {

enum class TokenKind : uint8_t {
  kEnd,
  kIdentifier,   // names; keywords are detected case-insensitively by parser
  kIntLiteral,
  kDoubleLiteral,
  kStringLiteral,  // '...' or "..."
  kComma,
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kDot,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPercent,
  kEq,        // = or ==
  kNe,        // != or <>
  kLt,
  kLe,
  kGt,
  kGe,
  kBang,      // ! (negated pattern element)
};

const char* TokenKindName(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;      // identifier / literal spelling
  Value value;           // parsed literal value
  size_t offset = 0;     // byte offset into the query text, for diagnostics

  std::string ToString() const;
};

/// \brief Tokenises SASE query text.
///
/// Comments (`-- ... end of line`) and whitespace are skipped. Keywords are
/// not distinguished here — the parser matches identifiers case-insensitively
/// so attribute names may shadow keywords in positions where no keyword is
/// expected.
Result<std::vector<Token>> Tokenize(std::string_view text);

}  // namespace cep

#endif  // CEPSHED_QUERY_LEXER_H_
