#include "query/ast.h"

#include "common/string_util.h"

namespace cep {

const char* VariableKindName(VariableKind kind) {
  switch (kind) {
    case VariableKind::kSingle:
      return "single";
    case VariableKind::kKleene:
      return "kleene";
    case VariableKind::kNegated:
      return "negated";
  }
  return "?";
}

std::string PatternVariable::ToString() const {
  switch (kind) {
    case VariableKind::kSingle:
      return event_type + " " + name;
    case VariableKind::kKleene:
      return event_type + "+ " + name + "[]";
    case VariableKind::kNegated:
      return "NOT " + event_type + " " + name;
  }
  return "?";
}

ParsedQuery::ParsedQuery(const ParsedQuery& other)
    : name(other.name),
      pattern(other.pattern),
      window(other.window),
      return_spec(other.return_spec) {
  predicates.reserve(other.predicates.size());
  for (const auto& p : other.predicates) predicates.push_back(p->Clone());
}

ParsedQuery& ParsedQuery::operator=(const ParsedQuery& other) {
  if (this == &other) return *this;
  name = other.name;
  pattern = other.pattern;
  window = other.window;
  return_spec = other.return_spec;
  predicates.clear();
  predicates.reserve(other.predicates.size());
  for (const auto& p : other.predicates) predicates.push_back(p->Clone());
  return *this;
}

int ParsedQuery::FindVariable(std::string_view name_arg) const {
  for (size_t i = 0; i < pattern.size(); ++i) {
    if (pattern[i].name == name_arg) return static_cast<int>(i);
  }
  return -1;
}

std::string FormatDuration(Duration d) {
  if (d % kHour == 0 && d != 0) {
    const int64_t h = d / kHour;
    return StrFormat("%lld hour%s", static_cast<long long>(h),
                     h == 1 ? "" : "s");
  }
  if (d % kMinute == 0 && d != 0) {
    return StrFormat("%lld min", static_cast<long long>(d / kMinute));
  }
  if (d % kSecond == 0 && d != 0) {
    return StrFormat("%lld sec", static_cast<long long>(d / kSecond));
  }
  if (d % kMillisecond == 0 && d != 0) {
    return StrFormat("%lld ms", static_cast<long long>(d / kMillisecond));
  }
  return StrFormat("%lld us", static_cast<long long>(d));
}

std::string ParsedQuery::ToString() const {
  std::string out = "PATTERN SEQ(";
  for (size_t i = 0; i < pattern.size(); ++i) {
    if (i > 0) out += ", ";
    out += pattern[i].ToString();
  }
  out += ")";
  if (!predicates.empty()) {
    out += " WHERE ";
    std::vector<std::string> parts;
    parts.reserve(predicates.size());
    for (const auto& p : predicates) parts.push_back(p->ToString());
    out += JoinStrings(parts, ", ");
  }
  out += " WITHIN " + FormatDuration(window);
  if (!return_spec.empty()) {
    out += " RETURN " + return_spec.event_name + "(";
    std::vector<std::string> parts;
    parts.reserve(return_spec.items.size());
    for (const auto& item : return_spec.items) {
      parts.push_back(item.name + " = " + item.expr->ToString());
    }
    out += JoinStrings(parts, ", ");
    out += ")";
  }
  return out;
}

}  // namespace cep
