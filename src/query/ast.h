#ifndef CEPSHED_QUERY_AST_H_
#define CEPSHED_QUERY_AST_H_

#include <string>
#include <vector>

#include "common/time.h"
#include "event/schema.h"
#include "query/expr.h"

namespace cep {

/// How a pattern variable participates in the sequence.
enum class VariableKind : uint8_t {
  kSingle,   ///< exactly one event, e.g. `req a`
  kKleene,   ///< one or more events, e.g. `avail+ b[]`
  kNegated,  ///< no matching event may occur, e.g. `NOT unlock x`
};

const char* VariableKindName(VariableKind kind);

/// \brief One variable of the PATTERN SEQ(...) clause.
struct PatternVariable {
  std::string event_type;  ///< schema name, e.g. "avail"
  std::string name;        ///< binding name, e.g. "b"
  VariableKind kind = VariableKind::kSingle;
  /// Resolved by the analyzer:
  EventTypeId type_id = kInvalidEventType;

  std::string ToString() const;
};

/// \brief One projected output attribute of the RETURN clause.
struct ReturnItem {
  std::string name;  ///< output attribute name (defaults to "v<k>")
  ExprPtr expr;

  ReturnItem() = default;
  ReturnItem(std::string n, ExprPtr e) : name(std::move(n)), expr(std::move(e)) {}
  ReturnItem(const ReturnItem& other)
      : name(other.name), expr(other.expr ? other.expr->Clone() : nullptr) {}
  ReturnItem& operator=(const ReturnItem& other) {
    name = other.name;
    expr = other.expr ? other.expr->Clone() : nullptr;
    return *this;
  }
  ReturnItem(ReturnItem&&) = default;
  ReturnItem& operator=(ReturnItem&&) = default;
};

/// \brief RETURN clause: the complex event generated per match.
struct ReturnSpec {
  std::string event_name;  ///< output event type, e.g. "warning"
  std::vector<ReturnItem> items;

  bool empty() const { return event_name.empty(); }
};

/// \brief Parsed (but not yet analyzed) CEP query:
/// `PATTERN SEQ(...) WHERE p1, p2, ... WITHIN d RETURN out(...)`.
///
/// WHERE conjuncts are kept as separate expressions: the analyzer attaches
/// each conjunct to the earliest NFA edge where all its references are bound
/// (predicate pushdown, as in SASE).
struct ParsedQuery {
  std::string name;  ///< optional label used in reports
  std::vector<PatternVariable> pattern;
  std::vector<ExprPtr> predicates;  ///< implicit conjunction
  Duration window = 0;
  ReturnSpec return_spec;

  ParsedQuery() = default;
  ParsedQuery(ParsedQuery&&) = default;
  ParsedQuery& operator=(ParsedQuery&&) = default;
  ParsedQuery(const ParsedQuery& other);
  ParsedQuery& operator=(const ParsedQuery& other);

  /// Index of the pattern variable called `name`, or -1.
  int FindVariable(std::string_view name) const;

  /// Round-trippable textual form.
  std::string ToString() const;
};

/// Renders a Duration like "10 min" / "3 hours" / "150 us".
std::string FormatDuration(Duration d);

}  // namespace cep

#endif  // CEPSHED_QUERY_AST_H_
