#include "query/parser.h"

#include <cmath>

#include "common/string_util.h"
#include "query/lexer.h"

namespace cep {

namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<ParsedQuery> ParseQuery();
  Result<ExprPtr> ParseExpressionOnly();
  Result<Duration> ParseDurationOnly();

 private:
  const Token& Peek(int ahead = 0) const {
    const size_t i = pos_ + static_cast<size_t>(ahead);
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool Check(TokenKind kind) const { return Peek().kind == kind; }
  bool Match(TokenKind kind) {
    if (!Check(kind)) return false;
    Advance();
    return true;
  }
  /// Case-insensitive keyword check on the current identifier token.
  bool CheckKeyword(std::string_view kw) const {
    return Check(TokenKind::kIdentifier) && EqualsIgnoreCase(Peek().text, kw);
  }
  bool MatchKeyword(std::string_view kw) {
    if (!CheckKeyword(kw)) return false;
    Advance();
    return true;
  }
  Status Expect(TokenKind kind, const char* context) {
    if (Match(kind)) return Status::OK();
    return Status::ParseError(StrFormat(
        "expected %s %s, got %s at offset %zu", TokenKindName(kind), context,
        Peek().ToString().c_str(), Peek().offset));
  }
  Status ExpectKeyword(std::string_view kw) {
    if (MatchKeyword(kw)) return Status::OK();
    return Status::ParseError(StrFormat(
        "expected keyword %.*s, got %s at offset %zu",
        static_cast<int>(kw.size()), kw.data(), Peek().ToString().c_str(),
        Peek().offset));
  }
  Result<std::string> ExpectIdentifier(const char* context) {
    if (!Check(TokenKind::kIdentifier)) {
      return Status::ParseError(StrFormat(
          "expected identifier %s, got %s at offset %zu", context,
          Peek().ToString().c_str(), Peek().offset));
    }
    return Advance().text;
  }

  Result<PatternVariable> ParsePatternElement();
  Result<Duration> ParseDurationTokens();
  Result<ReturnSpec> ParseReturnSpec();

  // Expression grammar, lowest to highest precedence.
  Result<ExprPtr> ParseExpr() { return ParseOr(); }
  Result<ExprPtr> ParseOr();
  Result<ExprPtr> ParseAnd();
  Result<ExprPtr> ParseNot();
  Result<ExprPtr> ParseComparison();
  Result<ExprPtr> ParseAdditive();
  Result<ExprPtr> ParseMultiplicative();
  Result<ExprPtr> ParseUnary();
  Result<ExprPtr> ParsePrimary();
  Result<ExprPtr> ParseIdentifierExpr();

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

Result<PatternVariable> Parser::ParsePatternElement() {
  PatternVariable var;
  if (Match(TokenKind::kBang) || MatchKeyword("NOT")) {
    var.kind = VariableKind::kNegated;
  }
  CEP_ASSIGN_OR_RETURN(var.event_type, ExpectIdentifier("(event type)"));
  if (Match(TokenKind::kPlus)) {
    if (var.kind == VariableKind::kNegated) {
      return Status::ParseError("a pattern element cannot be both negated and Kleene");
    }
    var.kind = VariableKind::kKleene;
  }
  CEP_ASSIGN_OR_RETURN(var.name, ExpectIdentifier("(variable name)"));
  // Optional `[]` marker after Kleene variables, as in the SASE papers.
  if (Match(TokenKind::kLBracket)) {
    CEP_RETURN_NOT_OK(Expect(TokenKind::kRBracket, "after '[' in pattern"));
    if (var.kind != VariableKind::kKleene) {
      return Status::ParseError("'[]' is only valid after a Kleene variable ('" +
                                var.name + "')");
    }
  }
  return var;
}

Result<Duration> Parser::ParseDurationTokens() {
  double amount = 0.0;
  if (Check(TokenKind::kIntLiteral)) {
    amount = static_cast<double>(Advance().value.int_value());
  } else if (Check(TokenKind::kDoubleLiteral)) {
    amount = Advance().value.double_value();
  } else {
    return Status::ParseError(StrFormat("expected duration amount, got %s",
                                        Peek().ToString().c_str()));
  }
  CEP_ASSIGN_OR_RETURN(std::string unit, ExpectIdentifier("(duration unit)"));
  double scale = 0.0;
  if (EqualsIgnoreCase(unit, "us") || EqualsIgnoreCase(unit, "micros") ||
      EqualsIgnoreCase(unit, "microsecond") ||
      EqualsIgnoreCase(unit, "microseconds")) {
    scale = kMicrosecond;
  } else if (EqualsIgnoreCase(unit, "ms") || EqualsIgnoreCase(unit, "millis") ||
             EqualsIgnoreCase(unit, "millisecond") ||
             EqualsIgnoreCase(unit, "milliseconds")) {
    scale = kMillisecond;
  } else if (EqualsIgnoreCase(unit, "s") || EqualsIgnoreCase(unit, "sec") ||
             EqualsIgnoreCase(unit, "secs") ||
             EqualsIgnoreCase(unit, "second") ||
             EqualsIgnoreCase(unit, "seconds")) {
    scale = kSecond;
  } else if (EqualsIgnoreCase(unit, "min") || EqualsIgnoreCase(unit, "mins") ||
             EqualsIgnoreCase(unit, "minute") ||
             EqualsIgnoreCase(unit, "minutes")) {
    scale = kMinute;
  } else if (EqualsIgnoreCase(unit, "h") || EqualsIgnoreCase(unit, "hour") ||
             EqualsIgnoreCase(unit, "hours")) {
    scale = kHour;
  } else {
    return Status::ParseError("unknown duration unit '" + unit + "'");
  }
  const double micros = amount * scale;
  if (micros <= 0 || micros > 9.0e18) {
    return Status::OutOfRange("duration out of range");
  }
  return static_cast<Duration>(std::llround(micros));
}

Result<ReturnSpec> Parser::ParseReturnSpec() {
  ReturnSpec spec;
  CEP_ASSIGN_OR_RETURN(spec.event_name, ExpectIdentifier("(output event name)"));
  CEP_RETURN_NOT_OK(Expect(TokenKind::kLParen, "after RETURN event name"));
  int k = 0;
  if (!Check(TokenKind::kRParen)) {
    do {
      std::string item_name;
      // Named item: `ident = expr` (lookahead avoids consuming `a.x = 1`).
      if (Check(TokenKind::kIdentifier) && Peek(1).kind == TokenKind::kEq) {
        item_name = Advance().text;
        Advance();  // '='
      } else {
        item_name = StrFormat("v%d", k);
      }
      CEP_ASSIGN_OR_RETURN(ExprPtr expr, ParseExpr());
      spec.items.emplace_back(std::move(item_name), std::move(expr));
      ++k;
    } while (Match(TokenKind::kComma));
  }
  CEP_RETURN_NOT_OK(Expect(TokenKind::kRParen, "closing RETURN clause"));
  return spec;
}

Result<ParsedQuery> Parser::ParseQuery() {
  ParsedQuery query;
  CEP_RETURN_NOT_OK(ExpectKeyword("PATTERN"));
  CEP_RETURN_NOT_OK(ExpectKeyword("SEQ"));
  CEP_RETURN_NOT_OK(Expect(TokenKind::kLParen, "after SEQ"));
  do {
    CEP_ASSIGN_OR_RETURN(PatternVariable var, ParsePatternElement());
    query.pattern.push_back(std::move(var));
  } while (Match(TokenKind::kComma));
  CEP_RETURN_NOT_OK(Expect(TokenKind::kRParen, "closing SEQ pattern"));

  if (MatchKeyword("WHERE")) {
    do {
      CEP_ASSIGN_OR_RETURN(ExprPtr conjunct, ParseExpr());
      query.predicates.push_back(std::move(conjunct));
    } while (Match(TokenKind::kComma));
  }

  CEP_RETURN_NOT_OK(ExpectKeyword("WITHIN"));
  CEP_ASSIGN_OR_RETURN(query.window, ParseDurationTokens());

  if (MatchKeyword("RETURN")) {
    CEP_ASSIGN_OR_RETURN(query.return_spec, ParseReturnSpec());
  }

  if (!Check(TokenKind::kEnd)) {
    return Status::ParseError(StrFormat("trailing input after query: %s",
                                        Peek().ToString().c_str()));
  }
  return query;
}

Result<ExprPtr> Parser::ParseExpressionOnly() {
  CEP_ASSIGN_OR_RETURN(ExprPtr expr, ParseExpr());
  if (!Check(TokenKind::kEnd)) {
    return Status::ParseError(StrFormat("trailing input after expression: %s",
                                        Peek().ToString().c_str()));
  }
  return expr;
}

Result<Duration> Parser::ParseDurationOnly() {
  CEP_ASSIGN_OR_RETURN(Duration d, ParseDurationTokens());
  if (!Check(TokenKind::kEnd)) {
    return Status::ParseError("trailing input after duration");
  }
  return d;
}

Result<ExprPtr> Parser::ParseOr() {
  CEP_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
  while (MatchKeyword("OR")) {
    CEP_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
    left = std::make_unique<BinaryExpr>(BinaryOp::kOr, std::move(left),
                                        std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParseAnd() {
  CEP_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
  while (MatchKeyword("AND")) {
    CEP_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
    left = std::make_unique<BinaryExpr>(BinaryOp::kAnd, std::move(left),
                                        std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParseNot() {
  if (MatchKeyword("NOT")) {
    CEP_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
    return std::make_unique<UnaryExpr>(UnaryOp::kNot, std::move(operand));
  }
  return ParseComparison();
}

Result<ExprPtr> Parser::ParseComparison() {
  CEP_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());
  BinaryOp op;
  switch (Peek().kind) {
    case TokenKind::kEq: op = BinaryOp::kEq; break;
    case TokenKind::kNe: op = BinaryOp::kNe; break;
    case TokenKind::kLt: op = BinaryOp::kLt; break;
    case TokenKind::kLe: op = BinaryOp::kLe; break;
    case TokenKind::kGt: op = BinaryOp::kGt; break;
    case TokenKind::kGe: op = BinaryOp::kGe; break;
    default:
      return left;
  }
  Advance();
  CEP_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
  return std::make_unique<BinaryExpr>(op, std::move(left), std::move(right));
}

Result<ExprPtr> Parser::ParseAdditive() {
  CEP_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
  for (;;) {
    BinaryOp op;
    if (Check(TokenKind::kPlus)) op = BinaryOp::kAdd;
    else if (Check(TokenKind::kMinus)) op = BinaryOp::kSub;
    else break;
    Advance();
    CEP_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
    left = std::make_unique<BinaryExpr>(op, std::move(left), std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParseMultiplicative() {
  CEP_ASSIGN_OR_RETURN(ExprPtr left, ParseUnary());
  for (;;) {
    BinaryOp op;
    if (Check(TokenKind::kStar)) op = BinaryOp::kMul;
    else if (Check(TokenKind::kSlash)) op = BinaryOp::kDiv;
    else if (Check(TokenKind::kPercent)) op = BinaryOp::kMod;
    else break;
    Advance();
    CEP_ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
    left = std::make_unique<BinaryExpr>(op, std::move(left), std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParseUnary() {
  if (Match(TokenKind::kMinus)) {
    CEP_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
    return std::make_unique<UnaryExpr>(UnaryOp::kNeg, std::move(operand));
  }
  return ParsePrimary();
}

Result<ExprPtr> Parser::ParsePrimary() {
  if (Check(TokenKind::kIntLiteral) || Check(TokenKind::kDoubleLiteral) ||
      Check(TokenKind::kStringLiteral)) {
    return ExprPtr(std::make_unique<LiteralExpr>(Advance().value));
  }
  if (Match(TokenKind::kLParen)) {
    CEP_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
    CEP_RETURN_NOT_OK(Expect(TokenKind::kRParen, "closing '('"));
    return inner;
  }
  if (Check(TokenKind::kIdentifier)) return ParseIdentifierExpr();
  return Status::ParseError(StrFormat("expected expression, got %s at offset %zu",
                                      Peek().ToString().c_str(), Peek().offset));
}

Result<ExprPtr> Parser::ParseIdentifierExpr() {
  const std::string name = Advance().text;

  // Boolean literals.
  if (EqualsIgnoreCase(name, "true")) {
    return ExprPtr(std::make_unique<LiteralExpr>(Value(true)));
  }
  if (EqualsIgnoreCase(name, "false")) {
    return ExprPtr(std::make_unique<LiteralExpr>(Value(false)));
  }

  // Kleene aggregates: SUM/AVG/MIN/MAX(b[].attr). SUM and AVG are always
  // aggregates; MIN/MAX fall through to the 2-argument builtins unless the
  // argument has the b[].attr shape.
  const bool always_agg =
      EqualsIgnoreCase(name, "SUM") || EqualsIgnoreCase(name, "AVG");
  const bool maybe_agg =
      always_agg || EqualsIgnoreCase(name, "MIN") || EqualsIgnoreCase(name, "MAX");
  if (maybe_agg && Check(TokenKind::kLParen) &&
      Peek(1).kind == TokenKind::kIdentifier &&
      Peek(2).kind == TokenKind::kLBracket &&
      Peek(3).kind == TokenKind::kRBracket) {
    Advance();  // '('
    CEP_ASSIGN_OR_RETURN(std::string var, ExpectIdentifier("in aggregate"));
    CEP_RETURN_NOT_OK(Expect(TokenKind::kLBracket, "in aggregate"));
    CEP_RETURN_NOT_OK(Expect(TokenKind::kRBracket, "in aggregate"));
    CEP_RETURN_NOT_OK(Expect(TokenKind::kDot, "in aggregate"));
    CEP_ASSIGN_OR_RETURN(std::string attr,
                         ExpectIdentifier("(aggregate attribute)"));
    CEP_RETURN_NOT_OK(Expect(TokenKind::kRParen, "closing aggregate"));
    AggOp op = AggOp::kSum;
    if (EqualsIgnoreCase(name, "AVG")) op = AggOp::kAvg;
    else if (EqualsIgnoreCase(name, "MIN")) op = AggOp::kMin;
    else if (EqualsIgnoreCase(name, "MAX")) op = AggOp::kMax;
    return ExprPtr(std::make_unique<AggExpr>(op, std::move(var),
                                             std::move(attr)));
  }
  if (always_agg && Check(TokenKind::kLParen)) {
    return Status::ParseError(name +
                              "() expects a Kleene aggregate argument "
                              "like SUM(b[].attr)");
  }

  // COUNT(b[]) — also accept COUNT(b).
  if (EqualsIgnoreCase(name, "COUNT") && Check(TokenKind::kLParen)) {
    Advance();
    CEP_ASSIGN_OR_RETURN(std::string var, ExpectIdentifier("in COUNT()"));
    if (Match(TokenKind::kLBracket)) {
      CEP_RETURN_NOT_OK(Expect(TokenKind::kRBracket, "in COUNT()"));
    }
    CEP_RETURN_NOT_OK(Expect(TokenKind::kRParen, "closing COUNT()"));
    return ExprPtr(std::make_unique<CountExpr>(var));
  }

  // Function call. Builtin names resolve here so standalone expressions can
  // evaluate without the analyzer; arity is validated by the analyzer (query
  // context) and defensively at evaluation time.
  if (Check(TokenKind::kLParen)) {
    Advance();
    std::vector<ExprPtr> args;
    if (!Check(TokenKind::kRParen)) {
      do {
        CEP_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
        args.push_back(std::move(arg));
      } while (Match(TokenKind::kComma));
    }
    CEP_RETURN_NOT_OK(Expect(TokenKind::kRParen, "closing function call"));
    auto call = std::make_unique<CallExpr>(name, std::move(args));
    if (EqualsIgnoreCase(name, "abs")) call->ResolveBuiltin(Builtin::kAbs);
    else if (EqualsIgnoreCase(name, "diff")) call->ResolveBuiltin(Builtin::kDiff);
    else if (EqualsIgnoreCase(name, "min")) call->ResolveBuiltin(Builtin::kMin);
    else if (EqualsIgnoreCase(name, "max")) call->ResolveBuiltin(Builtin::kMax);
    return ExprPtr(std::move(call));
  }

  // Kleene element reference: var '[' index ']' '.' attr
  if (Check(TokenKind::kLBracket)) {
    Advance();
    RefKind kind;
    if (MatchKeyword("first")) {
      kind = RefKind::kFirst;
    } else if (MatchKeyword("last")) {
      kind = RefKind::kLast;
    } else if (CheckKeyword("i")) {
      Advance();
      if (Match(TokenKind::kMinus)) {
        if (!Check(TokenKind::kIntLiteral) || Peek().value.int_value() != 1) {
          return Status::ParseError("only [i-1] offsets are supported");
        }
        Advance();
        kind = RefKind::kPrev;
      } else {
        kind = RefKind::kCurrent;
      }
    } else {
      return Status::ParseError(StrFormat(
          "expected i, i-1, first, or last inside '%s[...]', got %s",
          name.c_str(), Peek().ToString().c_str()));
    }
    CEP_RETURN_NOT_OK(Expect(TokenKind::kRBracket, "closing Kleene index"));
    CEP_RETURN_NOT_OK(Expect(TokenKind::kDot, "after Kleene index"));
    CEP_ASSIGN_OR_RETURN(std::string attr, ExpectIdentifier("(attribute name)"));
    return ExprPtr(std::make_unique<AttrRefExpr>(name, kind, std::move(attr)));
  }

  // Plain attribute reference: var '.' attr
  if (Match(TokenKind::kDot)) {
    CEP_ASSIGN_OR_RETURN(std::string attr, ExpectIdentifier("(attribute name)"));
    return ExprPtr(
        std::make_unique<AttrRefExpr>(name, RefKind::kSingle, std::move(attr)));
  }

  return Status::ParseError(StrFormat(
      "expected '.', '[', or '(' after identifier '%s' at offset %zu",
      name.c_str(), Peek().offset));
}

}  // namespace

Result<ParsedQuery> ParseQuery(std::string_view text) {
  CEP_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.ParseQuery();
}

Result<ExprPtr> ParseExpression(std::string_view text) {
  CEP_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.ParseExpressionOnly();
}

Result<Duration> ParseDuration(std::string_view text) {
  CEP_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.ParseDurationOnly();
}

}  // namespace cep
