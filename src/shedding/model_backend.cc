#include "shedding/model_backend.h"

#include <istream>
#include <ostream>

#include "common/string_util.h"

namespace cep {

void ExactCounterBackend::Add(uint64_t key, double num_delta,
                              double den_delta) {
  Cell& cell = cells_[key];
  cell.num += num_delta;
  cell.den += den_delta;
}

double ExactCounterBackend::Ratio(uint64_t key, double fallback) const {
  const auto it = cells_.find(key);
  if (it == cells_.end() || it->second.den <= 0) return fallback;
  return it->second.num / it->second.den;
}

double ExactCounterBackend::Support(uint64_t key) const {
  const auto it = cells_.find(key);
  return it == cells_.end() ? 0.0 : it->second.den;
}

Status ExactCounterBackend::Save(std::ostream& out) const {
  out << "exact " << cells_.size() << "\n";
  for (const auto& [key, cell] : cells_) {
    out << key << " " << cell.num << " " << cell.den << "\n";
  }
  if (!out) return Status::IoError("failed writing exact backend");
  return Status::OK();
}

Status ExactCounterBackend::Load(std::istream& in) {
  std::string tag;
  size_t n = 0;
  if (!(in >> tag >> n) || tag != "exact") {
    return Status::ParseError("not an exact-backend snapshot");
  }
  cells_.clear();
  cells_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    uint64_t key = 0;
    Cell cell;
    if (!(in >> key >> cell.num >> cell.den)) {
      return Status::ParseError(
          StrFormat("truncated exact-backend snapshot at cell %zu", i));
    }
    cells_.emplace(key, cell);
  }
  return Status::OK();
}

size_t ExactCounterBackend::MemoryBytes() const {
  // Bucket array + nodes; close enough for reporting.
  return cells_.bucket_count() * sizeof(void*) +
         cells_.size() * (sizeof(uint64_t) + 2 * sizeof(double) +
                          2 * sizeof(void*));
}

}  // namespace cep
