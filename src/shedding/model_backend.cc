#include "shedding/model_backend.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <vector>

#include "common/string_util.h"

namespace cep {

void ExactCounterBackend::Add(uint64_t key, double num_delta,
                              double den_delta) {
  Cell& cell = cells_[key];
  cell.num += num_delta;
  cell.den += den_delta;
}

double ExactCounterBackend::Ratio(uint64_t key, double fallback) const {
  const auto it = cells_.find(key);
  if (it == cells_.end() || it->second.den <= 0) return fallback;
  return it->second.num / it->second.den;
}

double ExactCounterBackend::Support(uint64_t key) const {
  const auto it = cells_.find(key);
  return it == cells_.end() ? 0.0 : it->second.den;
}

Status ExactCounterBackend::Save(std::ostream& out) const {
  out << "exact " << cells_.size() << "\n";
  for (const auto& [key, cell] : cells_) {
    out << key << " " << cell.num << " " << cell.den << "\n";
  }
  if (!out) return Status::IoError("failed writing exact backend");
  return Status::OK();
}

Status ExactCounterBackend::Load(std::istream& in) {
  std::string tag;
  size_t n = 0;
  if (!(in >> tag >> n) || tag != "exact") {
    return Status::ParseError("not an exact-backend snapshot");
  }
  cells_.clear();
  cells_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    uint64_t key = 0;
    Cell cell;
    if (!(in >> key >> cell.num >> cell.den)) {
      return Status::ParseError(
          StrFormat("truncated exact-backend snapshot at cell %zu", i));
    }
    cells_.emplace(key, cell);
  }
  return Status::OK();
}

Status ExactCounterBackend::SerializeTo(ckpt::Sink& sink) const {
  // Sorted by key so equal tables produce equal bytes (unordered_map
  // iteration order is not deterministic across processes).
  std::vector<uint64_t> keys;
  keys.reserve(cells_.size());
  for (const auto& [key, cell] : cells_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  sink.WriteU64(cells_.size());
  for (const uint64_t key : keys) {
    const Cell& cell = cells_.at(key);
    sink.WriteU64(key);
    sink.WriteDouble(cell.num);
    sink.WriteDouble(cell.den);
  }
  return Status::OK();
}

Status ExactCounterBackend::RestoreFrom(ckpt::Source& source) {
  CEP_ASSIGN_OR_RETURN(uint64_t n, source.ReadU64());
  cells_.clear();
  cells_.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    CEP_ASSIGN_OR_RETURN(uint64_t key, source.ReadU64());
    Cell cell;
    CEP_ASSIGN_OR_RETURN(cell.num, source.ReadDouble());
    CEP_ASSIGN_OR_RETURN(cell.den, source.ReadDouble());
    cells_.emplace(key, cell);
  }
  return Status::OK();
}

size_t ExactCounterBackend::MemoryBytes() const {
  // Bucket array + nodes; close enough for reporting.
  return cells_.bucket_count() * sizeof(void*) +
         cells_.size() * (sizeof(uint64_t) + 2 * sizeof(double) +
                          2 * sizeof(void*));
}

}  // namespace cep
