#ifndef CEPSHED_SHEDDING_STATE_SHEDDER_H_
#define CEPSHED_SHEDDING_STATE_SHEDDER_H_

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "shedding/contribution_model.h"
#include "shedding/cost_model.h"
#include "shedding/pm_hash.h"
#include "shedding/scoring.h"
#include "shedding/shedder.h"
#include "shedding/time_slice.h"

namespace cep {

/// \brief Configuration of the state-based load shedder.
struct StateShedderOptions {
  /// Which attributes characterise a partial match (see PmHashOptions).
  PmHashOptions pm_hash;
  /// Granularity of the relative-time discretisation (paper §IV-A's tuning
  /// parameter; ablation B sweeps it).
  int time_slices = 16;
  ScoringOptions scoring;
  /// Prior C+ for model cells without observations. Optimistic (high) priors
  /// protect never-before-seen partial-match groups from being shed before
  /// the model has evidence about them.
  double contribution_optimism = 1.0;
  /// Prior C- for unseen cells (low = assume cheap).
  double cost_pessimism = 0.0;
  /// Model storage: exact table or count-min sketch (paper §VI, ablation C).
  enum class Backend : uint8_t { kExact, kSketch } backend = Backend::kExact;
  size_t sketch_width = 1 << 14;
  size_t sketch_depth = 4;
  uint64_t seed = 0x5b15;
};

/// \brief SBLS — the paper's state-based load shedding strategy (§IV).
///
/// Maintains the contribution model C+(r|t) and the resource-consumption
/// model C-(r|t) online through the engine's run-lifecycle hooks, keyed by
/// (partial-match hash, NFA state, relative time slice). On overload it
/// scores every live partial match in O(1) with the configured ranking
/// function and sheds the lowest-scored ones.
///
/// Deviation note (documented in DESIGN.md): model cells are entered at
/// transition time, so a run's statistics are conditioned on the time slice
/// at which it *reached* its current state rather than re-sampled every
/// slice; this keeps all bookkeeping O(1) per transition, which the paper
/// requires, and the kTtlDiscounted ranking re-introduces current-time
/// sensitivity where needed.
class StateShedder final : public Shedder {
 public:
  /// `registry` lets attribute selectors resolve to indices (fast path);
  /// pass nullptr to resolve names dynamically per event.
  StateShedder(StateShedderOptions options, const SchemaRegistry* registry);

  std::string name() const override { return "SBLS"; }

  void Attach(const Nfa& nfa) override;

  void OnRunCreated(Run* run, const Event& event, Timestamp now) override;
  void OnRunExtended(const Run* parent, Run* child, const Event& event,
                     Timestamp now) override;
  void OnMatchEmitted(const Run& run, Timestamp now) override;

  /// Scores every live partial match in O(1) each, selects the lowest-scored
  /// `ctx.target`, and (when `ctx.want_scores`) attaches the C+/C-/score/
  /// time-slice audit record per victim in the same batch.
  ShedDecision Decide(const ShedContext& ctx) override;

  /// Score of one run at `now` (exposed for tests and ablations).
  double Score(const Run& run, Timestamp now) const;

  /// Model scores for one run at `now` (the per-victim audit record).
  ShedVictimScores ScoresFor(const Run& run, Timestamp now) const;

  /// Exposes the model scores to callers that join predictions against run
  /// outcomes (the engine's calibration monitor).
  bool DescribeVictim(const Run& run, Timestamp now,
                      ShedVictimScores* scores) const override {
    *scores = ScoresFor(run, now);
    return true;
  }

  const ContributionModel& contribution_model() const { return contribution_; }
  const CostModel& cost_model() const { return cost_; }
  const StateShedderOptions& options() const { return options_; }

  /// Model cell key for a run that just transitioned at `now`.
  uint64_t CellKey(const Run& run, Timestamp now) const;

  /// Persists / restores the learned contribution and cost models (warm
  /// starts across engine restarts). The restoring shedder must be
  /// configured with the same backend type and shape, pm-hash selectors,
  /// window, and slice count — the snapshot stores a configuration
  /// fingerprint and Load rejects mismatches. Both must be called after the
  /// shedder is attached (i.e. after Engine construction), since the window
  /// enters the fingerprint.
  Status SaveModels(std::ostream& out) const;
  Status LoadModels(std::istream& in);

  /// Binary StateComponent surface used by engine checkpoints: the same
  /// configuration fingerprint guard as SaveModels/LoadModels, followed by
  /// both model backends bit-exactly.
  Status SerializeTo(ckpt::Sink& sink) const override;
  Status RestoreFrom(ckpt::Source& source) override;

 private:
  void EnterCell(Run* run, Timestamp now);

  StateShedderOptions options_;
  const SchemaRegistry* registry_;
  PmHasher hasher_;
  TimeSlicer slicer_{1, 1};
  ContributionModel contribution_;
  CostModel cost_;
};

/// Convenience factory with the paper's defaults.
ShedderPtr MakeStateShedder(StateShedderOptions options,
                            const SchemaRegistry* registry);

/// Registers the `sbls` strategy with the ShedderRegistry (registry.h);
/// called from the registry's EnsureRegistered, never directly.
void RegisterStateShedder();

}  // namespace cep

#endif  // CEPSHED_SHEDDING_STATE_SHEDDER_H_
