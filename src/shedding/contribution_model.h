#ifndef CEPSHED_SHEDDING_CONTRIBUTION_MODEL_H_
#define CEPSHED_SHEDDING_CONTRIBUTION_MODEL_H_

#include <memory>
#include <vector>

#include "shedding/model_backend.h"

namespace cep {

/// \brief Learned contribution model C+(r|t) (paper §IV-A, Algorithm 1).
///
/// Cells are keyed by (partial-match hash, NFA state, relative time slice).
/// Observe(key) counts a partial match entering the cell; Credit(trail)
/// credits one complete match to every cell the producing run's lineage
/// passed through. The estimate for a live partial match is then
///
///   C+(r|t) = |M_r(t)| / |R_r(t)| = matches credited / runs observed
///
/// i.e. the empirical per-run match yield of "similar partial matches at the
/// same relative time point".
class ContributionModel {
 public:
  explicit ContributionModel(std::unique_ptr<CounterBackend> backend)
      : backend_(std::move(backend)) {}

  /// A run entered model cell `key` (on creation or extension).
  void Observe(uint64_t key) { backend_->Add(key, 0.0, 1.0); }

  /// A complete match was produced by a run with this model trail.
  void Credit(const std::vector<uint64_t>& trail) {
    for (const uint64_t key : trail) backend_->Add(key, 1.0, 0.0);
  }

  /// Expected remaining contribution of a partial match currently in `key`.
  /// Unseen cells return `optimism` — the prior for novel state (an
  /// optimistic prior avoids starving never-before-seen groups).
  double Estimate(uint64_t key, double optimism) const {
    return backend_->Ratio(key, optimism);
  }

  double Support(uint64_t key) const { return backend_->Support(key); }
  const CounterBackend& backend() const { return *backend_; }
  CounterBackend* mutable_backend() { return backend_.get(); }
  void Clear() { backend_->Clear(); }

 private:
  std::unique_ptr<CounterBackend> backend_;
};

}  // namespace cep

#endif  // CEPSHED_SHEDDING_CONTRIBUTION_MODEL_H_
