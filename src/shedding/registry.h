#ifndef CEPSHED_SHEDDING_REGISTRY_H_
#define CEPSHED_SHEDDING_REGISTRY_H_

#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "event/schema.h"
#include "shedding/pm_hash.h"
#include "shedding/shedder.h"

namespace cep {

/// Strategy parameters parsed from a spec string: `name(key=val,...)` or the
/// service's flat `shedder=name key=val ...` form. Ordered map so iteration
/// (and any derived output) is deterministic.
using ShedderParams = std::map<std::string, std::string>;

/// \brief Everything a strategy factory may need besides its parameters.
/// Fields follow the ShedContext stability contract: added with inert
/// defaults, never removed.
struct ShedderEnv {
  /// Schema registry for attribute-selector resolution (SBLS fast path);
  /// factories must tolerate null (selectors then resolve dynamically).
  const SchemaRegistry* schema = nullptr;
};

/// One tunable of a registered strategy, for --help / docs output and for
/// spec-key validation.
struct ShedderKnob {
  std::string key;   ///< parameter name as written in specs
  std::string help;  ///< one-line description including the default
};

/// Registration record of one strategy.
struct ShedderStrategyInfo {
  std::string name;     ///< spec name, lowercase ("sbls", "espice", ...)
  std::string summary;  ///< one-line description for --help and !hello
  std::vector<ShedderKnob> knobs;
};

/// \brief Central factory for load-shedding strategies.
///
/// Every entry point (cepshed_cli flags, cepshed_server query specs, the
/// stress harness, the benches) constructs shedders through this registry, so
/// a strategy registered once is immediately available everywhere with the
/// same spec syntax:
///
///   name                      e.g.  "sbls"
///   name(key=val,...)         e.g.  "sbls(slices=32,wplus=4)"
///
/// Values must not contain ',' — the pm-hash selector list uses ';' between
/// selectors for exactly this reason: "sbls(hash=req:loc;unlock:uid)".
///
/// Strategies self-register from their own translation units (see
/// EnsureRegistered in registry.cc — explicit registration calls, not static
/// initializers, so a static-library link cannot strip them).
class ShedderRegistry {
 public:
  using Factory =
      std::function<Result<ShedderPtr>(const ShedderParams&, const ShedderEnv&)>;

  /// Registers (or replaces) a strategy. `info.knobs` doubles as the set of
  /// parameter keys the strategy accepts.
  static void Register(ShedderStrategyInfo info, Factory factory);

  /// Parses `spec` and constructs the strategy. Unknown strategy names and —
  /// because the spec was written for this strategy alone — unknown parameter
  /// keys are errors. A null ShedderPtr inside an OK result means "no
  /// shedding" (the `none` strategy).
  static Result<ShedderPtr> Make(std::string_view spec,
                                 const ShedderEnv& env = {});

  /// Constructs `name` from an already-parsed parameter map. Unlike Make,
  /// unknown keys are ignored: callers like the server pass their whole flat
  /// `k=v` option map, which also carries engine options.
  static Result<ShedderPtr> MakeFromParams(const std::string& name,
                                           const ShedderParams& params,
                                           const ShedderEnv& env = {});

  /// Splits a `name(key=val,...)` spec into its name and parameter map
  /// without constructing anything. Duplicate keys are errors.
  static Result<std::pair<std::string, ShedderParams>> ParseSpec(
      std::string_view spec);

  /// All registered strategies, sorted by name.
  static std::vector<ShedderStrategyInfo> ListStrategies();

  /// True when `name` is a registered strategy.
  static bool Has(const std::string& name);
};

// --- shared parameter parsing helpers (for factories) -------------------------

/// Missing key returns `fallback`; present keys parse strictly.
Result<uint64_t> ShedderParamU64(const ShedderParams& params,
                                 const std::string& key, uint64_t fallback);
Result<double> ShedderParamDouble(const ShedderParams& params,
                                  const std::string& key, double fallback);

/// Parses a pm-hash selector list "type:attr" separated by ',' or ';' (the
/// ';' form is for inline specs, where ',' separates parameters).
Result<PmHashOptions> ParsePmHashSpec(std::string_view spec,
                                      double bucket_width);

}  // namespace cep

#endif  // CEPSHED_SHEDDING_REGISTRY_H_
