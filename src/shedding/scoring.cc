#include "shedding/scoring.h"

namespace cep {

const char* RankingFunctionName(RankingFunction fn) {
  switch (fn) {
    case RankingFunction::kLinear:
      return "linear";
    case RankingFunction::kRatio:
      return "ratio";
    case RankingFunction::kContributionOnly:
      return "contribution-only";
    case RankingFunction::kCostOnly:
      return "cost-only";
    case RankingFunction::kTtlDiscounted:
      return "ttl-discounted";
  }
  return "?";
}

double ScorePartialMatch(const ScoringOptions& options, double contribution,
                         double cost, double ttl_fraction) {
  switch (options.function) {
    case RankingFunction::kLinear:
      return options.weight_contribution * contribution -
             options.weight_cost * cost;
    case RankingFunction::kRatio:
      return (contribution + options.ratio_epsilon) /
             (cost + options.ratio_epsilon);
    case RankingFunction::kContributionOnly:
      return options.weight_contribution * contribution;
    case RankingFunction::kCostOnly:
      return -options.weight_cost * cost;
    case RankingFunction::kTtlDiscounted:
      return (options.weight_contribution * contribution -
              options.weight_cost * cost) *
             ttl_fraction;
  }
  return 0.0;
}

}  // namespace cep
