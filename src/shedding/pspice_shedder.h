#ifndef CEPSHED_SHEDDING_PSPICE_SHEDDER_H_
#define CEPSHED_SHEDDING_PSPICE_SHEDDER_H_

#include <string>

#include "shedding/contribution_model.h"
#include "shedding/cost_model.h"
#include "shedding/shedder.h"
#include "shedding/time_slice.h"

namespace cep {

/// \brief Configuration of the pSPICE-style partial-match shedder.
struct PspiceShedderOptions {
  /// Relative-time discretisation of the (state, time-slice) cells.
  int time_slices = 16;
  /// Prior completion probability for unseen cells.
  double completion_optimism = 1.0;
  /// Prior remaining cost for unseen cells.
  double cost_pessimism = 0.0;
  /// Stabiliser added to the cost denominator of the ranking ratio.
  double ratio_epsilon = 1e-3;
};

/// \brief pSPICE — partial-match shedding under a consumed-cost /
/// remaining-cost model (Slo et al., "pSPICE: Partial Match Shedding for
/// Complex Event Processing", IEEE BigData'19; PAPERS.md).
///
/// Where SBLS ranks by the learned C+/C− utilities of content-grouped cells
/// (pm-hash × state × slice), pSPICE is content-agnostic: it learns, per
/// (NFA state, time slice) cell, the completion probability of a partial
/// match and the further processing it will cause, and sheds the partial
/// matches with the lowest completion-per-expected-total-cost ratio
///
///   score(r) = completion / (ε + consumed(r) + remaining(r))
///
/// where consumed(r) is the work already sunk into the run (its bound-event
/// count) and remaining(r) is the learned descendant count scaled by the
/// run's remaining TTL fraction. Sunk cost keeps *shorter* runs cheaper to
/// abandon at equal completion probability — the inverse of SBLS's
/// cost-as-liability reading — which is the distinctive pSPICE trade-off.
///
/// Never drops input events. Owns the run model trail (one (state, slice)
/// cell per transition), so inside HybridShedder it pairs with the
/// trail-free input-side strategies (espice, hspice, ibls).
class PspiceShedder final : public Shedder {
 public:
  explicit PspiceShedder(PspiceShedderOptions options);

  std::string name() const override { return "PSPICE"; }

  void Attach(const Nfa& nfa) override;

  void OnRunCreated(Run* run, const Event& event, Timestamp now) override;
  void OnRunExtended(const Run* parent, Run* child, const Event& event,
                     Timestamp now) override;
  void OnMatchEmitted(const Run& run, Timestamp now) override;

  /// Sheds the `ctx.target` lowest-scored partial matches; event probes fall
  /// through to the (non-dropping) base.
  ShedDecision Decide(const ShedContext& ctx) override;

  /// Model scores for one run at `now`: c_plus = completion probability,
  /// c_minus = consumed + remaining cost, score = the ranking ratio.
  ShedVictimScores ScoresFor(const Run& run, Timestamp now) const;

  bool DescribeVictim(const Run& run, Timestamp now,
                      ShedVictimScores* scores) const override {
    *scores = ScoresFor(run, now);
    return true;
  }

  const PspiceShedderOptions& options() const { return options_; }

  Status SerializeTo(ckpt::Sink& sink) const override;
  Status RestoreFrom(ckpt::Source& source) override;

 private:
  uint64_t CellKey(int state, int slice) const;
  /// The cell a run currently lives in: its last trail entry, or recomputed
  /// for runs of unknown provenance (restored without this shedder).
  uint64_t KeyFor(const Run& run, Timestamp now) const;

  PspiceShedderOptions options_;
  TimeSlicer slicer_{1, 1};
  ContributionModel completion_;
  CostModel cost_;
};

/// Registers the `pspice` strategy with the ShedderRegistry (registry.h);
/// called from the registry's EnsureRegistered, never directly.
void RegisterPspiceShedder();

}  // namespace cep

#endif  // CEPSHED_SHEDDING_PSPICE_SHEDDER_H_
