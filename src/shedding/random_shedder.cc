#include "shedding/random_shedder.h"

#include <algorithm>

namespace cep {

void RandomShedder::SelectVictims(const std::vector<RunPtr>& runs,
                                  Timestamp now, size_t target,
                                  std::vector<size_t>* victims) {
  (void)now;
  std::vector<size_t> alive;
  alive.reserve(runs.size());
  for (size_t i = 0; i < runs.size(); ++i) {
    if (runs[i] != nullptr) alive.push_back(i);
  }
  target = std::min(target, alive.size());
  // Partial Fisher–Yates: the first `target` entries become a uniform sample
  // without replacement.
  for (size_t i = 0; i < target; ++i) {
    const size_t j = i + rng_.NextBounded(alive.size() - i);
    std::swap(alive[i], alive[j]);
    victims->push_back(alive[i]);
  }
}

void TtlShedder::SelectVictims(const std::vector<RunPtr>& runs,
                               Timestamp now, size_t target,
                               std::vector<size_t>* victims) {
  (void)now;
  struct Candidate {
    Timestamp start_ts;
    size_t index;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(runs.size());
  for (size_t i = 0; i < runs.size(); ++i) {
    if (runs[i] != nullptr) {
      candidates.push_back(Candidate{runs[i]->start_ts(), i});
    }
  }
  if (candidates.empty()) return;
  target = std::min(target, candidates.size());
  // Oldest first == least remaining TTL first.
  std::nth_element(candidates.begin(), candidates.begin() + (target - 1),
                   candidates.end(), [](const Candidate& a, const Candidate& b) {
                     if (a.start_ts != b.start_ts) {
                       return a.start_ts < b.start_ts;
                     }
                     return a.index < b.index;
                   });
  for (size_t i = 0; i < target; ++i) victims->push_back(candidates[i].index);
}

}  // namespace cep
