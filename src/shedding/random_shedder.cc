#include "shedding/random_shedder.h"

#include <algorithm>
#include <memory>

#include "shedding/registry.h"

namespace cep {

ShedDecision RandomShedder::Decide(const ShedContext& ctx) {
  // Event probes never shed state here; keep the hot path O(1) and the RNG
  // stream untouched so decisions match the pre-probe engine byte-for-byte.
  if (ctx.event != nullptr) return Shedder::Decide(ctx);
  std::vector<size_t> alive;
  alive.reserve(ctx.runs.size());
  for (size_t i = 0; i < ctx.runs.size(); ++i) {
    if (ctx.runs[i] != nullptr) alive.push_back(i);
  }
  const size_t target = std::min(ctx.target, alive.size());
  ShedDecision decision;
  decision.victims.reserve(target);
  // Partial Fisher–Yates: the first `target` entries become a uniform sample
  // without replacement.
  for (size_t i = 0; i < target; ++i) {
    const size_t j = i + rng_.NextBounded(alive.size() - i);
    std::swap(alive[i], alive[j]);
    ShedVictim victim;
    victim.index = alive[i];
    decision.victims.push_back(victim);
  }
  return decision;
}

Status RandomShedder::SerializeTo(ckpt::Sink& sink) const {
  for (const uint64_t word : rng_.state()) sink.WriteU64(word);
  return Status::OK();
}

Status RandomShedder::RestoreFrom(ckpt::Source& source) {
  std::array<uint64_t, 4> state;
  for (auto& word : state) {
    CEP_ASSIGN_OR_RETURN(word, source.ReadU64());
  }
  rng_.set_state(state);
  return Status::OK();
}

ShedDecision TtlShedder::Decide(const ShedContext& ctx) {
  if (ctx.event != nullptr) return Shedder::Decide(ctx);
  struct Candidate {
    Timestamp start_ts;
    size_t index;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(ctx.runs.size());
  for (size_t i = 0; i < ctx.runs.size(); ++i) {
    if (ctx.runs[i] != nullptr) {
      candidates.push_back(Candidate{ctx.runs[i]->start_ts(), i});
    }
  }
  ShedDecision decision;
  if (candidates.empty() || ctx.target == 0) return decision;
  const size_t target = std::min(ctx.target, candidates.size());
  // Oldest first == least remaining TTL first.
  std::nth_element(candidates.begin(), candidates.begin() + (target - 1),
                   candidates.end(), [](const Candidate& a, const Candidate& b) {
                     if (a.start_ts != b.start_ts) {
                       return a.start_ts < b.start_ts;
                     }
                     return a.index < b.index;
                   });
  decision.victims.reserve(target);
  for (size_t i = 0; i < target; ++i) {
    ShedVictim victim;
    victim.index = candidates[i].index;
    decision.victims.push_back(victim);
  }
  return decision;
}

void RegisterRandomShedders() {
  ShedderRegistry::Register(
      {"rbls",
       "random state shedding: victims are a uniform sample of R(t)",
       {{"seed", "RNG seed for victim sampling (default 1)"}}},
      [](const ShedderParams& params,
         const ShedderEnv&) -> Result<ShedderPtr> {
        CEP_ASSIGN_OR_RETURN(uint64_t seed, ShedderParamU64(params, "seed", 1));
        return ShedderPtr(std::make_unique<RandomShedder>(seed));
      });
  ShedderRegistry::Register(
      {"ttl",
       "expiring-first state shedding: sheds the least-remaining-TTL runs",
       {}},
      [](const ShedderParams&, const ShedderEnv&) -> Result<ShedderPtr> {
        return ShedderPtr(std::make_unique<TtlShedder>());
      });
}

}  // namespace cep
