#include "shedding/state_shedder.h"

#include <algorithm>
#include <istream>
#include <ostream>

#include "common/hash.h"
#include "common/string_util.h"
#include "shedding/registry.h"
#include "shedding/sketch.h"

namespace cep {

namespace {

std::unique_ptr<CounterBackend> MakeBackend(const StateShedderOptions& opts,
                                            uint64_t salt) {
  if (opts.backend == StateShedderOptions::Backend::kSketch) {
    return std::make_unique<SketchCounterBackend>(
        opts.sketch_width, opts.sketch_depth, opts.seed ^ salt);
  }
  return std::make_unique<ExactCounterBackend>();
}

}  // namespace

StateShedder::StateShedder(StateShedderOptions options,
                           const SchemaRegistry* registry)
    : options_(std::move(options)),
      registry_(registry),
      hasher_(options_.pm_hash),
      contribution_(MakeBackend(options_, 0xc0de)),
      cost_(MakeBackend(options_, 0x7057)) {}

void StateShedder::Attach(const Nfa& nfa) {
  slicer_ = TimeSlicer(nfa.window(), options_.time_slices);
  if (registry_ != nullptr) {
    // Selector resolution failures surface on first use as dynamic lookups;
    // Attach errors are programming errors in experiment setup.
    const Status st = hasher_.Attach(nfa, *registry_);
    if (!st.ok()) hasher_.AttachDynamic();
  } else {
    hasher_.AttachDynamic();
  }
}

uint64_t StateShedder::CellKey(const Run& run, Timestamp now) const {
  const int slice = slicer_.Slice(run.start_ts(), now);
  return Mix64(run.pm_hash() ^
               Mix64(static_cast<uint64_t>(run.state()) * 0x9e3779b1ULL +
                     static_cast<uint64_t>(slice) + 0x51ab));
}

void StateShedder::EnterCell(Run* run, Timestamp now) {
  const uint64_t key = CellKey(*run, now);
  run->PushTrail(key);
  contribution_.Observe(key);
  cost_.Observe(key);
}

void StateShedder::OnRunCreated(Run* run, const Event& event, Timestamp now) {
  run->set_pm_hash(hasher_.Extend(0, event));
  EnterCell(run, now);
}

void StateShedder::OnRunExtended(const Run* parent, Run* child,
                                 const Event& event, Timestamp now) {
  child->set_pm_hash(hasher_.Extend(child->pm_hash(), event));
  EnterCell(child, now);
  if (parent != nullptr) {
    // One more partial match was derived from every cell on the parent's
    // lineage (paper §IV-B). The child's own new cell is not charged.
    cost_.Charge(parent->trail());
  }
}

void StateShedder::OnMatchEmitted(const Run& run, Timestamp now) {
  (void)now;
  contribution_.Credit(run.trail());
}

double StateShedder::Score(const Run& run, Timestamp now) const {
  // The run lives in the cell recorded by its last transition.
  const uint64_t key = run.trail().empty() ? CellKey(run, now)
                                           : run.trail().back();
  const double c_plus =
      contribution_.Estimate(key, options_.contribution_optimism);
  const double c_minus = cost_.Estimate(key, options_.cost_pessimism);
  const double ttl = slicer_.TtlFraction(run.start_ts(), now);
  return ScorePartialMatch(options_.scoring, c_plus, c_minus, ttl);
}

ShedVictimScores StateShedder::ScoresFor(const Run& run, Timestamp now) const {
  ShedVictimScores scores;
  const uint64_t key = run.trail().empty() ? CellKey(run, now)
                                           : run.trail().back();
  scores.c_plus = contribution_.Estimate(key, options_.contribution_optimism);
  scores.c_minus = cost_.Estimate(key, options_.cost_pessimism);
  const double ttl = slicer_.TtlFraction(run.start_ts(), now);
  scores.score =
      ScorePartialMatch(options_.scoring, scores.c_plus, scores.c_minus, ttl);
  scores.time_slice = slicer_.Slice(run.start_ts(), now);
  return scores;
}

ShedDecision StateShedder::Decide(const ShedContext& ctx) {
  // SBLS sheds state only; event probes fall through to the (non-dropping)
  // base so the hot path stays O(1) per event.
  if (ctx.event != nullptr) return Shedder::Decide(ctx);
  struct Candidate {
    double score;
    Timestamp start_ts;
    size_t index;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(ctx.runs.size());
  for (size_t i = 0; i < ctx.runs.size(); ++i) {
    if (ctx.runs[i] == nullptr) continue;
    candidates.push_back(
        Candidate{Score(*ctx.runs[i], ctx.now), ctx.runs[i]->start_ts(), i});
  }
  ShedDecision decision;
  if (candidates.empty() || ctx.target == 0) return decision;
  const size_t target = std::min(ctx.target, candidates.size());
  // Lowest score first; ties broken towards partial matches closer to
  // expiry (they have the least remaining opportunity to contribute).
  const auto worse = [](const Candidate& a, const Candidate& b) {
    if (a.score != b.score) return a.score < b.score;
    if (a.start_ts != b.start_ts) return a.start_ts < b.start_ts;
    return a.index < b.index;
  };
  std::nth_element(candidates.begin(), candidates.begin() + (target - 1),
                   candidates.end(), worse);
  decision.victims.reserve(target);
  for (size_t i = 0; i < target; ++i) {
    ShedVictim victim;
    victim.index = candidates[i].index;
    if (ctx.want_scores) {
      victim.has_scores = true;
      victim.scores = ScoresFor(*ctx.runs[victim.index], ctx.now);
    }
    decision.victims.push_back(victim);
  }
  return decision;
}

namespace {

/// Fingerprint of the configuration aspects that determine cell keys.
uint64_t ConfigFingerprint(const StateShedderOptions& options,
                           const TimeSlicer& slicer) {
  uint64_t h = Mix64(0xc0f19 + static_cast<uint64_t>(options.time_slices));
  h = HashCombine(h, static_cast<uint64_t>(slicer.window()));
  h = HashCombine(h, static_cast<uint64_t>(options.backend ==
                                           StateShedderOptions::Backend::kSketch));
  h = HashCombine(h, options.sketch_width);
  h = HashCombine(h, options.sketch_depth);
  for (const auto& sel : options.pm_hash.attributes) {
    h = HashCombine(h, HashString(sel.event_type));
    h = HashCombine(h, HashString(sel.attribute));
  }
  return h;
}

}  // namespace

Status StateShedder::SaveModels(std::ostream& out) const {
  out << "cepshed-models v1 " << ConfigFingerprint(options_, slicer_) << "\n";
  CEP_RETURN_NOT_OK(contribution_.backend().Save(out));
  return cost_.backend().Save(out);
}

Status StateShedder::LoadModels(std::istream& in) {
  std::string magic, version;
  uint64_t fingerprint = 0;
  if (!(in >> magic >> version >> fingerprint) || magic != "cepshed-models" ||
      version != "v1") {
    return Status::ParseError("not a cepshed model snapshot");
  }
  if (fingerprint != ConfigFingerprint(options_, slicer_)) {
    return Status::InvalidArgument(
        "model snapshot was written under a different shedder "
        "configuration (hash selectors / slices / window / backend)");
  }
  CEP_RETURN_NOT_OK(contribution_.mutable_backend()->Load(in));
  return cost_.mutable_backend()->Load(in);
}

Status StateShedder::SerializeTo(ckpt::Sink& sink) const {
  sink.WriteU64(ConfigFingerprint(options_, slicer_));
  CEP_RETURN_NOT_OK(contribution_.backend().SerializeTo(sink));
  return cost_.backend().SerializeTo(sink);
}

Status StateShedder::RestoreFrom(ckpt::Source& source) {
  CEP_ASSIGN_OR_RETURN(uint64_t fingerprint, source.ReadU64());
  if (fingerprint != ConfigFingerprint(options_, slicer_)) {
    return Status::InvalidArgument(
        "model snapshot was written under a different shedder "
        "configuration (hash selectors / slices / window / backend)");
  }
  CEP_RETURN_NOT_OK(contribution_.mutable_backend()->RestoreFrom(source));
  return cost_.mutable_backend()->RestoreFrom(source);
}

ShedderPtr MakeStateShedder(StateShedderOptions options,
                            const SchemaRegistry* registry) {
  return std::make_unique<StateShedder>(std::move(options), registry);
}

void RegisterStateShedder() {
  ShedderRegistry::Register(
      {"sbls",
       "the paper's state-based shedding: learned C+/C- models over "
       "(pm-hash, state, time-slice) cells",
       {{"hash", "pm-hash selectors type:attr[;type:attr...] (default: all "
                 "attributes)"},
        {"bucket", "numeric bucket width for hashed attributes (default 0 = "
                   "exact)"},
        {"slices", "relative-time slices (default 16)"},
        {"wplus", "contribution weight in the linear ranking (default 1)"},
        {"wminus", "cost weight in the linear ranking (default 1)"},
        {"optimism", "prior C+ for unseen cells (default 1)"},
        {"pessimism", "prior C- for unseen cells (default 0)"},
        {"backend", "model storage, exact|sketch (default exact)"},
        {"width", "sketch width when backend=sketch (default 16384)"},
        {"depth", "sketch depth when backend=sketch (default 4)"},
        {"seed", "sketch hash seed (default 0x5b15)"}}},
      [](const ShedderParams& params,
         const ShedderEnv& env) -> Result<ShedderPtr> {
        StateShedderOptions options;
        const auto hash = params.find("hash");
        CEP_ASSIGN_OR_RETURN(double bucket,
                             ShedderParamDouble(params, "bucket", 0.0));
        CEP_ASSIGN_OR_RETURN(
            options.pm_hash,
            ParsePmHashSpec(hash == params.end() ? "" : hash->second, bucket));
        CEP_ASSIGN_OR_RETURN(uint64_t slices,
                             ShedderParamU64(params, "slices", 16));
        options.time_slices = static_cast<int>(slices);
        CEP_ASSIGN_OR_RETURN(
            options.scoring.weight_contribution,
            ShedderParamDouble(params, "wplus",
                               options.scoring.weight_contribution));
        CEP_ASSIGN_OR_RETURN(
            options.scoring.weight_cost,
            ShedderParamDouble(params, "wminus", options.scoring.weight_cost));
        CEP_ASSIGN_OR_RETURN(
            options.contribution_optimism,
            ShedderParamDouble(params, "optimism",
                               options.contribution_optimism));
        CEP_ASSIGN_OR_RETURN(
            options.cost_pessimism,
            ShedderParamDouble(params, "pessimism", options.cost_pessimism));
        const auto backend = params.find("backend");
        if (backend != params.end()) {
          if (backend->second == "sketch") {
            options.backend = StateShedderOptions::Backend::kSketch;
          } else if (backend->second != "exact") {
            return Status::InvalidArgument(
                "sbls backend must be exact or sketch, got '" +
                backend->second + "'");
          }
        }
        CEP_ASSIGN_OR_RETURN(
            uint64_t width,
            ShedderParamU64(params, "width", options.sketch_width));
        options.sketch_width = static_cast<size_t>(width);
        CEP_ASSIGN_OR_RETURN(
            uint64_t depth,
            ShedderParamU64(params, "depth", options.sketch_depth));
        options.sketch_depth = static_cast<size_t>(depth);
        CEP_ASSIGN_OR_RETURN(options.seed,
                             ShedderParamU64(params, "seed", options.seed));
        return ShedderPtr(
            std::make_unique<StateShedder>(std::move(options), env.schema));
      });
}

}  // namespace cep
