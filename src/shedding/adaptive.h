#ifndef CEPSHED_SHEDDING_ADAPTIVE_H_
#define CEPSHED_SHEDDING_ADAPTIVE_H_

#include <cstddef>

#include "engine/options.h"

namespace cep {

/// \brief Computes how many partial matches to drop for one overload episode.
///
/// kFixedFraction reproduces the paper's evaluation setting ("load shedding
/// affects 20% of the partial matches"). kAdaptive implements the §VI
/// follow-up idea — scale the amount with the severity of the overload:
///
///   fraction = min(max_fraction, fraction + gain · fraction · (µ/θ - 1))
///
/// so a latency just past the threshold sheds barely more than the base
/// fraction while a 5× overshoot sheds aggressively. Always returns at least
/// `min_victims` (when any runs exist) so a trigger makes progress.
size_t ComputeShedTarget(const ShedAmountOptions& options, size_t num_runs,
                         double latency_micros, double threshold_micros);

}  // namespace cep

#endif  // CEPSHED_SHEDDING_ADAPTIVE_H_
