#ifndef CEPSHED_SHEDDING_RANDOM_SHEDDER_H_
#define CEPSHED_SHEDDING_RANDOM_SHEDDER_H_

#include <string>

#include "common/rng.h"
#include "shedding/shedder.h"

namespace cep {

/// \brief RBLS — random shedding of partial matches (the paper's Table II
/// baseline). No models, no learning; victims are a uniform sample of R(t).
///
/// The RNG stream is checkpointed so a restored engine draws the same victim
/// sample the uninterrupted run would.
class RandomShedder final : public Shedder {
 public:
  explicit RandomShedder(uint64_t seed) : rng_(seed) {}

  std::string name() const override { return "RBLS"; }

  ShedDecision Decide(const ShedContext& ctx) override;

  Status SerializeTo(ckpt::Sink& sink) const override;
  Status RestoreFrom(ckpt::Source& source) override;

 private:
  Rng rng_;
};

/// \brief Expiring-first heuristic: sheds the partial matches with the least
/// remaining TTL (the intuition of the paper's §I example — matches about to
/// expire are the least likely to still complete). Model-free ablation
/// baseline between RBLS and SBLS. Stateless, so nothing to checkpoint.
class TtlShedder final : public Shedder {
 public:
  TtlShedder() = default;

  std::string name() const override { return "TTL"; }

  ShedDecision Decide(const ShedContext& ctx) override;
};

/// Registers the `rbls` and `ttl` strategies with the ShedderRegistry
/// (registry.h); called from the registry's EnsureRegistered, never directly.
void RegisterRandomShedders();

}  // namespace cep

#endif  // CEPSHED_SHEDDING_RANDOM_SHEDDER_H_
