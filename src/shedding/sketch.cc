#include "shedding/sketch.h"

#include <algorithm>
#include <istream>
#include <limits>
#include <ostream>

#include "common/hash.h"

namespace cep {

CountMinSketch::CountMinSketch(size_t width, size_t depth, uint64_t seed)
    : width_(width < 8 ? 8 : width),
      depth_(depth < 1 ? 1 : depth),
      rows_(width_ * depth_, 0.0) {
  row_seeds_.reserve(depth_);
  for (size_t d = 0; d < depth_; ++d) {
    row_seeds_.push_back(Mix64(seed + 0x9e3779b97f4a7c15ULL * (d + 1)));
  }
}

size_t CountMinSketch::Index(uint64_t key, size_t row) const {
  return row * width_ +
         static_cast<size_t>(Mix64(key ^ row_seeds_[row]) % width_);
}

void CountMinSketch::Add(uint64_t key, double amount) {
  if (amount <= 0) return;
  // Conservative update: raise only the cells at the current minimum.
  double min_val = rows_[Index(key, 0)];
  for (size_t d = 1; d < depth_; ++d) {
    min_val = std::min(min_val, rows_[Index(key, d)]);
  }
  const double target = min_val + amount;
  for (size_t d = 0; d < depth_; ++d) {
    double& cell = rows_[Index(key, d)];
    if (cell < target) cell = target;
  }
}

double CountMinSketch::Estimate(uint64_t key) const {
  double min_val = rows_[Index(key, 0)];
  for (size_t d = 1; d < depth_; ++d) {
    min_val = std::min(min_val, rows_[Index(key, d)]);
  }
  return min_val;
}

Status CountMinSketch::Save(std::ostream& out) const {
  out << "cmsketch " << width_ << " " << depth_ << "\n";
  for (const uint64_t seed : row_seeds_) out << seed << " ";
  out << "\n";
  // Cells must round-trip bit-exactly: the default ostream precision (6
  // significant figures) silently degrades the model on every save/load
  // cycle. max_digits10 digits reproduce any double, including subnormals.
  const std::streamsize saved_precision =
      out.precision(std::numeric_limits<double>::max_digits10);
  for (const double cell : rows_) out << cell << " ";
  out.precision(saved_precision);
  out << "\n";
  if (!out) return Status::IoError("failed writing sketch");
  return Status::OK();
}

Status CountMinSketch::Load(std::istream& in) {
  std::string tag;
  size_t width = 0, depth = 0;
  if (!(in >> tag >> width >> depth) || tag != "cmsketch") {
    return Status::ParseError("not a count-min snapshot");
  }
  if (width != width_ || depth != depth_) {
    return Status::InvalidArgument(
        "count-min snapshot shape mismatch: configure the same width/depth");
  }
  for (auto& seed : row_seeds_) {
    if (!(in >> seed)) return Status::ParseError("truncated sketch seeds");
  }
  for (auto& cell : rows_) {
    if (!(in >> cell)) return Status::ParseError("truncated sketch rows");
  }
  return Status::OK();
}

void CountMinSketch::Clear() {
  std::fill(rows_.begin(), rows_.end(), 0.0);
}

void CountMinSketch::SerializeTo(ckpt::Sink& sink) const {
  sink.WriteU64(width_);
  sink.WriteU64(depth_);
  for (const uint64_t seed : row_seeds_) sink.WriteU64(seed);
  for (const double cell : rows_) sink.WriteDouble(cell);
}

Status CountMinSketch::RestoreFrom(ckpt::Source& source) {
  CEP_ASSIGN_OR_RETURN(uint64_t width, source.ReadU64());
  CEP_ASSIGN_OR_RETURN(uint64_t depth, source.ReadU64());
  if (width != width_ || depth != depth_) {
    return Status::InvalidArgument(
        "count-min snapshot shape mismatch: configure the same width/depth");
  }
  for (auto& seed : row_seeds_) {
    CEP_ASSIGN_OR_RETURN(seed, source.ReadU64());
  }
  for (auto& cell : rows_) {
    CEP_ASSIGN_OR_RETURN(cell, source.ReadDouble());
  }
  return Status::OK();
}

SketchCounterBackend::SketchCounterBackend(size_t width, size_t depth,
                                           uint64_t seed)
    : num_(width, depth, seed), den_(width, depth, Mix64(seed) + 1) {}

void SketchCounterBackend::Add(uint64_t key, double num_delta,
                               double den_delta) {
  num_.Add(key, num_delta);
  den_.Add(key, den_delta);
}

double SketchCounterBackend::Ratio(uint64_t key, double fallback) const {
  const double den = den_.Estimate(key);
  if (den <= 0) return fallback;
  return num_.Estimate(key) / den;
}

double SketchCounterBackend::Support(uint64_t key) const {
  return den_.Estimate(key);
}

size_t SketchCounterBackend::MemoryBytes() const {
  return num_.MemoryBytes() + den_.MemoryBytes();
}

Status SketchCounterBackend::Save(std::ostream& out) const {
  CEP_RETURN_NOT_OK(num_.Save(out));
  return den_.Save(out);
}

Status SketchCounterBackend::Load(std::istream& in) {
  CEP_RETURN_NOT_OK(num_.Load(in));
  return den_.Load(in);
}

void SketchCounterBackend::Clear() {
  num_.Clear();
  den_.Clear();
}

Status SketchCounterBackend::SerializeTo(ckpt::Sink& sink) const {
  num_.SerializeTo(sink);
  den_.SerializeTo(sink);
  return Status::OK();
}

Status SketchCounterBackend::RestoreFrom(ckpt::Source& source) {
  CEP_RETURN_NOT_OK(num_.RestoreFrom(source));
  return den_.RestoreFrom(source);
}

}  // namespace cep
