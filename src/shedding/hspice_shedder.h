#ifndef CEPSHED_SHEDDING_HSPICE_SHEDDER_H_
#define CEPSHED_SHEDDING_HSPICE_SHEDDER_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "shedding/contribution_model.h"
#include "shedding/shedder.h"

namespace cep {

/// \brief Configuration of the hSPICE-style input shedder.
struct HspiceShedderOptions {
  /// Baseline probability of dropping a zero-utility event while overloaded;
  /// the effective probability is drop_probability · (1 - utility).
  double drop_probability = 0.2;
  /// Drop only while µ(t) > θ (true) or unconditionally (false).
  bool only_when_overloaded = true;
  /// Prior utility for (type, state) cells without observations.
  double utility_optimism = 1.0;
  uint64_t seed = 1;
};

/// \brief hSPICE — state-aware input shedding (Slo et al., "hSPICE:
/// State-Aware Event Shedding in Complex Event Processing", DEBS'20;
/// PAPERS.md).
///
/// Learns the utility of an event *relative to the automaton state of the
/// partial match consuming it*: a per-(event type, NFA state) table of the
/// empirical probability that binding a type-T event while entering state s
/// leads to a complete match. On overload, an arriving event's utility is
/// the live-state-occupancy-weighted mean over the run store's state column
/// (plus the start state, since the event may open a new window), and the
/// event is dropped with probability drop_probability · (1 - utility).
///
/// Deviation note (docs/SHEDDING.md): the original sheds an event per
/// partial match (a dropped event may still extend other PMs); this engine
/// drops input globally, so the per-PM utilities are aggregated over the
/// current state occupancy — the run store's SoA state column makes that a
/// single dense scan. Learning is trail-free (cells re-derived from bindings
/// at match time via a variable→state map), so the strategy composes inside
/// HybridShedder with any trail-owning state-side strategy.
class HspiceShedder final : public Shedder {
 public:
  explicit HspiceShedder(HspiceShedderOptions options);

  std::string name() const override { return "HSPICE"; }

  void Attach(const Nfa& nfa) override;

  void OnRunCreated(Run* run, const Event& event, Timestamp now) override;
  void OnRunExtended(const Run* parent, Run* child, const Event& event,
                     Timestamp now) override;
  void OnMatchEmitted(const Run& run, Timestamp now) override;

  /// Event probes only: never selects state victims.
  ShedDecision Decide(const ShedContext& ctx) override;

  /// Per-state completion probability of the run's current state, from the
  /// state-marginal model (the calibration monitor's completion estimate).
  bool DescribeVictim(const Run& run, Timestamp now,
                      ShedVictimScores* scores) const override;

  /// Learned utility of (type, state), clamped to [0, 1] (for tests).
  double Utility(EventTypeId type, int state) const;

  const HspiceShedderOptions& options() const { return options_; }

  Status SerializeTo(ckpt::Sink& sink) const override;
  Status RestoreFrom(ckpt::Source& source) override;

 private:
  uint64_t CellKey(EventTypeId type, int state) const;
  uint64_t StateKey(int state) const;

  HspiceShedderOptions options_;
  ContributionModel utility_;
  /// State-marginal completion model (denominator-shared with utility_ but
  /// keyed by state alone), feeding DescribeVictim.
  ContributionModel state_marginal_;
  Rng rng_;
  int num_states_ = 0;
  int start_state_ = 0;
  /// Pattern variable -> NFA state a run occupies right after binding it
  /// (resolved in Attach; -1 when a variable never appears on a take edge).
  std::vector<int> var_state_;
  /// Scratch occupancy histogram, sized to num_states_ (reused per probe).
  std::vector<uint32_t> occupancy_;
};

/// Registers the `hspice` strategy with the ShedderRegistry (registry.h);
/// called from the registry's EnsureRegistered, never directly.
void RegisterHspiceShedder();

}  // namespace cep

#endif  // CEPSHED_SHEDDING_HSPICE_SHEDDER_H_
