#include "shedding/hspice_shedder.h"

#include <algorithm>
#include <array>
#include <memory>

#include "common/hash.h"
#include "engine/run_store.h"
#include "shedding/registry.h"

namespace cep {

namespace {

uint64_t ConfigFingerprint(int num_states) {
  return Mix64(0x45b1ce + static_cast<uint64_t>(num_states));
}

}  // namespace

HspiceShedder::HspiceShedder(HspiceShedderOptions options)
    : options_(options),
      utility_(std::make_unique<ExactCounterBackend>()),
      state_marginal_(std::make_unique<ExactCounterBackend>()),
      rng_(options.seed) {}

void HspiceShedder::Attach(const Nfa& nfa) {
  num_states_ = static_cast<int>(nfa.num_states());
  start_state_ = nfa.start_state();
  occupancy_.assign(static_cast<size_t>(num_states_), 0);
  // Resolve which state a run occupies right after binding each pattern
  // variable: the target of the take edge binding it (Kleene self-loops keep
  // the run in the looping state). Used to re-derive (type, state) cells
  // from run bindings at match time without a model trail on the run.
  int num_vars = 0;
  for (const State& state : nfa.states()) {
    for (const Edge& edge : state.edges) {
      num_vars = std::max(num_vars, edge.var_index + 1);
    }
  }
  var_state_.assign(static_cast<size_t>(num_vars), -1);
  for (const State& state : nfa.states()) {
    for (const Edge& edge : state.edges) {
      if (edge.var_index < 0) continue;
      int& slot = var_state_[static_cast<size_t>(edge.var_index)];
      if (slot != -1) continue;
      if (edge.kind == EdgeKind::kTake) {
        slot = edge.target;
      } else if (edge.kind == EdgeKind::kKleeneTake) {
        slot = state.id;
      }
    }
  }
}

uint64_t HspiceShedder::CellKey(EventTypeId type, int state) const {
  return Mix64((static_cast<uint64_t>(type) + 1) * 0x9e3779b97f4a7c15ULL ^
               ((static_cast<uint64_t>(state) + 1) * 0xc2b2ae3d27d4eb4fULL));
}

uint64_t HspiceShedder::StateKey(int state) const {
  return Mix64((static_cast<uint64_t>(state) + 1) * 0xff51afd7ed558ccdULL);
}

void HspiceShedder::OnRunCreated(Run* run, const Event& event, Timestamp now) {
  (void)now;
  utility_.Observe(CellKey(event.type(), run->state()));
  state_marginal_.Observe(StateKey(run->state()));
}

void HspiceShedder::OnRunExtended(const Run* parent, Run* child,
                                  const Event& event, Timestamp now) {
  (void)parent;
  (void)now;
  utility_.Observe(CellKey(event.type(), child->state()));
  state_marginal_.Observe(StateKey(child->state()));
}

void HspiceShedder::OnMatchEmitted(const Run& run, Timestamp now) {
  (void)now;
  std::vector<uint64_t> cells;
  std::vector<uint64_t> states;
  cells.reserve(static_cast<size_t>(run.size()));
  states.reserve(static_cast<size_t>(run.size()));
  for (int v = 0; v < run.num_variables(); ++v) {
    const int state =
        v < static_cast<int>(var_state_.size()) ? var_state_[v] : -1;
    if (state < 0) continue;
    for (const EventPtr& event : run.binding(v)) {
      cells.push_back(CellKey(event->type(), state));
      states.push_back(StateKey(state));
    }
  }
  utility_.Credit(cells);
  state_marginal_.Credit(states);
}

double HspiceShedder::Utility(EventTypeId type, int state) const {
  return std::clamp(
      utility_.Estimate(CellKey(type, state), options_.utility_optimism), 0.0,
      1.0);
}

ShedDecision HspiceShedder::Decide(const ShedContext& ctx) {
  ShedDecision decision;
  if (ctx.event == nullptr) return decision;  // never sheds state
  if (options_.only_when_overloaded && !ctx.overloaded) return decision;
  const EventTypeId type = ctx.event->type();
  double utility;
  if (num_states_ > 0) {
    // Occupancy-weighted mean utility over the live partial matches' states.
    // The run store's SoA state column gives a dense scan; without a store
    // (tests driving Decide directly) fall back to the run slots. The start
    // state always participates with weight 1: the event may open a new
    // window even when no run would consume it.
    std::fill(occupancy_.begin(), occupancy_.end(), 0u);
    const int32_t* states =
        ctx.store != nullptr ? ctx.store->states() : nullptr;
    for (size_t i = 0; i < ctx.runs.size(); ++i) {
      if (ctx.runs[i] == nullptr) continue;
      const int state = states != nullptr ? static_cast<int>(states[i])
                                          : ctx.runs[i]->state();
      if (state >= 0 && state < num_states_) {
        ++occupancy_[static_cast<size_t>(state)];
      }
    }
    if (start_state_ >= 0 && start_state_ < num_states_) {
      ++occupancy_[static_cast<size_t>(start_state_)];
    }
    double weighted = 0.0;
    uint64_t total = 0;
    for (int s = 0; s < num_states_; ++s) {
      const uint32_t occ = occupancy_[static_cast<size_t>(s)];
      if (occ == 0) continue;
      weighted += static_cast<double>(occ) * Utility(type, s);
      total += occ;
    }
    utility = total > 0 ? weighted / static_cast<double>(total)
                        : options_.utility_optimism;
  } else {
    utility = options_.utility_optimism;
  }
  decision.drop_event = rng_.NextBernoulli(
      options_.drop_probability * (1.0 - std::clamp(utility, 0.0, 1.0)));
  return decision;
}

bool HspiceShedder::DescribeVictim(const Run& run, Timestamp now,
                                   ShedVictimScores* scores) const {
  (void)now;
  scores->c_plus = std::clamp(
      state_marginal_.Estimate(StateKey(run.state()),
                               options_.utility_optimism),
      0.0, 1.0);
  scores->c_minus = 0.0;
  scores->score = scores->c_plus;
  scores->time_slice = -1;
  return true;
}

Status HspiceShedder::SerializeTo(ckpt::Sink& sink) const {
  sink.WriteU64(ConfigFingerprint(num_states_));
  CEP_RETURN_NOT_OK(utility_.backend().SerializeTo(sink));
  CEP_RETURN_NOT_OK(state_marginal_.backend().SerializeTo(sink));
  for (const uint64_t word : rng_.state()) sink.WriteU64(word);
  return Status::OK();
}

Status HspiceShedder::RestoreFrom(ckpt::Source& source) {
  CEP_ASSIGN_OR_RETURN(uint64_t fingerprint, source.ReadU64());
  if (fingerprint != ConfigFingerprint(num_states_)) {
    return Status::InvalidArgument(
        "hspice snapshot was written under a different configuration "
        "(automaton shape)");
  }
  CEP_RETURN_NOT_OK(utility_.mutable_backend()->RestoreFrom(source));
  CEP_RETURN_NOT_OK(state_marginal_.mutable_backend()->RestoreFrom(source));
  std::array<uint64_t, 4> state;
  for (auto& word : state) {
    CEP_ASSIGN_OR_RETURN(word, source.ReadU64());
  }
  rng_.set_state(state);
  return Status::OK();
}

void RegisterHspiceShedder() {
  ShedderRegistry::Register(
      {"hspice",
       "hSPICE-style input shedding by learned (event type, NFA state) "
       "utility over live run-store occupancy",
       {{"drop", "baseline drop probability while overloaded (default 0.2)"},
        {"optimism", "prior utility for unseen cells (default 1)"},
        {"seed", "RNG seed for the drop stream (default 1)"}}},
      [](const ShedderParams& params,
         const ShedderEnv&) -> Result<ShedderPtr> {
        HspiceShedderOptions options;
        CEP_ASSIGN_OR_RETURN(
            options.drop_probability,
            ShedderParamDouble(params, "drop", options.drop_probability));
        CEP_ASSIGN_OR_RETURN(
            options.utility_optimism,
            ShedderParamDouble(params, "optimism", options.utility_optimism));
        CEP_ASSIGN_OR_RETURN(options.seed,
                             ShedderParamU64(params, "seed", options.seed));
        return ShedderPtr(std::make_unique<HspiceShedder>(options));
      });
}

}  // namespace cep
