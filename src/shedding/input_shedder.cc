#include "shedding/input_shedder.h"

#include <algorithm>

#include "shedding/registry.h"

namespace cep {

void InputShedder::Attach(const Nfa& nfa) {
  // Resolve type utilities against the query's event types. Types not named
  // in the map get utility 0 (fully droppable).
  EventTypeId max_type = 0;
  for (const auto& var : nfa.query().pattern) {
    max_type = std::max(max_type, var.type_id);
  }
  drop_prob_by_type_.assign(max_type + 1, options_.drop_probability);
  for (const auto& var : nfa.query().pattern) {
    const auto it = options_.type_utility.find(var.event_type);
    if (it != options_.type_utility.end()) {
      const double utility = std::clamp(it->second, 0.0, 1.0);
      drop_prob_by_type_[var.type_id] =
          options_.drop_probability * (1.0 - utility);
    }
  }
}

bool InputShedder::ShouldDropEvent(const Event& event, bool overloaded) {
  if (options_.only_when_overloaded && !overloaded) return false;
  const double p = event.type() < drop_prob_by_type_.size()
                       ? drop_prob_by_type_[event.type()]
                       : options_.drop_probability;
  return rng_.NextBernoulli(p);
}

Status InputShedder::SerializeTo(ckpt::Sink& sink) const {
  for (const uint64_t word : rng_.state()) sink.WriteU64(word);
  return Status::OK();
}

Status InputShedder::RestoreFrom(ckpt::Source& source) {
  std::array<uint64_t, 4> state;
  for (auto& word : state) {
    CEP_ASSIGN_OR_RETURN(word, source.ReadU64());
  }
  rng_.set_state(state);
  return Status::OK();
}

void RegisterInputShedder() {
  ShedderRegistry::Register(
      {"ibls",
       "input-based baseline: Bernoulli-drops arriving events while overloaded",
       {{"drop", "drop probability while overloaded (default 0.2)"},
        {"seed", "RNG seed for the drop stream (default 1)"}}},
      [](const ShedderParams& params,
         const ShedderEnv&) -> Result<ShedderPtr> {
        InputShedderOptions options;
        CEP_ASSIGN_OR_RETURN(options.drop_probability,
                             ShedderParamDouble(params, "drop", 0.2));
        CEP_ASSIGN_OR_RETURN(options.seed, ShedderParamU64(params, "seed", 1));
        return ShedderPtr(std::make_unique<InputShedder>(std::move(options)));
      });
}

}  // namespace cep
