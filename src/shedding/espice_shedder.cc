#include "shedding/espice_shedder.h"

#include <algorithm>
#include <array>
#include <memory>
#include <vector>

#include "common/hash.h"
#include "shedding/registry.h"

namespace cep {

namespace {

/// Fingerprint of the configuration aspects that determine cell keys.
uint64_t ConfigFingerprint(const EspiceShedderOptions& options,
                           const TimeSlicer& slicer) {
  uint64_t h = Mix64(0xe591ce + static_cast<uint64_t>(options.position_buckets));
  return HashCombine(h, static_cast<uint64_t>(slicer.window()));
}

}  // namespace

EspiceShedder::EspiceShedder(EspiceShedderOptions options)
    : options_(options),
      utility_(std::make_unique<ExactCounterBackend>()),
      rng_(options.seed) {}

void EspiceShedder::Attach(const Nfa& nfa) {
  slicer_ = TimeSlicer(nfa.window(), options_.position_buckets);
}

uint64_t EspiceShedder::CellKey(EventTypeId type, int bucket) const {
  return Mix64((static_cast<uint64_t>(type) + 1) * 0x9e3779b97f4a7c15ULL ^
               (static_cast<uint64_t>(bucket) + 0xe591ce));
}

void EspiceShedder::OnRunCreated(Run* run, const Event& event, Timestamp now) {
  (void)run;
  (void)now;
  // The creating event opens the window, so its position is bucket 0.
  utility_.Observe(CellKey(event.type(), 0));
}

void EspiceShedder::OnRunExtended(const Run* parent, Run* child,
                                  const Event& event, Timestamp now) {
  (void)parent;
  // Position of the event within the extended run's window.
  utility_.Observe(
      CellKey(event.type(), slicer_.Slice(child->start_ts(), now)));
}

void EspiceShedder::OnMatchEmitted(const Run& run, Timestamp now) {
  (void)now;
  // Re-derive each bound event's (type, position) cell from the bindings
  // instead of keeping a model trail on the run — events were bound at their
  // own timestamps, so the buckets recompute exactly. Trail-free learning is
  // what lets HybridShedder pair this strategy with a trail-owning state-side
  // strategy on the same runs.
  std::vector<uint64_t> cells;
  cells.reserve(static_cast<size_t>(run.size()));
  for (int v = 0; v < run.num_variables(); ++v) {
    for (const EventPtr& event : run.binding(v)) {
      cells.push_back(CellKey(event->type(),
                              slicer_.Slice(run.start_ts(),
                                            event->timestamp())));
    }
  }
  utility_.Credit(cells);
}

double EspiceShedder::Utility(EventTypeId type, int bucket) const {
  return std::clamp(
      utility_.Estimate(CellKey(type, bucket), options_.utility_optimism), 0.0,
      1.0);
}

ShedDecision EspiceShedder::Decide(const ShedContext& ctx) {
  ShedDecision decision;
  if (ctx.event == nullptr) return decision;  // never sheds state
  if (options_.only_when_overloaded && !ctx.overloaded) return decision;
  // The event's window position is measured against the oldest open window,
  // i.e. the oldest live partial match. The run store compacts stably with
  // the oldest run first, so this scan terminates at the first live slot.
  int bucket = 0;
  for (const RunPtr& run : ctx.runs) {
    if (run != nullptr) {
      bucket = slicer_.Slice(run->start_ts(), ctx.now);
      break;
    }
  }
  const double utility = Utility(ctx.event->type(), bucket);
  decision.drop_event =
      rng_.NextBernoulli(options_.drop_probability * (1.0 - utility));
  return decision;
}

bool EspiceShedder::DescribeVictim(const Run& run, Timestamp now,
                                   ShedVictimScores* scores) const {
  double sum = 0.0;
  int n = 0;
  for (int v = 0; v < run.num_variables(); ++v) {
    for (const EventPtr& event : run.binding(v)) {
      sum += std::clamp(
          utility_.Estimate(CellKey(event->type(),
                                    slicer_.Slice(run.start_ts(),
                                                  event->timestamp())),
                            options_.utility_optimism),
          0.0, 1.0);
      ++n;
    }
  }
  scores->c_plus = n > 0 ? sum / n : options_.utility_optimism;
  scores->c_minus = 0.0;
  scores->score = scores->c_plus;
  scores->time_slice = slicer_.Slice(run.start_ts(), now);
  return true;
}

Status EspiceShedder::SerializeTo(ckpt::Sink& sink) const {
  sink.WriteU64(ConfigFingerprint(options_, slicer_));
  CEP_RETURN_NOT_OK(utility_.backend().SerializeTo(sink));
  for (const uint64_t word : rng_.state()) sink.WriteU64(word);
  return Status::OK();
}

Status EspiceShedder::RestoreFrom(ckpt::Source& source) {
  CEP_ASSIGN_OR_RETURN(uint64_t fingerprint, source.ReadU64());
  if (fingerprint != ConfigFingerprint(options_, slicer_)) {
    return Status::InvalidArgument(
        "espice snapshot was written under a different configuration "
        "(position buckets / window)");
  }
  CEP_RETURN_NOT_OK(utility_.mutable_backend()->RestoreFrom(source));
  std::array<uint64_t, 4> state;
  for (auto& word : state) {
    CEP_ASSIGN_OR_RETURN(word, source.ReadU64());
  }
  rng_.set_state(state);
  return Status::OK();
}

void RegisterEspiceShedder() {
  ShedderRegistry::Register(
      {"espice",
       "eSPICE-style input shedding by learned (event type, window position) "
       "utility",
       {{"drop", "baseline drop probability while overloaded (default 0.2)"},
        {"buckets", "window-position buckets (default 16)"},
        {"optimism", "prior utility for unseen cells (default 1)"},
        {"seed", "RNG seed for the drop stream (default 1)"}}},
      [](const ShedderParams& params,
         const ShedderEnv&) -> Result<ShedderPtr> {
        EspiceShedderOptions options;
        CEP_ASSIGN_OR_RETURN(
            options.drop_probability,
            ShedderParamDouble(params, "drop", options.drop_probability));
        CEP_ASSIGN_OR_RETURN(
            uint64_t buckets,
            ShedderParamU64(params, "buckets",
                            static_cast<uint64_t>(options.position_buckets)));
        options.position_buckets = static_cast<int>(buckets);
        CEP_ASSIGN_OR_RETURN(
            options.utility_optimism,
            ShedderParamDouble(params, "optimism", options.utility_optimism));
        CEP_ASSIGN_OR_RETURN(options.seed,
                             ShedderParamU64(params, "seed", options.seed));
        return ShedderPtr(std::make_unique<EspiceShedder>(options));
      });
}

}  // namespace cep
