#include "shedding/registry.h"

#include <algorithm>
#include <cctype>
#include <mutex>

#include "common/string_util.h"
#include "shedding/espice_shedder.h"
#include "shedding/hspice_shedder.h"
#include "shedding/hybrid_shedder.h"
#include "shedding/input_shedder.h"
#include "shedding/pspice_shedder.h"
#include "shedding/random_shedder.h"
#include "shedding/state_shedder.h"

namespace cep {

namespace {

struct Entry {
  ShedderStrategyInfo info;
  ShedderRegistry::Factory factory;
};

std::map<std::string, Entry>& Registry() {
  static auto* registry = new std::map<std::string, Entry>();
  return *registry;
}

// Strategies register through explicit per-unit functions invoked here, not
// through static initializers: the library is linked statically and an
// initializer in a translation unit nothing references would be stripped.
// Adding a strategy = adding its unit + one call below.
void EnsureRegistered() {
  static std::once_flag once;
  std::call_once(once, [] {
    ShedderRegistry::Register(
        {"none", "no shedding; the engine never drops events or runs", {}},
        [](const ShedderParams&, const ShedderEnv&) -> Result<ShedderPtr> {
          return ShedderPtr(nullptr);
        });
    RegisterInputShedder();
    RegisterRandomShedders();
    RegisterStateShedder();
    RegisterEspiceShedder();
    RegisterHspiceShedder();
    RegisterPspiceShedder();
    RegisterHybridShedder();
  });
}

std::string Lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

}  // namespace

void ShedderRegistry::Register(ShedderStrategyInfo info, Factory factory) {
  const std::string name = info.name;
  Registry()[name] = Entry{std::move(info), std::move(factory)};
}

Result<std::pair<std::string, ShedderParams>> ShedderRegistry::ParseSpec(
    std::string_view spec) {
  const std::string trimmed{StripWhitespace(spec)};
  std::string name = trimmed;
  ShedderParams params;
  const size_t open = trimmed.find('(');
  if (open != std::string::npos) {
    if (trimmed.back() != ')') {
      return Status::ParseError("shedder spec '" + trimmed +
                                "' is missing the closing ')'");
    }
    name = trimmed.substr(0, open);
    const std::string body =
        trimmed.substr(open + 1, trimmed.size() - open - 2);
    if (!StripWhitespace(body).empty()) {
      for (const std::string& item : SplitString(body, ',')) {
        const std::string token{StripWhitespace(item)};
        const size_t eq = token.find('=');
        if (eq == std::string::npos || eq == 0) {
          return Status::ParseError("shedder spec expects key=val, got '" +
                                    token + "'");
        }
        // Strip around '=' so "bound =5" and "bound=5" name the same knob:
        // un-stripped keys used to slip past this duplicate check and fail
        // later with a confusing unknown-option error (or, for known knobs,
        // silently last-win in the factory's param map).
        const std::string key{StripWhitespace(token.substr(0, eq))};
        const std::string value{StripWhitespace(token.substr(eq + 1))};
        if (key.empty()) {
          return Status::ParseError("shedder spec expects key=val, got '" +
                                    token + "'");
        }
        if (!params.emplace(key, value).second) {
          return Status::InvalidArgument("duplicate shedder option '" + key +
                                         "'");
        }
      }
    }
  }
  name = Lower(StripWhitespace(name));
  if (name.empty()) {
    // Hard configuration error, not a recoverable parse problem: an
    // empty/whitespace-only spec (or "(...)" with no name) means the caller
    // passed no strategy at all.
    return Status::InvalidArgument("empty shedder spec");
  }
  return std::make_pair(name, std::move(params));
}

Result<ShedderPtr> ShedderRegistry::Make(std::string_view spec,
                                         const ShedderEnv& env) {
  EnsureRegistered();
  CEP_ASSIGN_OR_RETURN(auto parsed, ParseSpec(spec));
  const auto it = Registry().find(parsed.first);
  if (it == Registry().end()) {
    return Status::InvalidArgument("unknown shedder '" + parsed.first +
                                   "' (see ListStrategies)");
  }
  // The spec was written for this strategy alone, so a key it does not know
  // is a typo, not another subsystem's option.
  for (const auto& [key, value] : parsed.second) {
    (void)value;
    const auto& knobs = it->second.info.knobs;
    const bool known =
        std::any_of(knobs.begin(), knobs.end(),
                    [&](const ShedderKnob& k) { return k.key == key; });
    if (!known) {
      return Status::InvalidArgument("shedder '" + parsed.first +
                                     "' has no option '" + key + "'");
    }
  }
  return it->second.factory(parsed.second, env);
}

Result<ShedderPtr> ShedderRegistry::MakeFromParams(const std::string& name,
                                                   const ShedderParams& params,
                                                   const ShedderEnv& env) {
  EnsureRegistered();
  const auto it = Registry().find(Lower(name));
  if (it == Registry().end()) {
    return Status::InvalidArgument("unknown shedder '" + name +
                                   "' (see ListStrategies)");
  }
  // Flat option maps carry engine options too; keep only this strategy's
  // knobs so factories see a clean parameter set.
  ShedderParams filtered;
  for (const ShedderKnob& knob : it->second.info.knobs) {
    const auto p = params.find(knob.key);
    if (p != params.end()) filtered.emplace(p->first, p->second);
  }
  return it->second.factory(filtered, env);
}

std::vector<ShedderStrategyInfo> ShedderRegistry::ListStrategies() {
  EnsureRegistered();
  std::vector<ShedderStrategyInfo> out;
  out.reserve(Registry().size());
  for (const auto& [name, entry] : Registry()) {
    (void)name;
    out.push_back(entry.info);
  }
  return out;  // map iteration is already name-sorted
}

bool ShedderRegistry::Has(const std::string& name) {
  EnsureRegistered();
  return Registry().count(Lower(name)) > 0;
}

Result<uint64_t> ShedderParamU64(const ShedderParams& params,
                                 const std::string& key, uint64_t fallback) {
  const auto it = params.find(key);
  if (it == params.end()) return fallback;
  CEP_ASSIGN_OR_RETURN(int64_t v, ParseInt64(it->second));
  if (v < 0) {
    return Status::InvalidArgument("option " + key + " must be >= 0");
  }
  return static_cast<uint64_t>(v);
}

Result<double> ShedderParamDouble(const ShedderParams& params,
                                  const std::string& key, double fallback) {
  const auto it = params.find(key);
  if (it == params.end()) return fallback;
  return ParseDouble(it->second);
}

Result<PmHashOptions> ParsePmHashSpec(std::string_view spec,
                                      double bucket_width) {
  PmHashOptions options;
  options.numeric_bucket_width = bucket_width;
  std::string normalized(spec);
  // Inline specs cannot contain ',' (it separates parameters), so selector
  // lists accept ';' as an equivalent separator.
  std::replace(normalized.begin(), normalized.end(), ';', ',');
  if (normalized.empty()) return options;
  for (const std::string& item : SplitString(normalized, ',')) {
    const size_t colon = item.find(':');
    if (colon == std::string::npos) {
      return Status::ParseError("hash expects type:attr, got '" + item + "'");
    }
    options.attributes.push_back(
        {item.substr(0, colon), item.substr(colon + 1)});
  }
  return options;
}

}  // namespace cep
