#ifndef CEPSHED_SHEDDING_TIME_SLICE_H_
#define CEPSHED_SHEDDING_TIME_SLICE_H_

#include <cstdint>

#include "common/time.h"

namespace cep {

/// \brief Discretises the age of a partial match (time elapsed since its
/// first event, relative to the query window) into a fixed number of slices.
///
/// The paper's models are defined per relative time point; maintaining them
/// at full resolution would be "expensive, especially with large time
/// windows", so statistics are kept per time slice, and the slice count is
/// the accuracy/overhead tuning knob (paper §IV-A, ablation B).
class TimeSlicer {
 public:
  TimeSlicer(Duration window, int num_slices)
      : window_(window > 0 ? window : 1),
        num_slices_(num_slices > 0 ? num_slices : 1) {}

  /// Slice index in [0, num_slices) for a partial match created at
  /// `start_ts`, observed at `now`. Ages beyond the window clamp to the last
  /// slice.
  int Slice(Timestamp start_ts, Timestamp now) const {
    Duration age = now - start_ts;
    if (age < 0) age = 0;
    if (age >= window_) return num_slices_ - 1;
    // age * num_slices_ overflows int64 once window_ > INT64_MAX/num_slices_
    // (giant WITHIN windows); widen the intermediate instead of dividing
    // first, which would mis-bucket windows not divisible by the slice count.
    return static_cast<int>(
        (static_cast<__int128>(age) * num_slices_) / window_);
  }

  /// Remaining time-to-live as a fraction of the window, in [0, 1].
  double TtlFraction(Timestamp start_ts, Timestamp now) const {
    const Duration age = now - start_ts;
    if (age <= 0) return 1.0;
    if (age >= window_) return 0.0;
    return 1.0 - static_cast<double>(age) / static_cast<double>(window_);
  }

  int num_slices() const { return num_slices_; }
  Duration window() const { return window_; }

 private:
  Duration window_;
  int num_slices_;
};

}  // namespace cep

#endif  // CEPSHED_SHEDDING_TIME_SLICE_H_
