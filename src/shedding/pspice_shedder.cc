#include "shedding/pspice_shedder.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "common/hash.h"
#include "shedding/registry.h"

namespace cep {

namespace {

uint64_t ConfigFingerprint(const PspiceShedderOptions& options,
                           const TimeSlicer& slicer) {
  uint64_t h = Mix64(0x951ce + static_cast<uint64_t>(options.time_slices));
  return HashCombine(h, static_cast<uint64_t>(slicer.window()));
}

}  // namespace

PspiceShedder::PspiceShedder(PspiceShedderOptions options)
    : options_(options),
      completion_(std::make_unique<ExactCounterBackend>()),
      cost_(std::make_unique<ExactCounterBackend>()) {}

void PspiceShedder::Attach(const Nfa& nfa) {
  slicer_ = TimeSlicer(nfa.window(), options_.time_slices);
}

uint64_t PspiceShedder::CellKey(int state, int slice) const {
  return Mix64((static_cast<uint64_t>(state) + 1) * 0x9e3779b97f4a7c15ULL +
               static_cast<uint64_t>(slice) + 0x951ce);
}

uint64_t PspiceShedder::KeyFor(const Run& run, Timestamp now) const {
  if (!run.trail().empty()) return run.trail().back();
  return CellKey(run.state(), slicer_.Slice(run.start_ts(), now));
}

void PspiceShedder::OnRunCreated(Run* run, const Event& event, Timestamp now) {
  (void)event;
  const uint64_t key =
      CellKey(run->state(), slicer_.Slice(run->start_ts(), now));
  run->PushTrail(key);
  completion_.Observe(key);
  cost_.Observe(key);
}

void PspiceShedder::OnRunExtended(const Run* parent, Run* child,
                                  const Event& event, Timestamp now) {
  (void)event;
  const uint64_t key =
      CellKey(child->state(), slicer_.Slice(child->start_ts(), now));
  child->PushTrail(key);
  completion_.Observe(key);
  cost_.Observe(key);
  if (parent != nullptr) {
    // Every cell on the parent's lineage just caused one more derived
    // partial match — the learned signal behind remaining(r).
    cost_.Charge(parent->trail());
  }
}

void PspiceShedder::OnMatchEmitted(const Run& run, Timestamp now) {
  (void)now;
  completion_.Credit(run.trail());
}

ShedVictimScores PspiceShedder::ScoresFor(const Run& run, Timestamp now) const {
  ShedVictimScores scores;
  const uint64_t key = KeyFor(run, now);
  scores.c_plus = completion_.Estimate(key, options_.completion_optimism);
  // Expected total cost of carrying the run to its window close: the work
  // already sunk (bound events) plus the learned descendant count scaled by
  // the remaining TTL fraction.
  const double remaining = cost_.Estimate(key, options_.cost_pessimism) *
                           slicer_.TtlFraction(run.start_ts(), now);
  scores.c_minus = static_cast<double>(run.size()) + remaining;
  scores.score =
      scores.c_plus / (options_.ratio_epsilon + scores.c_minus);
  scores.time_slice = slicer_.Slice(run.start_ts(), now);
  return scores;
}

ShedDecision PspiceShedder::Decide(const ShedContext& ctx) {
  // Partial-match shedding only; event probes fall through to the base.
  if (ctx.event != nullptr) return Shedder::Decide(ctx);
  struct Candidate {
    double score;
    Timestamp start_ts;
    size_t index;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(ctx.runs.size());
  for (size_t i = 0; i < ctx.runs.size(); ++i) {
    if (ctx.runs[i] == nullptr) continue;
    const Run& run = *ctx.runs[i];
    const uint64_t key = KeyFor(run, ctx.now);
    const double completion =
        completion_.Estimate(key, options_.completion_optimism);
    const double remaining = cost_.Estimate(key, options_.cost_pessimism) *
                             slicer_.TtlFraction(run.start_ts(), ctx.now);
    const double total_cost = static_cast<double>(run.size()) + remaining;
    candidates.push_back(
        Candidate{completion / (options_.ratio_epsilon + total_cost),
                  run.start_ts(), i});
  }
  ShedDecision decision;
  if (candidates.empty() || ctx.target == 0) return decision;
  const size_t target = std::min(ctx.target, candidates.size());
  // Lowest completion-per-cost first; ties towards expiring runs.
  const auto worse = [](const Candidate& a, const Candidate& b) {
    if (a.score != b.score) return a.score < b.score;
    if (a.start_ts != b.start_ts) return a.start_ts < b.start_ts;
    return a.index < b.index;
  };
  std::nth_element(candidates.begin(), candidates.begin() + (target - 1),
                   candidates.end(), worse);
  decision.victims.reserve(target);
  for (size_t i = 0; i < target; ++i) {
    ShedVictim victim;
    victim.index = candidates[i].index;
    if (ctx.want_scores) {
      victim.has_scores = true;
      victim.scores = ScoresFor(*ctx.runs[victim.index], ctx.now);
    }
    decision.victims.push_back(victim);
  }
  return decision;
}

Status PspiceShedder::SerializeTo(ckpt::Sink& sink) const {
  sink.WriteU64(ConfigFingerprint(options_, slicer_));
  CEP_RETURN_NOT_OK(completion_.backend().SerializeTo(sink));
  return cost_.backend().SerializeTo(sink);
}

Status PspiceShedder::RestoreFrom(ckpt::Source& source) {
  CEP_ASSIGN_OR_RETURN(uint64_t fingerprint, source.ReadU64());
  if (fingerprint != ConfigFingerprint(options_, slicer_)) {
    return Status::InvalidArgument(
        "pspice snapshot was written under a different configuration "
        "(time slices / window)");
  }
  CEP_RETURN_NOT_OK(completion_.mutable_backend()->RestoreFrom(source));
  return cost_.mutable_backend()->RestoreFrom(source);
}

void RegisterPspiceShedder() {
  ShedderRegistry::Register(
      {"pspice",
       "pSPICE-style partial-match shedding by completion probability per "
       "consumed+remaining cost",
       {{"slices", "relative-time slices (default 16)"},
        {"optimism", "prior completion probability for unseen cells "
                     "(default 1)"},
        {"pessimism", "prior remaining cost for unseen cells (default 0)"},
        {"eps", "ranking-ratio denominator stabiliser (default 0.001)"}}},
      [](const ShedderParams& params,
         const ShedderEnv&) -> Result<ShedderPtr> {
        PspiceShedderOptions options;
        CEP_ASSIGN_OR_RETURN(
            uint64_t slices,
            ShedderParamU64(params, "slices",
                            static_cast<uint64_t>(options.time_slices)));
        options.time_slices = static_cast<int>(slices);
        CEP_ASSIGN_OR_RETURN(options.completion_optimism,
                             ShedderParamDouble(params, "optimism",
                                                options.completion_optimism));
        CEP_ASSIGN_OR_RETURN(
            options.cost_pessimism,
            ShedderParamDouble(params, "pessimism", options.cost_pessimism));
        CEP_ASSIGN_OR_RETURN(
            options.ratio_epsilon,
            ShedderParamDouble(params, "eps", options.ratio_epsilon));
        return ShedderPtr(std::make_unique<PspiceShedder>(options));
      });
}

}  // namespace cep
