#include "shedding/hybrid_shedder.h"

#include <memory>

#include "engine/options.h"
#include "shedding/registry.h"

namespace cep {

ShedDecision HybridShedder::Decide(const ShedContext& ctx) {
  if (ctx.event != nullptr) {
    // Event probe → input side. At kEmergency the ladder forces the input
    // child active even when µ(t) momentarily dipped back under θ: input
    // shedding is the cheapest pressure valve and must not flap off while
    // the controller still considers the engine in distress.
    ShedContext probe = ctx;
    if (ctx.degradation_level >=
        static_cast<int>(DegradationLevel::kEmergency)) {
      probe.overloaded = true;
    }
    return input_->Decide(probe);
  }
  // Shed episode → state side.
  return state_->Decide(ctx);
}

void RegisterHybridShedder() {
  ShedderRegistry::Register(
      {"hybrid",
       "composes one input-side and one state-side strategy across the "
       "degradation ladder",
       {{"input", "input-side child strategy (default espice)"},
        {"state", "state-side child strategy (default pspice)"},
        // Shared knobs forwarded to whichever child understands them.
        {"seed", "forwarded to the children (see their defaults)"},
        {"drop", "forwarded to the input child"},
        {"buckets", "forwarded to the input child (espice)"},
        {"optimism", "forwarded to both children"},
        {"pessimism", "forwarded to the state child"},
        {"slices", "forwarded to the state child"},
        {"eps", "forwarded to the state child (pspice)"},
        {"hash", "forwarded to the state child (sbls)"},
        {"bucket", "forwarded to the state child (sbls)"},
        {"wplus", "forwarded to the state child (sbls)"},
        {"wminus", "forwarded to the state child (sbls)"},
        {"backend", "forwarded to the state child (sbls)"},
        {"width", "forwarded to the state child (sbls)"},
        {"depth", "forwarded to the state child (sbls)"}}},
      [](const ShedderParams& params,
         const ShedderEnv& env) -> Result<ShedderPtr> {
        const auto pick = [&params](const char* key, const char* fallback) {
          const auto it = params.find(key);
          return it == params.end() ? std::string(fallback) : it->second;
        };
        const std::string input_name = pick("input", "espice");
        const std::string state_name = pick("state", "pspice");
        for (const std::string& child : {input_name, state_name}) {
          if (child == "hybrid" || child == "none") {
            return Status::InvalidArgument(
                "hybrid children cannot be '" + child + "'");
          }
        }
        // MakeFromParams filters the shared knob set down to each child's
        // own parameters, so one flat spec configures both.
        CEP_ASSIGN_OR_RETURN(
            ShedderPtr input,
            ShedderRegistry::MakeFromParams(input_name, params, env));
        CEP_ASSIGN_OR_RETURN(
            ShedderPtr state,
            ShedderRegistry::MakeFromParams(state_name, params, env));
        if (input == nullptr || state == nullptr) {
          return Status::InvalidArgument("hybrid children cannot be 'none'");
        }
        return ShedderPtr(
            std::make_unique<HybridShedder>(std::move(input),
                                            std::move(state)));
      });
}

}  // namespace cep
