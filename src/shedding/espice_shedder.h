#ifndef CEPSHED_SHEDDING_ESPICE_SHEDDER_H_
#define CEPSHED_SHEDDING_ESPICE_SHEDDER_H_

#include <string>

#include "common/rng.h"
#include "shedding/contribution_model.h"
#include "shedding/shedder.h"
#include "shedding/time_slice.h"

namespace cep {

/// \brief Configuration of the eSPICE-style input shedder.
struct EspiceShedderOptions {
  /// Baseline probability of dropping a zero-utility event while overloaded;
  /// the effective probability is drop_probability · (1 - utility).
  double drop_probability = 0.2;
  /// Drop only while µ(t) > θ (true) or unconditionally (false).
  bool only_when_overloaded = true;
  /// Window-position discretisation granularity.
  int position_buckets = 16;
  /// Prior utility for (type, position) cells without observations; an
  /// optimistic prior protects never-before-seen cells from being dropped
  /// before the model has evidence.
  double utility_optimism = 1.0;
  uint64_t seed = 1;
};

/// \brief eSPICE — utility-driven input shedding (Slo et al., "eSPICE:
/// Probabilistic Load Shedding from Input Event Streams in Complex Event
/// Processing", Middleware'19; PAPERS.md).
///
/// Learns a per-(event type, window position) utility table: the empirical
/// probability that an event of type T arriving in position bucket p of a
/// window contributes to a complete match. On overload, arriving events are
/// dropped with probability drop_probability · (1 - utility), so low-utility
/// (type, position) combinations absorb the load shedding. Never discards
/// partial matches.
///
/// Deviation note (docs/SHEDDING.md): the original maintains utilities per
/// pattern window and sheds against a per-window budget; this implementation
/// measures an event's position relative to the *oldest live partial match*
/// (the oldest open window) and sheds probabilistically, which keeps the
/// decision O(1) without per-window bookkeeping and composes with this
/// engine's single overload signal µ(t) > θ. Learning is trail-free — cells
/// are recomputed from run bindings at match time — so the strategy composes
/// inside HybridShedder with any trail-owning state-side strategy.
class EspiceShedder final : public Shedder {
 public:
  explicit EspiceShedder(EspiceShedderOptions options);

  std::string name() const override { return "ESPICE"; }

  void Attach(const Nfa& nfa) override;

  void OnRunCreated(Run* run, const Event& event, Timestamp now) override;
  void OnRunExtended(const Run* parent, Run* child, const Event& event,
                     Timestamp now) override;
  void OnMatchEmitted(const Run& run, Timestamp now) override;

  /// Event probes only: never selects state victims.
  ShedDecision Decide(const ShedContext& ctx) override;

  /// Mean utility over the run's bound events (their (type, position)
  /// cells), read as a completion-probability proxy by the calibration
  /// monitor.
  bool DescribeVictim(const Run& run, Timestamp now,
                      ShedVictimScores* scores) const override;

  /// Learned utility of (type, position-bucket), clamped to [0, 1]
  /// (exposed for tests).
  double Utility(EventTypeId type, int bucket) const;

  const EspiceShedderOptions& options() const { return options_; }

  Status SerializeTo(ckpt::Sink& sink) const override;
  Status RestoreFrom(ckpt::Source& source) override;

 private:
  uint64_t CellKey(EventTypeId type, int bucket) const;

  EspiceShedderOptions options_;
  TimeSlicer slicer_{1, 1};
  ContributionModel utility_;
  Rng rng_;
};

/// Registers the `espice` strategy with the ShedderRegistry (registry.h);
/// called from the registry's EnsureRegistered, never directly.
void RegisterEspiceShedder();

}  // namespace cep

#endif  // CEPSHED_SHEDDING_ESPICE_SHEDDER_H_
