#ifndef CEPSHED_SHEDDING_INPUT_SHEDDER_H_
#define CEPSHED_SHEDDING_INPUT_SHEDDER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "shedding/shedder.h"

namespace cep {

/// \brief Configuration of the input-based baseline.
struct InputShedderOptions {
  /// Probability of dropping an arriving event while overloaded.
  double drop_probability = 0.2;
  /// Drop only while µ(t) > θ (true) or unconditionally (false).
  bool only_when_overloaded = true;
  /// Optional per-event-type utilities in [0, 1]: the effective drop
  /// probability for a type is drop_probability · (1 - utility). This models
  /// He et al.'s pre-defined weights; an empty map treats all types equally
  /// (pure random input shedding).
  std::unordered_map<std::string, double> type_utility;
  uint64_t seed = 0x1b75;
};

/// \brief Input-based load shedding (the classical stream-processing
/// approach the paper argues against, §I/§II): drops events *before* they
/// reach the automaton. Never discards partial matches — Decide selects no
/// victims (the base default), so overload persists until enough input has
/// been dropped.
///
/// The Bernoulli drop stream is checkpointed so a restored engine drops the
/// same events the uninterrupted run would.
class InputShedder final : public Shedder {
 public:
  explicit InputShedder(InputShedderOptions options)
      : options_(std::move(options)), rng_(options_.seed) {}

  std::string name() const override { return "IBLS"; }

  void Attach(const Nfa& nfa) override;

  bool ShouldDropEvent(const Event& event, bool overloaded) override;

  Status SerializeTo(ckpt::Sink& sink) const override;
  Status RestoreFrom(ckpt::Source& source) override;

 private:
  InputShedderOptions options_;
  Rng rng_;
  /// Per type id: effective drop probability (resolved in Attach).
  std::vector<double> drop_prob_by_type_;
};

/// Registers the `ibls` strategy with the ShedderRegistry (registry.h);
/// called from the registry's EnsureRegistered, never directly.
void RegisterInputShedder();

}  // namespace cep

#endif  // CEPSHED_SHEDDING_INPUT_SHEDDER_H_
