#include "shedding/pm_hash.h"

#include <cmath>

#include "common/hash.h"

namespace cep {

Status PmHasher::Attach(const Nfa& nfa, const SchemaRegistry& registry) {
  selected_.assign(registry.num_types(), {});
  std::vector<bool> has_selector(registry.num_types(), false);
  for (const auto& sel : options_.attributes) {
    CEP_ASSIGN_OR_RETURN(EventTypeId type, registry.GetType(sel.event_type));
    CEP_ASSIGN_OR_RETURN(int attr,
                         registry.schema(type)->GetAttributeIndex(sel.attribute));
    selected_[type].push_back(attr);
    has_selector[type] = true;
  }
  // Types referenced by the query but without explicit selectors hash all
  // attributes when the selector list is empty; with a non-empty selector
  // list, unselected types contribute only their type id.
  (void)nfa;
  attached_ = true;
  return Status::OK();
}

uint64_t PmHasher::EventHash(const Event& event) const {
  uint64_t h = Mix64(0x70c1 + event.type());
  const auto bucket = [this](const Value& v) -> uint64_t {
    if (options_.numeric_bucket_width > 0 && v.is_numeric()) {
      const double b =
          std::floor(v.AsDouble() / options_.numeric_bucket_width);
      return Mix64(static_cast<uint64_t>(static_cast<int64_t>(b)) ^
                   0xb0c4e7);
    }
    return v.Hash();
  };
  if (!dynamic_ && attached_ && event.type() < selected_.size() &&
      !options_.attributes.empty()) {
    for (const int idx : selected_[event.type()]) {
      h = HashCombine(h, bucket(event.attribute(idx)));
    }
    return h;
  }
  if (dynamic_ && !options_.attributes.empty()) {
    for (const auto& sel : options_.attributes) {
      if (sel.event_type != event.schema().name()) continue;
      const int idx = event.schema().FindAttribute(sel.attribute);
      if (idx >= 0) h = HashCombine(h, bucket(event.attribute(idx)));
    }
    return h;
  }
  // Default: all attributes.
  for (size_t i = 0; i < event.num_attributes(); ++i) {
    h = HashCombine(h, bucket(event.attribute(static_cast<int>(i))));
  }
  return h;
}

uint64_t PmHasher::HashRun(const Run& run) const {
  uint64_t h = 0;
  const auto bindings = run.CopyBindings();
  for (const auto& events : bindings) {
    for (const auto& e : events) h = Extend(h, *e);
  }
  return h;
}

}  // namespace cep
