#ifndef CEPSHED_SHEDDING_PM_HASH_H_
#define CEPSHED_SHEDDING_PM_HASH_H_

#include <string>
#include <vector>

#include "engine/run.h"
#include "event/schema.h"
#include "nfa/nfa.h"

namespace cep {

/// \brief Configuration of the partial-match hash used to group "similar"
/// partial matches in the contribution / resource-consumption models.
///
/// The paper groups partial matches that "had the same characteristics in
/// terms of attribute values". Which attributes characterise a partial match
/// is workload knowledge: identifiers that are unique per entity (job id,
/// user id) would make every partial match its own group and destroy
/// generalisation, while categorical attributes (machine, priority, area)
/// carry the regularity the models exploit. `attributes` therefore lists the
/// (event type, attribute) pairs to hash; an empty list hashes every
/// attribute of every bound event.
struct PmHashOptions {
  struct AttrSelector {
    std::string event_type;
    std::string attribute;
  };
  std::vector<AttrSelector> attributes;
  /// Numeric values are bucketed to multiples of this width before hashing
  /// (0 = exact). Lets continuous attributes (location, load) generalise.
  double numeric_bucket_width = 0.0;
};

/// \brief Incremental partial-match hasher.
///
/// The hash of a run is the order-insensitive combination of its bound
/// events' selected attribute hashes, maintained incrementally: extending a
/// run costs one EventHash + one combine, satisfying the paper's
/// constant-time requirement.
class PmHasher {
 public:
  explicit PmHasher(PmHashOptions options) : options_(std::move(options)) {}

  /// Resolves attribute selectors against the query's event types.
  Status Attach(const Nfa& nfa, const SchemaRegistry& registry);
  /// Registry-free attach: selectors resolve by name at hash time (slower;
  /// used when no registry is available).
  void AttachDynamic() { dynamic_ = true; }

  /// Hash contribution of one event.
  uint64_t EventHash(const Event& event) const;

  /// Extends a run hash with one more bound event (commutative combine).
  uint64_t Extend(uint64_t run_hash, const Event& event) const {
    // Addition keeps the combination order-insensitive, so Kleene bindings
    // that differ only in arrival order group together.
    return run_hash + (EventHash(event) | 1);
  }

  /// Recomputes from scratch (tests / victims of unknown provenance).
  uint64_t HashRun(const Run& run) const;

  const PmHashOptions& options() const { return options_; }

 private:
  PmHashOptions options_;
  bool dynamic_ = false;
  /// Resolved: per event type id, attribute indices to hash (empty = all).
  std::vector<std::vector<int>> selected_;
  bool attached_ = false;
};

}  // namespace cep

#endif  // CEPSHED_SHEDDING_PM_HASH_H_
