#ifndef CEPSHED_SHEDDING_SCORING_H_
#define CEPSHED_SHEDDING_SCORING_H_

#include <cstdint>
#include <string>

namespace cep {

/// Ranking functions for partial matches (paper §IV-C uses the linear
/// combination; §VI plans "different types of ranking functions").
enum class RankingFunction : uint8_t {
  /// score = w+ · C+ - w- · C-  (the paper's scoring function)
  kLinear,
  /// score = (C+ + ε) / (C- + ε) — scale-free benefit/cost ratio
  kRatio,
  /// score = C+ only (ignore cost)
  kContributionOnly,
  /// score = -C- only (ignore contribution)
  kCostOnly,
  /// score = (w+ · C+ - w- · C-) · ttl_fraction — discounts matches about to
  /// expire (they can neither contribute nor cost much longer)
  kTtlDiscounted,
};

const char* RankingFunctionName(RankingFunction fn);

/// \brief Parameters of the partial-match score. Runs with the LOWEST score
/// are shed first.
struct ScoringOptions {
  RankingFunction function = RankingFunction::kLinear;
  double weight_contribution = 1.0;  ///< w+ (Figure 1 sweeps this)
  double weight_cost = 1.0;          ///< w-
  double ratio_epsilon = 1e-3;       ///< ε for kRatio
};

/// Scores one partial match given its model estimates and remaining TTL
/// fraction in [0, 1]. O(1).
double ScorePartialMatch(const ScoringOptions& options, double contribution,
                         double cost, double ttl_fraction);

}  // namespace cep

#endif  // CEPSHED_SHEDDING_SCORING_H_
