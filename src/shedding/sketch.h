#ifndef CEPSHED_SHEDDING_SKETCH_H_
#define CEPSHED_SHEDDING_SKETCH_H_

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "ckpt/io.h"
#include "shedding/model_backend.h"

namespace cep {

/// \brief Count-min sketch over 64-bit keys with conservative-update.
///
/// `width` counters per row, `depth` rows. Point queries return the row
/// minimum; estimates never undercount and overcount by at most
/// 2·N/width with probability 1 - 2^-depth (N = total added mass).
class CountMinSketch {
 public:
  CountMinSketch(size_t width, size_t depth, uint64_t seed = 0x5eed);

  /// Adds `amount` using conservative update (only raises the minimal rows),
  /// which tightens the overestimate for skewed workloads.
  void Add(uint64_t key, double amount);

  double Estimate(uint64_t key) const;

  size_t width() const { return width_; }
  size_t depth() const { return depth_; }
  size_t MemoryBytes() const { return rows_.size() * sizeof(double); }
  void Clear();
  Status Save(std::ostream& out) const;
  Status Load(std::istream& in);
  /// Binary snapshot codec: shape is validated, rows are bit-exact.
  void SerializeTo(ckpt::Sink& sink) const;
  Status RestoreFrom(ckpt::Source& source);

 private:
  size_t Index(uint64_t key, size_t row) const;

  size_t width_;
  size_t depth_;
  std::vector<uint64_t> row_seeds_;
  std::vector<double> rows_;  // depth × width, row-major
};

/// \brief Sketch-backed CounterBackend: two count-min sketches (numerator
/// and denominator) replace the exact table. Memory is fixed at
/// 2·width·depth·8 bytes regardless of how many distinct partial-match
/// groups the stream produces (paper §VI).
class SketchCounterBackend final : public CounterBackend {
 public:
  SketchCounterBackend(size_t width, size_t depth, uint64_t seed = 0x5eed);

  void Add(uint64_t key, double num_delta, double den_delta) override;
  double Ratio(uint64_t key, double fallback) const override;
  double Support(uint64_t key) const override;
  size_t MemoryBytes() const override;
  void Clear() override;
  std::string name() const override { return "count-min"; }
  Status Save(std::ostream& out) const override;
  Status Load(std::istream& in) override;
  Status SerializeTo(ckpt::Sink& sink) const override;
  Status RestoreFrom(ckpt::Source& source) override;

 private:
  CountMinSketch num_;
  CountMinSketch den_;
};

}  // namespace cep

#endif  // CEPSHED_SHEDDING_SKETCH_H_
