#ifndef CEPSHED_SHEDDING_HYBRID_SHEDDER_H_
#define CEPSHED_SHEDDING_HYBRID_SHEDDER_H_

#include <string>
#include <utility>

#include "shedding/shedder.h"

namespace cep {

/// \brief Composes one input-side and one state-side strategy and walks the
/// degradation ladder across them (ROADMAP's "hybrid shedding family").
///
/// Ladder walk, driven by the signals already in ShedContext:
///
///  * healthy — neither child sheds: the input child gates itself on
///    `overloaded` and the engine runs no shed episodes.
///  * input-shed — µ(t) crosses θ: the input child's probe decisions arm
///    (events start being dropped by utility) while the run set is still
///    intact.
///  * input+state-shed — overload persists into engine shed episodes: the
///    state child now also discards the lowest-value partial matches.
///  * emergency — the degradation controller reaches kEmergency: the input
///    child is forced active on every event (its overload gate is overridden)
///    on top of the engine's own emergency drops and adaptive shed amounts.
///
/// Both children receive every learning hook (input first, then state), so
/// each maintains its models over the full run lifecycle. The run model
/// trail belongs to the state-side child; the bundled input-side strategies
/// (espice, hspice, ibls) learn trail-free, which is what makes this
/// composition sound. DescribeVictim prefers the state child (its
/// completion estimates feed the calibration monitor), falling back to the
/// input child.
///
/// The composed name embeds both children ("HYBRID[ESPICE+PSPICE]"), so a
/// checkpoint taken under one composition refuses to restore into another
/// (the shedder checkpoint section is keyed by name).
class HybridShedder final : public Shedder {
 public:
  /// Both children must be non-null; build via the registry
  /// ("hybrid(input=espice,state=pspice,...)") which enforces that.
  HybridShedder(ShedderPtr input, ShedderPtr state)
      : input_(std::move(input)), state_(std::move(state)) {}

  std::string name() const override {
    return "HYBRID[" + input_->name() + "+" + state_->name() + "]";
  }

  void Attach(const Nfa& nfa) override {
    input_->Attach(nfa);
    state_->Attach(nfa);
  }

  void OnRunCreated(Run* run, const Event& event, Timestamp now) override {
    input_->OnRunCreated(run, event, now);
    state_->OnRunCreated(run, event, now);
  }

  void OnRunExtended(const Run* parent, Run* child, const Event& event,
                     Timestamp now) override {
    input_->OnRunExtended(parent, child, event, now);
    state_->OnRunExtended(parent, child, event, now);
  }

  void OnMatchEmitted(const Run& run, Timestamp now) override {
    input_->OnMatchEmitted(run, now);
    state_->OnMatchEmitted(run, now);
  }

  void OnRunExpired(const Run& run, Timestamp now) override {
    input_->OnRunExpired(run, now);
    state_->OnRunExpired(run, now);
  }

  bool ShouldDropEvent(const Event& event, bool overloaded) override {
    return input_->ShouldDropEvent(event, overloaded);
  }

  ShedDecision Decide(const ShedContext& ctx) override;

  bool DescribeVictim(const Run& run, Timestamp now,
                      ShedVictimScores* scores) const override {
    if (state_->DescribeVictim(run, now, scores)) return true;
    return input_->DescribeVictim(run, now, scores);
  }

  Status SerializeTo(ckpt::Sink& sink) const override {
    CEP_RETURN_NOT_OK(input_->SerializeTo(sink));
    return state_->SerializeTo(sink);
  }

  Status RestoreFrom(ckpt::Source& source) override {
    CEP_RETURN_NOT_OK(input_->RestoreFrom(source));
    return state_->RestoreFrom(source);
  }

  const Shedder& input_side() const { return *input_; }
  const Shedder& state_side() const { return *state_; }

 private:
  ShedderPtr input_;
  ShedderPtr state_;
};

/// Registers the `hybrid` strategy with the ShedderRegistry (registry.h);
/// called from the registry's EnsureRegistered, never directly.
void RegisterHybridShedder();

}  // namespace cep

#endif  // CEPSHED_SHEDDING_HYBRID_SHEDDER_H_
