#ifndef CEPSHED_SHEDDING_SHEDDER_H_
#define CEPSHED_SHEDDING_SHEDDER_H_

#include <memory>
#include <string>
#include <vector>

#include "ckpt/state_component.h"
#include "common/time.h"
#include "engine/run.h"
#include "nfa/nfa.h"

namespace cep {

/// \brief Model scores behind one shedding decision, recorded in the
/// observability audit trail (obs/audit.h). Strategies without models leave
/// the defaults.
struct ShedVictimScores {
  double c_plus = 0.0;   ///< contribution estimate C+(r|t)
  double c_minus = 0.0;  ///< cost estimate C-(r|t)
  double score = 0.0;    ///< combined ranking score (lowest shed first)
  int time_slice = -1;   ///< relative-time slice, -1 when not sliced
};

/// \brief Everything a strategy sees when asked for a shedding decision.
///
/// `runs` entries may be null (already dead this round) and must be skipped.
/// `want_scores` is true when an audit consumer (audit log or shed callback)
/// is attached: strategies with models should then fill ShedVictim::scores,
/// reusing the scores they computed for ranking instead of recomputing them
/// per victim as the old two-call SelectVictims/DescribeVictim surface did.
struct ShedContext {
  const std::vector<RunPtr>& runs;
  Timestamp now = 0;
  size_t target = 0;  ///< upper bound on victims to select
  bool want_scores = false;
};

/// \brief One selected victim: its index into ShedContext::runs plus the
/// model scores behind the decision (when the strategy has them and the
/// context asked for them).
struct ShedVictim {
  size_t index = 0;
  bool has_scores = false;
  ShedVictimScores scores;
};

/// \brief The outcome of one shedding episode: the victims, in the order the
/// strategy ranked them, with their audit records in the same batch.
struct ShedDecision {
  std::vector<ShedVictim> victims;
};

/// \brief Pluggable load-shedding strategy.
///
/// The engine drives the strategy through two channels:
///
///  * *Learning hooks* — called on every run lifecycle transition so that
///    model-based strategies (state_shedder.h) can maintain their
///    contribution and resource-consumption statistics online. Hooks must be
///    O(1): the paper requires shedding decisions in constant time, and the
///    hooks are on the hot path even when the system is not overloaded.
///    Merge-safety contract: the engine invokes every hook (and Decide) only
///    from its serial merge phase, in deterministic run order, regardless of
///    how many worker threads evaluate predicates (docs/PARALLELISM.md) —
///    implementations therefore need no locking and may use seeded RNGs
///    without losing reproducibility.
///  * *Shedding decisions* — when overload is detected (µ(t) > θ), the
///    engine calls Decide() for up to `target` victims among the active
///    runs; for input-based baselines, ShouldDropEvent() can discard events
///    before they are processed.
///
/// Shedders are StateComponents: strategies with durable state (learned
/// models, RNG streams) serialize it so a restored engine sheds exactly as
/// the uninterrupted one would. The default implementation serializes
/// nothing, which is correct for stateless strategies.
class Shedder : public ckpt::StateComponent {
 public:
  ~Shedder() override = default;

  /// Strategy name used in experiment reports ("SBLS", "RBLS", ...).
  virtual std::string name() const = 0;

  /// Called once before processing starts.
  virtual void Attach(const Nfa& nfa) { (void)nfa; }

  // --- learning hooks -------------------------------------------------------

  /// A run was created at the initial state with `event` bound.
  virtual void OnRunCreated(Run* run, const Event& event, Timestamp now) {
    (void)run;
    (void)event;
    (void)now;
  }

  /// `child` was derived from `parent` by a take transition binding `event`
  /// (the child already has it bound). `parent` is nullptr when the child
  /// was mutated in place (non-STAM selection strategies).
  virtual void OnRunExtended(const Run* parent, Run* child, const Event& event,
                             Timestamp now) {
    (void)parent;
    (void)child;
    (void)event;
    (void)now;
  }

  /// `run` just produced a complete match.
  virtual void OnMatchEmitted(const Run& run, Timestamp now) {
    (void)run;
    (void)now;
  }

  /// `run` left R(t) because its window closed.
  virtual void OnRunExpired(const Run& run, Timestamp now) {
    (void)run;
    (void)now;
  }

  // --- shedding decisions ----------------------------------------------------

  /// Input-based shedding: return true to drop `event` unprocessed.
  /// `overloaded` reflects µ(t) > θ at arrival time.
  virtual bool ShouldDropEvent(const Event& event, bool overloaded) {
    (void)event;
    (void)overloaded;
    return false;
  }

  /// State-based shedding: select up to `ctx.target` victims among
  /// `ctx.runs` and return them together with their audit records. Called
  /// only when the engine detected overload.
  ///
  /// The default implementation bridges legacy strategies that still
  /// override the deprecated SelectVictims/DescribeVictim pair; new
  /// strategies override Decide() alone.
  virtual ShedDecision Decide(const ShedContext& ctx);

  // --- deprecated two-call surface -------------------------------------------

  /// DEPRECATED: override Decide() instead. Legacy entry point kept so
  /// existing strategies compile unchanged; the default is a no-op (select
  /// nothing), matching a strategy that never sheds state.
  virtual void SelectVictims(const std::vector<RunPtr>& runs, Timestamp now,
                             size_t target, std::vector<size_t>* victims) {
    (void)runs;
    (void)now;
    (void)target;
    (void)victims;
  }

  /// DEPRECATED: return scores from Decide() instead. Fills `scores` with
  /// the model values this strategy would use to rank `run` at `now` and
  /// returns true; returns false (leaving `scores` untouched) when the
  /// strategy has no per-run model.
  virtual bool DescribeVictim(const Run& run, Timestamp now,
                              ShedVictimScores* scores) const {
    (void)run;
    (void)now;
    (void)scores;
    return false;
  }

  // --- checkpointing ---------------------------------------------------------

  /// Stateless by default; strategies with learned models or RNG streams
  /// override both.
  Status SerializeTo(ckpt::Sink& sink) const override {
    (void)sink;
    return Status::OK();
  }
  Status RestoreFrom(ckpt::Source& source) override {
    (void)source;
    return Status::OK();
  }
};

using ShedderPtr = std::unique_ptr<Shedder>;

}  // namespace cep

#endif  // CEPSHED_SHEDDING_SHEDDER_H_
