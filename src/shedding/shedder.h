#ifndef CEPSHED_SHEDDING_SHEDDER_H_
#define CEPSHED_SHEDDING_SHEDDER_H_

#include <memory>
#include <string>
#include <vector>

#include "ckpt/state_component.h"
#include "common/time.h"
#include "engine/run.h"
#include "nfa/nfa.h"

namespace cep {

class RunStore;

/// \brief Model scores behind one shedding decision, recorded in the
/// observability audit trail (obs/audit.h). Strategies without models leave
/// the defaults.
struct ShedVictimScores {
  double c_plus = 0.0;   ///< contribution estimate C+(r|t)
  double c_minus = 0.0;  ///< cost estimate C-(r|t)
  double score = 0.0;    ///< combined ranking score (lowest shed first)
  int time_slice = -1;   ///< relative-time slice, -1 when not sliced
};

/// \brief Everything a strategy sees when asked for a shedding decision.
///
/// ShedContext is the single extension surface of the Shedder API: new
/// per-decision inputs are added here as fields with inert defaults rather
/// than as new virtual-method parameters. Field stability contract:
///
///  * Existing fields are never removed or repurposed; their meaning is
///    stable across releases.
///  * New fields always carry a default that reproduces the old behaviour,
///    so call sites using aggregate initialization keep compiling and
///    strategies that ignore a field behave exactly as before it existed.
///  * Pointer fields may be null (the engine feature behind them is off or
///    the caller is a test harness); strategies must tolerate null.
///
/// The engine builds a ShedContext in two situations, distinguished by
/// `event`:
///
///  * *Event probe* (`event != nullptr`): an input event has arrived and the
///    strategy may claim it (`ShedDecision::drop_event`) and/or shed runs
///    pre-emptively. `target` is 0 — input probes carry no victim quota.
///  * *Shed episode* (`event == nullptr`): overload was detected (µ(t) > θ)
///    and the strategy should select up to `target` victims among `runs`.
///
/// `runs` entries may be null (already dead this round) and must be skipped.
/// `want_scores` is true when an audit consumer (audit log or shed callback)
/// is attached: strategies with models should then fill ShedVictim::scores,
/// reusing the scores they computed for ranking instead of recomputing them
/// per victim.
struct ShedContext {
  const std::vector<RunPtr>& runs;
  Timestamp now = 0;
  size_t target = 0;  ///< upper bound on victims to select (0 on probes)
  bool want_scores = false;
  /// Arriving event on input probes; null during shed episodes.
  const Event* event = nullptr;
  /// µ(t) > θ at the time the context was built (false when θ disabled).
  bool overloaded = false;
  /// Live run storage for occupancy/column views (engine/run_store.h);
  /// null when the caller has no store (unit tests driving Decide directly).
  const RunStore* store = nullptr;
  /// Query window size; 0 when no NFA is attached yet.
  Duration window = 0;
  /// Degradation ladder level as int(DegradationLevel); -1 when the ladder
  /// is disabled.
  int degradation_level = -1;
};

/// \brief One selected victim: its index into ShedContext::runs plus the
/// model scores behind the decision (when the strategy has them and the
/// context asked for them).
struct ShedVictim {
  size_t index = 0;
  bool has_scores = false;
  ShedVictimScores scores;
};

/// \brief The outcome of one shedding decision. A single decision can carry
/// both halves of the paper's design space: drop the arriving input event
/// (`drop_event`, meaningful only for event probes) and/or shed partial
/// matches (`victims`, in the order the strategy ranked them, with their
/// audit records in the same batch).
struct ShedDecision {
  std::vector<ShedVictim> victims;
  bool drop_event = false;  ///< drop the probed input event unprocessed
};

/// \brief Pluggable load-shedding strategy.
///
/// The engine drives the strategy through two channels:
///
///  * *Learning hooks* — called on every run lifecycle transition so that
///    model-based strategies (state_shedder.h) can maintain their
///    contribution and resource-consumption statistics online. Hooks must be
///    O(1): the paper requires shedding decisions in constant time, and the
///    hooks are on the hot path even when the system is not overloaded.
///    Merge-safety contract: the engine invokes every hook (and Decide) only
///    from its serial merge phase, in deterministic run order, regardless of
///    how many worker threads evaluate predicates (docs/PARALLELISM.md) —
///    implementations therefore need no locking and may use seeded RNGs
///    without losing reproducibility.
///  * *Shedding decisions* — every decision flows through Decide(): the
///    engine probes the strategy on each arriving event (ShedContext::event
///    set) and runs a shed episode when overload is detected (µ(t) > θ,
///    ShedContext::event null, `target` victims wanted). One ShedDecision
///    can both drop the input event and shed runs.
///
/// Strategies are constructed through the ShedderRegistry (registry.h) from
/// `name(key=val,...)` spec strings; new strategies register a factory there
/// so every entry point (CLI, server specs, stress harness, benches) picks
/// them up without code changes.
///
/// Shedders are StateComponents: strategies with durable state (learned
/// models, RNG streams) serialize it so a restored engine sheds exactly as
/// the uninterrupted one would. The default implementation serializes
/// nothing, which is correct for stateless strategies.
class Shedder : public ckpt::StateComponent {
 public:
  ~Shedder() override = default;

  /// Strategy name used in experiment reports ("SBLS", "RBLS", ...) and as
  /// the checkpoint section suffix ("shedder.<name>"), so a snapshot taken
  /// with one strategy refuses to restore into another.
  virtual std::string name() const = 0;

  /// Called once before processing starts.
  virtual void Attach(const Nfa& nfa) { (void)nfa; }

  // --- learning hooks -------------------------------------------------------

  /// A run was created at the initial state with `event` bound.
  virtual void OnRunCreated(Run* run, const Event& event, Timestamp now) {
    (void)run;
    (void)event;
    (void)now;
  }

  /// `child` was derived from `parent` by a take transition binding `event`
  /// (the child already has it bound). `parent` is nullptr when the child
  /// was mutated in place (non-STAM selection strategies).
  virtual void OnRunExtended(const Run* parent, Run* child, const Event& event,
                             Timestamp now) {
    (void)parent;
    (void)child;
    (void)event;
    (void)now;
  }

  /// `run` just produced a complete match.
  virtual void OnMatchEmitted(const Run& run, Timestamp now) {
    (void)run;
    (void)now;
  }

  /// `run` left R(t) because its window closed.
  virtual void OnRunExpired(const Run& run, Timestamp now) {
    (void)run;
    (void)now;
  }

  // --- shedding decisions ----------------------------------------------------

  /// Input-based shedding helper: return true to drop `event` unprocessed.
  /// `overloaded` reflects µ(t) > θ at arrival time. The base Decide()
  /// bridges event probes here so simple input strategies only override this
  /// predicate; strategies that need the full context (run store, window
  /// position) override Decide() instead.
  virtual bool ShouldDropEvent(const Event& event, bool overloaded) {
    (void)event;
    (void)overloaded;
    return false;
  }

  /// The single decision entry point; see ShedContext for the probe/episode
  /// split. The default implementation drops nothing during episodes and
  /// bridges event probes to ShouldDropEvent().
  virtual ShedDecision Decide(const ShedContext& ctx);

  /// Live model introspection for quality observability: fills `scores`
  /// with the model values this strategy would use to rank `run` at `now`
  /// and returns true; returns false (leaving `scores` untouched) when the
  /// strategy has no per-run model. The engine calls this when a run exits
  /// (match/expiry) to feed CalibrationMonitor with the strategy's own
  /// completion-probability estimate, so any model-based strategy should
  /// implement it even though Decide() returns scores for victims.
  virtual bool DescribeVictim(const Run& run, Timestamp now,
                              ShedVictimScores* scores) const {
    (void)run;
    (void)now;
    (void)scores;
    return false;
  }

  // --- checkpointing ---------------------------------------------------------

  /// Stateless by default; strategies with learned models or RNG streams
  /// override both.
  Status SerializeTo(ckpt::Sink& sink) const override {
    (void)sink;
    return Status::OK();
  }
  Status RestoreFrom(ckpt::Source& source) override {
    (void)source;
    return Status::OK();
  }
};

using ShedderPtr = std::unique_ptr<Shedder>;

}  // namespace cep

#endif  // CEPSHED_SHEDDING_SHEDDER_H_
