#ifndef CEPSHED_SHEDDING_SHEDDER_H_
#define CEPSHED_SHEDDING_SHEDDER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/time.h"
#include "engine/run.h"
#include "nfa/nfa.h"

namespace cep {

/// \brief Model scores behind one shedding decision, reported through
/// Shedder::DescribeVictim for the observability audit trail
/// (obs/audit.h). Strategies without models leave the defaults.
struct ShedVictimScores {
  double c_plus = 0.0;   ///< contribution estimate C+(r|t)
  double c_minus = 0.0;  ///< cost estimate C-(r|t)
  double score = 0.0;    ///< combined ranking score (lowest shed first)
  int time_slice = -1;   ///< relative-time slice, -1 when not sliced
};

/// \brief Pluggable load-shedding strategy.
///
/// The engine drives the strategy through two channels:
///
///  * *Learning hooks* — called on every run lifecycle transition so that
///    model-based strategies (state_shedder.h) can maintain their
///    contribution and resource-consumption statistics online. Hooks must be
///    O(1): the paper requires shedding decisions in constant time, and the
///    hooks are on the hot path even when the system is not overloaded.
///    Merge-safety contract: the engine invokes every hook (and
///    SelectVictims) only from its serial merge phase, in deterministic run
///    order, regardless of how many worker threads evaluate predicates
///    (docs/PARALLELISM.md) — implementations therefore need no locking and
///    may use seeded RNGs without losing reproducibility.
///  * *Shedding decisions* — when overload is detected (µ(t) > θ), the
///    engine asks for `target` victims among the active runs; for
///    input-based baselines, ShouldDropEvent() can discard events before
///    they are processed.
class Shedder {
 public:
  virtual ~Shedder() = default;

  /// Strategy name used in experiment reports ("SBLS", "RBLS", ...).
  virtual std::string name() const = 0;

  /// Called once before processing starts.
  virtual void Attach(const Nfa& nfa) { (void)nfa; }

  // --- learning hooks -------------------------------------------------------

  /// A run was created at the initial state with `event` bound.
  virtual void OnRunCreated(Run* run, const Event& event, Timestamp now) {
    (void)run;
    (void)event;
    (void)now;
  }

  /// `child` was derived from `parent` by a take transition binding `event`
  /// (the child already has it bound). `parent` is nullptr when the child
  /// was mutated in place (non-STAM selection strategies).
  virtual void OnRunExtended(const Run* parent, Run* child, const Event& event,
                             Timestamp now) {
    (void)parent;
    (void)child;
    (void)event;
    (void)now;
  }

  /// `run` just produced a complete match.
  virtual void OnMatchEmitted(const Run& run, Timestamp now) {
    (void)run;
    (void)now;
  }

  /// `run` left R(t) because its window closed.
  virtual void OnRunExpired(const Run& run, Timestamp now) {
    (void)run;
    (void)now;
  }

  // --- shedding decisions ----------------------------------------------------

  /// Input-based shedding: return true to drop `event` unprocessed.
  /// `overloaded` reflects µ(t) > θ at arrival time.
  virtual bool ShouldDropEvent(const Event& event, bool overloaded) {
    (void)event;
    (void)overloaded;
    return false;
  }

  /// State-based shedding: append the indices (into `runs`) of up to
  /// `target` victims to `victims`. Entries may be null (already dead this
  /// round) and must be skipped. Called only when the engine detected
  /// overload; `now` is the current stream time.
  virtual void SelectVictims(const std::vector<RunPtr>& runs, Timestamp now,
                             size_t target, std::vector<size_t>* victims) = 0;

  // --- observability ---------------------------------------------------------

  /// Fills `scores` with the model values this strategy would use to rank
  /// `run` at `now` and returns true; returns false (leaving `scores`
  /// untouched) when the strategy has no per-run model. The engine calls
  /// this for each selected victim to build the shed-decision audit trail;
  /// implementations must be read-only and O(1) like the learning hooks.
  virtual bool DescribeVictim(const Run& run, Timestamp now,
                              ShedVictimScores* scores) const {
    (void)run;
    (void)now;
    (void)scores;
    return false;
  }
};

using ShedderPtr = std::unique_ptr<Shedder>;

}  // namespace cep

#endif  // CEPSHED_SHEDDING_SHEDDER_H_
