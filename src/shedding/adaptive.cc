#include "shedding/adaptive.h"

#include <algorithm>
#include <cmath>

namespace cep {

size_t ComputeShedTarget(const ShedAmountOptions& options, size_t num_runs,
                         double latency_micros, double threshold_micros) {
  if (num_runs == 0) return 0;
  double fraction = options.fraction;
  if (options.mode == ShedAmountOptions::Mode::kAdaptive &&
      threshold_micros > 0 && latency_micros > threshold_micros) {
    const double overshoot = latency_micros / threshold_micros - 1.0;
    fraction += options.adaptive_gain * options.fraction * overshoot;
  }
  fraction = std::clamp(fraction, 0.0, options.max_fraction);
  auto target = static_cast<size_t>(
      std::llround(fraction * static_cast<double>(num_runs)));
  target = std::max(target, std::min(options.min_victims, num_runs));
  return std::min(target, num_runs);
}

}  // namespace cep
