#include "shedding/shedder.h"

namespace cep {

ShedDecision Shedder::Decide(const ShedContext& ctx) {
  // Bridge for strategies still implementing the deprecated two-call
  // surface: one SelectVictims batch, then per-victim DescribeVictim when
  // the caller wants audit records.
  ShedDecision decision;
  std::vector<size_t> indices;
  SelectVictims(ctx.runs, ctx.now, ctx.target, &indices);
  decision.victims.reserve(indices.size());
  for (const size_t index : indices) {
    ShedVictim victim;
    victim.index = index;
    if (ctx.want_scores && index < ctx.runs.size() &&
        ctx.runs[index] != nullptr) {
      victim.has_scores =
          DescribeVictim(*ctx.runs[index], ctx.now, &victim.scores);
    }
    decision.victims.push_back(victim);
  }
  return decision;
}

}  // namespace cep
