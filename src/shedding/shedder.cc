#include "shedding/shedder.h"

namespace cep {

ShedDecision Shedder::Decide(const ShedContext& ctx) {
  ShedDecision decision;
  if (ctx.event != nullptr) {
    // Event probe: bridge to the simple input predicate. Strategies that
    // want window-position or run-store context override Decide() itself.
    decision.drop_event = ShouldDropEvent(*ctx.event, ctx.overloaded);
  }
  // Shed episode: the base strategy never sheds state.
  return decision;
}

}  // namespace cep
