#ifndef CEPSHED_SHEDDING_COST_MODEL_H_
#define CEPSHED_SHEDDING_COST_MODEL_H_

#include <memory>
#include <vector>

#include "shedding/model_backend.h"

namespace cep {

/// \brief Learned resource-consumption model C-(r|t) (paper §IV-B).
///
/// Mechanically the mirror image of ContributionModel: Observe(key) counts a
/// run entering the cell, Charge(trail) charges one *derived* partial match
/// to every cell on the parent's lineage whenever a child run is created
/// from it. The estimate
///
///   C-(r|t) = derived runs / runs observed
///
/// predicts how many further partial matches a live run will spawn in its
/// remaining TTL — the processing and memory cost of keeping it.
class CostModel {
 public:
  explicit CostModel(std::unique_ptr<CounterBackend> backend)
      : backend_(std::move(backend)) {}

  void Observe(uint64_t key) { backend_->Add(key, 0.0, 1.0); }

  /// A new run was derived from a parent with this model trail.
  void Charge(const std::vector<uint64_t>& trail) {
    for (const uint64_t key : trail) backend_->Add(key, 1.0, 0.0);
  }

  /// Unseen cells return `pessimism`, the prior cost for novel state.
  double Estimate(uint64_t key, double pessimism) const {
    return backend_->Ratio(key, pessimism);
  }

  double Support(uint64_t key) const { return backend_->Support(key); }
  const CounterBackend& backend() const { return *backend_; }
  CounterBackend* mutable_backend() { return backend_.get(); }
  void Clear() { backend_->Clear(); }

 private:
  std::unique_ptr<CounterBackend> backend_;
};

}  // namespace cep

#endif  // CEPSHED_SHEDDING_COST_MODEL_H_
