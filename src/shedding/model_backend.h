#ifndef CEPSHED_SHEDDING_MODEL_BACKEND_H_
#define CEPSHED_SHEDDING_MODEL_BACKEND_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <unordered_map>

#include "ckpt/state_component.h"
#include "common/status.h"

namespace cep {

/// \brief Storage for the ratio statistics behind the contribution and
/// resource-consumption models: per key, a numerator (matches produced /
/// runs derived) and a denominator (runs observed).
///
/// Two implementations: an exact hash table (default) and a count-min sketch
/// (shedding/sketch.h) that bounds memory at the price of overestimated
/// counts — the paper's §VI "more efficient data structures, for instance
/// based on sketching".
class CounterBackend : public ckpt::StateComponent {
 public:
  ~CounterBackend() override = default;

  virtual void Add(uint64_t key, double num_delta, double den_delta) = 0;

  /// num/den for `key`; `fallback` when the key was never observed.
  virtual double Ratio(uint64_t key, double fallback) const = 0;

  /// Denominator for `key` (0 when unseen) — the model's support.
  virtual double Support(uint64_t key) const = 0;

  /// Approximate memory footprint in bytes (reporting only).
  virtual size_t MemoryBytes() const = 0;

  virtual void Clear() = 0;

  virtual std::string name() const = 0;

  /// Serialises the backend to a line-oriented text stream and restores it.
  /// Load replaces the current contents; the stream must have been written
  /// by a backend of the same type and shape.
  virtual Status Save(std::ostream& out) const = 0;
  virtual Status Load(std::istream& in) = 0;

  // StateComponent (binary snapshot) surface is inherited: SerializeTo must
  // be deterministic — equal model state yields equal bytes — so digests can
  // diff snapshots; implementations with unordered storage sort first.
};

/// \brief Exact open-hashing backend (unordered_map).
class ExactCounterBackend final : public CounterBackend {
 public:
  ExactCounterBackend() = default;

  void Add(uint64_t key, double num_delta, double den_delta) override;
  double Ratio(uint64_t key, double fallback) const override;
  double Support(uint64_t key) const override;
  size_t MemoryBytes() const override;
  void Clear() override { cells_.clear(); }
  std::string name() const override { return "exact"; }
  Status Save(std::ostream& out) const override;
  Status Load(std::istream& in) override;
  Status SerializeTo(ckpt::Sink& sink) const override;
  Status RestoreFrom(ckpt::Source& source) override;

  size_t num_cells() const { return cells_.size(); }

 private:
  struct Cell {
    double num = 0;
    double den = 0;
  };
  std::unordered_map<uint64_t, Cell> cells_;
};

}  // namespace cep

#endif  // CEPSHED_SHEDDING_MODEL_BACKEND_H_
