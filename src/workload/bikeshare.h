#ifndef CEPSHED_WORKLOAD_BIKESHARE_H_
#define CEPSHED_WORKLOAD_BIKESHARE_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "event/event.h"
#include "event/schema.h"

namespace cep {

/// \brief Synthetic bike-sharing stream for the paper's Example 1 (Beijing
/// free-floating bike sharing): users request bikes, bikes are available
/// nearby, and occasionally the user walks far away to unlock a different
/// bike — the "bikes parked in obscure places" anomaly the example query
/// detects.
///
/// Locations are zone indices on a 1-D line so the paper's
/// `diff(b[i].loc, a.loc) < lambda` distance predicate applies directly.
/// Event types:
///   req(loc:int, uid:int)            — user requests a bike at a zone
///   avail(loc:int, bid:int)          — bike available at a zone
///   unlock(loc:int, uid:int, bid:int) — user unlocks a bike
///
/// A fraction of zones is "obscure": requests there are followed by several
/// nearby avail events yet the unlock happens far away with high
/// probability — a learnable attribute correlation (zone -> anomaly).
struct BikeShareOptions {
  Duration duration = 2 * kHour;
  int num_zones = 50;
  double obscure_zone_share = 0.2;
  double requests_per_minute = 6.0;
  /// Avail events observed near the request (Kleene fodder).
  int mean_avails_per_request = 4;
  /// Probability the unlock is far away, for obscure / normal zones.
  double far_unlock_prob_obscure = 0.8;
  double far_unlock_prob_normal = 0.05;
  /// Distance threshold lambda used by the canned query.
  int lambda = 5;
  uint64_t seed = 7;
};

class BikeShareGenerator {
 public:
  explicit BikeShareGenerator(BikeShareOptions options) : options_(options) {}

  static Status RegisterSchemas(SchemaRegistry* registry);

  Result<std::vector<EventPtr>> Generate(const SchemaRegistry& registry) const;

  const BikeShareOptions& options() const { return options_; }

  static bool IsObscureZone(const BikeShareOptions& options, int zone) {
    return zone < static_cast<int>(options.obscure_zone_share *
                                   static_cast<double>(options.num_zones));
  }

 private:
  BikeShareOptions options_;
};

}  // namespace cep

#endif  // CEPSHED_WORKLOAD_BIKESHARE_H_
