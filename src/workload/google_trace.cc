#include "workload/google_trace.h"

#include <algorithm>
#include <cmath>

#include "event/stream.h"

namespace cep {

namespace {

const std::vector<AttributeDef>& TaskEventAttributes() {
  static const std::vector<AttributeDef>* const kAttrs =
      new std::vector<AttributeDef>{
          {"job_id", ValueType::kInt},     {"task_idx", ValueType::kInt},
          {"machine_id", ValueType::kInt}, {"priority", ValueType::kInt},
          {"sched_class", ValueType::kInt}, {"cpu_req", ValueType::kDouble},
          {"mem_req", ValueType::kDouble},
      };
  return *kAttrs;
}

struct OutcomeDist {
  double evict;
  double fail;
  double kill;
  // finish = remainder
};

/// Attribute-conditioned outcome distribution — the "regularity" the
/// contribution model can learn.
OutcomeDist AttributeOutcome(bool hot, int64_t priority, int64_t sched_class) {
  if (hot && priority <= 3) return OutcomeDist{0.75, 0.10, 0.02};
  if (hot && sched_class >= 2) return OutcomeDist{0.15, 0.45, 0.03};
  if (hot) return OutcomeDist{0.15, 0.10, 0.03};
  return OutcomeDist{0.04, 0.05, 0.02};
}

/// Attribute-independent average used to wash out the signal as
/// regularity -> 0 (roughly the mixture average of the above).
constexpr OutcomeDist kUniformOutcome{0.25, 0.12, 0.025};

OutcomeDist Blend(const OutcomeDist& a, const OutcomeDist& b, double w) {
  return OutcomeDist{w * a.evict + (1 - w) * b.evict,
                     w * a.fail + (1 - w) * b.fail,
                     w * a.kill + (1 - w) * b.kill};
}

}  // namespace

Status GoogleTraceGenerator::RegisterSchemas(SchemaRegistry* registry) {
  for (const char* name :
       {"submit", "schedule", "evict", "fail", "finish", "kill"}) {
    CEP_RETURN_NOT_OK(
        registry->Register(name, TaskEventAttributes()).status());
  }
  return Status::OK();
}

Result<std::vector<EventPtr>> GoogleTraceGenerator::Generate(
    const SchemaRegistry& registry) const {
  CEP_ASSIGN_OR_RETURN(EventTypeId submit_t, registry.GetType("submit"));
  CEP_ASSIGN_OR_RETURN(EventTypeId schedule_t, registry.GetType("schedule"));
  CEP_ASSIGN_OR_RETURN(EventTypeId evict_t, registry.GetType("evict"));
  CEP_ASSIGN_OR_RETURN(EventTypeId fail_t, registry.GetType("fail"));
  CEP_ASSIGN_OR_RETURN(EventTypeId finish_t, registry.GetType("finish"));
  CEP_ASSIGN_OR_RETURN(EventTypeId kill_t, registry.GetType("kill"));

  Rng rng(options_.seed);
  BurstProfile profile;
  profile.base_rate = options_.jobs_per_hour / 3600.0;
  profile.burst_multiplier = options_.burst_multiplier;
  profile.burst_period = options_.burst_period;
  profile.burst_duration = options_.burst_duration;
  profile.phase = options_.burst_period / 3;  // first burst after warm-up
  ArrivalProcess arrivals(profile, rng.Next());

  std::vector<EventPtr> events;
  uint64_t seq = 0;
  const auto emit = [&](EventTypeId type, Timestamp ts, int64_t job,
                        int64_t task, int64_t machine, int64_t priority,
                        int64_t sched_class, double cpu, double mem) {
    if (ts > options_.duration) return;
    events.push_back(std::make_shared<Event>(
        type, registry.schema(type), ts,
        std::vector<Value>{Value(job), Value(task), Value(machine),
                           Value(priority), Value(sched_class), Value(cpu),
                           Value(mem)},
        seq++));
  };

  const auto exp_delay = [&](Duration mean) -> Duration {
    const double d = rng.NextExponential(1.0 / static_cast<double>(mean));
    const auto micros = static_cast<Duration>(std::llround(d));
    return micros < 1 ? 1 : micros;
  };

  int64_t job_id = 0;
  Timestamp t = 0;
  while ((t = arrivals.NextArrival(t)) <= options_.duration) {
    ++job_id;
    const int64_t priority = static_cast<int64_t>(rng.NextZipf(12, 1.0));
    const int64_t sched_class = static_cast<int64_t>(rng.NextBounded(4));
    const int num_tasks =
        1 + static_cast<int>(rng.NextBounded(
                static_cast<uint64_t>(options_.max_tasks_per_job)));
    for (int task = 0; task < num_tasks; ++task) {
      const double cpu = 0.01 + 0.5 * rng.NextDouble();
      const double mem = 0.01 + 0.5 * rng.NextDouble();
      const Timestamp submit_ts =
          t + static_cast<Duration>(rng.NextBounded(30 * kSecond));
      emit(submit_t, submit_ts, job_id, task, -1, priority, sched_class, cpu,
           mem);
      Timestamp cursor = submit_ts;
      int attempts = 0;
      bool alive = true;
      while (alive && attempts <= options_.max_retries) {
        ++attempts;
        // Zipf over machines concentrates load on the low-index (hot) pool.
        const int machine = static_cast<int>(rng.NextZipf(
            static_cast<uint64_t>(options_.num_machines), 0.8));
        cursor += exp_delay(options_.mean_schedule_delay);
        emit(schedule_t, cursor, job_id, task, machine, priority, sched_class,
             cpu, mem);
        const bool hot = IsHotMachine(options_, machine);
        const OutcomeDist dist =
            Blend(AttributeOutcome(hot, priority, sched_class),
                  kUniformOutcome, options_.regularity);
        const double roll = rng.NextDouble();
        if (roll < dist.evict) {
          cursor += exp_delay(options_.mean_evict_delay);
          emit(evict_t, cursor, job_id, task, machine, priority, sched_class,
               cpu, mem);
          // Evicted tasks are rescheduled (next loop iteration).
        } else if (roll < dist.evict + dist.fail) {
          cursor += exp_delay(options_.mean_fail_delay);
          emit(fail_t, cursor, job_id, task, machine, priority, sched_class,
               cpu, mem);
        } else if (roll < dist.evict + dist.fail + dist.kill) {
          cursor += exp_delay(options_.mean_fail_delay);
          emit(kill_t, cursor, job_id, task, machine, priority, sched_class,
               cpu, mem);
          alive = false;
        } else {
          cursor += exp_delay(options_.mean_finish_delay);
          emit(finish_t, cursor, job_id, task, machine, priority, sched_class,
               cpu, mem);
          alive = false;
        }
      }
    }
  }

  SortEvents(&events);
  return events;
}

}  // namespace cep
