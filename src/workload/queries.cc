#include "workload/queries.h"

#include "common/string_util.h"
#include "nfa/compiler.h"
#include "query/analyzer.h"
#include "query/parser.h"

namespace cep {

namespace {

Result<CannedQuery> Compile(std::string name, std::string text,
                            const SchemaRegistry& registry,
                            PmHashOptions pm_hash) {
  CEP_ASSIGN_OR_RETURN(ParsedQuery parsed, ParseQuery(text));
  parsed.name = name;
  CEP_ASSIGN_OR_RETURN(AnalyzedQuery analyzed,
                       Analyze(std::move(parsed), registry));
  CEP_ASSIGN_OR_RETURN(NfaPtr nfa, CompileToNfa(std::move(analyzed)));
  CannedQuery canned;
  canned.name = std::move(name);
  canned.text = std::move(text);
  canned.nfa = std::move(nfa);
  canned.pm_hash = std::move(pm_hash);
  return canned;
}

}  // namespace

Result<CannedQuery> MakeClusterQ1(const SchemaRegistry& registry,
                                  Duration window) {
  const std::string text = StrFormat(
      "PATTERN SEQ(submit s, schedule c, evict e) "
      "WHERE s.job_id = c.job_id, s.task_idx = c.task_idx, "
      "c.job_id = e.job_id, c.task_idx = e.task_idx, "
      "s.priority <= 5 "
      "WITHIN %lld us "
      "RETURN churn(job = s.job_id, task = s.task_idx, "
      "machine = c.machine_id, priority = s.priority)",
      static_cast<long long>(window));
  // The learnable regularity lives in (machine pool, priority): low-priority
  // tasks on contended machines get evicted. Bucket width 4 groups machines
  // into pools of 4 and priorities into {0-3, 4-7, 8-11}.
  PmHashOptions hash;
  hash.attributes = {{"submit", "priority"},
                     {"schedule", "machine_id"},
                     {"schedule", "priority"}};
  hash.numeric_bucket_width = 4.0;
  return Compile("Q1", text, registry, std::move(hash));
}

Result<CannedQuery> MakeClusterQ2(const SchemaRegistry& registry,
                                  Duration window) {
  const std::string text = StrFormat(
      "PATTERN SEQ(schedule a, fail b, schedule c) "
      "WHERE a.job_id = b.job_id, a.task_idx = b.task_idx, "
      "b.job_id = c.job_id, b.task_idx = c.task_idx "
      "WITHIN %lld us "
      "RETURN flap(job = a.job_id, task = a.task_idx, "
      "machine_was = a.machine_id, machine_now = c.machine_id)",
      static_cast<long long>(window));
  // Failures correlate with sched_class >= 2 on contended machines.
  PmHashOptions hash;
  hash.attributes = {{"schedule", "machine_id"},
                     {"schedule", "sched_class"},
                     {"fail", "machine_id"}};
  hash.numeric_bucket_width = 4.0;
  return Compile("Q2", text, registry, std::move(hash));
}

Result<CannedQuery> MakeBikeQuery(const SchemaRegistry& registry,
                                  Duration window, int lambda,
                                  int min_avail_count) {
  const std::string text = StrFormat(
      "PATTERN SEQ(req a, avail+ b[], unlock c) "
      "WHERE diff(b[i].loc, a.loc) < %d, COUNT(b[]) > %d, "
      "diff(c.loc, a.loc) > %d, c.uid = a.uid "
      "WITHIN %lld us "
      "RETURN warning(loc = a.loc, near = b[last].loc, user = a.uid)",
      lambda, min_avail_count, lambda, static_cast<long long>(window));
  PmHashOptions hash;
  hash.attributes = {{"req", "loc"}};
  hash.numeric_bucket_width = 5.0;  // zone neighbourhoods
  return Compile("bike", text, registry, std::move(hash));
}

Result<CannedQuery> MakeStockRisingQuery(const SchemaRegistry& registry,
                                         Duration window, int min_run_length) {
  const std::string text = StrFormat(
      "PATTERN SEQ(tick a, tick+ b[]) "
      "WHERE b[i].symbol = a.symbol, b[i].price > a.price, "
      "b[i].price > b[i-1].price, COUNT(b[]) >= %d "
      "WITHIN %lld us "
      "RETURN rally(symbol = a.symbol, from = a.price, to = b[last].price, "
      "length = COUNT(b[]))",
      min_run_length, static_cast<long long>(window));
  PmHashOptions hash;
  hash.attributes = {{"tick", "symbol"}};
  return Compile("rising", text, registry, std::move(hash));
}

}  // namespace cep
