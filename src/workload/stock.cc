#include "workload/stock.h"

#include <cmath>

#include "event/stream.h"

namespace cep {

Status StockGenerator::RegisterSchemas(SchemaRegistry* registry) {
  return registry
      ->Register("tick", {{"symbol", ValueType::kInt},
                          {"price", ValueType::kDouble},
                          {"volume", ValueType::kInt}})
      .status();
}

Result<std::vector<EventPtr>> StockGenerator::Generate(
    const SchemaRegistry& registry) const {
  CEP_ASSIGN_OR_RETURN(EventTypeId tick_t, registry.GetType("tick"));
  Rng rng(options_.seed);

  std::vector<double> price(options_.num_symbols, options_.initial_price);
  std::vector<EventPtr> events;
  uint64_t seq = 0;
  const double gap_mean_micros =
      static_cast<double>(kSecond) / options_.ticks_per_second;
  Timestamp t = 0;
  while (true) {
    t += 1 + static_cast<Duration>(
                 std::llround(rng.NextExponential(1.0 / gap_mean_micros)));
    if (t > options_.duration) break;
    const int symbol = static_cast<int>(
        rng.NextBounded(static_cast<uint64_t>(options_.num_symbols)));
    // Trendy symbols drift upward; the rest mean-revert around the initial
    // price.
    const double drift =
        IsTrendy(options_, symbol)
            ? options_.volatility * 0.6
            : -0.02 * (price[symbol] / options_.initial_price - 1.0) *
                  options_.volatility * 100.0;
    const double shock = rng.NextGaussian(0.0, options_.volatility);
    price[symbol] *= std::exp(drift + shock);
    const auto volume = static_cast<int64_t>(100 + rng.NextBounded(900));
    events.push_back(std::make_shared<Event>(
        tick_t, registry.schema(tick_t), t,
        std::vector<Value>{Value(static_cast<int64_t>(symbol)),
                           Value(price[symbol]), Value(volume)},
        seq++));
  }
  return events;
}

}  // namespace cep
