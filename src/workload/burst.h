#ifndef CEPSHED_WORKLOAD_BURST_H_
#define CEPSHED_WORKLOAD_BURST_H_

#include "common/rng.h"
#include "common/time.h"

namespace cep {

/// \brief Piecewise-constant arrival-rate profile with periodic bursts.
///
/// The paper's motivation is input rates that "grow by orders of magnitude
/// during short peak times": the profile holds `base_rate` and multiplies it
/// by `burst_multiplier` for `burst_duration` once every `burst_period`
/// (first burst starts at `phase`).
struct BurstProfile {
  double base_rate = 1.0;  ///< events per second of stream time
  double burst_multiplier = 1.0;
  Duration burst_period = 0;    ///< 0 = no bursts
  Duration burst_duration = 0;
  Duration phase = 0;

  /// Instantaneous rate (events/sec) at stream time `t`.
  double RateAt(Timestamp t) const {
    if (burst_period <= 0 || burst_duration <= 0) return base_rate;
    Duration pos = (t - phase) % burst_period;
    if (pos < 0) pos += burst_period;
    return pos < burst_duration ? base_rate * burst_multiplier : base_rate;
  }

  bool InBurst(Timestamp t) const { return RateAt(t) > base_rate; }
};

/// \brief Draws arrival timestamps from a non-homogeneous Poisson process
/// with the given profile, via thinning.
class ArrivalProcess {
 public:
  ArrivalProcess(BurstProfile profile, uint64_t seed)
      : profile_(profile), rng_(seed) {}

  /// Next arrival strictly after `after`.
  Timestamp NextArrival(Timestamp after);

 private:
  BurstProfile profile_;
  Rng rng_;
};

}  // namespace cep

#endif  // CEPSHED_WORKLOAD_BURST_H_
