#include "workload/bikeshare.h"

#include <cmath>

#include "event/stream.h"

namespace cep {

Status BikeShareGenerator::RegisterSchemas(SchemaRegistry* registry) {
  CEP_RETURN_NOT_OK(registry
                        ->Register("req", {{"loc", ValueType::kInt},
                                           {"uid", ValueType::kInt}})
                        .status());
  CEP_RETURN_NOT_OK(registry
                        ->Register("avail", {{"loc", ValueType::kInt},
                                             {"bid", ValueType::kInt}})
                        .status());
  CEP_RETURN_NOT_OK(registry
                        ->Register("unlock", {{"loc", ValueType::kInt},
                                              {"uid", ValueType::kInt},
                                              {"bid", ValueType::kInt}})
                        .status());
  return Status::OK();
}

Result<std::vector<EventPtr>> BikeShareGenerator::Generate(
    const SchemaRegistry& registry) const {
  CEP_ASSIGN_OR_RETURN(EventTypeId req_t, registry.GetType("req"));
  CEP_ASSIGN_OR_RETURN(EventTypeId avail_t, registry.GetType("avail"));
  CEP_ASSIGN_OR_RETURN(EventTypeId unlock_t, registry.GetType("unlock"));

  Rng rng(options_.seed);
  std::vector<EventPtr> events;
  uint64_t seq = 0;
  int64_t next_uid = 1;
  int64_t next_bid = 1000;

  const double gap_mean_micros =
      60.0 * static_cast<double>(kSecond) / options_.requests_per_minute;
  Timestamp t = 0;
  while (true) {
    t += static_cast<Duration>(
        std::llround(rng.NextExponential(1.0 / gap_mean_micros)));
    if (t > options_.duration) break;
    const int zone = static_cast<int>(
        rng.NextBounded(static_cast<uint64_t>(options_.num_zones)));
    const int64_t uid = next_uid++;
    events.push_back(std::make_shared<Event>(
        req_t, registry.schema(req_t), t,
        std::vector<Value>{Value(static_cast<int64_t>(zone)), Value(uid)},
        seq++));

    // Nearby availability reports in the following minutes.
    const auto n_avail = 1 + rng.NextPoisson(static_cast<double>(
                                 options_.mean_avails_per_request - 1));
    Timestamp at = t;
    for (uint64_t i = 0; i < n_avail; ++i) {
      at += 1 + static_cast<Duration>(rng.NextBounded(2 * kMinute));
      const int64_t near_loc =
          zone + static_cast<int64_t>(rng.NextBounded(
                     static_cast<uint64_t>(options_.lambda))) -
          options_.lambda / 2;
      events.push_back(std::make_shared<Event>(
          avail_t, registry.schema(avail_t), at,
          std::vector<Value>{Value(near_loc), Value(next_bid++)}, seq++));
    }

    // The unlock: near for normal zones, usually far for obscure ones.
    const double far_prob = IsObscureZone(options_, zone)
                                ? options_.far_unlock_prob_obscure
                                : options_.far_unlock_prob_normal;
    const bool far = rng.NextBernoulli(far_prob);
    int64_t unlock_loc;
    if (far) {
      unlock_loc = zone + options_.lambda + 2 +
                   static_cast<int64_t>(rng.NextBounded(
                       static_cast<uint64_t>(options_.num_zones / 2 + 1)));
    } else {
      unlock_loc = zone + static_cast<int64_t>(rng.NextBounded(
                              static_cast<uint64_t>(options_.lambda))) -
                   options_.lambda / 2;
    }
    const Timestamp ut =
        at + 30 * kSecond + static_cast<Duration>(rng.NextBounded(3 * kMinute));
    events.push_back(std::make_shared<Event>(
        unlock_t, registry.schema(unlock_t), ut,
        std::vector<Value>{Value(unlock_loc), Value(uid), Value(next_bid++)},
        seq++));
  }

  SortEvents(&events);
  return events;
}

}  // namespace cep
