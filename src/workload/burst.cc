#include "workload/burst.h"

#include <cmath>

namespace cep {

Timestamp ArrivalProcess::NextArrival(Timestamp after) {
  // Ogata thinning against the profile's maximum rate.
  const double max_rate =
      profile_.base_rate * std::max(1.0, profile_.burst_multiplier);
  Timestamp t = after;
  for (int guard = 0; guard < 1'000'000; ++guard) {
    const double gap_seconds = rng_.NextExponential(max_rate);
    const auto gap_micros = static_cast<Duration>(
        std::llround(gap_seconds * static_cast<double>(kSecond)));
    t += gap_micros < 1 ? 1 : gap_micros;
    if (rng_.NextDouble() * max_rate <= profile_.RateAt(t)) return t;
  }
  return t;  // unreachable for sane profiles
}

}  // namespace cep
