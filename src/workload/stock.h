#ifndef CEPSHED_WORKLOAD_STOCK_H_
#define CEPSHED_WORKLOAD_STOCK_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "event/event.h"
#include "event/schema.h"

namespace cep {

/// \brief Synthetic stock tick stream (the finance domain of the paper's
/// introduction). One event type:
///   tick(symbol:int, price:double, volume:int)
///
/// Prices follow per-symbol geometric random walks with a per-symbol
/// momentum term, so "rising run" Kleene queries find learnable structure:
/// trendy symbols produce long monotone runs, mean-reverting symbols do not.
struct StockOptions {
  Duration duration = 10 * kMinute;
  int num_symbols = 20;
  /// Share of symbols with positive momentum (trendy).
  double trendy_share = 0.3;
  double ticks_per_second = 50.0;
  double initial_price = 100.0;
  double volatility = 0.002;
  uint64_t seed = 11;
};

class StockGenerator {
 public:
  explicit StockGenerator(StockOptions options) : options_(options) {}

  static Status RegisterSchemas(SchemaRegistry* registry);

  Result<std::vector<EventPtr>> Generate(const SchemaRegistry& registry) const;

  static bool IsTrendy(const StockOptions& options, int symbol) {
    return symbol < static_cast<int>(options.trendy_share *
                                     static_cast<double>(options.num_symbols));
  }

 private:
  StockOptions options_;
};

}  // namespace cep

#endif  // CEPSHED_WORKLOAD_STOCK_H_
