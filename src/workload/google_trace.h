#ifndef CEPSHED_WORKLOAD_GOOGLE_TRACE_H_
#define CEPSHED_WORKLOAD_GOOGLE_TRACE_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "event/event.h"
#include "event/schema.h"
#include "workload/burst.h"

namespace cep {

/// \brief Synthetic stand-in for the Google Cluster-Usage Traces
/// (Reiss/Wilkes/Hellerstein 2011) used in the paper's evaluation.
///
/// The real traces are not available offline (DESIGN.md substitution #1); the
/// generator follows the public ClusterData task-event schema — one event
/// type per lifecycle transition (`submit`, `schedule`, `evict`, `fail`,
/// `finish`, `kill`), each carrying job_id, task_idx, machine_id, priority,
/// sched_class, cpu_req, mem_req — and drives task lifecycles through a
/// probabilistic model whose outcome probabilities are *correlated with
/// attribute values*:
///
///  * machines split into a contended ("hot") and an uncontended pool;
///  * low-priority tasks scheduled on hot machines are mostly evicted;
///  * high sched_class tasks on hot machines tend to fail and be retried;
///  * everything else mostly finishes.
///
/// `regularity` in [0, 1] interpolates between fully attribute-determined
/// outcomes (1.0) and attribute-independent outcomes (0.0): the knob that
/// controls how much signal the paper's "correlation among attributes' value
/// distributions" assumption has to offer (ablation: SBLS should degrade
/// towards RBLS as regularity -> 0).
///
/// Job arrivals follow a bursty non-homogeneous Poisson process so that the
/// engine actually experiences the short peak-time overloads the paper
/// targets.
struct GoogleTraceOptions {
  Duration duration = 24 * kHour;   ///< trace length (stream time)
  double jobs_per_hour = 300.0;     ///< base arrival rate
  double burst_multiplier = 8.0;
  Duration burst_period = 6 * kHour;
  Duration burst_duration = 40 * kMinute;
  int num_machines = 64;
  double hot_machine_share = 0.25;  ///< fraction of contended machines
  int max_tasks_per_job = 3;
  /// Mean stream-time delays of lifecycle transitions.
  Duration mean_schedule_delay = 10 * kMinute;
  Duration mean_evict_delay = 90 * kMinute;
  Duration mean_fail_delay = 45 * kMinute;
  Duration mean_finish_delay = 3 * kHour;
  /// Eviction/failure retries: evicted or failed tasks are rescheduled up to
  /// this many times.
  int max_retries = 2;
  double regularity = 0.9;
  uint64_t seed = 42;
};

class GoogleTraceGenerator {
 public:
  explicit GoogleTraceGenerator(GoogleTraceOptions options)
      : options_(options) {}

  /// Registers the six ClusterData task-event types (idempotent on a fresh
  /// registry; errors if names already exist).
  static Status RegisterSchemas(SchemaRegistry* registry);

  /// Materialises the full trace, timestamp-ordered.
  Result<std::vector<EventPtr>> Generate(const SchemaRegistry& registry) const;

  const GoogleTraceOptions& options() const { return options_; }

  /// True if machine `m` is in the contended pool under `options`.
  static bool IsHotMachine(const GoogleTraceOptions& options, int machine) {
    return machine <
           static_cast<int>(options.hot_machine_share *
                            static_cast<double>(options.num_machines));
  }

 private:
  GoogleTraceOptions options_;
};

}  // namespace cep

#endif  // CEPSHED_WORKLOAD_GOOGLE_TRACE_H_
