#ifndef CEPSHED_WORKLOAD_QUERIES_H_
#define CEPSHED_WORKLOAD_QUERIES_H_

#include <string>

#include "common/result.h"
#include "nfa/nfa.h"
#include "shedding/pm_hash.h"

namespace cep {

/// \brief A ready-to-run query: compiled automaton plus the recommended
/// partial-match hash configuration for SBLS (which attributes carry the
/// learnable regularity for this workload).
struct CannedQuery {
  std::string name;
  std::string text;  ///< SASE source it was parsed from
  NfaPtr nfa;
  PmHashOptions pm_hash;
};

/// Q1 of the paper's evaluation (shape: 3-variable sequence over the cluster
/// trace with value predicates): SUBMIT -> SCHEDULE -> EVICT of the same
/// task — detects placement churn. Window parameterised (Table II: 3/5/7 h).
Result<CannedQuery> MakeClusterQ1(const SchemaRegistry& registry,
                                  Duration window);

/// Q2: SCHEDULE -> FAIL -> SCHEDULE of the same task — detects failure
/// flapping / rescheduling loops.
Result<CannedQuery> MakeClusterQ2(const SchemaRegistry& registry,
                                  Duration window);

/// The paper's Example 1 (bike sharing): a user requests a bike, several
/// bikes are available within lambda, yet the user unlocks far away.
Result<CannedQuery> MakeBikeQuery(const SchemaRegistry& registry,
                                  Duration window, int lambda,
                                  int min_avail_count);

/// Rising-run stock query exercising trailing Kleene with [i-1] predicates.
Result<CannedQuery> MakeStockRisingQuery(const SchemaRegistry& registry,
                                         Duration window, int min_run_length);

}  // namespace cep

#endif  // CEPSHED_WORKLOAD_QUERIES_H_
