#include "engine/run.h"

#include <algorithm>

#include "ckpt/event_codec.h"
#include "ckpt/io.h"
#include "common/string_util.h"
#include "engine/run_arena.h"

namespace cep {

void RunDeleter::operator()(Run* run) const noexcept {
  if (run == nullptr) return;
  if (arena != nullptr) {
    arena->Release(run);
  } else {
    delete run;
  }
}

void Run::AppendEvent(int var_index, EventPtr event, BindingCellPool* pool) {
  VarBinding& vb = vars_[var_index];
  const Event* raw = event.get();
  // Copy-on-write: the parent's chain (vb.head and below) is never mutated;
  // the new cell takes over this run's ownership reference to it.
  vb.head = NewBindingCell(pool, std::move(event), vb.head);
  if (vb.count == 0) vb.first = raw;
  ++vb.count;
}

void Run::Bind(int var_index, EventPtr event, int state,
               BindingCellPool* pool) {
  last_ts_ = event->timestamp();
  if (size_ == 0) start_ts_ = event->timestamp();
  AppendEvent(var_index, std::move(event), pool);
  state_ = state;
  ++size_;
}

RunPtr Run::Extend(uint64_t child_id, int var_index, const EventPtr& event,
                   int state, RunArena* arena) const {
  RunPtr child = arena != nullptr
                     ? arena->New(child_id, num_vars_, state_, start_ts_)
                     : MakeRun(child_id, num_vars_, state_, start_ts_);
  for (int v = 0; v < num_vars_; ++v) {
    child->vars_[v] = vars_[v];
    RetainBindingChain(child->vars_[v].head);
  }
  child->trail_ = trail_;
  child->size_ = size_;
  child->last_ts_ = last_ts_;
  child->pm_hash_ = pm_hash_;
  child->Bind(var_index, event, state,
              arena != nullptr ? arena->cell_pool() : nullptr);
  return child;
}

const Event* Run::kleene_event(int var_index, int idx) const {
  const VarBinding& vb = vars_[var_index];
  if (idx < 0 || static_cast<uint32_t>(idx) >= vb.count) return nullptr;
  if (idx == 0) return vb.first;
  // Chain is newest-first: index i (oldest-first) is count-1-i hops from head.
  const BindingCell* cell = vb.head;
  for (uint32_t hops = vb.count - 1 - static_cast<uint32_t>(idx); hops > 0;
       --hops) {
    cell = cell->prev;
  }
  return cell->event.get();
}

std::vector<EventPtr> Run::binding(int var_index) const {
  const VarBinding& vb = vars_[var_index];
  std::vector<EventPtr> out(vb.count);
  size_t i = vb.count;
  for (const BindingCell* cell = vb.head; cell != nullptr; cell = cell->prev) {
    out[--i] = cell->event;
  }
  return out;
}

std::vector<std::vector<EventPtr>> Run::CopyBindings() const {
  std::vector<std::vector<EventPtr>> out;
  out.reserve(static_cast<size_t>(num_vars_));
  for (int v = 0; v < num_vars_; ++v) out.push_back(binding(v));
  return out;
}

Status Run::SerializeTo(ckpt::Sink& sink,
                        ckpt::EventTableBuilder* table) const {
  sink.WriteU64(id_);
  sink.WriteI64(state_);
  sink.WriteI64(start_ts_);
  sink.WriteI64(last_ts_);
  sink.WriteI64(size_);
  sink.WriteU64(pm_hash_);
  sink.WriteU32(static_cast<uint32_t>(num_vars_));
  for (int v = 0; v < num_vars_; ++v) {
    const VarBinding& vb = vars_[v];
    if (vb.count == 0) {
      sink.WriteU8(0);
      continue;
    }
    sink.WriteU8(1);
    sink.WriteU32(vb.count);
    // Oldest-first on the wire (pre-refactor format): materialise the
    // newest-first chain into a scratch row and intern in reverse.
    for (const EventPtr& event : binding(v)) {
      sink.WriteU32(table->Intern(event));
    }
  }
  // The trail capacity field predates the flat layout (ApproxBytes once
  // counted capacity); it is kept on the wire so snapshots stay format- and
  // byte-compatible, and so capacity still round-trips through restore.
  sink.WriteU32(static_cast<uint32_t>(trail_.size()));
  sink.WriteU32(static_cast<uint32_t>(trail_.capacity()));
  for (const uint64_t key : trail_) sink.WriteU64(key);
  return Status::OK();
}

Result<RunPtr> Run::RestoreFrom(ckpt::Source& source,
                                const ckpt::EventTable& table,
                                RunArena* arena, BindingCellPool* pool) {
  CEP_ASSIGN_OR_RETURN(uint64_t id, source.ReadU64());
  CEP_ASSIGN_OR_RETURN(int64_t state, source.ReadI64());
  CEP_ASSIGN_OR_RETURN(int64_t start_ts, source.ReadI64());
  CEP_ASSIGN_OR_RETURN(int64_t last_ts, source.ReadI64());
  CEP_ASSIGN_OR_RETURN(int64_t size, source.ReadI64());
  CEP_ASSIGN_OR_RETURN(uint64_t pm_hash, source.ReadU64());
  CEP_ASSIGN_OR_RETURN(uint32_t num_variables, source.ReadU32());
  if (pool == nullptr && arena != nullptr) pool = arena->cell_pool();
  RunPtr run = arena != nullptr
                   ? arena->New(id, static_cast<int>(num_variables),
                                static_cast<int>(state), start_ts)
                   : MakeRun(id, static_cast<int>(num_variables),
                             static_cast<int>(state), start_ts);
  run->last_ts_ = last_ts;
  run->size_ = static_cast<int32_t>(size);
  run->pm_hash_ = pm_hash;
  for (uint32_t v = 0; v < num_variables; ++v) {
    CEP_ASSIGN_OR_RETURN(uint8_t present, source.ReadU8());
    if (present == 0) continue;
    CEP_ASSIGN_OR_RETURN(uint32_t count, source.ReadU32());
    for (uint32_t e = 0; e < count; ++e) {
      CEP_ASSIGN_OR_RETURN(uint32_t index, source.ReadU32());
      CEP_ASSIGN_OR_RETURN(EventPtr event, table.Get(index));
      run->AppendEvent(static_cast<int>(v), std::move(event), pool);
    }
  }
  CEP_ASSIGN_OR_RETURN(uint32_t trail_size, source.ReadU32());
  CEP_ASSIGN_OR_RETURN(uint32_t trail_capacity, source.ReadU32());
  run->trail_.reserve(std::max(trail_size, trail_capacity));
  for (uint32_t i = 0; i < trail_size; ++i) {
    CEP_ASSIGN_OR_RETURN(uint64_t key, source.ReadU64());
    run->trail_.push_back(key);
  }
  return run;
}

std::string Run::ToString(const ParsedQuery& query) const {
  std::string out = StrFormat("run#%llu S%d <",
                              static_cast<unsigned long long>(id_), state_);
  bool first = true;
  for (int v = 0; v < num_vars_; ++v) {
    for (const auto& e : binding(v)) {
      if (!first) out += ", ";
      first = false;
      out += query.pattern[v].name + ":" + std::to_string(e->timestamp());
    }
  }
  out += ">";
  return out;
}

}  // namespace cep
