#include "engine/run.h"

#include <algorithm>

#include "ckpt/event_codec.h"
#include "ckpt/io.h"
#include "common/string_util.h"
#include "engine/run_arena.h"

namespace cep {

void RunDeleter::operator()(Run* run) const noexcept {
  if (run == nullptr) return;
  if (arena != nullptr) {
    arena->Release(run);
  } else {
    delete run;
  }
}

void Run::Bind(int var_index, EventPtr event, int state) {
  last_ts_ = event->timestamp();
  if (size_ == 0) start_ts_ = event->timestamp();
  // Copy-on-write: never mutate a binding vector that may be shared with
  // runs extended from this one.
  auto updated = bindings_[var_index] == nullptr
                     ? std::make_shared<std::vector<EventPtr>>()
                     : std::make_shared<std::vector<EventPtr>>(
                           *bindings_[var_index]);
  updated->push_back(std::move(event));
  bindings_[var_index] = std::move(updated);
  state_ = state;
  ++size_;
}

RunPtr Run::Extend(uint64_t child_id, int var_index, const EventPtr& event,
                   int state, RunArena* arena) const {
  RunPtr child =
      arena != nullptr
          ? arena->New(child_id, static_cast<int>(bindings_.size()), state_,
                       start_ts_)
          : MakeRun(child_id, static_cast<int>(bindings_.size()), state_,
                    start_ts_);
  child->bindings_ = bindings_;
  child->trail_ = trail_;
  child->size_ = size_;
  child->last_ts_ = last_ts_;
  child->pm_hash_ = pm_hash_;
  child->Bind(var_index, event, state);
  return child;
}

std::vector<std::vector<EventPtr>> Run::CopyBindings() const {
  std::vector<std::vector<EventPtr>> out;
  out.reserve(bindings_.size());
  for (const auto& b : bindings_) {
    out.push_back(b == nullptr ? std::vector<EventPtr>{} : *b);
  }
  return out;
}

Status Run::SerializeTo(ckpt::Sink& sink,
                        ckpt::EventTableBuilder* table) const {
  sink.WriteU64(id_);
  sink.WriteI64(state_);
  sink.WriteI64(start_ts_);
  sink.WriteI64(last_ts_);
  sink.WriteI64(size_);
  sink.WriteU64(pm_hash_);
  sink.WriteU32(static_cast<uint32_t>(bindings_.size()));
  for (const BindingPtr& binding : bindings_) {
    if (binding == nullptr) {
      sink.WriteU8(0);
      continue;
    }
    sink.WriteU8(1);
    sink.WriteU32(static_cast<uint32_t>(binding->size()));
    for (const EventPtr& event : *binding) {
      sink.WriteU32(table->Intern(event));
    }
  }
  // Trail capacity is serialized because ApproxBytes() counts it: the
  // degradation byte budget must see identical estimates after restore.
  sink.WriteU32(static_cast<uint32_t>(trail_.size()));
  sink.WriteU32(static_cast<uint32_t>(trail_.capacity()));
  for (const uint64_t key : trail_) sink.WriteU64(key);
  return Status::OK();
}

Result<RunPtr> Run::RestoreFrom(ckpt::Source& source,
                                const ckpt::EventTable& table,
                                RunArena* arena) {
  CEP_ASSIGN_OR_RETURN(uint64_t id, source.ReadU64());
  CEP_ASSIGN_OR_RETURN(int64_t state, source.ReadI64());
  CEP_ASSIGN_OR_RETURN(int64_t start_ts, source.ReadI64());
  CEP_ASSIGN_OR_RETURN(int64_t last_ts, source.ReadI64());
  CEP_ASSIGN_OR_RETURN(int64_t size, source.ReadI64());
  CEP_ASSIGN_OR_RETURN(uint64_t pm_hash, source.ReadU64());
  CEP_ASSIGN_OR_RETURN(uint32_t num_variables, source.ReadU32());
  RunPtr run = arena != nullptr
                   ? arena->New(id, static_cast<int>(num_variables),
                                static_cast<int>(state), start_ts)
                   : MakeRun(id, static_cast<int>(num_variables),
                             static_cast<int>(state), start_ts);
  run->last_ts_ = last_ts;
  run->size_ = static_cast<int>(size);
  run->pm_hash_ = pm_hash;
  for (uint32_t v = 0; v < num_variables; ++v) {
    CEP_ASSIGN_OR_RETURN(uint8_t present, source.ReadU8());
    if (present == 0) continue;
    CEP_ASSIGN_OR_RETURN(uint32_t count, source.ReadU32());
    auto events = std::make_shared<std::vector<EventPtr>>();
    events->reserve(count);
    for (uint32_t e = 0; e < count; ++e) {
      CEP_ASSIGN_OR_RETURN(uint32_t index, source.ReadU32());
      CEP_ASSIGN_OR_RETURN(EventPtr event, table.Get(index));
      events->push_back(std::move(event));
    }
    run->bindings_[v] = std::move(events);
  }
  CEP_ASSIGN_OR_RETURN(uint32_t trail_size, source.ReadU32());
  CEP_ASSIGN_OR_RETURN(uint32_t trail_capacity, source.ReadU32());
  run->trail_.reserve(std::max(trail_size, trail_capacity));
  for (uint32_t i = 0; i < trail_size; ++i) {
    CEP_ASSIGN_OR_RETURN(uint64_t key, source.ReadU64());
    run->trail_.push_back(key);
  }
  return run;
}

std::string Run::ToString(const ParsedQuery& query) const {
  std::string out = StrFormat("run#%llu S%d <",
                              static_cast<unsigned long long>(id_), state_);
  bool first = true;
  for (size_t v = 0; v < bindings_.size(); ++v) {
    for (const auto& e : binding(static_cast<int>(v))) {
      if (!first) out += ", ";
      first = false;
      out += query.pattern[v].name + ":" + std::to_string(e->timestamp());
    }
  }
  out += ">";
  return out;
}

}  // namespace cep
