#include "engine/run.h"

#include "common/string_util.h"
#include "engine/run_arena.h"

namespace cep {

void RunDeleter::operator()(Run* run) const noexcept {
  if (run == nullptr) return;
  if (arena != nullptr) {
    arena->Release(run);
  } else {
    delete run;
  }
}

void Run::Bind(int var_index, EventPtr event, int state) {
  last_ts_ = event->timestamp();
  if (size_ == 0) start_ts_ = event->timestamp();
  // Copy-on-write: never mutate a binding vector that may be shared with
  // runs extended from this one.
  auto updated = bindings_[var_index] == nullptr
                     ? std::make_shared<std::vector<EventPtr>>()
                     : std::make_shared<std::vector<EventPtr>>(
                           *bindings_[var_index]);
  updated->push_back(std::move(event));
  bindings_[var_index] = std::move(updated);
  state_ = state;
  ++size_;
}

RunPtr Run::Extend(uint64_t child_id, int var_index, const EventPtr& event,
                   int state, RunArena* arena) const {
  RunPtr child =
      arena != nullptr
          ? arena->New(child_id, static_cast<int>(bindings_.size()), state_,
                       start_ts_)
          : MakeRun(child_id, static_cast<int>(bindings_.size()), state_,
                    start_ts_);
  child->bindings_ = bindings_;
  child->trail_ = trail_;
  child->size_ = size_;
  child->last_ts_ = last_ts_;
  child->pm_hash_ = pm_hash_;
  child->Bind(var_index, event, state);
  return child;
}

std::vector<std::vector<EventPtr>> Run::CopyBindings() const {
  std::vector<std::vector<EventPtr>> out;
  out.reserve(bindings_.size());
  for (const auto& b : bindings_) {
    out.push_back(b == nullptr ? std::vector<EventPtr>{} : *b);
  }
  return out;
}

std::string Run::ToString(const ParsedQuery& query) const {
  std::string out = StrFormat("run#%llu S%d <",
                              static_cast<unsigned long long>(id_), state_);
  bool first = true;
  for (size_t v = 0; v < bindings_.size(); ++v) {
    for (const auto& e : binding(static_cast<int>(v))) {
      if (!first) out += ", ";
      first = false;
      out += query.pattern[v].name + ":" + std::to_string(e->timestamp());
    }
  }
  out += ">";
  return out;
}

}  // namespace cep
