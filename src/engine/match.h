#ifndef CEPSHED_ENGINE_MATCH_H_
#define CEPSHED_ENGINE_MATCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.h"
#include "event/event.h"
#include "query/ast.h"

namespace cep {

/// \brief A complete match of the query over the stream.
///
/// `fingerprint` identifies the match by the *events* it binds (variable
/// index + event sequence numbers), independent of detection time or run id.
/// Golden-vs-shedding accuracy (the paper's δ of output streams) compares
/// fingerprint sets: state-based shedding can only remove matches, never
/// invent them, so accuracy is the recall of fingerprints.
struct Match {
  uint64_t id = 0;
  Timestamp first_ts = 0;   ///< timestamp of the earliest bound event
  Timestamp last_ts = 0;    ///< timestamp of the final (triggering) event
  std::vector<std::vector<EventPtr>> bindings;  ///< per pattern variable
  EventPtr complex_event;   ///< RETURN output, or nullptr without RETURN
  uint64_t fingerprint = 0;

  std::string ToString(const ParsedQuery& query) const;
};

/// Computes the content fingerprint over the bindings.
uint64_t MatchFingerprint(const std::vector<std::vector<EventPtr>>& bindings);

}  // namespace cep

#endif  // CEPSHED_ENGINE_MATCH_H_
