#ifndef CEPSHED_ENGINE_RUN_ARENA_H_
#define CEPSHED_ENGINE_RUN_ARENA_H_

#include <cassert>
#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "ckpt/io.h"
#include "ckpt/state_component.h"
#include "common/status.h"
#include "engine/binding_slab.h"
#include "engine/run.h"

namespace cep {

/// \brief Free-list pool allocator for Run objects.
///
/// Run creation, shedding, and window expiry are the engine's dominant
/// allocator load: under skip-till-any-match every transition heap-allocates
/// a fresh run and every shed episode frees a fifth of R(t). The arena
/// carves fixed-size slots out of block allocations and recycles released
/// slots through an intrusive free list, so the steady-state churn costs a
/// pointer pop/push instead of a malloc/free round trip, and the memory the
/// run set occupies stays resident and traversal-friendly.
///
/// Not thread-safe by design: each Engine owns one arena, and all run
/// births/deaths happen on the engine's serial merge path (see
/// docs/PARALLELISM.md), so no lock is needed even when the evaluation
/// phase runs on the worker pool.
///
/// `bytes_reserved()` feeds EngineMetrics::arena_bytes_reserved so the
/// degradation ladder's byte accounting can be checked against the real
/// footprint.
class RunArena : public ckpt::StateComponent {
 public:
  /// Slots are allocated `runs_per_block` at a time; 0 disables pooling
  /// (New() falls back to the global heap, Release() to delete, and
  /// cell_pool() reports null so binding chains also go to the heap).
  explicit RunArena(size_t runs_per_block = 512)
      : runs_per_block_(runs_per_block),
        cells_(runs_per_block == 0 ? 1024 : runs_per_block * 2) {}

  ~RunArena() {
    // All runs must have been released; the engine destroys its run vectors
    // before the arena (member order) so this holds by construction.
    assert(live_ == 0 && "RunArena destroyed with live runs");
  }

  RunArena(const RunArena&) = delete;
  RunArena& operator=(const RunArena&) = delete;

  /// Constructs a Run in a pooled slot (or on the heap when pooling is
  /// disabled). The returned RunPtr releases the slot back to this arena.
  template <typename... Args>
  RunPtr New(Args&&... args) {
    if (runs_per_block_ == 0) {
      return RunPtr(new Run(std::forward<Args>(args)...), RunDeleter{nullptr});
    }
    Slot* slot = AcquireSlot();
    Run* run = new (slot->storage) Run(std::forward<Args>(args)...);
    ++live_;
    return RunPtr(run, RunDeleter{this});
  }

  /// Destroys `run` and recycles its slot (called via RunDeleter).
  void Release(Run* run) noexcept {
    run->~Run();
    Slot* slot = reinterpret_cast<Slot*>(run);
    slot->next = free_;
    free_ = slot;
    --live_;
  }

  /// Runs currently alive in this arena.
  size_t live() const { return live_; }

  /// Total slots reserved across all blocks.
  size_t capacity() const { return blocks_.size() * runs_per_block_; }

  /// Bytes reserved by the arena's run-slot blocks (0 when pooling is
  /// disabled). The binding-cell slab is reported separately
  /// (cell_bytes_reserved()) and deliberately kept out of the checkpointed
  /// arena_bytes_reserved metric: a restored run set rebuilds its chains
  /// without cross-run sharing, so slab capacity is not restore-deterministic
  /// the way slot capacity is.
  size_t bytes_reserved() const { return capacity() * sizeof(Slot); }

  /// Bytes reserved by the binding-cell slab (obs only; see above).
  size_t cell_bytes_reserved() const {
    return runs_per_block_ == 0 ? 0 : cells_.bytes_reserved();
  }

  /// Binding-cell slab shared by this arena's runs, or null when pooling is
  /// disabled (chain cells then come from the heap).
  BindingCellPool* cell_pool() {
    return runs_per_block_ == 0 ? nullptr : &cells_;
  }
  const BindingCellPool* cell_pool() const {
    return runs_per_block_ == 0 ? nullptr : &cells_;
  }

  /// Returns all blocks to the heap. May only be called with no live runs;
  /// the next New() starts growing fresh blocks.
  void Reset() {
    assert(live_ == 0 && "RunArena::Reset with live runs");
    blocks_.clear();
    free_ = nullptr;
    cells_.Reset();
  }

  /// Checkpoint codec. The arena's blocks and free list are allocator
  /// mechanics, not logical state — the pooled runs themselves snapshot
  /// through the engine's run-set component and re-seat into fresh slots on
  /// restore. What the section carries is the configuration fingerprint
  /// (slot size, block size) so a snapshot cannot be restored into an arena
  /// whose layout would silently skew the byte-budget accounting.
  Status SerializeTo(ckpt::Sink& sink) const override {
    sink.WriteU64(runs_per_block_);
    sink.WriteU64(live_);
    return Status::OK();
  }

  Status RestoreFrom(ckpt::Source& source) override {
    Result<uint64_t> per_block = source.ReadU64();
    if (!per_block.ok()) return per_block.status();
    if (per_block.ValueOrDie() != runs_per_block_) {
      return Status::InvalidArgument(
          "snapshot was written with arena_block_runs=" +
          std::to_string(per_block.ValueOrDie()) + ", this engine uses " +
          std::to_string(runs_per_block_));
    }
    Result<uint64_t> live = source.ReadU64();
    if (!live.ok()) return live.status();
    // `live` is restored implicitly when the run-set component re-creates
    // its runs through New(); here it only documents the snapshot.
    return Status::OK();
  }

 private:
  union Slot {
    Slot* next;
    alignas(Run) unsigned char storage[sizeof(Run)];
  };

  Slot* AcquireSlot() {
    if (free_ == nullptr) {
      blocks_.push_back(std::make_unique<Slot[]>(runs_per_block_));
      Slot* block = blocks_.back().get();
      // Thread the fresh block onto the free list back to front so slots
      // are first handed out in address order.
      for (size_t i = runs_per_block_; i > 0; --i) {
        block[i - 1].next = free_;
        free_ = &block[i - 1];
      }
    }
    Slot* slot = free_;
    free_ = slot->next;
    return slot;
  }

  size_t runs_per_block_;
  std::vector<std::unique_ptr<Slot[]>> blocks_;
  Slot* free_ = nullptr;
  size_t live_ = 0;
  /// Chain cells for this arena's runs. Declared after the run blocks only
  /// for layout; destruction order is irrelevant because the engine releases
  /// all runs (and thereby all cells) before the arena dies.
  BindingCellPool cells_;
};

}  // namespace cep

#endif  // CEPSHED_ENGINE_RUN_ARENA_H_
