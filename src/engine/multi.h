#ifndef CEPSHED_ENGINE_MULTI_H_
#define CEPSHED_ENGINE_MULTI_H_

#include <memory>
#include <string>
#include <vector>

#include "engine/engine.h"

namespace cep {

/// \brief Evaluates several queries over one input stream.
///
/// Each query keeps its own Engine (own run set, own shedder, own overload
/// detection — a slow query must not starve a fast one of its threshold).
/// MultiEngine fans events out, aggregates metrics, and exposes per-query
/// results. Pattern sharing across queries (paper §VI / [16]) is future
/// work; this is the operational composition layer.
class MultiEngine {
 public:
  MultiEngine() = default;
  MultiEngine(const MultiEngine&) = delete;
  MultiEngine& operator=(const MultiEngine&) = delete;

  /// Adds a query; returns its index. `name` defaults to the query's name.
  size_t AddQuery(NfaPtr nfa, EngineOptions options,
                  ShedderPtr shedder = nullptr, std::string name = "");

  size_t num_queries() const { return engines_.size(); }
  Engine& engine(size_t index) { return *engines_[index]; }
  const Engine& engine(size_t index) const { return *engines_[index]; }
  const std::string& query_name(size_t index) const { return names_[index]; }

  /// Feeds `event` to every engine. Stops at the first error.
  Status ProcessEvent(const EventPtr& event);

  /// Feeds `event` through every engine's error budget (Engine::OfferEvent):
  /// engines with poison tolerance enabled quarantine their failures
  /// independently, so one query's poisoned predicate cannot stall the
  /// others. Stops only on a fatal (budget-exhausted or fail-fast) error.
  Status OfferEvent(const EventPtr& event);

  /// Drains a stream through every engine via OfferEvent.
  Status ProcessStream(EventStream* stream);

  /// Sum of all engines' counters.
  EngineMetrics AggregateMetrics() const;

  /// Total active partial matches across queries.
  size_t TotalRuns() const;

 private:
  std::vector<std::unique_ptr<Engine>> engines_;
  std::vector<std::string> names_;
};

}  // namespace cep

#endif  // CEPSHED_ENGINE_MULTI_H_
