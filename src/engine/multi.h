#ifndef CEPSHED_ENGINE_MULTI_H_
#define CEPSHED_ENGINE_MULTI_H_

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "ckpt/state_component.h"
#include "common/parallel.h"
#include "common/result.h"
#include "engine/engine.h"
#include "opt/ir.h"
#include "opt/pass_manager.h"

namespace cep {

/// \brief Evaluates several queries over one input stream.
///
/// Each query keeps its own Engine (own run set, own shedder, own overload
/// detection — a slow query must not starve a fast one of its threshold).
/// MultiEngine fans events out, aggregates metrics, and exposes per-query
/// results. Pattern sharing across queries (paper §VI / [16]) is future
/// work; this is the operational composition layer.
///
/// EnableParallel(threads) runs independent engines concurrently on one
/// shared worker pool with a barrier per event (or per batch): engines
/// share no mutable state, and each engine's own processing stays serial
/// and deterministic, so per-engine matches and metrics are identical to
/// serial fan-out. Match callbacks then fire concurrently across engines
/// (never concurrently within one engine) and must be thread-safe if they
/// touch shared state. On an error, serial fan-out stops at the first
/// failing engine while parallel fan-out completes the event on all
/// engines before reporting the lowest-indexed failure.
class MultiEngine {
 public:
  // Both out-of-line: OptStateComponent is incomplete here.
  MultiEngine();
  ~MultiEngine();
  MultiEngine(const MultiEngine&) = delete;
  MultiEngine& operator=(const MultiEngine&) = delete;

  /// Adds a query; returns its index. `name` defaults to the query's name.
  size_t AddQuery(NfaPtr nfa, EngineOptions options,
                  ShedderPtr shedder = nullptr, std::string name = "");

  size_t num_queries() const { return names_.size(); }
  /// The engine servicing query `index`. Before Optimize() every query has
  /// its own engine; afterwards merged queries share their group leader's,
  /// so `engine(i)` and `engine(j)` may be the same object.
  Engine& engine(size_t index) { return *engines_[query_to_engine_[index]]; }
  const Engine& engine(size_t index) const {
    return *engines_[query_to_engine_[index]];
  }
  const std::string& query_name(size_t index) const { return names_[index]; }

  /// Physical engines actually processing events (== num_queries() until
  /// Optimize() merges identical queries).
  size_t num_engines() const { return engines_.size(); }
  Engine& physical_engine(size_t k) { return *engines_[k]; }
  const Engine& physical_engine(size_t k) const { return *engines_[k]; }

  // --- multi-query optimizer (src/opt/, docs/OPTIMIZER.md) ------------------

  /// Runs the optimizer pass pipeline (DSE -> CSE -> prefix merge ->
  /// pushdown) over all registered queries and rebuilds the physical
  /// engines around the rewritten automata: merged queries share one
  /// engine, interned predicates are evaluated once per event for all
  /// queries, and events provably inert for every query are skipped.
  /// Per-query matches are byte-identical to the unoptimized fan-out
  /// (enforced by stress_engine --multiquery). Must be called at most once,
  /// after all AddQuery calls and before any event is processed.
  Status Optimize(const opt::OptOptions& options = {});

  bool optimized() const { return optimized_; }
  /// Optimized IR (null until Optimize); stats, shared table, prefilter.
  const opt::MultiQueryIr* ir() const { return ir_.get(); }
  /// Per-pass before/after IR dumps (empty unless OptOptions::dump_ir).
  const std::vector<opt::PassDump>& opt_dumps() const { return dumps_; }
  /// Events counted as globally droppable by the ingestion prefilter.
  uint64_t events_prefiltered() const { return opt_events_prefiltered_; }
  /// The optimizer's durable state as checkpoint components ("opt.state").
  const ckpt::ComponentRegistry& opt_components();

  /// Creates the shared worker pool (total width `threads`; 0 or 1 reverts
  /// to serial fan-out). All current and future engines share the pool:
  /// per-event they run concurrently, and an engine whose run set is large
  /// enough also shards its own evaluation phase on the same pool when it
  /// is the only engine active (nested use runs inline, so the pool is
  /// never oversubscribed).
  void EnableParallel(size_t threads);

  /// Shared pool (null when serial).
  ThreadPool* thread_pool() const { return pool_.get(); }

  /// Feeds `event` to every engine. Stops at the first error (serial) or
  /// reports the first engine's error after the barrier (parallel).
  Status ProcessEvent(const EventPtr& event);

  /// Feeds `event` through every engine's error budget (Engine::OfferEvent):
  /// engines with poison tolerance enabled quarantine their failures
  /// independently, so one query's poisoned predicate cannot stall the
  /// others. Stops only on a fatal (budget-exhausted or fail-fast) error.
  Status OfferEvent(const EventPtr& event);

  /// Feeds a batch through every engine with one barrier per batch instead
  /// of per event (engines are independent, so batch-at-a-time and
  /// event-at-a-time fan-out produce identical per-engine results).
  Status ProcessBatch(std::span<const EventPtr> events);

  /// Drains a stream through every engine via OfferEvent; `batch_size` > 1
  /// pulls events in batches (ProcessBatch).
  Status ProcessStream(EventStream* stream, size_t batch_size = 1);

  /// Sum of all engines' counters.
  EngineMetrics AggregateMetrics() const;

  /// Total active partial matches across queries.
  size_t TotalRuns() const;

  // --- checkpoint / restore -------------------------------------------------

  /// Serializes all engines into one outer snapshot: section "query.<i>"
  /// holds engine i's complete (self-validating) inner snapshot. The outer
  /// stream offset mirrors engine 0's, since every engine consumes the same
  /// stream. Note: when an audit log is shared, each engine section carries
  /// its own copy of the log; restore rewrites the same content per engine,
  /// which is redundant but correct.
  Result<std::string> SerializeSnapshot();

  /// Restores every engine from its "query.<i>" section. Fails with a
  /// configuration-mismatch error when the snapshot's query count differs
  /// from this MultiEngine's.
  Status RestoreFromSnapshot(std::string_view bytes);

  /// Restores from a snapshot file, or from the newest valid snapshot when
  /// `path` is a directory.
  Status RestoreFromFile(const std::string& path);

  /// Events consumed by the fan-out (engine 0's stream position; all
  /// engines advance in lockstep). 0 when no queries are registered.
  uint64_t stream_offset() const;

  // --- observability --------------------------------------------------------

  /// Shares one audit log across all engines (current and future): every
  /// record carries the originating engine's id (its query index).
  void AttachAuditLog(obs::ShedAuditLog* log);

  /// Shares one tracer across all engines; each engine's spans occupy its
  /// own lane block (tid = engine id * 4 + phase).
  void AttachTracer(obs::Tracer* tracer);

  /// Mirrors every engine's metrics into `registry`, labelled
  /// {"query": <unique label>}, plus the unlabelled aggregate and — when
  /// optimized — the cep_opt_* family. Queries sharing a name get a stable
  /// "#<query-index>" suffix so exported metric families never collide.
  void ExportMetrics(obs::Registry* registry) const;

 private:
  class OptStateComponent;

  /// Runs `fn(engine_index)` over all engines — on the pool when parallel
  /// fan-out is enabled — and returns the lowest-indexed error.
  template <typename Fn>
  Status ForEachEngine(Fn&& fn);

  /// Evaluates the shared-predicate rows for the event(s) about to fan out
  /// (serial, so engines read them concurrently) and counts prefilterable
  /// events. No-op unless optimized.
  void PrepareEvent(const EventPtr& event);
  void PrepareBatch(std::span<const EventPtr> events);

  std::vector<std::unique_ptr<Engine>> engines_;
  std::vector<std::string> names_;
  /// Query index -> physical engine index (identity until Optimize merges).
  std::vector<size_t> query_to_engine_;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<Status> statuses_;  // per-engine results of the current round
  obs::ShedAuditLog* audit_log_ = nullptr;  // shared; applied to new engines
  obs::Tracer* tracer_ = nullptr;

  // --- optimizer state -------------------------------------------------------
  bool optimized_ = false;
  /// Owns the rewritten automata, shared-predicate table, and prefilter;
  /// must outlive the engines (their edges point into its expressions).
  std::unique_ptr<opt::MultiQueryIr> ir_;
  std::vector<opt::PassDump> dumps_;
  /// Digest of the optimized layout (unit fingerprints + merge mapping):
  /// snapshots embed it, so restore refuses a differently-optimized writer.
  uint64_t opt_digest_ = 0;
  uint64_t opt_events_prefiltered_ = 0;
  std::unique_ptr<OptStateComponent> opt_component_;
  ckpt::ComponentRegistry opt_components_;
};

}  // namespace cep

#endif  // CEPSHED_ENGINE_MULTI_H_
