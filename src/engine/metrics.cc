#include "engine/metrics.h"

#include "common/string_util.h"

namespace cep {

std::string EngineMetrics::ToString() const {
  return StrFormat(
      "events=%llu dropped=%llu runs{created=%llu extended=%llu expired=%llu "
      "killed=%llu shed=%llu peak=%llu} matches=%llu sheds=%llu evals=%llu "
      "busy_us=%.1f",
      static_cast<unsigned long long>(events_processed),
      static_cast<unsigned long long>(events_dropped),
      static_cast<unsigned long long>(runs_created),
      static_cast<unsigned long long>(runs_extended),
      static_cast<unsigned long long>(runs_expired),
      static_cast<unsigned long long>(runs_killed),
      static_cast<unsigned long long>(runs_shed),
      static_cast<unsigned long long>(peak_runs),
      static_cast<unsigned long long>(matches_emitted),
      static_cast<unsigned long long>(shed_triggers),
      static_cast<unsigned long long>(edge_evaluations), busy_micros);
}

}  // namespace cep
