#include "engine/metrics.h"

#include "common/string_util.h"

namespace cep {

std::string EngineMetrics::ToString() const {
  std::string out = StrFormat(
      "events=%llu dropped=%llu runs{created=%llu extended=%llu expired=%llu "
      "killed=%llu shed=%llu peak=%llu} matches=%llu sheds=%llu evals=%llu "
      "busy_us=%.1f",
      static_cast<unsigned long long>(events_processed),
      static_cast<unsigned long long>(events_dropped),
      static_cast<unsigned long long>(runs_created),
      static_cast<unsigned long long>(runs_extended),
      static_cast<unsigned long long>(runs_expired),
      static_cast<unsigned long long>(runs_killed),
      static_cast<unsigned long long>(runs_shed),
      static_cast<unsigned long long>(peak_runs),
      static_cast<unsigned long long>(matches_emitted),
      static_cast<unsigned long long>(shed_triggers),
      static_cast<unsigned long long>(edge_evaluations), busy_micros);
  if (quarantined_events > 0 || degradation_ups > 0 || degradation_downs > 0 ||
      bypassed_spawns > 0 || emergency_input_drops > 0) {
    out += StrFormat(
        " resilience{quarantined=%llu ladder_ups=%llu ladder_downs=%llu "
        "bypassed=%llu emergency_drops=%llu peak_run_bytes=%llu}",
        static_cast<unsigned long long>(quarantined_events),
        static_cast<unsigned long long>(degradation_ups),
        static_cast<unsigned long long>(degradation_downs),
        static_cast<unsigned long long>(bypassed_spawns),
        static_cast<unsigned long long>(emergency_input_drops),
        static_cast<unsigned long long>(peak_run_bytes));
  }
  if (reorder_late_dropped > 0 || reorder_buffered_peak > 0) {
    out += StrFormat(
        " reorder{late_dropped=%llu buffered_peak=%llu}",
        static_cast<unsigned long long>(reorder_late_dropped),
        static_cast<unsigned long long>(reorder_buffered_peak));
  }
  if (parallel_events > 0 || arena_bytes_reserved > 0) {
    out += StrFormat(
        " parallel{events=%llu arena_bytes=%llu}",
        static_cast<unsigned long long>(parallel_events),
        static_cast<unsigned long long>(arena_bytes_reserved));
  }
  return out;
}

}  // namespace cep
