#include "engine/metrics.h"

#include "common/string_util.h"

namespace cep {

namespace {

#define CEP_METRIC_U64(field, prom, monotonic, help) \
  {#field, prom, help, monotonic, &EngineMetrics::field, nullptr}
#define CEP_METRIC_F64(field, prom, monotonic, help) \
  {#field, prom, help, monotonic, nullptr, &EngineMetrics::field}

/// One entry per EngineMetrics field, in declaration order. The reflection
/// test (metrics_reflection_test.cc) fails when sizeof(EngineMetrics)
/// disagrees with this table, so a new field cannot silently skip
/// serialization, aggregation, or registry export.
constexpr EngineMetricField kEngineMetricFields[] = {
    CEP_METRIC_U64(events_processed, "cep_events_processed_total", true,
                   "Events fully processed by the engine"),
    CEP_METRIC_U64(events_dropped, "cep_events_dropped_total", true,
                   "Events discarded before processing (input shedding)"),
    CEP_METRIC_U64(runs_created, "cep_runs_created_total", true,
                   "Runs started at the initial NFA state"),
    CEP_METRIC_U64(runs_extended, "cep_runs_extended_total", true,
                   "Transitions that produced or advanced a run"),
    CEP_METRIC_U64(runs_expired, "cep_runs_expired_total", true,
                   "Runs removed by window expiry"),
    CEP_METRIC_U64(runs_killed, "cep_runs_killed_total", true,
                   "Runs removed by negation or strict contiguity"),
    CEP_METRIC_U64(runs_shed, "cep_runs_shed_total", true,
                   "Partial matches removed by load shedding"),
    CEP_METRIC_U64(runs_completed, "cep_runs_completed_total", true,
                   "Runs retired by emitting at a plain final state"),
    CEP_METRIC_U64(runs_aborted, "cep_runs_aborted_total", true,
                   "Half-born runs discarded by quarantined-error recovery"),
    CEP_METRIC_U64(shed_triggers, "cep_shed_triggers_total", true,
                   "Overload episodes that invoked the shedder"),
    CEP_METRIC_U64(matches_emitted, "cep_matches_emitted_total", true,
                   "Complete matches emitted"),
    CEP_METRIC_U64(edge_evaluations, "cep_edge_evaluations_total", true,
                   "Candidate event x run edge predicate evaluations"),
    CEP_METRIC_U64(peak_runs, "cep_peak_runs", false,
                   "Maximum |R(t)| observed"),
    CEP_METRIC_F64(busy_micros, "cep_busy_micros", true,
                   "Total processing time, wall or virtual microseconds"),
    CEP_METRIC_U64(quarantined_events, "cep_quarantined_events_total", true,
                   "Poisoned events skipped by the error budget"),
    CEP_METRIC_U64(degradation_ups, "cep_degradation_ups_total", true,
                   "Degradation ladder escalation steps"),
    CEP_METRIC_U64(degradation_downs, "cep_degradation_downs_total", true,
                   "Degradation ladder recovery steps"),
    CEP_METRIC_U64(bypassed_spawns, "cep_bypassed_spawns_total", true,
                   "Events whose run births kBypass suppressed"),
    CEP_METRIC_U64(emergency_input_drops, "cep_emergency_input_drops_total",
                   true, "Events dropped at kEmergency or above"),
    CEP_METRIC_U64(peak_run_bytes, "cep_peak_run_bytes", false,
                   "Maximum run-set byte estimate observed"),
    CEP_METRIC_U64(reorder_late_dropped, "cep_reorder_late_dropped_total",
                   true, "Events behind the reorder-buffer watermark"),
    CEP_METRIC_U64(reorder_buffered_peak, "cep_reorder_buffered_peak", false,
                   "Maximum events held for reordering"),
    CEP_METRIC_U64(parallel_events, "cep_parallel_events_total", true,
                   "Events whose run set met the sharding threshold"),
    CEP_METRIC_U64(arena_bytes_reserved, "cep_arena_bytes_reserved", false,
                   "Peak bytes reserved by the run arena"),
    CEP_METRIC_U64(fast_path_edges, "cep_fast_path_edges_total", true,
                   "Edge evaluations decided by the compiled fast path"),
    CEP_METRIC_U64(hot_attr_slots, "cep_hot_attr_slots", false,
                   "Hot attribute columns gathered for batched evaluation"),
};

#undef CEP_METRIC_U64
#undef CEP_METRIC_F64

}  // namespace

const EngineMetricField* EngineMetricFields(size_t* count) {
  *count = sizeof(kEngineMetricFields) / sizeof(kEngineMetricFields[0]);
  return kEngineMetricFields;
}

std::string EngineMetrics::ToString() const {
  std::string out;
  size_t count = 0;
  const EngineMetricField* fields = EngineMetricFields(&count);
  for (size_t i = 0; i < count; ++i) {
    const EngineMetricField& field = fields[i];
    if (!out.empty()) out += ' ';
    if (field.u64 != nullptr) {
      out += StrFormat("%s=%llu", field.name,
                       static_cast<unsigned long long>(this->*field.u64));
    } else {
      out += StrFormat("%s=%.1f", field.name, this->*field.f64);
    }
  }
  return out;
}

void EngineMetrics::Add(const EngineMetrics& other) {
  size_t count = 0;
  const EngineMetricField* fields = EngineMetricFields(&count);
  for (size_t i = 0; i < count; ++i) {
    const EngineMetricField& field = fields[i];
    if (field.u64 != nullptr) {
      this->*field.u64 += other.*field.u64;
    } else {
      this->*field.f64 += other.*field.f64;
    }
  }
}

}  // namespace cep
