#ifndef CEPSHED_ENGINE_BATCH_EVAL_H_
#define CEPSHED_ENGINE_BATCH_EVAL_H_

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "engine/run_store.h"
#include "event/event.h"
#include "nfa/nfa.h"
#include "query/expr.h"

namespace cep {

/// Verdict of the fast edge evaluator. kFallback means "re-evaluate this edge
/// through the generic Expr interpreter": the fast path refuses to conclude
/// whenever generic evaluation could differ — non-numeric operands, NaN under
/// an ordering comparison (a TypeError in Value::Compare), out-of-range
/// attribute indices — so verdicts are bit-identical by construction.
enum class FastVerdict : uint8_t { kFalse, kTrue, kFallback };

/// \brief Compiled form of the NFA's edge predicates for batched evaluation.
///
/// At engine construction, every edge predicate of the shape the paper's
/// query corpus uses —
///
///   <operand> cmp <operand>   or   diff(<operand>, <operand>) cmp <operand>
///
/// where an operand is a numeric literal, an attribute of the candidate
/// event, or an attribute of an event already bound to the run (the first or
/// last of a variable's binding) — is lowered to a CompiledPred. Run-side
/// operands are assigned HotAttr column slots gathered by the RunStore;
/// event-side operands and literals are resolved once per event by
/// BeginEvent, which rebinds every predicate to either a hot-column pointer
/// or a preloaded constant. The decide phase then evaluates an edge over a
/// contiguous run batch as one column load plus tag checks and int/double
/// compares per predicate — no virtual Expr::Eval walk, no Value copies, no
/// shared_ptr traffic, no per-run operand dispatch.
///
/// Edges with any predicate outside this shape (Kleene aggregates, COUNT,
/// arithmetic, AND/OR, string operands, b[i-1] on a foreign variable) stay on
/// the generic interpreter, as does any run whose gathered operand tags the
/// fast path cannot decide (FastVerdict::kFallback).
class BatchEvalPlan {
 public:
  /// Where a compiled operand's value comes from at evaluation time.
  enum class Src : uint8_t {
    kCurrent,  ///< candidate event attribute (resolved per event)
    kHot,      ///< run-side attribute (RunStore hot column)
    kLit,      ///< literal, encoded at compile time
  };

  struct Operand {
    Src src = Src::kLit;
    int attr_index = 0;  ///< kCurrent: schema index into the candidate event
    int hot_slot = 0;    ///< kHot: RunStore column
    HotCell lit;         ///< kLit
  };

  /// One side of a comparison: a plain operand or diff(x, y).
  struct Term {
    bool is_diff = false;
    Operand x;
    Operand y;  ///< only when is_diff
  };

  struct Pred {
    BinaryOp op = BinaryOp::kEq;  ///< kEq..kGe
    Term lhs;
    Term rhs;
  };

  /// Per-event resolved operand: either a hot-column pointer (indexed by run
  /// row) or a constant (candidate attribute / literal) preloaded by
  /// BeginEvent.
  struct BoundOperand {
    const HotCell* col = nullptr;  ///< non-null: read col[row]
    HotCell val;                   ///< null col: per-event constant
  };

  struct BoundTerm {
    bool is_diff = false;
    BoundOperand x;
    BoundOperand y;  ///< only when is_diff
  };

  struct BoundPred {
    BinaryOp op = BinaryOp::kEq;
    BoundTerm lhs;
    BoundTerm rhs;
  };

  /// Compiled predicates of one edge: `count` entries starting at `first` in
  /// the plan's flat predicate array (exit predicates first, then take
  /// predicates — interpreter order, relevant only for error fallback).
  struct CompiledEdge {
    bool fast = false;
    uint32_t first = 0;
    uint32_t count = 0;
  };

  /// Lowers every edge of `nfa`. Idempotent per plan instance.
  void Compile(const Nfa& nfa);

  /// Hot run-side attributes the RunStore must gather (stable for the plan's
  /// lifetime; the store keeps a pointer to it).
  const std::vector<HotAttr>& hot_plan() const { return hot_; }

  /// Number of edges that compiled to the fast path / total edges.
  size_t fast_edge_count() const { return fast_edges_; }
  size_t total_edge_count() const { return total_edges_; }

  /// Resolves every compiled operand against `event` (candidate attributes,
  /// literals) and `store` (hot-column base pointers). Serial: call once per
  /// event before the (possibly parallel) decide phase; the bound form stays
  /// valid while the phase only reads the store.
  void BeginEvent(const Event& event, const RunStore& store);

  const CompiledEdge& edge(int state, size_t edge_index) const {
    return edges_[state_base_[static_cast<size_t>(state)] + edge_index];
  }

  /// Evaluates a compiled-fast edge against run row `i` with the BeginEvent
  /// candidate virtually bound. Pure and lock-free: safe from concurrent
  /// decide shards. Inline: this runs once per (run, edge) on the hot path.
  FastVerdict EvalFast(const CompiledEdge& ce, size_t i) const {
    const BoundPred* preds = bound_.data() + ce.first;
    for (uint32_t p = 0; p < ce.count; ++p) {
      const BoundPred& pred = preds[p];
      bool fallback = false;
      const HotCell a = EvalTerm(pred.lhs, i, &fallback);
      if (fallback) return FastVerdict::kFallback;
      const HotCell b = EvalTerm(pred.rhs, i, &fallback);
      if (fallback) return FastVerdict::kFallback;
      // Comparison with null is false (EvalComparison), failing the edge.
      if (a.tag == kHotNull || b.tag == kHotNull) return FastVerdict::kFalse;
      if (a.tag == kHotOther || b.tag == kHotOther) {
        return FastVerdict::kFallback;
      }
      bool pass;
      if (pred.op == BinaryOp::kEq || pred.op == BinaryOp::kNe) {
        // Value::operator==: int-int exact, otherwise double coercion (under
        // which NaN != NaN, matching IEEE and the interpreter).
        const bool eq = (a.tag == kHotInt && b.tag == kHotInt) ? a.i == b.i
                                                               : a.d == b.d;
        pass = pred.op == BinaryOp::kEq ? eq : !eq;
      } else if (a.tag == kHotInt && b.tag == kHotInt) {
        switch (pred.op) {
          case BinaryOp::kLt: pass = a.i < b.i; break;
          case BinaryOp::kLe: pass = a.i <= b.i; break;
          case BinaryOp::kGt: pass = a.i > b.i; break;
          default: pass = a.i >= b.i; break;
        }
      } else {
        // Value::Compare raises TypeError on NaN ordering: interpreter's
        // call.
        if (std::isnan(a.d) || std::isnan(b.d)) return FastVerdict::kFallback;
        switch (pred.op) {
          case BinaryOp::kLt: pass = a.d < b.d; break;
          case BinaryOp::kLe: pass = a.d <= b.d; break;
          case BinaryOp::kGt: pass = a.d > b.d; break;
          default: pass = a.d >= b.d; break;
        }
      }
      if (!pass) return FastVerdict::kFalse;
    }
    return FastVerdict::kTrue;
  }

 private:
  bool CompileOperand(const Expr& expr, int current_var, Operand* out);
  bool CompileTerm(const Expr& expr, int current_var, Term* out);
  bool CompilePred(const Expr& expr, int current_var, Pred* out);
  int InternHotSlot(int var, int attr_index, bool last);

  void BindOperand(const Operand& op, const RunStore& store,
                   BoundOperand* out) const;

  static const HotCell& Load(const BoundOperand& op, size_t i) {
    return op.col != nullptr ? op.col[i] : op.val;
  }

  /// Evaluates a term; *fallback set when generic evaluation must decide.
  HotCell EvalTerm(const BoundTerm& term, size_t i, bool* fallback) const {
    const HotCell& x = Load(term.x, i);
    if (!term.is_diff) return x;
    const HotCell& y = Load(term.y, i);
    // diff() mirrors CallExpr::Eval: null propagates before the builtin
    // runs; a non-numeric argument is a TypeError, which only the
    // interpreter may raise.
    if (x.tag == kHotNull || y.tag == kHotNull) {
      return HotCell{kHotNull, 0, 0.0};
    }
    if (x.tag == kHotOther || y.tag == kHotOther) {
      *fallback = true;
      return x;
    }
    return HotCell{kHotDouble, 0, std::fabs(x.d - y.d)};
  }

  std::vector<CompiledEdge> edges_;     ///< flat, state_base_[state] + edge
  std::vector<uint32_t> state_base_;    ///< first edge index per state
  std::vector<Pred> preds_;             ///< flat predicate pool (compile time)
  std::vector<BoundPred> bound_;        ///< preds_, rebound per event
  std::vector<HotAttr> hot_;
  std::vector<HotCell> event_attrs_;    ///< scratch row, rebuilt per event
  size_t fast_edges_ = 0;
  size_t total_edges_ = 0;
};

}  // namespace cep

#endif  // CEPSHED_ENGINE_BATCH_EVAL_H_
